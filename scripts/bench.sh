#!/usr/bin/env bash
# TL2 hot-path benchmark driver.
#
# Builds the experiments binary under the opt-in `release-bench` profile
# (thin LTO, one codegen unit — see the workspace Cargo.toml) and runs the
# microloop + STAMP suite, writing a versioned BENCH_*.json artifact.
#
# Usage:
#   scripts/bench.sh [--preset tiny|default] [--smoke] [--out FILE]
#                    [--baseline FILE]
#
# Flags are passed through to `experiments bench`; the artifact defaults to
# BENCH_tl2_hotpath.json in the repo root. To produce a before/after pair,
# run once on the old tree with `--out /tmp/base.json`, then on the new tree
# with `--baseline /tmp/base.json`.
set -euo pipefail

cd "$(dirname "$0")/.."

PROFILE=release-bench

echo "==> building ($PROFILE profile)"
cargo build --offline --profile "$PROFILE" -p gstm-experiments

echo "==> running bench suite"
./target/"$PROFILE"/experiments bench --profile "$PROFILE" "$@"
