#!/usr/bin/env bash
# Pre-merge gate. Everything here must pass offline (no registry access):
# the tier-1 build and tests are what every PR is judged against.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1: release build"
cargo build --release --offline

echo "==> tier-1: tests"
cargo test -q --workspace --offline

echo "==> bench smoke (tiny preset): artifact must be well-formed"
./target/release/experiments bench --preset tiny --smoke --profile release \
    --out target/BENCH_smoke.json
./target/release/experiments bench-check target/BENCH_smoke.json

echo "==> pipeline smoke: warm rerun must hit the cache and match byte-for-byte"
smoke_dir="target/gstm-ci-pipeline-smoke"
rm -rf "$smoke_dir"
mkdir -p "$smoke_dir"
./target/release/experiments cell --bench kmeans --tiny --jobs 2 \
    --cache-dir "$smoke_dir/cache" \
    >"$smoke_dir/cold.out" 2>"$smoke_dir/cold.err"
./target/release/experiments cell --bench kmeans --tiny --jobs 2 \
    --cache-dir "$smoke_dir/cache" \
    >"$smoke_dir/warm.out" 2>"$smoke_dir/warm.err"
diff -u "$smoke_dir/cold.out" "$smoke_dir/warm.out" \
    || { echo "pipeline smoke: warm rerun output diverged"; exit 1; }
grep -q "models 0 hit" "$smoke_dir/cold.err" \
    || { echo "pipeline smoke: cold run unexpectedly hit the model cache"; exit 1; }
grep -qE "models [1-9][0-9]* hit / 0 miss" "$smoke_dir/warm.err" \
    || { echo "pipeline smoke: warm run missed the model cache"; exit 1; }
grep -qE "runs [1-9][0-9]* hit / 0 miss" "$smoke_dir/warm.err" \
    || { echo "pipeline smoke: warm run missed the run cache"; exit 1; }
rm -rf "$smoke_dir"

echo "==> serve smoke: tail-latency study must be deterministic per seed"
serve_dir="target/gstm-ci-serve-smoke"
rm -rf "$serve_dir"
mkdir -p "$serve_dir"
./target/release/experiments serve --tiny --jobs 2 \
    --cache-dir "$serve_dir/cache" \
    >"$serve_dir/cold.out" 2>"$serve_dir/cold.err"
cp results/serve.txt "$serve_dir/cold.txt"
./target/release/experiments serve --tiny --jobs 2 \
    --cache-dir "$serve_dir/cache" \
    >"$serve_dir/warm.out" 2>"$serve_dir/warm.err"
cp results/serve.txt "$serve_dir/warm.txt"
./target/release/experiments serve --tiny --jobs 2 --no-cache \
    >"$serve_dir/nocache.out" 2>"$serve_dir/nocache.err"
diff -u "$serve_dir/cold.txt" "$serve_dir/warm.txt" \
    || { echo "serve smoke: warm rerun table diverged"; exit 1; }
diff -u "$serve_dir/cold.txt" results/serve.txt \
    || { echo "serve smoke: same seed produced different serve table bytes"; exit 1; }
grep -qE "models [1-9][0-9]* hit / 0 miss" "$serve_dir/warm.err" \
    || { echo "serve smoke: warm run retrained instead of hitting the model cache"; exit 1; }
grep -qE "runs [1-9][0-9]* hit / 0 miss" "$serve_dir/warm.err" \
    || { echo "serve smoke: warm run missed the run cache"; exit 1; }
rm -rf "$serve_dir"

echo "==> chaos matrix: opacity oracle must report zero violations"
cp results/check.txt target/check-committed.txt
./target/release/experiments check --tiny --seed 7 --jobs 2 \
    || { echo "chaos matrix: opacity/serializability violations (see results/check.txt)"; exit 1; }
diff -u target/check-committed.txt results/check.txt \
    || { echo "chaos matrix: results/check.txt drifted from the committed table"; exit 1; }
rm -f target/check-committed.txt

echo "==> recovery smoke: kill-and-recover matrix must pass and replay from cache"
recover_dir="target/gstm-ci-recover-smoke"
rm -rf "$recover_dir"
mkdir -p "$recover_dir"
cp results/recover.txt "$recover_dir/committed.txt"
./target/release/experiments recover --tiny --seed 7 --jobs 2 \
    --cache-dir "$recover_dir/cache" \
    >"$recover_dir/cold.out" 2>"$recover_dir/cold.err" \
    || { echo "recovery smoke: recovered store diverged from serial history (see results/recover.txt)"; exit 1; }
./target/release/experiments recover --tiny --seed 7 --jobs 2 \
    --cache-dir "$recover_dir/cache" \
    >"$recover_dir/warm.out" 2>"$recover_dir/warm.err" \
    || { echo "recovery smoke: warm rerun failed"; exit 1; }
diff -u "$recover_dir/cold.out" "$recover_dir/warm.out" \
    || { echo "recovery smoke: warm rerun output diverged"; exit 1; }
diff -u "$recover_dir/committed.txt" results/recover.txt \
    || { echo "recovery smoke: results/recover.txt drifted from the committed table"; exit 1; }
grep -qE "runs [1-9][0-9]* hit / 0 miss" "$recover_dir/warm.err" \
    || { echo "recovery smoke: warm run missed the run cache"; exit 1; }
rm -rf "$recover_dir"

echo "==> wal bench smoke: artifact must be well-formed"
./target/release/experiments bench-wal --smoke --profile release \
    --out target/BENCH_wal_smoke.json
./target/release/experiments bench-check target/BENCH_wal_smoke.json

echo "==> pipeline bench: cold-vs-warm artifact must be well-formed"
./target/release/experiments bench-pipeline --profile release \
    --out target/BENCH_pipeline_smoke.json
./target/release/experiments bench-check target/BENCH_pipeline_smoke.json

echo "==> scale bench smoke: commit-spine artifact must be well-formed"
./target/release/experiments bench-scale --preset tiny --smoke --profile release \
    --out target/BENCH_scale_smoke.json
./target/release/experiments bench-check target/BENCH_scale_smoke.json

echo "==> mvcc bench smoke: read-path artifact must be well-formed"
./target/release/experiments bench-mvcc --preset tiny --smoke --profile release \
    --out target/BENCH_mvcc_smoke.json
./target/release/experiments bench-check target/BENCH_mvcc_smoke.json

echo "==> serve-adaptive smoke: online loop must be deterministic and cache-stable"
adapt_dir="target/gstm-ci-adaptive-smoke"
rm -rf "$adapt_dir"
mkdir -p "$adapt_dir"
./target/release/experiments serve-adaptive --tiny --jobs 2 \
    --cache-dir "$adapt_dir/cache" \
    >"$adapt_dir/cold.out" 2>"$adapt_dir/cold.err"
cp results/serve_adaptive.txt "$adapt_dir/cold.txt"
./target/release/experiments serve-adaptive --tiny --jobs 2 \
    --cache-dir "$adapt_dir/cache" \
    >"$adapt_dir/warm.out" 2>"$adapt_dir/warm.err"
cp results/serve_adaptive.txt "$adapt_dir/warm.txt"
diff -u "$adapt_dir/cold.txt" "$adapt_dir/warm.txt" \
    || { echo "serve-adaptive smoke: warm rerun table diverged"; exit 1; }
grep -qE "runs [1-9][0-9]* hit / 0 miss" "$adapt_dir/warm.err" \
    || { echo "serve-adaptive smoke: warm run missed the run cache"; exit 1; }
grep -q "gate negative control" "$adapt_dir/cold.txt" \
    || { echo "serve-adaptive smoke: missing the gate's negative-control row"; exit 1; }
rm -rf "$adapt_dir"

echo "==> adaptive bench smoke: artifact must be well-formed"
./target/release/experiments bench-adaptive --preset tiny --smoke --profile release \
    --out target/BENCH_adaptive_smoke.json
./target/release/experiments bench-check target/BENCH_adaptive_smoke.json

echo "==> block determinism smoke: same block order must hash identically at 1/2/4/8 threads"
./target/release/experiments block-smoke --threads 1,2,4,8 --requests 200 --seed 11 \
    || { echo "block smoke: parallel block output diverged from the sequential reference"; exit 1; }

echo "==> block bench smoke: artifact must be well-formed"
./target/release/experiments bench-block --preset tiny --smoke --profile release \
    --out target/BENCH_block_smoke.json
./target/release/experiments bench-check target/BENCH_block_smoke.json

echo "==> determinism goldens: default knobs must still pin the legacy spine"
cargo test -q --offline --test determinism

echo "CI gate passed."
