#!/usr/bin/env bash
# Pre-merge gate. Everything here must pass offline (no registry access):
# the tier-1 build and tests are what every PR is judged against.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1: release build"
cargo build --release --offline

echo "==> tier-1: tests"
cargo test -q --workspace --offline

echo "==> bench smoke (tiny preset): artifact must be well-formed"
./target/release/experiments bench --preset tiny --smoke --profile release \
    --out target/BENCH_smoke.json
./target/release/experiments bench-check target/BENCH_smoke.json

echo "CI gate passed."
