#!/usr/bin/env python3
"""Stitch results/*.txt into EXPERIMENTS.md below the marker line.

Usage: python3 scripts/fill_experiments.py [results_dir] [experiments_md]
"""
import sys
from pathlib import Path

ORDER = [
    ("table1", "Table I — model analyzer guidance metric",
     "Paper: genome 34/40, intruder 32/36, kmeans 26/37, labyrinth 44/46, "
     "ssca2 72/57 (rejected), vacation 31/28, yada 19/9 (8/16 threads). "
     "Shape to hold: ssca2 rejected; kmeans/genome/vacation clearly biased."),
    ("table2", "Table II — machine configuration",
     "Paper: 2-socket x86, 8 cores @2.4 GHz / 16 cores @2.7 GHz, 48 GB. "
     "Ours is the simulated substitute (DESIGN.md §2)."),
    ("table3", "Table III — number of states in the model",
     "Paper: genome 678/1555, intruder 71371/1352674, kmeans 3866/12689, "
     "labyrinth 445/797, ssca2 59/124, vacation 3781/15470, yada "
     "27120/217606. Shape to hold: intruder/yada ≫ kmeans/vacation ≫ "
     "genome/labyrinth ≫ ssca2; 16-thread models much larger."),
    ("table4", "Table IV — avg % improvement in abort tail distribution",
     "Paper: genome 76/45, intruder 82/24, kmeans 75/40, labyrinth 51/11, "
     "ssca2 0/0, vacation 26/52, yada 69/29."),
    ("fig3", "Figure 3 — kmeans TSA excerpt",
     "Paper shows state {<a6>,<b7>} with mostly-solo destinations at "
     "p ≈ 0.10–0.19. Shape to hold: a hot state whose high-probability "
     "successors are solo commits spread over the other threads."),
    ("fig4", "Figure 4 — per-thread variance improvement, 8 threads",
     "Paper: 1–53% reduction for all threads of all six guided benchmarks."),
    ("fig5", "Figure 5 — abort tail distributions, 8 threads",
     "Paper: guided (solid) curves cut the default (dotted) tails."),
    ("fig6", "Figure 6 — per-thread variance improvement, 16 threads",
     "Paper: up to 74% reduction; vacation notably weaker than at 8."),
    ("fig7", "Figure 7 — abort tail distributions, 16 threads",
     "Paper: tails shortened; kmeans/intruder show the largest cuts."),
    ("fig8", "Figure 8 — ssca2 under guidance",
     "Paper: 8% degradation at 8 threads, ~186% at 16; abort counts "
     "unchanged. Shape to hold: no benefit, measurable overhead."),
    ("fig9", "Figure 9 — % reduction in non-determinism",
     "Paper: up to 44% at 8 threads, up to 24% at 16."),
    ("fig10", "Figure 10 — slowdown of guided execution",
     "Paper: avg 3.5–4.8% at 8 threads, 19.2% at 16 (≈1.5–1.6× worst for "
     "genome/kmeans); intruder *faster* at 16 threads."),
    ("table5", "Table V — SynQuake guidance metric",
     "Paper: 22 (8 threads) / 19 (16 threads) — strong bias, lower than "
     "every STAMP app."),
    ("fig11", "Figure 11 — SynQuake 4quadrants",
     "Paper: frame variance −64.7% max at 16 threads; abort ratio −57.9%; "
     "speedup ≈35% at 8 threads, ≈none at 16."),
    ("fig12", "Figure 12 — SynQuake 4center_spread6",
     "Paper: frame variance reduced (max 65% across quests); ~12% speedup "
     "at 8 threads."),
]

MARKER = "<!-- MEASURED RESULTS INSERTED BELOW -->"


def main() -> None:
    results = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")
    md_path = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("EXPERIMENTS.md")
    text = md_path.read_text()
    head = text.split(MARKER)[0] + MARKER + "\n"
    parts = [head]
    for key, title, paper in ORDER:
        f = results / f"{key}.txt"
        measured = f.read_text().strip() if f.exists() else "(not yet generated)"
        parts.append(f"\n## {title}\n\n**Paper.** {paper}\n\n"
                     f"**Measured.**\n\n```\n{measured}\n```\n")
    md_path.write_text("".join(parts))
    print(f"wrote {md_path}")


if __name__ == "__main__":
    main()
