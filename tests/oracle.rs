//! End-to-end exercises of the opacity/serializability oracle.
//!
//! Three directions, matching the oracle's contract:
//!
//! * **Positive** — a chaos-perturbed multi-thread bank run (seeded delays,
//!   delayed commits, forced aborts) must still produce a history the
//!   oracle accepts: opacity survives fault injection in a correct engine.
//! * **Negative** — the deliberately broken engine (write-back before the
//!   write-set locks, armed via the test-only hook) must be *caught*: the
//!   oracle is only trustworthy if it rejects a known-bad build.
//! * **Vacuity** — with check events disabled the history is empty, and
//!   the report must say so, so harnesses can't mistake silence for proof.

use std::sync::Arc;

use gstm::check::{check_history, Violation};
use gstm::core::cm::Aggressive;
use gstm::core::{AdmitAll, MemorySink, NullGate, Stm, StmConfig, TVar, VarIdDomain};
use gstm::sim::{ChaosConfig, ChaosGate, SimConfig, SimMachine};
use gstm::{ThreadId, TxId};

/// A fixed transfer cycle keeps the workload dependency-free: each thread
/// walks the ring moving amounts between neighbouring accounts, so the sum
/// is conserved and every pair of threads conflicts.
fn transfer_ring(stm: &Stm, accounts: &[TVar<i64>], thread: u16, ops: u32) {
    let me = ThreadId::new(thread);
    let n = accounts.len();
    for op in 0..ops {
        let from = (op as usize + thread as usize) % n;
        let to = (from + 1 + thread as usize) % n;
        if from == to {
            continue;
        }
        let amount = i64::from(op % 7) + 1;
        stm.run(me, TxId::new(0), |tx| {
            let f = tx.read(&accounts[from])?;
            let t = tx.read(&accounts[to])?;
            tx.write(&accounts[from], f - amount)?;
            tx.write(&accounts[to], t + amount)
        });
    }
}

#[test]
fn chaos_perturbed_run_still_satisfies_the_oracle() {
    let threads = 4;
    let domain = VarIdDomain::new();
    let guard = domain.install();
    let accounts: Vec<TVar<i64>> = (0..6).map(|_| TVar::new(100)).collect();
    drop(guard);

    let machine = SimMachine::new(SimConfig::new(threads, 7));
    let chaos = Arc::new(ChaosGate::new(ChaosConfig::new(0xC0FFEE), machine.gate(), threads));
    let sink = Arc::new(MemorySink::new());
    let stm = Arc::new(Stm::with_parts(
        StmConfig::builder(threads).check_events(true).build(),
        chaos.clone() as Arc<dyn gstm::core::Gate>,
        sink.clone(),
        Arc::new(AdmitAll),
        Arc::new(Aggressive),
    ));
    chaos.arm(stm.doom_handle());

    let workers: Vec<Box<dyn FnOnce() + Send + '_>> = (0..threads as u16)
        .map(|i| {
            let stm = Arc::clone(&stm);
            let accounts = &accounts;
            Box::new(move || transfer_ring(&stm, accounts, i, 64)) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    machine.run(workers);

    let report = check_history(&sink.take());
    assert!(report.ok(), "chaos must not break opacity: {}", report.summary());
    assert!(!report.is_vacuous(), "check events were enabled, history must be non-empty");
    let stats = chaos.stats();
    assert!(stats.dooms > 0, "the chaos gate never injected a forced abort — vacuous chaos");
    assert_eq!(stm.lock_discipline_violations(), 0);
    let total: i64 = accounts.iter().map(|a| *a.load_unlogged()).sum();
    assert_eq!(total, 600, "transfers must conserve the account total");
}

#[test]
fn broken_early_write_back_is_caught_by_the_oracle() {
    let domain = VarIdDomain::new();
    let guard = domain.install();
    let a = TVar::new(1i64);
    let b = TVar::new(2i64);
    drop(guard);

    let sink = Arc::new(MemorySink::new());
    let stm = Stm::with_parts(
        StmConfig::builder(1).check_events(true).build(),
        Arc::new(NullGate),
        sink.clone(),
        Arc::new(AdmitAll),
        Arc::new(Aggressive),
    );
    stm.set_broken_early_write_back(true);
    stm.run(ThreadId::new(0), TxId::new(0), |tx| {
        let x = tx.read(&a)?;
        tx.write(&a, x + 10)?;
        tx.write(&b, x)
    });

    let report = check_history(&sink.take());
    assert!(!report.ok(), "the oracle accepted a build that writes back before locking");
    let unheld =
        report.violations.iter().filter(|v| matches!(v, Violation::UnheldWriteBack { .. })).count();
    assert!(unheld > 0, "expected UnheldWriteBack violations, got: {:?}", report.violations);
}

#[test]
fn disabled_check_events_yield_a_vacuous_history() {
    let domain = VarIdDomain::new();
    let guard = domain.install();
    let a = TVar::new(0i64);
    drop(guard);

    let sink = Arc::new(MemorySink::new());
    let stm = Stm::with_parts(
        StmConfig::new(1), // check_events defaults to off
        Arc::new(NullGate),
        sink.clone(),
        Arc::new(AdmitAll),
        Arc::new(Aggressive),
    );
    stm.run(ThreadId::new(0), TxId::new(0), |tx| {
        let x = tx.read(&a)?;
        tx.write(&a, x + 1)
    });

    let report = check_history(&sink.take());
    assert!(report.ok());
    assert!(report.is_vacuous(), "no check events were emitted, the report must say so");
}
