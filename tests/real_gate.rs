//! RealGate stress tests: the engine and the serve service on native OS
//! threads with real contention, not the deterministic simulator.
//!
//! The simulator validates *logic* under a controlled schedule; these tests
//! validate that nothing in the TL2 hot path or the serve loop secretly
//! depends on the simulator's cooperative stepping. Every test is bounded
//! (fixed iteration counts, no retry-forever loops outside `Stm::run`'s own
//! internal retry) and asserts a conserved quantity that any lost or
//! duplicated commit would break.

use std::sync::Arc;

use gstm::core::{ClockStrategy, RealGate, Stm, StmConfig, TVar, ThreadId, TxId};
use gstm::serve::{run_native, Arrival, ServeSpec, SpineMode};

/// Raw engine stress: N threads shuffle balance between A accounts through
/// real concurrent transactions; the total must be conserved exactly.
#[test]
fn concurrent_bank_transfers_conserve_total() {
    const THREADS: usize = 4;
    const ACCOUNTS: usize = 16;
    const TRANSFERS_PER_THREAD: usize = 2_000;
    const INITIAL: i64 = 1_000;

    // yield_every=3 injects scheduler noise on the hot path, making real
    // interleavings (and hence real conflicts) far more likely.
    let stm = Arc::new(Stm::new_on(StmConfig::new(THREADS), Arc::new(RealGate::new(3))));
    let accounts: Arc<Vec<TVar<i64>>> =
        Arc::new((0..ACCOUNTS).map(|_| TVar::new(INITIAL)).collect());

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let stm = Arc::clone(&stm);
            let accounts = Arc::clone(&accounts);
            scope.spawn(move || {
                let me = ThreadId::new(t as u16);
                // Deterministic per-thread walk over account pairs; every
                // pair conflicts with other threads' pairs regularly.
                for i in 0..TRANSFERS_PER_THREAD {
                    let from = (i * 7 + t * 3) % ACCOUNTS;
                    let to = (from + 1 + i % (ACCOUNTS - 1)) % ACCOUNTS;
                    let amount = (i % 9 + 1) as i64;
                    stm.run(me, TxId::new(0), |tx| {
                        let f = tx.read(&accounts[from])?;
                        let g = tx.read(&accounts[to])?;
                        tx.write(&accounts[from], f - amount)?;
                        tx.write(&accounts[to], g + amount)
                    });
                }
            });
        }
    });

    let total: i64 = accounts.iter().map(|a| *a.load_unlogged()).sum();
    assert_eq!(total, ACCOUNTS as i64 * INITIAL, "concurrent transfers lost money");
}

/// The full low-contention spine under real contention: skip-ahead clock
/// plus a sharded lock table, same conserved-balance workload. Beyond
/// conservation, the clock counters must account for every committed
/// writer — each commit claims exactly one `wv` (a won CAS or one
/// skip-ahead jump; aborted attempts may claim extras, never fewer).
#[test]
fn skip_ahead_spine_conserves_and_accounts_for_every_commit() {
    const THREADS: usize = 4;
    const ACCOUNTS: usize = 16;
    const TRANSFERS_PER_THREAD: usize = 2_000;
    const INITIAL: i64 = 1_000;

    let stm = Arc::new(Stm::new_on(
        StmConfig::builder(THREADS)
            .clock_strategy(ClockStrategy::SkipAhead)
            .table_shards(4)
            .build(),
        Arc::new(RealGate::new(3)),
    ));
    let accounts: Arc<Vec<TVar<i64>>> =
        Arc::new((0..ACCOUNTS).map(|_| TVar::new(INITIAL)).collect());

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let stm = Arc::clone(&stm);
            let accounts = Arc::clone(&accounts);
            scope.spawn(move || {
                let me = ThreadId::new(t as u16);
                for i in 0..TRANSFERS_PER_THREAD {
                    let from = (i * 7 + t * 3) % ACCOUNTS;
                    let to = (from + 1 + i % (ACCOUNTS - 1)) % ACCOUNTS;
                    let amount = (i % 9 + 1) as i64;
                    stm.run(me, TxId::new(0), |tx| {
                        let f = tx.read(&accounts[from])?;
                        let g = tx.read(&accounts[to])?;
                        tx.write(&accounts[from], f - amount)?;
                        tx.write(&accounts[to], g + amount)
                    });
                }
            });
        }
    });

    let total: i64 = accounts.iter().map(|a| *a.load_unlogged()).sum();
    assert_eq!(total, ACCOUNTS as i64 * INITIAL, "skip-ahead spine lost money");
    let stats = stm.clock_stats();
    let commits = (THREADS * TRANSFERS_PER_THREAD) as u64;
    assert!(
        stats.cas_success + stats.skip_ahead >= commits,
        "only {} + {} wv claims for {commits} writer commits",
        stats.cas_success,
        stats.skip_ahead
    );
    assert_eq!(stats.read_only_spared, 0, "every transfer writes");
}

/// The serve subsystem end-to-end on RealGate: native threads, wall-clock
/// arrivals, contended hot store. `run_native` panics internally if the
/// balance-conservation or request-accounting invariants break.
#[test]
fn native_serve_run_conserves_and_accounts() {
    let mut spec = ServeSpec::hot(300);
    // Tight arrivals (1 tick = 1µs below) keep the test short while still
    // forcing queueing: 300 requests ≈ tens of milliseconds of traffic.
    spec.arrival = Arrival::Poisson { mean_gap: 80.0 };
    let report = run_native(&spec, 4, 42, 1_000, 2);
    assert_eq!(report.done + report.shed, 4 * 300, "every request served or shed");
    assert!(report.done > 0, "the service made progress");
    assert_eq!(report.sojourn.count(), report.done, "one sojourn sample per served request");
    assert!(report.elapsed_ticks > 0);
}

/// The per-shard spine end-to-end: placement-tagged store, sharded lock
/// table, skip-ahead clock, and schedule-derived core placement (a no-op
/// on a single-core host — `run_native` still exercises the whole path).
#[test]
fn native_per_shard_spine_serves_and_conserves() {
    let mut spec = ServeSpec::hot(300).with_spine(SpineMode::PerShard);
    spec.arrival = Arrival::Poisson { mean_gap: 80.0 };
    let report = run_native(&spec, 4, 42, 1_000, 2);
    assert_eq!(report.done + report.shed, 4 * 300, "every request served or shed");
    assert!(report.done > 0, "the sharded spine made progress");
    assert_eq!(report.sojourn.count(), report.done);
}

/// Bursty native traffic with a shallow queue bound must shed rather than
/// stall, and still conserve balances.
#[test]
fn native_overload_sheds_gracefully() {
    let mut spec = ServeSpec::hot(400);
    spec.arrival = Arrival::Bursty { mean_gap: 2.0, burst: 16 };
    spec.max_queue_depth = 8;
    let report = run_native(&spec, 3, 7, 250, 0);
    assert_eq!(report.done + report.shed, 3 * 400);
    assert!(report.shed > 0, "overload with a shallow queue must shed");
}
