//! Golden-digest determinism regression test.
//!
//! The TL2 hot-path work (scratch buffers, flat read sets, Gate batching)
//! is only admissible if it provably does not move scheduling: identical
//! seeds must produce identical Tseqs, per-thread virtual times and
//! telemetry. This test pins that property to committed FNV-1a digests
//! captured on the pre-optimization engine — any engine change that
//! perturbs a schedule, a Tseq or a snapshot shows up as a digest
//! mismatch, not as a silent variance shift.
//!
//! Since the experiment-pipeline work, every `run_workload` allocates its
//! `TVar`s inside a fresh per-run `VarIdDomain`, so each digest is a pure
//! function of (workload, threads, seed) — independent of instantiation
//! order, process history, and concurrent runs. The single-`#[test]`
//! structure is kept only so the digests print as one ordered block.

use std::sync::Arc;

use gstm::guide::{run_workload, train, PolicyChoice, RunOptions, RunOutcome};
use gstm::model::{parse_states, Grouping};
use gstm::stamp::{benchmark, InputSize};
use gstm::synquake::{Quest, SynQuake};

/// FNV-1a 64-bit over the rendered run record (stable, dependency-free).
fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Renders everything schedule-visible about one run: the full Tseq, the
/// per-thread virtual finish times (active and wall), makespan, and the
/// commit/abort tallies plus the telemetry snapshot text.
fn digest_outcome(label: &str, out: &RunOutcome) -> String {
    let mut text = format!("== {label} ==\n");
    let events = out.events.as_ref().expect("capture_events was set");
    for (i, tts) in parse_states(events, Grouping::Arrival).iter().enumerate() {
        text.push_str(&format!("tseq[{i}] {tts}\n"));
    }
    text.push_str(&format!(
        "ticks {:?}\nwall {:?}\nmakespan {}\ncommits {:?}\naborts {:?}\n",
        out.thread_ticks, out.thread_wall_ticks, out.makespan, out.commits, out.aborts,
    ));
    let snapshot = out.telemetry.as_ref().expect("telemetry was set");
    text.push_str(&snapshot.to_text());
    text
}

fn measured(threads: usize, seed: u64) -> RunOptions {
    RunOptions::new(threads, seed).capturing().with_telemetry()
}

/// Golden digests captured on the pre-optimization engine (seed 7,
/// 4 threads). If an engine change moves any of these, it changed a
/// schedule, a Tseq or a telemetry snapshot — exactly what the hot-path
/// work must never do.
const GOLDEN: [(&str, u64); 4] = [
    ("kmeans/default", 0xc420_75b6_490b_74c8),
    ("kmeans/guided", 0xf750_7110_4459_dfd9),
    // The synquake digests moved (once) when per-run `VarIdDomain`s
    // landed: ids previously continued from the kmeans runs above, now
    // every run starts at id 1. The kmeans digests — first workload in
    // the process either way — prove the engine itself did not move.
    ("synquake/default", 0x877b_ea19_fe45_b9c5),
    ("synquake/guided", 0x84bf_c748_9a48_98e9),
];

/// The golden digests below were captured under the original `fetch_add`
/// clock and single-partition lock table. The low-contention spine knobs
/// (`ClockStrategy::SkipAhead`, `table_shards > 1`) are strictly opt-in:
/// if a default `StmConfig` ever stops pinning the legacy spine, the
/// goldens stop meaning what they claim — fail here, with a message, not
/// there with a mystery digest.
#[test]
fn default_config_pins_the_legacy_commit_spine() {
    use gstm::core::{ClockStrategy, StmConfig};
    let c = StmConfig::new(4);
    assert_eq!(c.clock, ClockStrategy::FetchAdd, "goldens assume the legacy fetch_add clock");
    assert_eq!(c.table_shards, 1, "goldens assume the single-partition lock table");
}

#[test]
fn golden_digests_are_stable() {
    let threads = 4;
    let mut digests: Vec<(&str, u64)> = Vec::new();

    // One STAMP benchmark: kmeans, small input, default then guided.
    let kmeans = benchmark("kmeans", InputSize::Small).expect("kmeans is known");
    let trained = train(kmeans.as_ref(), &RunOptions::new(threads, 0), &[1, 2, 3], 4.0);
    let out = run_workload(kmeans.as_ref(), &measured(threads, 7));
    digests.push(("kmeans/default", fnv1a(&digest_outcome("kmeans/default", &out))));
    let guided = measured(threads, 7).with_policy(PolicyChoice::guided(Arc::clone(&trained.model)));
    let out = run_workload(kmeans.as_ref(), &guided);
    digests.push(("kmeans/guided", fnv1a(&digest_outcome("kmeans/guided", &out))));

    // One SynQuake quest: first testing quest, tiny config, default then
    // guided (trained on the first training quest at the same size).
    let quake = SynQuake::tiny(Quest::testing()[0]);
    let trainer = SynQuake::tiny(Quest::training()[0]);
    let trained = train(&trainer, &RunOptions::new(threads, 0), &[1, 2, 3], 4.0);
    let out = run_workload(&quake, &measured(threads, 7));
    digests.push(("synquake/default", fnv1a(&digest_outcome("synquake/default", &out))));
    let guided = measured(threads, 7).with_policy(PolicyChoice::guided(Arc::clone(&trained.model)));
    let out = run_workload(&quake, &guided);
    digests.push(("synquake/guided", fnv1a(&digest_outcome("synquake/guided", &out))));

    for (label, digest) in &digests {
        eprintln!("digest {label} {digest:#018x}");
    }
    for ((label, digest), (golden_label, golden)) in digests.iter().zip(GOLDEN.iter()) {
        assert_eq!(label, golden_label);
        assert_eq!(
            *digest, *golden,
            "{label}: digest {digest:#018x} != golden {golden:#018x} — \
             the engine's schedule, Tseq or telemetry changed"
        );
    }
}
