//! End-to-end pipeline test through the facade crate: profile → model →
//! analyze → guided run, on real benchmarks.

use std::sync::Arc;

use gstm::guide::{run_workload, train, PolicyChoice, RunOptions};
use gstm::model::serialize;
use gstm::stamp::{benchmark, InputSize, Kmeans};

#[test]
fn full_paper_pipeline_on_kmeans() {
    let threads = 4;
    let trainer = Kmeans::with_size(InputSize::Small);
    let trained = train(&trainer, &RunOptions::new(threads, 0), &[1, 2, 3, 4], 4.0);
    assert!(trained.tsa.state_count() > 0);
    assert!(trained.analysis.reachable_total > 0);

    // The model survives a serialization round trip and still guides.
    let bytes = serialize::to_bytes(&trained.tsa);
    let restored = serialize::from_bytes(&bytes).expect("round trip");
    assert_eq!(restored.state_count(), trained.tsa.state_count());
    let model = Arc::new(gstm::model::GuidedModel::compile(restored, 4.0));

    let out = run_workload(
        &trainer,
        &RunOptions::new(threads, 42).with_policy(PolicyChoice::Guided { model, k: 16 }),
    );
    assert!(out.total_commits() > 0);
}

#[test]
fn every_benchmark_runs_default_and_guided() {
    for name in gstm::stamp::BENCHMARK_NAMES {
        let w = benchmark(name, InputSize::Small).expect("known");
        let trained = train(w.as_ref(), &RunOptions::new(2, 0), &[1, 2], 4.0);
        let d = run_workload(w.as_ref(), &RunOptions::new(2, 9));
        let g = run_workload(
            w.as_ref(),
            &RunOptions::new(2, 9).with_policy(PolicyChoice::guided(trained.model)),
        );
        assert!(d.total_commits() > 0, "{name}: no default commits");
        assert!(g.total_commits() > 0, "{name}: no guided commits");
        assert_eq!(d.thread_ticks.len(), 2, "{name}");
        assert_eq!(g.thread_ticks.len(), 2, "{name}");
    }
}

#[test]
fn synquake_runs_through_facade() {
    use gstm::synquake::{Quest, SynQuake};
    let w = SynQuake::tiny(Quest::Moving4);
    let out = run_workload(&w, &RunOptions::new(2, 3));
    assert!(out.total_commits() > 0);
}

#[test]
fn analyzer_rejects_ssca2_and_passes_kmeans() {
    // The paper's analyzer split (Table I): ssca2's model lacks bias;
    // kmeans has plenty. Verify the same split falls out of our stack at
    // the training configuration.
    let threads = 8;
    let seeds: Vec<u64> = (1..=8).collect();
    let kmeans = benchmark("kmeans", InputSize::Medium).expect("known");
    let ssca2 = benchmark("ssca2", InputSize::Medium).expect("known");
    let tk = train(kmeans.as_ref(), &RunOptions::new(threads, 0), &seeds, 4.0);
    let ts = train(ssca2.as_ref(), &RunOptions::new(threads, 0), &seeds, 4.0);
    assert!(
        tk.analysis.guidance_metric < ts.analysis.guidance_metric,
        "kmeans ({:.0}%) must be more biased than ssca2 ({:.0}%)",
        tk.analysis.guidance_metric,
        ts.analysis.guidance_metric,
    );
}
