//! Cross-crate integration: STM correctness invariants under every
//! configuration — detection modes, resolutions, contention managers and
//! policies — on the deterministic machine.

use std::sync::Arc;

use gstm::core::{Detection, Resolution, Stm, StmConfig, TVar, ThreadId, TxId};
use gstm::sim::{SimConfig, SimMachine};

/// Runs `threads` workers shuffling value between `vars`, returns final sum.
fn conservation_run(config: StmConfig, seed: u64, threads: usize) -> i64 {
    let machine = SimMachine::new(SimConfig::new(threads, seed));
    let stm = Arc::new(Stm::with_parts(
        config,
        machine.gate(),
        Arc::new(gstm::core::NullSink),
        Arc::new(gstm::core::AdmitAll),
        Arc::new(gstm::core::cm::Aggressive),
    ));
    let vars: Vec<TVar<i64>> = (0..6).map(|_| TVar::new(100)).collect();
    let workers: Vec<Box<dyn FnOnce() + Send + '_>> = (0..threads)
        .map(|i| {
            let stm = Arc::clone(&stm);
            let vars = vars.clone();
            Box::new(move || {
                let t = ThreadId::new(i as u16);
                for k in 0..60usize {
                    let from = (i + k) % vars.len();
                    let to = (i + k * 3 + 1) % vars.len();
                    if from == to {
                        continue;
                    }
                    stm.run(t, TxId::new((k % 3) as u16), |tx| {
                        let a = tx.read(&vars[from])?;
                        let b = tx.read(&vars[to])?;
                        let moved = (a / 2).max(0);
                        tx.work(5);
                        tx.write(&vars[from], a - moved)?;
                        tx.write(&vars[to], b + moved)
                    });
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    machine.run(workers);
    vars.iter().map(|v| *v.load_unlogged()).sum()
}

#[test]
fn conservation_under_commit_time_locking() {
    for seed in 0..4 {
        assert_eq!(conservation_run(StmConfig::new(4), seed, 4), 600);
    }
}

#[test]
fn conservation_under_encounter_time_locking() {
    let cfg = StmConfig::builder(4).detection(Detection::EncounterTime).build();
    for seed in 0..4 {
        assert_eq!(conservation_run(cfg, seed, 4), 600);
    }
}

#[test]
fn conservation_under_abort_readers() {
    let cfg = StmConfig::builder(4).resolution(Resolution::AbortReaders).build();
    for seed in 0..4 {
        assert_eq!(conservation_run(cfg, seed, 4), 600);
    }
}

#[test]
fn conservation_under_wait_for_readers() {
    let cfg = StmConfig::builder(4).resolution(Resolution::WaitForReaders).build();
    for seed in 0..2 {
        assert_eq!(conservation_run(cfg, seed, 4), 600);
    }
}

#[test]
fn conservation_under_every_contention_manager() {
    use gstm::core::cm::{Aggressive, ContentionManager, Greedy, Karma, Polite};
    let managers: Vec<Arc<dyn ContentionManager>> = vec![
        Arc::new(Aggressive),
        Arc::new(Polite::default()),
        Arc::new(Karma::new(4, 8)),
        Arc::new(Greedy::new(4, 8)),
    ];
    for cm in managers {
        let machine = SimMachine::new(SimConfig::new(4, 9));
        let stm = Arc::new(Stm::with_parts(
            StmConfig::new(4),
            machine.gate(),
            Arc::new(gstm::core::NullSink),
            Arc::new(gstm::core::AdmitAll),
            cm,
        ));
        let v = TVar::new(0i64);
        let workers: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|i| {
                let stm = Arc::clone(&stm);
                let v = v.clone();
                Box::new(move || {
                    for _ in 0..40 {
                        stm.run(ThreadId::new(i as u16), TxId::new(0), |tx| {
                            let x = tx.read(&v)?;
                            tx.write(&v, x + 1)
                        });
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        machine.run(workers);
        assert_eq!(*v.load_unlogged(), 160);
    }
}

#[test]
fn snapshot_consistency_never_observes_torn_pairs() {
    // Writers keep (a, b) equal; readers must never see a != b — the
    // classic STM consistency check (zombie reads would fail it).
    let threads = 4;
    let machine = SimMachine::new(SimConfig::new(threads, 5));
    let stm = Arc::new(Stm::new_on(StmConfig::new(threads), machine.gate()));
    let a = TVar::new(0i64);
    let b = TVar::new(0i64);
    let violations = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let workers: Vec<Box<dyn FnOnce() + Send + '_>> = (0..threads)
        .map(|i| {
            let stm = Arc::clone(&stm);
            let (a, b) = (a.clone(), b.clone());
            let violations = Arc::clone(&violations);
            Box::new(move || {
                let t = ThreadId::new(i as u16);
                for _ in 0..50 {
                    if i % 2 == 0 {
                        stm.run(t, TxId::new(0), |tx| {
                            let x = tx.read(&a)?;
                            tx.work(4);
                            tx.write(&a, x + 1)?;
                            tx.write(&b, x + 1)
                        });
                    } else {
                        let (x, y) = stm.run(t, TxId::new(1), |tx| {
                            let x = tx.read(&a)?;
                            tx.work(4);
                            let y = tx.read(&b)?;
                            Ok((x, y))
                        });
                        if x != y {
                            violations.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    machine.run(workers);
    assert_eq!(violations.load(std::sync::atomic::Ordering::Relaxed), 0);
}
