//! Cross-crate telemetry integration: the sink observes exactly what the
//! engine does, snapshots are consistent with the harness's own counters
//! and with the captured transaction sequence, and identical-seed runs
//! export byte-identical snapshots.

use std::sync::Arc;

use gstm::core::{TVar, TxEvent, TxId, Txn};
use gstm::guide::{
    run_workload, train, PolicyChoice, RunOptions, RunOutcome, WorkerEnv, Workload, WorkloadRun,
};
use gstm::stats::TelemetryDump;

/// A maximally contended workload: every thread increments one shared
/// counter. A single `TVar` keeps behaviour independent of the global
/// variable-id counter, so repeat runs inside one process stay identical.
///
/// The last thread is *rare*: it increments only a handful of times with
/// long compute gaps. The trained automaton therefore sees it in few
/// dominant destination states, which is exactly what makes the guided
/// policy hold it back.
struct Contended {
    per_thread: usize,
    rare_per_thread: usize,
}

struct ContendedRun {
    var: TVar<i64>,
    per_thread: usize,
    rare_per_thread: usize,
    expected: i64,
}

impl Workload for Contended {
    fn name(&self) -> &'static str {
        "contended-counter"
    }

    fn instantiate(&self, threads: usize, _seed: u64) -> Box<dyn WorkloadRun> {
        Box::new(ContendedRun {
            var: TVar::new(0),
            per_thread: self.per_thread,
            rare_per_thread: self.rare_per_thread,
            expected: ((threads - 1) * self.per_thread + self.rare_per_thread) as i64,
        })
    }
}

impl WorkloadRun for ContendedRun {
    fn worker(&self, env: WorkerEnv) -> Box<dyn FnOnce() + Send> {
        let var = self.var.clone();
        let rare = env.thread.index() == env.threads - 1;
        let per = if rare { self.rare_per_thread } else { self.per_thread };
        Box::new(move || {
            for _ in 0..per {
                env.stm.run(env.thread, TxId::new(0), |tx: &mut Txn<'_>| {
                    let v = tx.read(&var)?;
                    tx.work(if rare { 40 } else { 4 });
                    tx.write(&var, v + 1)
                });
            }
        })
    }

    fn verify(&self) -> Result<(), String> {
        let got = *self.var.load_unlogged();
        if got == self.expected {
            Ok(())
        } else {
            Err(format!("expected {}, got {got}", self.expected))
        }
    }
}

fn guided_opts(threads: usize, seed: u64) -> RunOptions {
    let w = Contended { per_thread: 40, rare_per_thread: 5 };
    let trained = train(&w, &RunOptions::new(threads, 0), &[1, 2, 3], 4.0);
    RunOptions::new(threads, seed)
        .with_policy(PolicyChoice::Guided { model: Arc::clone(&trained.model), k: 16 })
        .with_telemetry()
        .capturing()
}

fn counted(events: &[TxEvent]) -> (u64, u64, u64) {
    let mut begins = 0;
    let mut aborts = 0;
    let mut commits = 0;
    for e in events {
        match e {
            TxEvent::Begin { .. } => begins += 1,
            TxEvent::Abort { .. } => aborts += 1,
            TxEvent::Commit { .. } => commits += 1,
            // Held and the oracle's check events don't enter the tallies.
            _ => {}
        }
    }
    (begins, aborts, commits)
}

#[test]
fn guided_run_telemetry_is_consistent_with_tseq() {
    let w = Contended { per_thread: 40, rare_per_thread: 5 };
    let out: RunOutcome = run_workload(&w, &guided_opts(4, 7));
    let snap = out.telemetry.as_ref().expect("telemetry requested");

    // Guidance actually held someone on a fully contended counter.
    assert!(snap.total("gstm_tx_holds_total") > 0, "guided run should hold");
    assert_eq!(snap.total("gstm_tx_holds_total"), out.holds.iter().sum::<u64>());

    // The sink and the captured Tseq are two views of the same stream.
    let (begins, aborts, commits) = counted(out.events.as_ref().expect("capture requested"));
    assert_eq!(snap.total("gstm_tx_begins_total"), begins);
    assert_eq!(snap.total("gstm_tx_aborts_total"), aborts);
    assert_eq!(snap.total("gstm_tx_commits_total"), commits);
    assert_eq!(snap.total("gstm_tx_aborts_total"), out.total_aborts());
    assert_eq!(snap.total("gstm_tx_commits_total"), out.total_commits());
    // Every begin either commits or aborts.
    assert_eq!(begins, commits + aborts);
    // Per-reason aborts partition the abort total.
    assert_eq!(snap.total("gstm_tx_aborts_by_reason_total"), aborts);

    // Policy and model gauges were folded in.
    assert!(snap.gauge_value("gstm_guide_holds_immediate_total").is_some());
    assert!(snap.gauge_value("gstm_model_nondeterminism_states").unwrap_or(0) > 0);
    assert_eq!(snap.gauge_value("gstm_sim_makespan_ticks"), Some(out.makespan));
}

#[test]
fn identical_seed_runs_export_byte_identical_snapshots() {
    let w = Contended { per_thread: 25, rare_per_thread: 5 };
    let opts = RunOptions::new(3, 11).with_telemetry();
    let a = run_workload(&w, &opts).telemetry.expect("telemetry");
    let b = run_workload(&w, &opts).telemetry.expect("telemetry");

    assert_eq!(a.to_text(), b.to_text(), "same seed, same exposition bytes");
    assert_eq!(a.to_machine(), b.to_machine(), "same seed, same machine dump");

    // The delta between the two runs is exactly zero everywhere.
    let diff = b.diff(&a);
    for name in [
        "gstm_tx_begins_total",
        "gstm_tx_commits_total",
        "gstm_tx_aborts_total",
        "gstm_tx_holds_total",
    ] {
        assert_eq!(diff.total(name), 0, "{name} must cancel out");
    }
}

#[test]
fn machine_dump_round_trips_through_stats_parser() {
    let w = Contended { per_thread: 20, rare_per_thread: 4 };
    let out = run_workload(&w, &RunOptions::new(2, 5).with_telemetry());
    let snap = out.telemetry.expect("telemetry");

    let dump = TelemetryDump::parse(&snap.to_machine()).expect("well-formed dump");
    assert_eq!(dump.total("gstm_tx_commits_total"), snap.total("gstm_tx_commits_total"));
    assert_eq!(dump.total("gstm_tx_aborts_total"), snap.total("gstm_tx_aborts_total"));
    assert_eq!(
        dump.counter("gstm_sim_makespan_ticks"),
        snap.gauge_value("gstm_sim_makespan_ticks")
    );
    assert_eq!(
        dump.histogram_count("gstm_tx_retries{thread=\"0\"}").unwrap_or(0),
        snap.histogram("gstm_tx_retries", 0).map(|h| h.count()).unwrap_or(0)
    );
}
