//! Metric derivations shared by the table/figure reports.

use std::collections::BTreeMap;

use gstm_guide::RunOutcome;
use gstm_stats::{mean, percent_reduction, sample_stddev, tail_metric};

/// Per-thread sample stddev of execution time (ticks) across runs — the
/// paper's headline quantity.
pub fn per_thread_stddev(runs: &[RunOutcome]) -> Vec<f64> {
    let threads = runs.first().map(|r| r.thread_ticks.len()).unwrap_or(0);
    (0..threads)
        .map(|t| {
            let xs: Vec<f64> = runs.iter().map(|r| r.thread_ticks[t] as f64).collect();
            sample_stddev(&xs)
        })
        .collect()
}

/// Per-thread % variance (stddev) improvement, default → guided
/// (Figures 4, 6, 8a/8c).
pub fn per_thread_improvement(default: &[RunOutcome], guided: &[RunOutcome]) -> Vec<f64> {
    per_thread_stddev(default)
        .into_iter()
        .zip(per_thread_stddev(guided))
        .map(|(d, g)| percent_reduction(d, g))
        .collect()
}

/// Merges one thread's abort histograms across runs (Figures 5, 7, 8b/8d).
pub fn merged_histogram(runs: &[RunOutcome], thread: usize) -> BTreeMap<u32, u64> {
    let mut merged = BTreeMap::new();
    for run in runs {
        if let Some(h) = run.abort_histograms.get(thread) {
            for (&k, &v) in h {
                *merged.entry(k).or_insert(0) += v;
            }
        }
    }
    merged
}

/// Average % improvement of the abort-tail metric over all threads
/// (Table IV).
pub fn avg_tail_improvement(default: &[RunOutcome], guided: &[RunOutcome]) -> f64 {
    let threads = default.first().map(|r| r.thread_ticks.len()).unwrap_or(0);
    let per_thread: Vec<f64> = (0..threads)
        .map(|t| {
            let d = tail_metric(&merged_histogram(default, t)) as f64;
            let g = tail_metric(&merged_histogram(guided, t)) as f64;
            percent_reduction(d, g)
        })
        .collect();
    mean(&per_thread)
}

/// Mean non-determinism |S| across runs.
pub fn mean_nondeterminism(runs: &[RunOutcome]) -> f64 {
    mean(&runs.iter().map(|r| r.nondeterminism as f64).collect::<Vec<_>>())
}

/// Mean makespan (benchmark execution time) across runs.
pub fn mean_makespan(runs: &[RunOutcome]) -> f64 {
    mean(&runs.iter().map(|r| r.makespan as f64).collect::<Vec<_>>())
}

/// Mean abort ratio across runs.
pub fn mean_abort_ratio(runs: &[RunOutcome]) -> f64 {
    mean(&runs.iter().map(RunOutcome::abort_ratio).collect::<Vec<_>>())
}

/// Mean of a named workload stat across runs (0 when absent).
pub fn mean_stat(runs: &[RunOutcome], key: &str) -> f64 {
    let xs: Vec<f64> = runs
        .iter()
        .filter_map(|r| r.workload_stats.iter().find(|(k, _)| k == key).map(|(_, v)| *v))
        .collect();
    mean(&xs)
}

/// Renders a sparse abort histogram as the artifact does:
/// `aborts:frequency` pairs ("0:700 implies that 700 times there were zero
/// aborts").
pub fn render_histogram(h: &BTreeMap<u32, u64>) -> String {
    if h.is_empty() {
        return "(empty)".to_string();
    }
    h.iter().map(|(k, v)| format!("{k}:{v}")).collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_guide::RunOutcome;

    fn outcome(ticks: Vec<u64>, nd: usize, hist0: &[(u32, u64)]) -> RunOutcome {
        RunOutcome {
            thread_ticks: ticks.clone(),
            thread_wall_ticks: ticks.clone(),
            makespan: ticks.iter().copied().max().unwrap_or(0),
            commits: vec![1; ticks.len()],
            aborts: vec![0; ticks.len()],
            holds: vec![0; ticks.len()],
            abort_histograms: {
                let mut v = vec![BTreeMap::new(); ticks.len()];
                v[0] = hist0.iter().copied().collect();
                v
            },
            nondeterminism: nd,
            unknown_hits: 0,
            events: None,
            workload_stats: vec![("x".into(), 2.0)],
            hold_stats: None,
            telemetry: None,
        }
    }

    #[test]
    fn stddev_per_thread() {
        let runs = vec![outcome(vec![10, 20], 1, &[]), outcome(vec![30, 20], 2, &[])];
        let sd = per_thread_stddev(&runs);
        assert!(sd[0] > 0.0);
        assert_eq!(sd[1], 0.0);
    }

    #[test]
    fn improvement_is_signed() {
        let d = vec![outcome(vec![0], 0, &[]), outcome(vec![100], 0, &[])];
        let g = vec![outcome(vec![50], 0, &[]), outcome(vec![50], 0, &[])];
        let imp = per_thread_improvement(&d, &g);
        assert_eq!(imp, vec![100.0]);
    }

    #[test]
    fn histograms_merge_across_runs() {
        let runs =
            vec![outcome(vec![1], 0, &[(0, 5), (2, 1)]), outcome(vec![1], 0, &[(0, 3), (4, 2)])];
        let h = merged_histogram(&runs, 0);
        assert_eq!(h.get(&0), Some(&8));
        assert_eq!(h.get(&2), Some(&1));
        assert_eq!(h.get(&4), Some(&2));
        assert_eq!(render_histogram(&h), "0:8 2:1 4:2");
    }

    #[test]
    fn means_and_stats() {
        let runs = vec![outcome(vec![10], 3, &[]), outcome(vec![20], 5, &[])];
        assert_eq!(mean_nondeterminism(&runs), 4.0);
        assert_eq!(mean_makespan(&runs), 15.0);
        assert_eq!(mean_stat(&runs, "x"), 2.0);
        assert_eq!(mean_stat(&runs, "missing"), 0.0);
    }

    #[test]
    fn empty_histogram_renders() {
        assert_eq!(render_histogram(&BTreeMap::new()), "(empty)");
    }
}
