//! # gstm-experiments — regenerate every table and figure of the paper
//!
//! One module per concern:
//!
//! * [`bench`] — TL2 hot-path microbenchmarks and `BENCH_*.json` output;
//! * [`config`] — sweep parameters (threads, seeds, sizes, Tfactor);
//! * [`study`] — raw run collection (train → default runs → guided runs);
//! * [`metrics`] — derivations (per-thread stddev, tail metric merges, …);
//! * [`report`] — one renderer per paper table/figure;
//! * [`ablation`] — sweeps over the design knobs (Tfactor, k, CMs,
//!   training size).
//!
//! The `experiments` binary wires these together; see `README.md` for the
//! command map (e.g. `cargo run -p gstm-experiments --release -- table1`).

#![warn(missing_docs)]

pub mod ablation;
pub mod bench;
pub mod config;
pub mod metrics;
pub mod report;
pub mod study;
