//! # gstm-experiments — regenerate every table and figure of the paper
//!
//! One module per concern:
//!
//! * [`bench`] — TL2 hot-path microbenchmarks and `BENCH_*.json` output;
//! * [`config`] — sweep parameters (threads, seeds, sizes, Tfactor);
//! * [`study`] — study data types and the training passes;
//! * [`pipeline`] — [`pipeline::StudyPlan`] / [`pipeline::Pipeline`]: the
//!   declarative study runner with a content-addressed cache and a bounded
//!   worker pool (`--jobs N`);
//! * [`cache`] — the content-addressed disk cache itself;
//! * [`checkcmd`] — the `check` subcommand: a fault-injected chaos matrix
//!   judged by the `gstm-check` opacity oracle;
//! * [`recovercmd`] — the `recover` subcommand: a kill-and-recover matrix
//!   over the WAL crash points, storage backends and contention managers;
//! * [`progress`] — the [`progress::Progress`] status-line sink;
//! * [`metrics`] — derivations (per-thread stddev, tail metric merges, …);
//! * [`report`] — one renderer per paper table/figure;
//! * [`ablation`] — sweeps over the design knobs (Tfactor, k, CMs,
//!   training size);
//! * [`adaptcmd`] — the `serve-adaptive` subcommand: online adaptive
//!   guidance (windowed retraining + §IV gate + hot-swap) under drifting
//!   traffic.
//!
//! The `experiments` binary wires these together; see `README.md` for the
//! command map (e.g. `cargo run -p gstm-experiments --release -- table1`).

#![warn(missing_docs)]

pub mod ablation;
pub mod adaptcmd;
pub mod bench;
pub mod cache;
pub mod checkcmd;
pub mod config;
pub mod metrics;
pub mod pipeline;
pub mod progress;
pub mod recovercmd;
pub mod report;
pub mod servecmd;
pub mod study;
