//! Progress reporting for studies, ablations and the pipeline.
//!
//! Every long-running phase used to take its own `&mut dyn FnMut(&str)`
//! callback, which cannot cross the pipeline's worker-pool threads. One
//! shared-reference [`Progress`] sink (`Send + Sync`) replaces them all:
//! the CLI installs [`StderrProgress`], tests install [`CollectingProgress`]
//! to assert on phase ordering, and library callers that don't care pass
//! [`NoProgress`].

use std::sync::Mutex;
use std::time::Instant;

/// A sink for human-readable status lines emitted by long-running phases.
///
/// Implementations must tolerate concurrent `report` calls: the pipeline's
/// worker pool reports from several OS threads at once.
pub trait Progress: Send + Sync {
    /// Reports one status line (no trailing newline).
    fn report(&self, msg: &str);
}

/// Discards all progress.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoProgress;

impl Progress for NoProgress {
    fn report(&self, _msg: &str) {}
}

/// Prints `[  123.4s] msg` lines to stderr, timed from construction —
/// the CLI's historical format, kept byte-compatible.
#[derive(Debug)]
pub struct StderrProgress {
    started: Instant,
}

impl StderrProgress {
    /// Starts the clock now.
    pub fn new() -> Self {
        StderrProgress { started: Instant::now() }
    }

    /// Seconds elapsed since construction.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

impl Default for StderrProgress {
    fn default() -> Self {
        StderrProgress::new()
    }
}

impl Progress for StderrProgress {
    fn report(&self, msg: &str) {
        eprintln!("[{:7.1}s] {msg}", self.elapsed_secs());
    }
}

/// Buffers every line for later inspection (tests).
#[derive(Debug, Default)]
pub struct CollectingProgress {
    lines: Mutex<Vec<String>>,
}

impl CollectingProgress {
    /// An empty collector.
    pub fn new() -> Self {
        CollectingProgress::default()
    }

    /// All lines reported so far, in arrival order.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("progress lock").clone()
    }

    /// Whether any reported line contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.lines.lock().expect("progress lock").iter().any(|l| l.contains(needle))
    }
}

impl Progress for CollectingProgress {
    fn report(&self, msg: &str) {
        self.lines.lock().expect("progress lock").push(msg.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_progress_records_in_order() {
        let p = CollectingProgress::new();
        p.report("one");
        p.report("two");
        assert_eq!(p.lines(), vec!["one".to_string(), "two".to_string()]);
        assert!(p.contains("two"));
        assert!(!p.contains("three"));
    }

    #[test]
    fn sinks_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NoProgress>();
        assert_send_sync::<StderrProgress>();
        assert_send_sync::<CollectingProgress>();
        let p = CollectingProgress::new();
        std::thread::scope(|s| {
            for i in 0..4 {
                let p = &p;
                s.spawn(move || p.report(&format!("thread {i}")));
            }
        });
        assert_eq!(p.lines().len(), 4);
    }
}
