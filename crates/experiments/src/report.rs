//! Renderers: one function per paper table/figure, each returning the
//! text block the harness prints and archives.

use gstm_stats::{percent_reduction, slowdown, TextTable};

use crate::config::ExpConfig;
use crate::metrics::{
    avg_tail_improvement, mean_abort_ratio, mean_makespan, mean_nondeterminism, mean_stat,
    merged_histogram, per_thread_improvement, render_histogram,
};
use crate::study::{QuakeStudy, StampStudy};

fn header(id: &str, caption: &str) -> String {
    format!("== {id}: {caption} ==\n")
}

/// Header plus table, streamed into one buffer ([`TextTable::render_to`])
/// instead of rendering the table to an intermediate `String`.
fn table_report(id: &str, caption: &str, t: &TextTable) -> String {
    let mut out = header(id, caption);
    t.render_to(&mut out).expect("writing to a String cannot fail");
    out
}

/// Table I — model analyzer guidance metric (%), lower is better.
pub fn table1(cfg: &ExpConfig, study: &StampStudy) -> String {
    let mut t = TextTable::new(
        std::iter::once("Application".to_string())
            .chain(cfg.threads_list.iter().map(|n| format!("{n} threads")))
            .collect(),
    );
    for name in gstm_stamp::BENCHMARK_NAMES {
        let mut row = vec![name.to_string()];
        for &threads in &cfg.threads_list {
            match study.cell(name, threads) {
                Some(cell) => {
                    let a = &cell.trained.analysis;
                    let fit = if a.verdict.is_fit() { "" } else { " (unfit)" };
                    row.push(format!("{:.0}{fit}", a.guidance_metric));
                }
                None => row.push("-".into()),
            }
        }
        t.row(row);
    }
    table_report("Table I", "model analyzer guidance metric % (lower is better)", &t)
}

/// Table II — configuration of the (simulated) machines.
pub fn table2(cfg: &ExpConfig) -> String {
    let mut t = TextTable::new(vec!["Feature".into(), "machine A".into(), "machine B".into()]);
    let cores: Vec<String> = cfg.threads_list.iter().map(|n| n.to_string()).collect();
    let get = |i: usize| cores.get(i).cloned().unwrap_or_else(|| "-".into());
    t.row(vec!["Virtual cores".into(), get(0), get(1)]);
    t.row(vec!["Scheduler".into(), "deterministic DES".into(), "deterministic DES".into()]);
    t.row(vec!["Cost jitter".into(), "25%".into(), "25%".into()]);
    t.row(vec![
        "Runs per data point".into(),
        cfg.test_seeds.len().to_string(),
        cfg.test_seeds.len().to_string(),
    ]);
    table_report(
        "Table II",
        "machine configuration (simulated; substitutes the paper's 8/16-core x86 hosts)",
        &t,
    )
}

/// Table III — number of states in each model.
pub fn table3(cfg: &ExpConfig, study: &StampStudy) -> String {
    let mut t = TextTable::new(
        std::iter::once("Application".to_string())
            .chain(cfg.threads_list.iter().map(|n| format!("{n} threads")))
            .collect(),
    );
    for name in gstm_stamp::BENCHMARK_NAMES {
        let mut row = vec![name.to_string()];
        for &threads in &cfg.threads_list {
            row.push(
                study
                    .cell(name, threads)
                    .map(|c| c.trained.tsa.state_count().to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
        t.row(row);
    }
    table_report("Table III", "number of states in the model", &t)
}

/// Table IV — average % improvement in the abort tail-distribution metric.
pub fn table4(cfg: &ExpConfig, study: &StampStudy) -> String {
    let mut t = TextTable::new(
        std::iter::once("Application".to_string())
            .chain(cfg.threads_list.iter().map(|n| format!("{n} threads")))
            .collect(),
    );
    for name in gstm_stamp::BENCHMARK_NAMES {
        let mut row = vec![name.to_string()];
        for &threads in &cfg.threads_list {
            row.push(
                study
                    .cell(name, threads)
                    .map(|c| {
                        format!("{:.0}%", avg_tail_improvement(&c.default_runs, &c.guided_runs))
                    })
                    .unwrap_or_else(|| "-".into()),
            );
        }
        t.row(row);
    }
    table_report("Table IV", "average % improvement in the abort tail distribution", &t)
}

/// Figure 3 — an excerpt of the kmeans TSA: the hottest state and its
/// transition probabilities.
pub fn fig3(cfg: &ExpConfig, study: &StampStudy) -> String {
    let threads = cfg.threads_list[0];
    let Some(cell) = study.cell("kmeans", threads) else {
        return header("Figure 3", "kmeans TSA excerpt") + "(kmeans not in study)\n";
    };
    let tsa = &cell.trained.tsa;
    // Hottest state = most outbound observations.
    let hot = tsa
        .space()
        .iter()
        .max_by_key(|(id, _)| tsa.out_edges(*id).iter().map(|(_, c)| *c).sum::<u64>());
    let Some((hot_id, hot_state)) = hot else {
        return header("Figure 3", "kmeans TSA excerpt") + "(empty model)\n";
    };
    let mut out = header(
        "Figure 3",
        &format!("kmeans TSA excerpt at {threads} threads: hottest state and its transitions"),
    );
    out.push_str(&format!("state {hot_id} = {hot_state}\n"));
    let mut edges: Vec<_> = tsa.out_edges(hot_id).to_vec();
    edges.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    let total: u64 = edges.iter().map(|(_, c)| c).sum();
    for (to, count) in edges.iter().take(10) {
        out.push_str(&format!(
            "  -> {}  p={:.3}\n",
            tsa.space().state(*to),
            *count as f64 / total as f64
        ));
    }
    if edges.len() > 10 {
        out.push_str(&format!("  ... {} more edges\n", edges.len() - 10));
    }
    out
}

/// Figures 4 (8 threads) and 6 (16 threads) — per-thread % execution-time
/// variance improvement for the six guided benchmarks.
pub fn fig_variance(threads: usize, study: &StampStudy, figure: &str) -> String {
    let mut out = header(
        figure,
        &format!("per-thread % execution-time variance improvement, {threads} threads"),
    );
    for name in gstm_stamp::BENCHMARK_NAMES {
        if name == "ssca2" {
            continue; // rejected by the analyzer; shown in Figure 8.
        }
        let Some(cell) = study.cell(name, threads) else { continue };
        let imp = per_thread_improvement(&cell.default_runs, &cell.guided_runs);
        let cells: Vec<String> = imp.iter().map(|v| format!("{v:+.0}%")).collect();
        out.push_str(&format!("{name:<10} {}\n", cells.join(" ")));
    }
    out
}

/// Figures 5 (8 threads) and 7 (16 threads) — abort tail distributions,
/// default (D) vs guided (G), one serially-picked thread per benchmark.
pub fn fig_tails(threads: usize, study: &StampStudy, figure: &str, thread_base: usize) -> String {
    let mut out =
        header(figure, &format!("abort distributions (aborts:frequency), {threads} threads"));
    let apps: Vec<&str> =
        gstm_stamp::BENCHMARK_NAMES.iter().copied().filter(|&n| n != "ssca2").collect();
    for (i, name) in apps.iter().enumerate() {
        let Some(cell) = study.cell(name, threads) else { continue };
        let thread = (thread_base + i) % threads;
        out.push_str(&format!(
            "{name} thread {thread}\n  D: {}\n  G: {}\n",
            render_histogram(&merged_histogram(&cell.default_runs, thread)),
            render_histogram(&merged_histogram(&cell.guided_runs, thread)),
        ));
    }
    out
}

/// Figure 8 — ssca2 under (mis)guidance: per-thread % change and abort
/// tails at both thread counts.
pub fn fig8(cfg: &ExpConfig, study: &StampStudy) -> String {
    let mut out = header(
        "Figure 8",
        "ssca2 with guided execution (the analyzer-rejected model): % improvement per thread",
    );
    for &threads in &cfg.threads_list {
        let Some(cell) = study.cell("ssca2", threads) else { continue };
        let imp = per_thread_improvement(&cell.default_runs, &cell.guided_runs);
        let cells: Vec<String> = imp.iter().map(|v| format!("{v:+.0}%")).collect();
        out.push_str(&format!("{threads} threads: {}\n", cells.join(" ")));
        let probe = threads / 2;
        out.push_str(&format!(
            "  thread {probe} aborts D: {}\n  thread {probe} aborts G: {}\n",
            render_histogram(&merged_histogram(&cell.default_runs, probe)),
            render_histogram(&merged_histogram(&cell.guided_runs, probe)),
        ));
    }
    out
}

/// Figure 9 — % reduction in non-determinism (|S|), guided vs default.
pub fn fig9(cfg: &ExpConfig, study: &StampStudy) -> String {
    let mut t = TextTable::new(
        std::iter::once("Application".to_string())
            .chain(cfg.threads_list.iter().map(|n| format!("{n} threads")))
            .collect(),
    );
    for name in gstm_stamp::BENCHMARK_NAMES {
        let mut row = vec![name.to_string()];
        for &threads in &cfg.threads_list {
            row.push(
                study
                    .cell(name, threads)
                    .map(|c| {
                        let d = mean_nondeterminism(&c.default_runs);
                        let g = mean_nondeterminism(&c.guided_runs);
                        format!("{:+.0}% ({d:.0}->{g:.0})", percent_reduction(d, g))
                    })
                    .unwrap_or_else(|| "-".into()),
            );
        }
        t.row(row);
    }
    table_report("Figure 9", "% reduction in non-determinism |S| (guided vs default)", &t)
}

/// Figure 10 — slowdown (×) of guided vs default execution.
pub fn fig10(cfg: &ExpConfig, study: &StampStudy) -> String {
    let mut t = TextTable::new(
        std::iter::once("Application".to_string())
            .chain(cfg.threads_list.iter().map(|n| format!("{n} threads")))
            .collect(),
    );
    for name in gstm_stamp::BENCHMARK_NAMES {
        let mut row = vec![name.to_string()];
        for &threads in &cfg.threads_list {
            row.push(
                study
                    .cell(name, threads)
                    .map(|c| {
                        let s =
                            slowdown(mean_makespan(&c.default_runs), mean_makespan(&c.guided_runs));
                        format!("{s:.2}x")
                    })
                    .unwrap_or_else(|| "-".into()),
            );
        }
        t.row(row);
    }
    table_report("Figure 10", "slowdown (x) of guided vs default execution", &t)
}

/// Table V — SynQuake guidance metric.
pub fn table5(cfg: &ExpConfig, study: &QuakeStudy) -> String {
    let mut t = TextTable::new(
        std::iter::once("Application".to_string())
            .chain(cfg.threads_list.iter().map(|n| format!("{n} threads")))
            .collect(),
    );
    let mut row = vec!["SynQuake".to_string()];
    for &threads in &cfg.threads_list {
        row.push(
            study
                .trained
                .get(&threads)
                .map(|m| format!("{:.0}", m.analysis.guidance_metric))
                .unwrap_or_else(|| "-".into()),
        );
    }
    t.row(row);
    table_report("Table V", "SynQuake guidance metric % (lower is better)", &t)
}

/// Figures 11 (4quadrants) and 12 (4center_spread6) — frame-rate variance
/// improvement, abort-ratio reduction, slowdown.
pub fn fig_quake(
    cfg: &ExpConfig,
    study: &QuakeStudy,
    quest: gstm_synquake::Quest,
    figure: &str,
) -> String {
    let mut t = TextTable::new(vec![
        "Threads".into(),
        "frame variance improvement".into(),
        "abort ratio reduction".into(),
        "slowdown (x)".into(),
    ]);
    for &threads in &cfg.threads_list {
        let Some(cell) = study.cells.iter().find(|c| c.quest == quest && c.threads == threads)
        else {
            continue;
        };
        let var_d = mean_stat(&cell.default_runs, "frame_stddev");
        let var_g = mean_stat(&cell.guided_runs, "frame_stddev");
        let ar_d = mean_abort_ratio(&cell.default_runs);
        let ar_g = mean_abort_ratio(&cell.guided_runs);
        let s = slowdown(mean_makespan(&cell.default_runs), mean_makespan(&cell.guided_runs));
        t.row(vec![
            threads.to_string(),
            format!("{:+.1}% ({var_d:.0}->{var_g:.0})", percent_reduction(var_d, var_g)),
            format!("{:+.1}% ({:.3}->{:.3})", percent_reduction(ar_d, ar_g), ar_d, ar_g),
            format!("{s:.2}x"),
        ]);
    }
    table_report(figure, &format!("SynQuake quest {quest}: guided vs default"), &t)
}
