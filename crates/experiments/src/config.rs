//! Experiment configuration shared by every table/figure.

use gstm_stamp::InputSize;

/// Configuration of an experiment sweep.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Thread counts to evaluate (the paper: 8 and 16).
    pub threads_list: Vec<usize>,
    /// Seeds used for the measured (test) runs; the paper averages 20 runs.
    pub test_seeds: Vec<u64>,
    /// Seeds used for profiling/training; the paper trains from 20 runs.
    pub train_seeds: Vec<u64>,
    /// The `Tfactor` threshold knob (§VI: 4 balances).
    pub tfactor: f64,
    /// Training input size (the artifact default: medium).
    pub train_size: InputSize,
    /// Test input size (the artifact default: small).
    pub test_size: InputSize,
    /// SynQuake frame counts: (training frames, test frames). The paper
    /// uses 1000/10000 frames with 1000 players; we scale both down so the
    /// full sweep fits a CI budget (DESIGN.md §2).
    pub synquake_frames: (u64, u64),
    /// SynQuake player count (paper: 1000; scaled to 600 by default).
    pub synquake_players: usize,
    /// Requests per thread in the `serve` tail-latency study.
    pub serve_requests: usize,
    /// Directory results are written to.
    pub out_dir: std::path::PathBuf,
    /// Collect telemetry snapshots on every measured run (the CLI's
    /// `--metrics <path>` sets this and writes the merged snapshot there).
    pub telemetry: bool,
    /// Worker-pool width for the pipeline (`--jobs N`; 1 = sequential).
    /// Results are collected by index, so output is identical at any width.
    pub jobs: usize,
    /// Content-addressed cache directory (`--cache-dir PATH`); `None`
    /// (`--no-cache`) disables caching of trained models and run outcomes.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl ExpConfig {
    /// The full configuration used for EXPERIMENTS.md (paper parity:
    /// 20 + 20 seeds).
    pub fn full() -> Self {
        ExpConfig {
            threads_list: vec![8, 16],
            test_seeds: (1000..1020).collect(),
            train_seeds: (1..21).collect(),
            tfactor: 4.0,
            train_size: InputSize::Medium,
            test_size: InputSize::Small,
            synquake_frames: (10, 24),
            synquake_players: 600,
            serve_requests: 400,
            out_dir: "results".into(),
            telemetry: false,
            jobs: 1,
            cache_dir: Some(std::path::PathBuf::from("target/gstm-cache")),
        }
    }

    /// A reduced configuration for smoke testing the harness.
    pub fn fast() -> Self {
        ExpConfig {
            threads_list: vec![4, 8],
            test_seeds: (1000..1006).collect(),
            train_seeds: (1..7).collect(),
            synquake_frames: (5, 10),
            synquake_players: 150,
            serve_requests: 200,
            ..ExpConfig::full()
        }
    }

    /// A minimal configuration for CI smoke runs and golden tests: one
    /// small thread count, two seeds each way, tiny SynQuake.
    pub fn tiny() -> Self {
        ExpConfig {
            threads_list: vec![2],
            test_seeds: vec![1000, 1001],
            train_seeds: vec![1, 2],
            synquake_frames: (2, 3),
            synquake_players: 40,
            serve_requests: 80,
            ..ExpConfig::fast()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matches_paper_parameters() {
        let c = ExpConfig::full();
        assert_eq!(c.threads_list, vec![8, 16]);
        assert_eq!(c.test_seeds.len(), 20);
        assert_eq!(c.train_seeds.len(), 20);
        assert_eq!(c.tfactor, 4.0);
        assert_eq!(c.train_size, InputSize::Medium);
        assert_eq!(c.test_size, InputSize::Small);
    }

    #[test]
    fn fast_is_smaller() {
        let f = ExpConfig::fast();
        assert!(f.test_seeds.len() < 20);
        assert!(f.synquake_players < 1000);
    }

    #[test]
    fn tiny_is_smallest_and_defaults_are_pipeline_safe() {
        let t = ExpConfig::tiny();
        assert_eq!(t.threads_list, vec![2]);
        assert!(t.test_seeds.len() <= ExpConfig::fast().test_seeds.len());
        assert_eq!(t.jobs, 1, "sequential unless --jobs is given");
        assert!(t.cache_dir.is_some(), "caching is on by default");
    }
}
