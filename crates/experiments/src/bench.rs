//! TL2 hot-path microbenchmarks and the `BENCH_*.json` writer.
//!
//! Criterion is off-limits (the workspace builds offline), so this module
//! is a self-contained harness: each microloop drives `gstm-core`
//! transactions directly on a [`NullGate`] STM — no simulator, no virtual
//! time — and reports wall-clock ops/sec for the engine paths the TL2
//! overhaul targets (read, read+validate, write buffering, commit lock
//! acquisition, read-own-write lookup, validation abort). One small STAMP
//! run per detection mode is timed on the full simulated machine so the
//! sim/gate layer shows up in the trajectory too; its `makespan_ticks` is
//! deterministic and doubles as a schedule-stability check between
//! harness runs.
//!
//! Results are written through `gstm-telemetry`'s dependency-free
//! [`JsonValue`] writer as a versioned `BENCH_tl2_hotpath.json`:
//!
//! ```json
//! {
//!   "schema": "gstm-bench", "version": 1,
//!   "preset": "default", "smoke": false, "profile": "release-bench",
//!   "metrics":  {"lazy.read_ops_per_sec": 1.0e7, "...": 0},
//!   "baseline": {"lazy.read_ops_per_sec": 0.8e7, "...": 0}
//! }
//! ```
//!
//! `metrics` is a flat `key -> number` map; `baseline` (optional) carries
//! the same keys from an earlier capture so before/after lives in one
//! committed artifact. Every loop takes the **best of `reps`
//! repetitions**, which filters scheduler noise without averaging away
//! real regressions.

use std::time::Instant;

use gstm_core::{
    ClockStats, ClockStrategy, Detection, MvccStats, ReadMode, RealGate, RegistryFootprint,
    Resolution, Stm, StmConfig, TVar, ThreadId, TxId,
};
use gstm_guide::{run_workload, RunOptions};
use gstm_telemetry::{JsonValue, MvccGauges, SpineGauges};

use crate::progress::Progress;

/// Schema tag of the bench artifact.
pub const BENCH_SCHEMA: &str = "gstm-bench";
/// Version of the bench artifact layout.
pub const BENCH_VERSION: u32 = 1;

/// Suite tag of the TL2 hot-path artifact (the default when an artifact
/// predates the `suite` field).
pub const SUITE_HOTPATH: &str = "tl2_hotpath";
/// Suite tag of the experiment-pipeline artifact (`BENCH_pipeline.json`).
pub const SUITE_PIPELINE: &str = "pipeline";
/// Suite tag of the write-ahead-log artifact (`BENCH_wal.json`).
pub const SUITE_WAL: &str = "wal";
/// Suite tag of the commit-spine scaling artifact (`BENCH_scale.json`).
pub const SUITE_SCALE: &str = "scale";
/// Suite tag of the multi-version read-path artifact (`BENCH_mvcc.json`).
pub const SUITE_MVCC: &str = "mvcc";
/// Suite tag of the online-adaptive-guidance artifact
/// (`BENCH_adaptive.json`).
pub const SUITE_ADAPTIVE: &str = "adaptive";
/// Suite tag of the ordered block-execution artifact (`BENCH_block.json`).
pub const SUITE_BLOCK: &str = "block";

/// Metric keys every valid hot-path artifact must contain (`bench-check`
/// gates on presence, never on values).
pub const REQUIRED_METRICS: &[&str] = &[
    "lazy.read_ops_per_sec",
    "lazy.read_validate_ops_per_sec",
    "lazy.write_ops_per_sec",
    "lazy.commit_ops_per_sec",
    "lazy.read_own_write_ops_per_sec",
    "lazy.abort_ops_per_sec",
    "eager.read_ops_per_sec",
    "eager.read_validate_ops_per_sec",
    "eager.write_ops_per_sec",
    "eager.commit_ops_per_sec",
    "eager.read_own_write_ops_per_sec",
    "eager.abort_ops_per_sec",
    "stamp.kmeans.lazy.makespan_ticks",
    "stamp.kmeans.lazy.commits_per_sec",
    "stamp.kmeans.eager.makespan_ticks",
    "stamp.kmeans.eager.commits_per_sec",
];

/// Metric keys every valid pipeline artifact must contain.
pub const PIPELINE_REQUIRED_METRICS: &[&str] = &[
    "pipeline.cold_wall_ms",
    "pipeline.warm_wall_ms",
    "pipeline.warm_speedup",
    "pipeline.cells",
    "pipeline.cold_model_misses",
    "pipeline.cold_train_wall_ms",
    "pipeline.warm_model_hits",
    "pipeline.warm_model_misses",
    "pipeline.warm_run_hits",
    "pipeline.warm_run_misses",
    "pipeline.warm_train_wall_ms",
];

/// Metric keys every valid WAL artifact must contain.
pub const WAL_REQUIRED_METRICS: &[&str] = &[
    "wal.append_ops_per_sec",
    "wal.recover_1k_us",
    "wal.recover_8k_us",
    "wal.recover_32k_us",
    "wal.serve_ephemeral_wall_ms",
    "wal.serve_durable_wall_ms",
    "wal.durable_overhead_pct",
];

/// Thread counts the scale suite sweeps.
pub const SCALE_THREADS: &[usize] = &[1, 2, 4, 8, 16];

/// Metric keys every valid scale artifact must contain.
pub const SCALE_REQUIRED_METRICS: &[&str] = &[
    "scale.legacy.t1.commit_ops_per_sec",
    "scale.legacy.t2.commit_ops_per_sec",
    "scale.legacy.t4.commit_ops_per_sec",
    "scale.legacy.t8.commit_ops_per_sec",
    "scale.legacy.t16.commit_ops_per_sec",
    "scale.skip.t1.commit_ops_per_sec",
    "scale.skip.t2.commit_ops_per_sec",
    "scale.skip.t4.commit_ops_per_sec",
    "scale.skip.t8.commit_ops_per_sec",
    "scale.skip.t16.commit_ops_per_sec",
    "scale.skip.t4.cas_success",
    "scale.skip.t4.skip_ahead",
    "scale.skip.read_only_ticks_avoided",
    "serve.global.req_per_sec",
    "serve.global.sojourn_p99_ticks",
    "serve.sharded.req_per_sec",
    "serve.sharded.sojourn_p99_ticks",
    "footprint.reader_registries_allocated",
    "footprint.reader_registry_lazy_bytes",
    "footprint.reader_registry_eager_bytes",
];

/// Metric keys every valid MVCC artifact must contain: the read-mostly
/// serve cell under each read mode (throughput, overall and read-only
/// tail, read-only aborts), plus the snapshot engine's version-ring
/// counters.
pub const MVCC_REQUIRED_METRICS: &[&str] = &[
    "mvcc.latest.req_per_sec",
    "mvcc.latest.sojourn_p99_ticks",
    "mvcc.latest.sojourn_ro_p99_ticks",
    "mvcc.latest.ro_aborts",
    "mvcc.snapshot.req_per_sec",
    "mvcc.snapshot.sojourn_p99_ticks",
    "mvcc.snapshot.sojourn_ro_p99_ticks",
    "mvcc.snapshot.ro_aborts",
    "mvcc.snapshot.snapshot_txns",
    "mvcc.snapshot.snapshot_reads",
    "mvcc.snapshot.spared_validations",
    "mvcc.snapshot.versions_published",
    "mvcc.snapshot.gc_lag_events",
    "mvcc.snapshot.ring_len_max",
];

/// Metric keys every valid adaptive artifact must contain: the drifting
/// serve cell under the stale static model vs the online-adaptive loop
/// (throughput in virtual time, tail, harness wall-clock), the loop's own
/// counters, and the §IV gate's negative control.
pub const ADAPTIVE_REQUIRED_METRICS: &[&str] = &[
    "adaptive.static.req_per_ktick",
    "adaptive.static.sojourn_p99_ticks",
    "adaptive.static.wall_ms",
    "adaptive.adaptive.req_per_ktick",
    "adaptive.adaptive.sojourn_p99_ticks",
    "adaptive.adaptive.wall_ms",
    "adaptive.loop.retrain_attempts",
    "adaptive.loop.installs",
    "adaptive.loop.rejects",
    "adaptive.loop.stand_downs",
    "adaptive.gate.uniform_rejected",
];

/// Metric keys every valid block artifact must contain: the same
/// read-mostly serve cell under interleaved TL2, interleaved snapshot
/// reads, and ordered block execution (throughput and tail each), the
/// block arm's speedup over TL2, the executor's counters, and the
/// schedule-invariance verdict (1.0 = parallel output byte-identical to
/// the sequential reference at every checked thread count).
pub const BLOCK_REQUIRED_METRICS: &[&str] = &[
    "block.tl2.req_per_sec",
    "block.tl2.sojourn_p99_ticks",
    "block.snapshot.req_per_sec",
    "block.snapshot.sojourn_p99_ticks",
    "block.block.req_per_sec",
    "block.block.sojourn_p99_ticks",
    "block.block.speedup_vs_tl2",
    "block.block.blocks",
    "block.block.re_executions",
    "block.block.validation_fails",
    "block.block.dependency_stalls",
    "block.block.waves",
    "block.block.determinism_ok",
];

/// Harness parameters (iteration counts scale with the preset, repetition
/// counts with smoke mode).
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Suite tag recorded in the artifact ([`SUITE_HOTPATH`] or
    /// [`SUITE_PIPELINE`]); selects which metric keys `bench-check`
    /// requires.
    pub suite: String,
    /// Preset name recorded in the artifact: `tiny` (CI smoke) or `default`.
    pub preset: String,
    /// Smoke mode: fewest reps, smallest loops; checks plumbing, not perf.
    pub smoke: bool,
    /// Cargo profile label recorded in the artifact (the harness cannot
    /// observe it, so `scripts/bench.sh` passes it through `--profile`).
    pub profile: String,
    /// Transactions per timed microloop repetition.
    pub iters: usize,
    /// Repetitions per microloop; best-of is reported.
    pub reps: usize,
}

impl BenchConfig {
    /// Config for a preset name (`tiny` or `default`).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown preset names.
    pub fn for_preset(preset: &str, smoke: bool) -> Result<Self, String> {
        let iters = match preset {
            "tiny" => 2_000,
            "default" => 30_000,
            other => return Err(format!("unknown bench preset {other:?} (tiny|default)")),
        };
        Ok(BenchConfig {
            suite: SUITE_HOTPATH.to_string(),
            preset: preset.to_string(),
            smoke,
            profile: "unknown".to_string(),
            iters: if smoke { iters.min(500) } else { iters },
            reps: if smoke { 2 } else { 5 },
        })
    }
}

/// Accesses per transaction in each microloop (reads in the read loops,
/// writes in the write/commit loops). Small enough to model real STAMP
/// transactions, large enough that per-access costs dominate begin/commit
/// fixed costs.
const SET_SIZE: usize = 32;

fn engine(detection: Detection) -> Stm {
    // Two logical threads: 0 runs the measured loop, 1 plays the
    // interfering committer that forces validation / aborts.
    Stm::new(StmConfig::builder(2).detection(detection).build())
}

fn vars(n: usize) -> Vec<TVar<u64>> {
    (0..n as u64).map(TVar::new).collect()
}

fn t0() -> ThreadId {
    ThreadId::new(0)
}

fn t1() -> ThreadId {
    ThreadId::new(1)
}

/// Best-of-`reps` ops/sec for `ops_per_iter * iters` operations of `body`.
fn time_loop(cfg: &BenchConfig, ops_per_iter: usize, mut body: impl FnMut()) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..cfg.reps {
        let start = Instant::now();
        for _ in 0..cfg.iters {
            body();
        }
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        best = best.max((cfg.iters * ops_per_iter) as f64 / secs);
    }
    best
}

/// Read-only transactions: `SET_SIZE` reads, read-only commit fast path.
fn bench_read(cfg: &BenchConfig, detection: Detection) -> f64 {
    let stm = engine(detection);
    let vs = vars(SET_SIZE);
    time_loop(cfg, SET_SIZE, || {
        stm.run(t0(), TxId::new(1), |txn| {
            let mut acc = 0u64;
            for v in &vs {
                acc = acc.wrapping_add(txn.read(v)?);
            }
            Ok(acc)
        });
    })
}

/// Reads plus a forced full read-set validation: a thread-1 commit bumps
/// the global clock before each measured transaction, so its commit sees
/// `wv != rv + 1` and must validate all `SET_SIZE` read stripes.
fn bench_read_validate(cfg: &BenchConfig, detection: Detection) -> f64 {
    let stm = engine(detection);
    let vs = vars(SET_SIZE);
    let bump = TVar::new(0u64);
    let out = TVar::new(0u64);
    time_loop(cfg, SET_SIZE, || {
        stm.run(t1(), TxId::new(9), |txn| txn.modify(&bump, |x| x + 1));
        stm.run(t0(), TxId::new(1), |txn| {
            let mut acc = 0u64;
            for v in &vs {
                acc = acc.wrapping_add(txn.read(v)?);
            }
            txn.write(&out, acc)?;
            Ok(())
        });
    })
}

/// Write buffering: `SET_SIZE` writes into `SET_SIZE / 2` vars, so half
/// the writes miss the write index (fresh redo-log entry) and half hit it
/// (in-place overwrite).
fn bench_write(cfg: &BenchConfig, detection: Detection) -> f64 {
    let stm = engine(detection);
    let vs = vars(SET_SIZE / 2);
    time_loop(cfg, SET_SIZE, || {
        stm.run(t0(), TxId::new(1), |txn| {
            for round in 0..2u64 {
                for (i, v) in vs.iter().enumerate() {
                    txn.write(v, round + i as u64)?;
                }
            }
            Ok(())
        });
    })
}

/// Commit lock acquisition: `SET_SIZE` distinct vars written once each, so
/// commit sorts, dedups and locks `SET_SIZE` stripes then writes back.
fn bench_commit(cfg: &BenchConfig, detection: Detection) -> f64 {
    let stm = engine(detection);
    let vs = vars(SET_SIZE);
    time_loop(cfg, SET_SIZE, || {
        stm.run(t0(), TxId::new(1), |txn| {
            for (i, v) in vs.iter().enumerate() {
                txn.write(v, i as u64)?;
            }
            Ok(())
        });
    })
}

/// Read-own-write: one write, then `SET_SIZE` reads of the same var, each
/// of which must find the buffered value via the write index.
fn bench_read_own_write(cfg: &BenchConfig, detection: Detection) -> f64 {
    let stm = engine(detection);
    let v = TVar::new(7u64);
    time_loop(cfg, SET_SIZE, || {
        stm.run(t0(), TxId::new(1), |txn| {
            txn.write(&v, 13)?;
            let mut acc = 0u64;
            for _ in 0..SET_SIZE {
                acc = acc.wrapping_add(txn.read(&v)?);
            }
            Ok(acc)
        });
    })
}

/// Validation-abort path: thread 0 reads a var, thread 1 commits a bump to
/// it mid-body, and thread 0's commit-time validation must abort and roll
/// back. Counts aborted attempts per second.
fn bench_abort(cfg: &BenchConfig, detection: Detection) -> f64 {
    let stm = engine(detection);
    let contended = TVar::new(0u64);
    let other = TVar::new(0u64);
    time_loop(cfg, 1, || {
        let result = stm.try_run_once(t0(), TxId::new(1), |txn| {
            let seen = txn.read(&contended)?;
            stm.run(t1(), TxId::new(9), |inner| inner.modify(&contended, |x| x + 1));
            txn.write(&other, seen)?;
            Ok(())
        });
        assert!(result.is_err(), "abort microloop must conflict every iteration");
    })
}

/// One small STAMP run on the full simulated machine. Returns
/// `(makespan_ticks, commits_per_sec)`; the former is deterministic for a
/// fixed seed, the latter is the wall-clock sim throughput.
fn bench_stamp(cfg: &BenchConfig, detection: Detection) -> (f64, f64) {
    let workload = gstm_stamp::benchmark("kmeans", gstm_stamp::InputSize::Small)
        .expect("kmeans is a known benchmark");
    let opts = RunOptions { detection: Some(detection), ..RunOptions::new(4, 42) };
    let mut makespan = 0u64;
    let mut best = 0.0f64;
    // The sim's wall-clock throughput is by far the noisiest metric here
    // (channel rendezvous under OS scheduling); use every rep for it.
    let reps = if cfg.smoke { 1 } else { cfg.reps };
    for rep in 0..reps {
        let start = Instant::now();
        let out = run_workload(workload.as_ref(), &opts);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        best = best.max(out.total_commits() as f64 / secs);
        if rep == 0 {
            makespan = out.makespan;
        } else {
            assert_eq!(out.makespan, makespan, "sim makespan must be seed-deterministic");
        }
    }
    (makespan as f64, best)
}

/// Append throughput: records buffered + group-committed per second into
/// an in-memory device (fresh WAL per rep so device growth from earlier
/// reps cannot pollute the timing).
fn bench_wal_append(cfg: &BenchConfig) -> f64 {
    use gstm_wal::{LogDevice, MemDevice, Wal, WalConfig};
    let payload = [0xA5u8; 25];
    let mut best = 0.0f64;
    for _ in 0..cfg.reps {
        let log: std::sync::Arc<dyn LogDevice> = std::sync::Arc::new(MemDevice::new());
        let snap: std::sync::Arc<dyn LogDevice> = std::sync::Arc::new(MemDevice::new());
        let wal = Wal::new(WalConfig::new(), log, snap);
        let start = Instant::now();
        for seq in 0..cfg.iters as u64 {
            wal.append(seq + 1, &payload);
        }
        wal.flush();
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        best = best.max(cfg.iters as f64 / secs);
    }
    best
}

/// Best-of-reps recovery time (µs) over a clean log of `records` frames —
/// the "recovery time vs log length" axis of the artifact.
fn bench_wal_recover(cfg: &BenchConfig, records: usize) -> f64 {
    use gstm_wal::{recover, LogDevice, MemDevice, Wal, WalConfig};
    let payload = [0x5Au8; 25];
    let log = std::sync::Arc::new(MemDevice::new());
    let snap = std::sync::Arc::new(MemDevice::new());
    let wal = Wal::new(
        WalConfig::new(),
        std::sync::Arc::clone(&log) as std::sync::Arc<dyn LogDevice>,
        std::sync::Arc::clone(&snap) as std::sync::Arc<dyn LogDevice>,
    );
    for seq in 0..records as u64 {
        wal.append(seq + 1, &payload);
    }
    wal.flush();
    let (log_bytes, snap_bytes) = (log.contents(), snap.contents());
    let mut best = f64::INFINITY;
    for _ in 0..cfg.reps.max(2) {
        let start = Instant::now();
        let r = recover(&log_bytes, &snap_bytes).expect("clean log recovers");
        assert_eq!(r.tail.len(), records, "every frame must survive recovery");
        best = best.min(start.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// Wall time (ms, best of reps) of one simulated serve run on the given
/// backend. The virtual-time outcome is backend-independent by design, so
/// the wall-clock delta between backends is the durable commit overhead.
fn bench_wal_serve(cfg: &BenchConfig, backend: gstm_serve::BackendKind) -> f64 {
    use gstm_serve::{run_simulated, ServeSpec};
    let requests = (cfg.iters / 10).clamp(100, 1_000);
    let spec = ServeSpec::hot(requests).with_backend(backend);
    // One untimed warmup so whichever backend runs first doesn't pay the
    // cold-start (allocator, page-fault) cost in its best-of.
    let _ = run_simulated(&spec, &RunOptions::new(3, 11));
    let mut best = f64::INFINITY;
    for _ in 0..cfg.reps {
        let start = Instant::now();
        let out = run_simulated(&spec, &RunOptions::new(3, 11));
        assert!(out.total_commits() > 0, "the serve run must commit");
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Contended-commit microloop on real OS threads: every thread owns a
/// private 4-var working set, so transactions never conflict on data and
/// the sweep isolates the commit spine itself — the version-clock RMW plus
/// the commit-sequence word. Returns best-of-reps committed transactions
/// per second and the last rep's clock counters (all-zero under the
/// legacy strategy, whose path carries no counters).
fn bench_scale_commit(
    cfg: &BenchConfig,
    threads: usize,
    strategy: ClockStrategy,
) -> (f64, ClockStats) {
    use std::sync::Arc;
    // Total work is held roughly flat across the sweep so a 16-thread cell
    // does not run 16x longer than a 1-thread cell on a small host.
    let iters = (cfg.iters / threads).max(64);
    let mut best = 0.0f64;
    let mut stats = ClockStats::default();
    for _ in 0..cfg.reps {
        let stm = Arc::new(Stm::new_on(
            StmConfig::builder(threads).clock_strategy(strategy).build(),
            Arc::new(RealGate::new(0)),
        ));
        let vars: Vec<Vec<TVar<u64>>> =
            (0..threads).map(|_| (0..4u64).map(TVar::new).collect()).collect();
        let start = Instant::now();
        std::thread::scope(|scope| {
            for (t, vs) in vars.iter().enumerate() {
                let stm = Arc::clone(&stm);
                scope.spawn(move || {
                    let thread = ThreadId::new(t as u16);
                    for i in 0..iters as u64 {
                        stm.run(thread, TxId::new(1), |txn| {
                            for v in vs {
                                let x = txn.read(v)?;
                                txn.write(v, x.wrapping_add(i))?;
                            }
                            Ok(())
                        });
                    }
                });
            }
        });
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        best = best.max((threads * iters) as f64 / secs);
        stats = stm.clock_stats();
    }
    (best, stats)
}

/// Counts the clock ticks the GV4 read-only fast path avoids: a skip-ahead
/// engine runs `iters` read-only transactions and reports how many were
/// spared a clock RMW (all of them — the assertion is the suite's
/// plumbing check, the artifact publishes the count).
fn bench_scale_read_only(cfg: &BenchConfig) -> f64 {
    let stm = Stm::new(StmConfig::builder(1).clock_strategy(ClockStrategy::SkipAhead).build());
    let vs = vars(SET_SIZE);
    for _ in 0..cfg.iters {
        stm.run(t0(), TxId::new(1), |txn| {
            let mut acc = 0u64;
            for v in &vs {
                acc = acc.wrapping_add(txn.read(v)?);
            }
            Ok(acc)
        });
    }
    let stats = stm.clock_stats();
    assert_eq!(
        stats.read_only_spared, cfg.iters as u64,
        "every read-only commit must skip the clock"
    );
    stats.read_only_spared as f64
}

/// One native serve cell: the hot spec served on OS threads under the
/// given spine mode. Returns best-of-reps `(requests/sec, sojourn p99)`.
fn bench_scale_serve(cfg: &BenchConfig, spine: gstm_serve::SpineMode) -> (f64, f64) {
    let requests = (cfg.iters / 10).clamp(50, 1_000);
    let spec = gstm_serve::ServeSpec::hot(requests).with_spine(spine);
    let mut best_rate = 0.0f64;
    let mut p99 = 0.0f64;
    for _ in 0..cfg.reps {
        let start = Instant::now();
        let report = gstm_serve::run_native(&spec, 3, 11, 50, 64);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let rate = report.done as f64 / secs;
        if rate > best_rate {
            best_rate = rate;
            p99 = report.sojourn.p(0.99);
        }
    }
    (best_rate, p99)
}

/// Measures the visible-reader registry footprint: a LibTM-mode engine
/// runs one short read transaction, so only the stripes it actually read
/// hold allocated registries — the lazy-vs-eager byte delta is the
/// ridealong fix's win.
fn bench_scale_footprint() -> RegistryFootprint {
    let stm = Stm::new(StmConfig::builder(2).resolution(Resolution::AbortReaders).build());
    let vs = vars(8);
    stm.run(t0(), TxId::new(1), |txn| {
        let mut acc = 0u64;
        for v in &vs {
            acc = acc.wrapping_add(txn.read(v)?);
        }
        Ok(acc)
    });
    stm.reader_registry_footprint()
}

/// Runs the commit-spine scale suite: the legacy-vs-skip-ahead clock sweep
/// over [`SCALE_THREADS`] OS threads, the GV4 read-only tick counter, the
/// global-vs-per-shard native serve cell, and the reader-registry
/// footprint. Returns the [`SCALE_REQUIRED_METRICS`] map.
pub fn run_scale_suite(cfg: &BenchConfig, progress: &dyn Progress) -> Vec<(String, f64)> {
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut t4 = ClockStats::default();
    for (label, strategy) in
        [("legacy", ClockStrategy::FetchAdd), ("skip", ClockStrategy::SkipAhead)]
    {
        for &threads in SCALE_THREADS {
            let (rate, stats) = bench_scale_commit(cfg, threads, strategy);
            progress.report(&format!("scale.{label}.t{threads}.commit_ops_per_sec: {rate:.0}"));
            metrics.push((format!("scale.{label}.t{threads}.commit_ops_per_sec"), rate));
            if strategy == ClockStrategy::SkipAhead && threads == 4 {
                t4 = stats;
            }
        }
    }
    metrics.push(("scale.skip.t4.cas_success".into(), t4.cas_success as f64));
    metrics.push(("scale.skip.t4.skip_ahead".into(), t4.skip_ahead as f64));
    let spared = bench_scale_read_only(cfg);
    metrics.push(("scale.skip.read_only_ticks_avoided".into(), spared));
    for (label, spine) in
        [("global", gstm_serve::SpineMode::Global), ("sharded", gstm_serve::SpineMode::PerShard)]
    {
        let (rate, p99) = bench_scale_serve(cfg, spine);
        progress.report(&format!("serve.{label}: {rate:.0} req/s, p99 {p99:.0} ticks"));
        metrics.push((format!("serve.{label}.req_per_sec"), rate));
        metrics.push((format!("serve.{label}.sojourn_p99_ticks"), p99));
    }
    let fp = bench_scale_footprint();
    metrics.push(("footprint.reader_registries_allocated".into(), fp.allocated as f64));
    metrics.push(("footprint.reader_registry_lazy_bytes".into(), fp.lazy_bytes as f64));
    metrics.push(("footprint.reader_registry_eager_bytes".into(), fp.eager_bytes as f64));
    let gauges = SpineGauges::new();
    SpineGauges::set(&gauges.cas_success, t4.cas_success);
    SpineGauges::set(&gauges.skip_ahead, t4.skip_ahead);
    SpineGauges::set(&gauges.read_only_spared, spared as u64);
    SpineGauges::set(&gauges.registries_allocated, fp.allocated as u64);
    SpineGauges::set(&gauges.registry_lazy_bytes, fp.lazy_bytes as u64);
    SpineGauges::set(&gauges.registry_eager_bytes, fp.eager_bytes as u64);
    progress.report(&gauges.summary());
    metrics
}

/// The MVCC study's serve cell: the contended hot store shape under the
/// read-mostly `mvcc_read` mix, offered faster than the validated path
/// can absorb — so throughput reflects service capacity, not the arrival
/// rate, and the two read modes separate.
fn mvcc_spec(cfg: &BenchConfig, read_mode: ReadMode) -> gstm_serve::ServeSpec {
    let requests = (cfg.iters / 10).clamp(50, 1_000);
    gstm_serve::ServeSpec::hot(requests)
        .with_mix(gstm_serve::Mix::mvcc_read())
        .with_arrival(gstm_serve::Arrival::Poisson { mean_gap: 60.0 })
        .with_read_mode(read_mode)
}

/// One native MVCC serve cell under the given read mode. Returns
/// best-of-reps `(req/sec, sojourn p99, read-only sojourn p99, read-only
/// aborts, engine mvcc counters)` — the last three from the best rep.
fn bench_mvcc_serve(cfg: &BenchConfig, read_mode: ReadMode) -> (f64, f64, f64, u64, MvccStats) {
    let spec = mvcc_spec(cfg, read_mode);
    let mut best_rate = 0.0f64;
    let (mut p99, mut ro_p99) = (0.0f64, 0.0f64);
    let mut ro_aborts = 0u64;
    let mut mvcc = MvccStats::default();
    for _ in 0..cfg.reps {
        let start = Instant::now();
        let report = gstm_serve::run_native(&spec, 3, 11, 50, 64);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let rate = report.done as f64 / secs;
        if rate > best_rate {
            best_rate = rate;
            p99 = report.sojourn.p(0.99);
            ro_p99 = report.sojourn_ro.p(0.99);
            ro_aborts = report.read_only_aborts();
            mvcc = report.mvcc;
        }
    }
    (best_rate, p99, ro_p99, ro_aborts, mvcc)
}

/// Runs the multi-version read-path suite: the same read-mostly serve
/// cell under `ReadMode::Latest` (validated read-only transactions) and
/// `ReadMode::Snapshot` (version-ring reads at a frozen timestamp), plus
/// the snapshot engine's ring counters. Returns the
/// [`MVCC_REQUIRED_METRICS`] map.
pub fn run_mvcc_suite(cfg: &BenchConfig, progress: &dyn Progress) -> Vec<(String, f64)> {
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut snap = MvccStats::default();
    for (label, read_mode) in [("latest", ReadMode::Latest), ("snapshot", ReadMode::Snapshot)] {
        let (rate, p99, ro_p99, ro_aborts, mvcc) = bench_mvcc_serve(cfg, read_mode);
        progress.report(&format!(
            "mvcc.{label}: {rate:.0} req/s, p99 {p99:.0} ticks, ro p99 {ro_p99:.0} ticks, \
             ro aborts {ro_aborts}"
        ));
        metrics.push((format!("mvcc.{label}.req_per_sec"), rate));
        metrics.push((format!("mvcc.{label}.sojourn_p99_ticks"), p99));
        metrics.push((format!("mvcc.{label}.sojourn_ro_p99_ticks"), ro_p99));
        metrics.push((format!("mvcc.{label}.ro_aborts"), ro_aborts as f64));
        if read_mode == ReadMode::Snapshot {
            snap = mvcc;
        }
    }
    metrics.push(("mvcc.snapshot.snapshot_txns".into(), snap.snapshot_txns as f64));
    metrics.push(("mvcc.snapshot.snapshot_reads".into(), snap.snapshot_reads as f64));
    metrics.push(("mvcc.snapshot.spared_validations".into(), snap.spared_validations as f64));
    metrics.push(("mvcc.snapshot.versions_published".into(), snap.versions_published as f64));
    metrics.push(("mvcc.snapshot.gc_lag_events".into(), snap.gc_lag_events as f64));
    metrics.push(("mvcc.snapshot.ring_len_max".into(), snap.ring_len_max as f64));
    let gauges = MvccGauges::new();
    MvccGauges::set(&gauges.snapshot_txns, snap.snapshot_txns);
    MvccGauges::set(&gauges.snapshot_reads, snap.snapshot_reads);
    MvccGauges::set(&gauges.fallback_initial, snap.fallback_initial);
    MvccGauges::set(&gauges.spared_validations, snap.spared_validations);
    MvccGauges::set(&gauges.versions_published, snap.versions_published);
    MvccGauges::set(&gauges.versions_evicted, snap.versions_evicted);
    MvccGauges::set(&gauges.gc_lag_events, snap.gc_lag_events);
    MvccGauges::set(&gauges.ring_len_max, snap.ring_len_max);
    progress.report(&gauges.summary());
    metrics
}

///// The block study's serve cell: the contended hot store shape under the
/// read-mostly `mvcc_read` mix, offered well past service capacity
/// (mean inter-arrival gap 8 ticks across 3 streams) — so every arm's
/// throughput reflects how fast it drains requests, not the arrival
/// rate. The interleaved arms (TL2, snapshot) pay per-read engine
/// instrumentation and conflict aborts, and shed under the overload;
/// the block arm executes the same requests speculatively over the
/// per-batch multi-version map, pushes only precomputed write sets
/// through the engine, and completes every request.
fn block_spec(cfg: &BenchConfig) -> gstm_serve::ServeSpec {
    let requests = (cfg.iters / 10).clamp(50, 1_000);
    gstm_serve::ServeSpec::hot(requests)
        .with_mix(gstm_serve::Mix::mvcc_read())
        .with_arrival(gstm_serve::Arrival::Poisson { mean_gap: 8.0 })
}

/// One native serve cell. Returns best-of-reps `(req/sec, sojourn p99,
/// block-mode report from the best rep)`.
fn bench_block_serve(
    cfg: &BenchConfig,
    spec: &gstm_serve::ServeSpec,
) -> (f64, f64, Option<gstm_serve::BlockModeReport>) {
    let mut best_rate = 0.0f64;
    let mut p99 = 0.0f64;
    let mut block = None;
    for _ in 0..cfg.reps {
        let start = Instant::now();
        let report = gstm_serve::run_native(spec, 3, 11, 50, 64);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let rate = report.done as f64 / secs;
        if rate > best_rate {
            best_rate = rate;
            p99 = report.sojourn.p(0.99);
            block = report.block;
        }
    }
    (best_rate, p99, block)
}

/// Runs the ordered block-execution suite: the read-mostly serve cell
/// under interleaved TL2, interleaved snapshot reads, and
/// `ServeMode::Block`, plus the schedule-invariance oracle (parallel
/// block output vs the sequential reference at 1/2/4 worker threads).
/// Returns the [`BLOCK_REQUIRED_METRICS`] map.
pub fn run_block_suite(cfg: &BenchConfig, progress: &dyn Progress) -> Vec<(String, f64)> {
    const BLOCK_SIZE: usize = 64;
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut tl2_rate = f64::NAN;
    let arms = [
        ("tl2", block_spec(cfg)),
        ("snapshot", block_spec(cfg).with_read_mode(ReadMode::Snapshot)),
        ("block", block_spec(cfg).with_block_mode(BLOCK_SIZE)),
    ];
    for (label, spec) in arms {
        let (rate, p99, block) = bench_block_serve(cfg, &spec);
        progress.report(&format!("block.{label}: {rate:.0} req/s, p99 {p99:.0} ticks"));
        metrics.push((format!("block.{label}.req_per_sec"), rate));
        metrics.push((format!("block.{label}.sojourn_p99_ticks"), p99));
        if label == "tl2" {
            tl2_rate = rate;
        }
        if let Some(report) = block {
            metrics.push(("block.block.speedup_vs_tl2".into(), rate / tl2_rate));
            metrics.push(("block.block.blocks".into(), report.blocks as f64));
            metrics.push(("block.block.re_executions".into(), report.stats.re_executions as f64));
            metrics.push((
                "block.block.validation_fails".into(),
                report.stats.validation_fails as f64,
            ));
            metrics.push((
                "block.block.dependency_stalls".into(),
                report.stats.dependency_stalls as f64,
            ));
            metrics.push(("block.block.waves".into(), report.stats.waves as f64));
            let gauges = gstm_telemetry::BlockGauges::new();
            gstm_telemetry::BlockGauges::set(&gauges.blocks, report.blocks);
            gstm_telemetry::BlockGauges::set(&gauges.executions, report.stats.executions);
            gstm_telemetry::BlockGauges::set(&gauges.re_executions, report.stats.re_executions);
            gstm_telemetry::BlockGauges::set(&gauges.validations, report.stats.validations);
            gstm_telemetry::BlockGauges::set(
                &gauges.validation_fails,
                report.stats.validation_fails,
            );
            gstm_telemetry::BlockGauges::set(
                &gauges.dependency_stalls,
                report.stats.dependency_stalls,
            );
            gstm_telemetry::BlockGauges::set(&gauges.waves, report.stats.waves);
            progress.report(&gauges.summary());
        }
    }
    // Schedule invariance: the pure parallel runner (no engine, no clock)
    // over the same traffic shape at several worker-thread counts, each
    // compared byte-for-byte against the sequential reference.
    let dspec = block_spec(cfg).with_block_mode(BLOCK_SIZE);
    let reference = gstm_serve::run_block_reference(&dspec, 2, 11);
    let parallel: Vec<(usize, gstm_check::BlockRecord)> = [1usize, 2, 4]
        .into_iter()
        .map(|t| (t, gstm_serve::execute_block_order(&dspec, 2, 11, t).0))
        .collect();
    let verdict = gstm_check::check_block_equivalence(&reference, &parallel);
    let ok = verdict.ok() && !verdict.is_vacuous();
    progress.report(&format!("block.determinism: {}", verdict.summary()));
    metrics.push(("block.block.determinism_ok".into(), if ok { 1.0 } else { 0.0 }));
    metrics
}

/// The adaptive suite's serve cell: the hot store shape with the study's
/// drift applied, so the statically trained model goes stale mid-run.
fn adaptive_bench_spec(cfg: &BenchConfig) -> gstm_serve::ServeSpec {
    let requests = (cfg.iters / 10).clamp(60, 600);
    let mut spec = gstm_serve::ServeSpec::hot(requests).with_drift(crate::adaptcmd::STUDY_DRIFT);
    spec.zipf_theta = crate::adaptcmd::STUDY_THETA_START;
    spec
}

/// One simulated drifting serve run under `policy`. Virtual-time stats are
/// deterministic per seed, so only the wall clock takes best-of-reps; the
/// `(req/ktick, sojourn p99, telemetry)` tail comes from the last rep.
fn bench_adaptive_serve(
    cfg: &BenchConfig,
    spec: &gstm_serve::ServeSpec,
    policy: &dyn Fn() -> gstm_guide::PolicyChoice,
) -> (f64, f64, f64, Option<gstm_telemetry::Snapshot>) {
    let workload = gstm_serve::ServeWorkload::new(spec.clone());
    let mut best_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..cfg.reps {
        let opts = RunOptions::new(3, 11).with_policy(policy()).with_telemetry();
        let start = Instant::now();
        let outcome = run_workload(&workload, &opts);
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(outcome);
    }
    let outcome = last.expect("reps >= 1");
    let stat = |key: &str| {
        outcome.workload_stats.iter().find(|(k, _)| k == key).map(|(_, v)| *v).unwrap_or_default()
    };
    let rate = if outcome.makespan == 0 {
        0.0
    } else {
        1000.0 * stat("req_done") / outcome.makespan as f64
    };
    (best_ms, rate, stat("sojourn_p99"), outcome.telemetry)
}

/// Runs the online-adaptive-guidance suite: the drifting serve cell under
/// the stale static model and under the full adaptive loop (windowed
/// ingestion, incremental retraining, §IV gate, hot-swap), plus the loop's
/// telemetry counters and the gate's near-uniform negative control.
/// Returns the [`ADAPTIVE_REQUIRED_METRICS`] map.
pub fn run_adaptive_suite(cfg: &BenchConfig, progress: &dyn Progress) -> Vec<(String, f64)> {
    use std::sync::Arc;

    use crate::adaptcmd::{study_retrain, uniform_candidate, STUDY_MAX_UNKNOWN_PCT, STUDY_WINDOW};

    let spec = adaptive_bench_spec(cfg);
    let mut stationary = gstm_serve::ServeSpec::hot(spec.requests_per_thread);
    stationary.zipf_theta = crate::adaptcmd::STUDY_THETA_START;
    let ecfg =
        if cfg.smoke { crate::config::ExpConfig::tiny() } else { crate::config::ExpConfig::fast() };
    let trained = crate::study::train_serve(&ecfg, &stationary, 3);
    progress.report(&format!(
        "adaptive: static model trained on the stationary shape ({} states)",
        trained.tsa.state_count()
    ));
    let retrain = study_retrain();
    let model = trained.model;
    type PolicyThunk = Box<dyn Fn() -> gstm_guide::PolicyChoice>;
    let arms: [(&str, PolicyThunk); 2] = [
        ("static", {
            let model = Arc::clone(&model);
            Box::new(move || gstm_guide::PolicyChoice::guided(Arc::clone(&model)))
        }),
        ("adaptive", {
            let model = Arc::clone(&model);
            Box::new(move || gstm_guide::PolicyChoice::AdaptiveOnline {
                model: Arc::clone(&model),
                k: gstm_guide::DEFAULT_K,
                max_unknown_pct: STUDY_MAX_UNKNOWN_PCT,
                window: STUDY_WINDOW,
                retrain,
            })
        }),
    ];
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut loop_snap: Option<gstm_telemetry::Snapshot> = None;
    for (label, policy) in &arms {
        let (wall_ms, rate, p99, snap) = bench_adaptive_serve(cfg, &spec, policy.as_ref());
        progress.report(&format!(
            "adaptive.{label}: {rate:.2} req/ktick, p99 {p99:.0} ticks, {wall_ms:.1} ms"
        ));
        metrics.push((format!("adaptive.{label}.req_per_ktick"), rate));
        metrics.push((format!("adaptive.{label}.sojourn_p99_ticks"), p99));
        metrics.push((format!("adaptive.{label}.wall_ms"), wall_ms));
        if *label == "adaptive" {
            loop_snap = snap;
        }
    }
    let gauge = |name: &str| {
        loop_snap.as_ref().and_then(|s| s.gauge_value(name)).unwrap_or_default() as f64
    };
    let attempts = gauge("gstm_guide_retrain_attempts_total");
    let installs = gauge("gstm_guide_model_installs_total");
    let rejects = gauge("gstm_guide_model_rejects_total");
    let stand_downs = gauge("gstm_guide_stand_downs_total");
    progress.report(&format!(
        "adaptive.loop: {attempts:.0} attempts, {installs:.0} installs, \
         {rejects:.0} rejects, {stand_downs:.0} stand-downs"
    ));
    metrics.push(("adaptive.loop.retrain_attempts".into(), attempts));
    metrics.push(("adaptive.loop.installs".into(), installs));
    metrics.push(("adaptive.loop.rejects".into(), rejects));
    metrics.push(("adaptive.loop.stand_downs".into(), stand_downs));
    // The gate's negative control: 1.0 when the §IV analyzer refuses the
    // deliberately near-uniform candidate, 0.0 if it would have shipped it.
    let verdict = gstm_model::analyze_with(
        &uniform_candidate(),
        retrain.tfactor,
        retrain.metric_cutoff,
        retrain.min_states,
    );
    let rejected = f64::from(u8::from(!verdict.verdict.is_fit()));
    progress.report(&format!("adaptive.gate: near-uniform candidate -> {verdict}"));
    metrics.push(("adaptive.gate.uniform_rejected".into(), rejected));
    metrics
}

/// Runs the WAL suite (append throughput, recovery time vs log length,
/// durable-vs-ephemeral serve overhead) and returns the flat `metrics`
/// map in artifact key order.
pub fn run_wal_suite(cfg: &BenchConfig, progress: &dyn Progress) -> Vec<(String, f64)> {
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let append = bench_wal_append(cfg);
    progress.report(&format!("wal.append_ops_per_sec: {append:.0}"));
    metrics.push(("wal.append_ops_per_sec".into(), append));
    for records in [1_000usize, 8_000, 32_000] {
        let us = bench_wal_recover(cfg, records);
        progress.report(&format!("wal.recover_{}k_us: {us:.1}", records / 1_000));
        metrics.push((format!("wal.recover_{}k_us", records / 1_000), us));
    }
    let ephemeral = bench_wal_serve(cfg, gstm_serve::BackendKind::Ephemeral);
    let durable = bench_wal_serve(cfg, gstm_serve::BackendKind::Durable);
    let overhead = (durable - ephemeral) / ephemeral.max(1e-9) * 100.0;
    progress.report(&format!(
        "wal.serve: ephemeral {ephemeral:.1} ms, durable {durable:.1} ms ({overhead:+.1}%)"
    ));
    metrics.push(("wal.serve_ephemeral_wall_ms".into(), ephemeral));
    metrics.push(("wal.serve_durable_wall_ms".into(), durable));
    metrics.push(("wal.durable_overhead_pct".into(), overhead));
    metrics
}

/// One named microloop: key suffix plus the loop function.
type MicroLoop = (&'static str, fn(&BenchConfig, Detection) -> f64);

fn mode_name(detection: Detection) -> &'static str {
    match detection {
        Detection::CommitTime => "lazy",
        Detection::EncounterTime => "eager",
    }
}

/// Runs the full suite and returns the flat `metrics` map in artifact key
/// order. `progress` receives one line per completed metric group.
pub fn run_suite(cfg: &BenchConfig, progress: &dyn Progress) -> Vec<(String, f64)> {
    let mut metrics: Vec<(String, f64)> = Vec::new();
    for detection in [Detection::CommitTime, Detection::EncounterTime] {
        let mode = mode_name(detection);
        let loops: [MicroLoop; 6] = [
            ("read_ops_per_sec", bench_read),
            ("read_validate_ops_per_sec", bench_read_validate),
            ("write_ops_per_sec", bench_write),
            ("commit_ops_per_sec", bench_commit),
            ("read_own_write_ops_per_sec", bench_read_own_write),
            ("abort_ops_per_sec", bench_abort),
        ];
        for (name, f) in loops {
            let value = f(cfg, detection);
            progress.report(&format!("{mode}.{name}: {value:.0}"));
            metrics.push((format!("{mode}.{name}"), value));
        }
    }
    for detection in [Detection::CommitTime, Detection::EncounterTime] {
        let mode = mode_name(detection);
        let (makespan, commits_per_sec) = bench_stamp(cfg, detection);
        progress.report(&format!(
            "stamp.kmeans.{mode}: makespan {makespan:.0} ticks, {commits_per_sec:.0} commits/s"
        ));
        metrics.push((format!("stamp.kmeans.{mode}.makespan_ticks"), makespan));
        metrics.push((format!("stamp.kmeans.{mode}.commits_per_sec"), commits_per_sec));
    }
    metrics
}

/// Runs the pipeline cold-vs-warm benchmark: a tiny study resolved twice
/// against a fresh cache at `cache_root`. The cold pass trains and
/// measures everything; the warm pass must hit the cache for every model
/// and every run. Returns the [`PIPELINE_REQUIRED_METRICS`] map.
///
/// # Panics
///
/// Panics if the warm pass misses the cache — that means run keys are
/// unstable, which the pipeline's correctness story does not allow.
pub fn run_pipeline_suite(
    progress: &dyn Progress,
    cache_root: &std::path::Path,
) -> Vec<(String, f64)> {
    use std::sync::atomic::Ordering;

    use crate::cache::DiskCache;
    use crate::config::ExpConfig;
    use crate::pipeline::{Pipeline, StudyPlan};

    let cfg = ExpConfig::tiny();
    let mut plan = StudyPlan::new();
    plan.stamp_cell("kmeans", cfg.threads_list[0]).quake(cfg.threads_list[0]);

    let mut passes: Vec<(f64, Vec<u64>)> = Vec::new();
    for label in ["cold", "warm"] {
        let pipe =
            Pipeline::new(&cfg, progress).with_cache(DiskCache::new(cache_root.to_path_buf()));
        let start = Instant::now();
        let _result = pipe.resolve(&plan);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let g = pipe.gauges();
        progress.report(&format!("pipeline.{label}: {:.0} ms, {}", wall_ms, g.summary()));
        passes.push((
            wall_ms,
            vec![
                g.cells.load(Ordering::Relaxed),
                g.model_hits.load(Ordering::Relaxed),
                g.model_misses.load(Ordering::Relaxed),
                g.run_hits.load(Ordering::Relaxed),
                g.run_misses.load(Ordering::Relaxed),
                g.train_wall_ms.load(Ordering::Relaxed),
            ],
        ));
    }
    let (cold_ms, cold) = &passes[0];
    let (warm_ms, warm) = &passes[1];
    assert_eq!(warm[2], 0, "warm pass trained a model — unstable model keys");
    assert_eq!(warm[4], 0, "warm pass executed a run — unstable run keys");
    vec![
        ("pipeline.cold_wall_ms".into(), *cold_ms),
        ("pipeline.warm_wall_ms".into(), *warm_ms),
        ("pipeline.warm_speedup".into(), cold_ms / warm_ms.max(1e-9)),
        ("pipeline.cells".into(), cold[0] as f64),
        ("pipeline.cold_model_misses".into(), cold[2] as f64),
        ("pipeline.cold_train_wall_ms".into(), cold[5] as f64),
        ("pipeline.warm_model_hits".into(), warm[1] as f64),
        ("pipeline.warm_model_misses".into(), warm[2] as f64),
        ("pipeline.warm_run_hits".into(), warm[3] as f64),
        ("pipeline.warm_run_misses".into(), warm[4] as f64),
        ("pipeline.warm_train_wall_ms".into(), warm[5] as f64),
    ]
}

/// Assembles the versioned artifact. `baseline` carries an earlier
/// capture's `metrics` map to commit before/after together.
pub fn render_artifact(
    cfg: &BenchConfig,
    metrics: &[(String, f64)],
    baseline: Option<&[(String, f64)]>,
) -> String {
    let to_obj = |m: &[(String, f64)]| {
        JsonValue::Obj(m.iter().map(|(k, v)| (k.clone(), JsonValue::Num(*v))).collect())
    };
    let mut fields = vec![
        ("schema".to_string(), JsonValue::Str(BENCH_SCHEMA.to_string())),
        ("version".to_string(), JsonValue::Num(f64::from(BENCH_VERSION))),
        ("suite".to_string(), JsonValue::Str(cfg.suite.clone())),
        ("preset".to_string(), JsonValue::Str(cfg.preset.clone())),
        ("smoke".to_string(), JsonValue::Bool(cfg.smoke)),
        ("profile".to_string(), JsonValue::Str(cfg.profile.clone())),
        ("metrics".to_string(), to_obj(metrics)),
    ];
    if let Some(base) = baseline {
        fields.push(("baseline".to_string(), to_obj(base)));
    }
    JsonValue::Obj(fields).render_pretty(2)
}

/// Parses an artifact and extracts its `metrics` map (used to thread a
/// previous capture through as `baseline`).
///
/// # Errors
///
/// Returns a description of the first structural problem.
pub fn parse_metrics(text: &str) -> Result<Vec<(String, f64)>, String> {
    let v = JsonValue::parse(text)?;
    let metrics = v.get("metrics").ok_or("missing \"metrics\" object")?;
    let fields = metrics.as_obj().ok_or("\"metrics\" is not an object")?;
    fields
        .iter()
        .map(|(k, val)| {
            val.as_f64().map(|n| (k.clone(), n)).ok_or(format!("metric {k:?} is not a number"))
        })
        .collect()
}

/// Validates a committed artifact: parseable JSON, correct schema/version,
/// and every required key of its suite present and numeric (the `suite`
/// field picks [`REQUIRED_METRICS`], [`PIPELINE_REQUIRED_METRICS`] or
/// [`WAL_REQUIRED_METRICS`]; artifacts predating the field are hot-path
/// artifacts). Absolute values
/// are never gated — this protects the artifact's shape, not its numbers.
///
/// # Errors
///
/// Returns a description of the first problem found.
pub fn check_artifact(text: &str) -> Result<(), String> {
    let v = JsonValue::parse(text).map_err(|e| format!("malformed JSON: {e}"))?;
    match v.get("schema").and_then(JsonValue::as_str) {
        Some(BENCH_SCHEMA) => {}
        other => return Err(format!("bad schema field: {other:?}")),
    }
    match v.get("version").and_then(JsonValue::as_f64) {
        Some(ver) if ver == f64::from(BENCH_VERSION) => {}
        other => return Err(format!("unsupported version: {other:?}")),
    }
    let required: &[&str] = match v.get("suite").map(|s| s.as_str().ok_or(s)) {
        None | Some(Ok(SUITE_HOTPATH)) => REQUIRED_METRICS,
        Some(Ok(SUITE_PIPELINE)) => PIPELINE_REQUIRED_METRICS,
        Some(Ok(SUITE_WAL)) => WAL_REQUIRED_METRICS,
        Some(Ok(SUITE_SCALE)) => SCALE_REQUIRED_METRICS,
        Some(Ok(SUITE_MVCC)) => MVCC_REQUIRED_METRICS,
        Some(Ok(SUITE_ADAPTIVE)) => ADAPTIVE_REQUIRED_METRICS,
        Some(Ok(SUITE_BLOCK)) => BLOCK_REQUIRED_METRICS,
        Some(other) => return Err(format!("unknown suite: {other:?}")),
    };
    let metrics = v.get("metrics").ok_or("missing \"metrics\" object")?;
    if metrics.as_obj().is_none() {
        return Err("\"metrics\" is not an object".to_string());
    }
    for key in required {
        match metrics.get(key) {
            Some(val) if val.as_f64().is_some() => {}
            Some(_) => return Err(format!("metric {key:?} is not a number")),
            None => return Err(format!("missing required metric {key:?}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg() -> BenchConfig {
        let mut cfg = BenchConfig::for_preset("tiny", true).unwrap();
        cfg.iters = 20; // keep unit tests fast; shape, not numbers
        cfg.reps = 1;
        cfg
    }

    #[test]
    fn artifact_round_trips_and_checks() {
        let cfg = smoke_cfg();
        let metrics: Vec<(String, f64)> =
            REQUIRED_METRICS.iter().map(|k| (k.to_string(), 1.0)).collect();
        let text = render_artifact(&cfg, &metrics, Some(&metrics));
        check_artifact(&text).unwrap();
        assert_eq!(parse_metrics(&text).unwrap(), metrics);
    }

    #[test]
    fn check_rejects_broken_artifacts() {
        assert!(check_artifact("not json").is_err());
        assert!(check_artifact("{}").is_err());
        let cfg = smoke_cfg();
        let mut metrics: Vec<(String, f64)> =
            REQUIRED_METRICS.iter().map(|k| (k.to_string(), 1.0)).collect();
        metrics.pop();
        let text = render_artifact(&cfg, &metrics, None);
        let err = check_artifact(&text).unwrap_err();
        assert!(err.contains("missing required metric"), "{err}");
    }

    #[test]
    fn microloops_produce_positive_rates() {
        let cfg = smoke_cfg();
        for detection in [Detection::CommitTime, Detection::EncounterTime] {
            assert!(bench_read(&cfg, detection) > 0.0);
            assert!(bench_read_validate(&cfg, detection) > 0.0);
            assert!(bench_write(&cfg, detection) > 0.0);
            assert!(bench_commit(&cfg, detection) > 0.0);
            assert!(bench_read_own_write(&cfg, detection) > 0.0);
            assert!(bench_abort(&cfg, detection) > 0.0);
        }
    }

    #[test]
    fn scale_suite_keys_and_microloops() {
        let mut cfg = smoke_cfg();
        cfg.suite = SUITE_SCALE.to_string();
        let scale: Vec<(String, f64)> =
            SCALE_REQUIRED_METRICS.iter().map(|k| (k.to_string(), 1.0)).collect();
        check_artifact(&render_artifact(&cfg, &scale, None)).unwrap();
        let (legacy_rate, legacy_stats) = bench_scale_commit(&cfg, 2, ClockStrategy::FetchAdd);
        assert!(legacy_rate > 0.0);
        assert_eq!(legacy_stats, ClockStats::default(), "legacy path carries no counters");
        let (skip_rate, stats) = bench_scale_commit(&cfg, 2, ClockStrategy::SkipAhead);
        assert!(skip_rate > 0.0);
        // Two threads x 64 floor iterations, each claiming exactly one wv.
        assert_eq!(stats.cas_success + stats.skip_ahead, 128);
        assert_eq!(bench_scale_read_only(&cfg), cfg.iters as f64);
        let fp = bench_scale_footprint();
        assert!(fp.allocated > 0, "visible readers must allocate registries");
        assert!(fp.lazy_bytes < fp.eager_bytes, "lazy scheme must be smaller");
    }

    #[test]
    fn mvcc_suite_keys_and_serve_cell() {
        let mut cfg = smoke_cfg();
        cfg.suite = SUITE_MVCC.to_string();
        let mvcc: Vec<(String, f64)> =
            MVCC_REQUIRED_METRICS.iter().map(|k| (k.to_string(), 1.0)).collect();
        check_artifact(&render_artifact(&cfg, &mvcc, None)).unwrap();
        let (rate, _p99, _ro_p99, ro_aborts, stats) = bench_mvcc_serve(&cfg, ReadMode::Snapshot);
        assert!(rate > 0.0);
        assert_eq!(ro_aborts, 0, "snapshot reads never abort");
        assert!(stats.snapshot_txns > 0, "the mvcc mix is read-mostly");
    }

    #[test]
    fn block_suite_keys_and_full_run() {
        let mut cfg = smoke_cfg();
        cfg.suite = SUITE_BLOCK.to_string();
        let shape: Vec<(String, f64)> =
            BLOCK_REQUIRED_METRICS.iter().map(|k| (k.to_string(), 1.0)).collect();
        check_artifact(&render_artifact(&cfg, &shape, None)).unwrap();
        // The tiny suite end-to-end: every required key present, the
        // invariance oracle non-vacuous and green.
        let metrics = run_block_suite(&cfg, &crate::progress::NoProgress);
        for key in BLOCK_REQUIRED_METRICS {
            assert!(metrics.iter().any(|(k, _)| k == key), "missing {key}");
        }
        let get = |key: &str| metrics.iter().find(|(k, _)| k == key).unwrap().1;
        assert_eq!(get("block.block.determinism_ok"), 1.0);
        assert!(get("block.block.blocks") >= 1.0);
        assert!(get("block.block.req_per_sec") > 0.0);
    }

    #[test]
    fn adaptive_suite_keys_and_serve_cell() {
        let mut cfg = smoke_cfg();
        cfg.suite = SUITE_ADAPTIVE.to_string();
        let shape: Vec<(String, f64)> =
            ADAPTIVE_REQUIRED_METRICS.iter().map(|k| (k.to_string(), 1.0)).collect();
        check_artifact(&render_artifact(&cfg, &shape, None)).unwrap();
        // The drifting cell runs in virtual time: two runs under the same
        // policy agree on every stat the suite reports.
        let spec = adaptive_bench_spec(&cfg);
        assert!(spec.drift.is_some(), "the adaptive cell must drift");
        let policy = || gstm_guide::PolicyChoice::Default;
        let (_, rate_a, p99_a, _) = bench_adaptive_serve(&cfg, &spec, &policy);
        let (_, rate_b, p99_b, _) = bench_adaptive_serve(&cfg, &spec, &policy);
        assert!(rate_a > 0.0);
        assert_eq!((rate_a, p99_a), (rate_b, p99_b));
    }

    #[test]
    fn adaptive_suite_emits_exactly_its_required_keys() {
        let cfg = smoke_cfg();
        let metrics = run_adaptive_suite(&cfg, &crate::progress::NoProgress);
        let keys: Vec<&str> = metrics.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ADAPTIVE_REQUIRED_METRICS.to_vec());
        let get = |k: &str| metrics.iter().find(|(n, _)| n == k).unwrap().1;
        assert_eq!(get("adaptive.gate.uniform_rejected"), 1.0, "gate must refuse uniform");
        assert!(get("adaptive.adaptive.req_per_ktick") > 0.0);
        assert!(get("adaptive.loop.retrain_attempts") >= get("adaptive.loop.installs"));
    }

    #[test]
    fn unknown_preset_is_rejected() {
        assert!(BenchConfig::for_preset("huge", false).is_err());
    }

    #[test]
    fn suite_field_selects_required_metrics() {
        let mut cfg = smoke_cfg();
        cfg.suite = SUITE_PIPELINE.to_string();
        let pipeline: Vec<(String, f64)> =
            PIPELINE_REQUIRED_METRICS.iter().map(|k| (k.to_string(), 1.0)).collect();
        check_artifact(&render_artifact(&cfg, &pipeline, None)).unwrap();
        // Hot-path keys do not satisfy a pipeline artifact...
        let hot: Vec<(String, f64)> =
            REQUIRED_METRICS.iter().map(|k| (k.to_string(), 1.0)).collect();
        let err = check_artifact(&render_artifact(&cfg, &hot, None)).unwrap_err();
        assert!(err.contains("pipeline."), "{err}");
        // ...the WAL suite gates on its own keys...
        cfg.suite = SUITE_WAL.to_string();
        let wal: Vec<(String, f64)> =
            WAL_REQUIRED_METRICS.iter().map(|k| (k.to_string(), 1.0)).collect();
        check_artifact(&render_artifact(&cfg, &wal, None)).unwrap();
        let err = check_artifact(&render_artifact(&cfg, &hot, None)).unwrap_err();
        assert!(err.contains("wal."), "{err}");
        // ...as does the MVCC suite...
        cfg.suite = SUITE_MVCC.to_string();
        let mvcc: Vec<(String, f64)> =
            MVCC_REQUIRED_METRICS.iter().map(|k| (k.to_string(), 1.0)).collect();
        check_artifact(&render_artifact(&cfg, &mvcc, None)).unwrap();
        let err = check_artifact(&render_artifact(&cfg, &hot, None)).unwrap_err();
        assert!(err.contains("mvcc."), "{err}");
        // ...as does the adaptive suite...
        cfg.suite = SUITE_ADAPTIVE.to_string();
        let adaptive: Vec<(String, f64)> =
            ADAPTIVE_REQUIRED_METRICS.iter().map(|k| (k.to_string(), 1.0)).collect();
        check_artifact(&render_artifact(&cfg, &adaptive, None)).unwrap();
        let err = check_artifact(&render_artifact(&cfg, &hot, None)).unwrap_err();
        assert!(err.contains("adaptive."), "{err}");
        // ...an unknown suite is rejected outright...
        cfg.suite = "nonsense".to_string();
        let err = check_artifact(&render_artifact(&cfg, &hot, None)).unwrap_err();
        assert!(err.contains("unknown suite"), "{err}");
        // ...and an artifact with no suite field is a hot-path artifact.
        let legacy = format!(
            "{{\"schema\":\"gstm-bench\",\"version\":1,\"metrics\":{{{}}}}}",
            REQUIRED_METRICS.iter().map(|k| format!("\"{k}\":1")).collect::<Vec<_>>().join(",")
        );
        check_artifact(&legacy).unwrap();
    }
}
