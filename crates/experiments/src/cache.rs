//! Content-addressed cache of trained models and run outcomes.
//!
//! The pipeline keys every cacheable artifact by a *canonical key string*
//! that spells out the full configuration that produced it (workload, input
//! size, threads, seeds, Tfactor, policy, …). The key is hashed with
//! [`gstm_model::serialize::fingerprint_hex`] into a 128-bit digest that
//! names the file on disk:
//!
//! ```text
//! <root>/models/<digest>.gtsa   — trained automata, GTSA v1 binary
//! <root>/runs/<digest>.json     — run outcomes, versioned "gstm-run" JSON
//! ```
//!
//! Because every run executes inside a fresh `VarIdDomain` on the
//! deterministic simulator, a key collision-free hit is *exactly* the
//! outcome the run would reproduce — caching is semantically invisible.
//! The full key string is stored inside each artifact and verified on load,
//! so a (vanishingly unlikely) digest collision degrades to a miss, never
//! to a wrong result. Corrupt or unreadable entries also degrade to misses.
//!
//! Runs that captured full event logs are never cached: the log is huge and
//! profiling runs are consumed immediately by training (which caches the
//! resulting model instead).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use gstm_guide::{HoldStats, RunOutcome};
use gstm_model::serialize::{self, fingerprint_hex};
use gstm_model::Tsa;
use gstm_telemetry::{JsonValue, Snapshot};

/// Schema tag of cached run outcomes.
pub const RUN_SCHEMA: &str = "gstm-run";
/// Version of the cached run-outcome encoding.
pub const RUN_VERSION: u64 = 1;

/// A content-addressed cache rooted at one directory.
#[derive(Clone, Debug)]
pub struct DiskCache {
    root: PathBuf,
}

impl DiskCache {
    /// Opens (lazily — directories are created on first store) a cache at
    /// `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        DiskCache { root: root.into() }
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn model_path(&self, key: &str) -> PathBuf {
        self.root.join("models").join(format!("{}.gtsa", fingerprint_hex(key.as_bytes())))
    }

    fn run_path(&self, key: &str) -> PathBuf {
        self.root.join("runs").join(format!("{}.json", fingerprint_hex(key.as_bytes())))
    }

    fn text_path(&self, key: &str) -> PathBuf {
        self.root.join("cells").join(format!("{}.txt", fingerprint_hex(key.as_bytes())))
    }

    /// Writes `bytes` atomically: temp file in the target directory, then
    /// rename. Concurrent writers of the same key race benignly (identical
    /// content). Errors are swallowed — the cache is an optimization.
    fn write_atomic(path: &Path, bytes: &[u8]) {
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, bytes).is_ok() && std::fs::rename(&tmp, path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Looks up a trained automaton by key. `None` on miss or on any decode
    /// failure.
    pub fn load_model(&self, key: &str) -> Option<Tsa> {
        serialize::load(&self.model_path(key)).ok()
    }

    /// Stores a trained automaton under `key`.
    pub fn store_model(&self, key: &str, tsa: &Tsa) {
        Self::write_atomic(&self.model_path(key), &serialize::to_bytes(tsa));
    }

    /// Looks up a run outcome by key. `None` on miss, on any decode
    /// failure, or when the stored key string does not match (digest
    /// collision).
    pub fn load_run(&self, key: &str) -> Option<RunOutcome> {
        let text = std::fs::read_to_string(self.run_path(key)).ok()?;
        decode_run(&text, key)
    }

    /// Stores a run outcome under `key`. Outcomes carrying a captured event
    /// log are not cacheable and are silently skipped.
    pub fn store_run(&self, key: &str, outcome: &RunOutcome) {
        if outcome.events.is_some() {
            return;
        }
        let text = encode_run(outcome, key).render();
        Self::write_atomic(&self.run_path(key), text.as_bytes());
    }

    /// Looks up a cached text artifact (a rendered cell) by key. The key
    /// is embedded as a first-line header and verified on load, so digest
    /// collisions degrade to misses.
    pub fn load_text(&self, key: &str) -> Option<String> {
        debug_assert!(!key.contains('\n'), "text-cache keys are single-line");
        let raw = std::fs::read_to_string(self.text_path(key)).ok()?;
        let (stored_key, body) = raw.split_once('\n')?;
        (stored_key == key).then(|| body.to_string())
    }

    /// Stores a rendered text artifact under a single-line `key`.
    pub fn store_text(&self, key: &str, body: &str) {
        debug_assert!(!key.contains('\n'), "text-cache keys are single-line");
        let mut raw = String::with_capacity(key.len() + 1 + body.len());
        raw.push_str(key);
        raw.push('\n');
        raw.push_str(body);
        Self::write_atomic(&self.text_path(key), raw.as_bytes());
    }
}

fn num(v: u64) -> JsonValue {
    JsonValue::Num(v as f64)
}

fn nums(vs: &[u64]) -> JsonValue {
    JsonValue::Arr(vs.iter().map(|&v| num(v)).collect())
}

fn as_u64(v: &JsonValue) -> Option<u64> {
    let f = v.as_f64()?;
    (f >= 0.0 && f.fract() == 0.0).then_some(f as u64)
}

fn u64_list(v: &JsonValue) -> Option<Vec<u64>> {
    match v {
        JsonValue::Arr(items) => items.iter().map(as_u64).collect(),
        _ => None,
    }
}

/// Encodes one outcome as a versioned, self-describing JSON object. The
/// `key` is embedded for collision detection on load.
pub fn encode_run(out: &RunOutcome, key: &str) -> JsonValue {
    let histograms = JsonValue::Arr(
        out.abort_histograms
            .iter()
            .map(|h| JsonValue::Obj(h.iter().map(|(&k, &v)| (k.to_string(), num(v))).collect()))
            .collect(),
    );
    let workload_stats = JsonValue::Arr(
        out.workload_stats
            .iter()
            .map(|(name, v)| JsonValue::Arr(vec![JsonValue::Str(name.clone()), JsonValue::Num(*v)]))
            .collect(),
    );
    let hold_stats = match &out.hold_stats {
        Some(h) => JsonValue::obj(vec![
            ("immediate".into(), num(h.immediate)),
            ("admitted_later".into(), num(h.admitted_later)),
            ("bailed_out".into(), num(h.bailed_out)),
        ]),
        None => JsonValue::Null,
    };
    let telemetry = match &out.telemetry {
        Some(snap) => JsonValue::Str(snap.to_machine()),
        None => JsonValue::Null,
    };
    JsonValue::obj(vec![
        ("schema".into(), JsonValue::Str(RUN_SCHEMA.into())),
        ("version".into(), num(RUN_VERSION)),
        ("key".into(), JsonValue::Str(key.into())),
        ("thread_ticks".into(), nums(&out.thread_ticks)),
        ("thread_wall_ticks".into(), nums(&out.thread_wall_ticks)),
        ("makespan".into(), num(out.makespan)),
        ("commits".into(), nums(&out.commits)),
        ("aborts".into(), nums(&out.aborts)),
        ("holds".into(), nums(&out.holds)),
        ("abort_histograms".into(), histograms),
        ("nondeterminism".into(), num(out.nondeterminism as u64)),
        ("unknown_hits".into(), num(out.unknown_hits)),
        ("workload_stats".into(), workload_stats),
        ("hold_stats".into(), hold_stats),
        ("telemetry".into(), telemetry),
    ])
}

/// Decodes a cached outcome, verifying schema, version and key. `None` on
/// any mismatch or malformed field.
pub fn decode_run(text: &str, key: &str) -> Option<RunOutcome> {
    let v = JsonValue::parse(text).ok()?;
    if v.get("schema")?.as_str()? != RUN_SCHEMA || as_u64(v.get("version")?)? != RUN_VERSION {
        return None;
    }
    if v.get("key")?.as_str()? != key {
        return None;
    }
    let abort_histograms = match v.get("abort_histograms")? {
        JsonValue::Arr(items) => items
            .iter()
            .map(|h| {
                h.as_obj()?
                    .iter()
                    .map(|(k, val)| Some((k.parse::<u32>().ok()?, as_u64(val)?)))
                    .collect::<Option<BTreeMap<u32, u64>>>()
            })
            .collect::<Option<Vec<_>>>()?,
        _ => return None,
    };
    let workload_stats = match v.get("workload_stats")? {
        JsonValue::Arr(items) => items
            .iter()
            .map(|pair| match pair {
                JsonValue::Arr(kv) if kv.len() == 2 => {
                    Some((kv[0].as_str()?.to_string(), kv[1].as_f64()?))
                }
                _ => None,
            })
            .collect::<Option<Vec<_>>>()?,
        _ => return None,
    };
    let hold_stats = match v.get("hold_stats")? {
        JsonValue::Null => None,
        h => Some(HoldStats {
            immediate: as_u64(h.get("immediate")?)?,
            admitted_later: as_u64(h.get("admitted_later")?)?,
            bailed_out: as_u64(h.get("bailed_out")?)?,
        }),
    };
    let telemetry = match v.get("telemetry")? {
        JsonValue::Null => None,
        JsonValue::Str(machine) => Some(Snapshot::from_machine(machine).ok()?),
        _ => return None,
    };
    Some(RunOutcome {
        thread_ticks: u64_list(v.get("thread_ticks")?)?,
        thread_wall_ticks: u64_list(v.get("thread_wall_ticks")?)?,
        makespan: as_u64(v.get("makespan")?)?,
        commits: u64_list(v.get("commits")?)?,
        aborts: u64_list(v.get("aborts")?)?,
        holds: u64_list(v.get("holds")?)?,
        abort_histograms,
        nondeterminism: as_u64(v.get("nondeterminism")?)? as usize,
        unknown_hits: as_u64(v.get("unknown_hits")?)?,
        events: None,
        workload_stats,
        hold_stats,
        telemetry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_outcome() -> RunOutcome {
        let mut h0 = BTreeMap::new();
        h0.insert(0u32, 17u64);
        h0.insert(3, 2);
        let mut snap = Snapshot::new();
        snap.set_counter("gstm_tx_commits_total", 0, 19);
        snap.set_gauge("gstm_sim_makespan_ticks", 911);
        RunOutcome {
            thread_ticks: vec![900, 911],
            thread_wall_ticks: vec![905, 911],
            makespan: 911,
            commits: vec![10, 9],
            aborts: vec![2, 3],
            holds: vec![1, 0],
            abort_histograms: vec![h0, BTreeMap::new()],
            nondeterminism: 6,
            unknown_hits: 4,
            events: None,
            workload_stats: vec![("final".into(), 19.0)],
            hold_stats: Some(HoldStats { immediate: 5, admitted_later: 2, bailed_out: 1 }),
            telemetry: Some(snap),
        }
    }

    fn assert_outcomes_equal(a: &RunOutcome, b: &RunOutcome) {
        assert_eq!(a.thread_ticks, b.thread_ticks);
        assert_eq!(a.thread_wall_ticks, b.thread_wall_ticks);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.aborts, b.aborts);
        assert_eq!(a.holds, b.holds);
        assert_eq!(a.abort_histograms, b.abort_histograms);
        assert_eq!(a.nondeterminism, b.nondeterminism);
        assert_eq!(a.unknown_hits, b.unknown_hits);
        assert_eq!(a.workload_stats, b.workload_stats);
        assert_eq!(a.hold_stats, b.hold_stats);
        assert_eq!(
            a.telemetry.as_ref().map(Snapshot::to_machine),
            b.telemetry.as_ref().map(Snapshot::to_machine)
        );
    }

    #[test]
    fn run_codec_round_trips() {
        let out = sample_outcome();
        let text = encode_run(&out, "k1").render();
        let back = decode_run(&text, "k1").expect("decodes");
        assert_outcomes_equal(&out, &back);
    }

    #[test]
    fn decode_rejects_wrong_key_and_garbage() {
        let text = encode_run(&sample_outcome(), "k1").render();
        assert!(decode_run(&text, "k2").is_none(), "key mismatch must miss");
        assert!(decode_run("not json", "k1").is_none());
        assert!(decode_run("{}", "k1").is_none());
    }

    #[test]
    fn disk_cache_round_trips_runs_and_models() {
        let dir = std::env::temp_dir().join(format!("gstm-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::new(&dir);
        assert!(cache.load_run("k").is_none());

        let out = sample_outcome();
        cache.store_run("k", &out);
        let back = cache.load_run("k").expect("hit after store");
        assert_outcomes_equal(&out, &back);

        // A capture_events outcome must never be stored.
        let mut with_events = sample_outcome();
        with_events.events = Some(Vec::new());
        cache.store_run("ev", &with_events);
        assert!(cache.load_run("ev").is_none());

        let mut b = gstm_model::TsaBuilder::new();
        use gstm_core::{Participant, ThreadId, TxId};
        let who = Participant::new(ThreadId::new(0), TxId::new(0));
        b.add_run(&[gstm_model::Tts::solo(who)]);
        let tsa = b.build();
        assert!(cache.load_model("m").is_none());
        cache.store_model("m", &tsa);
        let back = cache.load_model("m").expect("model hit");
        assert_eq!(serialize::to_bytes(&back), serialize::to_bytes(&tsa));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn text_cache_round_trips_and_verifies_key() {
        let dir = std::env::temp_dir().join(format!("gstm-textcache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::new(&dir);
        assert!(cache.load_text("cell-a").is_none());
        cache.store_text("cell-a", "line 1\nline 2\n");
        assert_eq!(cache.load_text("cell-a").as_deref(), Some("line 1\nline 2\n"));
        assert!(cache.load_text("cell-b").is_none(), "different key must miss");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
