//! Study data types and training primitives.
//!
//! The cell/study structs every table and figure renders from live here,
//! together with the two training passes (STAMP and SynQuake). *Running*
//! studies is the pipeline's job: build a [`crate::pipeline::StudyPlan`]
//! and resolve it with [`crate::pipeline::Pipeline::resolve`], which shares
//! training passes, caches outcomes and fans independent cells out across
//! worker threads.

use std::collections::BTreeMap;

use gstm_guide::{run_workload, train, RunOptions, RunOutcome, TrainedModel};
use gstm_serve::{ServeSpec, ServeWorkload};
use gstm_stamp::benchmark;
use gstm_synquake::{Quest, SynQuake};
use gstm_telemetry::Snapshot;

use crate::config::ExpConfig;

/// Everything measured for one (benchmark, thread-count) pair.
#[derive(Debug)]
pub struct StampCell {
    /// Benchmark name.
    pub name: &'static str,
    /// Worker/core count.
    pub threads: usize,
    /// Model trained on the medium input.
    pub trained: TrainedModel,
    /// Default-STM test runs (one per seed).
    pub default_runs: Vec<RunOutcome>,
    /// Guided-STM test runs (one per seed).
    pub guided_runs: Vec<RunOutcome>,
}

/// The STAMP half of the evaluation: one [`StampCell`] per
/// (benchmark, thread-count).
#[derive(Debug, Default)]
pub struct StampStudy {
    /// Cells keyed by `(name, threads)`.
    pub cells: BTreeMap<(String, usize), StampCell>,
}

impl StampStudy {
    /// The cell for a benchmark at a thread count.
    pub fn cell(&self, name: &str, threads: usize) -> Option<&StampCell> {
        self.cells.get(&(name.to_string(), threads))
    }
}

/// Trains the model for one benchmark/thread-count (profiling runs on the
/// training input size).
pub fn train_stamp(cfg: &ExpConfig, name: &'static str, threads: usize) -> TrainedModel {
    let workload =
        benchmark(name, cfg.train_size).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let base = RunOptions::new(threads, 0);
    train(workload.as_ref(), &base, &cfg.train_seeds, cfg.tfactor)
}

/// Merges per-run telemetry snapshots (deterministic order: map order, then
/// default runs before guided runs, then seed order). `None` when no run
/// carried telemetry.
pub fn merge_run_telemetry<'a>(runs: impl IntoIterator<Item = &'a RunOutcome>) -> Option<Snapshot> {
    let mut merged: Option<Snapshot> = None;
    for run in runs {
        if let Some(snap) = &run.telemetry {
            merged.get_or_insert_with(Snapshot::new).merge(snap);
        }
    }
    merged
}

/// All measured runs of a STAMP study, in deterministic order.
pub fn stamp_runs(study: &StampStudy) -> impl Iterator<Item = &RunOutcome> {
    study.cells.values().flat_map(|c| c.default_runs.iter().chain(c.guided_runs.iter()))
}

/// All measured runs of a SynQuake study, in deterministic order.
pub fn quake_runs(study: &QuakeStudy) -> impl Iterator<Item = &RunOutcome> {
    study.cells.iter().flat_map(|c| c.default_runs.iter().chain(c.guided_runs.iter()))
}

/// Builds a small synthetic trained model for tests of the report layer
/// (solo-commit round-robin with occasional conflict tuples).
pub fn synthetic_trained(threads: usize) -> TrainedModel {
    use gstm_core::{Participant, ThreadId, TxId};
    use gstm_model::{analyze, GuidedModel, TsaBuilder, Tts};
    let mut b = TsaBuilder::new();
    let mut run = Vec::new();
    for round in 0..30u16 {
        for t in 0..threads as u16 {
            let who = Participant::new(ThreadId::new(t), TxId::new(0));
            if (t + round) % 5 == 0 {
                let victim =
                    Participant::new(ThreadId::new((t + 1) % threads as u16), TxId::new(0));
                run.push(Tts::new(vec![victim], who));
            } else {
                run.push(Tts::solo(who));
            }
        }
    }
    b.add_run(&run);
    let tsa = b.build();
    let analysis = analyze(&tsa, 4.0);
    let model = std::sync::Arc::new(GuidedModel::compile(tsa.clone(), 4.0));
    TrainedModel { tsa, analysis, model }
}

/// One SynQuake test quest's measurements at one thread count.
#[derive(Debug)]
pub struct QuakeCell {
    /// The quest under test.
    pub quest: Quest,
    /// Worker/core count.
    pub threads: usize,
    /// Default-STM runs.
    pub default_runs: Vec<RunOutcome>,
    /// Guided-STM runs.
    pub guided_runs: Vec<RunOutcome>,
}

/// The SynQuake half of the evaluation.
#[derive(Debug, Default)]
pub struct QuakeStudy {
    /// Model per thread count (trained on the two training quests).
    pub trained: BTreeMap<usize, TrainedModel>,
    /// Measured cells keyed by `(quest, threads)`.
    pub cells: Vec<QuakeCell>,
}

/// One serve configuration's measurements at one thread count.
#[derive(Debug)]
pub struct ServeCell {
    /// Store-shape tag (`hot`/`wide`).
    pub shape: &'static str,
    /// Arrival-process tag (`poisson`/`bursty`).
    pub arrival: &'static str,
    /// Worker/core count.
    pub threads: usize,
    /// The full spec the cell ran.
    pub spec: ServeSpec,
    /// Default-admission runs (one per test seed).
    pub default_runs: Vec<RunOutcome>,
    /// Guided-admission runs (one per test seed).
    pub guided_runs: Vec<RunOutcome>,
}

/// The serve (tail-latency) study: one [`ServeCell`] per
/// (shape, arrival, threads).
#[derive(Debug, Default)]
pub struct ServeStudy {
    /// Cells in plan order.
    pub cells: Vec<ServeCell>,
}

/// All measured runs of a serve study, in deterministic order.
pub fn serve_runs(study: &ServeStudy) -> impl Iterator<Item = &RunOutcome> {
    study.cells.iter().flat_map(|c| c.default_runs.iter().chain(c.guided_runs.iter()))
}

/// Trains the serve model for one spec/thread-count (profiling runs of the
/// same open-loop traffic the test runs replay, on the training seeds).
pub fn train_serve(cfg: &ExpConfig, spec: &ServeSpec, threads: usize) -> TrainedModel {
    let workload = ServeWorkload::new(spec.clone());
    let base = RunOptions::new(threads, 0);
    train(&workload, &base, &cfg.train_seeds, cfg.tfactor)
}

/// Trains the SynQuake model for one thread count on the paper's two
/// training quests (`4worst_case` and `4moving`), pooling their profiled
/// transaction sequences into one automaton.
pub fn train_quake(cfg: &ExpConfig, threads: usize) -> TrainedModel {
    use gstm_model::{analyze, parse_states, Grouping, GuidedModel, TsaBuilder};

    let mut builder = TsaBuilder::new();
    for quest in Quest::training() {
        let workload =
            SynQuake { players: cfg.synquake_players, frames: cfg.synquake_frames.0, quest };
        for &seed in &cfg.train_seeds {
            let opts = RunOptions::new(threads, seed).capturing();
            let outcome = run_workload(&workload, &opts);
            let events = outcome.events.expect("capture enabled");
            builder.add_run(&parse_states(&events, Grouping::Arrival));
        }
    }
    let tsa = builder.build();
    let analysis = analyze(&tsa, cfg.tfactor);
    let model = std::sync::Arc::new(GuidedModel::compile(tsa.clone(), cfg.tfactor));
    TrainedModel { tsa, analysis, model }
}
