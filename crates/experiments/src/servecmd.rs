//! The `serve` subcommand: the tail-latency study over the sharded
//! transactional store service.
//!
//! Cells are (store shape × arrival process × threads). Each cell measures
//! per-request sojourn latency (p50/p95/p99 in virtual ticks) under
//! `default` and `guided` admission over every test seed, then reports the
//! cross-seed spread of the p99 — the serve-side analogue of the paper's
//! execution-variance metric: a guided run is useful to an operator when
//! it makes the *tail* predictable across runs, not just the mean, and the
//! comparison line prices that in throughput.

use gstm_serve::{Arrival, ServeSpec};
use gstm_stats::{mean, percent_change, sample_stddev, TextTable};

use crate::config::ExpConfig;
use crate::metrics::mean_stat;
use crate::study::ServeStudy;

/// The store shapes the study sweeps.
pub const SERVE_SHAPES: [&str; 2] = ["hot", "wide"];

/// The arrival processes the study sweeps.
pub const SERVE_ARRIVALS: [&str; 2] = ["poisson", "bursty"];

/// Builds the spec for one (shape, arrival) pair, scaled by the config's
/// `serve_requests`.
///
/// # Panics
///
/// Panics on an unknown shape or arrival tag.
pub fn serve_spec(cfg: &ExpConfig, shape: &str, arrival: &str) -> ServeSpec {
    let spec = match shape {
        "hot" => ServeSpec::hot(cfg.serve_requests),
        "wide" => ServeSpec::wide(cfg.serve_requests),
        other => panic!("unknown serve shape {other}"),
    };
    let mean_gap = spec.arrival.mean_gap();
    match arrival {
        "poisson" => spec,
        "bursty" => spec.with_arrival(Arrival::Bursty { mean_gap, burst: 8 }),
        other => panic!("unknown serve arrival {other}"),
    }
}

/// Cross-seed coefficient of variation of one workload stat, in percent.
pub(crate) fn stat_cov_pct(runs: &[gstm_guide::RunOutcome], key: &str) -> f64 {
    let xs: Vec<f64> = runs
        .iter()
        .map(|r| {
            r.workload_stats.iter().find(|(k, _)| k == key).map(|(_, v)| *v).unwrap_or_default()
        })
        .collect();
    let m = mean(&xs);
    if m == 0.0 {
        0.0
    } else {
        100.0 * sample_stddev(&xs) / m
    }
}

/// Mean served throughput in requests per kilotick of makespan.
pub(crate) fn throughput(runs: &[gstm_guide::RunOutcome]) -> f64 {
    let per_run: Vec<f64> = runs
        .iter()
        .map(|r| {
            let done = r
                .workload_stats
                .iter()
                .find(|(k, _)| k == "req_done")
                .map(|(_, v)| *v)
                .unwrap_or_default();
            if r.makespan == 0 {
                0.0
            } else {
                1000.0 * done / r.makespan as f64
            }
        })
        .collect();
    mean(&per_run)
}

/// Mean shed percentage of offered load.
pub(crate) fn shed_pct(runs: &[gstm_guide::RunOutcome]) -> f64 {
    let done = mean_stat(runs, "req_done");
    let shed = mean_stat(runs, "req_shed");
    if done + shed == 0.0 {
        0.0
    } else {
        100.0 * shed / (done + shed)
    }
}

/// Renders the serve study: the per-cell latency table plus one
/// guided-vs-default comparison line per cell.
pub fn render_serve(cfg: &ExpConfig, study: &ServeStudy) -> String {
    let mut out = format!(
        "== Serve: open-loop store service, sojourn latency in ticks ({} seeds) ==\n",
        cfg.test_seeds.len()
    );
    let mut t = TextTable::new(
        ["cell", "policy", "p50", "p95", "p99", "p99 CoV%", "thru/ktick", "shed%"]
            .map(String::from)
            .to_vec(),
    );
    for cell in &study.cells {
        let label = format!("{}/{}/{}t", cell.shape, cell.arrival, cell.threads);
        for (policy, runs) in [("default", &cell.default_runs), ("guided", &cell.guided_runs)] {
            t.row(vec![
                label.clone(),
                policy.into(),
                format!("{:.0}", mean_stat(runs, "sojourn_p50")),
                format!("{:.0}", mean_stat(runs, "sojourn_p95")),
                format!("{:.0}", mean_stat(runs, "sojourn_p99")),
                format!("{:.1}", stat_cov_pct(runs, "sojourn_p99")),
                format!("{:.2}", throughput(runs)),
                format!("{:.1}", shed_pct(runs)),
            ]);
        }
    }
    t.render_to(&mut out).expect("writing to a String cannot fail");
    out.push('\n');
    for cell in &study.cells {
        let label = format!("{}/{}/{}t", cell.shape, cell.arrival, cell.threads);
        let cov_d = stat_cov_pct(&cell.default_runs, "sojourn_p99");
        let cov_g = stat_cov_pct(&cell.guided_runs, "sojourn_p99");
        let p99_delta = percent_change(
            mean_stat(&cell.default_runs, "sojourn_p99"),
            mean_stat(&cell.guided_runs, "sojourn_p99"),
        );
        let thru_delta =
            percent_change(throughput(&cell.default_runs), throughput(&cell.guided_runs));
        out.push_str(&format!(
            "{label}: guided p99 spread {cov_g:.1}% vs default {cov_d:.1}% \
             ({:+.1} pp), p99 {p99_delta:+.1}%, throughput {thru_delta:+.1}%\n",
            cov_g - cov_d,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_differ_across_cells() {
        let cfg = ExpConfig::tiny();
        let mut keys = std::collections::BTreeSet::new();
        for shape in SERVE_SHAPES {
            for arrival in SERVE_ARRIVALS {
                let spec = serve_spec(&cfg, shape, arrival);
                assert_eq!(spec.requests_per_thread, cfg.serve_requests);
                assert!(keys.insert(spec.cache_key()), "duplicate cell key for {shape}/{arrival}");
            }
        }
        assert_eq!(keys.len(), 4);
    }

    #[test]
    #[should_panic(expected = "unknown serve shape")]
    fn unknown_shape_rejected() {
        let _ = serve_spec(&ExpConfig::tiny(), "lukewarm", "poisson");
    }

    #[test]
    fn render_handles_empty_study() {
        let cfg = ExpConfig::tiny();
        let body = render_serve(&cfg, &ServeStudy::default());
        assert!(body.contains("Serve: open-loop store service"));
    }
}
