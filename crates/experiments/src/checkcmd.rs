//! The `experiments check` subcommand: a fault-injected chaos matrix fed
//! through the offline opacity oracle.
//!
//! Each cell of the (detection × resolution × contention-manager) matrix
//! runs a bank-transfer workload on the deterministic simulator with a
//! [`ChaosGate`] injecting seeded delays, delayed commits and forced
//! aborts. The recorded event history is then judged by
//! [`gstm_check::check_history`], and the run-level invariants (conserved
//! account total, consistent audits, zero lock-discipline refusals) are
//! checked on top. Any violation anywhere fails the whole matrix — chaos
//! may abort transactions, but it must never break opacity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gstm_check::check_history;
use gstm_core::cm::{Aggressive, ContentionManager, Greedy, Karma, Polite};
use gstm_core::rng::SmallRng;
use gstm_core::{
    AdmitAll, Detection, MemorySink, Resolution, Stm, StmConfig, TVar, ThreadId, TxId, VarIdDomain,
};
use gstm_sim::{ChaosConfig, ChaosGate, SimConfig, SimMachine};

use crate::pipeline::Pipeline;
use crate::progress::Progress;

/// Knobs of one chaos-matrix invocation.
#[derive(Clone, Copy, Debug)]
pub struct CheckOptions {
    /// Simulated worker threads per cell.
    pub threads: usize,
    /// Transactions each worker runs.
    pub ops_per_thread: u32,
    /// Bank accounts (transactional variables) in the workload.
    pub accounts: usize,
    /// Base seed; each cell derives its own chaos stream from it.
    pub seed: u64,
    /// Restrict the contention-manager axis to two entries (CI smoke).
    pub tiny: bool,
}

impl CheckOptions {
    /// Defaults: 4 threads, 96 ops each, 8 accounts.
    pub fn new(seed: u64) -> Self {
        CheckOptions { threads: 4, ops_per_thread: 96, accounts: 8, seed, tiny: false }
    }

    /// The CI smoke preset: fewer threads/ops and two contention managers,
    /// still covering every detection × resolution combination.
    pub fn tiny(seed: u64) -> Self {
        CheckOptions { threads: 3, ops_per_thread: 48, accounts: 6, seed, tiny: true }
    }
}

/// One cell of the matrix.
#[derive(Clone, Copy, Debug)]
struct CellSpec {
    detection: Detection,
    resolution: Resolution,
    cm: &'static str,
}

impl CellSpec {
    fn label(&self) -> String {
        let d = match self.detection {
            Detection::CommitTime => "commit",
            Detection::EncounterTime => "encounter",
        };
        let r = match self.resolution {
            Resolution::SelfAbort => "self-abort",
            Resolution::AbortReaders => "abort-readers",
            Resolution::WaitForReaders => "wait-for-readers",
        };
        format!("{d}/{r}/{}", self.cm)
    }

    fn build_cm(&self, threads: usize) -> Arc<dyn ContentionManager> {
        match self.cm {
            "polite" => Arc::new(Polite::default()),
            "karma" => Arc::new(Karma::new(threads, 8)),
            "greedy" => Arc::new(Greedy::new(threads, 8)),
            _ => Arc::new(Aggressive),
        }
    }
}

fn matrix(tiny: bool) -> Vec<CellSpec> {
    let cms: &[&'static str] =
        if tiny { &["aggressive", "karma"] } else { &["aggressive", "polite", "karma", "greedy"] };
    let mut cells = Vec::new();
    for detection in [Detection::CommitTime, Detection::EncounterTime] {
        for resolution in
            [Resolution::SelfAbort, Resolution::AbortReaders, Resolution::WaitForReaders]
        {
            for &cm in cms {
                cells.push(CellSpec { detection, resolution, cm });
            }
        }
    }
    cells
}

/// What one cell reported.
struct CellOutcome {
    label: String,
    line: String,
    ok: bool,
    dooms: u64,
}

/// Runs one cell: simulator + chaos gate + bank-transfer workers, then the
/// oracle over the recorded history.
fn run_cell(spec: CellSpec, opts: &CheckOptions) -> CellOutcome {
    let threads = opts.threads;
    // Every cell gets its own id domain (reproducible stripes) and its own
    // chaos stream (derived from the base seed and the cell's position).
    let domain = VarIdDomain::new();
    let guard = domain.install();
    let accounts: Vec<TVar<i64>> = (0..opts.accounts).map(|_| TVar::new(100)).collect();
    drop(guard);
    let total: i64 = 100 * opts.accounts as i64;

    let cell_seed = opts
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(spec.label().bytes().map(u64::from).sum::<u64>());
    let machine = SimMachine::new(SimConfig::new(threads, opts.seed));
    let chaos = Arc::new(ChaosGate::new(ChaosConfig::new(cell_seed), machine.gate(), threads));
    let sink = Arc::new(MemorySink::new());
    let config = StmConfig::builder(threads)
        .detection(spec.detection)
        .resolution(spec.resolution)
        .check_events(true)
        .build();
    let stm = Arc::new(Stm::with_parts(
        config,
        chaos.clone() as Arc<dyn gstm_core::Gate>,
        sink.clone(),
        Arc::new(AdmitAll),
        spec.build_cm(threads),
    ));
    chaos.arm(stm.doom_handle());

    let audit_failures = AtomicU64::new(0);
    let workers: Vec<Box<dyn FnOnce() + Send + '_>> = (0..threads as u16)
        .map(|i| {
            let stm = Arc::clone(&stm);
            let accounts = &accounts;
            let audit_failures = &audit_failures;
            Box::new(move || {
                let mut rng = SmallRng::seed_from_u64(cell_seed ^ (0xA5A5 + u64::from(i)));
                let me = ThreadId::new(i);
                for op in 0..opts.ops_per_thread {
                    if op % 8 == 7 {
                        // Audit: a read-only sweep must always see a
                        // conserved total — the semantic face of opacity.
                        let sum = stm.run(me, TxId::new(1), |tx| {
                            let mut sum = 0i64;
                            for a in accounts {
                                sum += tx.read(a)?;
                            }
                            Ok(sum)
                        });
                        if sum != total {
                            audit_failures.fetch_add(1, Ordering::SeqCst);
                        }
                    } else {
                        let from = rng.gen_range(0..accounts.len());
                        let mut to = rng.gen_range(0..accounts.len() - 1);
                        if to >= from {
                            to += 1;
                        }
                        let amount = rng.gen_range(1..=10i64);
                        stm.run(me, TxId::new(0), |tx| {
                            let f = tx.read(&accounts[from])?;
                            let t = tx.read(&accounts[to])?;
                            tx.write(&accounts[from], f - amount)?;
                            tx.write(&accounts[to], t + amount)
                        });
                    }
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    machine.run(workers);

    let events = sink.take();
    let report = check_history(&events);
    let stats = chaos.stats();
    let final_total: i64 = accounts.iter().map(|a| *a.load_unlogged()).sum();
    let lock_violations = stm.lock_discipline_violations();
    let audits_bad = audit_failures.load(Ordering::SeqCst);

    let mut problems: Vec<String> = Vec::new();
    if !report.ok() {
        problems.push(format!("oracle: {}", report.summary()));
        for v in report.violations.iter().take(5) {
            problems.push(format!("  {v}"));
        }
    }
    if report.is_vacuous() {
        problems.push("vacuous history: no check events recorded".to_string());
    }
    if lock_violations != 0 {
        problems.push(format!("{lock_violations} lock-discipline refusals"));
    }
    if audits_bad != 0 {
        problems.push(format!("{audits_bad} inconsistent audit sums"));
    }
    if final_total != total {
        problems.push(format!("final total {final_total} != {total}"));
    }
    let ok = problems.is_empty();
    let verdict = if ok { "ok" } else { "FAIL" };
    let mut line = format!(
        "{:<34} {verdict:<4} {} ({} dooms, {} delays injected)",
        spec.label(),
        report.summary(),
        stats.dooms,
        stats.delays,
    );
    for p in problems {
        line.push_str("\n    ");
        line.push_str(&p);
    }
    CellOutcome { label: spec.label(), line, ok, dooms: stats.dooms }
}

/// Runs the whole matrix, fanning cells out over the pipeline's worker
/// pool. Returns the rendered report and whether every cell passed.
pub fn run_matrix(
    opts: &CheckOptions,
    pipe: &Pipeline<'_>,
    progress: &dyn Progress,
) -> (String, bool) {
    let cells = matrix(opts.tiny);
    progress.report(&format!(
        "chaos matrix: {} cells, {} threads x {} ops, seed {}",
        cells.len(),
        opts.threads,
        opts.ops_per_thread,
        opts.seed
    ));
    let outcomes = pipe.run_indexed(cells.len(), |i| run_cell(cells[i], opts));
    let mut body = format!(
        "== Chaos matrix under the opacity oracle (seed {}, {} threads, {} ops/thread) ==\n",
        opts.seed, opts.threads, opts.ops_per_thread
    );
    let mut failed: Vec<String> = Vec::new();
    let mut total_dooms = 0u64;
    for o in &outcomes {
        body.push_str(&o.line);
        body.push('\n');
        if !o.ok {
            failed.push(o.label.clone());
        }
        total_dooms += o.dooms;
    }
    // The matrix must not be vacuous chaos-wise either: with the default
    // rates at least one cell must have seen a forced abort.
    let chaos_ok = total_dooms > 0;
    if !chaos_ok {
        body.push_str("FAIL: no forced aborts were injected anywhere — chaos was vacuous\n");
    }
    let ok = failed.is_empty() && chaos_ok;
    body.push_str(&format!(
        "{} cells, {} failed, {} forced aborts injected: {}\n",
        outcomes.len(),
        failed.len(),
        total_dooms,
        if ok { "zero violations" } else { "VIOLATIONS FOUND" }
    ));
    (body, ok)
}
