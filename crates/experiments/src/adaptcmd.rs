//! The `serve-adaptive` subcommand: online adaptive guidance under
//! non-stationary traffic (DESIGN.md §6g).
//!
//! The study serves a *drifting* variant of the store shape — the Zipf
//! exponent sharpens from mild skew into the hot shape and the hotspot
//! migrates across the keyspace as the run progresses — while the guided
//! model is trained on the **stationary, pre-drift** shape. The contention
//! (and the abort patterns it produces) arrives mid-run, after training
//! ended: the static model is progressively stale by construction, which
//! is exactly the failure the online loop exists to repair. Three arms
//! over the same seeds and byte-identical offered load:
//!
//! * `default` — unguided admission;
//! * `guided-static` — the stale model, served as-is for the whole run;
//! * `guided-adaptive` — the same stale model behind the hot-swap handle,
//!   with windowed ingestion, the incremental trainer, and the §IV gate
//!   deciding what ships.
//!
//! The comparison metric is the serve study's: cross-seed p99 sojourn CoV
//! (execution variance of the tail), priced in throughput. A negative gate
//! row — a deliberately near-uniform candidate fed to the analyzer —
//! documents that the gate rejects models with no bias to exploit rather
//! than shipping them.

use std::sync::Arc;

use gstm_guide::{PolicyChoice, RetrainSpec, RunOptions, RunOutcome, DEFAULT_K};
use gstm_model::serialize::tsa_digest;
use gstm_model::{analyze_with, TsaBuilder, Tts};
use gstm_serve::{Drift, ServeSpec, ServeWorkload};
use gstm_stats::{percent_change, TextTable};

use crate::metrics::mean_stat;
use crate::pipeline::{guided_tag, Pipeline, TAG_DEFAULT};
use crate::servecmd::{shed_pct, stat_cov_pct, throughput};

/// The Zipf exponent the run *starts* at (and the static model trains
/// on): mild skew, little contention, few abort-carrying states for a
/// model to learn.
pub const STUDY_THETA_START: f64 = 0.4;

/// The drift the study applies: the skew sharpens from the mild
/// [`STUDY_THETA_START`] up to the hot shape's 0.99 while the hotspot
/// migrates across the keyspace — the contention the static model never
/// saw during training arrives mid-run, which is exactly the staleness
/// the online loop exists to repair.
pub const STUDY_DRIFT: Drift = Drift { theta_end: 0.99, phases: 4, hotspot_step: 8 };

/// Window length (in commit tuples) of the adaptive loop's re-evaluation
/// and retrain cadence.
pub const STUDY_WINDOW: u64 = 128;

/// Stand-down threshold: guidance pauses above this unknown-tuple share.
pub const STUDY_MAX_UNKNOWN_PCT: u32 = 60;

/// The retrain knobs the study (and the adaptive bench suite) run with.
///
/// Decay is pinned to 100 — pure accumulation, provably equivalent to
/// training on the concatenated runs — because the serve automata are
/// count-sparse: most edges are observed once, so any decay below 100
/// floors the base's counts to zero in a single step and the §IV gate
/// (correctly) refuses the resulting near-uniform candidates.
///
/// The metric ratchet is on: windowed samples concentrate their counts on
/// exactly the contention states that decide admissions, so candidates
/// that pass the absolute cutoff can still churn the load-bearing states
/// seed-dependently — which shows up directly as cross-seed tail
/// variance, the quantity this study prices. With the ratchet, a
/// candidate ships only when fresh data leaves the §IV metric no worse
/// than the serving model's, and the gate's live rejects (plus the
/// negative-control row) keep its willingness to refuse visible.
pub fn study_retrain() -> RetrainSpec {
    RetrainSpec { decay_pct: 100, require_no_regression: true, ..RetrainSpec::default() }
}

/// The drifting spec the three arms serve, scaled by the config's
/// `serve_requests`: starts mild ([`STUDY_THETA_START`]) and sharpens
/// into the hot shape per [`STUDY_DRIFT`].
pub fn adaptive_spec(cfg: &crate::config::ExpConfig) -> ServeSpec {
    let mut spec = ServeSpec::hot(cfg.serve_requests).with_drift(STUDY_DRIFT);
    spec.zipf_theta = STUDY_THETA_START;
    spec
}

/// The stationary spec the static model trains on — the pre-drift world
/// the model believes in (mild skew, before the contention arrives).
pub fn training_spec(cfg: &crate::config::ExpConfig) -> ServeSpec {
    let mut spec = ServeSpec::hot(cfg.serve_requests);
    spec.zipf_theta = STUDY_THETA_START;
    spec
}

/// Policy tag of a guided-adaptive run: embeds the starting model's digest
/// and every adaptive knob, so a changed loop configuration can never
/// satisfy a stale cached outcome.
fn adaptive_tag(digest: &str, k: u32, tfactor: f64, spec: &RetrainSpec) -> String {
    format!(
        "policy=guided-adaptive;k={k};tfactor={tfactor};window={STUDY_WINDOW};\
         maxunk={STUDY_MAX_UNKNOWN_PCT};decay={};cutoff={};minstates={};ratchet={};model={digest}",
        spec.decay_pct, spec.metric_cutoff, spec.min_states, spec.require_no_regression
    )
}

/// Sums an adaptive telemetry gauge over a run set (0 for runs without
/// telemetry — the default and static arms).
fn gauge_sum(runs: &[RunOutcome], name: &str) -> u64 {
    runs.iter().filter_map(|r| r.telemetry.as_ref()).filter_map(|snap| snap.gauge_value(name)).sum()
}

/// A deliberately near-uniform automaton: plenty of states, every
/// destination equally likely, no abort-carrying tuples. The §IV analyzer
/// must refuse to ship it — there is no bias to exploit.
pub fn uniform_candidate() -> gstm_model::Tsa {
    use gstm_core::{Participant, ThreadId, TxId};
    let p = |t: u16| Participant::new(ThreadId::new(t), TxId::new(0));
    let mut b = TsaBuilder::new();
    let n: u16 = 20;
    // From every state, one observation of every successor: a flat fan.
    for from in 0..n {
        for to in 0..n {
            b.add_transition(&Tts::solo(p(from)), &Tts::solo(p(to)), 1);
        }
    }
    b.build()
}

/// Runs the adaptive study and renders its report. The second element is
/// the merged run telemetry of every arm (the adaptive loop gauges ride
/// in it), for the CLI's `--metrics` snapshot.
pub fn serve_adaptive_report(pipe: &Pipeline<'_>) -> (String, Option<gstm_telemetry::Snapshot>) {
    let cfg = pipe.cfg();
    let threads = cfg.threads_list[0];
    let spec = adaptive_spec(cfg);
    let stationary = training_spec(cfg);

    pipe.progress().report(&format!(
        "serve-adaptive: training static model on the stationary shape ({} seeds)",
        cfg.train_seeds.len()
    ));
    let trained = pipe.trained_serve("serve-adaptive/static-train", &stationary, threads);
    let digest = tsa_digest(&trained.tsa);
    let retrain = study_retrain();

    let workload = ServeWorkload::new(spec.clone());
    let wkey = format!("serve-adaptive:{}", spec.cache_key());
    // Telemetry rides on every arm so the adaptive gauges are readable
    // from cached runs and all arms share one RunOptions shape.
    let measured = |opts: RunOptions| opts.with_telemetry();

    pipe.progress().report("serve-adaptive: default runs");
    let default_runs = pipe
        .measured_runs(&wkey, &workload, TAG_DEFAULT, |s| measured(RunOptions::new(threads, s)));
    pipe.progress().report("serve-adaptive: guided-static runs");
    let static_tag = guided_tag(&trained, DEFAULT_K, cfg.tfactor);
    let static_runs = pipe.measured_runs(&wkey, &workload, &static_tag, |s| {
        measured(
            RunOptions::new(threads, s)
                .with_policy(PolicyChoice::guided(Arc::clone(&trained.model))),
        )
    });
    pipe.progress().report("serve-adaptive: guided-adaptive runs");
    let adapt_tag = adaptive_tag(&digest, DEFAULT_K, cfg.tfactor, &retrain);
    let adaptive_runs = pipe.measured_runs(&wkey, &workload, &adapt_tag, |s| {
        measured(RunOptions::new(threads, s).with_policy(PolicyChoice::AdaptiveOnline {
            model: Arc::clone(&trained.model),
            k: DEFAULT_K,
            max_unknown_pct: STUDY_MAX_UNKNOWN_PCT,
            window: STUDY_WINDOW,
            retrain,
        }))
    });

    let mut out = format!(
        "== Serve-adaptive: online retraining under drifting traffic \
         ({} seeds, {threads} threads) ==\n\
         drift: theta {} -> {} over {} phases, hotspot step {} keys/phase\n\
         static model: trained on the stationary shape ({} states), \
         stale by construction once drift begins\n\n",
        cfg.test_seeds.len(),
        spec.zipf_theta,
        STUDY_DRIFT.theta_end,
        STUDY_DRIFT.phases,
        STUDY_DRIFT.hotspot_step,
        trained.tsa.state_count(),
    );
    let mut t = TextTable::new(
        ["policy", "p50", "p95", "p99", "p99 CoV%", "thru/ktick", "shed%"]
            .map(String::from)
            .to_vec(),
    );
    for (policy, runs) in [
        ("default", &default_runs),
        ("guided-static", &static_runs),
        ("guided-adaptive", &adaptive_runs),
    ] {
        t.row(vec![
            policy.into(),
            format!("{:.0}", mean_stat(runs, "sojourn_p50")),
            format!("{:.0}", mean_stat(runs, "sojourn_p95")),
            format!("{:.0}", mean_stat(runs, "sojourn_p99")),
            format!("{:.1}", stat_cov_pct(runs, "sojourn_p99")),
            format!("{:.2}", throughput(runs)),
            format!("{:.1}", shed_pct(runs)),
        ]);
    }
    t.render_to(&mut out).expect("writing to a String cannot fail");

    let attempts = gauge_sum(&adaptive_runs, "gstm_guide_retrain_attempts_total");
    let installs = gauge_sum(&adaptive_runs, "gstm_guide_model_installs_total");
    let rejects = gauge_sum(&adaptive_runs, "gstm_guide_model_rejects_total");
    let stand_downs = gauge_sum(&adaptive_runs, "gstm_guide_stand_downs_total");
    let dropped = gauge_sum(&adaptive_runs, "gstm_guide_ingest_dropped_total");
    out.push_str(&format!(
        "\nadaptive loop over {} runs: {attempts} retrain attempts, \
         {installs} installs, {rejects} gate rejects, \
         {stand_downs} stand-downs, {dropped} dropped windows\n",
        adaptive_runs.len(),
    ));

    let cov_s = stat_cov_pct(&static_runs, "sojourn_p99");
    let cov_a = stat_cov_pct(&adaptive_runs, "sojourn_p99");
    let thru_delta = percent_change(throughput(&static_runs), throughput(&adaptive_runs));
    out.push_str(&format!(
        "adaptive vs static: p99 spread {cov_a:.1}% vs {cov_s:.1}% ({:+.1} pp), \
         throughput {thru_delta:+.1}%\n",
        cov_a - cov_s,
    ));

    // Negative gate row: the §IV analyzer must refuse a model whose
    // transitions carry no bias — shipping it would trade holds for
    // nothing. This is the same call `OnlineRetrainer::try_retrain` makes.
    let verdict =
        analyze_with(&uniform_candidate(), cfg.tfactor, retrain.metric_cutoff, retrain.min_states);
    assert!(
        !verdict.verdict.is_fit(),
        "the gate must reject a near-uniform candidate, got: {verdict}"
    );
    out.push_str(&format!("gate negative control: near-uniform candidate -> {verdict}\n"));
    let telemetry = crate::study::merge_run_telemetry(
        default_runs.iter().chain(static_runs.iter()).chain(adaptive_runs.iter()),
    );
    (out, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExpConfig;

    #[test]
    fn adaptive_spec_drifts_and_training_spec_does_not() {
        let cfg = ExpConfig::tiny();
        let drifting = adaptive_spec(&cfg);
        assert_eq!(drifting.drift, Some(STUDY_DRIFT));
        assert!(training_spec(&cfg).drift.is_none(), "the static model trains pre-drift");
        assert_ne!(drifting.cache_key(), training_spec(&cfg).cache_key());
    }

    #[test]
    fn adaptive_tag_tracks_every_knob() {
        let spec = RetrainSpec::default();
        let a = adaptive_tag("abc", 16, 4.0, &spec);
        assert_ne!(a, adaptive_tag("def", 16, 4.0, &spec), "model digest is load-bearing");
        assert_ne!(a, adaptive_tag("abc", 8, 4.0, &spec));
        let loose = RetrainSpec { decay_pct: 90, ..spec };
        assert_ne!(a, adaptive_tag("abc", 16, 4.0, &loose));
        let ratcheted = RetrainSpec { require_no_regression: true, ..spec };
        assert_ne!(a, adaptive_tag("abc", 16, 4.0, &ratcheted));
    }

    #[test]
    fn adaptive_online_sim_run_is_reproducible() {
        use gstm_guide::run_workload;
        use gstm_model::GuidedModel;
        let cfg = ExpConfig::tiny();
        let spec = adaptive_spec(&cfg);
        let workload = ServeWorkload::new(spec);
        // A tiny but fit starting model; what matters is that the whole
        // loop (ingest, retrain, gate, hot-swap) replays identically.
        let model = Arc::new(GuidedModel::compile(uniform_candidate(), cfg.tfactor));
        let run = || {
            let opts = gstm_guide::RunOptions::new(2, 7)
                .with_policy(PolicyChoice::AdaptiveOnline {
                    model: Arc::clone(&model),
                    k: DEFAULT_K,
                    max_unknown_pct: STUDY_MAX_UNKNOWN_PCT,
                    window: 64,
                    retrain: RetrainSpec::default(),
                })
                .with_telemetry();
            run_workload(&workload, &opts)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.workload_stats, b.workload_stats);
        assert_eq!(a.total_commits(), b.total_commits());
        assert_eq!(a.total_aborts(), b.total_aborts());
        let gauge = |o: &RunOutcome, n: &str| {
            o.telemetry.as_ref().and_then(|s| s.gauge_value(n)).unwrap_or_default()
        };
        for g in ["gstm_guide_retrain_attempts_total", "gstm_guide_model_installs_total"] {
            assert_eq!(gauge(&a, g), gauge(&b, g), "{g} must replay identically");
        }
    }

    #[test]
    fn gate_negative_control_is_rejected() {
        let spec = RetrainSpec::default();
        let verdict = analyze_with(&uniform_candidate(), 4.0, spec.metric_cutoff, spec.min_states);
        assert!(!verdict.verdict.is_fit(), "uniform candidate must be unfit: {verdict}");
    }
}
