//! Ablations over the design knobs DESIGN.md calls out.
//!
//! Every ablation resolves its runs through the [`Pipeline`], so baselines
//! and trained models are shared with the main studies (and with each
//! other) via the in-process memo and the content-addressed cache, and
//! repeated sweeps are warm-cache no-ops.

use std::sync::Arc;

use gstm_guide::{CmChoice, PolicyChoice, RunOptions, DEFAULT_K};
use gstm_stamp::benchmark;
use gstm_stats::{mean, percent_reduction, slowdown, TextTable};

use crate::metrics::{mean_makespan, mean_nondeterminism, per_thread_improvement};
use crate::pipeline::{guided_tag, Pipeline, TAG_DEFAULT};

/// Tfactor sweep (§VI: "experimenting with Tfactor values of between 1 to
/// 10, we found that ... 4 strikes a balance"): variance reduction vs
/// slowdown at each setting.
pub fn ablate_tfactor(pipe: &Pipeline<'_>, name: &'static str) -> String {
    let cfg = pipe.cfg();
    let threads = cfg.threads_list[0];
    let workload = benchmark(name, cfg.test_size).expect("known benchmark");
    let wkey = format!("stamp:{name}:{}", cfg.test_size);
    let default_runs =
        pipe.measured_runs(&wkey, workload.as_ref(), TAG_DEFAULT, |s| RunOptions::new(threads, s));
    let mut t = TextTable::new(vec![
        "Tfactor".into(),
        "mean variance improvement".into(),
        "nondeterminism reduction".into(),
        "slowdown (x)".into(),
    ]);
    for tfactor in [1.0, 2.0, 4.0, 6.0, 8.0, 10.0] {
        pipe.progress().report(&format!("ablate-tfactor: {name} Tfactor={tfactor}"));
        let mut sweep_cfg = cfg.clone();
        sweep_cfg.tfactor = tfactor;
        let trained = pipe.trained_stamp_with(&sweep_cfg, name, threads);
        // The TSA is tfactor-independent (profiling is unguided), so the
        // sweep value must enter the tag explicitly or runs would collide.
        let tag = guided_tag(&trained, DEFAULT_K, tfactor);
        let guided_runs = pipe.measured_runs(&wkey, workload.as_ref(), &tag, |s| {
            RunOptions::new(threads, s)
                .with_policy(PolicyChoice::guided(Arc::clone(&trained.model)))
        });
        let imp = mean(&per_thread_improvement(&default_runs, &guided_runs));
        let nd = percent_reduction(
            mean_nondeterminism(&default_runs),
            mean_nondeterminism(&guided_runs),
        );
        let s = slowdown(mean_makespan(&default_runs), mean_makespan(&guided_runs));
        t.row(vec![
            format!("{tfactor:.0}"),
            format!("{imp:+.1}%"),
            format!("{nd:+.1}%"),
            format!("{s:.2}x"),
        ]);
    }
    format!("== Ablation: Tfactor sweep on {name}, {threads} threads ==\n{}", t.render())
}

/// Hold-bound `k` sweep: guidance strength vs progress cost.
pub fn ablate_k(pipe: &Pipeline<'_>, name: &'static str) -> String {
    let cfg = pipe.cfg();
    let threads = cfg.threads_list[0];
    let workload = benchmark(name, cfg.test_size).expect("known benchmark");
    let wkey = format!("stamp:{name}:{}", cfg.test_size);
    let trained = pipe.trained_stamp(name, threads);
    let default_runs =
        pipe.measured_runs(&wkey, workload.as_ref(), TAG_DEFAULT, |s| RunOptions::new(threads, s));
    let mut t = TextTable::new(vec![
        "k".into(),
        "mean variance improvement".into(),
        "holds bailed out".into(),
        "slowdown (x)".into(),
    ]);
    for k in [4u32, 16, 64, 256] {
        pipe.progress().report(&format!("ablate-k: {name} k={k}"));
        let tag = guided_tag(&trained, k, cfg.tfactor);
        let guided_runs = pipe.measured_runs(&wkey, workload.as_ref(), &tag, |s| {
            RunOptions::new(threads, s)
                .with_policy(PolicyChoice::Guided { model: Arc::clone(&trained.model), k })
        });
        let imp = mean(&per_thread_improvement(&default_runs, &guided_runs));
        let bails: u64 =
            guided_runs.iter().filter_map(|r| r.hold_stats).map(|h| h.bailed_out).sum();
        let s = slowdown(mean_makespan(&default_runs), mean_makespan(&guided_runs));
        t.row(vec![k.to_string(), format!("{imp:+.1}%"), bails.to_string(), format!("{s:.2}x")]);
    }
    format!("== Ablation: hold bound k sweep on {name}, {threads} threads ==\n{}", t.render())
}

/// Contention managers vs guided execution (§IX's claim: CMs raise
/// throughput but not repeatability).
pub fn ablate_cm(pipe: &Pipeline<'_>, name: &'static str) -> String {
    let cfg = pipe.cfg();
    let threads = cfg.threads_list[0];
    let workload = benchmark(name, cfg.test_size).expect("known benchmark");
    let wkey = format!("stamp:{name}:{}", cfg.test_size);
    let baseline =
        pipe.measured_runs(&wkey, workload.as_ref(), TAG_DEFAULT, |s| RunOptions::new(threads, s));
    let mut t = TextTable::new(vec![
        "Policy".into(),
        "mean variance improvement".into(),
        "nondeterminism reduction".into(),
        "slowdown (x)".into(),
    ]);
    let mut push = |label: String, runs: &Vec<gstm_guide::RunOutcome>| {
        let imp = mean(&per_thread_improvement(&baseline, runs));
        let nd = percent_reduction(mean_nondeterminism(&baseline), mean_nondeterminism(runs));
        let s = slowdown(mean_makespan(&baseline), mean_makespan(runs));
        t.row(vec![label, format!("{imp:+.1}%"), format!("{nd:+.1}%"), format!("{s:.2}x")]);
    };
    for cm in [CmChoice::Polite, CmChoice::Karma, CmChoice::Greedy] {
        pipe.progress().report(&format!("ablate-cm: {name} {cm:?}"));
        // The CM is part of the run key (RunOptions::cm), so TAG_DEFAULT
        // still addresses each variant distinctly.
        let runs = pipe.measured_runs(&wkey, workload.as_ref(), TAG_DEFAULT, |s| {
            let mut opts = RunOptions::new(threads, s);
            opts.cm = cm;
            opts
        });
        push(format!("{cm:?}"), &runs);
    }
    pipe.progress().report(&format!("ablate-cm: {name} guided"));
    let trained = pipe.trained_stamp(name, threads);
    let tag = guided_tag(&trained, DEFAULT_K, cfg.tfactor);
    let guided = pipe.measured_runs(&wkey, workload.as_ref(), &tag, |s| {
        RunOptions::new(threads, s).with_policy(PolicyChoice::guided(Arc::clone(&trained.model)))
    });
    push("Guided".into(), &guided);
    format!(
        "== Ablation: contention managers vs guidance on {name}, {threads} threads ==\n{}",
        t.render()
    )
}

/// Detection-mode ablation (§II: "demonstration of guided execution on
/// eager detection mechanism is easily implied by the testimony on lazy
/// conflict detection"): run default and guided under both commit-time and
/// encounter-time locking and compare abort profiles and variance.
pub fn ablate_detection(pipe: &Pipeline<'_>, name: &'static str) -> String {
    use gstm_core::Detection;
    let cfg = pipe.cfg();
    let threads = cfg.threads_list[0];
    let workload = benchmark(name, cfg.test_size).expect("known benchmark");
    let wkey = format!("stamp:{name}:{}", cfg.test_size);
    let trained = pipe.trained_stamp(name, threads);
    let guided = guided_tag(&trained, DEFAULT_K, cfg.tfactor);
    let mut t = TextTable::new(vec![
        "Detection".into(),
        "policy".into(),
        "abort ratio".into(),
        "mean variance improvement".into(),
        "slowdown vs lazy default (x)".into(),
    ]);
    let run_set = |detection: Detection, policy: PolicyChoice, tag: &str| {
        pipe.measured_runs(&wkey, workload.as_ref(), tag, |s| {
            let mut opts = RunOptions::new(threads, s).with_policy(policy.clone());
            opts.detection = Some(detection);
            opts
        })
    };
    pipe.progress().report(&format!("ablate-detection: {name} lazy default"));
    let lazy_default = run_set(Detection::CommitTime, PolicyChoice::Default, TAG_DEFAULT);
    let base_time = mean_makespan(&lazy_default);
    for detection in [Detection::CommitTime, Detection::EncounterTime] {
        for is_guided in [false, true] {
            let label = if is_guided { "guided" } else { "default" };
            pipe.progress().report(&format!("ablate-detection: {name} {detection:?} {label}"));
            let runs = if matches!(detection, Detection::CommitTime) && !is_guided {
                lazy_default.clone()
            } else if is_guided {
                run_set(detection, PolicyChoice::guided(Arc::clone(&trained.model)), &guided)
            } else {
                run_set(detection, PolicyChoice::Default, TAG_DEFAULT)
            };
            let ar = crate::metrics::mean_abort_ratio(&runs);
            let imp = mean(&per_thread_improvement(&lazy_default, &runs));
            let s = slowdown(base_time, mean_makespan(&runs));
            t.row(vec![
                format!("{detection:?}"),
                label.into(),
                format!("{ar:.3}"),
                format!("{imp:+.1}%"),
                format!("{s:.2}x"),
            ]);
        }
    }
    format!(
        "== Ablation: detection mode x guidance on {name}, {threads} threads ==\n{}",
        t.render()
    )
}

/// Policy spectrum: default vs the paper's dismissed local prioritization
/// (§I), DeSTM-style determinism (§IX) and guided execution — variance,
/// non-determinism and throughput cost of each point on the
/// speculation/repeatability spectrum.
pub fn ablate_policy(pipe: &Pipeline<'_>, name: &'static str) -> String {
    let cfg = pipe.cfg();
    let threads = cfg.threads_list[0];
    let workload = benchmark(name, cfg.test_size).expect("known benchmark");
    let wkey = format!("stamp:{name}:{}", cfg.test_size);
    let baseline =
        pipe.measured_runs(&wkey, workload.as_ref(), TAG_DEFAULT, |s| RunOptions::new(threads, s));
    let mut t = TextTable::new(vec![
        "Policy".into(),
        "mean variance improvement".into(),
        "nondeterminism reduction".into(),
        "slowdown (x)".into(),
    ]);
    let mut measure = |label: &str, policy: PolicyChoice, tag: &str| {
        pipe.progress().report(&format!("ablate-policy: {name} {label}"));
        let runs = pipe.measured_runs(&wkey, workload.as_ref(), tag, |s| {
            RunOptions::new(threads, s).with_policy(policy.clone())
        });
        let imp = mean(&per_thread_improvement(&baseline, &runs));
        let nd = percent_reduction(mean_nondeterminism(&baseline), mean_nondeterminism(&runs));
        let s = slowdown(mean_makespan(&baseline), mean_makespan(&runs));
        t.row(vec![
            label.to_string(),
            format!("{imp:+.1}%"),
            format!("{nd:+.1}%"),
            format!("{s:.2}x"),
        ]);
    };
    measure(
        "bounded-aborts(3)",
        PolicyChoice::BoundedAborts { limit: 3 },
        "policy=bounded-aborts;limit=3",
    );
    measure("deterministic", PolicyChoice::Deterministic, "policy=deterministic");
    let trained = pipe.trained_stamp(name, threads);
    let tag = guided_tag(&trained, DEFAULT_K, cfg.tfactor);
    measure("guided", PolicyChoice::guided(Arc::clone(&trained.model)), &tag);
    format!(
        "== Ablation: admission-policy spectrum on {name}, {threads} threads ==\n{}",
        t.render()
    )
}

/// Training-size ablation (the paper's "medium sized training set is not
/// usually a representative input" remark): how model coverage changes
/// with the training input.
pub fn ablate_train(pipe: &Pipeline<'_>, name: &'static str) -> String {
    use gstm_stamp::InputSize;
    let cfg = pipe.cfg();
    let threads = cfg.threads_list[0];
    let workload = benchmark(name, cfg.test_size).expect("known benchmark");
    let wkey = format!("stamp:{name}:{}", cfg.test_size);
    let mut t = TextTable::new(vec![
        "Training size".into(),
        "model states".into(),
        "unknown-state rate".into(),
        "mean variance improvement".into(),
    ]);
    let default_runs =
        pipe.measured_runs(&wkey, workload.as_ref(), TAG_DEFAULT, |s| RunOptions::new(threads, s));
    for size in [InputSize::Small, InputSize::Medium] {
        pipe.progress().report(&format!("ablate-train: {name} trained on {size}"));
        let mut sweep = cfg.clone();
        sweep.train_size = size;
        let trained = pipe.trained_stamp_with(&sweep, name, threads);
        let tag = guided_tag(&trained, DEFAULT_K, cfg.tfactor);
        let guided_runs = pipe.measured_runs(&wkey, workload.as_ref(), &tag, |s| {
            RunOptions::new(threads, s)
                .with_policy(PolicyChoice::guided(Arc::clone(&trained.model)))
        });
        let unknown: f64 = guided_runs.iter().map(|r| r.unknown_hits as f64).sum::<f64>()
            / guided_runs.iter().map(|r| r.total_commits() as f64).sum::<f64>().max(1.0);
        let imp = mean(&per_thread_improvement(&default_runs, &guided_runs));
        t.row(vec![
            size.to_string(),
            trained.tsa.state_count().to_string(),
            format!("{:.1}%", unknown * 100.0),
            format!("{imp:+.1}%"),
        ]);
    }
    format!("== Ablation: training-input size on {name}, {threads} threads ==\n{}", t.render())
}
