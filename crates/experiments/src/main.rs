//! The experiments CLI: regenerate any table or figure of the paper.
//!
//! ```text
//! cargo run -p gstm-experiments --release -- <command>
//!     [--fast | --tiny] [--bench NAME] [--metrics PATH]
//!     [--jobs N] [--cache-dir PATH] [--no-cache]
//!
//! commands:
//!   table1 table2 table3 table4 table5
//!   fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//!   stamp      (table1+3+4, fig3..10 from one shared study)
//!   quake      (table5, fig11, fig12)
//!   serve      (open-loop store service tail-latency study -> serve.txt)
//!   serve-adaptive             (online adaptive guidance vs a stale static
//!                               model under drifting traffic ->
//!                               serve_adaptive.txt)
//!   all        (everything above)
//!   cell --bench NAME          (one STAMP cell; deterministic summary — CI smoke)
//!   ablate-tfactor | ablate-k | ablate-cm | ablate-train | ablate-policy | ablate-detection
//!   train-model --bench NAME   (profile + build + save results/NAME-<threads>t.gtsa)
//!   inspect-model FILE         (analyzer report + hottest states of a saved model)
//!   bench [--out PATH] [--preset tiny|default] [--smoke] [--baseline FILE]
//!         [--profile NAME]     (hot-path microbenchmarks -> BENCH_tl2_hotpath.json)
//!   bench-pipeline [--out PATH] [--cache-dir PATH] [--profile NAME]
//!                              (cold-vs-warm pipeline timing -> BENCH_pipeline.json)
//!   bench-check FILE           (validate a BENCH_*.json artifact's shape)
//!   check [--tiny] [--seed N] [--threads N] [--ops N] [--jobs N]
//!                              (fault-injected chaos matrix judged by the
//!                               gstm-check opacity oracle -> results/check.txt;
//!                               exits 1 on any violation)
//!   recover [--tiny] [--seed N] [--threads N] [--requests N] [--jobs N]
//!           [--cache-dir PATH] [--no-cache]
//!                              (kill-and-recover matrix: WAL crash points x
//!                               backends x CMs, recovered stores checked
//!                               against the serial history ->
//!                               results/recover.txt; exits 1 on any violation)
//!   bench-wal [--out PATH] [--smoke] [--profile NAME]
//!                              (WAL microbenchmarks: append throughput,
//!                               recovery time vs log length, durable-vs-
//!                               ephemeral overhead -> BENCH_wal.json)
//!   bench-scale [--out PATH] [--preset tiny|default] [--smoke] [--profile NAME]
//!                              (commit-spine scaling: legacy vs skip-ahead
//!                               clock over 1..16 OS threads, global vs
//!                               per-shard serve spine, reader-registry
//!                               footprint -> BENCH_scale.json)
//!   bench-mvcc [--out PATH] [--preset tiny|default] [--smoke] [--profile NAME]
//!                              (multi-version read path: the read-mostly
//!                               serve cell under Latest vs Snapshot read
//!                               modes, read-only aborts, version-ring
//!                               counters -> BENCH_mvcc.json)
//!   bench-adaptive [--out PATH] [--preset tiny|default] [--smoke] [--profile NAME]
//!                              (online adaptive guidance: the drifting
//!                               serve cell under the stale static model vs
//!                               the retrain/gate/hot-swap loop, loop
//!                               counters, gate negative control ->
//!                               BENCH_adaptive.json)
//!   bench-block [--out PATH] [--preset tiny|default] [--smoke] [--profile NAME]
//!                              (ordered block execution: the read-mostly
//!                               serve cell under interleaved TL2 vs
//!                               snapshot reads vs ServeMode::Block,
//!                               executor counters, schedule-invariance
//!                               verdict -> BENCH_block.json)
//!   block-smoke [--threads N,N,..] [--requests N] [--seed N]
//!                              (block determinism smoke: one ordered block
//!                               workload executed at each worker-thread
//!                               count, digests compared against the
//!                               sequential reference; exits 1 on any
//!                               divergence)
//! ```
//!
//! Every study command resolves through the experiment pipeline: trained
//! models and measured run outcomes are cached content-addressed under
//! `--cache-dir` (default `target/gstm-cache`; `--no-cache` disables), and
//! independent cells/seeds fan out over `--jobs N` worker threads. Output
//! is byte-identical whatever the jobs count or cache state.
//!
//! `--metrics PATH` attaches telemetry to every measured run and writes the
//! merged snapshot (including the pipeline's cache gauges) as
//! Prometheus-style text to PATH plus a compact machine dump to
//! PATH.machine (parse with `gstm_stats::telemetry_dump`).
//!
//! Output is printed and archived under `results/`.

use std::io::Write as _;

use gstm_experiments::ablation;
use gstm_experiments::cache::DiskCache;
use gstm_experiments::config::ExpConfig;
use gstm_experiments::pipeline::{Pipeline, StudyPlan};
use gstm_experiments::progress::{Progress, StderrProgress};
use gstm_experiments::report;
use gstm_experiments::study::StampCell;
use gstm_synquake::Quest;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <table1|table2|table3|table4|table5|fig3..fig12|stamp|quake|serve|\
         serve-adaptive|all|\
         cell|train-model|inspect-model|sites|bench|bench-pipeline|bench-wal|bench-scale|\
         bench-mvcc|bench-adaptive|bench-block|block-smoke|bench-check|check|\
         recover|ablate-tfactor|ablate-k|ablate-cm|ablate-train|ablate-policy|ablate-detection> \
         [--fast|--tiny] [--bench NAME] [--metrics PATH] [--jobs N] \
         [--cache-dir PATH] [--no-cache]"
    );
    std::process::exit(2);
}

/// `bench`: run the hot-path suite and write the JSON artifact.
fn run_bench(args: &[String]) -> ! {
    let flag = |name: &str| -> Option<&String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1))
    };
    let out = flag("--out").map_or("BENCH_tl2_hotpath.json", String::as_str);
    let preset = flag("--preset").map_or("default", String::as_str);
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut cfg =
        gstm_experiments::bench::BenchConfig::for_preset(preset, smoke).unwrap_or_else(|e| {
            eprintln!("bench: {e}");
            std::process::exit(2);
        });
    if let Some(profile) = flag("--profile") {
        cfg.profile = profile.clone();
    }
    let baseline: Option<Vec<(String, f64)>> = flag("--baseline").map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench: cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        gstm_experiments::bench::parse_metrics(&text).unwrap_or_else(|e| {
            eprintln!("bench: bad baseline {path}: {e}");
            std::process::exit(2);
        })
    });
    let progress = StderrProgress::new();
    let metrics = gstm_experiments::bench::run_suite(&cfg, &progress);
    let text = gstm_experiments::bench::render_artifact(&cfg, &metrics, baseline.as_deref());
    std::fs::write(out, &text).unwrap_or_else(|e| {
        eprintln!("bench: cannot write {out}: {e}");
        std::process::exit(2);
    });
    progress.report(&format!("wrote {out}"));
    std::process::exit(0);
}

/// `bench-pipeline`: time the tiny study cold-vs-warm and write the JSON
/// artifact.
fn run_bench_pipeline(args: &[String]) -> ! {
    let flag = |name: &str| -> Option<&String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1))
    };
    let out = flag("--out").map_or("BENCH_pipeline.json", String::as_str);
    let (cache_root, ephemeral) = match flag("--cache-dir") {
        Some(dir) => (std::path::PathBuf::from(dir), false),
        None => {
            // A fresh directory so the first pass is genuinely cold.
            let dir = std::path::PathBuf::from(format!(
                "target/gstm-bench-pipeline-cache-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            (dir, true)
        }
    };
    let mut cfg = gstm_experiments::bench::BenchConfig::for_preset("tiny", false)
        .expect("tiny is a known preset");
    cfg.suite = gstm_experiments::bench::SUITE_PIPELINE.to_string();
    if let Some(profile) = flag("--profile") {
        cfg.profile = profile.clone();
    }
    let progress = StderrProgress::new();
    let metrics = gstm_experiments::bench::run_pipeline_suite(&progress, &cache_root);
    if ephemeral {
        let _ = std::fs::remove_dir_all(&cache_root);
    }
    let text = gstm_experiments::bench::render_artifact(&cfg, &metrics, None);
    std::fs::write(out, &text).unwrap_or_else(|e| {
        eprintln!("bench-pipeline: cannot write {out}: {e}");
        std::process::exit(2);
    });
    progress.report(&format!("wrote {out}"));
    std::process::exit(0);
}

/// `bench-scale`: run the commit-spine scale suite (legacy vs skip-ahead
/// clock over real OS threads, global vs per-shard serve spine, registry
/// footprint) and write the JSON artifact.
fn run_bench_scale(args: &[String]) -> ! {
    let flag = |name: &str| -> Option<&String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1))
    };
    let out = flag("--out").map_or("BENCH_scale.json", String::as_str);
    let preset = flag("--preset").map_or("default", String::as_str);
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut cfg =
        gstm_experiments::bench::BenchConfig::for_preset(preset, smoke).unwrap_or_else(|e| {
            eprintln!("bench-scale: {e}");
            std::process::exit(2);
        });
    cfg.suite = gstm_experiments::bench::SUITE_SCALE.to_string();
    if let Some(profile) = flag("--profile") {
        cfg.profile = profile.clone();
    }
    let progress = StderrProgress::new();
    let metrics = gstm_experiments::bench::run_scale_suite(&cfg, &progress);
    let text = gstm_experiments::bench::render_artifact(&cfg, &metrics, None);
    std::fs::write(out, &text).unwrap_or_else(|e| {
        eprintln!("bench-scale: cannot write {out}: {e}");
        std::process::exit(2);
    });
    progress.report(&format!("wrote {out}"));
    std::process::exit(0);
}

/// `bench-mvcc`: run the multi-version read-path suite (the read-mostly
/// serve cell under `Latest` vs `Snapshot` read modes, plus the snapshot
/// engine's version-ring counters) and write the JSON artifact.
fn run_bench_mvcc(args: &[String]) -> ! {
    let flag = |name: &str| -> Option<&String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1))
    };
    let out = flag("--out").map_or("BENCH_mvcc.json", String::as_str);
    let preset = flag("--preset").map_or("default", String::as_str);
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut cfg =
        gstm_experiments::bench::BenchConfig::for_preset(preset, smoke).unwrap_or_else(|e| {
            eprintln!("bench-mvcc: {e}");
            std::process::exit(2);
        });
    cfg.suite = gstm_experiments::bench::SUITE_MVCC.to_string();
    if let Some(profile) = flag("--profile") {
        cfg.profile = profile.clone();
    }
    let progress = StderrProgress::new();
    let metrics = gstm_experiments::bench::run_mvcc_suite(&cfg, &progress);
    let text = gstm_experiments::bench::render_artifact(&cfg, &metrics, None);
    std::fs::write(out, &text).unwrap_or_else(|e| {
        eprintln!("bench-mvcc: cannot write {out}: {e}");
        std::process::exit(2);
    });
    progress.report(&format!("wrote {out}"));
    std::process::exit(0);
}

/// `bench-block`: run the ordered block-execution suite (the read-mostly
/// serve cell under interleaved TL2 vs snapshot reads vs
/// `ServeMode::Block`, plus the executor's counters and the
/// schedule-invariance verdict) and write the JSON artifact.
fn run_bench_block(args: &[String]) -> ! {
    let flag = |name: &str| -> Option<&String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1))
    };
    let out = flag("--out").map_or("BENCH_block.json", String::as_str);
    let preset = flag("--preset").map_or("default", String::as_str);
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut cfg =
        gstm_experiments::bench::BenchConfig::for_preset(preset, smoke).unwrap_or_else(|e| {
            eprintln!("bench-block: {e}");
            std::process::exit(2);
        });
    cfg.suite = gstm_experiments::bench::SUITE_BLOCK.to_string();
    if let Some(profile) = flag("--profile") {
        cfg.profile = profile.clone();
    }
    let progress = StderrProgress::new();
    let metrics = gstm_experiments::bench::run_block_suite(&cfg, &progress);
    let text = gstm_experiments::bench::render_artifact(&cfg, &metrics, None);
    std::fs::write(out, &text).unwrap_or_else(|e| {
        eprintln!("bench-block: cannot write {out}: {e}");
        std::process::exit(2);
    });
    progress.report(&format!("wrote {out}"));
    std::process::exit(0);
}

/// `block-smoke`: execute one ordered block workload at each requested
/// worker-thread count and compare every run's output digests against the
/// sequential same-order reference. Exits 0 with per-thread digests on
/// success; exits 1 naming the first divergence otherwise. This is the CI
/// gate for the executor's schedule-invariance guarantee.
fn run_block_smoke(args: &[String]) -> ! {
    let flag = |name: &str| -> Option<&String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1))
    };
    let parse = |name: &str, default: usize| -> usize {
        flag(name).map_or(default, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("block-smoke: {name} wants a number, got {s:?}");
                std::process::exit(2);
            })
        })
    };
    let requests = parse("--requests", 200);
    let seed = parse("--seed", 11) as u64;
    let threads: Vec<usize> = flag("--threads").map_or(vec![1, 2, 4, 8], |s| {
        s.split(',')
            .map(|part| {
                part.trim().parse().unwrap_or_else(|_| {
                    eprintln!("block-smoke: bad thread count {part:?} in {s:?}");
                    std::process::exit(2);
                })
            })
            .collect()
    });
    // The contended ledger shape: transfer-dominated Zipf traffic over few
    // accounts, so blocks carry real write-write dependency chains.
    let spec = gstm_serve::ServeSpec::ledger(requests).with_block_mode(32);
    let reference = gstm_serve::run_block_reference(&spec, 2, seed);
    println!(
        "block-smoke: {} txns, reference digest {:016x}",
        reference.outputs.len(),
        reference.final_digest
    );
    let parallel: Vec<(usize, gstm_check::BlockRecord)> = threads
        .iter()
        .map(|&t| {
            let (record, stats) = gstm_serve::execute_block_order(&spec, 2, seed, t);
            println!(
                "block-smoke: threads={t} digest {:016x} (re-execs {}, stalls {}, waves {})",
                record.final_digest, stats.re_executions, stats.dependency_stalls, stats.waves
            );
            (t, record)
        })
        .collect();
    let report = gstm_check::check_block_equivalence(&reference, &parallel);
    if report.ok() && !report.is_vacuous() {
        println!("block-smoke: PASS ({})", report.summary());
        std::process::exit(0);
    }
    eprintln!("block-smoke: FAIL ({})", report.summary());
    for v in &report.violations {
        eprintln!("block-smoke:   {v}");
    }
    std::process::exit(1);
}

/// `bench-adaptive`: run the online-adaptive-guidance suite (the drifting
/// serve cell under the stale static model vs the full retrain/gate/
/// hot-swap loop, plus the loop's counters and the §IV gate's negative
/// control) and write the JSON artifact.
fn run_bench_adaptive(args: &[String]) -> ! {
    let flag = |name: &str| -> Option<&String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1))
    };
    let out = flag("--out").map_or("BENCH_adaptive.json", String::as_str);
    let preset = flag("--preset").map_or("default", String::as_str);
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut cfg =
        gstm_experiments::bench::BenchConfig::for_preset(preset, smoke).unwrap_or_else(|e| {
            eprintln!("bench-adaptive: {e}");
            std::process::exit(2);
        });
    cfg.suite = gstm_experiments::bench::SUITE_ADAPTIVE.to_string();
    if let Some(profile) = flag("--profile") {
        cfg.profile = profile.clone();
    }
    let progress = StderrProgress::new();
    let metrics = gstm_experiments::bench::run_adaptive_suite(&cfg, &progress);
    let text = gstm_experiments::bench::render_artifact(&cfg, &metrics, None);
    std::fs::write(out, &text).unwrap_or_else(|e| {
        eprintln!("bench-adaptive: cannot write {out}: {e}");
        std::process::exit(2);
    });
    progress.report(&format!("wrote {out}"));
    std::process::exit(0);
}

/// `bench-check`: validate an artifact's shape (never its numbers).
fn run_bench_check(args: &[String]) -> ! {
    let path = args.first().map_or("BENCH_tl2_hotpath.json", String::as_str);
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench-check: cannot read {path}: {e}");
        std::process::exit(1);
    });
    match gstm_experiments::bench::check_artifact(&text) {
        Ok(()) => {
            eprintln!("bench-check: {path} ok");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("bench-check: {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// `check`: the fault-injected chaos matrix judged by the opacity oracle.
/// Prints the per-cell report, archives it to `results/check.txt`, and
/// exits nonzero if any cell saw a violation (or the history was vacuous).
fn run_check(args: &[String]) -> ! {
    let flag = |name: &str| -> Option<&String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1))
    };
    let parsed = |name: &str, v: &String| -> u64 {
        v.parse().unwrap_or_else(|_| {
            eprintln!("check: {name} requires a non-negative integer, got {v}");
            std::process::exit(2);
        })
    };
    let seed = flag("--seed").map_or(7, |s| parsed("--seed", s));
    let mut opts = if args.iter().any(|a| a == "--tiny") {
        gstm_experiments::checkcmd::CheckOptions::tiny(seed)
    } else {
        gstm_experiments::checkcmd::CheckOptions::new(seed)
    };
    if let Some(t) = flag("--threads") {
        opts.threads = parsed("--threads", t).max(2) as usize;
    }
    if let Some(o) = flag("--ops") {
        opts.ops_per_thread = parsed("--ops", o) as u32;
    }
    // The matrix needs only the pipeline's worker pool; the tiny study
    // config supplies the pool defaults (jobs, results dir).
    let mut cfg = ExpConfig::tiny();
    if let Some(jobs) = flag("--jobs") {
        cfg.jobs = parsed("--jobs", jobs).max(1) as usize;
    }
    let progress = StderrProgress::new();
    let pipe = Pipeline::new(&cfg, &progress).with_jobs(cfg.jobs);
    let (body, ok) = gstm_experiments::checkcmd::run_matrix(&opts, &pipe, &progress);
    if std::fs::create_dir_all(&cfg.out_dir).is_ok() {
        let _ = std::fs::write(cfg.out_dir.join("check.txt"), &body);
    }
    println!("{body}");
    std::process::exit(i32::from(!ok));
}

/// `recover`: the kill-and-recover matrix over WAL crash points, storage
/// backends and contention managers. Prints the per-cell report, archives
/// it to `results/recover.txt`, and exits nonzero if any cell's recovered
/// store diverged from the serial history (or injection was vacuous).
fn run_recover(args: &[String]) -> ! {
    let flag = |name: &str| -> Option<&String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1))
    };
    let parsed = |name: &str, v: &String| -> u64 {
        v.parse().unwrap_or_else(|_| {
            eprintln!("recover: {name} requires a non-negative integer, got {v}");
            std::process::exit(2);
        })
    };
    let seed = flag("--seed").map_or(7, |s| parsed("--seed", s));
    let mut opts = if args.iter().any(|a| a == "--tiny") {
        gstm_experiments::recovercmd::RecoverOptions::tiny(seed)
    } else {
        gstm_experiments::recovercmd::RecoverOptions::new(seed)
    };
    if let Some(t) = flag("--threads") {
        opts.threads = parsed("--threads", t).max(2) as usize;
    }
    if let Some(r) = flag("--requests") {
        opts.requests_per_thread = parsed("--requests", r).max(1) as usize;
    }
    // The matrix uses the pipeline's worker pool and its text cache; the
    // tiny study config supplies the pool defaults (jobs, results dir).
    let mut cfg = ExpConfig::tiny();
    if let Some(jobs) = flag("--jobs") {
        cfg.jobs = parsed("--jobs", jobs).max(1) as usize;
    }
    if args.iter().any(|a| a == "--no-cache") {
        cfg.cache_dir = None;
    } else if let Some(dir) = flag("--cache-dir") {
        cfg.cache_dir = Some(std::path::PathBuf::from(dir));
    }
    let progress = StderrProgress::new();
    let mut pipe = Pipeline::new(&cfg, &progress).with_jobs(cfg.jobs);
    if let Some(dir) = &cfg.cache_dir {
        pipe = pipe.with_cache(DiskCache::new(dir.clone()));
    }
    let (body, ok) = gstm_experiments::recovercmd::run_matrix(&opts, &pipe, &progress);
    if std::fs::create_dir_all(&cfg.out_dir).is_ok() {
        let _ = std::fs::write(cfg.out_dir.join("recover.txt"), &body);
    }
    progress.report(&pipe.gauges().summary());
    println!("{body}");
    std::process::exit(i32::from(!ok));
}

/// `bench-wal`: run the WAL suite and write the JSON artifact.
fn run_bench_wal(args: &[String]) -> ! {
    let flag = |name: &str| -> Option<&String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1))
    };
    let out = flag("--out").map_or("BENCH_wal.json", String::as_str);
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut cfg = gstm_experiments::bench::BenchConfig::for_preset("tiny", smoke)
        .expect("tiny is a known preset");
    cfg.suite = gstm_experiments::bench::SUITE_WAL.to_string();
    if let Some(profile) = flag("--profile") {
        cfg.profile = profile.clone();
    }
    let progress = StderrProgress::new();
    let metrics = gstm_experiments::bench::run_wal_suite(&cfg, &progress);
    let text = gstm_experiments::bench::render_artifact(&cfg, &metrics, None);
    std::fs::write(out, &text).unwrap_or_else(|e| {
        eprintln!("bench-wal: cannot write {out}: {e}");
        std::process::exit(2);
    });
    progress.report(&format!("wrote {out}"));
    std::process::exit(0);
}

/// Deterministic per-seed summary of one STAMP cell — the `cell` command's
/// output, diffed byte-for-byte by the CI pipeline smoke (jobs/cache
/// invariance).
fn render_cell(cfg: &ExpConfig, cell: &StampCell) -> String {
    use gstm_experiments::metrics::per_thread_improvement;
    use gstm_stats::mean;
    let mut body = format!(
        "== Cell: {} @ {} threads ({} seeds) ==\n",
        cell.name,
        cell.threads,
        cfg.test_seeds.len()
    );
    for (label, runs) in [("default", &cell.default_runs), ("guided", &cell.guided_runs)] {
        for (seed, run) in cfg.test_seeds.iter().zip(runs.iter()) {
            body.push_str(&format!(
                "{label} seed {seed}: makespan {} commits {} aborts {} nondet {}\n",
                run.makespan,
                run.total_commits(),
                run.total_aborts(),
                run.nondeterminism
            ));
        }
    }
    let imp = mean(&per_thread_improvement(&cell.default_runs, &cell.guided_runs));
    body.push_str(&format!(
        "model states {} | mean variance improvement {imp:+.1}%\n",
        cell.trained.tsa.state_count()
    ));
    body
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args[0].as_str();
    match command {
        // These paths never touch the study machinery.
        "bench" => run_bench(&args[1..]),
        "bench-pipeline" => run_bench_pipeline(&args[1..]),
        "bench-wal" => run_bench_wal(&args[1..]),
        "bench-scale" => run_bench_scale(&args[1..]),
        "bench-mvcc" => run_bench_mvcc(&args[1..]),
        "bench-adaptive" => run_bench_adaptive(&args[1..]),
        "bench-block" => run_bench_block(&args[1..]),
        "block-smoke" => run_block_smoke(&args[1..]),
        "bench-check" => run_bench_check(&args[1..]),
        "check" => run_check(&args[1..]),
        "recover" => run_recover(&args[1..]),
        _ => {}
    }
    let fast = args.iter().any(|a| a == "--fast");
    let tiny = args.iter().any(|a| a == "--tiny");
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let flag_value = |name: &str| -> Option<&String> {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1).filter(|v| !v.starts_with("--")).unwrap_or_else(|| {
                eprintln!("{name} requires an argument");
                std::process::exit(2);
            })
        })
    };
    let bench_name: &'static str = flag_value("--bench")
        .map(|s| {
            gstm_stamp::BENCHMARK_NAMES.iter().copied().find(|n| *n == s.as_str()).unwrap_or_else(
                || {
                    eprintln!("unknown benchmark {s}; known: {:?}", gstm_stamp::BENCHMARK_NAMES);
                    std::process::exit(2);
                },
            )
        })
        .unwrap_or("kmeans");
    let metrics_path: Option<std::path::PathBuf> =
        flag_value("--metrics").map(std::path::PathBuf::from);
    let mut cfg = if tiny {
        ExpConfig::tiny()
    } else if fast {
        ExpConfig::fast()
    } else {
        ExpConfig::full()
    };
    cfg.telemetry = metrics_path.is_some();
    if let Some(jobs) = flag_value("--jobs") {
        cfg.jobs = jobs.parse().unwrap_or_else(|_| {
            eprintln!("--jobs requires a positive integer, got {jobs}");
            std::process::exit(2);
        });
    }
    if no_cache {
        cfg.cache_dir = None;
    } else if let Some(dir) = flag_value("--cache-dir") {
        cfg.cache_dir = Some(std::path::PathBuf::from(dir));
    }
    std::fs::create_dir_all(&cfg.out_dir).expect("create results dir");

    let progress = StderrProgress::new();
    let mut pipe = Pipeline::new(&cfg, &progress).with_jobs(cfg.jobs);
    if let Some(dir) = &cfg.cache_dir {
        pipe = pipe.with_cache(DiskCache::new(dir.clone()));
    }

    let mut outputs: Vec<(String, String)> = Vec::new();
    let needs_stamp = matches!(
        command,
        "table1"
            | "table3"
            | "table4"
            | "fig3"
            | "fig4"
            | "fig5"
            | "fig6"
            | "fig7"
            | "fig8"
            | "fig9"
            | "fig10"
            | "stamp"
            | "all"
    );
    let needs_quake = matches!(command, "table5" | "fig11" | "fig12" | "quake" | "all");
    let needs_serve = matches!(command, "serve" | "all");

    // Declare everything the command needs, then resolve the whole plan in
    // one pass: shared training, cached outcomes, `--jobs` fan-out.
    let mut plan = StudyPlan::new();
    if needs_stamp {
        // table1/table3/fig3 only need training; everything else needs the
        // full study. Training dominates anyway, so share one full study.
        plan.stamp_study(&cfg, &gstm_stamp::BENCHMARK_NAMES);
    }
    if needs_quake {
        plan.quake_study(&cfg);
    }
    if needs_serve {
        plan.serve_study(&cfg);
    }
    if command == "cell" {
        plan.stamp_cell(bench_name, cfg.threads_list[0]);
    }
    let result = (!plan.is_empty()).then(|| pipe.resolve(&plan));
    let stamp = result.as_ref().map(|r| &r.stamp).filter(|s| !s.cells.is_empty());
    let quake = result.as_ref().map(|r| &r.quake).filter(|q| !q.cells.is_empty());
    let serve = result.as_ref().map(|r| &r.serve).filter(|s| !s.cells.is_empty());

    let threads_a = cfg.threads_list[0];
    let threads_b = *cfg.threads_list.last().expect("nonempty threads list");
    // serve-adaptive drives the pipeline directly rather than through the
    // study plan; its merged run telemetry is captured here for --metrics.
    let mut adaptive_snap: Option<gstm_telemetry::Snapshot> = None;

    let out_dir = cfg.out_dir.clone();
    let mut emit = |id: &str, body: String| {
        // Flush incrementally so long sweeps leave results behind even if
        // interrupted.
        let path = out_dir.join(format!("{id}.txt"));
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = f.write_all(body.as_bytes());
        }
        outputs.push((id.to_string(), body));
    };
    match command {
        "table2" => emit("table2", report::table2(&cfg)),
        "table1" => emit("table1", report::table1(&cfg, stamp.unwrap())),
        "table3" => emit("table3", report::table3(&cfg, stamp.unwrap())),
        "table4" => emit("table4", report::table4(&cfg, stamp.unwrap())),
        "fig3" => emit("fig3", report::fig3(&cfg, stamp.unwrap())),
        "fig4" => emit("fig4", report::fig_variance(threads_a, stamp.unwrap(), "Figure 4")),
        "fig6" => emit("fig6", report::fig_variance(threads_b, stamp.unwrap(), "Figure 6")),
        "fig5" => emit("fig5", report::fig_tails(threads_a, stamp.unwrap(), "Figure 5", 0)),
        "fig7" => {
            emit("fig7", report::fig_tails(threads_b, stamp.unwrap(), "Figure 7", threads_b / 2))
        }
        "fig8" => emit("fig8", report::fig8(&cfg, stamp.unwrap())),
        "fig9" => emit("fig9", report::fig9(&cfg, stamp.unwrap())),
        "fig10" => emit("fig10", report::fig10(&cfg, stamp.unwrap())),
        "table5" => emit("table5", report::table5(&cfg, quake.unwrap())),
        "fig11" => {
            emit("fig11", report::fig_quake(&cfg, quake.unwrap(), Quest::Quadrants4, "Figure 11"))
        }
        "fig12" => emit(
            "fig12",
            report::fig_quake(&cfg, quake.unwrap(), Quest::CenterSpread6, "Figure 12"),
        ),
        "serve" => emit("serve", gstm_experiments::servecmd::render_serve(&cfg, serve.unwrap())),
        "serve-adaptive" => {
            let (body, snap) = gstm_experiments::adaptcmd::serve_adaptive_report(&pipe);
            adaptive_snap = snap;
            emit("serve_adaptive", body);
        }
        "cell" => {
            let study = stamp.expect("cell was planned");
            let cell = study.cell(bench_name, threads_a).expect("planned cell resolved");
            emit("cell", render_cell(&cfg, cell));
        }
        "stamp" | "quake" | "all" => {
            if let Some(stamp) = stamp {
                emit("table1", report::table1(&cfg, stamp));
                emit("table2", report::table2(&cfg));
                emit("table3", report::table3(&cfg, stamp));
                emit("table4", report::table4(&cfg, stamp));
                emit("fig3", report::fig3(&cfg, stamp));
                emit("fig4", report::fig_variance(threads_a, stamp, "Figure 4"));
                emit("fig5", report::fig_tails(threads_a, stamp, "Figure 5", 0));
                emit("fig6", report::fig_variance(threads_b, stamp, "Figure 6"));
                emit("fig7", report::fig_tails(threads_b, stamp, "Figure 7", threads_b / 2));
                emit("fig8", report::fig8(&cfg, stamp));
                emit("fig9", report::fig9(&cfg, stamp));
                emit("fig10", report::fig10(&cfg, stamp));
            }
            if let Some(quake) = quake {
                emit("table5", report::table5(&cfg, quake));
                emit("fig11", report::fig_quake(&cfg, quake, Quest::Quadrants4, "Figure 11"));
                emit("fig12", report::fig_quake(&cfg, quake, Quest::CenterSpread6, "Figure 12"));
            }
            if let Some(serve) = serve {
                emit("serve", gstm_experiments::servecmd::render_serve(&cfg, serve));
            }
        }
        "ablate-tfactor" => emit("ablate-tfactor", ablation::ablate_tfactor(&pipe, bench_name)),
        "ablate-k" => emit("ablate-k", ablation::ablate_k(&pipe, bench_name)),
        "ablate-cm" => emit("ablate-cm", ablation::ablate_cm(&pipe, bench_name)),
        "ablate-train" => emit("ablate-train", ablation::ablate_train(&pipe, bench_name)),
        "ablate-policy" => emit("ablate-policy", ablation::ablate_policy(&pipe, bench_name)),
        "ablate-detection" => {
            emit("ablate-detection", ablation::ablate_detection(&pipe, bench_name))
        }
        "train-model" => {
            // Artifact parity: the paper's `exec.sh ... mcmc_data` phase
            // produces a `state_data` model file; this saves our binary form.
            let threads = cfg.threads_list[0];
            progress.report(&format!("training {bench_name} at {threads} threads"));
            let trained = pipe.trained_stamp(bench_name, threads);
            let path = cfg.out_dir.join(format!("{bench_name}-{threads}t.gtsa"));
            gstm_model::serialize::save(&trained.tsa, &path).expect("save model");
            emit(
                "train-model",
                format!(
                    "saved {} ({} states, {} edges, {} bytes)\nanalysis: {}\n",
                    path.display(),
                    trained.tsa.state_count(),
                    trained.tsa.edge_count(),
                    std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
                    trained.analysis,
                ),
            );
        }
        "sites" => {
            // Per-site diagnostics: which atomic block drives the aborts.
            // Capturing runs bypass the cache by design, so this path calls
            // the harness directly.
            use gstm_core::{EventSink, SiteStatsSink};
            use gstm_guide::{run_workload, RunOptions};
            let threads = cfg.threads_list[0];
            let w = gstm_stamp::benchmark(bench_name, cfg.test_size).expect("known");
            let sink = SiteStatsSink::new();
            for &seed in &cfg.test_seeds {
                let out = run_workload(w.as_ref(), &RunOptions::new(threads, seed).capturing());
                for e in out.events.expect("captured") {
                    sink.record(&e);
                }
            }
            emit(
                "sites",
                format!(
                    "== Per-site statistics: {bench_name}, {threads} threads, {} seeds ==\n{}",
                    cfg.test_seeds.len(),
                    sink.report()
                ),
            );
        }
        "inspect-model" => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let tsa =
                gstm_model::serialize::load(std::path::Path::new(path)).expect("load model file");
            let analysis = gstm_model::analyze(&tsa, cfg.tfactor);
            let mut body = format!("{}\nanalysis: {analysis}\nhottest states:\n", path);
            let mut by_heat: Vec<_> = tsa
                .space()
                .iter()
                .map(|(id, st)| (tsa.out_edges(id).iter().map(|(_, c)| *c).sum::<u64>(), id, st))
                .collect();
            by_heat.sort_by_key(|entry| std::cmp::Reverse(entry.0));
            for (heat, id, st) in by_heat.iter().take(8) {
                body.push_str(&format!("  {id} {st} ({heat} observations)\n"));
            }
            emit("inspect-model", body);
        }
        _ => usage(),
    }

    if let Some(path) = &metrics_path {
        use gstm_experiments::study::{merge_run_telemetry, quake_runs, serve_runs, stamp_runs};
        use gstm_telemetry::Snapshot;
        let stamp_snap = stamp.and_then(|s| merge_run_telemetry(stamp_runs(s)));
        let quake_snap = quake.and_then(|q| merge_run_telemetry(quake_runs(q)));
        let serve_snap = serve.and_then(|s| merge_run_telemetry(serve_runs(s)));
        let mut merged: Option<Snapshot> = None;
        for snap in
            [stamp_snap, quake_snap, serve_snap, adaptive_snap.clone()].into_iter().flatten()
        {
            match &mut merged {
                Some(m) => m.merge(&snap),
                None => merged = Some(snap),
            }
        }
        if result.is_some() || adaptive_snap.is_some() {
            // The pipeline's cache gauges ride along with the run telemetry.
            merged.get_or_insert_with(Snapshot::new).merge(&pipe.gauges().snapshot());
        }
        match merged {
            Some(snap) => {
                let machine = path.with_extension(match path.extension() {
                    Some(e) => format!("{}.machine", e.to_string_lossy()),
                    None => "machine".to_string(),
                });
                let written = std::fs::write(path, snap.to_text())
                    .and_then(|()| std::fs::write(&machine, snap.to_machine()));
                if let Err(e) = written {
                    eprintln!("--metrics: cannot write {}: {e}", path.display());
                    std::process::exit(2);
                }
                eprintln!(
                    "wrote telemetry snapshot to {} and {}",
                    path.display(),
                    machine.display()
                );
            }
            None => {
                eprintln!("--metrics: command '{command}' ran no measured study; nothing written")
            }
        }
    }

    for (_, body) in &outputs {
        println!("{body}");
    }
    // serve-adaptive drives the pipeline directly rather than through the
    // study plan, so its cache traffic must be reported too.
    if result.is_some() || command == "serve-adaptive" {
        progress.report(&pipe.gauges().summary());
    }
    eprintln!(
        "[{:7.1}s] wrote {} result file(s) to {}",
        progress.elapsed_secs(),
        outputs.len(),
        cfg.out_dir.display()
    );
}
