//! The experiments CLI: regenerate any table or figure of the paper.
//!
//! ```text
//! cargo run -p gstm-experiments --release -- <command> [--fast] [--bench NAME] [--metrics PATH]
//!
//! commands:
//!   table1 table2 table3 table4 table5
//!   fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//!   stamp      (table1+3+4, fig3..10 from one shared study)
//!   quake      (table5, fig11, fig12)
//!   all        (everything above)
//!   ablate-tfactor | ablate-k | ablate-cm | ablate-train | ablate-policy | ablate-detection
//!   train-model --bench NAME   (profile + build + save results/NAME-<threads>t.gtsa)
//!   inspect-model FILE         (analyzer report + hottest states of a saved model)
//!   bench [--out PATH] [--preset tiny|default] [--smoke] [--baseline FILE]
//!         [--profile NAME]     (hot-path microbenchmarks -> BENCH_tl2_hotpath.json)
//!   bench-check FILE           (validate a BENCH_*.json artifact's shape)
//! ```
//!
//! `--metrics PATH` attaches telemetry to every measured run and writes the
//! merged snapshot as Prometheus-style text to PATH plus a compact machine
//! dump to PATH.machine (parse with `gstm_stats::telemetry_dump`).
//!
//! Output is printed and archived under `results/`.

use std::io::Write as _;

use gstm_experiments::ablation;
use gstm_experiments::config::ExpConfig;
use gstm_experiments::report;
use gstm_experiments::study::{run_quake_study, run_stamp_study};
use gstm_synquake::Quest;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <table1|table2|table3|table4|table5|fig3..fig12|stamp|quake|all|\
         train-model|inspect-model|sites|bench|bench-check|\
         ablate-tfactor|ablate-k|ablate-cm|ablate-train|ablate-policy|ablate-detection> \
         [--fast] [--bench NAME] [--metrics PATH]"
    );
    std::process::exit(2);
}

/// `bench`: run the hot-path suite and write the JSON artifact.
fn run_bench(args: &[String]) -> ! {
    let flag = |name: &str| -> Option<&String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1))
    };
    let out = flag("--out").map_or("BENCH_tl2_hotpath.json", String::as_str);
    let preset = flag("--preset").map_or("default", String::as_str);
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut cfg =
        gstm_experiments::bench::BenchConfig::for_preset(preset, smoke).unwrap_or_else(|e| {
            eprintln!("bench: {e}");
            std::process::exit(2);
        });
    if let Some(profile) = flag("--profile") {
        cfg.profile = profile.clone();
    }
    let baseline: Option<Vec<(String, f64)>> = flag("--baseline").map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench: cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        gstm_experiments::bench::parse_metrics(&text).unwrap_or_else(|e| {
            eprintln!("bench: bad baseline {path}: {e}");
            std::process::exit(2);
        })
    });
    let started = std::time::Instant::now();
    let mut progress = |msg: &str| {
        eprintln!("[{:7.1}s] {msg}", started.elapsed().as_secs_f64());
    };
    let metrics = gstm_experiments::bench::run_suite(&cfg, &mut progress);
    let text = gstm_experiments::bench::render_artifact(&cfg, &metrics, baseline.as_deref());
    std::fs::write(out, &text).unwrap_or_else(|e| {
        eprintln!("bench: cannot write {out}: {e}");
        std::process::exit(2);
    });
    eprintln!("[{:7.1}s] wrote {out}", started.elapsed().as_secs_f64());
    std::process::exit(0);
}

/// `bench-check`: validate an artifact's shape (never its numbers).
fn run_bench_check(args: &[String]) -> ! {
    let path = args.first().map_or("BENCH_tl2_hotpath.json", String::as_str);
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench-check: cannot read {path}: {e}");
        std::process::exit(1);
    });
    match gstm_experiments::bench::check_artifact(&text) {
        Ok(()) => {
            eprintln!("bench-check: {path} ok");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("bench-check: {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args[0].as_str();
    match command {
        // The bench paths never touch ExpConfig or the study machinery.
        "bench" => run_bench(&args[1..]),
        "bench-check" => run_bench_check(&args[1..]),
        _ => {}
    }
    let fast = args.iter().any(|a| a == "--fast");
    let bench_name: &'static str = args
        .iter()
        .position(|a| a == "--bench")
        .and_then(|i| args.get(i + 1))
        .map(|s| {
            gstm_stamp::BENCHMARK_NAMES.iter().copied().find(|n| *n == s.as_str()).unwrap_or_else(
                || {
                    eprintln!("unknown benchmark {s}; known: {:?}", gstm_stamp::BENCHMARK_NAMES);
                    std::process::exit(2);
                },
            )
        })
        .unwrap_or("kmeans");
    let metrics_path: Option<std::path::PathBuf> =
        args.iter().position(|a| a == "--metrics").map(|i| {
            args.get(i + 1)
                .filter(|p| !p.starts_with("--"))
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| {
                    eprintln!("--metrics requires a path argument");
                    std::process::exit(2);
                })
        });
    let mut cfg = if fast { ExpConfig::fast() } else { ExpConfig::full() };
    cfg.telemetry = metrics_path.is_some();
    std::fs::create_dir_all(&cfg.out_dir).expect("create results dir");

    let started = std::time::Instant::now();
    let mut progress = |msg: &str| {
        eprintln!("[{:7.1}s] {msg}", started.elapsed().as_secs_f64());
    };

    let mut outputs: Vec<(String, String)> = Vec::new();
    let needs_stamp = matches!(
        command,
        "table1"
            | "table3"
            | "table4"
            | "fig3"
            | "fig4"
            | "fig5"
            | "fig6"
            | "fig7"
            | "fig8"
            | "fig9"
            | "fig10"
            | "stamp"
            | "all"
    );
    let needs_quake = matches!(command, "table5" | "fig11" | "fig12" | "quake" | "all");

    let stamp = needs_stamp.then(|| {
        // table1/table3/fig3 only need training; everything else needs the
        // full study. Training dominates anyway, so share one full study.
        run_stamp_study(&cfg, &gstm_stamp::BENCHMARK_NAMES, &mut progress)
    });
    let quake = needs_quake.then(|| run_quake_study(&cfg, &mut progress));

    let threads_a = cfg.threads_list[0];
    let threads_b = *cfg.threads_list.last().expect("nonempty threads list");

    let out_dir = cfg.out_dir.clone();
    let mut emit = |id: &str, body: String| {
        // Flush incrementally so long sweeps leave results behind even if
        // interrupted.
        let path = out_dir.join(format!("{id}.txt"));
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = f.write_all(body.as_bytes());
        }
        outputs.push((id.to_string(), body));
    };
    match command {
        "table2" => emit("table2", report::table2(&cfg)),
        "table1" => emit("table1", report::table1(&cfg, stamp.as_ref().unwrap())),
        "table3" => emit("table3", report::table3(&cfg, stamp.as_ref().unwrap())),
        "table4" => emit("table4", report::table4(&cfg, stamp.as_ref().unwrap())),
        "fig3" => emit("fig3", report::fig3(&cfg, stamp.as_ref().unwrap())),
        "fig4" => {
            emit("fig4", report::fig_variance(threads_a, stamp.as_ref().unwrap(), "Figure 4"))
        }
        "fig6" => {
            emit("fig6", report::fig_variance(threads_b, stamp.as_ref().unwrap(), "Figure 6"))
        }
        "fig5" => {
            emit("fig5", report::fig_tails(threads_a, stamp.as_ref().unwrap(), "Figure 5", 0))
        }
        "fig7" => emit(
            "fig7",
            report::fig_tails(threads_b, stamp.as_ref().unwrap(), "Figure 7", threads_b / 2),
        ),
        "fig8" => emit("fig8", report::fig8(&cfg, stamp.as_ref().unwrap())),
        "fig9" => emit("fig9", report::fig9(&cfg, stamp.as_ref().unwrap())),
        "fig10" => emit("fig10", report::fig10(&cfg, stamp.as_ref().unwrap())),
        "table5" => emit("table5", report::table5(&cfg, quake.as_ref().unwrap())),
        "fig11" => emit(
            "fig11",
            report::fig_quake(&cfg, quake.as_ref().unwrap(), Quest::Quadrants4, "Figure 11"),
        ),
        "fig12" => emit(
            "fig12",
            report::fig_quake(&cfg, quake.as_ref().unwrap(), Quest::CenterSpread6, "Figure 12"),
        ),
        "stamp" | "quake" | "all" => {
            if let Some(stamp) = &stamp {
                emit("table1", report::table1(&cfg, stamp));
                emit("table2", report::table2(&cfg));
                emit("table3", report::table3(&cfg, stamp));
                emit("table4", report::table4(&cfg, stamp));
                emit("fig3", report::fig3(&cfg, stamp));
                emit("fig4", report::fig_variance(threads_a, stamp, "Figure 4"));
                emit("fig5", report::fig_tails(threads_a, stamp, "Figure 5", 0));
                emit("fig6", report::fig_variance(threads_b, stamp, "Figure 6"));
                emit("fig7", report::fig_tails(threads_b, stamp, "Figure 7", threads_b / 2));
                emit("fig8", report::fig8(&cfg, stamp));
                emit("fig9", report::fig9(&cfg, stamp));
                emit("fig10", report::fig10(&cfg, stamp));
            }
            if let Some(quake) = &quake {
                emit("table5", report::table5(&cfg, quake));
                emit("fig11", report::fig_quake(&cfg, quake, Quest::Quadrants4, "Figure 11"));
                emit("fig12", report::fig_quake(&cfg, quake, Quest::CenterSpread6, "Figure 12"));
            }
        }
        "ablate-tfactor" => {
            emit("ablate-tfactor", ablation::ablate_tfactor(&cfg, bench_name, &mut progress))
        }
        "ablate-k" => emit("ablate-k", ablation::ablate_k(&cfg, bench_name, &mut progress)),
        "ablate-cm" => emit("ablate-cm", ablation::ablate_cm(&cfg, bench_name, &mut progress)),
        "ablate-train" => {
            emit("ablate-train", ablation::ablate_train(&cfg, bench_name, &mut progress))
        }
        "ablate-policy" => {
            emit("ablate-policy", ablation::ablate_policy(&cfg, bench_name, &mut progress))
        }
        "ablate-detection" => {
            emit("ablate-detection", ablation::ablate_detection(&cfg, bench_name, &mut progress))
        }
        "train-model" => {
            // Artifact parity: the paper's `exec.sh ... mcmc_data` phase
            // produces a `state_data` model file; this saves our binary form.
            let threads = cfg.threads_list[0];
            progress(&format!("training {bench_name} at {threads} threads"));
            let trained = gstm_experiments::study::train_stamp(&cfg, bench_name, threads);
            let path = cfg.out_dir.join(format!("{bench_name}-{threads}t.gtsa"));
            gstm_model::serialize::save(&trained.tsa, &path).expect("save model");
            emit(
                "train-model",
                format!(
                    "saved {} ({} states, {} edges, {} bytes)\nanalysis: {}\n",
                    path.display(),
                    trained.tsa.state_count(),
                    trained.tsa.edge_count(),
                    std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
                    trained.analysis,
                ),
            );
        }
        "sites" => {
            // Per-site diagnostics: which atomic block drives the aborts.
            use gstm_core::{EventSink, SiteStatsSink};
            use gstm_guide::{run_workload, RunOptions};
            let threads = cfg.threads_list[0];
            let w = gstm_stamp::benchmark(bench_name, cfg.test_size).expect("known");
            let sink = SiteStatsSink::new();
            for &seed in &cfg.test_seeds {
                let out = run_workload(w.as_ref(), &RunOptions::new(threads, seed).capturing());
                for e in out.events.expect("captured") {
                    sink.record(&e);
                }
            }
            emit(
                "sites",
                format!(
                    "== Per-site statistics: {bench_name}, {threads} threads, {} seeds ==\n{}",
                    cfg.test_seeds.len(),
                    sink.report()
                ),
            );
        }
        "inspect-model" => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let tsa =
                gstm_model::serialize::load(std::path::Path::new(path)).expect("load model file");
            let analysis = gstm_model::analyze(&tsa, cfg.tfactor);
            let mut body = format!("{}\nanalysis: {analysis}\nhottest states:\n", path);
            let mut by_heat: Vec<_> = tsa
                .space()
                .iter()
                .map(|(id, st)| (tsa.out_edges(id).iter().map(|(_, c)| *c).sum::<u64>(), id, st))
                .collect();
            by_heat.sort_by_key(|entry| std::cmp::Reverse(entry.0));
            for (heat, id, st) in by_heat.iter().take(8) {
                body.push_str(&format!("  {id} {st} ({heat} observations)\n"));
            }
            emit("inspect-model", body);
        }
        _ => usage(),
    }

    if let Some(path) = &metrics_path {
        use gstm_experiments::study::{merge_run_telemetry, quake_runs, stamp_runs};
        let stamp_snap = stamp.as_ref().and_then(|s| merge_run_telemetry(stamp_runs(s)));
        let quake_snap = quake.as_ref().and_then(|q| merge_run_telemetry(quake_runs(q)));
        let merged = match (stamp_snap, quake_snap) {
            (Some(mut a), Some(b)) => {
                a.merge(&b);
                Some(a)
            }
            (a, b) => a.or(b),
        };
        match merged {
            Some(snap) => {
                let machine = path.with_extension(match path.extension() {
                    Some(e) => format!("{}.machine", e.to_string_lossy()),
                    None => "machine".to_string(),
                });
                let written = std::fs::write(path, snap.to_text())
                    .and_then(|()| std::fs::write(&machine, snap.to_machine()));
                if let Err(e) = written {
                    eprintln!("--metrics: cannot write {}: {e}", path.display());
                    std::process::exit(2);
                }
                eprintln!(
                    "wrote telemetry snapshot to {} and {}",
                    path.display(),
                    machine.display()
                );
            }
            None => {
                eprintln!("--metrics: command '{command}' ran no measured study; nothing written")
            }
        }
    }

    for (_, body) in &outputs {
        println!("{body}");
    }
    eprintln!(
        "[{:7.1}s] wrote {} result file(s) to {}",
        started.elapsed().as_secs_f64(),
        outputs.len(),
        cfg.out_dir.display()
    );
}
