//! The `experiments recover` subcommand: a kill-and-recover matrix over
//! the WAL's structural crash points, the serve storage backends, and the
//! contention managers.
//!
//! Each cell runs the open-loop store service on the deterministic
//! simulator with a [`ChaosGate`] injecting delays, forced aborts and —
//! for the crash cells — a seeded kill request at one structural
//! [`KillPoint`] (mid-batch, mid-snapshot, post-truncate). After the run
//! drains, the cell reads the surviving disk image, rebuilds a store with
//! [`gstm_serve::recover_store`], and checks:
//!
//! * **state** — the recovered store's digest equals a serial replay of
//!   the run's ground-truth commit ledger up to the recovered watermark,
//!   and transfers still conserve the balance total;
//! * **history** — [`gstm_check::check_recovery`] certifies the event
//!   history (opacity, dense commit seqs, watermark within the run);
//! * **injection** — crash cells saw exactly one accepted kill request,
//!   the WAL actually died at its point, and the crash lost commits (the
//!   matrix as a whole must lose commits somewhere, or the kill schedule
//!   was vacuous).
//!
//! Ephemeral cells are the contrast rows: a crash loses the whole store,
//! so their "recovery" restarts from the initial state and every served
//! request counts as lost. A final negative row flips one byte inside a
//! flushed frame and requires recovery to reject the log by checksum.
//!
//! Cells are rendered to deterministic text and cached through the
//! pipeline's content-addressed text cache, so warm reruns are
//! byte-identical and count as run-cache hits.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use gstm_check::check_recovery;
use gstm_core::cm::{Aggressive, ContentionManager, Greedy, Karma, Polite};
use gstm_core::{
    AdmitAll, Gate, KillPoint, KillSwitch, MemorySink, Stm, StmConfig, ThreadId, VarIdDomain,
};
use gstm_serve::{
    generate_schedule, recover_store, serve_schedule, store_digest, Arrival, BackendKind,
    DurableBackend, EphemeralBackend, GateClock, Materializer, Request, ServeSpec, ShardedStore,
    StoreBackend, ThreadLog, TrafficSpec,
};
use gstm_sim::{ChaosConfig, ChaosGate, SimConfig, SimMachine};
use gstm_wal::{LogDevice, MemDevice, Wal, WalConfig, WalError};

use crate::pipeline::Pipeline;
use crate::progress::Progress;

/// Group-commit batch size used by every durable cell — small enough that
/// a mid-batch tear is reachable within a tiny run.
const WAL_BATCH: usize = 4;
/// Snapshot advice interval for every durable cell — small enough that
/// snapshot-phase crash points are crossed several times per run.
const WAL_SNAPSHOT_EVERY: u64 = 24;
/// Per-mille chance that a gate crossing requests the cell's crash. Low
/// enough that the kill lands well into the run (after snapshots have
/// installed), high enough that every cell still crashes.
const KILL_PERMILLE: u32 = 2;

/// Knobs of one recovery-matrix invocation.
#[derive(Clone, Copy, Debug)]
pub struct RecoverOptions {
    /// Simulated worker threads per run.
    pub threads: usize,
    /// Requests each worker's schedule offers.
    pub requests_per_thread: usize,
    /// Seeds per cell (each seed is one full crash-and-recover run).
    pub seeds_per_cell: usize,
    /// Base seed; cell runs use `seed..seed + seeds_per_cell`.
    pub seed: u64,
    /// Restrict the contention-manager axis to two entries (CI smoke).
    pub tiny: bool,
}

impl RecoverOptions {
    /// Defaults: 3 threads, 120 requests each, 3 seeds per cell.
    pub fn new(seed: u64) -> Self {
        RecoverOptions {
            threads: 3,
            requests_per_thread: 120,
            seeds_per_cell: 3,
            seed,
            tiny: false,
        }
    }

    /// The CI smoke preset: 2 threads, 80 requests, two contention
    /// managers — still covering every crash point on both backends.
    pub fn tiny(seed: u64) -> Self {
        RecoverOptions { threads: 2, requests_per_thread: 80, seeds_per_cell: 3, seed, tiny: true }
    }

    /// The serve spec every cell runs: the contended "hot" shape, loaded
    /// enough that a crash interrupts live traffic.
    fn spec(&self, backend: BackendKind) -> ServeSpec {
        ServeSpec::hot(self.requests_per_thread)
            .with_arrival(Arrival::Poisson { mean_gap: 120.0 })
            .with_backend(backend)
    }
}

/// One cell of the matrix.
#[derive(Clone, Copy, Debug)]
struct CellSpec {
    /// Structural crash point, or `None` for a crash-free control run.
    point: Option<KillPoint>,
    backend: BackendKind,
    cm: &'static str,
}

impl CellSpec {
    fn label(&self) -> String {
        let p = self.point.map_or("none", |point| point.label());
        format!("{p}/{}/{}", self.backend.label(), self.cm)
    }

    fn build_cm(&self, threads: usize) -> Arc<dyn ContentionManager> {
        match self.cm {
            "polite" => Arc::new(Polite::default()),
            "karma" => Arc::new(Karma::new(threads, 8)),
            "greedy" => Arc::new(Greedy::new(threads, 8)),
            _ => Arc::new(Aggressive),
        }
    }
}

fn matrix(tiny: bool) -> Vec<CellSpec> {
    let cms: &[&'static str] =
        if tiny { &["aggressive", "karma"] } else { &["aggressive", "polite", "karma", "greedy"] };
    let points = [
        None,
        Some(KillPoint::MidBatch),
        Some(KillPoint::MidSnapshot),
        Some(KillPoint::PostTruncate),
    ];
    let mut cells = Vec::new();
    for point in points {
        for backend in [BackendKind::Durable, BackendKind::Ephemeral] {
            for &cm in cms {
                cells.push(CellSpec { point, backend, cm });
            }
        }
    }
    cells
}

/// Extracts a `key=value` token from a report line.
fn token(line: &str, key: &str) -> Option<u64> {
    line.split_whitespace().find_map(|w| w.strip_prefix(key).and_then(|v| v.parse().ok()))
}

/// One crash-and-recover run: serve under chaos, read the surviving disk,
/// recover, and judge. Returns the `seed N: ...` report line (multi-line
/// when problems were found; any problem renders as `FAIL`).
fn run_seed(cell: CellSpec, opts: &RecoverOptions, run_seed: u64) -> String {
    let threads = opts.threads;
    let spec = opts.spec(cell.backend);

    // Fresh id domain per run: reproducible stripes whatever ran before.
    let domain = VarIdDomain::new();
    let guard = domain.install();
    let kill = Arc::new(KillSwitch::new());
    let log_dev = Arc::new(MemDevice::new());
    let snap_dev = Arc::new(MemDevice::new());
    let (backend, durable): (Arc<dyn StoreBackend>, Option<Arc<DurableBackend>>) =
        match cell.backend {
            BackendKind::Durable => {
                let store = ShardedStore::new(spec.shards, spec.buckets_per_shard, spec.keys);
                let cfg = WalConfig::new()
                    .with_batch_records(WAL_BATCH)
                    .with_snapshot_every(WAL_SNAPSHOT_EVERY);
                let wal = Wal::new(
                    cfg,
                    Arc::clone(&log_dev) as Arc<dyn LogDevice>,
                    Arc::clone(&snap_dev) as Arc<dyn LogDevice>,
                )
                .with_kill(Arc::clone(&kill));
                let d = Arc::new(DurableBackend::new(store, wal));
                (Arc::clone(&d) as Arc<dyn StoreBackend>, Some(d))
            }
            BackendKind::Ephemeral => {
                let store = ShardedStore::new(spec.shards, spec.buckets_per_shard, spec.keys);
                (Arc::new(EphemeralBackend::new(store)), None)
            }
        };
    drop(guard);

    // The chaos stream derives from the run seed and the cell's label, so
    // every cell perturbs (and crashes) differently under one base seed.
    let cell_seed = run_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(cell.label().bytes().map(u64::from).sum::<u64>());
    let machine = SimMachine::new(SimConfig::new(threads, run_seed));
    let mut chaos_cfg = ChaosConfig::new(cell_seed);
    if let Some(point) = cell.point {
        chaos_cfg = chaos_cfg.with_kill(point, KILL_PERMILLE);
    }
    let chaos = Arc::new(ChaosGate::new(chaos_cfg, machine.gate(), threads));
    let sink = Arc::new(MemorySink::new());
    let stm = Arc::new(Stm::with_parts(
        StmConfig::builder(threads).check_events(true).build(),
        Arc::clone(&chaos) as Arc<dyn Gate>,
        Arc::clone(&sink) as Arc<dyn gstm_core::EventSink>,
        Arc::new(AdmitAll),
        cell.build_cm(threads),
    ));
    chaos.arm(stm.doom_handle());
    chaos.arm_kill(Arc::clone(&kill));

    let traffic = TrafficSpec {
        keys: spec.keys,
        zipf_theta: spec.zipf_theta,
        arrival: spec.arrival,
        requests_per_thread: spec.requests_per_thread,
        mix: spec.mix,
        scan_len: spec.scan_len,
        drift: spec.drift,
    };
    let schedules: Vec<_> =
        (0..threads).map(|t| generate_schedule(&traffic, run_seed, t)).collect();
    let logs: Vec<ThreadLog> = (0..threads).map(|_| ThreadLog::default()).collect();
    let workers: Vec<Box<dyn FnOnce() + Send + '_>> = (0..threads)
        .map(|t| {
            let stm = Arc::clone(&stm);
            let backend = Arc::clone(&backend);
            let schedule = &schedules[t];
            let log = &logs[t];
            let spec = &spec;
            Box::new(move || {
                let clock = GateClock::new(Arc::clone(stm.gate()));
                serve_schedule(
                    &stm,
                    ThreadId::new(t as u16),
                    backend.as_ref(),
                    schedule,
                    &clock,
                    spec,
                    log,
                );
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    machine.run(workers);

    let events = sink.take();
    let stats = chaos.stats();
    let done: u64 = logs.iter().map(|l| l.done.load(Ordering::Relaxed)).sum();
    let shed: u64 = logs.iter().map(|l| l.shed.load(Ordering::Relaxed)).sum();

    let mut problems: Vec<String> = Vec::new();
    if done == 0 {
        problems.push("no requests served: the cell is vacuous".to_string());
    }
    if let Some(point) = cell.point {
        if stats.kills != 1 {
            problems.push(format!(
                "expected exactly one accepted kill request at {}, saw {}",
                point.label(),
                stats.kills
            ));
        }
    }

    let detail = match &durable {
        Some(d) => {
            let ledger = d.ledger();
            match recover_store(
                spec.shards,
                spec.buckets_per_shard,
                spec.keys,
                &log_dev.contents(),
                &snap_dev.contents(),
            ) {
                Ok(rec) => {
                    // Expected state: the ground-truth ledger replayed
                    // serially up to the recovered watermark.
                    let mut expected = Materializer::initial(spec.keys);
                    let mut lost = 0u64;
                    for (seq, req) in &ledger {
                        if *seq <= rec.recovered_seq {
                            expected.apply(req);
                        } else {
                            lost += 1;
                        }
                    }
                    if store_digest(&rec.store) != expected.digest() {
                        problems.push("recovered store digest != serial-replay digest".to_string());
                    }
                    let total = rec.store.total_balance_unlogged();
                    if total != rec.store.expected_total() {
                        problems.push(format!(
                            "recovered balance total {total} != {}: atomicity broken",
                            rec.store.expected_total()
                        ));
                    }
                    let report = check_recovery(&events, rec.recovered_seq);
                    if !report.ok() {
                        problems.push(format!("oracle: {}", report.summary()));
                        for v in report.violations.iter().take(5) {
                            problems.push(format!("  {v}"));
                        }
                    }
                    if report.is_vacuous() {
                        problems.push("vacuous recovery history".to_string());
                    }
                    match cell.point {
                        None => {
                            if lost != 0 {
                                problems.push(format!("{lost} commits lost without a crash"));
                            }
                        }
                        Some(point) => {
                            if !d.wal().is_dead() {
                                problems.push(format!(
                                    "the {} crash was requested but the WAL never died",
                                    point.label()
                                ));
                            }
                            if lost == 0 {
                                problems.push(
                                    "crash lost no commits: the kill was vacuous".to_string(),
                                );
                            }
                        }
                    }
                    format!(
                        "recovered_seq={} base={} torn={} lost={lost} kills={} dooms={} \
                         served={done} shed={shed} snapshots={}",
                        rec.recovered_seq,
                        rec.info.base_seq,
                        u8::from(rec.info.torn),
                        stats.kills,
                        stats.dooms,
                        d.wal().stats().snapshots,
                    )
                }
                Err(e) => {
                    problems.push(format!("recovery failed: {e}"));
                    format!("lost={done} kills={} served={done} shed={shed}", stats.kills)
                }
            }
        }
        None => {
            // Ephemeral contrast row: a crash loses the in-memory store
            // outright, so recovery restarts from the initial state and
            // everything served is lost. Without a crash nothing is lost.
            let lost = if cell.point.is_some() { done } else { 0 };
            let report = check_recovery(&events, 0);
            if !report.ok() {
                problems.push(format!("oracle: {}", report.summary()));
            }
            if report.is_vacuous() {
                problems.push("vacuous recovery history".to_string());
            }
            format!(
                "recovered_seq=0 base=0 torn=0 lost={lost} kills={} dooms={} \
                 served={done} shed={shed} snapshots=0",
                stats.kills, stats.dooms,
            )
        }
    };

    let verdict = if problems.is_empty() { "ok" } else { "FAIL" };
    let mut line = format!("seed {run_seed}: {verdict} {detail}");
    for p in problems {
        line.push_str("\n    ");
        line.push_str(&p);
    }
    line
}

/// Runs (or loads from the text cache) one cell: its header plus one
/// report line per seed.
fn run_cell(cell: CellSpec, opts: &RecoverOptions, pipe: &Pipeline<'_>) -> String {
    let key = format!(
        "recover-v1;{};{};threads={};seeds={}+{};wal=b{WAL_BATCH}s{WAL_SNAPSHOT_EVERY}k{KILL_PERMILLE}",
        cell.label(),
        opts.spec(cell.backend).cache_key(),
        opts.threads,
        opts.seed,
        opts.seeds_per_cell,
    );
    pipe.cached_text(&key, || {
        let mut body = format!("-- {} --\n", cell.label());
        for i in 0..opts.seeds_per_cell {
            body.push_str(&run_seed(cell, opts, opts.seed + i as u64));
            body.push('\n');
        }
        body
    })
}

/// The negative control: flip one byte inside a flushed frame and require
/// recovery to reject the log with a checksum error rather than replay it.
fn corrupt_tail_is_rejected() -> bool {
    let domain = VarIdDomain::new();
    let guard = domain.install();
    let store = ShardedStore::new(2, 2, 8);
    drop(guard);
    let (backend, log, snap) =
        DurableBackend::in_memory(store, WalConfig::new().with_batch_records(2));
    for seq in 1..=6u64 {
        backend.on_commit(seq, &Request::Transfer { from: seq % 8, to: (seq + 1) % 8, amount: 5 });
    }
    backend.flush();
    let mut bytes = log.contents();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40; // inside the final flushed frame's checksum
    matches!(recover_store(2, 2, 8, &bytes, &snap.contents()), Err(WalError::CorruptFrame { .. }))
}

/// Runs the whole kill-and-recover matrix, fanning cells out over the
/// pipeline's worker pool (and through its text cache). Returns the
/// rendered report and whether every cell — plus the corrupt-tail negative
/// row and the matrix-level loss guard — passed.
pub fn run_matrix(
    opts: &RecoverOptions,
    pipe: &Pipeline<'_>,
    progress: &dyn Progress,
) -> (String, bool) {
    let cells = matrix(opts.tiny);
    progress.report(&format!(
        "recovery matrix: {} cells x {} seeds, {} threads x {} requests, seed {}",
        cells.len(),
        opts.seeds_per_cell,
        opts.threads,
        opts.requests_per_thread,
        opts.seed
    ));
    let bodies = pipe.run_indexed(cells.len(), |i| run_cell(cells[i], opts, pipe));
    let mut out = format!(
        "== Kill-and-recover matrix: crash point x backend x CM (seed {}, {} threads, \
         {} requests/thread, {} seeds/cell) ==\n",
        opts.seed, opts.threads, opts.requests_per_thread, opts.seeds_per_cell
    );
    let mut failed = 0usize;
    let mut lost_total = 0u64;
    let mut kills_total = 0u64;
    for body in &bodies {
        out.push_str(body);
        if body.contains("FAIL") {
            failed += 1;
        }
        for line in body.lines() {
            lost_total += token(line, "lost=").unwrap_or(0);
            kills_total += token(line, "kills=").unwrap_or(0);
        }
    }
    let corrupt_ok = corrupt_tail_is_rejected();
    out.push_str("-- corrupt-tail --\n");
    out.push_str(if corrupt_ok {
        "ok: flipped byte inside a flushed frame rejected by checksum\n"
    } else {
        "FAIL: corrupted log tail was replayed without a checksum error\n"
    });
    // The matrix must actually lose commits somewhere, or kill injection
    // never bit and the recovery claims were tested against nothing.
    let losses_ok = lost_total > 0;
    if !losses_ok {
        out.push_str("FAIL: no cell lost any commits — the kill schedule was vacuous\n");
    }
    let ok = failed == 0 && corrupt_ok && losses_ok;
    out.push_str(&format!(
        "{} cells, {} failed, {} commits lost to crashes, {} kill requests: {}\n",
        cells.len(),
        failed,
        lost_total,
        kills_total,
        if ok { "every recovery matched the serial history" } else { "VIOLATIONS FOUND" }
    ));
    (out, ok)
}
