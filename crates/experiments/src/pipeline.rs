//! The experiment pipeline: declarative study plans, a content-addressed
//! cache, and a bounded worker pool.
//!
//! A [`StudyPlan`] *declares* what to measure — (benchmark, threads) cells
//! for STAMP and thread counts for SynQuake — and [`Pipeline::resolve`]
//! produces the same [`StampStudy`]/[`QuakeStudy`] values the old ad-hoc
//! runners built, with three properties they lacked:
//!
//! 1. **Sharing** — trained models are memoized in-process and persisted in
//!    the content-addressed [`DiskCache`], so `table1`, `table3`, `fig4`
//!    and the ablations share one training pass per (benchmark, threads).
//! 2. **Warm reruns** — measured [`RunOutcome`]s are cached under a digest
//!    of the *full* cell configuration; a rerun with an unchanged config
//!    skips straight to report rendering, byte-identically.
//! 3. **Parallelism** — independent cells and seeds fan out across OS
//!    threads ([`Pipeline::with_jobs`]); results are collected by index, so
//!    output is byte-identical to a sequential run.
//!
//! Correctness of (2) and (3) rests on `gstm_core::VarIdDomain`: every run
//! allocates its `TVar` ids in a fresh per-run namespace, making each
//! outcome a pure function of its key, whatever else the process ran
//! before or concurrently.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use gstm_guide::{PolicyChoice, RunOptions, RunOutcome, TrainedModel, Workload, DEFAULT_K};
use gstm_model::serialize::tsa_digest;
use gstm_model::{analyze, GuidedModel};
use gstm_stamp::benchmark;
use gstm_synquake::{Quest, SynQuake};
use gstm_telemetry::PipelineGauges;

use crate::cache::DiskCache;
use crate::config::ExpConfig;
use crate::progress::Progress;
use crate::servecmd::{serve_spec, SERVE_ARRIVALS, SERVE_SHAPES};
use crate::study::{
    train_quake, train_serve, train_stamp, QuakeCell, QuakeStudy, ServeCell, ServeStudy, StampCell,
    StampStudy,
};

/// A declarative description of which study cells to measure.
#[derive(Clone, Debug, Default)]
pub struct StudyPlan {
    stamp: Vec<(&'static str, usize)>,
    quake: Vec<usize>,
    serve: Vec<(&'static str, &'static str, usize)>,
}

impl StudyPlan {
    /// An empty plan.
    pub fn new() -> Self {
        StudyPlan::default()
    }

    /// Adds one STAMP (benchmark, threads) cell; duplicates are ignored.
    pub fn stamp_cell(&mut self, name: &'static str, threads: usize) -> &mut Self {
        if !self.stamp.contains(&(name, threads)) {
            self.stamp.push((name, threads));
        }
        self
    }

    /// Adds the full STAMP study: every benchmark in `names` at every
    /// configured thread count.
    pub fn stamp_study(&mut self, cfg: &ExpConfig, names: &[&'static str]) -> &mut Self {
        for &name in names {
            for &threads in &cfg.threads_list {
                self.stamp_cell(name, threads);
            }
        }
        self
    }

    /// Adds the SynQuake cells (both test quests) at one thread count;
    /// duplicates are ignored.
    pub fn quake(&mut self, threads: usize) -> &mut Self {
        if !self.quake.contains(&threads) {
            self.quake.push(threads);
        }
        self
    }

    /// Adds the full SynQuake study at every configured thread count.
    pub fn quake_study(&mut self, cfg: &ExpConfig) -> &mut Self {
        for &threads in &cfg.threads_list {
            self.quake(threads);
        }
        self
    }

    /// Adds one serve (shape, arrival, threads) cell; duplicates are
    /// ignored.
    pub fn serve_cell(
        &mut self,
        shape: &'static str,
        arrival: &'static str,
        threads: usize,
    ) -> &mut Self {
        if !self.serve.contains(&(shape, arrival, threads)) {
            self.serve.push((shape, arrival, threads));
        }
        self
    }

    /// Adds the full serve study: every shape × arrival at every configured
    /// thread count.
    pub fn serve_study(&mut self, cfg: &ExpConfig) -> &mut Self {
        for shape in SERVE_SHAPES {
            for arrival in SERVE_ARRIVALS {
                for &threads in &cfg.threads_list {
                    self.serve_cell(shape, arrival, threads);
                }
            }
        }
        self
    }

    /// The planned STAMP cells, in insertion order.
    pub fn stamp_cells(&self) -> &[(&'static str, usize)] {
        &self.stamp
    }

    /// The planned serve cells, in insertion order.
    pub fn serve_cells(&self) -> &[(&'static str, &'static str, usize)] {
        &self.serve
    }

    /// The planned SynQuake thread counts, in insertion order.
    pub fn quake_threads(&self) -> &[usize] {
        &self.quake
    }

    /// Whether the plan declares nothing.
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty() && self.quake.is_empty() && self.serve.is_empty()
    }
}

/// What [`Pipeline::resolve`] produces: both study halves, either possibly
/// empty depending on the plan.
#[derive(Debug, Default)]
pub struct StudyResult {
    /// The STAMP half (empty if the plan declared no stamp cells).
    pub stamp: StampStudy,
    /// The SynQuake half (empty if the plan declared no quake cells).
    pub quake: QuakeStudy,
    /// The serve (tail-latency) study (empty if no serve cells).
    pub serve: ServeStudy,
}

/// Canonical policy tag of an unguided (default-STM) run.
pub const TAG_DEFAULT: &str = "policy=default";

/// Canonical policy tag of a guided run: embeds the hold bound, the digest
/// of the automaton the run is guided by, and the `Tfactor` the runtime
/// model was compiled with (the same automaton compiles to different
/// policies under different Tfactors), so a changed model can never
/// satisfy a stale cached outcome.
pub fn guided_tag(trained: &TrainedModel, k: u32, tfactor: f64) -> String {
    format!("policy=guided;k={k};tfactor={tfactor};model={}", tsa_digest(&trained.tsa))
}

/// Resolves [`StudyPlan`]s through the cache and the worker pool.
pub struct Pipeline<'a> {
    cfg: &'a ExpConfig,
    progress: &'a dyn Progress,
    cache: Option<DiskCache>,
    jobs: usize,
    gauges: PipelineGauges,
    pool_busy: AtomicBool,
    models: Mutex<std::collections::BTreeMap<String, TrainedModel>>,
}

impl std::fmt::Debug for Pipeline<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("jobs", &self.jobs)
            .field("cache", &self.cache)
            .finish_non_exhaustive()
    }
}

impl<'a> Pipeline<'a> {
    /// A sequential, cacheless pipeline over `cfg`.
    pub fn new(cfg: &'a ExpConfig, progress: &'a dyn Progress) -> Self {
        Pipeline {
            cfg,
            progress,
            cache: None,
            jobs: 1,
            gauges: PipelineGauges::new(),
            pool_busy: AtomicBool::new(false),
            models: Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// Attaches a content-addressed disk cache.
    pub fn with_cache(mut self, cache: DiskCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets the worker-pool width (clamped to at least 1 = sequential).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The sweep configuration this pipeline resolves against.
    pub fn cfg(&self) -> &ExpConfig {
        self.cfg
    }

    /// The progress sink.
    pub fn progress(&self) -> &dyn Progress {
        self.progress
    }

    /// Cache-effectiveness and wall-clock gauges.
    pub fn gauges(&self) -> &PipelineGauges {
        &self.gauges
    }

    /// Runs `f(0..n)` and collects the results **by index** — the output
    /// is identical whatever the pool width. With `jobs > 1` the indexes
    /// fan out over a bounded pool of OS threads; nested calls (a cell
    /// fanning out its seeds while cells themselves are fanned out) detect
    /// the busy pool and run sequentially, bounding total threads to
    /// `jobs`.
    pub fn run_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.jobs.min(n);
        if workers <= 1 || self.pool_busy.swap(true, Ordering::Acquire) {
            return (0..n).map(f).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(i);
                    *slots[i].lock().expect("result slot") = Some(value);
                });
            }
        });
        self.pool_busy.store(false, Ordering::Release);
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("slot lock").expect("every index was produced"))
            .collect()
    }

    /// Resolves a model key: in-process memo, then disk cache, then the
    /// supplied training closure (timed and counted as a miss).
    fn resolve_model(
        &self,
        key: &str,
        tfactor: f64,
        what: &str,
        train: impl FnOnce() -> TrainedModel,
    ) -> TrainedModel {
        if let Some(m) = self.models.lock().expect("model memo").get(key) {
            PipelineGauges::add(&self.gauges.model_hits, 1);
            return m.clone();
        }
        if let Some(cache) = &self.cache {
            if let Some(tsa) = cache.load_model(key) {
                PipelineGauges::add(&self.gauges.model_hits, 1);
                self.progress.report(&format!("{what}: model cache hit"));
                // Analysis and compilation are deterministic functions of
                // (tsa, tfactor), so a cached automaton reconstructs the
                // exact TrainedModel the training pass produced.
                let analysis = analyze(&tsa, tfactor);
                let model = Arc::new(GuidedModel::compile(tsa.clone(), tfactor));
                let trained = TrainedModel { tsa, analysis, model };
                self.models.lock().expect("model memo").insert(key.to_string(), trained.clone());
                return trained;
            }
        }
        PipelineGauges::add(&self.gauges.model_misses, 1);
        let t0 = Instant::now();
        let trained = train();
        PipelineGauges::add(&self.gauges.train_wall_ms, t0.elapsed().as_millis() as u64);
        if let Some(cache) = &self.cache {
            cache.store_model(key, &trained.tsa);
        }
        self.models.lock().expect("model memo").insert(key.to_string(), trained.clone());
        trained
    }

    /// The trained STAMP model for one (benchmark, threads), shared across
    /// every table/figure/ablation that needs it.
    pub fn trained_stamp(&self, name: &'static str, threads: usize) -> TrainedModel {
        self.trained_stamp_with(self.cfg, name, threads)
    }

    /// Like [`Pipeline::trained_stamp`] but against a modified sweep
    /// config (the Tfactor and training-size ablations).
    pub fn trained_stamp_with(
        &self,
        cfg: &ExpConfig,
        name: &'static str,
        threads: usize,
    ) -> TrainedModel {
        let key = format!(
            "model-v1;stamp:{name};train={};threads={threads};tfactor={};seeds={:?}",
            cfg.train_size, cfg.tfactor, cfg.train_seeds
        );
        self.resolve_model(&key, cfg.tfactor, &format!("{name}/{threads}t"), || {
            train_stamp(cfg, name, threads)
        })
    }

    /// The trained SynQuake model for one thread count (pooled over the
    /// paper's two training quests).
    pub fn trained_quake(&self, threads: usize) -> TrainedModel {
        let cfg = self.cfg;
        let key = format!(
            "model-v1;synquake;players={};frames={};threads={threads};tfactor={};seeds={:?}",
            cfg.synquake_players, cfg.synquake_frames.0, cfg.tfactor, cfg.train_seeds
        );
        self.resolve_model(&key, cfg.tfactor, &format!("synquake/{threads}t"), || {
            train_quake(cfg, threads)
        })
    }

    /// The trained serve model for one (spec, threads). The key embeds the
    /// spec's full cache key, so any change to the store shape or traffic
    /// retrains instead of reusing a stale automaton.
    pub fn trained_serve(
        &self,
        what: &str,
        spec: &gstm_serve::ServeSpec,
        threads: usize,
    ) -> TrainedModel {
        let cfg = self.cfg;
        let key = format!(
            "model-v1;serve:{};threads={threads};tfactor={};seeds={:?}",
            spec.cache_key(),
            cfg.tfactor,
            cfg.train_seeds
        );
        let spec = spec.clone();
        self.resolve_model(&key, cfg.tfactor, what, || train_serve(cfg, &spec, threads))
    }

    /// One measured run, resolved through the run cache. `wkey` names the
    /// workload + input configuration; `policy_tag` the admission policy
    /// (use [`TAG_DEFAULT`] / [`guided_tag`] or spell out any other
    /// variant). Runs that capture event logs bypass the cache.
    pub fn run_one(
        &self,
        wkey: &str,
        workload: &dyn Workload,
        policy_tag: &str,
        opts: &RunOptions,
    ) -> RunOutcome {
        let cacheable = !opts.capture_events;
        let key = format!(
            "run-v1;{wkey};threads={};seed={};jitter={};cm={:?};detection={:?};\
             resolution={:?};telemetry={};{policy_tag}",
            opts.threads,
            opts.seed,
            opts.jitter_pct,
            opts.cm,
            opts.detection,
            opts.resolution,
            opts.telemetry,
        );
        if let Some(cache) = &self.cache {
            if cacheable {
                if let Some(out) = cache.load_run(&key) {
                    PipelineGauges::add(&self.gauges.run_hits, 1);
                    return out;
                }
                PipelineGauges::add(&self.gauges.run_misses, 1);
            }
        }
        let out = gstm_guide::run_workload(workload, opts);
        if cacheable {
            if let Some(cache) = &self.cache {
                cache.store_run(&key, &out);
            }
        }
        out
    }

    /// Resolves a rendered text cell through the cache: a hit returns the
    /// stored body verbatim; a miss runs `render` and stores it. Counted
    /// in the run-cache gauges — a cell is a (deterministic) run from the
    /// cache's point of view. Only cells whose rendering is a pure
    /// function of the key may use this.
    pub fn cached_text(&self, key: &str, render: impl FnOnce() -> String) -> String {
        if let Some(cache) = &self.cache {
            if let Some(body) = cache.load_text(key) {
                PipelineGauges::add(&self.gauges.run_hits, 1);
                return body;
            }
            PipelineGauges::add(&self.gauges.run_misses, 1);
        }
        let body = render();
        if let Some(cache) = &self.cache {
            cache.store_text(key, &body);
        }
        body
    }

    /// One measured run per configured test seed (fanned out over the
    /// pool), each resolved through the run cache.
    pub fn measured_runs(
        &self,
        wkey: &str,
        workload: &dyn Workload,
        policy_tag: &str,
        opts_for_seed: impl Fn(u64) -> RunOptions + Sync,
    ) -> Vec<RunOutcome> {
        let seeds = &self.cfg.test_seeds;
        self.run_indexed(seeds.len(), |i| {
            self.run_one(wkey, workload, policy_tag, &opts_for_seed(seeds[i]))
        })
    }

    /// Resolves one STAMP cell: shared training pass, then default and
    /// guided runs over every test seed.
    pub fn stamp_cell(&self, name: &'static str, threads: usize) -> StampCell {
        let cfg = self.cfg;
        let t0 = Instant::now();
        self.progress.report(&format!(
            "{name}/{threads}t: training on {} ({} seeds)",
            cfg.train_size,
            cfg.train_seeds.len()
        ));
        let trained = self.trained_stamp(name, threads);
        let workload =
            benchmark(name, cfg.test_size).unwrap_or_else(|| panic!("unknown benchmark {name}"));
        let wkey = format!("stamp:{name}:{}", cfg.test_size);
        let measured = |opts: RunOptions| if cfg.telemetry { opts.with_telemetry() } else { opts };
        self.progress.report(&format!("{name}/{threads}t: default runs on {}", cfg.test_size));
        let default_runs = self.measured_runs(&wkey, workload.as_ref(), TAG_DEFAULT, |s| {
            measured(RunOptions::new(threads, s))
        });
        self.progress.report(&format!("{name}/{threads}t: guided runs on {}", cfg.test_size));
        let tag = guided_tag(&trained, DEFAULT_K, cfg.tfactor);
        let guided_runs = self.measured_runs(&wkey, workload.as_ref(), &tag, |s| {
            measured(
                RunOptions::new(threads, s)
                    .with_policy(PolicyChoice::guided(Arc::clone(&trained.model))),
            )
        });
        PipelineGauges::add(&self.gauges.cells, 1);
        PipelineGauges::add(&self.gauges.cell_wall_ms, t0.elapsed().as_millis() as u64);
        StampCell { name, threads, trained, default_runs, guided_runs }
    }

    /// Resolves one SynQuake cell (one test quest at one thread count).
    pub fn quake_cell(&self, quest: Quest, threads: usize) -> QuakeCell {
        let cfg = self.cfg;
        let t0 = Instant::now();
        let model = self.trained_quake(threads);
        let workload =
            SynQuake { players: cfg.synquake_players, frames: cfg.synquake_frames.1, quest };
        let wkey = format!(
            "synquake:{quest}:players={};frames={}",
            cfg.synquake_players, cfg.synquake_frames.1
        );
        self.progress.report(&format!("synquake/{threads}t: measuring {quest}"));
        let measured = |opts: RunOptions| if cfg.telemetry { opts.with_telemetry() } else { opts };
        let default_runs = self.measured_runs(&wkey, &workload, TAG_DEFAULT, |s| {
            measured(RunOptions::new(threads, s))
        });
        let tag = guided_tag(&model, DEFAULT_K, cfg.tfactor);
        let guided_runs = self.measured_runs(&wkey, &workload, &tag, |s| {
            measured(
                RunOptions::new(threads, s)
                    .with_policy(PolicyChoice::guided(Arc::clone(&model.model))),
            )
        });
        PipelineGauges::add(&self.gauges.cells, 1);
        PipelineGauges::add(&self.gauges.cell_wall_ms, t0.elapsed().as_millis() as u64);
        QuakeCell { quest, threads, default_runs, guided_runs }
    }

    /// Resolves one serve cell: shared training pass, then default and
    /// guided runs over every test seed.
    pub fn serve_cell(
        &self,
        shape: &'static str,
        arrival: &'static str,
        threads: usize,
    ) -> ServeCell {
        let cfg = self.cfg;
        let t0 = Instant::now();
        let what = format!("serve:{shape}/{arrival}/{threads}t");
        let spec = serve_spec(cfg, shape, arrival);
        self.progress.report(&format!("{what}: training ({} seeds)", cfg.train_seeds.len()));
        let trained = self.trained_serve(&what, &spec, threads);
        let workload = gstm_serve::ServeWorkload::new(spec.clone());
        let wkey = format!("serve:{shape}:{arrival}:{}", spec.cache_key());
        let measured = |opts: RunOptions| if cfg.telemetry { opts.with_telemetry() } else { opts };
        self.progress.report(&format!("{what}: default runs"));
        let default_runs = self.measured_runs(&wkey, &workload, TAG_DEFAULT, |s| {
            measured(RunOptions::new(threads, s))
        });
        self.progress.report(&format!("{what}: guided runs"));
        let tag = guided_tag(&trained, DEFAULT_K, cfg.tfactor);
        let guided_runs = self.measured_runs(&wkey, &workload, &tag, |s| {
            measured(
                RunOptions::new(threads, s)
                    .with_policy(PolicyChoice::guided(Arc::clone(&trained.model))),
            )
        });
        PipelineGauges::add(&self.gauges.cells, 1);
        PipelineGauges::add(&self.gauges.cell_wall_ms, t0.elapsed().as_millis() as u64);
        ServeCell { shape, arrival, threads, spec, default_runs, guided_runs }
    }

    /// Resolves a whole plan. Independent cells fan out over the pool; the
    /// result is assembled by key/index so it is identical whatever the
    /// pool width or cache state.
    pub fn resolve(&self, plan: &StudyPlan) -> StudyResult {
        let stamp_cells = self.run_indexed(plan.stamp.len(), |i| {
            let (name, threads) = plan.stamp[i];
            self.stamp_cell(name, threads)
        });
        let mut stamp = StampStudy::default();
        for cell in stamp_cells {
            stamp.cells.insert((cell.name.to_string(), cell.threads), cell);
        }

        // Train each SynQuake thread count up front (sequentially, so two
        // cells never race to train the same model), then fan the measured
        // cells out.
        let mut quake = QuakeStudy::default();
        for &threads in &plan.quake {
            self.progress.report(&format!(
                "synquake/{threads}t: training on {} + {} ({} seeds each)",
                Quest::training()[0],
                Quest::training()[1],
                self.cfg.train_seeds.len()
            ));
            quake.trained.insert(threads, self.trained_quake(threads));
        }
        let pairs: Vec<(Quest, usize)> = plan
            .quake
            .iter()
            .flat_map(|&t| Quest::testing().into_iter().map(move |q| (q, t)))
            .collect();
        quake.cells = self.run_indexed(pairs.len(), |i| self.quake_cell(pairs[i].0, pairs[i].1));

        let serve = ServeStudy {
            cells: self.run_indexed(plan.serve.len(), |i| {
                let (shape, arrival, threads) = plan.serve[i];
                self.serve_cell(shape, arrival, threads)
            }),
        };
        StudyResult { stamp, quake, serve }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::NoProgress;

    fn tiny_cfg() -> ExpConfig {
        let mut cfg = ExpConfig::fast();
        cfg.threads_list = vec![2];
        cfg.test_seeds = vec![1000, 1001];
        cfg.train_seeds = vec![1, 2];
        cfg.synquake_players = 40;
        cfg.synquake_frames = (2, 3);
        cfg
    }

    #[test]
    fn run_indexed_preserves_order_at_any_width() {
        let cfg = tiny_cfg();
        let sequential = Pipeline::new(&cfg, &NoProgress);
        let parallel = Pipeline::new(&cfg, &NoProgress).with_jobs(4);
        let f = |i: usize| i * i;
        assert_eq!(sequential.run_indexed(9, f), parallel.run_indexed(9, f));
        assert_eq!(parallel.run_indexed(0, f), Vec::<usize>::new());
        assert_eq!(parallel.run_indexed(1, f), vec![0]);
    }

    #[test]
    fn nested_fan_out_runs_sequentially() {
        let cfg = tiny_cfg();
        let pipe = Pipeline::new(&cfg, &NoProgress).with_jobs(3);
        // Outer fan-out marks the pool busy; the nested call must still
        // produce correct, ordered results (sequentially).
        let nested = pipe.run_indexed(3, |i| pipe.run_indexed(3, |j| i * 10 + j));
        assert_eq!(nested, vec![vec![0, 1, 2], vec![10, 11, 12], vec![20, 21, 22]]);
    }

    #[test]
    fn plan_dedups_and_counts() {
        let cfg = tiny_cfg();
        let mut plan = StudyPlan::new();
        plan.stamp_cell("kmeans", 2).stamp_cell("kmeans", 2).quake(2).quake(2);
        assert_eq!(plan.stamp_cells(), &[("kmeans", 2)]);
        assert_eq!(plan.quake_threads(), &[2]);
        let mut full = StudyPlan::new();
        full.stamp_study(&cfg, &["kmeans", "ssca2"]);
        assert_eq!(full.stamp_cells().len(), 2);
        assert!(!full.is_empty());
        assert!(StudyPlan::new().is_empty());
    }

    #[test]
    fn guided_tag_tracks_model_content() {
        let a = crate::study::synthetic_trained(2);
        let b = crate::study::synthetic_trained(3);
        assert_ne!(guided_tag(&a, 16, 4.0), guided_tag(&b, 16, 4.0));
        assert_ne!(guided_tag(&a, 16, 4.0), guided_tag(&a, 64, 4.0));
        assert_ne!(guided_tag(&a, 16, 4.0), guided_tag(&a, 16, 2.0));
    }

    #[test]
    fn model_memo_shares_one_training_pass() {
        let cfg = tiny_cfg();
        let pipe = Pipeline::new(&cfg, &NoProgress);
        let first = pipe.trained_stamp("kmeans", 2);
        let again = pipe.trained_stamp("kmeans", 2);
        assert_eq!(
            gstm_model::serialize::to_bytes(&first.tsa),
            gstm_model::serialize::to_bytes(&again.tsa)
        );
        assert_eq!(pipe.gauges().model_misses.load(Ordering::Relaxed), 1);
        assert_eq!(pipe.gauges().model_hits.load(Ordering::Relaxed), 1);
    }
}
