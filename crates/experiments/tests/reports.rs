//! Report renderers over a synthetic miniature study: every table/figure
//! function must produce well-formed output without running the full sweep.

use std::collections::BTreeMap;

use gstm_experiments::config::ExpConfig;
use gstm_experiments::report;
use gstm_experiments::study::{synthetic_trained, QuakeCell, QuakeStudy, StampCell, StampStudy};
use gstm_guide::RunOutcome;

fn outcome(ticks: &[u64], nd: usize) -> RunOutcome {
    RunOutcome {
        thread_ticks: ticks.to_vec(),
        thread_wall_ticks: ticks.to_vec(),
        makespan: ticks.iter().copied().max().unwrap_or(0),
        commits: vec![10; ticks.len()],
        aborts: vec![2; ticks.len()],
        holds: vec![0; ticks.len()],
        abort_histograms: vec![
            [(0u32, 8u64), (1, 2)].into_iter().collect::<BTreeMap<_, _>>();
            ticks.len()
        ],
        nondeterminism: nd,
        unknown_hits: 0,
        events: None,
        workload_stats: vec![("frame_mean".into(), 50.0), ("frame_stddev".into(), 5.0)],
        hold_stats: None,
        telemetry: None,
    }
}

fn mini_cfg() -> ExpConfig {
    let mut cfg = ExpConfig::fast();
    cfg.threads_list = vec![2];
    cfg
}

fn mini_stamp(cfg: &ExpConfig) -> StampStudy {
    let mut study = StampStudy::default();
    for name in gstm_stamp::BENCHMARK_NAMES {
        for &threads in &cfg.threads_list {
            let cell = StampCell {
                name,
                threads,
                trained: synthetic_trained(threads),
                default_runs: vec![
                    outcome(&vec![100; threads], 9),
                    outcome(&vec![140; threads], 11),
                ],
                guided_runs: vec![outcome(&vec![110; threads], 7), outcome(&vec![120; threads], 8)],
            };
            study.cells.insert((name.to_string(), threads), cell);
        }
    }
    study
}

#[test]
fn stamp_reports_render() {
    let cfg = mini_cfg();
    let study = mini_stamp(&cfg);
    for body in [
        report::table1(&cfg, &study),
        report::table2(&cfg),
        report::table3(&cfg, &study),
        report::table4(&cfg, &study),
        report::fig3(&cfg, &study),
        report::fig_variance(2, &study, "Figure 4"),
        report::fig_tails(2, &study, "Figure 5", 0),
        report::fig8(&cfg, &study),
        report::fig9(&cfg, &study),
        report::fig10(&cfg, &study),
    ] {
        assert!(body.starts_with("== "), "{body}");
        assert!(body.lines().count() >= 2, "{body}");
    }
    // Table rows cover every benchmark.
    let t3 = report::table3(&cfg, &study);
    for name in gstm_stamp::BENCHMARK_NAMES {
        assert!(t3.contains(name), "{t3}");
    }
}

#[test]
fn quake_reports_render() {
    let cfg = mini_cfg();
    let study = QuakeStudy {
        trained: [(2usize, synthetic_trained(2))].into_iter().collect(),
        cells: gstm_synquake::Quest::testing()
            .into_iter()
            .map(|quest| QuakeCell {
                quest,
                threads: 2,
                default_runs: vec![outcome(&[100, 100], 5)],
                guided_runs: vec![outcome(&[105, 104], 4)],
            })
            .collect(),
    };
    let t5 = report::table5(&cfg, &study);
    assert!(t5.contains("SynQuake"), "{t5}");
    let f11 = report::fig_quake(&cfg, &study, gstm_synquake::Quest::Quadrants4, "Figure 11");
    assert!(f11.contains("4quadrants"), "{f11}");
    assert!(f11.contains('x'), "{f11}");
}
