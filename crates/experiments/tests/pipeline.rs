//! End-to-end pipeline invariants (golden tests): neither the fan-out
//! width (`--jobs`) nor the cache state (cold vs warm) may change a single
//! byte of the rendered reports.

use std::sync::atomic::Ordering;

use gstm_experiments::cache::DiskCache;
use gstm_experiments::config::ExpConfig;
use gstm_experiments::pipeline::{Pipeline, StudyPlan, StudyResult};
use gstm_experiments::progress::NoProgress;
use gstm_experiments::report;

fn plan(cfg: &ExpConfig) -> StudyPlan {
    let mut p = StudyPlan::new();
    p.stamp_study(cfg, &["kmeans", "ssca2"]);
    p.quake_study(cfg);
    p
}

/// Reports covering both study halves and every aggregate we print
/// (means, stddevs, tails) — a byte-level fingerprint of the outcomes.
fn render(cfg: &ExpConfig, r: &StudyResult) -> String {
    let threads = cfg.threads_list[0];
    let mut out = String::new();
    out.push_str(&report::table1(cfg, &r.stamp));
    out.push_str(&report::table4(cfg, &r.stamp));
    out.push_str(&report::fig_variance(threads, &r.stamp, "Figure 4"));
    out.push_str(&report::table5(cfg, &r.quake));
    out
}

#[test]
fn fan_out_width_is_invisible_in_output() {
    let cfg = ExpConfig::tiny();
    let p = plan(&cfg);
    let seq = Pipeline::new(&cfg, &NoProgress).resolve(&p);
    let par = Pipeline::new(&cfg, &NoProgress).with_jobs(4).resolve(&p);
    assert_eq!(render(&cfg, &seq), render(&cfg, &par), "--jobs 4 diverged from --jobs 1");
}

#[test]
fn warm_cache_reproduces_cold_output_without_training() {
    let cfg = ExpConfig::tiny();
    let p = plan(&cfg);
    let root = std::env::temp_dir().join(format!("gstm-pipeline-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let cold_pipe = Pipeline::new(&cfg, &NoProgress).with_cache(DiskCache::new(root.clone()));
    let cold = cold_pipe.resolve(&p);
    assert!(cold_pipe.gauges().model_misses.load(Ordering::Relaxed) > 0, "cold run should train");

    let warm_pipe = Pipeline::new(&cfg, &NoProgress).with_cache(DiskCache::new(root.clone()));
    let warm = warm_pipe.resolve(&p);
    let g = warm_pipe.gauges();
    assert_eq!(g.model_misses.load(Ordering::Relaxed), 0, "warm run retrained a model");
    assert_eq!(g.run_misses.load(Ordering::Relaxed), 0, "warm run re-measured a run");
    assert!(g.model_hits.load(Ordering::Relaxed) > 0);
    assert!(g.run_hits.load(Ordering::Relaxed) > 0);
    assert_eq!(g.train_wall_ms.load(Ordering::Relaxed), 0, "warm run spent wall-clock on training");
    assert_eq!(render(&cfg, &cold), render(&cfg, &warm), "warm rerun diverged from cold run");

    let _ = std::fs::remove_dir_all(&root);
}
