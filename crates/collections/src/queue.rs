//! Transactional queue, counter and sharded worklist.

use gstm_core::{Abort, TVar, Txn};

/// A transactional FIFO queue built from two stacks (head for dequeues,
/// tail for enqueues), so producers and consumers conflict with their own
/// kind but rarely with each other — the standard STM queue construction,
/// matching STAMP's `queue` used by intruder.
#[derive(Clone)]
pub struct TQueue<T> {
    head: TVar<Vec<T>>,
    tail: TVar<Vec<T>>,
}

impl<T> std::fmt::Debug for TQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TQueue")
    }
}

impl<T: Clone + Send + Sync + 'static> TQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        TQueue { head: TVar::new(Vec::new()), tail: TVar::new(Vec::new()) }
    }

    /// Creates a queue pre-filled with `items` (front of the queue first).
    pub fn seeded(items: Vec<T>) -> Self {
        let mut head = items;
        head.reverse(); // head stack pops from the back
        TQueue { head: TVar::new(head), tail: TVar::new(Vec::new()) }
    }

    /// Transactionally enqueues.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn enqueue(&self, tx: &mut Txn<'_>, item: T) -> Result<(), Abort> {
        let mut t = tx.read(&self.tail)?;
        t.push(item);
        tx.write(&self.tail, t)
    }

    /// Transactionally dequeues; `None` when empty.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn dequeue(&self, tx: &mut Txn<'_>) -> Result<Option<T>, Abort> {
        let mut h = tx.read(&self.head)?;
        if let Some(item) = h.pop() {
            tx.write(&self.head, h)?;
            return Ok(Some(item));
        }
        // Refill from the tail stack.
        let mut t = tx.read(&self.tail)?;
        if t.is_empty() {
            return Ok(None);
        }
        t.reverse();
        let item = t.pop();
        tx.write(&self.head, t)?;
        tx.write(&self.tail, Vec::new())?;
        Ok(item)
    }

    /// Non-transactional length (teardown only).
    pub fn len_unlogged(&self) -> usize {
        self.head.load_unlogged().len() + self.tail.load_unlogged().len()
    }
}

impl<T: Clone + Send + Sync + 'static> Default for TQueue<T> {
    fn default() -> Self {
        TQueue::new()
    }
}

/// A transactional counter.
#[derive(Clone, Debug)]
pub struct TCounter {
    var: TVar<i64>,
}

impl TCounter {
    /// Creates a counter starting at `initial`.
    pub fn new(initial: i64) -> Self {
        TCounter { var: TVar::new(initial) }
    }

    /// Transactionally adds `delta`, returning the new value.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn add(&self, tx: &mut Txn<'_>, delta: i64) -> Result<i64, Abort> {
        let v = tx.read(&self.var)? + delta;
        tx.write(&self.var, v)?;
        Ok(v)
    }

    /// Transactionally reads the value.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn get(&self, tx: &mut Txn<'_>) -> Result<i64, Abort> {
        tx.read(&self.var)
    }

    /// Non-transactional read (teardown only).
    pub fn get_unlogged(&self) -> i64 {
        *self.var.load_unlogged()
    }
}

impl Default for TCounter {
    fn default() -> Self {
        TCounter::new(0)
    }
}

/// A sharded transactional worklist with stealing: each shard is an
/// independent stack; threads push/pop their own shard and steal from
/// others when empty. Labyrinth and yada drive their refinement loops off
/// this shape.
#[derive(Clone)]
pub struct TWorklist<T> {
    shards: Vec<TVar<Vec<T>>>,
}

impl<T> std::fmt::Debug for TWorklist<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TWorklist({} shards)", self.shards.len())
    }
}

impl<T: Clone + Send + Sync + 'static> TWorklist<T> {
    /// Creates a worklist with `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a worklist needs at least one shard");
        TWorklist { shards: (0..shards).map(|_| TVar::new(Vec::new())).collect() }
    }

    /// Creates a worklist and distributes `items` round-robin.
    pub fn seeded(shards: usize, items: Vec<T>) -> Self {
        assert!(shards > 0, "a worklist needs at least one shard");
        let mut lists: Vec<Vec<T>> = (0..shards).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            lists[i % shards].push(item);
        }
        TWorklist { shards: lists.into_iter().map(TVar::new).collect() }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Transactionally pushes onto `shard` (wrapped into range).
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn push(&self, tx: &mut Txn<'_>, shard: usize, item: T) -> Result<(), Abort> {
        let var = &self.shards[shard % self.shards.len()];
        let mut list = tx.read(var)?;
        list.push(item);
        tx.write(var, list)
    }

    /// Transactionally pops, preferring `shard` and stealing from the
    /// others in order; `None` when every shard is empty.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn pop(&self, tx: &mut Txn<'_>, shard: usize) -> Result<Option<T>, Abort> {
        let n = self.shards.len();
        for off in 0..n {
            let var = &self.shards[(shard + off) % n];
            let mut list = tx.read(var)?;
            if let Some(item) = list.pop() {
                tx.write(var, list)?;
                return Ok(Some(item));
            }
        }
        Ok(None)
    }

    /// Non-transactional remaining count (teardown only).
    pub fn len_unlogged(&self) -> usize {
        self.shards.iter().map(|s| s.load_unlogged().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_core::{Stm, StmConfig, ThreadId, TxId};

    fn with_tx<R>(f: impl FnMut(&mut Txn<'_>) -> Result<R, Abort>) -> R {
        let stm = Stm::new(StmConfig::new(1));
        stm.run(ThreadId::new(0), TxId::new(0), f)
    }

    #[test]
    fn queue_is_fifo() {
        let q = TQueue::new();
        let order = with_tx(|tx| {
            q.enqueue(tx, 1)?;
            q.enqueue(tx, 2)?;
            q.enqueue(tx, 3)?;
            let a = q.dequeue(tx)?;
            q.enqueue(tx, 4)?;
            let b = q.dequeue(tx)?;
            let c = q.dequeue(tx)?;
            let d = q.dequeue(tx)?;
            let e = q.dequeue(tx)?;
            Ok(vec![a, b, c, d, e])
        });
        assert_eq!(order, vec![Some(1), Some(2), Some(3), Some(4), None]);
    }

    #[test]
    fn seeded_queue_preserves_order() {
        let q = TQueue::seeded(vec![10, 20]);
        let (a, b) = with_tx(|tx| Ok((q.dequeue(tx)?, q.dequeue(tx)?)));
        assert_eq!((a, b), (Some(10), Some(20)));
        assert_eq!(q.len_unlogged(), 0);
    }

    #[test]
    fn counter_adds() {
        let c = TCounter::new(5);
        let v = with_tx(|tx| c.add(tx, -2));
        assert_eq!(v, 3);
        assert_eq!(c.get_unlogged(), 3);
    }

    #[test]
    fn worklist_prefers_own_shard_then_steals() {
        let wl = TWorklist::seeded(2, vec![1, 2, 3, 4]); // shard0: [1,3], shard1: [2,4]
        let got = with_tx(|tx| {
            let a = wl.pop(tx, 0)?; // own shard → 3 (stack order)
            let b = wl.pop(tx, 0)?; // own shard → 1
            let c = wl.pop(tx, 0)?; // steal from shard1 → 4
            Ok(vec![a, b, c])
        });
        assert_eq!(got, vec![Some(3), Some(1), Some(4)]);
        assert_eq!(wl.len_unlogged(), 1);
    }

    #[test]
    fn worklist_empty_pop_is_none() {
        let wl: TWorklist<u8> = TWorklist::new(3);
        assert_eq!(with_tx(|tx| wl.pop(tx, 1)), None);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _: TWorklist<u8> = TWorklist::new(0);
    }
}
