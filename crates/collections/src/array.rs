//! Fixed-size transactional arrays.

use gstm_core::{Abort, TVar, Txn};

/// A fixed-length array of transactional cells.
///
/// Each element is its own [`TVar`], so transactions touching different
/// elements do not conflict (beyond rare stripe collisions) — the STAMP
/// suite's arrays (kmeans centroids, ssca2 adjacency) behave the same way.
///
/// ```
/// use gstm_core::{Stm, StmConfig, ThreadId, TxId};
/// use gstm_collections::TArray;
///
/// let stm = Stm::new(StmConfig::new(1));
/// let arr = TArray::new(4, |i| i as i64);
/// let sum = stm.run(ThreadId::new(0), TxId::new(0), |tx| {
///     let mut s = 0;
///     for i in 0..arr.len() {
///         s += arr.read(tx, i)?;
///     }
///     Ok(s)
/// });
/// assert_eq!(sum, 6);
/// ```
#[derive(Clone)]
pub struct TArray<T> {
    cells: Vec<TVar<T>>,
}

impl<T> std::fmt::Debug for TArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TArray({} cells)", self.cells.len())
    }
}

impl<T: Clone + Send + Sync + 'static> TArray<T> {
    /// Creates an array of `n` cells initialized by `init(i)`.
    pub fn new(n: usize, init: impl FnMut(usize) -> T) -> Self {
        let mut init = init;
        TArray { cells: (0..n).map(|i| TVar::new(init(i))).collect() }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the array has zero cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Transactionally reads element `i`.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn read(&self, tx: &mut Txn<'_>, i: usize) -> Result<T, Abort> {
        tx.read(&self.cells[i])
    }

    /// Transactionally writes element `i`.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn write(&self, tx: &mut Txn<'_>, i: usize, value: T) -> Result<(), Abort> {
        tx.write(&self.cells[i], value)
    }

    /// Transactionally updates element `i` in place.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn update(&self, tx: &mut Txn<'_>, i: usize, f: impl FnOnce(T) -> T) -> Result<(), Abort> {
        let v = self.read(tx, i)?;
        self.write(tx, i, f(v))
    }

    /// Non-transactional snapshot of all elements (setup/teardown only).
    pub fn snapshot_unlogged(&self) -> Vec<T> {
        self.cells.iter().map(|c| (*c.load_unlogged()).clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_core::{Stm, StmConfig, ThreadId, TxId};

    fn stm() -> Stm {
        Stm::new(StmConfig::new(1))
    }

    #[test]
    fn init_and_len() {
        let a = TArray::new(3, |i| i * 10);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(a.snapshot_unlogged(), vec![0, 10, 20]);
    }

    #[test]
    fn transactional_rmw() {
        let stm = stm();
        let a = TArray::new(2, |_| 0i64);
        stm.run(ThreadId::new(0), TxId::new(0), |tx| {
            a.update(tx, 0, |v| v + 5)?;
            a.update(tx, 1, |v| v - 5)
        });
        assert_eq!(a.snapshot_unlogged(), vec![5, -5]);
    }

    #[test]
    fn empty_array() {
        let a: TArray<u8> = TArray::new(0, |_| 0);
        assert!(a.is_empty());
        assert!(a.snapshot_unlogged().is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let stm = stm();
        let a = TArray::new(1, |_| 0u8);
        stm.run(ThreadId::new(0), TxId::new(0), |tx| a.read(tx, 5));
    }
}
