//! # gstm-collections — transactional data structures
//!
//! The STAMP suite ships a small library of transactional containers
//! (hashtable, list, queue, heap) that its benchmarks are built from; this
//! crate is the equivalent for the GSTM reproduction. Every operation takes
//! a [`gstm_core::Txn`] and composes with any other transactional work in
//! the same atomic block.
//!
//! * [`TArray`] — fixed array, one `TVar` per element;
//! * [`THashMap`] / [`TSet`] — bucketized hash map/set (bucket-granular
//!   conflicts);
//! * [`TQueue`] — two-stack FIFO;
//! * [`TCounter`] — shared counter;
//! * [`TWorklist`] — sharded work-stealing list for refinement-style loops.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod array;
mod map;
mod queue;

pub use array::TArray;
pub use map::{THashMap, TSet};
pub use queue::{TCounter, TQueue, TWorklist};
