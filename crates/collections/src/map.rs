//! Bucketized transactional hash map and set.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use gstm_core::{Abort, TVar, Txn};

/// A transactional hash map: a fixed array of buckets, each an independent
/// [`TVar`] holding its entry list.
///
/// Conflict granularity is the bucket, mirroring STAMP's `hashtable` (used
/// by genome's segment table and intruder's fragment map): operations on
/// different buckets commute; growing the map is not supported (STAMP sizes
/// its tables up front too).
///
/// ```
/// use gstm_core::{Stm, StmConfig, ThreadId, TxId};
/// use gstm_collections::THashMap;
///
/// let stm = Stm::new(StmConfig::new(1));
/// let map: THashMap<u64, &'static str> = THashMap::new(16);
/// stm.run(ThreadId::new(0), TxId::new(0), |tx| {
///     map.insert(tx, 7, "seven")?;
///     Ok(())
/// });
/// let got = stm.run(ThreadId::new(0), TxId::new(1), |tx| map.get(tx, &7));
/// assert_eq!(got, Some("seven"));
/// ```
#[derive(Clone)]
pub struct THashMap<K, V> {
    buckets: Vec<TVar<Vec<(K, V)>>>,
}

impl<K, V> std::fmt::Debug for THashMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "THashMap({} buckets)", self.buckets.len())
    }
}

impl<K, V> THashMap<K, V>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Creates a map with `buckets` independent buckets.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "a map needs at least one bucket");
        THashMap { buckets: (0..buckets).map(|_| TVar::new(Vec::new())).collect() }
    }

    /// Creates a map whose bucket `TVar`s all carry placement tag `place`
    /// ([`TVar::new_placed`]).
    ///
    /// On an [`Stm`](gstm_core::Stm) configured with
    /// `StmConfig::with_table_shards(n)`, every bucket of this map hashes
    /// into lock-table partition `place % n` — `gstm-serve` tags each store
    /// shard's map this way so different shards can never false-share a
    /// lock stripe.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new_placed(buckets: usize, place: u8) -> Self {
        assert!(buckets > 0, "a map needs at least one bucket");
        THashMap { buckets: (0..buckets).map(|_| TVar::new_placed(place, Vec::new())).collect() }
    }

    /// Number of buckets (conflict granularity).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn bucket_of(&self, key: &K) -> &TVar<Vec<(K, V)>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.buckets[(h.finish() as usize) % self.buckets.len()]
    }

    /// Transactionally inserts, returning the previous value if any.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn insert(&self, tx: &mut Txn<'_>, key: K, value: V) -> Result<Option<V>, Abort> {
        let var = self.bucket_of(&key);
        let mut entries = tx.read(var)?;
        let old = match entries.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => Some(std::mem::replace(&mut slot.1, value)),
            None => {
                entries.push((key, value));
                None
            }
        };
        tx.write(var, entries)?;
        Ok(old)
    }

    /// Transactionally looks a key up.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn get(&self, tx: &mut Txn<'_>, key: &K) -> Result<Option<V>, Abort> {
        let entries = tx.read(self.bucket_of(key))?;
        Ok(entries.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone()))
    }

    /// Transactionally checks membership.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn contains_key(&self, tx: &mut Txn<'_>, key: &K) -> Result<bool, Abort> {
        Ok(self.get(tx, key)?.is_some())
    }

    /// Transactionally removes a key, returning its value if present.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn remove(&self, tx: &mut Txn<'_>, key: &K) -> Result<Option<V>, Abort> {
        let var = self.bucket_of(key);
        let mut entries = tx.read(var)?;
        match entries.iter().position(|(k, _)| k == key) {
            Some(i) => {
                let (_, v) = entries.swap_remove(i);
                tx.write(var, entries)?;
                Ok(Some(v))
            }
            None => Ok(None),
        }
    }

    /// Read-modify-write on one key: inserts `default()` when absent, then
    /// applies `f`.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn upsert(
        &self,
        tx: &mut Txn<'_>,
        key: K,
        default: impl FnOnce() -> V,
        f: impl FnOnce(&mut V),
    ) -> Result<(), Abort> {
        let var = self.bucket_of(&key);
        let mut entries = tx.read(var)?;
        match entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => f(v),
            None => {
                let mut v = default();
                f(&mut v);
                entries.push((key, v));
            }
        }
        tx.write(var, entries)
    }

    /// Non-transactional insert for pre-run population (setup only — never
    /// call while transactions are running; the store bypasses the STM).
    /// Returns the previous value if the key was present.
    pub fn insert_unlogged(&self, key: K, value: V) -> Option<V> {
        let var = self.bucket_of(&key);
        let mut entries = (*var.load_unlogged()).clone();
        let old = match entries.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => Some(std::mem::replace(&mut slot.1, value)),
            None => {
                entries.push((key, value));
                None
            }
        };
        var.store_unlogged(entries);
        old
    }

    /// Non-transactional snapshot of all entries (teardown only).
    pub fn snapshot_unlogged(&self) -> Vec<(K, V)> {
        self.buckets.iter().flat_map(|b| (*b.load_unlogged()).clone()).collect()
    }

    /// Non-transactional entry count (teardown only).
    pub fn len_unlogged(&self) -> usize {
        self.buckets.iter().map(|b| b.load_unlogged().len()).sum()
    }
}

/// A transactional hash set over [`THashMap`].
#[derive(Clone)]
pub struct TSet<K> {
    map: THashMap<K, ()>,
}

impl<K> std::fmt::Debug for TSet<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TSet({} buckets)", self.map.buckets.len())
    }
}

impl<K> TSet<K>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
{
    /// Creates a set with the given bucket count.
    pub fn new(buckets: usize) -> Self {
        TSet { map: THashMap::new(buckets) }
    }

    /// Transactionally inserts; returns whether the key was new.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn insert(&self, tx: &mut Txn<'_>, key: K) -> Result<bool, Abort> {
        Ok(self.map.insert(tx, key, ())?.is_none())
    }

    /// Transactionally checks membership.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn contains(&self, tx: &mut Txn<'_>, key: &K) -> Result<bool, Abort> {
        self.map.contains_key(tx, key)
    }

    /// Transactionally removes; returns whether the key was present.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn remove(&self, tx: &mut Txn<'_>, key: &K) -> Result<bool, Abort> {
        Ok(self.map.remove(tx, key)?.is_some())
    }

    /// Non-transactional element snapshot (teardown only).
    pub fn snapshot_unlogged(&self) -> Vec<K> {
        self.map.snapshot_unlogged().into_iter().map(|(k, _)| k).collect()
    }

    /// Non-transactional element count (teardown only).
    pub fn len_unlogged(&self) -> usize {
        self.map.len_unlogged()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_core::{Stm, StmConfig, ThreadId, TxId};

    fn with_tx<R>(f: impl FnMut(&mut Txn<'_>) -> Result<R, Abort>) -> R {
        let stm = Stm::new(StmConfig::new(1));
        stm.run(ThreadId::new(0), TxId::new(0), f)
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let map: THashMap<u32, String> = THashMap::new(8);
        let got = with_tx(|tx| {
            assert_eq!(map.insert(tx, 1, "one".into())?, None);
            assert_eq!(map.insert(tx, 1, "uno".into())?, Some("one".into()));
            assert_eq!(map.get(tx, &1)?, Some("uno".into()));
            assert_eq!(map.remove(tx, &1)?, Some("uno".into()));
            map.get(tx, &1)
        });
        assert_eq!(got, None);
    }

    #[test]
    fn many_keys_spread_over_buckets() {
        let map: THashMap<u64, u64> = THashMap::new(4);
        with_tx(|tx| {
            for k in 0..100 {
                map.insert(tx, k, k * 2)?;
            }
            Ok(())
        });
        assert_eq!(map.len_unlogged(), 100);
        let mut snap = map.snapshot_unlogged();
        snap.sort_unstable();
        assert_eq!(snap[10], (10, 20));
    }

    #[test]
    fn placed_map_tags_every_bucket_and_still_works() {
        let map: THashMap<u32, u32> = THashMap::new_placed(4, 2);
        assert!(map.buckets.iter().all(|b| b.id().place() == Some(2)));
        let got = with_tx(|tx| {
            map.insert(tx, 9, 90)?;
            map.get(tx, &9)
        });
        assert_eq!(got, Some(90));
        assert_eq!(map.bucket_count(), 4);
    }

    #[test]
    fn upsert_creates_then_mutates() {
        let map: THashMap<u8, Vec<u8>> = THashMap::new(4);
        with_tx(|tx| {
            map.upsert(tx, 1, Vec::new, |v| v.push(10))?;
            map.upsert(tx, 1, Vec::new, |v| v.push(20))?;
            Ok(())
        });
        assert_eq!(map.snapshot_unlogged(), vec![(1, vec![10, 20])]);
    }

    #[test]
    fn insert_unlogged_seeds_transactional_reads() {
        let map: THashMap<u32, u32> = THashMap::new(4);
        assert_eq!(map.insert_unlogged(5, 50), None);
        assert_eq!(map.insert_unlogged(5, 55), Some(50));
        let got = with_tx(|tx| map.get(tx, &5));
        assert_eq!(got, Some(55));
    }

    #[test]
    fn set_semantics() {
        let set: TSet<&'static str> = TSet::new(4);
        let fresh = with_tx(|tx| {
            assert!(set.insert(tx, "a")?);
            assert!(!set.insert(tx, "a")?);
            assert!(set.contains(tx, &"a")?);
            assert!(set.remove(tx, &"a")?);
            set.contains(tx, &"a")
        });
        assert!(!fresh);
        assert_eq!(set.len_unlogged(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let _: THashMap<u8, u8> = THashMap::new(0);
    }
}
