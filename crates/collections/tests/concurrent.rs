//! Concurrent stress tests of the transactional containers on the
//! deterministic machine: linearizable effects under real contention.

use std::sync::Arc;

use gstm_collections::{TCounter, THashMap, TQueue, TSet, TWorklist};
use gstm_core::{Stm, StmConfig, ThreadId, TxId};
use gstm_sim::{SimConfig, SimMachine};

fn with_machine(
    threads: usize,
    seed: u64,
    f: impl Fn(Arc<Stm>, usize) -> Box<dyn FnOnce() + Send>,
) {
    let machine = SimMachine::new(SimConfig::new(threads, seed));
    let stm = Arc::new(Stm::new_on(StmConfig::new(threads), machine.gate()));
    let workers: Vec<Box<dyn FnOnce() + Send + '_>> =
        (0..threads).map(|i| f(Arc::clone(&stm), i)).collect();
    machine.run(workers);
}

#[test]
fn queue_delivers_every_item_exactly_once() {
    let n = 120;
    let q = TQueue::seeded((0..n).collect::<Vec<i32>>());
    let seen = Arc::new(gstm_core::sync::Mutex::new(Vec::new()));
    with_machine(4, 3, |stm, i| {
        let q = q.clone();
        let seen = Arc::clone(&seen);
        Box::new(move || loop {
            let item = stm.run(ThreadId::new(i as u16), TxId::new(0), |tx| q.dequeue(tx));
            match item {
                Some(v) => seen.lock().push(v),
                None => break,
            }
        })
    });
    let mut got = Arc::try_unwrap(seen).unwrap().into_inner();
    got.sort_unstable();
    assert_eq!(got, (0..n).collect::<Vec<i32>>());
}

#[test]
fn map_inserts_from_all_threads_are_all_present() {
    let map: THashMap<u32, u32> = THashMap::new(8);
    let threads = 4;
    let per = 50u32;
    with_machine(threads, 7, |stm, i| {
        let map = map.clone();
        Box::new(move || {
            for k in 0..per {
                let key = i as u32 * per + k;
                stm.run(ThreadId::new(i as u16), TxId::new(0), |tx| {
                    map.insert(tx, key, key * 2).map(|_| ())
                });
            }
        })
    });
    assert_eq!(map.len_unlogged(), threads * per as usize);
    for (k, v) in map.snapshot_unlogged() {
        assert_eq!(v, k * 2);
    }
}

#[test]
fn set_dedups_racing_inserts() {
    // All threads insert the same key range: exactly one "new" per key.
    let set: TSet<u32> = TSet::new(4);
    let news = Arc::new(std::sync::atomic::AtomicU64::new(0));
    with_machine(4, 11, |stm, i| {
        let set = set.clone();
        let news = Arc::clone(&news);
        Box::new(move || {
            for k in 0..40u32 {
                let fresh = stm.run(ThreadId::new(i as u16), TxId::new(0), |tx| set.insert(tx, k));
                if fresh {
                    news.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
        })
    });
    assert_eq!(news.load(std::sync::atomic::Ordering::Relaxed), 40);
    assert_eq!(set.len_unlogged(), 40);
}

#[test]
fn counter_sums_under_contention() {
    let c = TCounter::new(0);
    with_machine(6, 1, |stm, i| {
        let c = c.clone();
        Box::new(move || {
            for _ in 0..30 {
                stm.run(ThreadId::new(i as u16), TxId::new(0), |tx| c.add(tx, 2).map(|_| ()));
            }
        })
    });
    assert_eq!(c.get_unlogged(), 6 * 30 * 2);
}

#[test]
fn worklist_drains_completely_with_stealing() {
    let wl = TWorklist::seeded(4, (0..100u32).collect());
    let popped = Arc::new(std::sync::atomic::AtomicU64::new(0));
    with_machine(4, 9, |stm, i| {
        let wl = wl.clone();
        let popped = Arc::clone(&popped);
        Box::new(move || loop {
            let got = stm.run(ThreadId::new(i as u16), TxId::new(0), |tx| wl.pop(tx, i));
            if got.is_none() {
                break;
            }
            popped.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        })
    });
    assert_eq!(popped.load(std::sync::atomic::Ordering::Relaxed), 100);
    assert_eq!(wl.len_unlogged(), 0);
}

#[test]
fn mixed_map_ops_keep_entry_integrity() {
    // Threads upsert counters per key; the final value per key must equal
    // the number of upserts that targeted it.
    let map: THashMap<u32, u64> = THashMap::new(4);
    let keys = 6u32;
    let per = 25;
    with_machine(3, 5, |stm, i| {
        let map = map.clone();
        Box::new(move || {
            for k in 0..per {
                let key = (i as u32 + k) % keys;
                stm.run(ThreadId::new(i as u16), TxId::new(0), |tx| {
                    map.upsert(tx, key, || 0, |v| *v += 1)
                });
            }
        })
    });
    let total: u64 = map.snapshot_unlogged().iter().map(|(_, v)| v).sum();
    assert_eq!(total, 3 * per as u64);
}
