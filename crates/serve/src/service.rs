//! The service layer: specs, clocks, the worker loop, and the harness
//! integration that lets a serve run flow through `gstm-guide` (and hence
//! the experiment pipeline) like any other workload.
//!
//! ## Latency accounting
//!
//! Each request's **sojourn time** is `completion − scheduled arrival`:
//! queueing delay (the request waited while the thread served its backlog
//! or retried conflicting transactions) plus service time (the successful
//! attempt and all aborted ones). Sojourns are recorded into a per-thread
//! [`LogHistogram`] and merged at the end, so p50/p95/p99 come out of
//! lock-free counters without per-request allocation.
//!
//! ## Backpressure
//!
//! A thread whose backlog (requests already due but not yet served) exceeds
//! [`ServeSpec::max_queue_depth`] **sheds** the oldest due request instead
//! of serving it: it is counted and skipped without starting a transaction.
//! Shedding bounds queue growth when offered load transiently exceeds
//! service rate — without it, one conflict storm would inflate every later
//! sojourn in the run and the tail would measure the storm's echo, not the
//! policy's behavior.
//!
//! ## Clocks
//!
//! The loop runs in both worlds through [`ServeClock`]: [`GateClock`]
//! reads/advances the thread's virtual clock through the `Gate` seam (so a
//! SimGate run is deterministic per seed), and [`WallClock`] maps real
//! nanoseconds to ticks for native `RealGate` runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gstm_core::cm::Aggressive;
use gstm_core::{
    available_cores, AdmitAll, ClockStrategy, Gate, MvccStats, Participant, Placement, ReadMode,
    RealGate, SiteStats, SiteStatsSink, Stm, StmConfig, ThreadId, TouchMap, TxnKind,
};
use gstm_guide::{RunOptions, RunOutcome, WorkerEnv, Workload, WorkloadRun};
use gstm_telemetry::histogram::{HistogramSnapshot, LogHistogram};

use crate::backend::{BackendKind, DurableBackend, EphemeralBackend, StoreBackend};
use crate::store::{Request, ShardedStore};
use crate::traffic::{generate_schedule, Arrival, Drift, Mix, ScheduledRequest, TrafficSpec};
use gstm_wal::{FileDevice, LogDevice, Wal, WalConfig};

/// Upper bound on a single idle wait charged through the gate. Waiting in
/// small steps and re-reading the clock keeps the simulator's per-pass cost
/// jitter from overshooting the scheduled arrival by more than one chunk.
const WAIT_CHUNK: u64 = 32;

/// How the engine's commit spine is organized for this service
/// (DESIGN.md §3.1c).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpineMode {
    /// One global lock table and the legacy `fetch_add` clock — the
    /// configuration every run before this knob existed used, and still
    /// the default (so cached sim results and goldens stay valid).
    #[default]
    Global,
    /// One lock-table partition per store shard (every shard's buckets are
    /// placement-tagged into their own padded stripe range), the skip-ahead
    /// version clock, and — native runs only — core-affinity placement of
    /// worker threads derived from their schedules' shard touch counts.
    PerShard,
}

impl SpineMode {
    /// Short tag used in cache keys and result tables.
    pub fn label(&self) -> &'static str {
        match self {
            SpineMode::Global => "global",
            SpineMode::PerShard => "pershard",
        }
    }
}

/// How requests are executed against the store (DESIGN.md §6h).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServeMode {
    /// The original open-loop worker loop: each thread serves its own
    /// schedule, one STM transaction per request, commit order decided by
    /// the race. The default — every pre-block spec, cache key and golden
    /// is unchanged.
    #[default]
    Interleaved,
    /// Ordered block execution: the per-thread schedules are merged into
    /// one global arrival order, chopped into blocks of `block_size`, and
    /// each block runs through the `gstm-block` executor — speculative
    /// parallel execution, outcome byte-identical to sequential execution
    /// in block order at any thread count. Commits claim one engine
    /// sequence number per transaction in block order, so the WAL stays
    /// gap-free. Native runs only; backpressure shedding does not apply
    /// (the block boundary is the batching policy).
    Block {
        /// Transactions per block.
        block_size: usize,
    },
}

impl ServeMode {
    /// Short tag used in cache keys and result tables.
    pub fn label(&self) -> &'static str {
        match self {
            ServeMode::Interleaved => "interleaved",
            ServeMode::Block { .. } => "block",
        }
    }
}

/// Full description of one serve configuration — store shape, traffic, and
/// service parameters. Everything that defines the offered load lives
/// here, so a spec plus a seed fully determines a run's input.
#[derive(Clone, Debug)]
pub struct ServeSpec {
    /// Number of store shards.
    pub shards: usize,
    /// Buckets per shard (conflict granularity within a shard).
    pub buckets_per_shard: usize,
    /// Keyspace size.
    pub keys: u64,
    /// Zipf popularity skew θ.
    pub zipf_theta: f64,
    /// Arrival process.
    pub arrival: Arrival,
    /// Requests per thread.
    pub requests_per_thread: usize,
    /// Backlog depth above which due requests are shed.
    pub max_queue_depth: usize,
    /// Non-transactional compute ticks charged per request attempt.
    pub work: u64,
    /// `Scan` range length.
    pub scan_len: u64,
    /// Request-kind mix.
    pub mix: Mix,
    /// Storage backend: ephemeral (in-memory only) or durable
    /// (WAL-backed command logging with snapshots).
    pub backend: BackendKind,
    /// Commit-spine organization (global vs per-shard lock tables).
    pub spine: SpineMode,
    /// Read path for read-only requests: `Latest` is the legacy validated
    /// path (the default — cached results and goldens unchanged);
    /// `Snapshot` serves `Get`/`Scan`/`GetMany` from the MVCC version
    /// rings with zero validation and zero aborts (DESIGN.md §3.1d).
    pub read_mode: ReadMode,
    /// Optional non-stationary traffic (time-varying Zipf exponent plus
    /// hotspot migration, DESIGN.md §6g). `None` — the default every
    /// pre-drift spec used — leaves schedules byte-identical.
    pub drift: Option<Drift>,
    /// Execution mode: the default interleaved worker loop, or ordered
    /// block execution (native runs only, DESIGN.md §6h).
    pub mode: ServeMode,
}

impl ServeSpec {
    /// A contended "hot" shape: small keyspace, strong skew, coarse
    /// buckets and a transfer-heavy mix — most traffic fights over a few
    /// buckets, so admission policy decides the tail.
    pub fn hot(requests_per_thread: usize) -> Self {
        ServeSpec {
            shards: 2,
            buckets_per_shard: 2,
            keys: 32,
            zipf_theta: 0.99,
            arrival: Arrival::Poisson { mean_gap: 220.0 },
            requests_per_thread,
            max_queue_depth: 24,
            work: 40,
            scan_len: 8,
            mix: Mix::transfer_heavy(),
            backend: BackendKind::Ephemeral,
            spine: SpineMode::Global,
            read_mode: ReadMode::Latest,
            drift: None,
            mode: ServeMode::Interleaved,
        }
    }

    /// An uncontended "wide" shape: large keyspace, mild skew, fine
    /// buckets and a read-mostly mix — conflicts are rare and the tail is
    /// mostly queueing.
    pub fn wide(requests_per_thread: usize) -> Self {
        ServeSpec {
            shards: 8,
            buckets_per_shard: 32,
            keys: 4096,
            zipf_theta: 0.6,
            arrival: Arrival::Poisson { mean_gap: 220.0 },
            requests_per_thread,
            max_queue_depth: 24,
            work: 40,
            scan_len: 8,
            mix: Mix::read_mostly(),
            backend: BackendKind::Ephemeral,
            spine: SpineMode::Global,
            read_mode: ReadMode::Latest,
            drift: None,
            mode: ServeMode::Interleaved,
        }
    }

    /// The ledger shape: a mid-sized account space with strong Zipf skew
    /// and the [`Mix::ledger`] transfer graph — 80% of traffic atomically
    /// moves balance between two skewed accounts, so the conserved-total
    /// oracle ([`gstm_check::check_conserved_total`]) covers essentially
    /// all writes. This is the canonical block-executor workload: hot
    /// accounts produce dense write-write dependency chains that ordered
    /// re-execution resolves deterministically.
    pub fn ledger(requests_per_thread: usize) -> Self {
        ServeSpec {
            shards: 4,
            buckets_per_shard: 8,
            keys: 256,
            zipf_theta: 0.9,
            arrival: Arrival::Poisson { mean_gap: 180.0 },
            requests_per_thread,
            max_queue_depth: 24,
            work: 40,
            scan_len: 8,
            mix: Mix::ledger(),
            backend: BackendKind::Ephemeral,
            spine: SpineMode::Global,
            read_mode: ReadMode::Latest,
            drift: None,
            mode: ServeMode::Interleaved,
        }
    }

    /// Replaces the arrival process.
    pub fn with_arrival(mut self, arrival: Arrival) -> Self {
        self.arrival = arrival;
        self
    }

    /// Replaces the storage backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Replaces the commit-spine mode.
    pub fn with_spine(mut self, spine: SpineMode) -> Self {
        self.spine = spine;
        self
    }

    /// Replaces the read path for read-only requests.
    pub fn with_read_mode(mut self, read_mode: ReadMode) -> Self {
        self.read_mode = read_mode;
        self
    }

    /// Replaces the request-kind mix.
    pub fn with_mix(mut self, mix: Mix) -> Self {
        self.mix = mix;
        self
    }

    /// Installs a non-stationary traffic schedule.
    pub fn with_drift(mut self, drift: Drift) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Switches to ordered block execution with the given block size
    /// (native runs only).
    pub fn with_block_mode(mut self, block_size: usize) -> Self {
        self.mode = ServeMode::Block { block_size };
        self
    }

    /// Canonical cache-key fragment: every field that shapes the run, in a
    /// fixed order. Feeds the pipeline's content-addressed run cache, so
    /// any spec change must change this string.
    pub fn cache_key(&self) -> String {
        let arrival = match self.arrival {
            Arrival::Poisson { mean_gap } => format!("poisson(g={mean_gap})"),
            Arrival::Bursty { mean_gap, burst } => format!("bursty(g={mean_gap},b={burst})"),
        };
        // Trailing zero weights are dropped before rendering: presets that
        // predate `GetMany` carry a sixth weight of 0 (a pure placeholder
        // that draws nothing), and their keys must stay byte-identical to
        // the five-element strings the pipeline cache already holds.
        let mut mix: &[u32] = &self.mix.0;
        while let [rest @ .., 0] = mix {
            mix = rest;
        }
        let mut key = format!(
            "sh={};bk={};keys={};th={};arr={};rq={};qd={};wk={};sc={};mix={:?};be={}",
            self.shards,
            self.buckets_per_shard,
            self.keys,
            self.zipf_theta,
            arrival,
            self.requests_per_thread,
            self.max_queue_depth,
            self.work,
            self.scan_len,
            mix,
            self.backend.label(),
        );
        // Appended (rather than inlined) and only when non-default, so the
        // key of every spec that predates the spine knob is byte-identical
        // to what the pipeline cache already holds.
        if self.spine != SpineMode::Global {
            key.push_str(";spine=");
            key.push_str(self.spine.label());
        }
        // Same append-only discipline for the read path.
        if self.read_mode != ReadMode::Latest {
            key.push_str(";rm=snapshot");
        }
        // And for drift: stationary specs keep their pre-drift keys.
        if let Some(d) = self.drift {
            key.push_str(&format!(
                ";drift=(te={},ph={},hs={})",
                d.theta_end, d.phases, d.hotspot_step
            ));
        }
        // And for the execution mode: interleaved specs keep their keys.
        if let ServeMode::Block { block_size } = self.mode {
            key.push_str(&format!(";mode=block(bs={block_size})"));
        }
        key
    }

    pub(crate) fn traffic(&self) -> TrafficSpec {
        TrafficSpec {
            keys: self.keys,
            zipf_theta: self.zipf_theta,
            arrival: self.arrival,
            requests_per_thread: self.requests_per_thread,
            mix: self.mix,
            scan_len: self.scan_len,
            drift: self.drift,
        }
    }
}

/// A thread-local view of time for the serve loop, in ticks.
pub trait ServeClock: Send + Sync {
    /// The thread's current time.
    fn now(&self, thread: ThreadId) -> u64;

    /// Blocks (or charges idle ticks) until the thread's time reaches `at`.
    fn wait_until(&self, thread: ThreadId, at: u64);
}

/// [`ServeClock`] over the STM's own [`Gate`]: time is the thread's charged
/// tick total, and idle waits are charged through `pass` in bounded chunks
/// (each chunk's cost is re-derived from the clock, so simulator jitter
/// cannot compound into a large overshoot).
pub struct GateClock {
    gate: Arc<dyn Gate>,
}

impl GateClock {
    /// Wraps a gate (usually `stm.gate()`).
    pub fn new(gate: Arc<dyn Gate>) -> Self {
        GateClock { gate }
    }
}

impl ServeClock for GateClock {
    fn now(&self, thread: ThreadId) -> u64 {
        self.gate.thread_time(thread)
    }

    fn wait_until(&self, thread: ThreadId, at: u64) {
        loop {
            let now = self.gate.thread_time(thread);
            if now >= at {
                return;
            }
            self.gate.pass(thread, (at - now).min(WAIT_CHUNK));
        }
    }
}

/// [`ServeClock`] over wall time for native runs: ticks are
/// `elapsed_nanos / nanos_per_tick` since construction, shared by all
/// threads.
pub struct WallClock {
    epoch: Instant,
    nanos_per_tick: u64,
}

impl WallClock {
    /// A clock where one tick is `nanos_per_tick` wall nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `nanos_per_tick` is zero.
    pub fn new(nanos_per_tick: u64) -> Self {
        assert!(nanos_per_tick > 0, "a tick must span at least one nanosecond");
        WallClock { epoch: Instant::now(), nanos_per_tick }
    }
}

impl ServeClock for WallClock {
    fn now(&self, _thread: ThreadId) -> u64 {
        (self.epoch.elapsed().as_nanos() as u64) / self.nanos_per_tick
    }

    fn wait_until(&self, thread: ThreadId, at: u64) {
        while self.now(thread) < at {
            std::thread::yield_now();
        }
    }
}

/// Per-thread request accounting: the sojourn histogram plus completion
/// and shed counters. Lock-free so `stats()` can read while (in principle)
/// workers still hold clones.
#[derive(Debug, Default)]
pub struct ThreadLog {
    /// Sojourn-latency histogram (ticks), all served requests.
    pub sojourn: LogHistogram,
    /// Sojourn-latency histogram (ticks) for read-only requests alone
    /// (`Get`/`Scan`/`GetMany`), so the MVCC study can report the read
    /// path's tail separately from the update path's.
    pub sojourn_ro: LogHistogram,
    /// Requests served to completion.
    pub done: AtomicU64,
    /// Read-only requests served to completion.
    pub done_ro: AtomicU64,
    /// Requests shed by backpressure.
    pub shed: AtomicU64,
}

/// Replays one thread's schedule against the store: the core serve loop.
///
/// Open-loop semantics: if the next request's arrival is in the future the
/// thread waits for it; if the backlog of *due* requests exceeds
/// `max_queue_depth` the oldest due request is shed. Every served request
/// runs as one STM transaction at its kind's site, and its sojourn
/// (completion − arrival) is recorded.
///
/// After each served request commits, the backend's durability hook runs
/// with the engine's commit sequence number — *after* `stm.run` returned,
/// so logging never extends a lock hold. The backend flushes once the
/// schedule drains.
pub fn serve_schedule(
    stm: &Stm,
    thread: ThreadId,
    backend: &dyn StoreBackend,
    schedule: &[ScheduledRequest],
    clock: &dyn ServeClock,
    spec: &ServeSpec,
    log: &ThreadLog,
) {
    let (work, max_queue_depth) = (spec.work, spec.max_queue_depth);
    let store = backend.store();
    let mut i = 0;
    while i < schedule.len() {
        let sr = &schedule[i];
        let now = clock.now(thread);
        if sr.at > now {
            clock.wait_until(thread, sr.at);
        } else {
            // Backlog = requests already due. The schedule is sorted, so a
            // partition point from the cursor counts them.
            let due = schedule[i..].partition_point(|s| s.at <= now);
            if due > max_queue_depth {
                log.shed.fetch_add(1, Ordering::Relaxed);
                i += 1;
                continue;
            }
        }
        let req = sr.req;
        let read_only = req.txn_kind() == TxnKind::ReadOnly;
        if read_only {
            // Read-only intent is declared up front: under `ReadMode::Latest`
            // this is the legacy validated read path with the write
            // capability removed (same gate crossings, same outcome — the
            // Latest goldens hold); under `ReadMode::Snapshot` the engine
            // serves the request from the version rings at a frozen
            // timestamp, with zero validation and zero aborts.
            stm.run_read_only(thread, req.site(), |tx| {
                tx.work(work);
                store.apply(tx, &req)
            });
            if spec.read_mode == ReadMode::Snapshot {
                backend.on_snapshot_read(&req);
            }
        } else {
            stm.run(thread, req.site(), |tx| {
                tx.work(work);
                store.apply(tx, &req)
            });
        }
        // Snapshot read-only transactions still claim a commit sequence
        // number, so durable backends log them too — skipping them would
        // leave gaps that truncate the recoverable prefix.
        backend.on_commit(stm.last_commit_seq(thread), &req);
        let sojourn = clock.now(thread).saturating_sub(sr.at);
        log.sojourn.record(sojourn);
        log.done.fetch_add(1, Ordering::Relaxed);
        if read_only {
            log.sojourn_ro.record(sojourn);
            log.done_ro.fetch_add(1, Ordering::Relaxed);
        }
        i += 1;
    }
    backend.flush();
}

/// One instantiated serve run: the populated store, the per-thread
/// schedules, and the per-thread logs.
pub struct ServeRun {
    spec: ServeSpec,
    backend: Arc<dyn StoreBackend>,
    schedules: Vec<Arc<Vec<ScheduledRequest>>>,
    logs: Vec<Arc<ThreadLog>>,
}

impl ServeRun {
    /// Builds the store (behind the spec's backend) and materializes every
    /// thread's schedule. A durable spec gets an in-memory WAL here — the
    /// deterministic simulator disk; native runs that want real files use
    /// [`run_native`], which builds the backend itself.
    pub fn new(spec: ServeSpec, threads: usize, seed: u64) -> Self {
        let store = build_store(&spec);
        let backend: Arc<dyn StoreBackend> = match spec.backend {
            BackendKind::Ephemeral => Arc::new(EphemeralBackend::new(store)),
            BackendKind::Durable => Arc::new(DurableBackend::in_memory(store, WalConfig::new()).0),
        };
        Self::with_backend(spec, backend, threads, seed)
    }

    /// Builds a run over a caller-supplied backend (recovery experiments
    /// arm kill switches and hold the disk devices themselves).
    pub fn with_backend(
        spec: ServeSpec,
        backend: Arc<dyn StoreBackend>,
        threads: usize,
        seed: u64,
    ) -> Self {
        assert!(
            spec.mode == ServeMode::Interleaved,
            "ServeMode::Block is native-only: the block executor runs OS worker threads, \
             which the simulator's virtual cores cannot host — use run_native"
        );
        let traffic = spec.traffic();
        ServeRun {
            backend,
            schedules: (0..threads)
                .map(|t| Arc::new(generate_schedule(&traffic, seed, t)))
                .collect(),
            logs: (0..threads).map(|_| Arc::new(ThreadLog::default())).collect(),
            spec,
        }
    }

    /// The backend this run serves from.
    pub fn backend(&self) -> &Arc<dyn StoreBackend> {
        &self.backend
    }

    /// Merged sojourn histogram across threads.
    pub fn sojourn_snapshot(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::empty();
        for log in &self.logs {
            merged.merge(&log.sojourn.snapshot());
        }
        merged
    }

    /// Merged read-only sojourn histogram across threads.
    pub fn sojourn_ro_snapshot(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::empty();
        for log in &self.logs {
            merged.merge(&log.sojourn_ro.snapshot());
        }
        merged
    }

    /// Total requests served / shed across threads.
    pub fn totals(&self) -> (u64, u64) {
        let done = self.logs.iter().map(|l| l.done.load(Ordering::Relaxed)).sum();
        let shed = self.logs.iter().map(|l| l.shed.load(Ordering::Relaxed)).sum();
        (done, shed)
    }

    /// Total read-only requests served across threads.
    pub fn total_read_only(&self) -> u64 {
        self.logs.iter().map(|l| l.done_ro.load(Ordering::Relaxed)).sum()
    }

    fn check_conservation(&self) -> Result<(), String> {
        let got = self.backend.store().total_balance_unlogged();
        let want = self.backend.store().expected_total();
        gstm_check::check_conserved_total(got, want)
            .map_err(|v| format!("{v}: transfers lost atomicity"))
    }
}

impl WorkloadRun for ServeRun {
    fn worker(&self, env: WorkerEnv) -> Box<dyn FnOnce() + Send> {
        let t = env.thread.index();
        let backend = Arc::clone(&self.backend);
        let schedule = Arc::clone(&self.schedules[t]);
        let log = Arc::clone(&self.logs[t]);
        let spec = self.spec.clone();
        Box::new(move || {
            let clock = GateClock::new(Arc::clone(env.stm.gate()));
            serve_schedule(&env.stm, env.thread, backend.as_ref(), &schedule, &clock, &spec, &log);
        })
    }

    fn verify(&self) -> Result<(), String> {
        self.check_conservation()?;
        let (done, shed) = self.totals();
        let offered: u64 = self.schedules.iter().map(|s| s.len() as u64).sum();
        if done + shed != offered {
            return Err(format!("served {done} + shed {shed} != offered {offered}"));
        }
        Ok(())
    }

    fn stats(&self) -> Vec<(String, f64)> {
        let s = self.sojourn_snapshot();
        let ro = self.sojourn_ro_snapshot();
        let (done, shed) = self.totals();
        // Kind-split keys are appended after the legacy block so renderers
        // and tests that address stats by name see an unchanged prefix.
        vec![
            ("req_done".into(), done as f64),
            ("req_shed".into(), shed as f64),
            ("sojourn_mean".into(), s.mean()),
            ("sojourn_p50".into(), s.p(0.50)),
            ("sojourn_p95".into(), s.p(0.95)),
            ("sojourn_p99".into(), s.p(0.99)),
            ("req_done_ro".into(), self.total_read_only() as f64),
            ("sojourn_ro_mean".into(), ro.mean()),
            ("sojourn_ro_p50".into(), ro.p(0.50)),
            ("sojourn_ro_p95".into(), ro.p(0.95)),
            ("sojourn_ro_p99".into(), ro.p(0.99)),
        ]
    }
}

/// The serve workload, pluggable into `gstm-guide`'s harness, training
/// loop, and the experiment pipeline.
#[derive(Clone, Debug)]
pub struct ServeWorkload {
    /// The configuration every run of this workload uses.
    pub spec: ServeSpec,
}

impl ServeWorkload {
    /// Wraps a spec.
    pub fn new(spec: ServeSpec) -> Self {
        ServeWorkload { spec }
    }
}

impl Workload for ServeWorkload {
    fn name(&self) -> &'static str {
        "serve"
    }

    fn instantiate(&self, threads: usize, seed: u64) -> Box<dyn WorkloadRun> {
        Box::new(ServeRun::new(self.spec.clone(), threads, seed))
    }

    fn stm_config(&self, threads: usize) -> StmConfig {
        spine_config(&self.spec, threads)
    }
}

/// The engine configuration a spec's spine mode implies. `Global` is the
/// untouched default (`fetch_add` clock, one lock-table partition) so sim
/// outcomes at default specs stay byte-identical; `PerShard` gives the
/// engine one padded lock-table partition per store shard and the
/// skip-ahead clock.
pub fn spine_config(spec: &ServeSpec, threads: usize) -> StmConfig {
    let mut cfg = match spec.spine {
        SpineMode::Global => StmConfig::new(threads),
        SpineMode::PerShard => StmConfig::builder(threads)
            .table_shards(spec.shards.clamp(1, 64) as u32)
            .clock_strategy(ClockStrategy::SkipAhead)
            .build(),
    };
    cfg.read_mode = spec.read_mode;
    cfg
}

/// The store a spec implies: placement-tagged shards under `PerShard` (so
/// each shard's buckets hash into their own lock-table partition),
/// untagged otherwise.
fn build_store(spec: &ServeSpec) -> ShardedStore {
    ShardedStore::with_placement(
        spec.shards,
        spec.buckets_per_shard,
        spec.keys,
        spec.spine == SpineMode::PerShard,
    )
}

/// Derives a placement [`TouchMap`] (threads × shards) from the
/// pre-materialized schedules: each single-key request touches its key's
/// shard, a transfer touches both endpoints' shards, and a scan touches
/// every shard its range crosses. Schedules are pure functions of
/// `(spec, seed, thread)`, so the plan is known before any worker starts —
/// no warm-up pass needed.
fn schedule_touch_map(spec: &ServeSpec, schedules: &[Arc<Vec<ScheduledRequest>>]) -> TouchMap {
    let shards = spec.shards.max(1) as u64;
    let mut map = TouchMap::new(schedules.len(), shards as usize);
    for (t, schedule) in schedules.iter().enumerate() {
        let thread = ThreadId::new(t as u16);
        for sr in schedule.iter() {
            match sr.req {
                Request::Get { key } | Request::Put { key, .. } | Request::Cas { key, .. } => {
                    map.record(thread, (key % shards) as usize, 1)
                }
                Request::Transfer { from, to, .. } => {
                    map.record(thread, (from % shards) as usize, 1);
                    map.record(thread, (to % shards) as usize, 1);
                }
                Request::Scan { start, len } => {
                    for i in 0..len.min(shards) {
                        map.record(thread, ((start + i) % shards) as usize, 1);
                    }
                }
                Request::GetMany { start, stride, count } => {
                    let stride = stride.max(1);
                    for i in 0..count.min(shards) {
                        map.record(thread, ((start + i * stride) % shards) as usize, 1);
                    }
                }
            }
        }
    }
    map
}

/// Convenience: one simulated serve run under `opts`, via the guide
/// harness (`SimMachine` + `SimGate`), returning the standard outcome. The
/// sojourn quantiles are in `workload_stats`.
pub fn run_simulated(spec: &ServeSpec, opts: &RunOptions) -> RunOutcome {
    gstm_guide::run_workload(&ServeWorkload::new(spec.clone()), opts)
}

/// Outcome of a native (`RealGate`) serve run.
#[derive(Clone, Debug)]
pub struct NativeReport {
    /// Requests served to completion.
    pub done: u64,
    /// Read-only requests served to completion.
    pub done_ro: u64,
    /// Requests shed by backpressure.
    pub shed: u64,
    /// Merged sojourn histogram (ticks of `nanos_per_tick` each).
    pub sojourn: HistogramSnapshot,
    /// Merged sojourn histogram for read-only requests alone.
    pub sojourn_ro: HistogramSnapshot,
    /// Wall time of the whole run, in clock ticks.
    pub elapsed_ticks: u64,
    /// The engine's multi-version read-path counters (all zero under
    /// [`ReadMode::Latest`]).
    pub mvcc: MvccStats,
    /// Per-site commit/abort tallies, keyed by participant. The bench uses
    /// the read-only sites' abort counts to prove the snapshot path's
    /// zero-abort claim.
    pub sites: BTreeMap<Participant, SiteStats>,
    /// Block-mode extras: the run's output/state digests (for the
    /// schedule-invariance oracle) and the executor's counters. `None`
    /// under [`ServeMode::Interleaved`].
    pub block: Option<crate::block_mode::BlockModeReport>,
}

impl NativeReport {
    /// Total aborts across the read-only request sites (`Get` = 0,
    /// `Scan` = 4, `GetMany` = 5). Zero under `ReadMode::Snapshot` by
    /// construction; nonzero under contention on the validated path.
    pub fn read_only_aborts(&self) -> u64 {
        self.sites
            .iter()
            .filter(|(who, _)| matches!(who.tx.raw(), 0 | 4 | 5))
            .map(|(_, s)| s.aborts)
            .sum()
    }
}

/// Runs the service natively: OS threads, [`RealGate`], wall-clock
/// arrivals. Same store, same schedules, same loop as the simulated path —
/// only the gate and clock differ. `nanos_per_tick` maps schedule ticks to
/// wall time; `yield_every` is forwarded to [`RealGate`]. A durable spec
/// writes its WAL to real files under a per-run temp directory (removed on
/// success — native runs measure overhead, they don't archive logs).
///
/// # Panics
///
/// Panics if a worker thread panics, if `threads` is zero, or if the
/// post-run conservation check fails.
pub fn run_native(
    spec: &ServeSpec,
    threads: usize,
    seed: u64,
    nanos_per_tick: u64,
    yield_every: u32,
) -> NativeReport {
    assert!(threads > 0, "need at least one serve thread");
    let store = build_store(spec);
    let mut wal_dir = None;
    let backend: Arc<dyn StoreBackend> = match spec.backend {
        BackendKind::Ephemeral => Arc::new(EphemeralBackend::new(store)),
        BackendKind::Durable => {
            let dir =
                std::env::temp_dir().join(format!("gstm-serve-wal-{}-{seed}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("create WAL dir");
            let log: Arc<dyn LogDevice> = Arc::new(FileDevice::new(dir.join("wal.log")));
            let snap: Arc<dyn LogDevice> = Arc::new(FileDevice::new(dir.join("wal.snap")));
            wal_dir = Some(dir);
            Arc::new(DurableBackend::new(store, Wal::new(WalConfig::new(), log, snap)))
        }
    };
    if let ServeMode::Block { block_size } = spec.mode {
        // Ordered block execution replaces the per-thread worker loop
        // entirely; it shares the store, schedules, backend and clock
        // mapping, so its report is comparable cell-for-cell.
        let report = crate::block_mode::run_native_block(
            spec,
            block_size,
            threads,
            seed,
            nanos_per_tick,
            yield_every,
            backend,
        );
        if let Some(dir) = wal_dir {
            let _ = std::fs::remove_dir_all(&dir);
        }
        return report;
    }
    let run = ServeRun::with_backend(spec.clone(), backend, threads, seed);
    // Under the per-shard spine, home each worker thread on the core
    // nearest the shard partition its schedule touches most. On a host
    // with fewer than two cores the plan is a no-op, and without an OS
    // affinity binding pinning itself is best-effort — the gate still
    // counts attempts so the bench can report what happened.
    let gate = match spec.spine {
        SpineMode::Global => RealGate::new(yield_every),
        SpineMode::PerShard => {
            let touches = schedule_touch_map(spec, &run.schedules);
            RealGate::with_placement(yield_every, Placement::plan(&touches, available_cores()))
        }
    };
    // Same engine defaults as `Stm::new_on` (AdmitAll, Aggressive), plus a
    // per-site stats sink: lifecycle events are recorded unconditionally,
    // so the bench gets commit/abort tallies per request site — including
    // the read-only sites' abort count — without `check_events` overhead.
    let sink = Arc::new(SiteStatsSink::new());
    let stm = Arc::new(Stm::with_parts(
        spine_config(spec, threads),
        Arc::new(gate),
        Arc::clone(&sink) as Arc<dyn gstm_core::EventSink>,
        Arc::new(AdmitAll),
        Arc::new(Aggressive),
    ));
    let clock = WallClock::new(nanos_per_tick);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let stm = Arc::clone(&stm);
                let thread = ThreadId::new(t as u16);
                let backend = Arc::clone(&run.backend);
                let schedule = Arc::clone(&run.schedules[t]);
                let log = Arc::clone(&run.logs[t]);
                let clock = &clock;
                scope.spawn(move || {
                    serve_schedule(&stm, thread, backend.as_ref(), &schedule, clock, spec, &log);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("serve worker panicked");
        }
    });
    if let Some(dir) = wal_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }
    if let Err(msg) = run.verify() {
        panic!("native serve run failed verification: {msg}");
    }
    let (done, shed) = run.totals();
    NativeReport {
        done,
        done_ro: run.total_read_only(),
        shed,
        sojourn: run.sojourn_snapshot(),
        sojourn_ro: run.sojourn_ro_snapshot(),
        elapsed_ticks: clock.now(ThreadId::new(0)),
        mvcc: stm.mvcc_stats(),
        sites: sink.snapshot(),
        block: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_guide::PolicyChoice;

    fn tiny_spec() -> ServeSpec {
        let mut spec = ServeSpec::hot(120);
        spec.arrival = Arrival::Poisson { mean_gap: 120.0 };
        spec
    }

    #[test]
    fn simulated_run_serves_and_conserves() {
        let out = run_simulated(&tiny_spec(), &RunOptions::new(3, 5));
        let stats: std::collections::HashMap<_, _> = out.workload_stats.iter().cloned().collect();
        let done = stats["req_done"];
        let shed = stats["req_shed"];
        assert_eq!(done + shed, 3.0 * 120.0, "every request served or shed");
        assert!(done > 0.0);
        assert!(stats["sojourn_p99"] >= stats["sojourn_p50"]);
        assert!(out.total_commits() >= done as u64, "each served request commits once");
    }

    #[test]
    fn simulated_runs_are_deterministic_per_seed() {
        let spec = tiny_spec();
        let a = run_simulated(&spec, &RunOptions::new(2, 9));
        let b = run_simulated(&spec, &RunOptions::new(2, 9));
        assert_eq!(a.workload_stats, b.workload_stats);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.commits, b.commits);
        let c = run_simulated(&spec, &RunOptions::new(2, 10));
        assert_ne!(
            (a.makespan, a.workload_stats.clone()),
            (c.makespan, c.workload_stats.clone()),
            "different seed should perturb the run"
        );
    }

    #[test]
    fn durable_backend_serves_identical_traffic() {
        let spec = tiny_spec();
        let a = run_simulated(&spec, &RunOptions::new(2, 9));
        let b = run_simulated(
            &spec.clone().with_backend(crate::backend::BackendKind::Durable),
            &RunOptions::new(2, 9),
        );
        // Logging is off the gate path: the durable run serves the same
        // schedule with the same virtual-time outcome.
        assert_eq!(a.workload_stats, b.workload_stats);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn guided_policy_runs_the_service() {
        let spec = tiny_spec();
        let workload = ServeWorkload::new(spec.clone());
        let trained = gstm_guide::train(&workload, &RunOptions::new(2, 0), &[21, 22], 1.0);
        let out = run_simulated(
            &spec,
            &RunOptions::new(2, 5).with_policy(PolicyChoice::guided(trained.model)),
        );
        let stats: std::collections::HashMap<_, _> = out.workload_stats.iter().cloned().collect();
        assert!(stats["req_done"] > 0.0, "guided service still serves requests");
    }

    #[test]
    fn overload_sheds_but_never_loses_requests() {
        let mut spec = tiny_spec();
        // Offered load far beyond service rate: gaps ~0 force a backlog.
        spec.arrival = Arrival::Poisson { mean_gap: 1.0 };
        spec.max_queue_depth = 4;
        let out = run_simulated(&spec, &RunOptions::new(2, 3));
        let stats: std::collections::HashMap<_, _> = out.workload_stats.iter().cloned().collect();
        assert!(stats["req_shed"] > 0.0, "overload must shed");
        assert_eq!(stats["req_done"] + stats["req_shed"], 2.0 * 120.0);
    }

    #[test]
    fn cache_key_tracks_spec_changes() {
        let a = ServeSpec::hot(100);
        assert_eq!(a.cache_key(), ServeSpec::hot(100).cache_key());
        assert_ne!(a.cache_key(), ServeSpec::hot(101).cache_key());
        assert_ne!(a.cache_key(), ServeSpec::wide(100).cache_key());
        assert_ne!(
            a.cache_key(),
            ServeSpec::hot(100)
                .with_arrival(Arrival::Bursty { mean_gap: 220.0, burst: 8 })
                .cache_key()
        );
    }

    #[test]
    fn default_spec_cache_key_has_no_spine_suffix() {
        // Pre-spine cached artifacts stay addressable: the default key is
        // the exact pre-knob string, and only PerShard extends it.
        let key = ServeSpec::hot(100).cache_key();
        assert!(!key.contains("spine"), "default key must be unchanged: {key}");
        let sharded = ServeSpec::hot(100).with_spine(SpineMode::PerShard).cache_key();
        assert!(sharded.ends_with(";spine=pershard"), "unexpected key: {sharded}");
        assert_ne!(key, sharded);
    }

    #[test]
    fn per_shard_spine_serves_and_conserves_in_sim() {
        let spec = tiny_spec().with_spine(SpineMode::PerShard);
        let cfg = spine_config(&spec, 3);
        assert_eq!(cfg.table_shards, 2, "hot spec has two shards");
        assert_eq!(cfg.clock, ClockStrategy::SkipAhead);
        let out = run_simulated(&spec, &RunOptions::new(3, 5));
        let stats: std::collections::HashMap<_, _> = out.workload_stats.iter().cloned().collect();
        assert_eq!(stats["req_done"] + stats["req_shed"], 3.0 * 120.0);
        assert!(stats["req_done"] > 0.0);
    }

    #[test]
    fn schedule_touch_map_routes_threads_to_their_shards() {
        let spec = tiny_spec();
        let schedules: Vec<Arc<Vec<ScheduledRequest>>> = vec![
            Arc::new(vec![
                ScheduledRequest { at: 0, req: Request::Get { key: 4 } },
                ScheduledRequest { at: 1, req: Request::Put { key: 6, blob: 0 } },
                ScheduledRequest { at: 2, req: Request::Transfer { from: 2, to: 3, amount: 1 } },
            ]),
            Arc::new(vec![ScheduledRequest { at: 0, req: Request::Scan { start: 1, len: 1 } }]),
        ];
        let map = schedule_touch_map(&spec, &schedules);
        // Thread 0: keys 4, 6, 2 are shard 0; transfer also touches shard 1.
        assert_eq!(map.get(ThreadId::new(0), 0), 3);
        assert_eq!(map.get(ThreadId::new(0), 1), 1);
        assert_eq!(map.home_slot(ThreadId::new(0)), Some(0));
        assert_eq!(map.home_slot(ThreadId::new(1)), Some(1));
    }

    #[test]
    fn default_spec_cache_key_is_unchanged_by_mix_widening_and_read_mode() {
        // Pre-GetMany cached artifacts stay addressable: the sixth (zero)
        // mix weight is trimmed out of the rendered key, and only a
        // non-default read mode extends it.
        let key = ServeSpec::hot(100).cache_key();
        assert!(key.contains("mix=[20, 10, 10, 55, 5];"), "unexpected key: {key}");
        assert!(!key.contains("rm="), "default key must be unchanged: {key}");
        let snap = ServeSpec::hot(100).with_read_mode(ReadMode::Snapshot).cache_key();
        assert!(snap.ends_with(";rm=snapshot"), "unexpected key: {snap}");
        assert_ne!(key, snap);
        let mvcc = ServeSpec::wide(100).with_mix(Mix::mvcc_read()).cache_key();
        assert!(mvcc.contains("mix=[50, 10, 5, 5, 15, 15];"), "unexpected key: {mvcc}");
    }

    #[test]
    fn default_spec_cache_key_has_no_drift_suffix() {
        // Stationary cached artifacts stay addressable: only a drifting
        // spec extends the key, with the same append-only discipline as
        // the spine and read-mode knobs.
        let key = ServeSpec::hot(100).cache_key();
        assert!(!key.contains("drift"), "default key must be unchanged: {key}");
        let drifting = ServeSpec::hot(100)
            .with_drift(Drift { theta_end: 0.2, phases: 4, hotspot_step: 8 })
            .cache_key();
        assert!(drifting.ends_with(";drift=(te=0.2,ph=4,hs=8)"), "unexpected key: {drifting}");
        assert_ne!(key, drifting);
        assert_ne!(
            drifting,
            ServeSpec::hot(100)
                .with_drift(Drift { theta_end: 0.2, phases: 8, hotspot_step: 8 })
                .cache_key(),
            "every drift knob must feed the key"
        );
    }

    #[test]
    fn drifting_sim_runs_serve_conserve_and_stay_deterministic() {
        let spec = tiny_spec().with_drift(Drift { theta_end: 0.3, phases: 4, hotspot_step: 8 });
        let a = run_simulated(&spec, &RunOptions::new(3, 5));
        let stats: std::collections::HashMap<_, _> = a.workload_stats.iter().cloned().collect();
        assert_eq!(stats["req_done"] + stats["req_shed"], 3.0 * 120.0);
        assert!(stats["req_done"] > 0.0);
        let b = run_simulated(&spec, &RunOptions::new(3, 5));
        assert_eq!(a.workload_stats, b.workload_stats, "drift is deterministic per seed");
        assert_eq!(a.makespan, b.makespan);
        let stationary = run_simulated(&tiny_spec(), &RunOptions::new(3, 5));
        assert_ne!(
            a.workload_stats, stationary.workload_stats,
            "drift must actually change the served traffic"
        );
    }

    #[test]
    fn snapshot_mode_serves_conserves_and_is_deterministic() {
        let spec = tiny_spec().with_read_mode(ReadMode::Snapshot);
        let a = run_simulated(&spec, &RunOptions::new(3, 5));
        let stats: std::collections::HashMap<_, _> = a.workload_stats.iter().cloned().collect();
        assert_eq!(stats["req_done"] + stats["req_shed"], 3.0 * 120.0);
        assert!(stats["req_done_ro"] > 0.0, "hot mix still has gets and scans");
        assert!(stats["sojourn_ro_p99"] <= stats["sojourn_p99"] * 10.0, "ro tail is sane");
        let b = run_simulated(&spec, &RunOptions::new(3, 5));
        assert_eq!(a.workload_stats, b.workload_stats);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn snapshot_reads_hit_the_backend_hook() {
        let mut spec = tiny_spec().with_read_mode(ReadMode::Snapshot);
        spec.max_queue_depth = 100_000; // serve everything, shed nothing
        let eph = Arc::new(EphemeralBackend::new(build_store(&spec)));
        let run =
            ServeRun::with_backend(spec.clone(), Arc::clone(&eph) as Arc<dyn StoreBackend>, 2, 13);
        let stm = Stm::new_on(spine_config(&spec, 2), Arc::new(RealGate::new(64)));
        let clock = WallClock::new(1);
        for t in 0..2usize {
            serve_schedule(
                &stm,
                ThreadId::new(t as u16),
                eph.as_ref(),
                &run.schedules[t],
                &clock,
                &spec,
                &run.logs[t],
            );
        }
        run.verify().expect("snapshot run conserves");
        let ro = run.total_read_only();
        assert!(ro > 0);
        assert_eq!(eph.snapshot_reads(), ro, "every served RO request hit the hook once");
        assert_eq!(stm.mvcc_stats().snapshot_txns, ro, "every RO request ran as a snapshot txn");
        assert_eq!(run.sojourn_ro_snapshot().count(), ro);
    }

    #[test]
    fn native_snapshot_run_has_zero_read_only_aborts() {
        let mut spec =
            ServeSpec::hot(150).with_read_mode(ReadMode::Snapshot).with_mix(Mix::mvcc_read());
        spec.arrival = Arrival::Poisson { mean_gap: 60.0 };
        let report = run_native(&spec, 3, 11, 50, 64);
        assert!(report.done_ro > 0);
        assert_eq!(report.read_only_aborts(), 0, "snapshot reads never abort");
        assert_eq!(report.mvcc.snapshot_txns, report.done_ro);
        assert!(report.mvcc.snapshot_reads >= report.mvcc.snapshot_txns);
        assert_eq!(report.sojourn_ro.count(), report.done_ro);
        // Latest mode on the same spec keeps the MVCC machinery dormant.
        let latest = run_native(&spec.clone().with_read_mode(ReadMode::Latest), 3, 11, 50, 64);
        assert_eq!(latest.mvcc, MvccStats::default());
        assert!(latest.done_ro > 0);
    }

    #[test]
    fn durable_snapshot_mode_keeps_the_wal_contiguous_and_recoverable() {
        // Snapshot read-only transactions still claim commit sequence
        // numbers; the serve loop must log them through `on_commit` or the
        // recoverable prefix truncates at the first read's seq.
        let mut spec = tiny_spec().with_read_mode(ReadMode::Snapshot);
        spec.backend = crate::backend::BackendKind::Durable;
        spec.max_queue_depth = 100_000;
        let (backend, log_dev, snap_dev) = crate::backend::DurableBackend::in_memory(
            build_store(&spec),
            gstm_wal::WalConfig::new(),
        );
        let backend = Arc::new(backend);
        let run = ServeRun::with_backend(
            spec.clone(),
            Arc::clone(&backend) as Arc<dyn StoreBackend>,
            2,
            21,
        );
        let stm = Stm::new_on(spine_config(&spec, 2), Arc::new(RealGate::new(64)));
        let clock = WallClock::new(1);
        for t in 0..2usize {
            serve_schedule(
                &stm,
                ThreadId::new(t as u16),
                backend.as_ref(),
                &run.schedules[t],
                &clock,
                &spec,
                &run.logs[t],
            );
        }
        run.verify().expect("durable snapshot run conserves");
        assert!(run.total_read_only() > 0, "the mix served read-only requests");
        let last_seq = backend.ledger().last().expect("ledger is non-empty").0;
        let rec = crate::backend::recover_store(
            spec.shards,
            spec.buckets_per_shard,
            spec.keys,
            &log_dev.contents(),
            &snap_dev.contents(),
        )
        .expect("disk image recovers");
        assert_eq!(rec.recovered_seq, last_seq, "no gap truncated the recoverable prefix");
        assert_eq!(
            crate::backend::store_digest(&rec.store),
            crate::backend::store_digest(backend.store()),
            "recovered state matches the live store"
        );
    }

    #[test]
    fn wall_clock_advances_and_waits() {
        let clock = WallClock::new(1_000);
        let t0 = ThreadId::new(0);
        let start = clock.now(t0);
        clock.wait_until(t0, start + 50);
        assert!(clock.now(t0) >= start + 50);
    }
}
