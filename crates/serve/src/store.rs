//! The sharded transactional store and its typed request API.
//!
//! The store is a fixed keyspace `0..keys` partitioned round-robin over
//! `shards` independent [`THashMap`]s (`shard = key % shards`), each with
//! its own bucket array — two levels of conflict granularity: requests to
//! different shards never share a `TVar`; requests to the same shard
//! conflict only when they hash to the same bucket. Every request executes
//! as **one STM transaction** via [`ShardedStore::apply`], so multi-key
//! operations ([`Request::Transfer`], [`Request::Scan`]) are atomic across
//! shards for free — that is the point of layering a service on the STM
//! rather than on per-shard locks.
//!
//! Each key holds an [`Entry`] with two independent faces:
//!
//! * `balance` — mutated only by `Transfer` (conserved: the sum over all
//!   keys is a run invariant the harness verifies);
//! * `blob` — mutated by `Put`/`Cas` (arbitrary, unconstrained).
//!
//! Keeping the faces separate lets the workload mix write-heavy traffic
//! with a machine-checkable invariant.

use gstm_collections::THashMap;
use gstm_core::{Abort, TxId, Txn, TxnKind};

/// Every key starts with this balance; `Transfer`s conserve the total.
pub const INITIAL_BALANCE: i64 = 100;

/// Hard cap on [`Request::Scan`] length, whatever the spec asks for.
pub const MAX_SCAN_LEN: u64 = 64;

/// One stored object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Conserved face: only `Transfer` moves it.
    pub balance: i64,
    /// Free face: `Put` overwrites, `Cas` compare-and-swaps.
    pub blob: u64,
}

impl Entry {
    fn fresh() -> Self {
        Entry { balance: INITIAL_BALANCE, blob: 0 }
    }
}

/// A typed store request. Each variant is one atomic operation — and one
/// static transaction site ([`Request::site`]), so the thread-state
/// automaton model sees `Get` and `Transfer` as distinct atomic blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Read one entry.
    Get {
        /// Key to read.
        key: u64,
    },
    /// Overwrite one entry's blob.
    Put {
        /// Key to write.
        key: u64,
        /// New blob value.
        blob: u64,
    },
    /// Compare-and-swap one entry's blob.
    Cas {
        /// Key to update.
        key: u64,
        /// Expected current blob.
        expect: u64,
        /// Replacement blob if the expectation holds.
        update: u64,
    },
    /// Atomically move balance between two keys (possibly cross-shard).
    Transfer {
        /// Debited key.
        from: u64,
        /// Credited key.
        to: u64,
        /// Amount moved.
        amount: i64,
    },
    /// Bounded atomic range scan: sums balances over `len` consecutive
    /// keys (wrapping around the keyspace).
    Scan {
        /// First key of the range.
        start: u64,
        /// Range length (clamped to [`MAX_SCAN_LEN`]).
        len: u64,
    },
    /// Bounded atomic multi-key read: `count` strided keys starting at
    /// `start` (wrapping around the keyspace). Unlike [`Request::Scan`]
    /// the keys are not consecutive, so a `GetMany` crosses shards even
    /// when a scan of the same length would not.
    GetMany {
        /// First key of the stride walk.
        start: u64,
        /// Distance between consecutive keys (0 is treated as 1).
        stride: u64,
        /// Keys to read (clamped to [`MAX_SCAN_LEN`]).
        count: u64,
    },
}

impl Request {
    /// Builds a [`Request::Get`].
    pub fn get(key: u64) -> Self {
        Request::Get { key }
    }

    /// Builds a [`Request::Put`].
    pub fn put(key: u64, blob: u64) -> Self {
        Request::Put { key, blob }
    }

    /// Builds a [`Request::Cas`].
    pub fn cas(key: u64, expect: u64, update: u64) -> Self {
        Request::Cas { key, expect, update }
    }

    /// Builds a [`Request::Transfer`].
    pub fn transfer(from: u64, to: u64, amount: i64) -> Self {
        Request::Transfer { from, to, amount }
    }

    /// Builds a [`Request::Scan`] — a read-only request by construction.
    pub fn scan(start: u64, len: u64) -> Self {
        Request::Scan { start, len }
    }

    /// Builds a [`Request::GetMany`] — a read-only request by construction.
    pub fn get_many(start: u64, stride: u64, count: u64) -> Self {
        Request::GetMany { start, stride, count }
    }

    /// The static transaction site of this request kind (the paper's
    /// `TM_BEGIN(ID)` argument; the model's per-site states key off it).
    pub fn site(&self) -> TxId {
        TxId::new(match self {
            Request::Get { .. } => 0,
            Request::Put { .. } => 1,
            Request::Cas { .. } => 2,
            Request::Transfer { .. } => 3,
            Request::Scan { .. } => 4,
            Request::GetMany { .. } => 5,
        })
    }

    /// Short label of the request kind (metrics, debugging).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Get { .. } => "get",
            Request::Put { .. } => "put",
            Request::Cas { .. } => "cas",
            Request::Transfer { .. } => "transfer",
            Request::Scan { .. } => "scan",
            Request::GetMany { .. } => "get_many",
        }
    }

    /// The transaction kind this request declares: `Get`, `Scan` and
    /// `GetMany` never write, so the service runs them as
    /// [`TxnKind::ReadOnly`] transactions — on a snapshot-mode engine that
    /// is the zero-abort multi-version read path.
    pub fn txn_kind(&self) -> TxnKind {
        match self {
            Request::Get { .. } | Request::Scan { .. } | Request::GetMany { .. } => {
                TxnKind::ReadOnly
            }
            Request::Put { .. } | Request::Cas { .. } | Request::Transfer { .. } => TxnKind::Update,
        }
    }
}

/// A typed response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Response {
    /// `Get`: the entry, if the key exists.
    Value(Option<Entry>),
    /// `Put`: acknowledged.
    Ok,
    /// `Cas`: whether the swap happened.
    Swapped(bool),
    /// `Transfer`: whether both keys existed and the move happened.
    Transferred(bool),
    /// `Scan`: number of keys seen and their balance sum.
    ScanSum {
        /// Keys visited.
        count: u64,
        /// Sum of their balances.
        sum: i64,
    },
    /// `GetMany`: keys found and their balance sum.
    Many {
        /// Keys that existed.
        found: u32,
        /// Sum of their balances.
        sum: i64,
    },
}

/// The sharded in-memory transactional store.
#[derive(Clone)]
pub struct ShardedStore {
    shards: Vec<THashMap<u64, Entry>>,
    keys: u64,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ShardedStore({} shards, {} keys)", self.shards.len(), self.keys)
    }
}

impl ShardedStore {
    /// Builds and populates a store: `keys` entries spread over `shards`
    /// shards of `buckets_per_shard` buckets each, every key funded with
    /// [`INITIAL_BALANCE`]. Population is non-transactional — call before
    /// any worker starts.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(shards: usize, buckets_per_shard: usize, keys: u64) -> Self {
        ShardedStore::with_placement(shards, buckets_per_shard, keys, false)
    }

    /// Like [`ShardedStore::new`], but when `placed` is true every shard's
    /// map carries placement tag `shard index` ([`THashMap::new_placed`]):
    /// on an STM configured with `table_shards == shards`, each store shard
    /// then owns a private lock-table partition (the per-shard commit
    /// spine, DESIGN.md §3.1c). The default untagged store is what the sim
    /// studies run — their `VarId`s, stripe mapping and therefore golden
    /// outcomes are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn with_placement(
        shards: usize,
        buckets_per_shard: usize,
        keys: u64,
        placed: bool,
    ) -> Self {
        assert!(shards > 0 && keys > 0, "store needs at least one shard and one key");
        let store = ShardedStore {
            shards: (0..shards)
                .map(|i| {
                    if placed {
                        THashMap::new_placed(buckets_per_shard, (i % 256) as u8)
                    } else {
                        THashMap::new(buckets_per_shard)
                    }
                })
                .collect(),
            keys,
        };
        for key in 0..keys {
            store.shard_of(key).insert_unlogged(key, Entry::fresh());
        }
        store
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Keyspace size.
    pub fn key_count(&self) -> u64 {
        self.keys
    }

    fn shard_of(&self, key: u64) -> &THashMap<u64, Entry> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    fn read_entry(&self, tx: &mut Txn<'_>, key: u64) -> Result<Option<Entry>, Abort> {
        self.shard_of(key).get(tx, &key)
    }

    fn write_entry(&self, tx: &mut Txn<'_>, key: u64, entry: Entry) -> Result<(), Abort> {
        self.shard_of(key).insert(tx, key, entry).map(|_| ())
    }

    /// Executes one request inside the caller's transaction.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts (the caller's `Stm::run` retries).
    pub fn apply(&self, tx: &mut Txn<'_>, req: &Request) -> Result<Response, Abort> {
        match *req {
            Request::Get { key } => Ok(Response::Value(self.read_entry(tx, key)?)),
            Request::Put { key, blob } => {
                if let Some(mut e) = self.read_entry(tx, key)? {
                    e.blob = blob;
                    self.write_entry(tx, key, e)?;
                }
                Ok(Response::Ok)
            }
            Request::Cas { key, expect, update } => {
                let Some(mut e) = self.read_entry(tx, key)? else {
                    return Ok(Response::Swapped(false));
                };
                if e.blob != expect {
                    return Ok(Response::Swapped(false));
                }
                e.blob = update;
                self.write_entry(tx, key, e)?;
                Ok(Response::Swapped(true))
            }
            Request::Transfer { from, to, amount } => {
                if from == to {
                    return Ok(Response::Transferred(false));
                }
                let (Some(mut f), Some(mut t)) =
                    (self.read_entry(tx, from)?, self.read_entry(tx, to)?)
                else {
                    return Ok(Response::Transferred(false));
                };
                f.balance -= amount;
                t.balance += amount;
                self.write_entry(tx, from, f)?;
                self.write_entry(tx, to, t)?;
                Ok(Response::Transferred(true))
            }
            Request::Scan { start, len } => {
                let len = len.min(MAX_SCAN_LEN).min(self.keys);
                let mut key = start % self.keys;
                let mut sum = 0i64;
                for _ in 0..len {
                    if let Some(e) = self.read_entry(tx, key)? {
                        sum += e.balance;
                    }
                    key = Self::advance(key, 1, self.keys);
                }
                Ok(Response::ScanSum { count: len, sum })
            }
            Request::GetMany { start, stride, count } => {
                let count = count.min(MAX_SCAN_LEN).min(self.keys);
                let stride = stride.max(1) % self.keys;
                let mut key = start % self.keys;
                let (mut found, mut sum) = (0u32, 0i64);
                for _ in 0..count {
                    if let Some(e) = self.read_entry(tx, key)? {
                        found += 1;
                        sum += e.balance;
                    }
                    key = Self::advance(key, stride, self.keys);
                }
                Ok(Response::Many { found, sum })
            }
        }
    }

    /// Applies a block-executor write set inside the caller's transaction:
    /// plain inserts of pre-computed entries, in key order. The block
    /// executor already resolved every read against the block's
    /// multi-version state, so commit only has to publish the final
    /// values — this is what keeps the per-transaction commit cost of
    /// `ServeMode::Block` independent of the request's read footprint.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts (the caller's `Stm::run` retries; under
    /// block mode's single committer this only happens on capacity aborts).
    pub fn apply_writes(&self, tx: &mut Txn<'_>, writes: &[(u64, Entry)]) -> Result<(), Abort> {
        for &(key, entry) in writes {
            self.write_entry(tx, key, entry)?;
        }
        Ok(())
    }

    /// `(key + step) % keys` without the intermediate sum `start + i *
    /// stride` risks: `Request` fields are public and caller-supplied, so
    /// the naive form overflows `u64` for large start/stride — panicking
    /// in debug builds and silently wrapping (onto different keys) in
    /// release. With `key < keys` and `step <= keys` one conditional wrap
    /// is exact.
    #[inline]
    pub(crate) fn advance(key: u64, step: u64, keys: u64) -> u64 {
        debug_assert!(key < keys && step <= keys);
        if step >= keys - key {
            step - (keys - key)
        } else {
            key + step
        }
    }

    /// Rebuilds a store of the given shape directly from recovered
    /// entries, skipping the usual fresh population — the recovery path's
    /// constructor. Non-transactional; call before any worker starts.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn from_entries(
        shards: usize,
        buckets_per_shard: usize,
        keys: u64,
        entries: &[(u64, Entry)],
    ) -> Self {
        assert!(shards > 0 && keys > 0, "store needs at least one shard and one key");
        let store = ShardedStore {
            shards: (0..shards).map(|_| THashMap::new(buckets_per_shard)).collect(),
            keys,
        };
        for &(key, entry) in entries {
            store.shard_of(key).insert_unlogged(key, entry);
        }
        store
    }

    /// Non-transactional dump of every entry, sorted by key — the
    /// canonical representation snapshots and digests are built from.
    pub fn entries_unlogged(&self) -> Vec<(u64, Entry)> {
        let mut all: Vec<(u64, Entry)> =
            self.shards.iter().flat_map(|s| s.snapshot_unlogged()).collect();
        all.sort_by_key(|&(k, _)| k);
        all
    }

    /// Non-transactional balance total (verification/teardown only).
    pub fn total_balance_unlogged(&self) -> i64 {
        self.shards.iter().flat_map(|s| s.snapshot_unlogged()).map(|(_, e)| e.balance).sum()
    }

    /// The total every run must conserve.
    pub fn expected_total(&self) -> i64 {
        INITIAL_BALANCE * self.keys as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_core::{Stm, StmConfig, ThreadId};

    fn with_tx<R>(store: &ShardedStore, f: impl FnMut(&mut Txn<'_>) -> Result<R, Abort>) -> R {
        let stm = Stm::new(StmConfig::new(1));
        let _ = store; // site ids are irrelevant in unit tests
        stm.run(ThreadId::new(0), TxId::new(0), f)
    }

    #[test]
    fn populated_store_conserves_initial_total() {
        let store = ShardedStore::new(4, 8, 100);
        assert_eq!(store.total_balance_unlogged(), store.expected_total());
        assert_eq!(store.key_count(), 100);
        assert_eq!(store.shard_count(), 4);
    }

    #[test]
    fn placed_store_tags_shards_and_behaves_identically() {
        let plain = ShardedStore::new(3, 4, 30);
        let placed = ShardedStore::with_placement(3, 4, 30, true);
        assert_eq!(placed.total_balance_unlogged(), plain.total_balance_unlogged());
        let resp = with_tx(&placed, |tx| {
            placed.apply(tx, &Request::Transfer { from: 0, to: 1, amount: 10 })
        });
        assert_eq!(resp, Response::Transferred(true), "cross-shard transfer still atomic");
        assert_eq!(placed.total_balance_unlogged(), placed.expected_total());
    }

    #[test]
    fn get_put_cas_round_trip() {
        let store = ShardedStore::new(2, 4, 10);
        let resp = with_tx(&store, |tx| store.apply(tx, &Request::Get { key: 3 }));
        assert_eq!(resp, Response::Value(Some(Entry { balance: INITIAL_BALANCE, blob: 0 })));
        with_tx(&store, |tx| store.apply(tx, &Request::Put { key: 3, blob: 9 }));
        let resp =
            with_tx(&store, |tx| store.apply(tx, &Request::Cas { key: 3, expect: 9, update: 11 }));
        assert_eq!(resp, Response::Swapped(true));
        let resp =
            with_tx(&store, |tx| store.apply(tx, &Request::Cas { key: 3, expect: 9, update: 12 }));
        assert_eq!(resp, Response::Swapped(false));
        let resp = with_tx(&store, |tx| store.apply(tx, &Request::Get { key: 999 }));
        assert_eq!(resp, Response::Value(None));
    }

    #[test]
    fn transfer_moves_and_conserves() {
        let store = ShardedStore::new(3, 4, 9);
        let resp = with_tx(&store, |tx| {
            store.apply(tx, &Request::Transfer { from: 1, to: 5, amount: 30 })
        });
        assert_eq!(resp, Response::Transferred(true));
        let resp =
            with_tx(&store, |tx| store.apply(tx, &Request::Transfer { from: 2, to: 2, amount: 5 }));
        assert_eq!(resp, Response::Transferred(false), "self-transfer is a no-op");
        assert_eq!(store.total_balance_unlogged(), store.expected_total());
    }

    #[test]
    fn scan_wraps_and_is_bounded() {
        let store = ShardedStore::new(2, 4, 8);
        let resp = with_tx(&store, |tx| store.apply(tx, &Request::Scan { start: 6, len: 4 }));
        assert_eq!(resp, Response::ScanSum { count: 4, sum: 4 * INITIAL_BALANCE });
        let resp = with_tx(&store, |tx| store.apply(tx, &Request::Scan { start: 0, len: 10_000 }));
        // Clamped to the keyspace (8 < MAX_SCAN_LEN).
        assert_eq!(resp, Response::ScanSum { count: 8, sum: 8 * INITIAL_BALANCE });
    }

    /// Regression (REVIEW: `start + i * stride` overflow): Request fields
    /// are public, so extreme caller-supplied values must reduce modulo
    /// the keyspace instead of overflowing — which panicked in debug
    /// builds and silently walked different keys in release.
    #[test]
    fn scan_and_get_many_survive_extreme_start_and_stride() {
        let store = ShardedStore::new(2, 4, 8);
        let resp =
            with_tx(&store, |tx| store.apply(tx, &Request::Scan { start: u64::MAX, len: 3 }));
        assert_eq!(resp, Response::ScanSum { count: 3, sum: 3 * INITIAL_BALANCE });
        let resp = with_tx(&store, |tx| {
            store.apply(tx, &Request::GetMany { start: u64::MAX, stride: u64::MAX - 3, count: 8 })
        });
        // start ≡ 7, stride ≡ 4 (mod 8): the walk alternates keys 7 and 3,
        // all populated.
        assert_eq!(resp, Response::Many { found: 8, sum: 8 * INITIAL_BALANCE });
    }

    #[test]
    fn request_sites_are_distinct_per_kind() {
        let reqs = [
            Request::get(0),
            Request::put(0, 0),
            Request::cas(0, 0, 0),
            Request::transfer(0, 1, 1),
            Request::scan(0, 1),
            Request::get_many(0, 2, 3),
        ];
        let mut sites: Vec<u16> = reqs.iter().map(|r| r.site().index() as u16).collect();
        sites.dedup();
        assert_eq!(sites.len(), 6, "each kind is its own atomic-block site");
        assert_eq!(reqs[3].kind(), "transfer");
        assert_eq!(reqs[5].kind(), "get_many");
    }

    #[test]
    fn builders_tag_read_only_intent() {
        assert_eq!(Request::get(1).txn_kind(), TxnKind::ReadOnly);
        assert_eq!(Request::scan(0, 4).txn_kind(), TxnKind::ReadOnly);
        assert_eq!(Request::get_many(0, 3, 4).txn_kind(), TxnKind::ReadOnly);
        assert_eq!(Request::put(1, 2).txn_kind(), TxnKind::Update);
        assert_eq!(Request::cas(1, 0, 2).txn_kind(), TxnKind::Update);
        assert_eq!(Request::transfer(0, 1, 5).txn_kind(), TxnKind::Update);
        assert_eq!(Request::get(1), Request::Get { key: 1 });
        assert_eq!(Request::get_many(2, 3, 4), Request::GetMany { start: 2, stride: 3, count: 4 });
    }

    #[test]
    fn apply_writes_publishes_precomputed_entries_atomically() {
        let store = ShardedStore::new(3, 4, 9);
        // A transfer's write set as the block executor would hand it over:
        // final entries, both shards, one transaction.
        let writes = [
            (1u64, Entry { balance: INITIAL_BALANCE - 30, blob: 0 }),
            (5u64, Entry { balance: INITIAL_BALANCE + 30, blob: 7 }),
        ];
        with_tx(&store, |tx| store.apply_writes(tx, &writes));
        assert_eq!(store.total_balance_unlogged(), store.expected_total());
        let resp = with_tx(&store, |tx| store.apply(tx, &Request::Get { key: 5 }));
        assert_eq!(resp, Response::Value(Some(Entry { balance: INITIAL_BALANCE + 30, blob: 7 })));
        // An empty write set (a read-only request's block commit) is a
        // legal transaction.
        with_tx(&store, |tx| store.apply_writes(tx, &[]));
    }

    #[test]
    fn get_many_strides_wraps_and_is_bounded() {
        let store = ShardedStore::new(2, 4, 8);
        let resp = with_tx(&store, |tx| store.apply(tx, &Request::get_many(6, 3, 4)));
        // Keys 6, 1, 4, 7 — all present.
        assert_eq!(resp, Response::Many { found: 4, sum: 4 * INITIAL_BALANCE });
        let resp = with_tx(&store, |tx| store.apply(tx, &Request::get_many(0, 0, 10_000)));
        // Stride 0 degrades to 1; count clamped to the keyspace.
        assert_eq!(resp, Response::Many { found: 8, sum: 8 * INITIAL_BALANCE });
    }
}
