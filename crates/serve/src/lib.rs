//! # gstm-serve — sharded transactional store service
//!
//! The paper measures STM variance in closed benchmark loops; this crate
//! asks the question a service operator would: **what does commit-time
//! variance do to tail latency under open-loop load?** It layers a sharded
//! in-memory KV/object store on `gstm-collections` maps over the TL2
//! engine, fronts it with a typed request API (`Get`, `Put`, `Cas`,
//! multi-key `Transfer`, bounded `Scan`) where each request executes as
//! one STM transaction, and drives it with a seeded open-loop traffic
//! generator (Poisson or bursty arrivals, Zipf key popularity) with
//! queue-depth backpressure and load shedding.
//!
//! Per-request **sojourn latency** (completion − scheduled arrival) lands
//! in `gstm-telemetry` log-bucket histograms, so p50/p95/p99 and their
//! cross-seed spread can be compared between `default` and `guided`
//! admission — turning the paper's variance story into a tail-latency
//! experiment.
//!
//! The service runs in both worlds through the `Gate` seam:
//!
//! * **Simulated** ([`run_simulated`], or the pipeline's `serve` study):
//!   `SimGate` virtual time, deterministic per seed — byte-identical
//!   tables across reruns.
//! * **Native** ([`run_native`]): OS threads on [`RealGate`] with
//!   wall-clock arrivals — same store, schedules and loop.
//!
//! ```
//! use gstm_guide::RunOptions;
//! use gstm_serve::{run_simulated, ServeSpec};
//!
//! let spec = ServeSpec::hot(60);
//! let out = run_simulated(&spec, &RunOptions::new(2, 1));
//! let p99 = out
//!     .workload_stats
//!     .iter()
//!     .find(|(k, _)| k == "sojourn_p99")
//!     .map(|(_, v)| *v)
//!     .unwrap();
//! assert!(p99 > 0.0);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod block_mode;
pub mod service;
pub mod store;
pub mod traffic;

pub use backend::{
    decode_request, decode_state, encode_request, encode_state, recover_store, store_digest,
    BackendKind, DurableBackend, EphemeralBackend, Materializer, RecoveredStore, StoreBackend,
};
pub use block_mode::{
    apply_with, block_parts, execute_block_order, merge_block_order, response_digest,
    run_block_reference, BlockModeReport,
};
pub use service::{
    run_native, run_simulated, serve_schedule, spine_config, GateClock, NativeReport, ServeClock,
    ServeMode, ServeRun, ServeSpec, ServeWorkload, SpineMode, ThreadLog, WallClock,
};
pub use store::{Entry, Request, Response, ShardedStore, INITIAL_BALANCE, MAX_SCAN_LEN};
pub use traffic::{generate_schedule, Arrival, Drift, Mix, ScheduledRequest, TrafficSpec};
