//! Ordered block execution over the store ([`ServeMode::Block`],
//! DESIGN.md §6h).
//!
//! The per-thread open-loop schedules are merged into one **global
//! arrival order** (a pure function of `(spec, streams, seed)`), chopped
//! into blocks, and each block runs through the `gstm-block` executor:
//! speculative parallel execution whose outcome is byte-identical to
//! sequential execution of the block order at any worker-thread count.
//! The commit phase then walks the settled block in order, publishing
//! each transaction's final write set through one engine transaction —
//! one commit sequence number per transaction, read-only requests
//! included, so a durable backend's WAL stays exactly as gap-free as
//! under the interleaved loop.
//!
//! Three interpreters share [`apply_with`], the store semantics factored
//! over an abstract read:
//!
//! * the **speculative** body (reads through the block's multi-version
//!   map, may suspend on an estimate),
//! * the **sequential reference** ([`run_block_reference`] — plain map,
//!   no STM, no scheduler: the oracle's ground truth),
//! * the **pure parallel runner** ([`execute_block_order`] — executor
//!   without the engine, used by the determinism smoke to compare thread
//!   counts cheaply).
//!
//! No request kind reads a key it has already written (transfers read
//! both accounts before writing either), so own-write invisibility in
//! the multi-version map cannot change any outcome — [`apply_with`]
//! computes each write from the values it read, exactly like
//! `ShardedStore::apply`.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, RwLock};

use gstm_block::{execute_block, execute_block_on, BlockConfig, BlockPool, BlockStats};
use gstm_check::BlockRecord;
use gstm_core::cm::Aggressive;
use gstm_core::{AdmitAll, RealGate, SiteStatsSink, Stm, ThreadId, TxnKind};
use gstm_wal::fnv1a64;

use crate::backend::{encode_state, store_digest, StoreBackend};
use crate::service::{
    spine_config, NativeReport, ServeClock, ServeMode, ServeSpec, ThreadLog, WallClock,
};
use crate::store::{Entry, Request, Response, ShardedStore, INITIAL_BALANCE, MAX_SCAN_LEN};
use crate::traffic::{generate_schedule, ScheduledRequest};

/// Block-mode extras carried in a [`NativeReport`]: the run's digests
/// (comparable against [`run_block_reference`] by the schedule-invariance
/// oracle) plus the executor's counters.
#[derive(Clone, Debug)]
pub struct BlockModeReport {
    /// Per-transaction output digests and the final state digest.
    pub record: BlockRecord,
    /// Merged executor counters across all blocks.
    pub stats: BlockStats,
    /// Blocks executed.
    pub blocks: u64,
}

/// Executes one request against an abstract read, returning the write set
/// (final entries) and the response — the store's semantics with the read
/// source factored out. Mirrors `ShardedStore::apply` exactly: same
/// clamps, same missing-key behaviour, same conditional no-ops.
///
/// # Errors
///
/// Propagates the read's error (the speculative interpreter's
/// `Blocked`); the sequential interpreters instantiate `E = Infallible`.
pub fn apply_with<E>(
    req: &Request,
    keys: u64,
    read: &mut dyn FnMut(u64) -> Result<Option<Entry>, E>,
) -> Result<(Vec<(u64, Entry)>, Response), E> {
    let mut writes: Vec<(u64, Entry)> = Vec::new();
    let resp = match *req {
        Request::Get { key } => Response::Value(read(key)?),
        Request::Put { key, blob } => {
            if let Some(mut e) = read(key)? {
                e.blob = blob;
                writes.push((key, e));
            }
            Response::Ok
        }
        Request::Cas { key, expect, update } => match read(key)? {
            Some(mut e) if e.blob == expect => {
                e.blob = update;
                writes.push((key, e));
                Response::Swapped(true)
            }
            _ => Response::Swapped(false),
        },
        Request::Transfer { from, to, amount } => {
            if from == to {
                Response::Transferred(false)
            } else {
                match (read(from)?, read(to)?) {
                    (Some(mut f), Some(mut t)) => {
                        f.balance -= amount;
                        t.balance += amount;
                        writes.push((from, f));
                        writes.push((to, t));
                        Response::Transferred(true)
                    }
                    _ => Response::Transferred(false),
                }
            }
        }
        Request::Scan { start, len } => {
            let len = len.min(MAX_SCAN_LEN).min(keys);
            let mut key = start % keys;
            let mut sum = 0i64;
            for _ in 0..len {
                if let Some(e) = read(key)? {
                    sum += e.balance;
                }
                key = ShardedStore::advance(key, 1, keys);
            }
            Response::ScanSum { count: len, sum }
        }
        Request::GetMany { start, stride, count } => {
            let count = count.min(MAX_SCAN_LEN).min(keys);
            let stride = stride.max(1) % keys;
            let mut key = start % keys;
            let (mut found, mut sum) = (0u32, 0i64);
            for _ in 0..count {
                if let Some(e) = read(key)? {
                    found += 1;
                    sum += e.balance;
                }
                key = ShardedStore::advance(key, stride, keys);
            }
            Response::Many { found, sum }
        }
    };
    Ok((writes, resp))
}

/// Canonical response encoding for digesting: kind byte, a flag byte, two
/// 8-byte words. Distinct responses encode distinctly.
fn encode_response(resp: &Response) -> [u8; 18] {
    let (kind, flag, a, b) = match *resp {
        Response::Value(None) => (0u8, 0u8, 0u64, 0u64),
        Response::Value(Some(e)) => (0, 1, e.balance as u64, e.blob),
        Response::Ok => (1, 0, 0, 0),
        Response::Swapped(s) => (2, s as u8, 0, 0),
        Response::Transferred(t) => (3, t as u8, 0, 0),
        Response::ScanSum { count, sum } => (4, 0, count, sum as u64),
        Response::Many { found, sum } => (5, 0, u64::from(found), sum as u64),
    };
    let mut out = [0u8; 18];
    out[0] = kind;
    out[1] = flag;
    out[2..10].copy_from_slice(&a.to_le_bytes());
    out[10..18].copy_from_slice(&b.to_le_bytes());
    out
}

/// FNV digest of a response's canonical encoding — the unit the block
/// oracle compares.
pub fn response_digest(resp: &Response) -> u64 {
    fnv1a64(&encode_response(resp))
}

/// Merges `streams` per-thread schedules into the global block order:
/// sorted by `(arrival tick, stream, position)`. A pure function of
/// `(spec, streams, seed)` — the fixed serial order every execution of
/// this traffic must reproduce.
pub fn merge_block_order(spec: &ServeSpec, streams: usize, seed: u64) -> Vec<ScheduledRequest> {
    let traffic = spec.traffic();
    let mut tagged: Vec<(u64, usize, usize, Request)> = Vec::new();
    for t in 0..streams {
        for (i, sr) in generate_schedule(&traffic, seed, t).into_iter().enumerate() {
            tagged.push((sr.at, t, i, sr.req));
        }
    }
    tagged.sort_by_key(|&(at, t, i, _)| (at, t, i));
    tagged.into_iter().map(|(at, _, _, req)| ScheduledRequest { at, req }).collect()
}

/// The multi-version map stripe count a spec implies: one stripe per
/// store bucket (the spec's conflict granularity), clamped to the
/// executor's cap.
pub fn block_parts(spec: &ServeSpec) -> usize {
    (spec.shards * spec.buckets_per_shard).clamp(1, BlockConfig::MAX_PARTS)
}

fn initial_state(keys: u64) -> BTreeMap<u64, Entry> {
    (0..keys).map(|k| (k, Entry { balance: INITIAL_BALANCE, blob: 0 })).collect()
}

fn state_digest(state: &BTreeMap<u64, Entry>) -> u64 {
    let entries: Vec<(u64, Entry)> = state.iter().map(|(&k, &e)| (k, e)).collect();
    fnv1a64(&encode_state(&entries))
}

/// The sequential reference: executes the merged order one transaction at
/// a time against a plain map — no STM, no scheduler, no speculation.
/// This is the oracle's ground truth for schedule invariance.
pub fn run_block_reference(spec: &ServeSpec, streams: usize, seed: u64) -> BlockRecord {
    let order = merge_block_order(spec, streams, seed);
    let mut state = initial_state(spec.keys);
    let mut outputs = Vec::with_capacity(order.len());
    for sr in &order {
        let (writes, resp) = apply_with::<std::convert::Infallible>(&sr.req, spec.keys, &mut |k| {
            Ok(state.get(&k).copied())
        })
        .expect("infallible read");
        for (k, e) in writes {
            state.insert(k, e);
        }
        outputs.push(response_digest(&resp));
    }
    BlockRecord { outputs, final_digest: state_digest(&state) }
}

/// The pure parallel runner: the block executor over the merged order,
/// with no engine underneath — block by block, `exec_threads` workers.
/// Used by the oracle test and the CI determinism smoke to compare thread
/// counts without paying for STM commits.
///
/// # Panics
///
/// Panics if the spec's mode is not [`ServeMode::Block`].
pub fn execute_block_order(
    spec: &ServeSpec,
    streams: usize,
    seed: u64,
    exec_threads: usize,
) -> (BlockRecord, BlockStats) {
    let ServeMode::Block { block_size } = spec.mode else {
        panic!("execute_block_order needs a ServeMode::Block spec")
    };
    let cfg = BlockConfig::new(block_size, block_parts(spec))
        .unwrap_or_else(|e| panic!("invalid block config: {e}"));
    let order = merge_block_order(spec, streams, seed);
    let mut state = initial_state(spec.keys);
    let mut outputs = Vec::with_capacity(order.len());
    let mut stats = BlockStats::default();
    for chunk in order.chunks(block_size) {
        let outcome = execute_block(
            &cfg,
            chunk.len(),
            exec_threads,
            |k: &u64| state.get(k).copied(),
            |i, ctx| apply_with(&chunk[i].req, spec.keys, &mut |k| ctx.read(&k)),
        );
        stats.merge(&outcome.stats);
        for (k, e) in outcome.final_writes {
            state.insert(k, e);
        }
        outputs.extend(outcome.outputs.iter().map(response_digest));
    }
    (BlockRecord { outputs, final_digest: state_digest(&state) }, stats)
}

/// The native block-mode run behind [`crate::run_native`]: merged global
/// order, open-loop block boundaries (a block executes once its last
/// request has arrived), speculative parallel execution, then in-order
/// serial commit through the engine — one commit sequence number per
/// transaction, so a durable backend logs exactly what the interleaved
/// loop would, in block order.
///
/// Backpressure shedding does not apply: the block boundary *is* the
/// batching policy, and every admitted request gets its guaranteed slot
/// in the serial order (`shed` is always 0).
///
/// # Panics
///
/// Panics if verification fails: conserved totals, and the speculative
/// shadow state diverging from the committed store.
pub(crate) fn run_native_block(
    spec: &ServeSpec,
    block_size: usize,
    threads: usize,
    seed: u64,
    nanos_per_tick: u64,
    yield_every: u32,
    backend: Arc<dyn StoreBackend>,
) -> NativeReport {
    let cfg = BlockConfig::new(block_size, block_parts(spec))
        .unwrap_or_else(|e| panic!("invalid block config: {e}"));
    let order = merge_block_order(spec, threads, seed);
    let sink = Arc::new(SiteStatsSink::new());
    let stm = Stm::with_parts(
        spine_config(spec, threads),
        Arc::new(RealGate::new(yield_every)),
        Arc::clone(&sink) as Arc<dyn gstm_core::EventSink>,
        Arc::new(AdmitAll),
        Arc::new(Aggressive),
    );
    let clock = WallClock::new(nanos_per_tick);
    let store = backend.store();
    let t0 = ThreadId::new(0);
    // The shadow is the speculative base state: block N+1 reads block N's
    // settled writes from here while the engine holds the same values
    // transactionally. The two are compared at the end. It lives behind a
    // lock because the pool's workers (which outlive any one block) read
    // it while executing; the commit loop holds the only write access and
    // only touches it between blocks.
    let shadow: Arc<RwLock<BTreeMap<u64, Entry>>> = Arc::new(RwLock::new(initial_state(spec.keys)));
    // One persistent worker pool for the whole run: spawning threads per
    // block would cost more than executing a small block does.
    let pool = BlockPool::new(threads);
    let log = ThreadLog::default();
    let mut outputs = Vec::with_capacity(order.len());
    let mut stats = BlockStats::default();
    let mut blocks = 0u64;
    let chunks: Vec<Arc<[ScheduledRequest]>> =
        order.chunks(block_size).map(|c| Arc::from(c.to_vec())).collect();
    for chunk in &chunks {
        clock.wait_until(t0, chunk.last().expect("chunks are non-empty").at);
        let keys = spec.keys;
        let block_shadow = Arc::clone(&shadow);
        let block_chunk = Arc::clone(chunk);
        let outcome = execute_block_on(
            &pool,
            &cfg,
            chunk.len(),
            move |k: &u64| block_shadow.read().expect("shadow poisoned").get(k).copied(),
            move |i, ctx| apply_with(&block_chunk[i].req, keys, &mut |k| ctx.read(&k)),
        );
        blocks += 1;
        stats.merge(&outcome.stats);
        for (i, sr) in chunk.iter().enumerate() {
            let writes = &outcome.txn_writes[i];
            // Empty write sets (read-only requests) ride the engine's
            // read-only commit fast path — which still claims a commit
            // sequence number, keeping the WAL prefix dense.
            stm.run(t0, sr.req.site(), |tx| {
                tx.work(spec.work);
                store.apply_writes(tx, writes)
            });
            backend.on_commit(stm.last_commit_seq(t0), &sr.req);
            let sojourn = clock.now(t0).saturating_sub(sr.at);
            log.sojourn.record(sojourn);
            log.done.fetch_add(1, Ordering::Relaxed);
            if sr.req.txn_kind() == TxnKind::ReadOnly {
                log.sojourn_ro.record(sojourn);
                log.done_ro.fetch_add(1, Ordering::Relaxed);
            }
            if !writes.is_empty() {
                let mut s = shadow.write().expect("shadow poisoned");
                for &(k, e) in writes {
                    s.insert(k, e);
                }
            }
        }
        outputs.extend(outcome.outputs.iter().map(response_digest));
    }
    backend.flush();
    let final_digest = state_digest(&shadow.read().expect("shadow poisoned"));
    if let Err(v) =
        gstm_check::check_conserved_total(store.total_balance_unlogged(), store.expected_total())
    {
        panic!("native block run failed verification: {v}");
    }
    assert_eq!(
        final_digest,
        store_digest(store),
        "speculative shadow state diverged from the committed store"
    );
    NativeReport {
        done: log.done.load(Ordering::Relaxed),
        done_ro: log.done_ro.load(Ordering::Relaxed),
        shed: 0,
        sojourn: log.sojourn.snapshot(),
        sojourn_ro: log.sojourn_ro.snapshot(),
        elapsed_ticks: clock.now(t0),
        mvcc: stm.mvcc_stats(),
        sites: sink.snapshot(),
        block: Some(BlockModeReport {
            record: BlockRecord { outputs, final_digest },
            stats,
            blocks,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DurableBackend;
    use crate::service::run_native;
    use crate::traffic::{Arrival, Mix};
    use gstm_check::check_block_equivalence;
    use gstm_wal::WalConfig;
    use std::convert::Infallible;

    fn block_spec(requests: usize, block_size: usize) -> ServeSpec {
        ServeSpec::ledger(requests)
            .with_arrival(Arrival::Poisson { mean_gap: 20.0 })
            .with_block_mode(block_size)
    }

    fn infallible_read(
        state: &BTreeMap<u64, Entry>,
    ) -> impl FnMut(u64) -> Result<Option<Entry>, Infallible> + '_ {
        move |k| Ok(state.get(&k).copied())
    }

    #[test]
    fn apply_with_mirrors_store_apply_semantics() {
        let mut state = initial_state(8);
        state.get_mut(&3).unwrap().blob = 7;
        let keys = 8;
        let cases = [
            (Request::get(3), Response::Value(Some(Entry { balance: 100, blob: 7 })), 0usize),
            (Request::get(99), Response::Value(None), 0),
            (Request::put(2, 5), Response::Ok, 1),
            (Request::put(99, 5), Response::Ok, 0),
            (Request::cas(3, 7, 9), Response::Swapped(true), 1),
            (Request::cas(3, 8, 9), Response::Swapped(false), 0),
            (Request::transfer(0, 1, 30), Response::Transferred(true), 2),
            (Request::transfer(4, 4, 30), Response::Transferred(false), 0),
            (Request::transfer(0, 99, 30), Response::Transferred(false), 0),
            (Request::scan(6, 4), Response::ScanSum { count: 4, sum: 400 }, 0),
            (Request::get_many(0, 2, 4), Response::Many { found: 4, sum: 400 }, 0),
        ];
        for (req, want_resp, want_writes) in cases {
            let (writes, resp) =
                apply_with(&req, keys, &mut infallible_read(&state)).expect("infallible");
            assert_eq!(resp, want_resp, "response for {req:?}");
            assert_eq!(writes.len(), want_writes, "write count for {req:?}");
        }
        // Extreme caller-supplied values reduce like the store's apply.
        let (_, resp) = apply_with(&Request::scan(u64::MAX, 3), keys, &mut infallible_read(&state))
            .expect("infallible");
        assert_eq!(resp, Response::ScanSum { count: 3, sum: 300 });
    }

    #[test]
    fn response_digests_distinguish_kinds_and_payloads() {
        let responses = [
            Response::Value(None),
            Response::Value(Some(Entry { balance: 0, blob: 0 })),
            Response::Ok,
            Response::Swapped(false),
            Response::Swapped(true),
            Response::Transferred(false),
            Response::Transferred(true),
            Response::ScanSum { count: 0, sum: 0 },
            Response::Many { found: 0, sum: 0 },
        ];
        let mut digests: Vec<u64> = responses.iter().map(response_digest).collect();
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(digests.len(), responses.len(), "all distinct responses digest distinctly");
    }

    #[test]
    fn merged_order_is_sorted_deterministic_and_complete() {
        let spec = block_spec(60, 16);
        let a = merge_block_order(&spec, 3, 7);
        assert_eq!(a, merge_block_order(&spec, 3, 7), "pure function of (spec, streams, seed)");
        assert_eq!(a.len(), 3 * 60, "every stream's request is in the order");
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "global order is by arrival");
        assert_ne!(a, merge_block_order(&spec, 3, 8), "seed changes the order");
    }

    /// The tentpole oracle: parallel block output is byte-identical to
    /// sequential same-order execution at every thread count.
    #[test]
    fn block_execution_is_schedule_invariant_across_thread_counts() {
        // The ledger shape maximizes write-write dependency chains; a
        // tight mean gap packs conflicting transfers into every block.
        let mut spec = block_spec(80, 32);
        spec.keys = 16; // few accounts → dense conflicts
        let reference = run_block_reference(&spec, 2, 11);
        assert!(!reference.outputs.is_empty());
        let parallel: Vec<(usize, BlockRecord)> = [1, 2, 4, 8]
            .into_iter()
            .map(|threads| (threads, execute_block_order(&spec, 2, 11, threads).0))
            .collect();
        let report = check_block_equivalence(&reference, &parallel);
        assert!(report.ok(), "schedule invariance violated: {}", report.summary());
        assert!(!report.is_vacuous());
        // Whether re-executions actually fire here is timing-dependent
        // (tiny bodies serialize on the scheduler lock); the conflict
        // paths themselves are pinned down deterministically by the
        // gstm-block unit tests.
    }

    #[test]
    fn native_block_run_matches_the_sequential_reference() {
        let spec = block_spec(50, 16);
        let report = run_native(&spec, 2, 9, 50, 64);
        assert_eq!(report.done, 2 * 50);
        assert_eq!(report.shed, 0, "block mode never sheds");
        assert!(report.done_ro > 0, "the ledger mix has balance checks");
        let block = report.block.expect("block-mode report carries the record");
        assert!(block.blocks >= (2 * 50 / 16) as u64);
        assert_eq!(block.stats.executions, 2 * 50 + block.stats.re_executions);
        let reference = run_block_reference(&spec, 2, 9);
        let oracle = check_block_equivalence(&reference, &[(2, block.record)]);
        assert!(oracle.ok(), "native run diverged from reference: {}", oracle.summary());
    }

    #[test]
    fn durable_block_run_keeps_the_wal_prefix_dense() {
        let spec = block_spec(40, 8);
        let (backend, _log_dev, _snap_dev) = DurableBackend::in_memory(
            ShardedStore::new(spec.shards, spec.buckets_per_shard, spec.keys),
            WalConfig::new(),
        );
        let backend = Arc::new(backend);
        let report =
            run_native_block(&spec, 8, 2, 5, 1, 64, Arc::clone(&backend) as Arc<dyn StoreBackend>);
        assert_eq!(report.done, 2 * 40);
        let ledger = backend.ledger();
        assert_eq!(ledger.len(), 2 * 40, "every commit (read-only included) was logged");
        for (i, (seq, _)) in ledger.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1, "commit sequence numbers are dense from 1");
        }
        // The logged order is the block order: replaying the ledger
        // serially reproduces the committed store.
        let mut m = crate::backend::Materializer::initial(spec.keys);
        for (_, req) in ledger {
            m.apply(&req);
        }
        assert_eq!(m.digest(), store_digest(backend.store()));
    }

    #[test]
    fn read_mostly_block_runs_settle_in_one_wave_mostly() {
        // A wide read-mostly shape: block execution should see almost no
        // conflicts — waves stay near one per block.
        let mut spec = ServeSpec::wide(40)
            .with_mix(Mix::mvcc_read())
            .with_arrival(Arrival::Poisson { mean_gap: 20.0 })
            .with_block_mode(32);
        spec.keys = 512;
        let (record, stats) = execute_block_order(&spec, 2, 3, 4);
        assert_eq!(record.outputs.len(), 2 * 40);
        let blocks = (2 * 40usize).div_ceil(32) as u64;
        assert!(stats.waves <= blocks * 3, "read-mostly traffic should cascade rarely: {stats:?}");
    }

    #[test]
    #[should_panic(expected = "native-only")]
    fn simulated_block_mode_is_rejected_loudly() {
        let spec = block_spec(10, 4);
        let _ = crate::service::ServeRun::new(spec, 2, 1);
    }

    #[test]
    fn cache_key_gets_an_append_only_mode_suffix() {
        let key = ServeSpec::ledger(100).cache_key();
        assert!(!key.contains("mode="), "default key must be unchanged: {key}");
        let block = ServeSpec::ledger(100).with_block_mode(64).cache_key();
        assert!(block.ends_with(";mode=block(bs=64)"), "unexpected key: {block}");
        assert_ne!(key, block);
        assert_ne!(
            block,
            ServeSpec::ledger(100).with_block_mode(128).cache_key(),
            "block size feeds the key"
        );
    }
}
