//! Pluggable storage backends: ephemeral vs WAL-backed durable.
//!
//! The serve loop talks to a [`StoreBackend`] rather than to the store
//! directly. Both implementations serve requests from the same in-memory
//! [`ShardedStore`]; they differ in what happens *after* a request's
//! transaction commits:
//!
//! * [`EphemeralBackend`] — nothing. A crash loses the store. This is the
//!   original serve behavior, bit-for-bit (the commit hook is a no-op).
//! * [`DurableBackend`] — the request is **command-logged** to a
//!   [`Wal`] keyed by the engine's global commit sequence number. The STM's
//!   commit order *is* the serialization order, so replaying the logged
//!   requests in sequence order against a fresh store reproduces the
//!   committed state exactly — no per-key value logging, no write-set
//!   capture, and multi-key atomicity (transfers) survives for free
//!   because a request is either wholly in the recoverable prefix or
//!   wholly lost.
//!
//! Read-only requests (`Get`, `Scan`) are logged too: every commit takes a
//! sequence number, and recovery cuts at the first *gap*, so skipping
//! read-only seqs would truncate the recoverable prefix at the first read.
//! Their replay is a no-op; the cost is one 25-byte record.
//!
//! The durable backend also folds logged requests into a contiguous
//! [`Materializer`] and periodically installs its state as a WAL snapshot
//! (then the log truncates), bounding recovery work by the snapshot
//! interval.

use std::collections::BTreeMap;
use std::sync::Arc;

use gstm_core::sync::Mutex;
use gstm_wal::{fnv1a64, recover, LogDevice, MemDevice, Recovered, Wal, WalConfig, WalError};

use crate::store::{Entry, Request, ShardedStore, INITIAL_BALANCE, MAX_SCAN_LEN};

/// Which backend a [`crate::ServeSpec`] runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// In-memory only; commits are not persisted.
    #[default]
    Ephemeral,
    /// Commits are command-logged to a write-ahead log with snapshots.
    Durable,
}

impl BackendKind {
    /// Stable label (cache keys, tables).
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Ephemeral => "ephemeral",
            BackendKind::Durable => "durable",
        }
    }
}

/// What the serve loop needs from storage: the store itself plus a
/// post-commit durability hook.
pub trait StoreBackend: Send + Sync {
    /// The in-memory store requests execute against.
    fn store(&self) -> &ShardedStore;

    /// Stable label (tables, cache keys).
    fn label(&self) -> &'static str;

    /// Called by the worker *after* `stm.run` returned for a served
    /// request — off the lock-hold path. `seq` is the engine's global
    /// commit sequence number for that transaction.
    fn on_commit(&self, seq: u64, req: &Request) {
        let _ = (seq, req);
    }

    /// Called for a request that was served on the engine's **snapshot
    /// read path** (`Stm::run_read_only` under `ReadMode::Snapshot`), in
    /// addition to [`StoreBackend::on_commit`] — snapshot reads still
    /// claim a commit sequence number, so durable backends must keep
    /// logging them through `on_commit` to keep the recoverable prefix
    /// gap-free. This hook only observes that the validation-free
    /// multi-version path served the request.
    fn on_snapshot_read(&self, req: &Request) {
        let _ = req;
    }

    /// Called once per worker when its schedule is drained.
    fn flush(&self) {}
}

/// The no-durability backend: exactly the pre-WAL serve behavior, plus a
/// counter of requests served on the snapshot read path.
#[derive(Debug)]
pub struct EphemeralBackend {
    store: ShardedStore,
    snapshot_reads: std::sync::atomic::AtomicU64,
}

impl EphemeralBackend {
    /// Wraps a populated store.
    pub fn new(store: ShardedStore) -> Self {
        EphemeralBackend { store, snapshot_reads: std::sync::atomic::AtomicU64::new(0) }
    }

    /// Requests this backend observed on the snapshot read path.
    pub fn snapshot_reads(&self) -> u64 {
        self.snapshot_reads.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl StoreBackend for EphemeralBackend {
    fn store(&self) -> &ShardedStore {
        &self.store
    }

    fn label(&self) -> &'static str {
        BackendKind::Ephemeral.label()
    }

    fn on_snapshot_read(&self, _req: &Request) {
        self.snapshot_reads.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

// --- request / state codecs -------------------------------------------------

/// Fixed encoded size of one request payload: kind byte + three u64 words.
pub const REQUEST_PAYLOAD_LEN: usize = 1 + 3 * 8;

/// Encodes a request as a fixed 25-byte WAL payload.
pub fn encode_request(req: &Request) -> [u8; REQUEST_PAYLOAD_LEN] {
    let (kind, a, b, c) = match *req {
        Request::Get { key } => (0u8, key, 0, 0),
        Request::Put { key, blob } => (1, key, blob, 0),
        Request::Cas { key, expect, update } => (2, key, expect, update),
        Request::Transfer { from, to, amount } => (3, from, to, amount as u64),
        Request::Scan { start, len } => (4, start, len, 0),
        Request::GetMany { start, stride, count } => (5, start, stride, count),
    };
    let mut out = [0u8; REQUEST_PAYLOAD_LEN];
    out[0] = kind;
    out[1..9].copy_from_slice(&a.to_le_bytes());
    out[9..17].copy_from_slice(&b.to_le_bytes());
    out[17..25].copy_from_slice(&c.to_le_bytes());
    out
}

/// Decodes a WAL payload back into a request. `None` means the payload is
/// not a valid request record.
pub fn decode_request(payload: &[u8]) -> Option<Request> {
    if payload.len() != REQUEST_PAYLOAD_LEN {
        return None;
    }
    let a = u64::from_le_bytes(payload[1..9].try_into().ok()?);
    let b = u64::from_le_bytes(payload[9..17].try_into().ok()?);
    let c = u64::from_le_bytes(payload[17..25].try_into().ok()?);
    Some(match payload[0] {
        0 => Request::Get { key: a },
        1 => Request::Put { key: a, blob: b },
        2 => Request::Cas { key: a, expect: b, update: c },
        3 => Request::Transfer { from: a, to: b, amount: c as i64 },
        4 => Request::Scan { start: a, len: b },
        5 => Request::GetMany { start: a, stride: b, count: c },
        _ => return None,
    })
}

/// Encodes a materialized state (sorted `(key, entry)` triples) as a
/// snapshot payload: 24 bytes per entry.
pub fn encode_state(entries: &[(u64, Entry)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * 24);
    for &(key, e) in entries {
        out.extend_from_slice(&key.to_le_bytes());
        out.extend_from_slice(&e.balance.to_le_bytes());
        out.extend_from_slice(&e.blob.to_le_bytes());
    }
    out
}

/// Decodes a snapshot payload. `None` on any length mismatch.
pub fn decode_state(bytes: &[u8]) -> Option<Vec<(u64, Entry)>> {
    if !bytes.len().is_multiple_of(24) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 24);
    for chunk in bytes.chunks_exact(24) {
        let key = u64::from_le_bytes(chunk[0..8].try_into().ok()?);
        let balance = i64::from_le_bytes(chunk[8..16].try_into().ok()?);
        let blob = u64::from_le_bytes(chunk[16..24].try_into().ok()?);
        out.push((key, Entry { balance, blob }));
    }
    Some(out)
}

/// Order-independent content digest of a store (FNV over the canonical
/// sorted entry encoding). Two stores are state-equal iff digests match.
pub fn store_digest(store: &ShardedStore) -> u64 {
    fnv1a64(&encode_state(&store.entries_unlogged()))
}

// --- serial replay ----------------------------------------------------------

/// Applies logged requests serially to a plain map, mirroring
/// [`ShardedStore::apply`]'s semantics exactly — the replay engine used
/// both for snapshot construction and for the recovery oracle's expected
/// state.
#[derive(Clone, Debug)]
pub struct Materializer {
    state: BTreeMap<u64, Entry>,
    keys: u64,
}

impl Materializer {
    /// The freshly-populated initial state of a `keys`-sized store.
    pub fn initial(keys: u64) -> Self {
        Materializer {
            state: (0..keys).map(|k| (k, Entry { balance: INITIAL_BALANCE, blob: 0 })).collect(),
            keys,
        }
    }

    /// Restores a materializer from decoded snapshot entries.
    pub fn from_entries(keys: u64, entries: &[(u64, Entry)]) -> Self {
        Materializer { state: entries.iter().copied().collect(), keys }
    }

    /// Applies one request. Read-only kinds and failed conditionals are
    /// no-ops, exactly as in the transactional store.
    pub fn apply(&mut self, req: &Request) {
        match *req {
            Request::Get { .. } => {}
            Request::Put { key, blob } => {
                if let Some(e) = self.state.get_mut(&key) {
                    e.blob = blob;
                }
            }
            Request::Cas { key, expect, update } => {
                if let Some(e) = self.state.get_mut(&key) {
                    if e.blob == expect {
                        e.blob = update;
                    }
                }
            }
            Request::Transfer { from, to, amount } => {
                if from == to || !self.state.contains_key(&from) || !self.state.contains_key(&to) {
                    return;
                }
                self.state.get_mut(&from).expect("checked").balance -= amount;
                self.state.get_mut(&to).expect("checked").balance += amount;
            }
            Request::Scan { .. } | Request::GetMany { .. } => {
                let _ = MAX_SCAN_LEN; // reads; nothing to do
            }
        }
    }

    /// The state as sorted entries.
    pub fn entries(&self) -> Vec<(u64, Entry)> {
        self.state.iter().map(|(&k, &e)| (k, e)).collect()
    }

    /// Content digest of the current state.
    pub fn digest(&self) -> u64 {
        fnv1a64(&encode_state(&self.entries()))
    }

    /// Balance total (for conservation checks at any prefix).
    pub fn total_balance(&self) -> i64 {
        self.state.values().map(|e| e.balance).sum()
    }

    /// Keyspace size this materializer was built for.
    pub fn key_count(&self) -> u64 {
        self.keys
    }
}

// --- the durable backend ----------------------------------------------------

struct DurableInner {
    /// Out-of-order commit buffer: records whose predecessors have not all
    /// arrived yet (workers race to log, the WAL sorts it out at recovery,
    /// the materializer needs contiguity *now*).
    pending: BTreeMap<u64, Request>,
    /// Highest seq folded into `materialized` (contiguous from 1).
    applied_seq: u64,
    /// Serial replay of commits `1..=applied_seq`.
    materialized: Materializer,
    /// Ground-truth commit ledger `(seq, request)` for the recovery
    /// oracle: what a crash-free serial history would have been.
    ledger: Vec<(u64, Request)>,
}

/// The WAL-backed backend: command-logs every commit, snapshots
/// periodically, and keeps an in-memory ground-truth ledger so experiments
/// can compare a recovered store against the ideal serial history.
pub struct DurableBackend {
    store: ShardedStore,
    wal: Wal,
    inner: Mutex<DurableInner>,
}

impl std::fmt::Debug for DurableBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableBackend")
            .field("store", &self.store)
            .field("wal", &self.wal)
            .finish_non_exhaustive()
    }
}

impl DurableBackend {
    /// Wraps a populated store with a WAL over the given devices. Use
    /// [`MemDevice`]s under the simulator (deterministic byte-log) and
    /// [`gstm_wal::FileDevice`]s for native runs.
    pub fn new(store: ShardedStore, wal: Wal) -> Self {
        let keys = store.key_count();
        DurableBackend {
            store,
            wal,
            inner: Mutex::new(DurableInner {
                pending: BTreeMap::new(),
                applied_seq: 0,
                materialized: Materializer::initial(keys),
                ledger: Vec::new(),
            }),
        }
    }

    /// Convenience: a fresh store with an in-memory WAL (the simulator
    /// configuration), returning the backend plus its two devices so the
    /// caller can later read the post-crash disk image.
    pub fn in_memory(
        store: ShardedStore,
        cfg: WalConfig,
    ) -> (Self, Arc<MemDevice>, Arc<MemDevice>) {
        let log = Arc::new(MemDevice::new());
        let snap = Arc::new(MemDevice::new());
        let wal = Wal::new(cfg, Arc::clone(&log) as Arc<dyn LogDevice>, Arc::clone(&snap) as _);
        (DurableBackend::new(store, wal), log, snap)
    }

    /// The write-ahead log (stats, disk image, kill arming).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// The ground-truth ledger, sorted by commit sequence number.
    pub fn ledger(&self) -> Vec<(u64, Request)> {
        let inner = self.inner.lock();
        let mut l = inner.ledger.clone();
        l.sort_by_key(|&(seq, _)| seq);
        l
    }

    fn drain_pending(&self, inner: &mut DurableInner) {
        while let Some(req) = inner.pending.remove(&(inner.applied_seq + 1)) {
            inner.materialized.apply(&req);
            inner.applied_seq += 1;
        }
    }
}

impl StoreBackend for DurableBackend {
    fn store(&self) -> &ShardedStore {
        &self.store
    }

    fn label(&self) -> &'static str {
        BackendKind::Durable.label()
    }

    fn on_commit(&self, seq: u64, req: &Request) {
        debug_assert!(seq > 0, "commit sequence numbers start at 1");
        self.wal.append(seq, &encode_request(req));
        let mut inner = self.inner.lock();
        inner.ledger.push((seq, *req));
        inner.pending.insert(seq, *req);
        self.drain_pending(&mut inner);
        if self.wal.wants_snapshot() && inner.applied_seq > 0 {
            let upto = inner.applied_seq;
            let state = encode_state(&inner.materialized.entries());
            self.wal.install_snapshot(upto, &state);
        }
    }

    fn flush(&self) {
        self.wal.flush();
    }
}

// --- recovery ---------------------------------------------------------------

/// A store rebuilt from a post-crash disk image.
#[derive(Debug)]
pub struct RecoveredStore {
    /// The rebuilt store (`snapshot + tail` replayed serially).
    pub store: ShardedStore,
    /// The last commit sequence number the rebuilt state reflects.
    pub recovered_seq: u64,
    /// Raw recovery metadata (torn tail, gap drops, snapshot base).
    pub info: Recovered,
}

/// Rebuilds a store from a disk image: verify + decode the WAL, restore
/// the snapshot state (or the fresh initial state), replay the tail in
/// sequence order, and load the result into a store of the given shape.
///
/// # Errors
///
/// Propagates WAL checksum failures and rejects undecodable payloads
/// ([`WalError::BadPayload`]).
pub fn recover_store(
    shards: usize,
    buckets_per_shard: usize,
    keys: u64,
    log_bytes: &[u8],
    snap_bytes: &[u8],
) -> Result<RecoveredStore, WalError> {
    let r = recover(log_bytes, snap_bytes)?;
    let mut m = match &r.snapshot {
        Some(state) => {
            let entries = decode_state(state).ok_or(WalError::CorruptSnapshot)?;
            Materializer::from_entries(keys, &entries)
        }
        None => Materializer::initial(keys),
    };
    for (seq, payload) in &r.tail {
        let req = decode_request(payload).ok_or(WalError::BadPayload { seq: *seq })?;
        m.apply(&req);
    }
    let store = ShardedStore::from_entries(shards, buckets_per_shard, keys, &m.entries());
    Ok(RecoveredStore { store, recovered_seq: r.recovered_seq(), info: r })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_codec_round_trips_every_kind() {
        let reqs = [
            Request::Get { key: 7 },
            Request::Put { key: 3, blob: 99 },
            Request::Cas { key: 5, expect: 1, update: 2 },
            Request::Transfer { from: 1, to: 2, amount: -40 },
            Request::Scan { start: 9, len: 4 },
            Request::GetMany { start: 2, stride: 3, count: 5 },
        ];
        for req in reqs {
            assert_eq!(decode_request(&encode_request(&req)), Some(req));
        }
        assert_eq!(decode_request(b"short"), None);
        let mut bad = encode_request(&Request::Get { key: 0 });
        bad[0] = 200;
        assert_eq!(decode_request(&bad), None);
    }

    #[test]
    fn state_codec_round_trips() {
        let entries = vec![
            (0u64, Entry { balance: 100, blob: 0 }),
            (1, Entry { balance: -3, blob: u64::MAX }),
        ];
        assert_eq!(decode_state(&encode_state(&entries)), Some(entries));
        assert_eq!(decode_state(&[1, 2, 3]), None, "misaligned payload");
    }

    #[test]
    fn materializer_mirrors_store_apply_semantics() {
        let mut m = Materializer::initial(4);
        m.apply(&Request::Put { key: 2, blob: 7 });
        m.apply(&Request::Put { key: 99, blob: 7 }); // missing key: no-op
        m.apply(&Request::Cas { key: 2, expect: 7, update: 8 });
        m.apply(&Request::Cas { key: 2, expect: 7, update: 9 }); // stale expect
        m.apply(&Request::Transfer { from: 0, to: 1, amount: 25 });
        m.apply(&Request::Transfer { from: 3, to: 3, amount: 5 }); // self: no-op
        m.apply(&Request::Scan { start: 0, len: 4 });
        let entries = m.entries();
        assert_eq!(entries[2].1.blob, 8);
        assert_eq!(entries[0].1.balance, INITIAL_BALANCE - 25);
        assert_eq!(entries[1].1.balance, INITIAL_BALANCE + 25);
        assert_eq!(m.total_balance(), 4 * INITIAL_BALANCE, "transfers conserve");
    }

    #[test]
    fn durable_backend_logs_and_recovery_matches_live_state() {
        let store = ShardedStore::new(2, 4, 8);
        let (backend, log, snap) =
            DurableBackend::in_memory(store, WalConfig::new().with_batch_records(3));
        // Simulate post-commit hooks in serialization order (seq = 1..).
        let reqs = [
            Request::Transfer { from: 0, to: 5, amount: 10 },
            Request::Put { key: 1, blob: 42 },
            Request::Get { key: 5 },
            Request::Cas { key: 1, expect: 42, update: 43 },
        ];
        for (i, req) in reqs.iter().enumerate() {
            backend.on_commit(i as u64 + 1, req);
        }
        backend.flush();
        let rec = recover_store(2, 4, 8, &log.contents(), &snap.contents()).unwrap();
        assert_eq!(rec.recovered_seq, 4);
        // The ledger materialized to the same point must match the
        // recovered store byte-for-byte.
        let mut m = Materializer::initial(8);
        for (_, req) in backend.ledger() {
            m.apply(&req);
        }
        assert_eq!(store_digest(&rec.store), m.digest());
    }

    #[test]
    fn out_of_order_commits_still_materialize_contiguously() {
        let store = ShardedStore::new(2, 4, 4);
        let (backend, log, snap) = DurableBackend::in_memory(store, WalConfig::new());
        // Thread interleaving delivers seq 2 before seq 1.
        backend.on_commit(2, &Request::Put { key: 1, blob: 5 });
        backend.on_commit(1, &Request::Transfer { from: 0, to: 1, amount: 3 });
        backend.on_commit(3, &Request::Get { key: 0 });
        backend.flush();
        let rec = recover_store(2, 4, 4, &log.contents(), &snap.contents()).unwrap();
        assert_eq!(rec.recovered_seq, 3);
        let entries = rec.store.entries_unlogged();
        assert_eq!(entries[1].1.blob, 5);
        assert_eq!(entries[1].1.balance, INITIAL_BALANCE + 3);
    }

    #[test]
    fn snapshot_policy_truncates_the_log() {
        let store = ShardedStore::new(2, 4, 4);
        let (backend, log, snap) = DurableBackend::in_memory(
            store,
            WalConfig::new().with_batch_records(2).with_snapshot_every(6),
        );
        for seq in 1..=20u64 {
            backend.on_commit(seq, &Request::Put { key: seq % 4, blob: seq });
        }
        backend.flush();
        let stats = backend.wal().stats();
        assert!(stats.snapshots >= 1, "snapshot interval crossed");
        assert!(stats.truncated_records > 0, "truncation reclaimed log frames");
        let rec = recover_store(2, 4, 4, &log.contents(), &snap.contents()).unwrap();
        assert_eq!(rec.recovered_seq, 20);
        assert!(rec.info.base_seq > 0, "recovery started from a snapshot");
        let mut m = Materializer::initial(4);
        for (_, req) in backend.ledger() {
            m.apply(&req);
        }
        assert_eq!(store_digest(&rec.store), m.digest());
    }

    #[test]
    fn backend_kinds_have_stable_labels() {
        assert_eq!(BackendKind::Ephemeral.label(), "ephemeral");
        assert_eq!(BackendKind::Durable.label(), "durable");
        assert_eq!(BackendKind::default(), BackendKind::Ephemeral);
    }
}
