//! Seeded open-loop traffic generation.
//!
//! The generator is **open-loop**: every request has a scheduled arrival
//! tick drawn from an arrival process *before* the run starts, and arrivals
//! do not slow down when the service falls behind — exactly the regime
//! where queueing delay amplifies commit-latency variance into tail
//! latency. (A closed-loop driver, where each thread issues its next
//! request only after the previous one completes, self-clocks and hides
//! the very tails we want to measure.)
//!
//! Schedules are materialized up front as per-thread sorted vectors of
//! [`ScheduledRequest`]s, keyed only on `(seed, thread)` — so a schedule is
//! a pure function of the spec and seed, identical across SimGate and
//! RealGate runs and across policies. The worker loop then replays the
//! schedule against the clock; determinism of the *schedule* is what lets
//! `default` vs `guided` admission see byte-identical offered load.

use gstm_core::rng::{Exp, SmallRng, SplitMix64, Zipf};

use crate::store::Request;

/// Within a burst, gaps shrink by this factor (the burst's "compression");
/// the between-burst gap is stretched so the long-run mean rate matches the
/// Poisson process with the same `mean_gap`.
const BURST_COMPRESSION: f64 = 8.0;

/// An open-loop arrival process. Gaps are in ticks; both variants have the
/// same long-run mean rate `1 / mean_gap`, so they isolate the effect of
/// burstiness at fixed offered load.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Arrival {
    /// Memoryless arrivals: i.i.d. exponential gaps with the given mean.
    Poisson {
        /// Mean inter-arrival gap in ticks.
        mean_gap: f64,
    },
    /// Clustered arrivals: bursts of `burst` requests with compressed
    /// in-burst gaps (`mean_gap / 8`), separated by stretched idle gaps
    /// sized so the overall mean gap is still `mean_gap`.
    Bursty {
        /// Long-run mean inter-arrival gap in ticks.
        mean_gap: f64,
        /// Requests per burst (≥ 2).
        burst: u32,
    },
}

impl Arrival {
    /// Short tag used in cache keys and result tables.
    pub fn tag(&self) -> &'static str {
        match self {
            Arrival::Poisson { .. } => "poisson",
            Arrival::Bursty { .. } => "bursty",
        }
    }

    /// Long-run mean inter-arrival gap in ticks.
    pub fn mean_gap(&self) -> f64 {
        match *self {
            Arrival::Poisson { mean_gap } | Arrival::Bursty { mean_gap, .. } => mean_gap,
        }
    }
}

/// Relative frequencies of the six request kinds, in the order
/// `[get, put, cas, transfer, scan, get_many]`.
///
/// The presets that predate `GetMany` carry a trailing zero weight: the
/// kind-selection loop never draws a zero-weight kind and consumes no
/// extra randomness for it, so their request streams are bit-identical to
/// the five-kind era (the determinism goldens depend on this).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mix(pub [u32; 6]);

impl Mix {
    /// A read-mostly service mix: 55% get, 20% put, 10% cas, 10% transfer,
    /// 5% scan.
    pub fn read_mostly() -> Self {
        Mix([55, 20, 10, 10, 5, 0])
    }

    /// A transfer-heavy mix that maximizes write-write conflicts: 20% get,
    /// 10% put, 10% cas, 55% transfer, 5% scan.
    pub fn transfer_heavy() -> Self {
        Mix([20, 10, 10, 55, 5, 0])
    }

    /// The MVCC study's scan-heavy read-mostly mix: 50% get, 10% put,
    /// 5% cas, 5% transfer, 15% scan, 15% get_many — 80% of requests are
    /// read-only multi-key or point reads, the regime where the snapshot
    /// read path pays off.
    pub fn mvcc_read() -> Self {
        Mix([50, 10, 5, 5, 15, 15])
    }

    /// The ledger mix: 80% transfers over a Zipf-skewed account graph,
    /// 12% balance checks (`Get`) and 8% statement scans — every write
    /// moves balance between two accounts, so the conserved-total oracle
    /// covers essentially the whole write traffic. This is the canonical
    /// block-executor workload: dense write-write conflicts on the hot
    /// accounts, which ordered re-execution resolves without livelock.
    pub fn ledger() -> Self {
        Mix([12, 0, 0, 80, 8, 0])
    }

    /// Fraction of the mix that draws read-only request kinds.
    pub fn read_only_fraction(&self) -> f64 {
        let ro = self.0[0] + self.0[4] + self.0[5];
        f64::from(ro) / f64::from(self.total().max(1))
    }

    fn total(&self) -> u32 {
        self.0.iter().sum()
    }
}

/// A non-stationary traffic schedule: the generator divides each thread's
/// request stream into `phases` equal spans; phase `p` draws keys from a
/// Zipf whose exponent is linearly interpolated from the spec's
/// `zipf_theta` (phase 0) to `theta_end` (last phase), and the entire key
/// distribution is rotated by `p * hotspot_step` — the hot key set
/// *migrates* across the keyspace as the run progresses. This is the drift
/// a statically trained model cannot follow.
///
/// Drift is still a pure function of `(spec, seed, thread)`: schedules
/// remain deterministic and identical across policies — only stationarity
/// is lost, not reproducibility. `drift: None` leaves the generator's
/// sampling stream byte-identical to the stationary era (the determinism
/// goldens depend on this).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Drift {
    /// Zipf exponent at the final phase (start is the spec's `zipf_theta`).
    pub theta_end: f64,
    /// Number of equal-length phases (≥ 2).
    pub phases: u32,
    /// Keyspace rotation per phase: the hotspot migrates this many keys
    /// between consecutive phases.
    pub hotspot_step: u64,
}

/// One request with its scheduled arrival tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledRequest {
    /// Virtual arrival tick (monotone within a thread's schedule).
    pub at: u64,
    /// The request to execute.
    pub req: Request,
}

/// Parameters the generator needs, decoupled from the service spec.
#[derive(Clone, Copy, Debug)]
pub struct TrafficSpec {
    /// Keyspace size (Zipf rank space).
    pub keys: u64,
    /// Zipf skew θ (0 = uniform; ~0.99 = classic YCSB hot-key skew).
    pub zipf_theta: f64,
    /// Arrival process.
    pub arrival: Arrival,
    /// Requests per thread.
    pub requests_per_thread: usize,
    /// Request-kind mix.
    pub mix: Mix,
    /// `Scan` range length.
    pub scan_len: u64,
    /// Optional non-stationary schedule (time-varying Zipf exponent and
    /// migrating hotspot). `None` = stationary, bit-identical to the
    /// pre-drift generator.
    pub drift: Option<Drift>,
}

/// Generates one thread's schedule: a sorted, seeded, pure function of
/// `(spec, seed, thread)`.
///
/// # Panics
///
/// Panics if the mix has zero total weight.
pub fn generate_schedule(spec: &TrafficSpec, seed: u64, thread: usize) -> Vec<ScheduledRequest> {
    assert!(spec.mix.total() > 0, "request mix needs at least one nonzero weight");
    // Decorrelate the per-thread streams: hash (seed, thread) through
    // SplitMix64 so thread 0 of seed 1 shares nothing with thread 1.
    let mut mixer = SplitMix64::new(seed ^ (thread as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut rng = SmallRng::seed_from_u64(mixer.next_u64());

    let zipf = Zipf::new(spec.keys as usize, spec.zipf_theta);
    // Drift pre-builds one sampler per phase; the stationary path keeps
    // using `zipf` directly so its draw stream is untouched.
    let phase_samplers: Vec<Zipf> = match spec.drift {
        Some(d) => {
            assert!(d.phases >= 2, "drift needs at least two phases");
            (0..d.phases)
                .map(|p| {
                    let frac = f64::from(p) / f64::from(d.phases - 1);
                    let theta = spec.zipf_theta + (d.theta_end - spec.zipf_theta) * frac;
                    Zipf::new(spec.keys as usize, theta)
                })
                .collect()
        }
        None => Vec::new(),
    };
    let (gap_in, gap_between, burst) = match spec.arrival {
        Arrival::Poisson { mean_gap } => (Exp::new(mean_gap), None, 1u32),
        Arrival::Bursty { mean_gap, burst } => {
            assert!(burst >= 2, "a burst needs at least two requests");
            let within = mean_gap / BURST_COMPRESSION;
            // burst requests take 1 big gap + (burst-1) small gaps; solve the
            // big gap's mean so the average over the burst is mean_gap.
            let between = burst as f64 * mean_gap - (burst as f64 - 1.0) * within;
            (Exp::new(within), Some(Exp::new(between)), burst)
        }
    };

    let mut schedule = Vec::with_capacity(spec.requests_per_thread);
    let mut clock = 0.0f64;
    for i in 0..spec.requests_per_thread {
        let gap = match &gap_between {
            Some(between) if (i as u32).is_multiple_of(burst) => between.sample(&mut rng),
            _ => gap_in.sample(&mut rng),
        };
        clock += gap;
        let (sampler, rotate) = match spec.drift {
            Some(d) => {
                let phase =
                    (i * d.phases as usize / spec.requests_per_thread).min(d.phases as usize - 1);
                let rot = (phase as u64).wrapping_mul(d.hotspot_step) % spec.keys;
                (&phase_samplers[phase], rot)
            }
            None => (&zipf, 0),
        };
        schedule.push(ScheduledRequest {
            at: clock as u64,
            req: draw_request(spec, sampler, rotate, &mut rng),
        });
    }
    schedule
}

/// Draws one request. `rotate` shifts every sampled key rank by a fixed
/// offset (mod the keyspace) — the drift hotspot migration; the stationary
/// path passes 0, which is the identity on in-range ranks.
fn draw_request(spec: &TrafficSpec, zipf: &Zipf, rotate: u64, rng: &mut SmallRng) -> Request {
    let key = (zipf.sample(rng) as u64 + rotate) % spec.keys;
    let mut pick = rng.gen_range(0..spec.mix.total());
    for (kind, &w) in spec.mix.0.iter().enumerate() {
        if pick < w {
            return match kind {
                0 => Request::get(key),
                1 => Request::put(key, rng.gen_range(0..1u64 << 16)),
                2 => {
                    // Expect the initial blob: succeeds until someone wins
                    // the race, then degrades to a read-only check — both
                    // paths are realistic CAS traffic.
                    Request::cas(key, 0, rng.gen_range(1..1u64 << 16))
                }
                3 => {
                    let mut to = (zipf.sample(rng) as u64 + rotate) % spec.keys;
                    if to == key {
                        to = (to + 1) % spec.keys;
                    }
                    Request::transfer(key, to, rng.gen_range(1..10i64))
                }
                4 => Request::scan(key, spec.scan_len),
                _ => Request::get_many(key, rng.gen_range(1..8u64), spec.scan_len),
            };
        }
        pick -= w;
    }
    unreachable!("pick < total by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(arrival: Arrival) -> TrafficSpec {
        TrafficSpec {
            keys: 64,
            zipf_theta: 0.9,
            arrival,
            requests_per_thread: 400,
            mix: Mix::read_mostly(),
            scan_len: 8,
            drift: None,
        }
    }

    #[test]
    fn schedules_are_sorted_and_deterministic() {
        let s = spec(Arrival::Poisson { mean_gap: 50.0 });
        let a = generate_schedule(&s, 7, 0);
        let b = generate_schedule(&s, 7, 0);
        assert_eq!(a, b, "same (seed, thread) ⇒ same schedule");
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "arrivals are monotone");
        assert_ne!(a, generate_schedule(&s, 7, 1), "threads get distinct streams");
        assert_ne!(a, generate_schedule(&s, 8, 0), "seeds get distinct streams");
    }

    #[test]
    fn poisson_mean_gap_is_close() {
        let s = spec(Arrival::Poisson { mean_gap: 50.0 });
        let sched = generate_schedule(&s, 3, 0);
        let span = sched.last().unwrap().at as f64;
        let mean = span / sched.len() as f64;
        assert!((35.0..=65.0).contains(&mean), "mean gap {mean} far from 50");
    }

    #[test]
    fn bursty_matches_poisson_rate_but_clusters() {
        let mean_gap = 50.0;
        let s = spec(Arrival::Bursty { mean_gap, burst: 8 });
        let sched = generate_schedule(&s, 3, 0);
        let span = sched.last().unwrap().at as f64;
        let mean = span / sched.len() as f64;
        assert!((30.0..=70.0).contains(&mean), "long-run mean gap {mean} far from 50");
        // Clustering: the median gap is far below the mean gap.
        let mut gaps: Vec<u64> = sched.windows(2).map(|w| w[1].at - w[0].at).collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2] as f64;
        assert!(median < mean_gap / 2.0, "median gap {median} not compressed");
    }

    #[test]
    fn samplers_are_deterministic_across_reseeds() {
        // The samplers themselves (not just the schedule) must be pure
        // functions of the seed: re-seeding replays the exact stream, and a
        // different seed diverges. This is what makes a cached study cell
        // safe to replay on a different host.
        let zipf = Zipf::new(64, 0.9);
        let exp = Exp::new(50.0);
        let draw = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let ranks: Vec<usize> = (0..256).map(|_| zipf.sample(&mut rng)).collect();
            let gaps: Vec<u64> = (0..256).map(|_| exp.sample(&mut rng).to_bits()).collect();
            (ranks, gaps)
        };
        assert_eq!(draw(42), draw(42), "same seed ⇒ bit-identical sample stream");
        let (ranks_a, gaps_a) = draw(42);
        let (ranks_b, gaps_b) = draw(43);
        assert_ne!(ranks_a, ranks_b, "different seed ⇒ different zipf stream");
        assert_ne!(gaps_a, gaps_b, "different seed ⇒ different exp stream");
    }

    #[test]
    fn zipf_skew_concentrates_mass_on_hot_ranks() {
        let n = 64;
        let freq = |theta: f64, seed: u64| {
            let zipf = Zipf::new(n, theta);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut counts = vec![0usize; n];
            for _ in 0..20_000 {
                counts[zipf.sample(&mut rng)] += 1;
            }
            counts
        };
        // Skewed: rank 0 is the hottest key by a wide margin, and hotter
        // than the coldest rank. With θ=0.99 over 64 keys, rank 0 carries
        // ~21% of the mass vs ~0.35% for rank 63.
        let skewed = freq(0.99, 5);
        assert!(
            skewed[0] > 10 * skewed[n - 1],
            "rank 0 ({}) not ≫ rank {} ({})",
            skewed[0],
            n - 1,
            skewed[n - 1]
        );
        assert_eq!(skewed.iter().enumerate().max_by_key(|&(_, &c)| c).unwrap().0, 0);
        // θ=0 degenerates to uniform: no key is more than ~2× any other.
        let flat = freq(0.0, 5);
        let (min, max) = (flat.iter().min().unwrap(), flat.iter().max().unwrap());
        assert!(*max < 2 * *min, "uniform draw spread too wide: {min}..{max}");
    }

    #[test]
    fn exp_sampler_tracks_its_mean() {
        let exp = Exp::new(50.0);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let x = exp.sample(&mut rng);
            assert!(x >= 0.0, "exponential gaps are non-negative, got {x}");
            sum += x;
        }
        let mean = sum / 20_000.0;
        assert!((47.0..=53.0).contains(&mean), "sample mean {mean} far from 50");
    }

    #[test]
    fn legacy_mixes_never_draw_get_many() {
        // The pre-GetMany presets carry a zero sixth weight and an
        // unchanged total, so their seeded request streams are exactly the
        // five-kind streams the determinism goldens were recorded against.
        for mix in [Mix::read_mostly(), Mix::transfer_heavy()] {
            assert_eq!(mix.0[5], 0);
            assert_eq!(mix.total(), 100);
            let s = TrafficSpec { mix, ..spec(Arrival::Poisson { mean_gap: 10.0 }) };
            let sched = generate_schedule(&s, 13, 0);
            assert!(
                sched.iter().all(|r| !matches!(r.req, Request::GetMany { .. })),
                "zero-weight kind must never be drawn"
            );
        }
    }

    #[test]
    fn ledger_mix_is_transfer_dominated_and_golden_safe() {
        let mix = Mix::ledger();
        assert_eq!(mix.0[5], 0, "trailing zero weight keeps the legacy draw stream shape");
        assert_eq!(mix.total(), 100);
        assert!(mix.read_only_fraction() < 0.5, "the ledger is write-heavy");
        let s = TrafficSpec { mix, ..spec(Arrival::Poisson { mean_gap: 10.0 }) };
        let sched = generate_schedule(&s, 13, 0);
        let transfers = sched.iter().filter(|r| matches!(r.req, Request::Transfer { .. })).count();
        let frac = transfers as f64 / sched.len() as f64;
        assert!((0.7..=0.9).contains(&frac), "transfer fraction {frac} far from 0.80");
        for r in &sched {
            if let Request::Transfer { from, to, .. } = r.req {
                assert_ne!(from, to, "ledger transfers never self-loop");
            }
            assert!(!matches!(r.req, Request::Put { .. } | Request::Cas { .. }));
        }
    }

    #[test]
    fn mvcc_mix_is_read_mostly_and_draws_get_many() {
        let mix = Mix::mvcc_read();
        assert!(mix.read_only_fraction() >= 0.75, "mvcc mix must be read-mostly");
        let s = TrafficSpec { mix, ..spec(Arrival::Poisson { mean_gap: 10.0 }) };
        let sched = generate_schedule(&s, 13, 0);
        let many = sched.iter().filter(|r| matches!(r.req, Request::GetMany { .. })).count();
        let frac = many as f64 / sched.len() as f64;
        assert!((0.08..=0.25).contains(&frac), "get_many fraction {frac} far from 0.15");
        let ro = sched.iter().filter(|r| r.req.txn_kind() == gstm_core::TxnKind::ReadOnly).count();
        assert!(ro as f64 / sched.len() as f64 > 0.7, "stream must be read-mostly");
        for r in &sched {
            if let Request::GetMany { stride, count, .. } = r.req {
                assert!((1..8).contains(&stride));
                assert_eq!(count, s.scan_len);
            }
        }
    }

    fn primary_key(req: &Request) -> u64 {
        match *req {
            Request::Get { key }
            | Request::Put { key, .. }
            | Request::Cas { key, .. }
            | Request::Transfer { from: key, .. } => key,
            Request::Scan { start, .. } | Request::GetMany { start, .. } => start,
        }
    }

    #[test]
    fn identity_drift_is_byte_identical_to_stationary() {
        // A drift whose phases all share the base exponent and whose
        // hotspot never moves must reproduce the stationary stream exactly:
        // the Some-path consumes the same draws as the None-path. This is
        // the property that keeps `drift: None` golden-safe.
        let base = spec(Arrival::Poisson { mean_gap: 20.0 });
        let identity = TrafficSpec {
            drift: Some(Drift { theta_end: base.zipf_theta, phases: 4, hotspot_step: 0 }),
            ..base
        };
        for thread in 0..3 {
            assert_eq!(
                generate_schedule(&base, 21, thread),
                generate_schedule(&identity, 21, thread),
                "identity drift must not perturb the stream"
            );
        }
    }

    #[test]
    fn drift_schedules_are_deterministic_but_distinct_from_stationary() {
        let base = spec(Arrival::Poisson { mean_gap: 20.0 });
        let drifting = TrafficSpec {
            drift: Some(Drift { theta_end: 0.2, phases: 4, hotspot_step: 16 }),
            ..base
        };
        let a = generate_schedule(&drifting, 9, 0);
        assert_eq!(a, generate_schedule(&drifting, 9, 0), "drift stays a pure function of seed");
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "arrivals stay monotone");
        assert_ne!(a, generate_schedule(&base, 9, 0), "real drift changes the stream");
        for r in &a {
            if let Request::Transfer { from, to, .. } = r.req {
                assert_ne!(from, to);
            }
            assert!(primary_key(&r.req) < drifting.keys, "rotation keeps keys in range");
        }
    }

    #[test]
    fn hotspot_migrates_across_phases() {
        // Pure-get traffic at heavy skew: the hottest key of each quarter
        // should track the per-phase rotation 0 → 16 → 32 → 48.
        let s = TrafficSpec {
            zipf_theta: 0.99,
            requests_per_thread: 8_000,
            mix: Mix([1, 0, 0, 0, 0, 0]),
            drift: Some(Drift { theta_end: 0.99, phases: 4, hotspot_step: 16 }),
            ..spec(Arrival::Poisson { mean_gap: 5.0 })
        };
        let sched = generate_schedule(&s, 17, 0);
        let quarter = sched.len() / 4;
        for phase in 0..4usize {
            let mut counts = vec![0usize; s.keys as usize];
            for r in &sched[phase * quarter..(phase + 1) * quarter] {
                counts[primary_key(&r.req) as usize] += 1;
            }
            let hottest = counts.iter().enumerate().max_by_key(|&(_, &c)| c).unwrap().0;
            assert_eq!(hottest as u64, phase as u64 * 16, "phase {phase} hotspot misplaced");
        }
    }

    #[test]
    fn drift_interpolates_the_zipf_exponent() {
        // θ ramps 0.99 → 0.0: the first quarter is sharply concentrated on
        // its hottest key, the last quarter near-uniform.
        let s = TrafficSpec {
            zipf_theta: 0.99,
            requests_per_thread: 8_000,
            mix: Mix([1, 0, 0, 0, 0, 0]),
            drift: Some(Drift { theta_end: 0.0, phases: 4, hotspot_step: 0 }),
            ..spec(Arrival::Poisson { mean_gap: 5.0 })
        };
        let sched = generate_schedule(&s, 23, 0);
        let quarter = sched.len() / 4;
        let top_share = |slice: &[ScheduledRequest]| {
            let mut counts = vec![0usize; s.keys as usize];
            for r in slice {
                counts[primary_key(&r.req) as usize] += 1;
            }
            *counts.iter().max().unwrap() as f64 / slice.len() as f64
        };
        let early = top_share(&sched[..quarter]);
        let late = top_share(&sched[3 * quarter..]);
        assert!(early > 0.15, "early skew too weak: top share {early}");
        assert!(late < 0.06, "late phase should be near-uniform: top share {late}");
        assert!(early > 3.0 * late, "skew must decay across phases ({early} vs {late})");
    }

    #[test]
    fn mix_weights_shape_the_request_stream() {
        let s =
            TrafficSpec { mix: Mix::transfer_heavy(), ..spec(Arrival::Poisson { mean_gap: 10.0 }) };
        let sched = generate_schedule(&s, 11, 0);
        let transfers = sched.iter().filter(|r| matches!(r.req, Request::Transfer { .. })).count();
        let frac = transfers as f64 / sched.len() as f64;
        assert!((0.45..=0.65).contains(&frac), "transfer fraction {frac} far from 0.55");
        // Transfers never target themselves; all keys stay in range.
        for r in &sched {
            if let Request::Transfer { from, to, .. } = r.req {
                assert_ne!(from, to);
                assert!(from < s.keys && to < s.keys);
            }
        }
    }
}
