//! Fault-injection schedules: [`ChaosGate`] wraps any inner [`Gate`] and
//! perturbs the execution it mediates under a seeded RNG.
//!
//! Three perturbations, each at a configurable per-mille rate:
//!
//! * **arrival-order delays** — a gate crossing occasionally charges extra
//!   ticks, shuffling which thread the discrete-event scheduler grants next
//!   (the virtual-time analogue of a cache miss or an unlucky preemption);
//! * **delayed commits** — the same, but targeted at the batched commit
//!   write-back crossing, stretching the window in which a committer holds
//!   its write-set locks;
//! * **forced aborts** — the crossing thread's in-flight transaction is
//!   doomed through a [`DoomHandle`], exactly as a racing committer under
//!   `AbortReaders` would doom it.
//!
//! A fourth, **kill-and-recover** perturbation targets durability rather
//! than scheduling: at a seeded gate crossing the gate *requests* a crash
//! at a structural [`KillPoint`] through an armed [`KillSwitch`]. The
//! write-ahead log observes the point as it passes it (mid-batch,
//! mid-snapshot, post-truncate) and freezes its disk there — the gate
//! decides *when* under the seed, the log decides *where* structurally,
//! and recovery experiments replay the surviving bytes.
//!
//! Determinism: each thread draws from its own seeded RNG in its own
//! program order, so a given `(seed, workload)` pair injects the identical
//! fault schedule regardless of how OS threads interleave — chaos runs are
//! as replayable as clean ones. The injected ticks pass through the inner
//! gate, so virtual-time accounting stays exact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use gstm_core::rng::SmallRng;
use gstm_core::sync::Mutex;
use gstm_core::{DoomHandle, Gate, KillPoint, KillSwitch, ThreadId, Ticks};

/// Per-mille rates and magnitudes for a [`ChaosGate`].
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// RNG seed; per-thread streams are derived from it.
    pub seed: u64,
    /// Chance (‰) that an ordinary crossing charges extra ticks.
    pub delay_permille: u32,
    /// Injected stalls draw uniformly from `1..=max_delay` ticks.
    pub max_delay: Ticks,
    /// Chance (‰) that a crossing dooms the crossing thread's transaction.
    pub doom_permille: u32,
    /// Chance (‰) that a batched (commit write-back) crossing is stalled.
    pub commit_delay_permille: u32,
    /// Chance (‰) that a crossing requests a crash at `kill_point`
    /// (first request wins; the rate shapes *when* in virtual time the
    /// crash lands).
    pub kill_permille: u32,
    /// The structural crash point a kill request names.
    pub kill_point: Option<KillPoint>,
}

impl ChaosConfig {
    /// A moderate default schedule: 5% delayed crossings of up to 40 ticks,
    /// 1% forced aborts, 20% delayed commits.
    pub fn new(seed: u64) -> Self {
        ChaosConfig {
            seed,
            delay_permille: 50,
            max_delay: 40,
            doom_permille: 10,
            commit_delay_permille: 200,
            kill_permille: 0,
            kill_point: None,
        }
    }

    /// Sets the ordinary-crossing delay rate (‰).
    pub fn with_delay_permille(mut self, pm: u32) -> Self {
        self.delay_permille = pm;
        self
    }

    /// Sets the maximum injected stall, in ticks.
    pub fn with_max_delay(mut self, ticks: Ticks) -> Self {
        self.max_delay = ticks.max(1);
        self
    }

    /// Sets the forced-abort rate (‰).
    pub fn with_doom_permille(mut self, pm: u32) -> Self {
        self.doom_permille = pm;
        self
    }

    /// Sets the delayed-commit rate (‰).
    pub fn with_commit_delay_permille(mut self, pm: u32) -> Self {
        self.commit_delay_permille = pm;
        self
    }

    /// Enables kill-and-recover injection: crossings request a crash at
    /// `point` with chance `pm` (‰).
    pub fn with_kill(mut self, point: KillPoint, pm: u32) -> Self {
        self.kill_point = Some(point);
        self.kill_permille = pm;
        self
    }
}

/// Injection counters reported by [`ChaosGate::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Crossings that were stalled (ordinary and commit-batch combined).
    pub delays: u64,
    /// Total extra ticks injected by those stalls.
    pub delay_ticks: u64,
    /// Forced aborts delivered through the doom handle.
    pub dooms: u64,
    /// Crash requests accepted by the kill switch (0 or 1 per run).
    pub kills: u64,
}

/// A [`Gate`] decorator injecting seeded faults (see the module docs).
///
/// Construct it over the machine's gate, build the [`gstm_core::Stm`] on
/// it, then [`arm`](ChaosGate::arm) it with the STM's [`DoomHandle`] —
/// the handle only exists once the STM does. An unarmed gate still injects
/// delays; dooms are silently skipped.
pub struct ChaosGate {
    inner: Arc<dyn Gate>,
    cfg: ChaosConfig,
    rngs: Vec<Mutex<SmallRng>>,
    doom: OnceLock<DoomHandle>,
    kill: OnceLock<Arc<KillSwitch>>,
    delays: AtomicU64,
    delay_ticks: AtomicU64,
    dooms: AtomicU64,
    kills: AtomicU64,
}

impl ChaosGate {
    /// Wraps `inner`, deriving one RNG stream per thread below `threads`.
    /// Crossings from threads at or above `threads` pass through unchanged.
    pub fn new(cfg: ChaosConfig, inner: Arc<dyn Gate>, threads: usize) -> Self {
        let rngs = (0..threads)
            .map(|i| {
                let stream =
                    cfg.seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                Mutex::new(SmallRng::seed_from_u64(stream))
            })
            .collect();
        ChaosGate {
            inner,
            cfg,
            rngs,
            doom: OnceLock::new(),
            kill: OnceLock::new(),
            delays: AtomicU64::new(0),
            delay_ticks: AtomicU64::new(0),
            dooms: AtomicU64::new(0),
            kills: AtomicU64::new(0),
        }
    }

    /// Arms forced aborts with the STM's doom handle. Later calls are
    /// ignored (the first handle wins).
    pub fn arm(&self, handle: DoomHandle) {
        let _ = self.doom.set(handle);
    }

    /// Arms kill-and-recover with the WAL's kill switch. Later calls are
    /// ignored (the first switch wins). An unarmed gate skips kill draws.
    pub fn arm_kill(&self, switch: Arc<KillSwitch>) {
        let _ = self.kill.set(switch);
    }

    /// Injection counters so far.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            delays: self.delays.load(Ordering::SeqCst),
            delay_ticks: self.delay_ticks.load(Ordering::SeqCst),
            dooms: self.dooms.load(Ordering::SeqCst),
            kills: self.kills.load(Ordering::SeqCst),
        }
    }

    /// Draws this crossing's perturbation: extra ticks to stall (0 = none),
    /// plus a possible doom delivered as a side effect.
    fn perturb(&self, thread: ThreadId, commit_batch: bool) -> Ticks {
        let Some(rng) = self.rngs.get(thread.index()) else {
            return 0;
        };
        let mut rng = rng.lock();
        let delay_chance =
            if commit_batch { self.cfg.commit_delay_permille } else { self.cfg.delay_permille };
        let mut extra = 0;
        if delay_chance > 0 && rng.gen_range(0..1000u32) < delay_chance {
            extra = rng.gen_range(1..=self.cfg.max_delay.max(1));
            self.delays.fetch_add(1, Ordering::SeqCst);
            self.delay_ticks.fetch_add(extra, Ordering::SeqCst);
        }
        if self.cfg.doom_permille > 0 && rng.gen_range(0..1000u32) < self.cfg.doom_permille {
            if let Some(handle) = self.doom.get() {
                handle.doom(thread);
                self.dooms.fetch_add(1, Ordering::SeqCst);
            }
        }
        if self.cfg.kill_permille > 0 && rng.gen_range(0..1000u32) < self.cfg.kill_permille {
            if let (Some(point), Some(switch)) = (self.cfg.kill_point, self.kill.get()) {
                if switch.request(point) {
                    self.kills.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        extra
    }
}

impl Gate for ChaosGate {
    fn pass(&self, thread: ThreadId, cost: Ticks) {
        let extra = self.perturb(thread, false);
        self.inner.pass(thread, cost + extra);
    }

    fn pass_batch(&self, thread: ThreadId, cost: Ticks, count: u64) {
        // A delayed commit: stall before the write-back batch, then forward
        // the batch itself untouched so its charge total stays exact.
        let extra = self.perturb(thread, true);
        if extra > 0 {
            self.inner.pass(thread, extra);
        }
        self.inner.pass_batch(thread, cost, count);
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }

    fn thread_time(&self, thread: ThreadId) -> u64 {
        self.inner.thread_time(thread)
    }
}

impl std::fmt::Debug for ChaosGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosGate")
            .field("cfg", &self.cfg)
            .field("stats", &self.stats())
            .field("armed", &self.doom.get().is_some())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_core::{NullGate, RealGate};

    fn t(i: u16) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn charges_at_least_the_base_cost() {
        let inner = Arc::new(RealGate::new(0));
        let gate = ChaosGate::new(ChaosConfig::new(1), inner.clone(), 2);
        for _ in 0..100 {
            gate.pass(t(0), 3);
        }
        assert!(inner.thread_time(t(0)) >= 300);
        let s = gate.stats();
        assert_eq!(inner.thread_time(t(0)), 300 + s.delay_ticks);
    }

    #[test]
    fn schedule_is_a_pure_function_of_the_seed() {
        let run = |seed| {
            let gate = ChaosGate::new(ChaosConfig::new(seed), Arc::new(NullGate), 2);
            for i in 0..500u64 {
                gate.pass(t((i % 2) as u16), 1);
                gate.pass_batch(t((i % 2) as u16), 2, 3);
            }
            gate.stats()
        };
        assert_eq!(run(7), run(7), "same seed, same injections");
        assert_ne!(run(7), run(8), "different seed, different injections");
    }

    #[test]
    fn unarmed_gate_skips_dooms_and_out_of_range_threads_pass_through() {
        let cfg = ChaosConfig::new(3).with_doom_permille(1000);
        let gate = ChaosGate::new(cfg, Arc::new(NullGate), 1);
        gate.pass(t(0), 1);
        assert_eq!(gate.stats().dooms, 0, "no handle, no dooms");
        gate.pass(t(9), 1); // no RNG stream: untouched crossing
        assert_eq!(gate.stats().delays, gate.stats().delays);
    }

    #[test]
    fn armed_kill_requests_exactly_one_crash() {
        let cfg = ChaosConfig::new(11)
            .with_delay_permille(0)
            .with_doom_permille(0)
            .with_kill(KillPoint::MidBatch, 1000);
        let gate = ChaosGate::new(cfg, Arc::new(NullGate), 2);
        gate.pass(t(0), 1);
        assert_eq!(gate.stats().kills, 0, "unarmed gate skips kill draws");
        let switch = Arc::new(KillSwitch::new());
        gate.arm_kill(Arc::clone(&switch));
        for i in 0..10u16 {
            gate.pass(t(i % 2), 1);
        }
        assert_eq!(gate.stats().kills, 1, "first request wins, later draws are no-ops");
        assert_eq!(switch.requested(), Some(KillPoint::MidBatch));
        assert!(!switch.is_dead(), "the WAL, not the gate, trips the switch");
    }

    #[test]
    fn armed_gate_delivers_dooms() {
        use gstm_core::{Stm, StmConfig};
        let stm = Stm::new(StmConfig::new(1));
        let cfg = ChaosConfig::new(3).with_doom_permille(1000).with_delay_permille(0);
        let gate = ChaosGate::new(cfg, Arc::new(NullGate), 1);
        gate.arm(stm.doom_handle());
        gate.arm(stm.doom_handle()); // second arm is a no-op
        gate.pass(t(0), 1);
        assert_eq!(gate.stats().dooms, 1);
    }
}
