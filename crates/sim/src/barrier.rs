//! Machine-aware barriers.
//!
//! SynQuake's server loop processes each frame "within barriers" (§VIII).
//! A plain [`std::sync::Barrier`] would block workers *outside* the gate and
//! hang the simulated scheduler, so workloads synchronize through
//! [`WaitBarrier`], implemented by [`SimBarrier`] (simulation) and
//! [`NativeBarrier`] (real threads).

use std::sync::Arc;

use gstm_core::ThreadId;

use crate::gate::{Msg, Shared};

/// A barrier usable from gated worker closures on either machine.
pub trait WaitBarrier: Send + Sync {
    /// Blocks `thread` until all parties arrive.
    fn wait(&self, thread: ThreadId);
}

/// Barrier on the simulated machine: arrival parks the worker in the
/// scheduler; release aligns all members' virtual clocks to the slowest
/// member, exactly like a real barrier aligns wall-clock time.
#[derive(Debug)]
pub struct SimBarrier {
    id: u32,
    parties: usize,
    shared: Arc<Shared>,
}

impl SimBarrier {
    pub(crate) fn new(id: u32, parties: usize, shared: Arc<Shared>) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        SimBarrier { id, parties, shared }
    }

    /// Number of parties this barrier waits for.
    pub fn parties(&self) -> usize {
        self.parties
    }
}

impl WaitBarrier for SimBarrier {
    fn wait(&self, thread: ThreadId) {
        self.shared.rendezvous(
            Msg::Barrier { thread: thread.index(), id: self.id, parties: self.parties },
            thread.index(),
        );
    }
}

/// Barrier for native-thread runs; wraps [`std::sync::Barrier`].
#[derive(Debug)]
pub struct NativeBarrier {
    inner: std::sync::Barrier,
}

impl NativeBarrier {
    /// Creates a native barrier for `parties` threads.
    pub fn new(parties: usize) -> Self {
        NativeBarrier { inner: std::sync::Barrier::new(parties) }
    }
}

impl WaitBarrier for NativeBarrier {
    fn wait(&self, _thread: ThreadId) {
        self.inner.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, SimMachine};
    use gstm_core::sync::Mutex;
    use gstm_core::Gate;

    #[test]
    fn sim_barrier_aligns_clocks() {
        let m = SimMachine::new(SimConfig::new(2, 9).with_jitter(0));
        let gate = m.gate();
        let barrier = m.barrier(2);
        let barrier = &barrier;
        let after = Mutex::new(Vec::new());
        let after_ref = &after;
        let workers: Vec<Box<dyn FnOnce() + Send + '_>> = (0..2usize)
            .map(|i| {
                let gate = Arc::clone(&gate);
                Box::new(move || {
                    let t = ThreadId::new(i as u16);
                    // Unequal pre-barrier work.
                    gate.pass(t, if i == 0 { 5 } else { 50 });
                    barrier.wait(t);
                    after_ref.lock().push((i, gate.thread_time(t)));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        m.run(workers);
        let after = after.into_inner();
        assert_eq!(after.len(), 2);
        assert_eq!(after[0].1, after[1].1, "clocks align at barrier release: {after:?}");
        assert_eq!(after[0].1, 50);
    }

    #[test]
    fn sim_barrier_reusable_across_rounds() {
        let m = SimMachine::new(SimConfig::new(3, 5));
        let gate = m.gate();
        let barrier = m.barrier(3);
        let barrier = &barrier;
        let rounds = 4;
        let counter = Mutex::new(0u32);
        let counter_ref = &counter;
        let workers: Vec<Box<dyn FnOnce() + Send + '_>> = (0..3usize)
            .map(|i| {
                let gate = Arc::clone(&gate);
                Box::new(move || {
                    let t = ThreadId::new(i as u16);
                    for _ in 0..rounds {
                        gate.pass(t, 1 + i as u64);
                        barrier.wait(t);
                        *counter_ref.lock() += 1;
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        m.run(workers);
        assert_eq!(counter.into_inner(), 3 * rounds);
    }

    #[test]
    fn native_barrier_round_trip() {
        let b = Arc::new(NativeBarrier::new(2));
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.wait(ThreadId::new(1)));
        b.wait(ThreadId::new(0));
        h.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_party_barrier_rejected() {
        let m = SimMachine::new(SimConfig::new(1, 1));
        let _ = m.barrier(0);
    }
}
