//! The discrete-event scheduler.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gstm_core::rng::SmallRng;
use gstm_core::sync::{channel, Mutex, Receiver, Sender};
use gstm_telemetry::MetricsRegistry;

use crate::barrier::SimBarrier;
use crate::gate::{Msg, Shared, SimGate, CENTI};

/// Configuration of a simulated machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of virtual cores. When more workers than cores are unfinished,
    /// step costs are scaled up by the oversubscription factor — a coarse
    /// processor-sharing model. The experiments follow the paper and run one
    /// worker per core, where the model is exact.
    pub cores: usize,
    /// RNG seed: the identity of "a run" (the paper averages over 20 runs;
    /// we average over 20 seeds).
    pub seed: u64,
    /// Per-step cost jitter in percent (0 disables). Models the timing noise
    /// of real hardware; also the tie-breaker that makes interleavings
    /// differ across seeds.
    pub jitter_pct: u32,
}

impl SimConfig {
    /// A machine with `cores` cores, the given seed, and the default 25%
    /// jitter.
    pub fn new(cores: usize, seed: u64) -> Self {
        assert!(cores > 0, "a machine needs at least one core");
        SimConfig { cores, seed, jitter_pct: 25 }
    }

    /// Sets the jitter percentage.
    pub fn with_jitter(mut self, pct: u32) -> Self {
        self.jitter_pct = pct;
        self
    }
}

/// Outcome of one simulated run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Final virtual clock of each worker, in ticks, *including* barrier
    /// waiting (wall-clock-like).
    pub thread_ticks: Vec<u64>,
    /// Per-worker **active** time: the costs the thread itself was charged
    /// (work, reads/writes, commit effort, abort penalties and re-executed
    /// attempts, guidance hold polls) — excluding time parked at barriers.
    /// This is the paper's "execution time of a thread": it "accounts for
    /// the number of rollbacks seen by the thread" (§II-B).
    pub active_ticks: Vec<u64>,
    /// Virtual makespan (max thread clock), in ticks.
    pub makespan: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum St {
    Running,
    /// Parked at the gate: `(cost, steps_left)`. A plain pass is a batch of
    /// one; a [`Msg::PassBatch`] parks with its full count and is re-queued
    /// here (without waking) until the last sub-step is granted.
    Waiting(u64, u64),
    InBarrier(u32),
    Finished,
}

/// A deterministic simulated multicore machine.
///
/// Construct, wire its [`SimMachine::gate`] into an [`gstm_core::Stm`],
/// then [`SimMachine::run`] a vector of worker closures (index = thread id).
/// A machine instance runs **once**; build a fresh one per seed.
#[derive(Debug)]
pub struct SimMachine {
    config: SimConfig,
    shared: Arc<Shared>,
    req_rx: Receiver<Msg>,
    grant_txs: Vec<Sender<()>>,
    next_barrier: AtomicU32,
    used: AtomicBool,
    metrics: Option<Arc<MetricsRegistry>>,
}

/// Upper bound on workers a single machine supports.
const MAX_WORKERS: usize = 512;

impl SimMachine {
    /// Creates a machine.
    pub fn new(config: SimConfig) -> Self {
        let (req_tx, req_rx) = channel();
        let mut grants = Vec::with_capacity(MAX_WORKERS);
        let mut grant_txs = Vec::with_capacity(MAX_WORKERS);
        for _ in 0..MAX_WORKERS {
            // At most one grant is ever outstanding per worker (the worker
            // parks right after requesting), so unbounded is equivalent to
            // the old bounded(1) channel here.
            let (tx, rx) = channel();
            grants.push(rx);
            grant_txs.push(tx);
        }
        let shared = Arc::new(Shared {
            req_tx,
            grants,
            clocks: (0..MAX_WORKERS).map(|_| AtomicU64::new(0)).collect(),
            active: (0..MAX_WORKERS).map(|_| AtomicU64::new(0)).collect(),
            now: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
        });
        SimMachine {
            config,
            shared,
            req_rx,
            grant_txs,
            next_barrier: AtomicU32::new(0),
            used: AtomicBool::new(false),
            metrics: None,
        }
    }

    /// Attaches a telemetry registry: after [`SimMachine::run`] completes,
    /// the scheduler publishes its virtual-time gauges (makespan, global
    /// clock, grant and barrier-release counts, per-thread active ticks)
    /// into it.
    #[must_use]
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// This machine's configuration.
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// The gate to install into the STM (and to use for `work` charging).
    pub fn gate(&self) -> Arc<SimGate> {
        Arc::new(SimGate { shared: Arc::clone(&self.shared) })
    }

    /// Creates a barrier for `parties` workers, usable inside worker
    /// closures via [`crate::WaitBarrier`].
    pub fn barrier(&self, parties: usize) -> SimBarrier {
        let id = self.next_barrier.fetch_add(1, Ordering::Relaxed);
        SimBarrier::new(id, parties, Arc::clone(&self.shared))
    }

    /// Runs the workers to completion under the deterministic scheduler and
    /// returns per-thread virtual times.
    ///
    /// Worker `i` is thread `i`; every `Gate` call inside must use
    /// `ThreadId::new(i)`.
    ///
    /// # Panics
    ///
    /// Panics if called twice, if a worker panics (the payload message is
    /// propagated), if workers deadlock (all parked in barriers that cannot
    /// fill), or if the scheduler starves for 60 s of wall time.
    pub fn run(&self, workers: Vec<Box<dyn FnOnce() + Send + '_>>) -> RunReport {
        assert!(
            !self.used.swap(true, Ordering::SeqCst),
            "a SimMachine runs once; create a fresh one per seed"
        );
        let n = workers.len();
        assert!(n > 0 && n <= MAX_WORKERS, "worker count must be in 1..={MAX_WORKERS}");

        let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for (i, f) in workers.into_iter().enumerate() {
                let shared = Arc::clone(&self.shared);
                let panics = &panics;
                scope.spawn(move || {
                    // First rendezvous: the scheduler controls even the
                    // workers' start order.
                    shared.rendezvous(Msg::Pass { thread: i, cost: 0 }, i);
                    let result = std::panic::catch_unwind(AssertUnwindSafe(f));
                    if let Err(payload) = result {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "worker panicked".into());
                        panics.lock().push((i, msg));
                    }
                    // Done must always be sent or the scheduler hangs.
                    let _ = shared.req_tx.send(Msg::Done { thread: i });
                });
            }
            let sched = self.schedule(n);
            if let Some(reg) = &self.metrics {
                reg.set_gauge("gstm_sim_sched_grants_total", sched.grants);
                reg.set_gauge("gstm_sim_barrier_releases_total", sched.barrier_releases);
            }
        });
        let panics = panics.into_inner();
        if let Some((i, msg)) = panics.into_iter().next() {
            panic!("sim worker {i} panicked: {msg}");
        }
        let thread_ticks: Vec<u64> =
            (0..n).map(|i| self.shared.clocks[i].load(Ordering::SeqCst) / CENTI).collect();
        let active_ticks: Vec<u64> =
            (0..n).map(|i| self.shared.active[i].load(Ordering::SeqCst) / CENTI).collect();
        let makespan = thread_ticks.iter().copied().max().unwrap_or(0);
        if let Some(reg) = &self.metrics {
            reg.set_gauge("gstm_sim_makespan_ticks", makespan);
            reg.set_gauge("gstm_sim_now_ticks", self.shared.now.load(Ordering::SeqCst) / CENTI);
            for (i, &t) in active_ticks.iter().enumerate() {
                reg.set_gauge(&format!("gstm_sim_active_ticks{{thread=\"{i}\"}}"), t);
            }
        }
        RunReport { thread_ticks, active_ticks, makespan }
    }

    /// Aborts the run: poisons the shared state so parked workers unwind
    /// (instead of blocking `thread::scope` forever), then panics.
    fn die(&self, msg: &str) -> ! {
        self.shared.poisoned.store(true, std::sync::atomic::Ordering::SeqCst);
        panic!("{msg}");
    }

    /// The scheduler proper: runs on the caller thread until all `n`
    /// workers are finished.
    fn schedule(&self, n: usize) -> SchedStats {
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut status = vec![St::Running; n];
        let mut running = n;
        let mut finished = 0usize;
        let mut barriers: HashMap<u32, (usize, Vec<usize>)> = HashMap::new();
        let mut stats = SchedStats::default();

        while finished < n {
            // Drain messages until no worker is on-CPU.
            while running > 0 {
                let msg = match self.req_rx.recv_timeout(Duration::from_secs(60)) {
                    Ok(msg) => msg,
                    Err(_) => self.die("sim scheduler starved: a worker blocked outside the gate"),
                };
                match msg {
                    Msg::Pass { thread, cost } => {
                        status[thread] = St::Waiting(cost, 1);
                        running -= 1;
                    }
                    Msg::PassBatch { thread, cost, count } => {
                        debug_assert!(count >= 2, "gate handles count 0/1 without a message");
                        status[thread] = St::Waiting(cost, count.max(1));
                        running -= 1;
                    }
                    Msg::Barrier { thread, id, parties } => {
                        status[thread] = St::InBarrier(id);
                        let entry = barriers.entry(id).or_insert((parties, Vec::new()));
                        entry.0 = parties;
                        entry.1.push(thread);
                        running -= 1;
                    }
                    Msg::Done { thread } => {
                        status[thread] = St::Finished;
                        running -= 1;
                        finished += 1;
                    }
                }
            }

            // Release any barrier that filled: align clocks to the slowest
            // member (that is what a barrier does to time) and make all
            // members runnable.
            let full: Vec<u32> = barriers
                .iter()
                .filter(|(_, (parties, waiters))| waiters.len() >= *parties)
                .map(|(&id, _)| id)
                .collect();
            for id in full {
                stats.barrier_releases += 1;
                let (_, waiters) = barriers.remove(&id).expect("barrier disappeared");
                let max_clock = waiters
                    .iter()
                    .map(|&w| self.shared.clocks[w].load(Ordering::SeqCst))
                    .max()
                    .unwrap_or(0);
                for w in waiters {
                    self.shared.clocks[w].store(max_clock, Ordering::SeqCst);
                    status[w] = St::Waiting(0, 1);
                }
            }

            if finished == n {
                break;
            }

            // Pick the waiting worker with the smallest clock (seeded
            // tie-break), charge its cost + jitter, and grant the step.
            let min_clock = status
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, St::Waiting(..)))
                .map(|(i, _)| self.shared.clocks[i].load(Ordering::SeqCst))
                .min();
            let Some(min_clock) = min_clock else {
                self.die(
                    "sim deadlock: no runnable workers \
                     (all remaining workers parked in barriers that cannot fill)",
                );
            };
            let candidates: Vec<usize> = status
                .iter()
                .enumerate()
                .filter(|(i, s)| {
                    matches!(s, St::Waiting(..))
                        && self.shared.clocks[*i].load(Ordering::SeqCst) == min_clock
                })
                .map(|(i, _)| i)
                .collect();
            let pick = candidates[rng.gen_range(0..candidates.len())];
            let St::Waiting(cost, left) = status[pick] else { unreachable!() };

            let active = n - finished;
            let scale = active.div_ceil(self.config.cores) as u64;
            let base = cost * CENTI;
            let jitter = if self.config.jitter_pct > 0 && base > 0 {
                rng.gen_range(0..=base * self.config.jitter_pct as u64 / 100)
            } else {
                0
            };
            let advance = (base + jitter) * scale;
            let new_clock = min_clock + advance;
            self.shared.clocks[pick].store(new_clock, Ordering::SeqCst);
            self.shared.active[pick].fetch_add(advance, Ordering::SeqCst);
            self.shared.now.fetch_max(new_clock, Ordering::SeqCst);

            stats.grants += 1;
            if left > 1 {
                // Remaining sub-steps of a batched crossing: the worker is
                // still parked, so re-queue it exactly as if it had
                // immediately requested the next pass — the scheduler loops
                // back through the same barrier checks, min-clock pick and
                // RNG draws a chain of individual passes would see.
                status[pick] = St::Waiting(cost, left - 1);
            } else {
                status[pick] = St::Running;
                running = 1;
                self.grant_txs[pick].send(()).expect("worker vanished");
            }
        }
        stats
    }
}

/// Scheduler-side counters published as telemetry gauges.
#[derive(Clone, Copy, Debug, Default)]
struct SchedStats {
    /// Scheduling decisions (steps granted).
    grants: u64,
    /// Barriers released.
    barrier_releases: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_core::{Gate, ThreadId};

    fn boxed<'a>(f: impl FnOnce() + Send + 'a) -> Box<dyn FnOnce() + Send + 'a> {
        Box::new(f)
    }

    #[test]
    fn single_worker_accumulates_cost() {
        let m = SimMachine::new(SimConfig::new(1, 7).with_jitter(0));
        let gate = m.gate();
        let report = m.run(vec![boxed({
            let gate = Arc::clone(&gate);
            move || {
                for _ in 0..10 {
                    gate.pass(ThreadId::new(0), 5);
                }
            }
        })]);
        assert_eq!(report.thread_ticks, vec![50]);
        assert_eq!(report.makespan, 50);
    }

    #[test]
    fn identical_seeds_identical_outcome() {
        let run = |seed: u64| {
            let m = SimMachine::new(SimConfig::new(2, seed));
            let gate = m.gate();
            let order = Arc::new(Mutex::new(Vec::new()));
            let workers = (0..2usize)
                .map(|i| {
                    let gate = Arc::clone(&gate);
                    let order = Arc::clone(&order);
                    boxed(move || {
                        for k in 0..20u32 {
                            gate.pass(ThreadId::new(i as u16), 1 + (k % 3) as u64);
                            order.lock().push((i, k));
                        }
                    })
                })
                .collect();
            let report = m.run(workers);
            (report, Arc::try_unwrap(order).unwrap().into_inner())
        };
        let (r1, o1) = run(33);
        let (r2, o2) = run(33);
        assert_eq!(r1, r2);
        assert_eq!(o1, o2, "interleavings must be deterministic per seed");
        let (_, o3) = run(34);
        assert_ne!(o1, o3, "different seeds should interleave differently");
    }

    #[test]
    fn min_clock_scheduling_is_fair() {
        let m = SimMachine::new(SimConfig::new(2, 1).with_jitter(0));
        let gate = m.gate();
        let workers = (0..2usize)
            .map(|i| {
                let gate = Arc::clone(&gate);
                boxed(move || {
                    for _ in 0..100 {
                        gate.pass(ThreadId::new(i as u16), 1);
                    }
                })
            })
            .collect();
        let report = m.run(workers);
        assert_eq!(report.thread_ticks[0], report.thread_ticks[1]);
    }

    #[test]
    fn oversubscription_dilates_time() {
        let run = |cores| {
            let m = SimMachine::new(SimConfig::new(cores, 1).with_jitter(0));
            let gate = m.gate();
            let workers = (0..4usize)
                .map(|i| {
                    let gate = Arc::clone(&gate);
                    boxed(move || {
                        for _ in 0..10 {
                            gate.pass(ThreadId::new(i as u16), 1);
                        }
                    })
                })
                .collect();
            m.run(workers).makespan
        };
        let full = run(4);
        let half = run(2);
        assert!(half > full, "2 cores must be slower than 4 for 4 workers");
    }

    #[test]
    #[should_panic(expected = "worker 0 panicked: boom")]
    fn worker_panic_propagates() {
        let m = SimMachine::new(SimConfig::new(1, 1));
        m.run(vec![boxed(|| panic!("boom"))]);
    }

    #[test]
    #[should_panic(expected = "runs once")]
    fn machine_runs_once() {
        let m = SimMachine::new(SimConfig::new(1, 1));
        m.run(vec![boxed(|| {})]);
        m.run(vec![boxed(|| {})]);
    }

    #[test]
    fn borrowing_workers_is_allowed() {
        let data = [1u64, 2, 3];
        let m = SimMachine::new(SimConfig::new(1, 1));
        let gate = m.gate();
        let sum = Mutex::new(0u64);
        m.run(vec![boxed(|| {
            gate.pass(ThreadId::new(0), 1);
            *sum.lock() = data.iter().sum();
        })]);
        assert_eq!(*sum.lock(), 6);
    }

    #[test]
    fn telemetry_gauges_published() {
        let reg = Arc::new(MetricsRegistry::new(1));
        let m = SimMachine::new(SimConfig::new(1, 1).with_jitter(0)).with_metrics(Arc::clone(&reg));
        let gate = m.gate();
        m.run(vec![boxed(move || gate.pass(ThreadId::new(0), 9))]);
        assert_eq!(reg.gauge("gstm_sim_makespan_ticks"), Some(9));
        assert_eq!(reg.gauge("gstm_sim_now_ticks"), Some(9));
        assert!(reg.gauge("gstm_sim_sched_grants_total").unwrap() >= 1);
        assert_eq!(reg.gauge("gstm_sim_active_ticks{thread=\"0\"}"), Some(9));
    }

    #[test]
    fn pass_batch_is_indistinguishable_from_looped_pass() {
        // Two contending workers, jitter on: the batched crossing must
        // yield the exact same clocks, makespan, and grant count as the
        // equivalent chain of individual passes (same RNG draw sequence).
        let run = |batched: bool| {
            let m = SimMachine::new(SimConfig::new(2, 11));
            let reg = Arc::new(MetricsRegistry::new(2));
            let m = m.with_metrics(Arc::clone(&reg));
            let gate = m.gate();
            let workers = (0..2usize)
                .map(|i| {
                    let gate = Arc::clone(&gate);
                    boxed(move || {
                        let t = ThreadId::new(i as u16);
                        for _ in 0..5 {
                            gate.pass(t, 2);
                            if batched {
                                gate.pass_batch(t, 3, 4);
                            } else {
                                for _ in 0..4 {
                                    gate.pass(t, 3);
                                }
                            }
                        }
                    })
                })
                .collect();
            let report = m.run(workers);
            (report, reg.gauge("gstm_sim_sched_grants_total"))
        };
        let (plain, plain_grants) = run(false);
        let (batch, batch_grants) = run(true);
        assert_eq!(plain, batch, "batching must not change any virtual time");
        assert_eq!(plain_grants, batch_grants, "each sub-step is a grant");
    }

    #[test]
    fn pass_batch_small_counts_degenerate() {
        let m = SimMachine::new(SimConfig::new(1, 3).with_jitter(0));
        let gate = m.gate();
        let report = m.run(vec![boxed({
            let gate = Arc::clone(&gate);
            move || {
                gate.pass_batch(ThreadId::new(0), 4, 0);
                gate.pass_batch(ThreadId::new(0), 4, 1);
                gate.pass_batch(ThreadId::new(0), 4, 2);
            }
        })]);
        assert_eq!(report.thread_ticks, vec![12]);
    }

    #[test]
    fn now_is_monotone_and_tracks_max() {
        let m = SimMachine::new(SimConfig::new(1, 1).with_jitter(0));
        let gate = m.gate();
        let g2 = Arc::clone(&gate);
        m.run(vec![boxed(move || {
            g2.pass(ThreadId::new(0), 7);
        })]);
        assert_eq!(gate.now(), 7);
        assert_eq!(gate.thread_time(ThreadId::new(0)), 7);
    }
}
