//! # gstm-sim — a deterministic virtual-core machine for STM experiments
//!
//! The paper evaluates on dedicated 8-core and 16-core x86 machines with one
//! worker thread pinned per core (Table II). This crate substitutes for that
//! hardware: it is a **discrete-event scheduler** that runs real Rust worker
//! closures (each on its own OS thread) but serializes every observable step
//! through [`SimGate`], an implementation of [`gstm_core::Gate`].
//!
//! Each `pass(thread, cost)` blocks the worker until the scheduler grants
//! the step; the scheduler always grants the runnable worker with the
//! smallest *virtual clock*, advancing it by the step's cost plus a seeded
//! random jitter (the stand-in for the paper's "architectural artifacts like
//! cache-misses ... non-deterministic memory access latency"). Two runs with
//! the same seed produce byte-identical event sequences; different seeds are
//! the reproduction's equivalent of the paper's repeated timing runs.
//!
//! Because exactly one worker executes between grants, all shared-memory
//! interleaving is serialized in grant order — the engine's atomics stay
//! correct and the whole execution is deterministic.
//!
//! ```
//! use std::sync::Arc;
//! use gstm_core::{Stm, StmConfig, TVar, ThreadId, TxId};
//! use gstm_sim::{SimConfig, SimMachine};
//!
//! let machine = SimMachine::new(SimConfig::new(2, 42));
//! let stm = Arc::new(Stm::with_parts(
//!     StmConfig::new(2),
//!     machine.gate(),
//!     Arc::new(gstm_core::NullSink),
//!     Arc::new(gstm_core::AdmitAll),
//!     Arc::new(gstm_core::cm::Aggressive),
//! ));
//! let v = TVar::new(0i64);
//! let workers = (0..2u16)
//!     .map(|i| {
//!         let stm = Arc::clone(&stm);
//!         let v = v.clone();
//!         Box::new(move || {
//!             for _ in 0..10 {
//!                 stm.run(ThreadId::new(i), TxId::new(0), |tx| {
//!                     let n = tx.read(&v)?;
//!                     tx.write(&v, n + 1)
//!                 });
//!             }
//!         }) as Box<dyn FnOnce() + Send>
//!     })
//!     .collect();
//! let report = machine.run(workers);
//! assert_eq!(*v.load_unlogged(), 20);
//! assert_eq!(report.thread_ticks.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod barrier;
mod chaos;
mod gate;
mod machine;

pub use barrier::{NativeBarrier, SimBarrier, WaitBarrier};
pub use chaos::{ChaosConfig, ChaosGate, ChaosStats};
pub use gate::SimGate;
pub use machine::{RunReport, SimConfig, SimMachine};
