//! The simulated machine's [`Gate`] implementation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gstm_core::sync::{Receiver, RecvTimeoutError, Sender};
use gstm_core::{Gate, ThreadId, Ticks};

/// Virtual clocks are kept in *centiticks* so that sub-tick jitter exists
/// even for unit-cost operations.
pub(crate) const CENTI: u64 = 100;

/// Messages workers send to the scheduler.
#[derive(Debug)]
pub(crate) enum Msg {
    /// Worker wants to take a step of the given cost.
    Pass { thread: usize, cost: Ticks },
    /// Worker wants to take `count` consecutive steps of the given cost as
    /// one machine-boundary crossing. The scheduler makes the same
    /// per-sub-step decisions (same RNG draws, clock/active/now updates and
    /// grant counts) it would for `count` individual [`Msg::Pass`]es, but
    /// wakes the worker only after the last one.
    PassBatch { thread: usize, cost: Ticks, count: u64 },
    /// Worker entered a barrier.
    Barrier { thread: usize, id: u32, parties: usize },
    /// Worker finished.
    Done { thread: usize },
}

/// State shared between the scheduler and the workers' gate.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) req_tx: Sender<Msg>,
    pub(crate) grants: Vec<Receiver<()>>,
    /// Per-thread virtual clocks, in centiticks.
    pub(crate) clocks: Vec<AtomicU64>,
    /// Per-thread *active* time: charged costs only, excluding barrier-wait
    /// alignment, in centiticks.
    pub(crate) active: Vec<AtomicU64>,
    /// Global virtual time (monotone max of granted clocks), centiticks.
    pub(crate) now: AtomicU64,
    /// Set when the scheduler aborts (deadlock/starvation): parked workers
    /// must wake up and unwind instead of blocking forever.
    pub(crate) poisoned: AtomicBool,
}

impl Shared {
    pub(crate) fn rendezvous(&self, msg: Msg, thread: usize) {
        self.req_tx.send(msg).expect("scheduler gone");
        loop {
            if self.poisoned.load(Ordering::SeqCst) {
                panic!("sim scheduler aborted; unwinding worker {thread}");
            }
            match self.grants[thread].recv_timeout(Duration::from_millis(25)) {
                Ok(()) => return,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => panic!("scheduler gone"),
            }
        }
    }
}

/// Deterministic gate handed to the STM engine and to workloads.
///
/// Every [`Gate::pass`] is a scheduling point: the calling worker blocks
/// until the discrete-event scheduler decides it is this thread's turn.
/// Obtain one from [`crate::SimMachine::gate`].
#[derive(Debug, Clone)]
pub struct SimGate {
    pub(crate) shared: Arc<Shared>,
}

impl Gate for SimGate {
    fn pass(&self, thread: ThreadId, cost: Ticks) {
        self.shared.rendezvous(Msg::Pass { thread: thread.index(), cost }, thread.index());
    }

    fn pass_batch(&self, thread: ThreadId, cost: Ticks, count: u64) {
        match count {
            0 => {}
            1 => self.pass(thread, cost),
            _ => self
                .shared
                .rendezvous(Msg::PassBatch { thread: thread.index(), cost, count }, thread.index()),
        }
    }

    fn now(&self) -> u64 {
        self.shared.now.load(Ordering::SeqCst) / CENTI
    }

    fn thread_time(&self, thread: ThreadId) -> u64 {
        self.shared.clocks[thread.index()].load(Ordering::SeqCst) / CENTI
    }
}
