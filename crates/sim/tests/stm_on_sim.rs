//! Integration: the TL2 engine running on the simulated machine must show
//! the phenomena the paper studies — conflicts/aborts under contention,
//! deterministic replay per seed, and execution-time variance across seeds.

use std::sync::Arc;

use gstm_core::cm::Aggressive;
use gstm_core::{
    AdmitAll, CountingSink, MemorySink, MulticastSink, Stm, StmConfig, TVar, ThreadId, TxId,
};
use gstm_sim::{SimConfig, SimMachine};

fn contended_run(
    seed: u64,
    threads: usize,
    txs_per_thread: usize,
    hot: &[TVar<i64>],
) -> (Vec<u64>, u64, Vec<String>) {
    // Reset shared state so repeated runs over the same variables start
    // identically (variable identity — and hence stripe mapping — must be
    // shared for replay to be byte-identical).
    for v in hot {
        v.store_unlogged(0);
    }
    let machine = SimMachine::new(SimConfig::new(threads, seed));
    let counting = Arc::new(CountingSink::new(threads));
    let memory = Arc::new(MemorySink::new());
    let sink = Arc::new(MulticastSink::new().with(counting.clone() as _).with(memory.clone() as _));
    let stm = Arc::new(Stm::with_parts(
        StmConfig::new(threads),
        machine.gate(),
        sink,
        Arc::new(AdmitAll),
        Arc::new(Aggressive),
    ));
    let workers: Vec<Box<dyn FnOnce() + Send + '_>> = (0..threads)
        .map(|i| {
            let stm = Arc::clone(&stm);
            let hot = hot.to_vec();
            Box::new(move || {
                let t = ThreadId::new(i as u16);
                for k in 0..txs_per_thread {
                    let a = &hot[k % hot.len()];
                    let b = &hot[(k + 1) % hot.len()];
                    stm.run(t, TxId::new(0), |tx| {
                        let x = tx.read(a)?;
                        let y = tx.read(b)?;
                        tx.work(20);
                        tx.write(a, x.wrapping_add(y).wrapping_add(1))
                    });
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    let report = machine.run(workers);
    let aborts: u64 = (0..threads).map(|i| counting.aborts(ThreadId::new(i as u16))).sum();
    let log: Vec<String> = memory.take().iter().map(|e| e.to_string()).collect();
    (report.thread_ticks, aborts, log)
}

fn hot_vars() -> Vec<TVar<i64>> {
    // A handful of hot variables: every transaction reads two and writes one.
    (0..4).map(|_| TVar::new(0)).collect()
}

#[test]
fn contention_produces_aborts() {
    let (_, aborts, _) = contended_run(1, 4, 50, &hot_vars());
    assert!(aborts > 0, "4 threads on 4 hot vars must conflict");
}

#[test]
fn same_seed_replays_identically() {
    let hot = hot_vars();
    let (t1, a1, l1) = contended_run(7, 4, 30, &hot);
    let (t2, a2, l2) = contended_run(7, 4, 30, &hot);
    assert_eq!(t1, t2);
    assert_eq!(a1, a2);
    assert_eq!(l1, l2, "event sequences must replay byte-identically");
}

#[test]
fn different_seeds_vary_execution_time() {
    let hot = hot_vars();
    let times: Vec<Vec<u64>> = (0..6).map(|s| contended_run(s, 4, 30, &hot).0).collect();
    let distinct: std::collections::HashSet<&Vec<u64>> = times.iter().collect();
    assert!(distinct.len() > 1, "seeds must produce differing thread times: {times:?}");
}

#[test]
fn all_commits_applied_exactly_once() {
    // The sum of per-step increments must survive contention: every commit's
    // write-back is applied exactly once and no lost updates occur.
    let threads = 4;
    let per = 25;
    let machine = SimMachine::new(SimConfig::new(threads, 3));
    let stm = Arc::new(Stm::with_parts(
        StmConfig::new(threads),
        machine.gate(),
        Arc::new(gstm_core::NullSink),
        Arc::new(AdmitAll),
        Arc::new(Aggressive),
    ));
    let v = TVar::new(0i64);
    let workers: Vec<Box<dyn FnOnce() + Send + '_>> = (0..threads)
        .map(|i| {
            let stm = Arc::clone(&stm);
            let v = v.clone();
            Box::new(move || {
                let t = ThreadId::new(i as u16);
                for _ in 0..per {
                    stm.run(t, TxId::new(0), |tx| {
                        let x = tx.read(&v)?;
                        tx.write(&v, x + 1)
                    });
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    machine.run(workers);
    assert_eq!(*v.load_unlogged(), (threads * per) as i64);
}
