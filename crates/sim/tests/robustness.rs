//! Simulator robustness: deadlock detection and misuse reporting.

use std::sync::Arc;

use gstm_core::{Gate, ThreadId};
use gstm_sim::{SimConfig, SimMachine, WaitBarrier};

#[test]
#[should_panic(expected = "deadlock")]
fn underfilled_barrier_is_detected() {
    // Two workers wait on a 3-party barrier: the scheduler must detect the
    // stuck state instead of hanging.
    let m = SimMachine::new(SimConfig::new(2, 1));
    let barrier = m.barrier(3);
    let barrier = &barrier;
    let gate = m.gate();
    let workers: Vec<Box<dyn FnOnce() + Send + '_>> = (0..2usize)
        .map(|i| {
            let gate = Arc::clone(&gate);
            Box::new(move || {
                gate.pass(ThreadId::new(i as u16), 1);
                barrier.wait(ThreadId::new(i as u16));
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    m.run(workers);
}

#[test]
fn worker_finishing_without_any_pass_is_fine() {
    let m = SimMachine::new(SimConfig::new(2, 1));
    let gate = m.gate();
    let report = m.run(vec![
        Box::new(|| {}),
        Box::new({
            let gate = Arc::clone(&gate);
            move || gate.pass(ThreadId::new(1), 3)
        }),
    ]);
    assert_eq!(report.active_ticks[0], 0);
    assert!(report.active_ticks[1] >= 3);
}

#[test]
fn active_ticks_exclude_barrier_wait() {
    let m = SimMachine::new(SimConfig::new(2, 2).with_jitter(0));
    let gate = m.gate();
    let barrier = m.barrier(2);
    let barrier = &barrier;
    let report = {
        let workers: Vec<Box<dyn FnOnce() + Send + '_>> = (0..2usize)
            .map(|i| {
                let gate = Arc::clone(&gate);
                Box::new(move || {
                    let t = ThreadId::new(i as u16);
                    // Thread 0 does 5 ticks of work, thread 1 does 50.
                    gate.pass(t, if i == 0 { 5 } else { 50 });
                    barrier.wait(t);
                    gate.pass(t, 1);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        m.run(workers)
    };
    // Wall clocks align at the barrier (both ≈ 51); active time does not.
    assert_eq!(report.thread_ticks[0], report.thread_ticks[1]);
    assert_eq!(report.active_ticks[0], 6);
    assert_eq!(report.active_ticks[1], 51);
}

#[test]
fn hundreds_of_workers_complete() {
    let n = 64;
    let m = SimMachine::new(SimConfig::new(n, 5));
    let gate = m.gate();
    let workers: Vec<Box<dyn FnOnce() + Send + '_>> = (0..n)
        .map(|i| {
            let gate = Arc::clone(&gate);
            Box::new(move || {
                for _ in 0..10 {
                    gate.pass(ThreadId::new(i as u16), 1);
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    let report = m.run(workers);
    assert_eq!(report.thread_ticks.len(), n);
    assert!(report.thread_ticks.iter().all(|&t| t >= 10));
}
