//! On-disk framing: checksummed log records and the snapshot envelope.
//!
//! A log frame is fully self-delimiting and self-verifying:
//!
//! ```text
//! seq: u64 LE | len: u32 LE | payload (len bytes) | check: u64 LE
//! ```
//!
//! `check` is FNV-1a/64 over everything before it, so a flipped bit
//! anywhere in a frame is detected rather than silently replayed, and a
//! *torn* frame (a crash mid-append left fewer bytes than the header
//! promises) is distinguishable from corruption: torn tails are the normal
//! crash outcome and are skipped; checksum mismatches are an error.
//!
//! The snapshot envelope wraps one opaque state payload the same way, plus
//! a magic number and the sequence number the state covers:
//!
//! ```text
//! magic: u64 LE | upto_seq: u64 LE | len: u32 LE | payload | check: u64 LE
//! ```

/// Identifies a snapshot envelope (and its version).
pub const SNAPSHOT_MAGIC: u64 = 0x6753_544D_5741_4C31; // "gSTMWAL1"

/// Fixed per-frame overhead: seq + len + checksum.
pub const FRAME_OVERHEAD: usize = 8 + 4 + 8;

/// FNV-1a 64-bit over `bytes` — the frame and snapshot checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why recovery refused a device's bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// A complete frame's checksum did not match: the log is corrupt (not
    /// merely torn) at the given byte offset.
    CorruptFrame {
        /// Byte offset of the offending frame.
        offset: usize,
    },
    /// The snapshot envelope failed its magic or checksum test.
    CorruptSnapshot,
    /// A frame's payload could not be decoded by the layer above.
    BadPayload {
        /// Sequence number of the undecodable record.
        seq: u64,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::CorruptFrame { offset } => {
                write!(f, "corrupt log frame at byte {offset} (checksum mismatch)")
            }
            WalError::CorruptSnapshot => write!(f, "corrupt snapshot (magic/checksum mismatch)"),
            WalError::BadPayload { seq } => write!(f, "undecodable record payload at seq {seq}"),
        }
    }
}

impl std::error::Error for WalError {}

/// Appends one encoded frame to `out`.
pub fn encode_frame(seq: u64, payload: &[u8], out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let check = fnv1a64(&out[start..]);
    out.extend_from_slice(&check.to_le_bytes());
}

/// Everything a log device's bytes decoded to.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DecodedLog {
    /// Complete, checksum-verified frames in append order.
    pub frames: Vec<(u64, Vec<u8>)>,
    /// Whether the device ended in a partial frame (a torn crash tail).
    pub torn: bool,
}

/// Decodes a device's bytes into frames.
///
/// A short tail (fewer bytes than the last header promises) sets `torn`
/// and stops — that is the expected shape of a crash mid-append. A
/// *complete* frame whose checksum fails is corruption and is an error.
///
/// # Errors
///
/// Returns [`WalError::CorruptFrame`] on a checksum mismatch.
pub fn decode_log(bytes: &[u8]) -> Result<DecodedLog, WalError> {
    let mut frames = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        if bytes.len() - off < 12 {
            return Ok(DecodedLog { frames, torn: true });
        }
        let seq = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
        let len =
            u32::from_le_bytes(bytes[off + 8..off + 12].try_into().expect("4 bytes")) as usize;
        let total = FRAME_OVERHEAD + len;
        if bytes.len() - off < total {
            return Ok(DecodedLog { frames, torn: true });
        }
        let body = &bytes[off..off + 12 + len];
        let want =
            u64::from_le_bytes(bytes[off + 12 + len..off + total].try_into().expect("8 bytes"));
        if fnv1a64(body) != want {
            return Err(WalError::CorruptFrame { offset: off });
        }
        frames.push((seq, bytes[off + 12..off + 12 + len].to_vec()));
        off += total;
    }
    Ok(DecodedLog { frames, torn: false })
}

/// Encodes a snapshot envelope covering commits `1..=upto_seq`.
pub fn encode_snapshot(upto_seq: u64, state: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + state.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
    out.extend_from_slice(&upto_seq.to_le_bytes());
    out.extend_from_slice(&(state.len() as u32).to_le_bytes());
    out.extend_from_slice(state);
    let check = fnv1a64(&out);
    out.extend_from_slice(&check.to_le_bytes());
    out
}

/// Decodes a snapshot envelope. Empty bytes mean "no snapshot yet".
///
/// # Errors
///
/// Returns [`WalError::CorruptSnapshot`] on any magic, length or checksum
/// mismatch.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Option<(u64, Vec<u8>)>, WalError> {
    if bytes.is_empty() {
        return Ok(None);
    }
    if bytes.len() < 28 {
        return Err(WalError::CorruptSnapshot);
    }
    let magic = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
    let upto = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
    if magic != SNAPSHOT_MAGIC || bytes.len() != 28 + len {
        return Err(WalError::CorruptSnapshot);
    }
    let want = u64::from_le_bytes(bytes[20 + len..28 + len].try_into().expect("8 bytes"));
    if fnv1a64(&bytes[..20 + len]) != want {
        return Err(WalError::CorruptSnapshot);
    }
    Ok(Some((upto, bytes[20..20 + len].to_vec())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut bytes = Vec::new();
        encode_frame(1, b"alpha", &mut bytes);
        encode_frame(2, b"", &mut bytes);
        encode_frame(3, b"gamma!", &mut bytes);
        let d = decode_log(&bytes).unwrap();
        assert!(!d.torn);
        assert_eq!(
            d.frames,
            vec![(1, b"alpha".to_vec()), (2, Vec::new()), (3, b"gamma!".to_vec())]
        );
    }

    #[test]
    fn torn_tail_is_not_an_error() {
        let mut bytes = Vec::new();
        encode_frame(1, b"whole", &mut bytes);
        let whole = bytes.len();
        encode_frame(2, b"torn-away", &mut bytes);
        for cut in whole + 1..bytes.len() {
            let d = decode_log(&bytes[..cut]).unwrap();
            assert!(d.torn, "cut at {cut} must read as torn");
            assert_eq!(d.frames.len(), 1, "only the whole frame survives");
        }
    }

    #[test]
    fn corrupt_complete_frame_is_detected() {
        let mut bytes = Vec::new();
        encode_frame(1, b"first", &mut bytes);
        encode_frame(2, b"second", &mut bytes);
        // Flip one payload byte of the *second* (complete) frame.
        let off = bytes.len() - 10;
        bytes[off] ^= 0x40;
        match decode_log(&bytes) {
            Err(WalError::CorruptFrame { offset }) => assert!(offset > 0),
            other => panic!("corruption must be detected, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_round_trips_and_rejects_tampering() {
        assert_eq!(decode_snapshot(&[]).unwrap(), None);
        let enc = encode_snapshot(42, b"state-bytes");
        assert_eq!(decode_snapshot(&enc).unwrap(), Some((42, b"state-bytes".to_vec())));
        let mut bad = enc.clone();
        bad[21] ^= 1;
        assert_eq!(decode_snapshot(&bad), Err(WalError::CorruptSnapshot));
        let mut short = enc;
        short.truncate(20);
        assert_eq!(decode_snapshot(&short), Err(WalError::CorruptSnapshot));
    }

    #[test]
    fn fnv_is_stable() {
        // Known FNV-1a/64 vectors: the on-disk format must never drift.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
