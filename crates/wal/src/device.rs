//! The byte-level "disk" seam below the write-ahead log.
//!
//! The log never touches the filesystem directly; it writes through a
//! [`LogDevice`]. Two implementations cover the two worlds the rest of the
//! stack runs in:
//!
//! * [`MemDevice`] — an in-memory byte vector. Under `SimGate` this is the
//!   deterministic disk: a `(seed, workload)` pair produces byte-identical
//!   device contents on every run, so crash/recovery experiments replay
//!   exactly.
//! * [`FileDevice`] — a real file, for native `RealGate` runs.
//!
//! Devices are deliberately dumb: append, read back, and atomically replace
//! (the snapshot-install/truncate primitive). Crash semantics live above
//! the device, in the log's [`gstm_core::KillSwitch`] checks — a dead log
//! simply stops calling its devices, which models a crashed process whose
//! disk retains whatever had been written.

use gstm_core::sync::Mutex;
use std::path::PathBuf;

/// An append-only byte store with atomic whole-content replacement.
pub trait LogDevice: Send + Sync {
    /// Appends `bytes` at the end.
    fn append(&self, bytes: &[u8]);

    /// The full current contents.
    fn contents(&self) -> Vec<u8>;

    /// Atomically replaces the contents with `bytes` (used to install
    /// snapshots and truncate logs).
    fn reset(&self, bytes: &[u8]);

    /// Current length in bytes.
    fn len(&self) -> u64;

    /// Whether the device holds no bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The deterministic in-memory device (the simulator's disk).
#[derive(Debug, Default)]
pub struct MemDevice {
    bytes: Mutex<Vec<u8>>,
}

impl MemDevice {
    /// An empty device.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LogDevice for MemDevice {
    fn append(&self, bytes: &[u8]) {
        self.bytes.lock().extend_from_slice(bytes);
    }

    fn contents(&self) -> Vec<u8> {
        self.bytes.lock().clone()
    }

    fn reset(&self, bytes: &[u8]) {
        *self.bytes.lock() = bytes.to_vec();
    }

    fn len(&self) -> u64 {
        self.bytes.lock().len() as u64
    }
}

/// A real file. `reset` writes a temp file and renames it over the target,
/// so a crash during snapshot install leaves either the old or the new
/// contents, never a mix. I/O errors are deliberately swallowed — the
/// recovery path treats unreadable state as an empty device, and durability
/// experiments assert on recovered *contents*, not on syscalls.
#[derive(Debug)]
pub struct FileDevice {
    path: PathBuf,
    /// Serializes append/reset so interleaved writers cannot tear frames.
    guard: Mutex<()>,
}

impl FileDevice {
    /// A device backed by `path` (created on first write).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FileDevice { path: path.into(), guard: Mutex::new(()) }
    }

    /// The backing path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl LogDevice for FileDevice {
    fn append(&self, bytes: &[u8]) {
        let _g = self.guard.lock();
        use std::io::Write as _;
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&self.path) {
            let _ = f.write_all(bytes);
        }
    }

    fn contents(&self) -> Vec<u8> {
        let _g = self.guard.lock();
        std::fs::read(&self.path).unwrap_or_default()
    }

    fn reset(&self, bytes: &[u8]) {
        let _g = self.guard.lock();
        let tmp = self.path.with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, bytes).is_ok() && std::fs::rename(&tmp, &self.path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    fn len(&self) -> u64 {
        let _g = self.guard.lock();
        std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_device_round_trips() {
        let d = MemDevice::new();
        assert!(d.is_empty());
        d.append(b"abc");
        d.append(b"def");
        assert_eq!(d.contents(), b"abcdef");
        assert_eq!(d.len(), 6);
        d.reset(b"xy");
        assert_eq!(d.contents(), b"xy");
    }

    #[test]
    fn file_device_round_trips() {
        let dir = std::env::temp_dir().join(format!("gstm-wal-dev-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d = FileDevice::new(dir.join("log.bin"));
        assert!(d.is_empty(), "missing file reads as empty");
        d.append(b"abc");
        d.append(b"def");
        assert_eq!(d.contents(), b"abcdef");
        d.reset(b"xy");
        assert_eq!(d.contents(), b"xy");
        assert_eq!(d.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
