//! # gstm-wal — durable commit log with group commit and crash recovery
//!
//! A write-ahead log derived from *commit write-back events*: after a
//! transaction commits, the caller hands the log an opaque record tagged
//! with the engine's global commit sequence number. Because the STM is
//! serializable and its commit sequence is the serialization order,
//! replaying the records in sequence order against a fresh store rebuilds
//! the exact committed state — command logging, with the STM supplying
//! the total order for free.
//!
//! The crate is split along the durability stack:
//!
//! * [`device`] — the byte-level "disk" seam: a deterministic in-memory
//!   device for simulator runs and a real file device for native runs;
//! * [`frame`] — checksummed on-disk framing for log records and the
//!   snapshot envelope, distinguishing *torn* tails (normal after a
//!   crash) from *corrupt* frames (an error);
//! * [`log`] — the [`Wal`] itself: group-commit batching off the
//!   lock-hold path, snapshot install with log truncation, seeded crash
//!   injection via [`gstm_core::KillSwitch`], and [`recover`] to rebuild
//!   the `snapshot + tail` prefix from a post-crash disk image.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use gstm_wal::{recover, MemDevice, Wal, WalConfig};
//!
//! let log = Arc::new(MemDevice::new());
//! let snap = Arc::new(MemDevice::new());
//! let wal = Wal::new(WalConfig::new().with_batch_records(2), log, snap);
//! wal.append(1, b"credit a 5");
//! wal.append(2, b"debit b 5"); // second record flushes the batch
//! let (log_bytes, snap_bytes) = wal.disk_image();
//! let r = recover(&log_bytes, &snap_bytes).unwrap();
//! assert_eq!(r.recovered_seq(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod device;
pub mod frame;
pub mod log;

pub use device::{FileDevice, LogDevice, MemDevice};
pub use frame::{
    decode_log, decode_snapshot, encode_frame, encode_snapshot, fnv1a64, DecodedLog, WalError,
    FRAME_OVERHEAD, SNAPSHOT_MAGIC,
};
pub use log::{recover, Recovered, Wal, WalConfig, WalStats};
