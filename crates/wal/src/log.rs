//! The write-ahead log proper: group-commit batching, snapshot install
//! with log truncation, and crash recovery.
//!
//! ## Write path
//!
//! [`Wal::append`] is called *after* a transaction committed (the caller
//! tags the record with the engine's global commit sequence number), so
//! logging is entirely off the lock-hold path: the committer published its
//! writes and released its stripes before the record exists. Records land
//! in a bounded in-flight buffer; when [`WalConfig::batch_records`]
//! accumulate (or on an explicit [`Wal::flush`]) the whole batch is encoded
//! and appended to the log device in one call — group commit. A crash
//! loses at most one buffer of records, never a committed-and-flushed one.
//!
//! ## Snapshot / truncate
//!
//! [`Wal::install_snapshot`] persists an opaque state blob covering
//! commits `1..=upto_seq`, then rewrites the log device keeping only the
//! flushed frames beyond `upto_seq`. Recovery work is therefore bounded by
//! the snapshot interval (O(delta), not O(history)).
//!
//! ## Crash model
//!
//! An armed [`KillSwitch`] freezes the disk at a structural crash point:
//! mid-batch (a torn frame is left behind), mid-snapshot (the old snapshot
//! and full log survive; the new snapshot never installs), or
//! post-truncate (the freshly truncated state survives). After the switch
//! trips, every device mutation silently stops — exactly the bytes a real
//! crash would leave are what [`recover`] later reads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gstm_core::sync::Mutex;
use gstm_core::{KillPoint, KillSwitch};

use crate::device::LogDevice;
use crate::frame::{decode_log, decode_snapshot, encode_frame, encode_snapshot, WalError};

/// Sizing knobs of a [`Wal`].
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Group-commit batch size: the in-flight buffer flushes when this many
    /// records accumulate.
    pub batch_records: usize,
    /// Callers are advised (via [`Wal::wants_snapshot`]) to snapshot after
    /// this many records were flushed since the last snapshot.
    pub snapshot_every: u64,
}

impl WalConfig {
    /// Defaults: batches of 32 records, snapshot advice every 256.
    pub fn new() -> Self {
        WalConfig { batch_records: 32, snapshot_every: 256 }
    }

    /// Sets the group-commit batch size (min 1).
    pub fn with_batch_records(mut self, n: usize) -> Self {
        self.batch_records = n.max(1);
        self
    }

    /// Sets the snapshot advice interval (min 1).
    pub fn with_snapshot_every(mut self, n: u64) -> Self {
        self.snapshot_every = n.max(1);
        self
    }
}

impl Default for WalConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Counters reported by [`Wal::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records accepted into the in-flight buffer.
    pub appended: u64,
    /// Group-commit flushes that reached the device.
    pub flushes: u64,
    /// Records those flushes persisted.
    pub flushed_records: u64,
    /// Snapshots installed.
    pub snapshots: u64,
    /// Frames dropped from the log by snapshot truncation.
    pub truncated_records: u64,
    /// Records discarded because the disk was already dead (crashed).
    pub lost_dead: u64,
}

struct WalInner {
    /// The bounded in-flight buffer (group-commit batch under assembly).
    buf: Vec<(u64, Vec<u8>)>,
    /// Flushed frames currently in the log device, in append order —
    /// needed to rewrite the device at truncation.
    in_log: Vec<(u64, Vec<u8>)>,
    /// Sequence number the installed snapshot covers (0 = none).
    snapshot_seq: u64,
}

/// A write-ahead log over two [`LogDevice`]s (log + snapshot).
pub struct Wal {
    cfg: WalConfig,
    log: Arc<dyn LogDevice>,
    snap: Arc<dyn LogDevice>,
    kill: Option<Arc<KillSwitch>>,
    inner: Mutex<WalInner>,
    appended: AtomicU64,
    flushes: AtomicU64,
    flushed_records: AtomicU64,
    snapshots: AtomicU64,
    truncated_records: AtomicU64,
    lost_dead: AtomicU64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("cfg", &self.cfg)
            .field("stats", &self.stats())
            .field("dead", &self.is_dead())
            .finish_non_exhaustive()
    }
}

impl Wal {
    /// A log writing through `log` and `snap`, with no crash injection.
    pub fn new(cfg: WalConfig, log: Arc<dyn LogDevice>, snap: Arc<dyn LogDevice>) -> Self {
        Wal {
            cfg,
            log,
            snap,
            kill: None,
            inner: Mutex::new(WalInner { buf: Vec::new(), in_log: Vec::new(), snapshot_seq: 0 }),
            appended: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            flushed_records: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            truncated_records: AtomicU64::new(0),
            lost_dead: AtomicU64::new(0),
        }
    }

    /// Arms crash injection: the switch's requested [`KillPoint`] trips as
    /// the log passes it.
    pub fn with_kill(mut self, kill: Arc<KillSwitch>) -> Self {
        self.kill = Some(kill);
        self
    }

    /// Whether the simulated disk has crashed.
    pub fn is_dead(&self) -> bool {
        self.kill.as_ref().is_some_and(|k| k.is_dead())
    }

    fn observe(&self, point: KillPoint) -> bool {
        self.kill.as_ref().is_some_and(|k| k.observe(point))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appended: self.appended.load(Ordering::SeqCst),
            flushes: self.flushes.load(Ordering::SeqCst),
            flushed_records: self.flushed_records.load(Ordering::SeqCst),
            snapshots: self.snapshots.load(Ordering::SeqCst),
            truncated_records: self.truncated_records.load(Ordering::SeqCst),
            lost_dead: self.lost_dead.load(Ordering::SeqCst),
        }
    }

    /// Buffers one committed record. `seq` is the engine's global commit
    /// sequence number; replay applies records in `seq` order. Triggers a
    /// group-commit flush when the buffer reaches its bound.
    pub fn append(&self, seq: u64, payload: &[u8]) {
        if self.is_dead() {
            self.lost_dead.fetch_add(1, Ordering::SeqCst);
            return;
        }
        let mut inner = self.inner.lock();
        inner.buf.push((seq, payload.to_vec()));
        self.appended.fetch_add(1, Ordering::SeqCst);
        if inner.buf.len() >= self.cfg.batch_records {
            self.flush_locked(&mut inner);
        }
    }

    /// Flushes the in-flight buffer to the device (one group commit).
    pub fn flush(&self) {
        let mut inner = self.inner.lock();
        self.flush_locked(&mut inner);
    }

    fn flush_locked(&self, inner: &mut WalInner) {
        if inner.buf.is_empty() || self.is_dead() {
            return;
        }
        let batch: Vec<(u64, Vec<u8>)> = std::mem::take(&mut inner.buf);
        let mut bytes = Vec::new();
        for (seq, payload) in &batch {
            encode_frame(*seq, payload, &mut bytes);
        }
        if self.observe(KillPoint::MidBatch) {
            // The crash lands partway through the device write: a torn
            // prefix, cut inside the final frame's checksum so the tear is
            // structural, is all that reaches the disk.
            let cut = bytes.len() - crate::frame::FRAME_OVERHEAD / 2;
            self.log.append(&bytes[..cut]);
            self.lost_dead.fetch_add(batch.len() as u64, Ordering::SeqCst);
            return;
        }
        self.log.append(&bytes);
        self.flushes.fetch_add(1, Ordering::SeqCst);
        self.flushed_records.fetch_add(batch.len() as u64, Ordering::SeqCst);
        inner.in_log.extend(batch);
    }

    /// Whether enough records accumulated since the last snapshot that the
    /// caller should build one ([`WalConfig::snapshot_every`]).
    pub fn wants_snapshot(&self) -> bool {
        let inner = self.inner.lock();
        (inner.in_log.len() + inner.buf.len()) as u64 >= self.cfg.snapshot_every
    }

    /// Installs a snapshot covering commits `1..=upto_seq` and truncates
    /// the log to the flushed frames beyond `upto_seq`. The caller
    /// guarantees `state` is the materialized effect of exactly those
    /// commits. Returns whether the install completed (a crash at a
    /// snapshot-phase kill point aborts it).
    pub fn install_snapshot(&self, upto_seq: u64, state: &[u8]) -> bool {
        let mut inner = self.inner.lock();
        // Everything the snapshot covers must be durable one way or the
        // other; flushing first keeps the log a superset until the rename.
        self.flush_locked(&mut inner);
        if self.is_dead() {
            return false;
        }
        if self.observe(KillPoint::MidSnapshot) {
            // Crashed before the atomic install: old snapshot + full log
            // survive untouched.
            return false;
        }
        self.snap.reset(&encode_snapshot(upto_seq, state));
        let (keep, drop): (Vec<_>, Vec<_>) =
            std::mem::take(&mut inner.in_log).into_iter().partition(|(seq, _)| *seq > upto_seq);
        let mut bytes = Vec::new();
        for (seq, payload) in &keep {
            encode_frame(*seq, payload, &mut bytes);
        }
        self.log.reset(&bytes);
        inner.in_log = keep;
        inner.snapshot_seq = upto_seq;
        self.snapshots.fetch_add(1, Ordering::SeqCst);
        self.truncated_records.fetch_add(drop.len() as u64, Ordering::SeqCst);
        // The crash lands after a fully consistent snapshot+truncate; the
        // disk merely stops accepting new writes.
        self.observe(KillPoint::PostTruncate);
        true
    }

    /// The current device contents, as recovery would read them after a
    /// crash at this instant: `(log_bytes, snapshot_bytes)`.
    pub fn disk_image(&self) -> (Vec<u8>, Vec<u8>) {
        (self.log.contents(), self.snap.contents())
    }
}

/// What [`recover`] reconstructed from a disk image.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Recovered {
    /// The snapshot's opaque state payload, if one was installed.
    pub snapshot: Option<Vec<u8>>,
    /// Sequence number the snapshot covers (0 = none).
    pub base_seq: u64,
    /// Log records to replay on top, sorted by sequence number, gap-free
    /// from `base_seq + 1`.
    pub tail: Vec<(u64, Vec<u8>)>,
    /// Whether the log ended in a torn frame (normal after a crash).
    pub torn: bool,
    /// Flushed records discarded because an earlier sequence number was
    /// missing — they are beyond the recoverable prefix.
    pub dropped_after_gap: u64,
}

impl Recovered {
    /// The last sequence number recovery restores.
    pub fn recovered_seq(&self) -> u64 {
        self.tail.last().map_or(self.base_seq, |(seq, _)| *seq)
    }
}

/// Rebuilds the recoverable prefix from a disk image.
///
/// The snapshot envelope is verified, the log frames are checksummed
/// (a torn tail is tolerated; corruption is not), and the surviving
/// records are sorted by sequence number and cut at the first gap after
/// the snapshot — group commit flushes whole batches, so the recovered
/// set is always a consistent prefix of the commit order.
///
/// # Errors
///
/// Returns [`WalError`] if the snapshot or any complete log frame fails
/// its checksum.
pub fn recover(log_bytes: &[u8], snap_bytes: &[u8]) -> Result<Recovered, WalError> {
    let (base_seq, snapshot) = match decode_snapshot(snap_bytes)? {
        Some((seq, state)) => (seq, Some(state)),
        None => (0, None),
    };
    let decoded = decode_log(log_bytes)?;
    let mut frames: Vec<(u64, Vec<u8>)> =
        decoded.frames.into_iter().filter(|(seq, _)| *seq > base_seq).collect();
    frames.sort_by_key(|(seq, _)| *seq);
    let mut tail = Vec::with_capacity(frames.len());
    let mut next = base_seq + 1;
    let mut dropped = 0u64;
    for (seq, payload) in frames {
        if seq == next {
            tail.push((seq, payload));
            next += 1;
        } else {
            dropped += 1;
        }
    }
    Ok(Recovered { snapshot, base_seq, tail, torn: decoded.torn, dropped_after_gap: dropped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    fn wal(batch: usize, snap_every: u64) -> Wal {
        Wal::new(
            WalConfig::new().with_batch_records(batch).with_snapshot_every(snap_every),
            Arc::new(MemDevice::new()),
            Arc::new(MemDevice::new()),
        )
    }

    #[test]
    fn group_commit_batches_appends() {
        let w = wal(4, 1000);
        for seq in 1..=10u64 {
            w.append(seq, &[seq as u8]);
        }
        let s = w.stats();
        assert_eq!(s.appended, 10);
        assert_eq!(s.flushes, 2, "two full batches of 4");
        assert_eq!(s.flushed_records, 8, "two records still buffered");
        w.flush();
        assert_eq!(w.stats().flushes, 3);
        assert_eq!(w.stats().flushed_records, 10);
        let (log, snap) = w.disk_image();
        let r = recover(&log, &snap).unwrap();
        assert_eq!(r.recovered_seq(), 10);
        assert!(!r.torn);
    }

    #[test]
    fn crash_loses_only_the_unflushed_buffer() {
        let w = wal(4, 1000);
        for seq in 1..=6u64 {
            w.append(seq, b"x");
        }
        // No flush: records 5..6 sit in the buffer; the disk image holds
        // exactly the first batch.
        let (log, snap) = w.disk_image();
        let r = recover(&log, &snap).unwrap();
        assert_eq!(r.recovered_seq(), 4);
        assert_eq!(r.tail.len(), 4);
    }

    #[test]
    fn snapshot_truncates_and_recovery_uses_both() {
        let w = wal(2, 1000);
        for seq in 1..=7u64 {
            w.append(seq, &seq.to_le_bytes());
        }
        w.flush();
        assert!(w.install_snapshot(5, b"state-at-5"));
        let s = w.stats();
        assert_eq!(s.snapshots, 1);
        assert_eq!(s.truncated_records, 5);
        for seq in 8..=9u64 {
            w.append(seq, &seq.to_le_bytes());
        }
        w.flush();
        let (log, snap) = w.disk_image();
        let r = recover(&log, &snap).unwrap();
        assert_eq!(r.base_seq, 5);
        assert_eq!(r.snapshot.as_deref(), Some(&b"state-at-5"[..]));
        assert_eq!(r.tail.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(r.recovered_seq(), 9);
    }

    #[test]
    fn out_of_order_appends_recover_in_seq_order_and_gaps_cut() {
        let w = wal(100, 1000);
        for seq in [2u64, 1, 3, 5, 7, 6] {
            w.append(seq, &[seq as u8]);
        }
        w.flush();
        let (log, snap) = w.disk_image();
        let r = recover(&log, &snap).unwrap();
        assert_eq!(r.tail.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(r.dropped_after_gap, 3, "5, 6, 7 are beyond the missing 4");
    }

    #[test]
    fn mid_batch_kill_leaves_a_recoverable_torn_log() {
        let kill = Arc::new(KillSwitch::new());
        kill.request(KillPoint::MidBatch);
        let w = wal(4, 1000).with_kill(Arc::clone(&kill));
        for seq in 1..=8u64 {
            w.append(seq, b"payload");
        }
        assert!(kill.is_dead(), "first batch flush tripped the switch");
        assert!(w.stats().lost_dead >= 4, "the torn batch and later appends are lost");
        let (log, snap) = w.disk_image();
        let r = recover(&log, &snap).unwrap();
        assert!(r.torn, "half a batch is a torn tail");
        assert!(r.recovered_seq() < 4, "the torn batch cannot fully survive");
    }

    #[test]
    fn mid_snapshot_kill_preserves_old_snapshot_and_log() {
        let kill = Arc::new(KillSwitch::new());
        let w = wal(2, 1000).with_kill(Arc::clone(&kill));
        for seq in 1..=4u64 {
            w.append(seq, &[seq as u8]);
        }
        assert!(w.install_snapshot(4, b"first"), "no crash requested yet");
        for seq in 5..=6u64 {
            w.append(seq, &[seq as u8]);
        }
        kill.request(KillPoint::MidSnapshot);
        assert!(!w.install_snapshot(6, b"second"), "crashed before install");
        let (log, snap) = w.disk_image();
        let r = recover(&log, &snap).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(&b"first"[..]), "old snapshot survives");
        assert_eq!(r.recovered_seq(), 6, "full log still replays on top");
    }

    #[test]
    fn post_truncate_kill_recovers_from_fresh_snapshot() {
        let kill = Arc::new(KillSwitch::new());
        kill.request(KillPoint::PostTruncate);
        let w = wal(2, 1000).with_kill(Arc::clone(&kill));
        for seq in 1..=4u64 {
            w.append(seq, &[seq as u8]);
        }
        assert!(w.install_snapshot(4, b"state"), "install completes, then the disk dies");
        assert!(kill.is_dead());
        w.append(5, b"lost");
        w.flush();
        let (log, snap) = w.disk_image();
        let r = recover(&log, &snap).unwrap();
        assert_eq!(r.base_seq, 4);
        assert!(r.tail.is_empty(), "post-truncate image is snapshot-only");
    }

    #[test]
    fn corrupted_tail_is_detected_not_replayed() {
        let w = wal(2, 1000);
        for seq in 1..=4u64 {
            w.append(seq, b"payload");
        }
        w.flush();
        let (mut log, snap) = w.disk_image();
        let off = log.len() - 12; // inside the last complete frame's payload
        log[off] ^= 0x01;
        assert!(matches!(recover(&log, &snap), Err(WalError::CorruptFrame { .. })));
    }

    #[test]
    fn wants_snapshot_tracks_volume() {
        let w = wal(2, 5);
        assert!(!w.wants_snapshot());
        for seq in 1..=5u64 {
            w.append(seq, b"x");
        }
        assert!(w.wants_snapshot());
        w.flush();
        assert!(w.install_snapshot(5, b"s"));
        assert!(!w.wants_snapshot(), "truncation resets the counter");
    }
}
