//! Property-based tests of the core engine's building blocks.

use proptest::prelude::*;

use gstm_core::lock_table::{LockTable, StripeIndex};
use gstm_core::{CommitSeq, Participant, Stm, StmConfig, TVar, ThreadId, TxId, VarId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lock words survive arbitrary lock/publish cycles: the version always
    /// reads back exactly, the lock bit and owner are faithful.
    #[test]
    fn lock_word_roundtrip(versions in proptest::collection::vec(0u64..(1 << 40), 1..20),
                           owner in 0u16..512) {
        let lt = LockTable::new(4, false);
        let s = StripeIndex(3);
        let owner = ThreadId::new(owner);
        for v in versions {
            let pre = lt.try_lock(s, owner).expect("unlocked");
            let w = lt.load(s);
            prop_assert!(w.locked);
            prop_assert_eq!(w.owner, Some(owner));
            prop_assert_eq!(w.version, pre);
            lt.unlock_publish(s, owner, v);
            let w = lt.load(s);
            prop_assert!(!w.locked);
            prop_assert_eq!(w.version, v);
        }
    }

    /// Stamps round-trip any (thread, tx, seq-low-32) combination.
    #[test]
    fn stamp_roundtrip(t in 0u16..u16::MAX, x in 0u16..u16::MAX, seq in 1u64..(1 << 32)) {
        let lt = LockTable::new(2, false);
        let s = StripeIndex(1);
        let who = Participant::new(ThreadId::new(t), TxId::new(x));
        lt.stamp(s, who, CommitSeq::new(seq));
        let (got_who, got_seq) = lt.last_writer(s).expect("stamped");
        prop_assert_eq!(got_who, who);
        prop_assert_eq!(got_seq.raw(), seq);
    }

    /// Stripe mapping is total and stable for arbitrary ids.
    #[test]
    fn stripe_mapping_total(raw in proptest::collection::vec(0u64..u64::MAX, 1..50),
                            log2 in 1u32..12) {
        let lt = LockTable::new(log2, false);
        for r in raw {
            let s1 = lt.stripe_of(VarId::from_raw(r));
            let s2 = lt.stripe_of(VarId::from_raw(r));
            prop_assert_eq!(s1, s2);
            prop_assert!((s1.0 as usize) < lt.len());
        }
    }

    /// Single-threaded transactional programs behave exactly like their
    /// sequential interpretation over arbitrary op sequences.
    #[test]
    fn sequential_equivalence(ops in proptest::collection::vec((0usize..4, -50i64..50), 1..60)) {
        let stm = Stm::new(StmConfig::new(1));
        let vars: Vec<TVar<i64>> = (0..4).map(|_| TVar::new(0)).collect();
        let mut reference = [0i64; 4];
        for (i, delta) in ops {
            stm.run(ThreadId::new(0), TxId::new(0), |tx| {
                let v = tx.read(&vars[i])?;
                tx.write(&vars[i], v + delta)
            });
            reference[i] += delta;
        }
        for (i, var) in vars.iter().enumerate() {
            prop_assert_eq!(*var.load_unlogged(), reference[i]);
        }
    }

    /// Write-after-write within one transaction keeps only the last value,
    /// and read-own-write always observes the latest buffered value.
    #[test]
    fn redo_log_last_write_wins(writes in proptest::collection::vec(-100i64..100, 1..20)) {
        let stm = Stm::new(StmConfig::new(1));
        let v = TVar::new(i64::MIN);
        let last = *writes.last().expect("nonempty");
        let observed = stm.run(ThreadId::new(0), TxId::new(0), |tx| {
            for &w in &writes {
                tx.write(&v, w)?;
                let seen = tx.read(&v)?;
                assert_eq!(seen, w, "read-own-write must see the buffer");
            }
            tx.read(&v)
        });
        prop_assert_eq!(observed, last);
        prop_assert_eq!(*v.load_unlogged(), last);
    }
}
