//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use std::sync::Arc;

use gstm_core::{Participant, Stm, StmConfig, TVar, ThreadId, TxId};
use gstm_model::{serialize, GuidedModel, StateSpace, Tsa, TsaBuilder, Tts};
use gstm_sim::{SimConfig, SimMachine};

fn participant_strategy() -> impl Strategy<Value = Participant> {
    (0u16..16, 0u16..8).prop_map(|(t, x)| Participant::new(ThreadId::new(t), TxId::new(x)))
}

fn tts_strategy() -> impl Strategy<Value = Tts> {
    (proptest::collection::vec(participant_strategy(), 0..5), participant_strategy())
        .prop_map(|(aborted, committer)| Tts::new(aborted, committer))
}

fn tsa_strategy() -> impl Strategy<Value = Tsa> {
    proptest::collection::vec(proptest::collection::vec(tts_strategy(), 1..20), 1..5).prop_map(
        |runs| {
            let mut b = TsaBuilder::new();
            for run in &runs {
                b.add_run(run);
            }
            b.build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// TTS equality is order-insensitive in the aborted list.
    #[test]
    fn tts_canonical_under_permutation(
        mut aborted in proptest::collection::vec(participant_strategy(), 0..6),
        committer in participant_strategy(),
    ) {
        let a = Tts::new(aborted.clone(), committer);
        aborted.reverse();
        let b = Tts::new(aborted, committer);
        prop_assert_eq!(&a, &b);
        // And `contains` agrees with `participants`.
        for p in a.participants() {
            prop_assert!(a.contains(p));
        }
    }

    /// Interning is a bijection: same id ⇔ same state.
    #[test]
    fn interning_bijective(states in proptest::collection::vec(tts_strategy(), 1..40)) {
        let mut space = StateSpace::new();
        let ids: Vec<_> = states.iter().map(|s| space.intern(s.clone())).collect();
        for (s, id) in states.iter().zip(&ids) {
            prop_assert_eq!(space.lookup(s), Some(*id));
            prop_assert_eq!(space.state(*id), s);
        }
        let distinct: std::collections::HashSet<_> = states.iter().collect();
        prop_assert_eq!(space.len(), distinct.len());
    }

    /// Serialization round-trips arbitrary automatons, both formats.
    #[test]
    fn tsa_serialization_round_trips(tsa in tsa_strategy()) {
        let b = serialize::from_bytes(&serialize::to_bytes(&tsa)).unwrap();
        prop_assert_eq!(b.state_count(), tsa.state_count());
        prop_assert_eq!(b.edge_count(), tsa.edge_count());
        let t = serialize::from_text(&serialize::to_text(&tsa)).unwrap();
        prop_assert_eq!(t.state_count(), tsa.state_count());
        for (id, s) in tsa.space().iter() {
            let tid = t.lookup(s).expect("state preserved");
            let mut orig: Vec<(String, u64)> = tsa
                .out_edges(id)
                .iter()
                .map(|&(d, c)| (tsa.space().state(d).to_string(), c))
                .collect();
            let mut back: Vec<(String, u64)> = t
                .out_edges(tid)
                .iter()
                .map(|&(d, c)| (t.space().state(d).to_string(), c))
                .collect();
            orig.sort();
            back.sort();
            prop_assert_eq!(orig, back);
        }
    }

    /// Destination sets are monotone in Tfactor and subsets of successors.
    #[test]
    fn destinations_monotone_in_tfactor(tsa in tsa_strategy()) {
        for (id, _) in tsa.space().iter() {
            let succ: std::collections::HashSet<_> =
                tsa.out_edges(id).iter().map(|(d, _)| *d).collect();
            let d1: std::collections::HashSet<_> =
                tsa.destinations(id, 1.0).into_iter().collect();
            let d4: std::collections::HashSet<_> =
                tsa.destinations(id, 4.0).into_iter().collect();
            let d10: std::collections::HashSet<_> =
                tsa.destinations(id, 10.0).into_iter().collect();
            prop_assert!(d1.is_subset(&d4));
            prop_assert!(d4.is_subset(&d10));
            prop_assert!(d10.is_subset(&succ));
            if !succ.is_empty() {
                prop_assert!(!d1.is_empty(), "the max edge always survives");
            }
        }
    }

    /// The compiled model admits exactly the participants of high-support
    /// states' destination tuples.
    #[test]
    fn guided_model_admission_consistent(tsa in tsa_strategy(), p in participant_strategy()) {
        let model = GuidedModel::compile_with(tsa.clone(), 4.0, 1);
        for (id, _) in tsa.space().iter() {
            let expected = tsa
                .destinations(id, 4.0)
                .iter()
                .any(|d| tsa.space().state(*d).contains(p));
            let no_out = tsa.out_edges(id).is_empty();
            prop_assert_eq!(model.admits(id, p), expected || no_out);
        }
    }

    /// Sample stddev is translation-invariant and non-negative.
    #[test]
    fn stddev_translation_invariant(
        xs in proptest::collection::vec(-1e6f64..1e6, 2..30),
        shift in -1e6f64..1e6,
    ) {
        let s1 = gstm_stats::sample_stddev(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let s2 = gstm_stats::sample_stddev(&shifted);
        prop_assert!(s1 >= 0.0);
        prop_assert!((s1 - s2).abs() < 1e-6 * s1.max(1.0), "{s1} vs {s2}");
    }
}

proptest! {
    // Heavier cases: keep the count low, each spins up a machine.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Lost-update freedom: random per-thread increment programs always sum
    /// exactly, regardless of seed and thread count.
    #[test]
    fn counter_programs_never_lose_updates(
        seed in 0u64..1000,
        threads in 2usize..5,
        per in 5usize..30,
    ) {
        let machine = SimMachine::new(SimConfig::new(threads, seed));
        let stm = Arc::new(Stm::new_on(StmConfig::new(threads), machine.gate()));
        let v = TVar::new(0i64);
        let workers: Vec<Box<dyn FnOnce() + Send + '_>> = (0..threads)
            .map(|i| {
                let stm = Arc::clone(&stm);
                let v = v.clone();
                Box::new(move || {
                    for _ in 0..per {
                        stm.run(ThreadId::new(i as u16), TxId::new(0), |tx| {
                            let x = tx.read(&v)?;
                            tx.write(&v, x + 1)
                        });
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        machine.run(workers);
        prop_assert_eq!(*v.load_unlogged(), (threads * per) as i64);
    }
}
