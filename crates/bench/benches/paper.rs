//! One bench per paper table/figure: each measures the *generating
//! computation* of that artifact at a reduced scale, so `cargo bench`
//! exercises every experiment path. The full-scale regeneration lives in
//! `cargo run -p gstm-experiments --release -- all`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use gstm_guide::{run_workload, train, PolicyChoice, RunOptions};
use gstm_model::analyze;
use gstm_stamp::{benchmark, InputSize};
use gstm_synquake::{Quest, SynQuake};

const THREADS: usize = 4;

fn tiny_opts(seed: u64) -> RunOptions {
    RunOptions::new(THREADS, seed)
}

/// Tables I & III & Figure 3: profile + model generation + analysis.
fn bench_model_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_table3_fig3");
    g.sample_size(10);
    for name in ["kmeans", "ssca2"] {
        let w = benchmark(name, InputSize::Small).expect("known");
        g.bench_function(format!("train_{name}"), |b| {
            b.iter(|| {
                let trained = train(w.as_ref(), &tiny_opts(0), &[1, 2], 4.0);
                analyze(&trained.tsa, 4.0).guidance_metric
            })
        });
    }
    g.finish();
}

/// Figures 4–10 / Table IV: default and guided measurement runs per app.
fn bench_measurement_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_to_fig10_table4");
    g.sample_size(10);
    for name in gstm_stamp::BENCHMARK_NAMES {
        let w = benchmark(name, InputSize::Small).expect("known");
        g.bench_function(format!("default_{name}"), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run_workload(w.as_ref(), &tiny_opts(seed)).total_commits()
            })
        });
    }
    let kmeans = benchmark("kmeans", InputSize::Small).expect("known");
    let trained = train(kmeans.as_ref(), &tiny_opts(0), &[1, 2, 3], 4.0);
    g.bench_function("guided_kmeans", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let opts = tiny_opts(seed)
                .with_policy(PolicyChoice::guided(Arc::clone(&trained.model)));
            run_workload(kmeans.as_ref(), &opts).total_commits()
        })
    });
    g.finish();
}

/// Table V & Figures 11–12: the SynQuake server loop.
fn bench_synquake(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5_fig11_fig12");
    g.sample_size(10);
    for quest in [Quest::WorstCase4, Quest::Quadrants4] {
        let w = SynQuake { players: 128, frames: 4, quest };
        g.bench_function(format!("frames_{quest}"), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run_workload(&w, &tiny_opts(seed)).makespan
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_model_generation, bench_measurement_runs, bench_synquake);
criterion_main!(benches);
