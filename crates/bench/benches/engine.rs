//! TL2 engine micro-benchmarks: the raw cost of the transactional
//! machinery on native threads (no simulator in the loop).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use gstm_core::{Stm, StmConfig, TVar, ThreadId, TxId};

fn bench_commit_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("tl2");
    let stm = Stm::new(StmConfig::new(1));
    let t = ThreadId::new(0);

    let v = TVar::new(0i64);
    g.bench_function("rmw_1var", |b| {
        b.iter(|| {
            stm.run(t, TxId::new(0), |tx| {
                let x = tx.read(&v)?;
                tx.write(&v, x + 1)
            })
        })
    });

    let vars: Vec<TVar<i64>> = (0..32).map(|_| TVar::new(0)).collect();
    g.bench_function("read_only_32vars", |b| {
        b.iter(|| {
            stm.run(t, TxId::new(1), |tx| {
                let mut s = 0i64;
                for v in &vars {
                    s += tx.read(v)?;
                }
                Ok(s)
            })
        })
    });

    g.bench_function("write_heavy_16vars", |b| {
        b.iter(|| {
            stm.run(t, TxId::new(2), |tx| {
                for (i, v) in vars.iter().take(16).enumerate() {
                    tx.write(v, i as i64)?;
                }
                Ok(())
            })
        })
    });

    g.bench_function("tvar_create", |b| {
        b.iter_batched(|| (), |()| TVar::new(0u64), BatchSize::SmallInput)
    });
    g.finish();
}

fn bench_model_ops(c: &mut Criterion) {
    use gstm_core::Participant;
    use gstm_model::{GuidedModel, Tsa, TsaBuilder, Tts};

    fn p(t: u16, x: u16) -> Participant {
        Participant::new(ThreadId::new(t), TxId::new(x))
    }

    // A synthetic automaton with 1k states, 8 threads × 4 sites.
    fn build_tsa() -> Tsa {
        let mut b = TsaBuilder::new();
        let mut run = Vec::new();
        for i in 0..8000u32 {
            let t = (i % 8) as u16;
            let x = ((i / 8) % 4) as u16;
            if i % 7 == 0 {
                run.push(Tts::new(vec![p((t + 1) % 8, x)], p(t, x)));
            } else {
                run.push(Tts::solo(p(t, x)));
            }
        }
        b.add_run(&run);
        b.build()
    }

    let mut g = c.benchmark_group("model");
    g.bench_function("build_8k_transitions", |b| b.iter(build_tsa));

    let tsa = build_tsa();
    g.bench_function("compile_guided_model", |b| {
        b.iter(|| GuidedModel::compile(tsa.clone(), 4.0))
    });

    let model = GuidedModel::compile(tsa.clone(), 4.0);
    let state = tsa.lookup(&Tts::solo(p(0, 0))).expect("state exists");
    g.bench_function("admission_check", |b| {
        b.iter(|| model.admits(state, p(3, 2)))
    });

    g.bench_function("serialize_binary", |b| {
        b.iter(|| gstm_model::serialize::to_bytes(&tsa))
    });
    g.finish();
}

criterion_group!(benches, bench_commit_paths, bench_model_ops);
criterion_main!(benches);
