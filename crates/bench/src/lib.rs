//! GSTM criterion benches (see `benches/`).
