//! Block oracle: certifies that a parallel ordered-block execution is
//! byte-identical to sequential execution of the same block order.
//!
//! The block executor's whole contract is *schedule invariance*: for a
//! fixed block order, the per-transaction outputs and the post-block
//! state must not depend on how many worker threads ran it or how the
//! scheduler interleaved them. The oracle consumes one **reference**
//! record — produced by a plain sequential interpreter that shares no
//! code with the executor's scheduling — and any number of parallel
//! records tagged with their thread count, and reports the first point
//! of divergence per run.
//!
//! A second, independent invariant rides along for ledger-style
//! workloads: [`check_conserved_total`] asserts that a block of
//! transfers moved money around without creating or destroying any —
//! the canonical whole-state corruption detector for the ledger preset.

use std::fmt;

/// The digest-level result of executing one block: per-transaction
/// output digests (in block order) plus a digest of the post-block
/// store state. Producing the digests is the caller's job (serve
/// encodes each `Response` and FNV-hashes it) so the oracle stays
/// decoupled from the store's types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockRecord {
    /// One digest per transaction, in block order.
    pub outputs: Vec<u64>,
    /// Digest of the store state after the block fully applied.
    pub final_digest: u64,
}

/// One way a parallel block run diverged from the sequential reference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockViolation {
    /// The runs do not even agree on how many transactions the block held.
    LengthMismatch {
        /// Worker threads of the offending parallel run.
        threads: usize,
        /// Its transaction count.
        got: usize,
        /// The reference transaction count.
        want: usize,
    },
    /// A transaction's output digest differs from the reference.
    OutputDivergence {
        /// Worker threads of the offending parallel run.
        threads: usize,
        /// Block index of the first diverging transaction.
        txn: usize,
        /// The parallel run's output digest.
        got: u64,
        /// The reference output digest.
        want: u64,
    },
    /// The post-block state digest differs from the reference.
    StateDivergence {
        /// Worker threads of the offending parallel run.
        threads: usize,
        /// The parallel run's state digest.
        got: u64,
        /// The reference state digest.
        want: u64,
    },
    /// A conserved quantity (the ledger's total balance) changed.
    TotalNotConserved {
        /// Total after the run.
        got: i64,
        /// Total the initial state prescribed.
        want: i64,
    },
}

impl fmt::Display for BlockViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockViolation::LengthMismatch { threads, got, want } => write!(
                f,
                "block at {threads} threads settled {got} transactions, reference has {want}"
            ),
            BlockViolation::OutputDivergence { threads, txn, got, want } => write!(
                f,
                "txn {txn} output diverged at {threads} threads: {got:#018x} != {want:#018x}"
            ),
            BlockViolation::StateDivergence { threads, got, want } => write!(
                f,
                "post-block state diverged at {threads} threads: {got:#018x} != {want:#018x}"
            ),
            BlockViolation::TotalNotConserved { got, want } => {
                write!(f, "conserved total violated: {got} != {want}")
            }
        }
    }
}

/// What [`check_block_equivalence`] found.
#[derive(Clone, Debug, Default)]
pub struct BlockReport {
    /// Violations, in discovery order (first divergence per parallel run).
    pub violations: Vec<BlockViolation>,
    /// Parallel runs compared against the reference.
    pub runs_compared: usize,
    /// Transactions in the reference block.
    pub txns_compared: usize,
}

impl BlockReport {
    /// True when every parallel run matched the reference byte-for-byte.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// True when there was nothing to certify (no runs, or an empty
    /// block) — callers must reject `ok() && is_vacuous()`.
    pub fn is_vacuous(&self) -> bool {
        self.runs_compared == 0 || self.txns_compared == 0
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} block violations over {} parallel runs x {} txns",
            self.violations.len(),
            self.runs_compared,
            self.txns_compared,
        )
    }
}

/// Certifies schedule invariance: every parallel record (tagged with its
/// worker-thread count) must agree with the sequential `reference` on
/// every transaction output and on the final state digest. Reports the
/// first diverging transaction per run, not all of them — the first is
/// where the scheduler bug lives; the rest are usually fallout.
pub fn check_block_equivalence(
    reference: &BlockRecord,
    parallel: &[(usize, BlockRecord)],
) -> BlockReport {
    let mut report = BlockReport {
        violations: Vec::new(),
        runs_compared: parallel.len(),
        txns_compared: reference.outputs.len(),
    };
    for (threads, record) in parallel {
        if record.outputs.len() != reference.outputs.len() {
            report.violations.push(BlockViolation::LengthMismatch {
                threads: *threads,
                got: record.outputs.len(),
                want: reference.outputs.len(),
            });
            continue;
        }
        let diverged =
            record.outputs.iter().zip(&reference.outputs).position(|(got, want)| got != want);
        if let Some(txn) = diverged {
            report.violations.push(BlockViolation::OutputDivergence {
                threads: *threads,
                txn,
                got: record.outputs[txn],
                want: reference.outputs[txn],
            });
            continue;
        }
        if record.final_digest != reference.final_digest {
            report.violations.push(BlockViolation::StateDivergence {
                threads: *threads,
                got: record.final_digest,
                want: reference.final_digest,
            });
        }
    }
    report
}

/// Asserts a conserved quantity survived a run — the ledger preset's
/// total balance must equal what the initial state prescribed.
///
/// # Errors
///
/// Returns [`BlockViolation::TotalNotConserved`] when it did not.
pub fn check_conserved_total(got: i64, want: i64) -> Result<(), BlockViolation> {
    if got == want {
        Ok(())
    } else {
        Err(BlockViolation::TotalNotConserved { got, want })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> BlockRecord {
        BlockRecord { outputs: vec![11, 22, 33], final_digest: 0xfeed }
    }

    #[test]
    fn identical_runs_pass_and_are_not_vacuous() {
        let report = check_block_equivalence(
            &reference(),
            &[(1, reference()), (2, reference()), (8, reference())],
        );
        assert!(report.ok(), "{}", report.summary());
        assert!(!report.is_vacuous());
        assert_eq!(report.runs_compared, 3);
        assert_eq!(report.txns_compared, 3);
    }

    #[test]
    fn first_output_divergence_is_pinpointed() {
        let bad = BlockRecord { outputs: vec![11, 99, 44], final_digest: 0xfeed };
        let report = check_block_equivalence(&reference(), &[(4, bad)]);
        assert_eq!(
            report.violations,
            vec![BlockViolation::OutputDivergence { threads: 4, txn: 1, got: 99, want: 22 }],
            "only the first divergence is reported"
        );
        assert!(!report.ok());
    }

    #[test]
    fn state_divergence_and_length_mismatch_are_caught() {
        let short = BlockRecord { outputs: vec![11], final_digest: 0xfeed };
        let skewed = BlockRecord { outputs: vec![11, 22, 33], final_digest: 0xdead };
        let report = check_block_equivalence(&reference(), &[(2, short), (4, skewed)]);
        assert_eq!(report.violations.len(), 2);
        assert!(matches!(
            report.violations[0],
            BlockViolation::LengthMismatch { threads: 2, got: 1, want: 3 }
        ));
        assert!(matches!(
            report.violations[1],
            BlockViolation::StateDivergence { threads: 4, got: 0xdead, want: 0xfeed }
        ));
    }

    #[test]
    fn empty_comparisons_are_vacuous() {
        let report = check_block_equivalence(&reference(), &[]);
        assert!(report.ok() && report.is_vacuous(), "no runs proves nothing");
        let empty = BlockRecord { outputs: vec![], final_digest: 0 };
        let report = check_block_equivalence(&empty, &[(2, empty.clone())]);
        assert!(report.ok() && report.is_vacuous(), "empty block proves nothing");
    }

    #[test]
    fn conserved_total_is_exact() {
        assert!(check_conserved_total(500, 500).is_ok());
        let err = check_conserved_total(499, 500).unwrap_err();
        assert_eq!(err, BlockViolation::TotalNotConserved { got: 499, want: 500 });
        assert!(err.to_string().contains("conserved total"), "{err}");
    }
}
