//! Recovery oracle: validates that a crash-recovered store is a correct
//! prefix of the run's serial history.
//!
//! The WAL's correctness argument rests on three claims the live run's
//! event stream can certify:
//!
//! 1. the history itself was opaque/serializable ([`crate::check_history`]
//!    — recovery from a broken history proves nothing);
//! 2. the commit sequence numbers the WAL keyed its records by are
//!    **dense**: every value `1..=max` appears on exactly one commit
//!    event, so "sorted, gap-free from the base" really is a prefix of
//!    the serialization order;
//! 3. the recovered watermark does not exceed the run — a recovered
//!    sequence number beyond `max` means the log invented a commit.
//!
//! Together with the caller's digest comparison (recovered store vs a
//! serial replay of the ground-truth ledger up to the watermark) this
//! closes the loop: the recovered state equals the state the serial
//! history prescribes at some prefix the disk actually survived.

use gstm_core::TxEvent;

use crate::{check_history, OracleReport};

/// One recovery-specific violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryViolation {
    /// A commit sequence number appeared on more than one commit event.
    DuplicateSeq {
        /// The duplicated sequence number.
        seq: u64,
    },
    /// A sequence number in `1..=max` never appeared — the WAL's gap-free
    /// prefix rule would silently truncate at this hole.
    MissingSeq {
        /// The absent sequence number.
        seq: u64,
    },
    /// The recovered watermark exceeds the highest sequence the run
    /// actually committed.
    WatermarkBeyondHistory {
        /// The recovered sequence number.
        recovered: u64,
        /// The run's highest commit sequence.
        max: u64,
    },
}

impl std::fmt::Display for RecoveryViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryViolation::DuplicateSeq { seq } => {
                write!(f, "duplicate commit seq {seq} in history")
            }
            RecoveryViolation::MissingSeq { seq } => {
                write!(f, "commit seq {seq} missing: sequence numbers are not dense")
            }
            RecoveryViolation::WatermarkBeyondHistory { recovered, max } => {
                write!(f, "recovered seq {recovered} exceeds the run's max commit seq {max}")
            }
        }
    }
}

/// What [`check_recovery`] found.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// The underlying history oracle's verdict.
    pub history: OracleReport,
    /// Recovery-specific violations, in discovery order.
    pub violations: Vec<RecoveryViolation>,
    /// Highest commit sequence number in the history.
    pub max_seq: u64,
    /// Commit events examined.
    pub commits: usize,
}

impl RecoveryReport {
    /// True when both the history oracle and the recovery checks passed.
    pub fn ok(&self) -> bool {
        self.history.ok() && self.violations.is_empty()
    }

    /// True when there was nothing to check (no commits, or a vacuous
    /// history) — callers must reject `ok() && is_vacuous()`.
    pub fn is_vacuous(&self) -> bool {
        self.commits == 0 || self.history.is_vacuous()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} recovery violations over {} commits (max seq {}); history: {}",
            self.violations.len(),
            self.commits,
            self.max_seq,
            self.history.summary(),
        )
    }
}

/// Certifies a recovered watermark against the run's event history: the
/// history must be clean, its commit sequence numbers dense `1..=max`,
/// and `recovered_seq <= max` (see the module docs).
pub fn check_recovery(events: &[TxEvent], recovered_seq: u64) -> RecoveryReport {
    let history = check_history(events);
    let mut seqs: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            TxEvent::Commit { seq, .. } => Some(seq.raw()),
            _ => None,
        })
        .collect();
    let commits = seqs.len();
    seqs.sort_unstable();
    let max_seq = seqs.last().copied().unwrap_or(0);
    let mut violations = Vec::new();
    let mut expected = 1u64;
    for &seq in &seqs {
        if seq < expected {
            violations.push(RecoveryViolation::DuplicateSeq { seq });
            continue;
        }
        while expected < seq {
            violations.push(RecoveryViolation::MissingSeq { seq: expected });
            expected += 1;
        }
        expected = seq + 1;
    }
    if recovered_seq > max_seq {
        violations.push(RecoveryViolation::WatermarkBeyondHistory {
            recovered: recovered_seq,
            max: max_seq,
        });
    }
    RecoveryReport { history, violations, max_seq, commits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_core::{MemorySink, Stm, StmConfig, TVar, ThreadId, TxId};
    use std::sync::Arc;

    fn run_history(txns: usize) -> Vec<TxEvent> {
        let sink = Arc::new(MemorySink::new());
        let stm = Stm::with_parts(
            StmConfig::builder(1).check_events(true).build(),
            Arc::new(gstm_core::NullGate),
            sink.clone(),
            Arc::new(gstm_core::AdmitAll),
            Arc::new(gstm_core::cm::Aggressive),
        );
        let v = TVar::new(0i64);
        for _ in 0..txns {
            stm.run(ThreadId::new(0), TxId::new(0), |tx| tx.modify(&v, |n| n + 1));
        }
        sink.take()
    }

    #[test]
    fn clean_history_with_valid_watermark_passes() {
        let events = run_history(5);
        let report = check_recovery(&events, 3);
        assert!(report.ok(), "{}", report.summary());
        assert!(!report.is_vacuous());
        assert_eq!(report.max_seq, 5);
        assert_eq!(report.commits, 5);
    }

    #[test]
    fn watermark_beyond_history_is_flagged() {
        let events = run_history(3);
        let report = check_recovery(&events, 4);
        assert!(!report.ok());
        assert!(matches!(
            report.violations[0],
            RecoveryViolation::WatermarkBeyondHistory { recovered: 4, max: 3 }
        ));
    }

    #[test]
    fn missing_and_duplicate_seqs_are_flagged() {
        let mut events = run_history(4);
        // Drop the commit with seq 2 and duplicate the one with seq 3.
        let is_seq =
            |e: &TxEvent, n: u64| matches!(e, TxEvent::Commit { seq, .. } if seq.raw() == n);
        events.retain(|e| !is_seq(e, 2));
        let dup = events.iter().find(|e| is_seq(e, 3)).cloned().unwrap();
        events.push(dup);
        let report = check_recovery(&events, 1);
        assert!(report.violations.contains(&RecoveryViolation::MissingSeq { seq: 2 }));
        assert!(report.violations.contains(&RecoveryViolation::DuplicateSeq { seq: 3 }));
    }

    #[test]
    fn empty_history_is_vacuous() {
        let report = check_recovery(&[], 0);
        assert!(report.is_vacuous());
    }
}
