//! # gstm-check — offline opacity/serializability oracle
//!
//! Consumes a recorded [`TxEvent`] history (produced by gstm-core built
//! with the `check` feature and `StmConfig::check_events` enabled) and
//! verifies, per run:
//!
//! 1. **Serializable commit order.** Committed writer transactions admit a
//!    serial order consistent with the global version clock: every writer's
//!    `wv` strictly exceeds its `rv`, write versions are unique, and
//!    read-only commits never tick the clock (`wv == rv`).
//! 2. **Opacity — no zombie reads.** Every successful read, in committed
//!    *and aborted* attempts alike, observed exactly the latest committed
//!    write to its variable with `wv <= rv` (or the initial value when no
//!    such write exists). This is sound for TL2 because a committer locks a
//!    written stripe *before* ticking the clock to obtain `wv` and holds
//!    the lock until it publishes: any read sandwich that passed the
//!    pre/post lock-word check therefore ran entirely outside every commit
//!    window that could have changed the value, so the freshest value it
//!    may legally see is the one published by the last committed write with
//!    `wv <= rv`. Older values are stale reads, higher-`wv` values leaked
//!    through a commit in flight, and values from no committed write at
//!    all are dirty reads of someone's redo log.
//! 3. **Lock discipline.** Every write-back ran under a stripe lock held
//!    by the writer, every unlock was performed by the stripe's owner, and
//!    every write-back is claimed by a following commit of the same thread
//!    (an unclaimed one means values were published without a commit).
//!
//! Reads are matched to writes by **write stamps**: under the `check`
//! feature every transactional write-back brands the cell with a globally
//! unique stamp (0 = initial value), so the oracle identifies *which*
//! write a read observed without comparing payloads. One precondition
//! follows: a workload checked by the oracle must not call
//! `TVar::store_unlogged` while transactions are in flight, since unlogged
//! stores reset the stamp.
//!
//! The oracle is deliberately decoupled from the engine — it sees only the
//! event stream. Feed it with clean runs (expect zero violations), chaos
//! runs under `gstm_sim::ChaosGate` (still zero — faults may abort
//! transactions but must never break opacity), or a deliberately broken
//! engine (`Stm::set_broken_early_write_back`; the oracle must object).
//!
//! ```
//! use gstm_check::check_history;
//! use gstm_core::{MemorySink, Stm, StmConfig, TVar, ThreadId, TxId};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let stm = Stm::with_parts(
//!     StmConfig::builder(1).check_events(true).build(),
//!     Arc::new(gstm_core::NullGate),
//!     sink.clone(),
//!     Arc::new(gstm_core::AdmitAll),
//!     Arc::new(gstm_core::cm::Aggressive),
//! );
//! let v = TVar::new(0i64);
//! stm.run(ThreadId::new(0), TxId::new(0), |tx| tx.modify(&v, |n| n + 1));
//! let report = check_history(&sink.take());
//! assert!(report.ok() && !report.is_vacuous());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use gstm_core::{Participant, TxEvent, VarId};

pub mod block;
pub mod recovery;

pub use block::{
    check_block_equivalence, check_conserved_total, BlockRecord, BlockReport, BlockViolation,
};
pub use recovery::{check_recovery, RecoveryReport, RecoveryViolation};

/// One invariant violation found by [`check_history`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A write-back ran on a stripe the writer did not hold locked.
    UnheldWriteBack {
        /// The offending writer.
        who: Participant,
        /// Variable written.
        var: VarId,
        /// Stamp the write-back installed.
        stamp: u64,
    },
    /// An unlock was refused because the caller did not own the stripe.
    NonOwnerUnlock {
        /// The offending releaser.
        who: Participant,
        /// Stripe index.
        stripe: u32,
    },
    /// A write-back was never claimed by a commit of the same thread —
    /// values reached shared cells without a commit covering them.
    DanglingWriteBack {
        /// The writer whose attempt ended without committing the value.
        who: Participant,
        /// Variable written.
        var: VarId,
        /// Stamp the write-back installed.
        stamp: u64,
    },
    /// A read observed an older committed write than the latest one with
    /// `wv <= rv` — a stale snapshot that inline validation must reject.
    StaleRead {
        /// The reader.
        who: Participant,
        /// Variable read.
        var: VarId,
        /// The reader's snapshot version.
        rv: u64,
        /// Stamp the reader observed (0 = initial value).
        observed: u64,
        /// Stamp it should have observed.
        expected: u64,
    },
    /// A read observed a committed write with `wv > rv` — a value from the
    /// reader's future that leaked through a commit window.
    FutureRead {
        /// The reader.
        who: Participant,
        /// Variable read.
        var: VarId,
        /// The reader's snapshot version.
        rv: u64,
        /// The observed write's version.
        wv: u64,
        /// Stamp the reader observed.
        stamp: u64,
    },
    /// A read observed a stamp no committed write ever produced — a dirty
    /// read of an in-flight (or aborted) redo log.
    DirtyRead {
        /// The reader.
        who: Participant,
        /// Variable read.
        var: VarId,
        /// The observed stamp.
        stamp: u64,
    },
    /// A writer committed with `wv <= rv`, which the clock protocol makes
    /// impossible (the tick happens after the snapshot).
    NonMonotoneWriter {
        /// The writer.
        who: Participant,
        /// Its snapshot version.
        rv: u64,
        /// Its write version.
        wv: u64,
    },
    /// Two committed writers published the same write version.
    DuplicateWriteVersion {
        /// The duplicated version.
        wv: u64,
    },
    /// A read-only commit reported `wv != rv` — it must not tick the clock.
    ReadOnlyCommitTicked {
        /// The committer.
        who: Participant,
        /// Its snapshot version.
        rv: u64,
        /// The reported write version.
        wv: u64,
    },
    /// A writer commit declared a different write-set size than the number
    /// of write-backs it performed.
    WriteCountMismatch {
        /// The writer.
        who: Participant,
        /// Write-backs observed in the stream.
        logged: u32,
        /// Write-set size the commit declared.
        declared: u32,
    },
    /// A snapshot read observed a version newer than its snapshot
    /// timestamp — the MVCC read path leaked a future commit.
    SnapshotFutureRead {
        /// The reader.
        who: Participant,
        /// Variable read.
        var: VarId,
        /// The reader's snapshot timestamp.
        ts: u64,
        /// The observed version (`> ts`).
        wv: u64,
    },
    /// A snapshot read observed an older committed version than the newest
    /// one with `wv <= ts` — the version ring GC evicted a version an
    /// active reader still needed.
    SnapshotStaleRead {
        /// The reader.
        who: Participant,
        /// Variable read.
        var: VarId,
        /// The reader's snapshot timestamp.
        ts: u64,
        /// Version the reader observed (0 = initial-value fallback).
        observed: u64,
        /// Version it should have observed.
        expected: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnheldWriteBack { who, var, stamp } => {
                write!(f, "unheld write-back: {who} wrote {var} (stamp {stamp}) without the lock")
            }
            Violation::NonOwnerUnlock { who, stripe } => {
                write!(f, "non-owner unlock: {who} released stripe {stripe} it did not own")
            }
            Violation::DanglingWriteBack { who, var, stamp } => {
                write!(
                    f,
                    "dangling write-back: {who} published {var} (stamp {stamp}) with no commit"
                )
            }
            Violation::StaleRead { who, var, rv, observed, expected } => write!(
                f,
                "stale read: {who} at rv {rv} saw {var} stamp {observed}, expected {expected}"
            ),
            Violation::FutureRead { who, var, rv, wv, stamp } => write!(
                f,
                "future read: {who} at rv {rv} saw {var} stamp {stamp} from commit wv {wv}"
            ),
            Violation::DirtyRead { who, var, stamp } => {
                write!(f, "dirty read: {who} saw {var} stamp {stamp} from no committed write")
            }
            Violation::NonMonotoneWriter { who, rv, wv } => {
                write!(f, "non-monotone writer: {who} committed wv {wv} <= rv {rv}")
            }
            Violation::DuplicateWriteVersion { wv } => {
                write!(f, "duplicate write version: two commits published wv {wv}")
            }
            Violation::ReadOnlyCommitTicked { who, rv, wv } => {
                write!(f, "read-only commit ticked the clock: {who} rv {rv} -> wv {wv}")
            }
            Violation::WriteCountMismatch { who, logged, declared } => write!(
                f,
                "write count mismatch: {who} logged {logged} write-backs, declared {declared}"
            ),
            Violation::SnapshotFutureRead { who, var, ts, wv } => {
                write!(f, "snapshot future read: {who} at ts {ts} saw {var} version wv {wv}")
            }
            Violation::SnapshotStaleRead { who, var, ts, observed, expected } => write!(
                f,
                "snapshot stale read: {who} at ts {ts} saw {var} wv {observed}, expected {expected}"
            ),
        }
    }
}

/// What [`check_history`] found, plus coverage counters so callers can
/// reject vacuous passes.
#[derive(Clone, Debug, Default)]
pub struct OracleReport {
    /// Every violation, in discovery order.
    pub violations: Vec<Violation>,
    /// Read observations examined.
    pub reads: usize,
    /// Commits examined (writers and read-only).
    pub commits: usize,
    /// Committed writer transactions among them.
    pub writers: usize,
    /// Write-backs examined.
    pub write_backs: usize,
    /// Snapshot-mode read observations examined (MVCC read path).
    pub snapshot_reads: usize,
}

impl OracleReport {
    /// True when no violation was found.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// True when the history contained nothing to check — a clean verdict
    /// over a vacuous history proves nothing (e.g. the engine was built
    /// without the `check` feature or `check_events` was left off), so
    /// harnesses must treat `ok() && is_vacuous()` as a failure.
    pub fn is_vacuous(&self) -> bool {
        self.reads == 0 && self.write_backs == 0 && self.snapshot_reads == 0
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} violations over {} reads, {} commits ({} writers), {} write-backs",
            self.violations.len(),
            self.reads,
            self.commits,
            self.writers,
            self.write_backs,
        )
    }
}

/// A write-back waiting for its thread's next commit to claim it.
struct PendingWrite {
    who: Participant,
    var: VarId,
    stamp: u64,
}

/// Checks one recorded history against the oracle invariants (module docs).
///
/// Events must appear in per-thread program order, which every
/// [`gstm_core::MemorySink`]-style sink preserves; interleaving *between*
/// threads is irrelevant to the oracle.
pub fn check_history(events: &[TxEvent]) -> OracleReport {
    let mut report = OracleReport::default();
    // Pass 1: stream once, attaching write-backs to the commits that claim
    // them and collecting the per-variable committed-write history.
    let mut pending: BTreeMap<u16, Vec<PendingWrite>> = BTreeMap::new();
    let mut reads: Vec<(Participant, VarId, u64, u64)> = Vec::new();
    let mut snap_reads: Vec<(Participant, VarId, u64, u64)> = Vec::new(); // (who, var, wv, ts)
    let mut committed: BTreeMap<VarId, Vec<(u64, u64)>> = BTreeMap::new(); // var -> [(wv, stamp)]
    let mut wv_seen: BTreeSet<u64> = BTreeSet::new();
    for event in events {
        match event {
            TxEvent::ReadCheck { who, var, stamp, rv, .. } => {
                report.reads += 1;
                reads.push((*who, *var, *stamp, *rv));
            }
            TxEvent::SnapshotReadCheck { who, var, wv, ts, .. } => {
                report.snapshot_reads += 1;
                // The timestamp rule needs no history: an observed version
                // above the snapshot is wrong no matter what committed.
                if wv > ts {
                    report.violations.push(Violation::SnapshotFutureRead {
                        who: *who,
                        var: *var,
                        ts: *ts,
                        wv: *wv,
                    });
                } else {
                    snap_reads.push((*who, *var, *wv, *ts));
                }
            }
            TxEvent::WriteBackCheck { who, var, stamp, held, .. } => {
                report.write_backs += 1;
                if !held {
                    report.violations.push(Violation::UnheldWriteBack {
                        who: *who,
                        var: *var,
                        stamp: *stamp,
                    });
                }
                pending.entry(who.thread.raw()).or_default().push(PendingWrite {
                    who: *who,
                    var: *var,
                    stamp: *stamp,
                });
            }
            TxEvent::UnlockCheck { who, stripe, owner_ok, .. } if !owner_ok => {
                report.violations.push(Violation::NonOwnerUnlock { who: *who, stripe: *stripe });
            }
            TxEvent::CommitCheck { who, rv, wv, writes, .. } => {
                report.commits += 1;
                let claimed = pending.remove(&who.thread.raw()).unwrap_or_default();
                if *writes == 0 {
                    if wv != rv {
                        report.violations.push(Violation::ReadOnlyCommitTicked {
                            who: *who,
                            rv: *rv,
                            wv: *wv,
                        });
                    }
                    for w in claimed {
                        report.violations.push(Violation::DanglingWriteBack {
                            who: w.who,
                            var: w.var,
                            stamp: w.stamp,
                        });
                    }
                    continue;
                }
                report.writers += 1;
                if wv <= rv {
                    report.violations.push(Violation::NonMonotoneWriter {
                        who: *who,
                        rv: *rv,
                        wv: *wv,
                    });
                }
                if !wv_seen.insert(*wv) {
                    report.violations.push(Violation::DuplicateWriteVersion { wv: *wv });
                }
                if claimed.len() != *writes as usize {
                    report.violations.push(Violation::WriteCountMismatch {
                        who: *who,
                        logged: claimed.len() as u32,
                        declared: *writes,
                    });
                }
                for w in claimed {
                    committed.entry(w.var).or_default().push((*wv, w.stamp));
                }
            }
            TxEvent::Abort { who, .. } => {
                // The attempt rolled back: any write-back it performed
                // reached shared cells without a commit covering it.
                for w in pending.remove(&who.thread.raw()).unwrap_or_default() {
                    report.violations.push(Violation::DanglingWriteBack {
                        who: w.who,
                        var: w.var,
                        stamp: w.stamp,
                    });
                }
            }
            _ => {}
        }
    }
    // A truncated history can end mid-commit; anything still pending was
    // never claimed.
    for (_, writes) in pending {
        for w in writes {
            report.violations.push(Violation::DanglingWriteBack {
                who: w.who,
                var: w.var,
                stamp: w.stamp,
            });
        }
    }

    // Pass 2: judge every read against the committed-write history.
    let mut stamp_to_wv: BTreeMap<u64, u64> = BTreeMap::new();
    for history in committed.values_mut() {
        history.sort_unstable();
        for &(wv, stamp) in history.iter() {
            stamp_to_wv.insert(stamp, wv);
        }
    }
    let empty: Vec<(u64, u64)> = Vec::new();
    for (who, var, observed, rv) in reads {
        let history = committed.get(&var).unwrap_or(&empty);
        // The latest committed write with wv <= rv is what the read must
        // have seen; stamp 0 (the initial value) when there is none.
        let cut = history.partition_point(|&(wv, _)| wv <= rv);
        let expected = if cut == 0 { 0 } else { history[cut - 1].1 };
        if observed == expected {
            continue;
        }
        match stamp_to_wv.get(&observed) {
            Some(&wv) if wv > rv => {
                report.violations.push(Violation::FutureRead { who, var, rv, wv, stamp: observed });
            }
            Some(_) => {
                report.violations.push(Violation::StaleRead { who, var, rv, observed, expected });
            }
            None if observed == 0 => {
                // Saw the initial value although a committed write with
                // wv <= rv exists: the freshest legal value was missed.
                report.violations.push(Violation::StaleRead { who, var, rv, observed, expected });
            }
            None => {
                report.violations.push(Violation::DirtyRead { who, var, stamp: observed });
            }
        }
    }
    // Snapshot reads are judged by version, not stamp: the read must have
    // resolved to the newest committed version with wv <= ts (0 = the
    // initial value when no such version exists). Anything older means the
    // ring GC evicted a version a live reader still needed.
    for (who, var, observed, ts) in snap_reads {
        let history = committed.get(&var).unwrap_or(&empty);
        let cut = history.partition_point(|&(wv, _)| wv <= ts);
        let expected = if cut == 0 { 0 } else { history[cut - 1].0 };
        if observed != expected {
            report.violations.push(Violation::SnapshotStaleRead {
                who,
                var,
                ts,
                observed,
                expected,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_core::{Abort, AbortReason, CommitSeq, ThreadId, TxId};

    fn who(t: u16) -> Participant {
        Participant::new(ThreadId::new(t), TxId::new(0))
    }

    fn read(t: u16, var: u64, stamp: u64, rv: u64) -> TxEvent {
        TxEvent::ReadCheck {
            who: who(t),
            var: VarId::from_raw(var),
            stripe: var as u32,
            version: 0,
            stamp,
            rv,
            at: 0,
        }
    }

    fn wb(t: u16, var: u64, stamp: u64, held: bool) -> TxEvent {
        TxEvent::WriteBackCheck {
            who: who(t),
            var: VarId::from_raw(var),
            stripe: var as u32,
            stamp,
            held,
            at: 0,
        }
    }

    fn commit(t: u16, rv: u64, wv: u64, writes: u32) -> TxEvent {
        TxEvent::CommitCheck { who: who(t), seq: CommitSeq::new(wv), rv, wv, writes, at: 0 }
    }

    fn unlock(t: u16, owner_ok: bool) -> TxEvent {
        TxEvent::UnlockCheck { who: who(t), stripe: 0, owner_ok, publish: true, at: 0 }
    }

    fn abort(t: u16) -> TxEvent {
        TxEvent::Abort { who: who(t), attempt: 0, abort: Abort::new(AbortReason::UserRetry), at: 0 }
    }

    fn sread(t: u16, var: u64, wv: u64, ts: u64) -> TxEvent {
        TxEvent::SnapshotReadCheck { who: who(t), var: VarId::from_raw(var), wv, ts, at: 0 }
    }

    #[test]
    fn clean_history_passes_and_is_not_vacuous() {
        let events =
            vec![wb(0, 1, 10, true), commit(0, 0, 1, 1), read(1, 1, 10, 1), commit(1, 1, 1, 0)];
        let report = check_history(&events);
        assert!(report.ok(), "{:?}", report.violations);
        assert!(!report.is_vacuous());
        assert_eq!((report.reads, report.commits, report.writers), (1, 2, 1));
    }

    #[test]
    fn empty_history_is_vacuous() {
        let report = check_history(&[]);
        assert!(report.ok() && report.is_vacuous());
    }

    #[test]
    fn initial_value_read_is_legal_before_any_commit() {
        let report = check_history(&[read(0, 1, 0, 5), commit(0, 5, 5, 0)]);
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn stale_read_of_older_committed_write() {
        let events = vec![
            wb(0, 1, 10, true),
            commit(0, 0, 1, 1),
            wb(0, 1, 11, true),
            commit(0, 1, 2, 1),
            read(1, 1, 10, 2), // rv 2 covers wv 2: must see stamp 11
        ];
        let report = check_history(&events);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::StaleRead { observed: 10, expected: 11, .. }]
        ));
    }

    #[test]
    fn stale_read_of_initial_value() {
        let events = vec![wb(0, 1, 10, true), commit(0, 0, 1, 1), read(1, 1, 0, 1)];
        let report = check_history(&events);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::StaleRead { observed: 0, expected: 10, .. }]
        ));
    }

    #[test]
    fn future_read_from_a_later_commit() {
        let events = vec![wb(0, 1, 10, true), commit(0, 0, 1, 1), read(1, 1, 10, 0)];
        let report = check_history(&events);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::FutureRead { wv: 1, stamp: 10, .. }]
        ));
    }

    #[test]
    fn dirty_read_of_an_uncommitted_stamp() {
        let report = check_history(&[read(1, 1, 99, 4)]);
        assert!(matches!(report.violations.as_slice(), [Violation::DirtyRead { stamp: 99, .. }]));
    }

    #[test]
    fn unheld_write_back_is_flagged() {
        let events = vec![wb(0, 1, 10, false), commit(0, 0, 1, 1)];
        let report = check_history(&events);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::UnheldWriteBack { stamp: 10, .. }]
        ));
    }

    #[test]
    fn non_owner_unlock_is_flagged() {
        let report = check_history(&[unlock(0, false)]);
        assert!(matches!(report.violations.as_slice(), [Violation::NonOwnerUnlock { .. }]));
    }

    #[test]
    fn write_back_without_commit_dangles() {
        for tail in [vec![abort(0)], vec![]] {
            let mut events = vec![wb(0, 1, 10, true)];
            events.extend(tail);
            let report = check_history(&events);
            assert!(
                matches!(report.violations.as_slice(), [Violation::DanglingWriteBack { .. }]),
                "{:?}",
                report.violations
            );
        }
    }

    #[test]
    fn non_monotone_writer_is_flagged() {
        let events = vec![wb(0, 1, 10, true), commit(0, 5, 5, 1)];
        let report = check_history(&events);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NonMonotoneWriter { rv: 5, wv: 5, .. })));
    }

    #[test]
    fn duplicate_write_version_is_flagged() {
        let events =
            vec![wb(0, 1, 10, true), commit(0, 0, 3, 1), wb(1, 2, 11, true), commit(1, 0, 3, 1)];
        let report = check_history(&events);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicateWriteVersion { wv: 3 })));
    }

    #[test]
    fn read_only_commit_must_not_tick() {
        let report = check_history(&[commit(0, 4, 5, 0)]);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::ReadOnlyCommitTicked { rv: 4, wv: 5, .. }]
        ));
    }

    #[test]
    fn write_count_mismatch_is_flagged() {
        let events = vec![wb(0, 1, 10, true), commit(0, 0, 1, 2)];
        let report = check_history(&events);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::WriteCountMismatch { logged: 1, declared: 2, .. })));
    }

    #[test]
    fn interleaved_threads_attach_write_backs_correctly() {
        // Thread 1's write-backs land between thread 0's write-back and
        // commit; per-thread attachment must not confuse them.
        let events = vec![
            wb(0, 1, 10, true),
            wb(1, 2, 20, true),
            commit(1, 0, 1, 1),
            commit(0, 1, 2, 1),
            read(2, 1, 10, 2),
            read(2, 2, 20, 2),
            commit(2, 2, 2, 0),
        ];
        let report = check_history(&events);
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.writers, 2);
    }

    #[test]
    fn summary_and_display_render() {
        let report = check_history(&[read(1, 1, 99, 4)]);
        assert!(report.summary().contains("1 violations"));
        let text = report.violations[0].to_string();
        assert!(text.contains("dirty read"), "{text}");
    }

    #[test]
    fn clean_snapshot_reads_pass_and_count() {
        let events = vec![
            wb(0, 1, 10, true),
            commit(0, 0, 3, 1),
            wb(0, 1, 11, true),
            commit(0, 3, 7, 1),
            sread(1, 1, 3, 5), // ts 5 covers wv 3 but not wv 7
            sread(1, 1, 7, 9), // ts 9 covers wv 7
            sread(1, 2, 0, 9), // never-written var: initial-value fallback
        ];
        let report = check_history(&events);
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.snapshot_reads, 3);
        assert!(!report.is_vacuous());
    }

    #[test]
    fn snapshot_read_newer_than_ts_is_flagged() {
        let events = vec![wb(0, 1, 10, true), commit(0, 0, 7, 1), sread(1, 1, 7, 5)];
        let report = check_history(&events);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::SnapshotFutureRead { ts: 5, wv: 7, .. }]
        ));
    }

    #[test]
    fn snapshot_read_of_evicted_version_is_stale() {
        // wv 3 and wv 7 both committed; a reader at ts 9 resolving to wv 3
        // means the ring dropped wv 7 — or, reading the initial value (0),
        // dropped everything.
        for (observed, expected) in [(3u64, 7u64), (0, 7)] {
            let events = vec![
                wb(0, 1, 10, true),
                commit(0, 0, 3, 1),
                wb(0, 1, 11, true),
                commit(0, 3, 7, 1),
                sread(1, 1, observed, 9),
            ];
            let report = check_history(&events);
            assert!(
                matches!(
                    report.violations.as_slice(),
                    [Violation::SnapshotStaleRead { ts: 9, observed: o, expected: e, .. }]
                        if *o == observed && *e == expected
                ),
                "observed {observed}: {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn snapshot_violations_render() {
        let f =
            Violation::SnapshotFutureRead { who: who(1), var: VarId::from_raw(1), ts: 5, wv: 7 };
        assert!(f.to_string().contains("snapshot future read"), "{f}");
        let s = Violation::SnapshotStaleRead {
            who: who(1),
            var: VarId::from_raw(1),
            ts: 9,
            observed: 3,
            expected: 7,
        };
        assert!(s.to_string().contains("snapshot stale read"), "{s}");
    }

    /// End-to-end: a snapshot-mode engine under read/write interference
    /// produces a history the oracle accepts, with snapshot reads counted.
    #[test]
    fn live_snapshot_engine_history_is_clean() {
        use gstm_core::{MemorySink, ReadMode, Stm, StmConfig, TVar, ThreadId, TxId};
        use std::sync::Arc;
        let sink = Arc::new(MemorySink::new());
        let stm = Stm::with_parts(
            StmConfig::builder(2).read_mode(ReadMode::Snapshot).check_events(true).build(),
            Arc::new(gstm_core::NullGate),
            sink.clone(),
            Arc::new(gstm_core::AdmitAll),
            Arc::new(gstm_core::cm::Aggressive),
        );
        let v = TVar::new(0i64);
        for i in 0..5 {
            stm.run(ThreadId::new(0), TxId::new(0), |tx| tx.write(&v, i));
            stm.run_read_only(ThreadId::new(1), TxId::new(1), |tx| tx.read(&v));
        }
        let report = check_history(&sink.take());
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.snapshot_reads, 5);
        assert!(!report.is_vacuous());
    }
}
