//! genome — gene sequencing by segment deduplication and overlap linking.
//!
//! Follows STAMP's three phases: (1) insert the shuffled segment pool into a
//! transactional set to deduplicate; (2) publish each unique segment under
//! its (S−1)-base prefix in a transactional map; (3) link each segment to
//! the successor whose prefix equals this segment's suffix, rebuilding the
//! genome chain. Phases are barrier-separated like the original.
//!
//! Transaction sites: `a` = dedup insert, `b` = prefix publish, `c` = link.

use std::sync::Arc;

use gstm_core::rng::{SliceRandom, SmallRng};
use gstm_core::sync::Mutex;

use gstm_collections::{THashMap, TSet};
use gstm_core::TxId;
use gstm_guide::{WorkerEnv, Workload, WorkloadRun};

use crate::size::InputSize;

/// A segment is a window of the genome packed 2 bits per base into a u64
/// (so segment length is capped at 32 bases; we use 12).
type Segment = u64;

const SEG_LEN: usize = 12;
const BASE_BITS: u32 = 2;

/// The genome benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Genome {
    /// Genome length in bases.
    pub genome_len: usize,
    /// How many copies of each segment the sequencer receives (duplication
    /// factor of the segment pool).
    pub copies: usize,
}

impl Genome {
    /// Size presets.
    pub fn with_size(size: InputSize) -> Self {
        Genome { genome_len: size.pick(192, 512, 2048), copies: size.pick(3, 4, 4) }
    }
}

fn pack_window(bases: &[u8]) -> Segment {
    bases.iter().fold(0u64, |acc, &b| (acc << BASE_BITS) | b as u64)
}

fn prefix_of(seg: Segment) -> u64 {
    seg >> BASE_BITS
}

fn suffix_of(seg: Segment) -> u64 {
    seg & ((1u64 << ((SEG_LEN - 1) as u32 * BASE_BITS)) - 1)
}

struct GenomeRun {
    pool: Vec<Segment>,
    uniques: usize,
    first: Segment,
    dedup: TSet<Segment>,
    by_prefix: THashMap<u64, Segment>,
    links: THashMap<Segment, Segment>,
    chain_len: Arc<Mutex<usize>>,
}

impl Workload for Genome {
    fn name(&self) -> &'static str {
        "genome"
    }

    fn instantiate(&self, _threads: usize, seed: u64) -> Box<dyn WorkloadRun> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x67656e6f);
        let bases: Vec<u8> = (0..self.genome_len).map(|_| rng.gen_range(0..4u8)).collect();
        // All sliding windows: consecutive windows overlap by SEG_LEN − 1
        // bases, which is exactly the suffix/prefix relation phase 3 links.
        let mut segments: Vec<Segment> = bases.windows(SEG_LEN).map(pack_window).collect();
        segments.dedup();
        let first = segments[0];
        let uniques: std::collections::HashSet<Segment> = segments.iter().copied().collect();
        let mut pool: Vec<Segment> = Vec::with_capacity(segments.len() * self.copies);
        for _ in 0..self.copies {
            pool.extend(&segments);
        }
        pool.shuffle(&mut rng);
        Box::new(GenomeRun {
            pool,
            uniques: uniques.len(),
            first,
            // Dense tables: STAMP's genome hashes segments into tightly
            // packed tables, so concurrent inserts collide regularly.
            dedup: TSet::new(16),
            by_prefix: THashMap::new(16),
            links: THashMap::new(64),
            chain_len: Arc::new(Mutex::new(0)),
        })
    }
}

impl WorkloadRun for GenomeRun {
    fn worker(&self, env: WorkerEnv) -> Box<dyn FnOnce() + Send> {
        let me = env.thread.index();
        let chunk = self.pool.len().div_ceil(env.threads);
        let mine: Vec<Segment> = self.pool.iter().skip(me * chunk).take(chunk).copied().collect();
        let dedup = self.dedup.clone();
        let by_prefix = self.by_prefix.clone();
        let links = self.links.clone();
        let first = self.first;
        let chain_len = Arc::clone(&self.chain_len);
        Box::new(move || {
            // Phase 1: deduplicate the segment pool.
            let mut fresh: Vec<Segment> = Vec::new();
            for seg in &mine {
                let new = env.stm.run(env.thread, TxId::new(0), |tx| {
                    tx.work(SEG_LEN as u64 / 2);
                    dedup.insert(tx, *seg)
                });
                if new {
                    fresh.push(*seg);
                }
            }
            env.barrier.wait(env.thread);
            // Phase 2: publish unique segments under their prefix.
            for seg in &fresh {
                env.stm.run(env.thread, TxId::new(1), |tx| {
                    tx.work(2);
                    by_prefix.insert(tx, prefix_of(*seg), *seg).map(|_| ())
                });
            }
            env.barrier.wait(env.thread);
            // Phase 3: link each of *my* unique segments to its successor
            // (the segment whose prefix equals my suffix).
            for seg in &fresh {
                env.stm.run(env.thread, TxId::new(2), |tx| {
                    tx.work(2);
                    if let Some(next) = by_prefix.get(tx, &suffix_of(*seg))? {
                        if next != *seg {
                            links.insert(tx, *seg, next)?;
                        }
                    }
                    Ok(())
                });
            }
            env.barrier.wait(env.thread);
            // Thread 0 walks the chain to rebuild the genome.
            if me == 0 {
                let link_map: std::collections::HashMap<Segment, Segment> =
                    links.snapshot_unlogged().into_iter().collect();
                let mut seen = std::collections::HashSet::new();
                let mut cur = first;
                let mut len = 1;
                seen.insert(cur);
                while let Some(&next) = link_map.get(&cur) {
                    if !seen.insert(next) {
                        break;
                    }
                    cur = next;
                    len += 1;
                }
                *chain_len.lock() = len;
            }
        })
    }

    fn verify(&self) -> Result<(), String> {
        let dedup_count = self.dedup.len_unlogged();
        if dedup_count != self.uniques {
            return Err(format!("dedup kept {dedup_count} segments, expected {}", self.uniques));
        }
        let chain = *self.chain_len.lock();
        // Every unique segment except possibly tail repeats must be reached.
        if chain * 2 < self.uniques {
            return Err(format!("reconstructed chain too short: {chain} of {}", self.uniques));
        }
        Ok(())
    }

    fn stats(&self) -> Vec<(String, f64)> {
        vec![
            ("uniques".into(), self.uniques as f64),
            ("chain".into(), *self.chain_len.lock() as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_guide::{run_workload, RunOptions};

    #[test]
    fn packing_is_injective_for_windows() {
        let a = pack_window(&[0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]);
        let b = pack_window(&[0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 0]);
        assert_ne!(a, b);
    }

    #[test]
    fn prefix_suffix_overlap_rule() {
        // suffix(x) == prefix(y) iff y continues x by one base.
        let x = pack_window(&[1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0]);
        let y = (suffix_of(x) << BASE_BITS) | 3;
        assert_eq!(prefix_of(y), suffix_of(x));
    }

    #[test]
    fn small_run_verifies() {
        let g = Genome { genome_len: 128, copies: 2 };
        let out = run_workload(&g, &RunOptions::new(4, 5));
        assert!(out.total_commits() > 0);
    }

    #[test]
    fn dedup_sees_contention() {
        let g = Genome::with_size(InputSize::Small);
        let out = run_workload(&g, &RunOptions::new(8, 2));
        assert!(out.total_aborts() > 0, "shared set inserts must conflict sometimes");
    }
}
