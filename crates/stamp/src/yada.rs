//! yada — Delaunay mesh refinement (Ruppert's algorithm), simplified.
//!
//! The transactional shape of STAMP's yada is what matters for the paper:
//! a work-list of *bad* elements; each refinement transaction pops an
//! element, reads its cavity (the element plus its neighbors), retires the
//! cavity, inserts freshly numbered replacement elements, and pushes any
//! new bad elements back on the list. Read/write sets are large and
//! variable, and the models grow huge (Table III: 27 120 states at 8
//! threads — second only to intruder).
//!
//! Our mesh is synthetic: elements carry a quality score and a neighbor
//! list; refinement replaces a bad element and its worst neighbor with
//! fresh elements whose quality improves by a seeded hash, guaranteeing
//! termination.
//!
//! Transaction sites: `a` = pop work, `b` = refine cavity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gstm_core::rng::SmallRng;

use gstm_collections::{THashMap, TWorklist};
use gstm_core::TxId;
use gstm_guide::{WorkerEnv, Workload, WorkloadRun};

use crate::size::InputSize;

/// Quality threshold: elements below this are *bad* and need refinement.
const GOOD: u32 = 60;

/// One mesh element.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Element {
    quality: u32,
    neighbors: Vec<u32>,
}

/// The yada benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Yada {
    /// Initial mesh size (elements).
    pub elements: usize,
    /// Fraction of initially bad elements, percent.
    pub bad_pct: u32,
}

impl Yada {
    /// Size presets.
    pub fn with_size(size: InputSize) -> Self {
        Yada { elements: size.pick(96, 256, 1024), bad_pct: 40 }
    }
}

struct YadaRun {
    mesh: THashMap<u32, Element>,
    work: TWorklist<u32>,
    /// Per-thread id allocator bases (no shared counter: STAMP also avoids
    /// a hot allocation point).
    next_id: Arc<Vec<AtomicU64>>,
    refined: Arc<AtomicU64>,
    initial_bad: usize,
}

/// Deterministic quality for a fresh element derived from its id: strictly
/// better than the threshold most of the time, so refinement converges.
fn fresh_quality(id: u32, round: u32) -> u32 {
    let h = (id as u64).wrapping_mul(0x9E37_79B9).wrapping_add(round as u64 * 31);
    // Mostly good; occasionally spawns further work (the cascade that makes
    // yada's transaction stream long-tailed).
    if h % 10 < 2 && round < 3 {
        GOOD - 1 - (h % 17) as u32
    } else {
        GOOD + (h % 40) as u32
    }
}

impl Workload for Yada {
    fn name(&self) -> &'static str {
        "yada"
    }

    fn instantiate(&self, threads: usize, seed: u64) -> Box<dyn WorkloadRun> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7961_6461);
        let n = self.elements as u32;
        let mesh = THashMap::new(128);
        let mut bad = Vec::new();
        // Build the initial mesh non-transactionally via a throwaway STM.
        let stm = gstm_core::Stm::new(gstm_core::StmConfig::new(1));
        for id in 0..n {
            let is_bad = rng.gen_range(0u32..100) < self.bad_pct;
            let quality = if is_bad { rng.gen_range(10..GOOD) } else { rng.gen_range(GOOD..140) };
            let neighbors = (0..3).map(|_| rng.gen_range(0..n)).filter(|&m| m != id).collect();
            let el = Element { quality, neighbors };
            if is_bad {
                bad.push(id);
            }
            let mesh_ref = &mesh;
            stm.run(gstm_core::ThreadId::new(0), TxId::new(9), move |tx| {
                mesh_ref.insert(tx, id, el.clone()).map(|_| ())
            });
        }
        let initial_bad = bad.len();
        Box::new(YadaRun {
            mesh,
            work: TWorklist::seeded(threads.max(1), bad),
            next_id: Arc::new(
                (0..threads).map(|t| AtomicU64::new(n as u64 + t as u64 * 1_000_000)).collect(),
            ),
            refined: Arc::new(AtomicU64::new(0)),
            initial_bad,
        })
    }
}

impl WorkloadRun for YadaRun {
    fn worker(&self, env: WorkerEnv) -> Box<dyn FnOnce() + Send> {
        let mesh = self.mesh.clone();
        let work = self.work.clone();
        let next_id = Arc::clone(&self.next_id);
        let refined = Arc::clone(&self.refined);
        let me = env.thread.index();
        Box::new(move || {
            let mut round = 0u32;
            loop {
                // Site a: take a bad element.
                let id = env.stm.run(env.thread, TxId::new(0), |tx| {
                    tx.work(1);
                    work.pop(tx, me)
                });
                let Some(id) = id else { break };
                round += 1;

                // Site b: refine the cavity around `id`.
                let spawned = env.stm.run(env.thread, TxId::new(1), |tx| {
                    let Some(el) = mesh.get(tx, &id)? else {
                        // Already retired by a neighboring refinement.
                        return Ok(Vec::new());
                    };
                    if el.quality >= GOOD {
                        return Ok(Vec::new());
                    }
                    // Read the cavity: the element and its live neighbors.
                    let mut cavity = vec![(id, el.clone())];
                    for &nb in &el.neighbors {
                        if let Some(nel) = mesh.get(tx, &nb)? {
                            cavity.push((nb, nel));
                        }
                    }
                    tx.work(cavity.len() as u64 * 4);
                    // Retire the worst neighbor along with the bad element.
                    cavity.sort_by_key(|(_, e)| e.quality);
                    let retire: Vec<u32> = cavity.iter().take(2).map(|(i, _)| *i).collect();
                    let survivors: Vec<u32> = cavity.iter().skip(2).map(|(i, _)| *i).collect();
                    for rid in &retire {
                        mesh.remove(tx, rid)?;
                    }
                    // Insert replacements wired to the survivors.
                    let mut new_bad = Vec::new();
                    let base = next_id[me].fetch_add(retire.len() as u64 + 1, Ordering::Relaxed);
                    for k in 0..=retire.len() {
                        let nid = (base + k as u64) as u32;
                        let q = fresh_quality(nid, round % 4);
                        mesh.insert(tx, nid, Element { quality: q, neighbors: survivors.clone() })?;
                        if q < GOOD {
                            new_bad.push(nid);
                        }
                    }
                    Ok(new_bad)
                });
                refined.fetch_add(1, Ordering::Relaxed);
                for nid in spawned {
                    env.stm.run(env.thread, TxId::new(2), |tx| work.push(tx, me, nid));
                }
            }
        })
    }

    fn verify(&self) -> Result<(), String> {
        if self.work.len_unlogged() != 0 {
            return Err("work list not drained".into());
        }
        if self.refined.load(Ordering::Relaxed) < self.initial_bad as u64 / 2 {
            return Err(format!(
                "only {} refinements for {} initial bad elements",
                self.refined.load(Ordering::Relaxed),
                self.initial_bad
            ));
        }
        // No duplicated ids: the map's internal invariant plus disjoint
        // per-thread id ranges guarantee it; spot-check the snapshot.
        let snap = self.mesh.snapshot_unlogged();
        let mut ids: Vec<u32> = snap.iter().map(|(k, _)| *k).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        if ids.len() != before {
            return Err("duplicate element ids in mesh".into());
        }
        Ok(())
    }

    fn stats(&self) -> Vec<(String, f64)> {
        vec![
            ("refined".into(), self.refined.load(Ordering::Relaxed) as f64),
            ("mesh_size".into(), self.mesh.len_unlogged() as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_guide::{run_workload, RunOptions};

    #[test]
    fn fresh_quality_mostly_good() {
        let good = (0..1000).filter(|&i| fresh_quality(i, 3) >= GOOD).count();
        assert!(good > 900, "round ≥ 3 must always produce good elements: {good}");
    }

    #[test]
    fn refinement_terminates_and_cleans_mesh() {
        let w = Yada { elements: 64, bad_pct: 50 };
        let out = run_workload(&w, &RunOptions::new(4, 8));
        assert!(out.total_commits() > 0);
        let refined =
            out.workload_stats.iter().find(|(k, _)| k == "refined").map(|(_, v)| *v).unwrap();
        assert!(refined >= 16.0);
    }

    #[test]
    fn cavity_conflicts_happen() {
        let w = Yada::with_size(InputSize::Small);
        let out = run_workload(&w, &RunOptions::new(8, 2));
        assert!(out.total_aborts() > 0, "overlapping cavities must conflict");
    }
}
