//! labyrinth — parallel maze routing with Lee's algorithm.
//!
//! Threads pull `(src, dst)` route requests off a shared worklist, compute
//! a shortest path over a **non-transactional snapshot** of the grid
//! (STAMP's labyrinth does the same: the expansion phase copies the grid
//! privately), then transactionally claim every cell of the path. If any
//! cell was taken in the meantime the claim aborts via user-retry and the
//! route is recomputed on a fresh snapshot — labyrinth's long transactions
//! with large write sets are what make it interesting for the paper.
//!
//! Transaction sites: `a` = pop request, `b` = claim path.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gstm_core::rng::SmallRng;

use gstm_collections::{TArray, TWorklist};
use gstm_core::{retry, TxId};
use gstm_guide::{WorkerEnv, Workload, WorkloadRun};

use crate::size::InputSize;

/// A cell holds 0 (free) or the id of the route occupying it.
type Cell = u32;

/// The labyrinth benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Labyrinth {
    /// Grid width.
    pub width: usize,
    /// Grid height.
    pub height: usize,
    /// Number of route requests.
    pub routes: usize,
}

impl Labyrinth {
    /// Size presets.
    pub fn with_size(size: InputSize) -> Self {
        Labyrinth {
            width: size.pick(24, 32, 64),
            height: size.pick(24, 32, 64),
            routes: size.pick(24, 48, 128),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Request {
    id: u32,
    src: (usize, usize),
    dst: (usize, usize),
}

struct LabyrinthRun {
    params: Labyrinth,
    grid: TArray<Cell>,
    work: TWorklist<Request>,
    routed: Arc<Vec<AtomicU64>>, // [routed count, failed count] per thread
    path_cells: Arc<AtomicU64>,
}

impl Workload for Labyrinth {
    fn name(&self) -> &'static str {
        "labyrinth"
    }

    fn instantiate(&self, threads: usize, seed: u64) -> Box<dyn WorkloadRun> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x6c61_6279);
        let requests: Vec<Request> = (0..self.routes as u32)
            .map(|id| Request {
                id: id + 1,
                src: (rng.gen_range(0..self.width), rng.gen_range(0..self.height)),
                dst: (rng.gen_range(0..self.width), rng.gen_range(0..self.height)),
            })
            .collect();
        Box::new(LabyrinthRun {
            params: *self,
            grid: TArray::new(self.width * self.height, |_| 0),
            work: TWorklist::seeded(threads.max(1), requests),
            routed: Arc::new((0..threads * 2).map(|_| AtomicU64::new(0)).collect()),
            path_cells: Arc::new(AtomicU64::new(0)),
        })
    }
}

/// Breadth-first shortest path over a grid snapshot; cells occupied by other
/// routes are obstacles. Returns the path (src..=dst) if one exists.
fn bfs_path(
    snapshot: &[Cell],
    width: usize,
    height: usize,
    src: (usize, usize),
    dst: (usize, usize),
) -> Option<Vec<usize>> {
    let idx = |x: usize, y: usize| y * width + x;
    if snapshot[idx(src.0, src.1)] != 0 || snapshot[idx(dst.0, dst.1)] != 0 {
        return None;
    }
    let mut prev: Vec<i32> = vec![-2; snapshot.len()];
    let mut q = VecDeque::new();
    prev[idx(src.0, src.1)] = -1;
    q.push_back(src);
    while let Some((x, y)) = q.pop_front() {
        if (x, y) == dst {
            let mut path = vec![idx(x, y)];
            let mut cur = idx(x, y);
            while prev[cur] >= 0 {
                cur = prev[cur] as usize;
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        let neighbors = [(x.wrapping_sub(1), y), (x + 1, y), (x, y.wrapping_sub(1)), (x, y + 1)];
        for (nx, ny) in neighbors {
            if nx < width && ny < height {
                let i = idx(nx, ny);
                if prev[i] == -2 && snapshot[i] == 0 {
                    prev[i] = idx(x, y) as i32;
                    q.push_back((nx, ny));
                }
            }
        }
    }
    None
}

impl WorkloadRun for LabyrinthRun {
    fn worker(&self, env: WorkerEnv) -> Box<dyn FnOnce() + Send> {
        let params = self.params;
        let grid = self.grid.clone();
        let work = self.work.clone();
        let routed = Arc::clone(&self.routed);
        let path_cells = Arc::clone(&self.path_cells);
        let me = env.thread.index();
        Box::new(move || loop {
            // Site a: pull the next request (stealing when our shard dries).
            let req = env.stm.run(env.thread, TxId::new(0), |tx| {
                tx.work(1);
                work.pop(tx, me)
            });
            let Some(req) = req else { break };

            // Route with recompute-on-conflict, bounded to keep pathological
            // seeds from spinning forever.
            let mut attempts = 0;
            let claimed = loop {
                attempts += 1;
                if attempts > 16 {
                    break false;
                }
                let snapshot = grid.snapshot_unlogged();
                let Some(path) = bfs_path(&snapshot, params.width, params.height, req.src, req.dst)
                else {
                    break false;
                };
                // Site b: claim every cell of the computed path in a single
                // attempt. A stale cell aborts with a user-retry (matching
                // STAMP, where the stale read fails validation), and the
                // route is recomputed over a fresh snapshot.
                let ok = env.stm.try_run_once(env.thread, TxId::new(1), |tx| {
                    tx.work(path.len() as u64); // expansion cost proxy
                    for &cell in &path {
                        let cur = grid.read(tx, cell)?;
                        if cur != 0 && cur != req.id {
                            return Err(retry());
                        }
                    }
                    for &cell in &path {
                        grid.write(tx, cell, req.id)?;
                    }
                    Ok(())
                });
                if ok.is_ok() {
                    path_cells.fetch_add(path.len() as u64, Ordering::Relaxed);
                    break true;
                }
            };
            let slot = if claimed { me * 2 } else { me * 2 + 1 };
            routed[slot].fetch_add(1, Ordering::Relaxed);
        })
    }

    fn verify(&self) -> Result<(), String> {
        if self.work.len_unlogged() != 0 {
            return Err("request worklist not drained".into());
        }
        let snapshot = self.grid.snapshot_unlogged();
        let occupied = snapshot.iter().filter(|&&c| c != 0).count() as u64;
        let claimed = self.path_cells.load(Ordering::Relaxed);
        if occupied != claimed {
            return Err(format!(
                "grid has {occupied} occupied cells but routes claimed {claimed} \
                 (overlapping paths?)"
            ));
        }
        let done: u64 = self.routed.iter().map(|a| a.load(Ordering::Relaxed)).sum();
        if done != self.params.routes as u64 {
            return Err(format!("{done} requests resolved, expected {}", self.params.routes));
        }
        Ok(())
    }

    fn stats(&self) -> Vec<(String, f64)> {
        let routed: u64 =
            (0..self.routed.len() / 2).map(|i| self.routed[i * 2].load(Ordering::Relaxed)).sum();
        vec![("routed".into(), routed as f64)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_guide::{run_workload, RunOptions};

    #[test]
    fn bfs_finds_straight_line() {
        let snap = vec![0u32; 16];
        let path = bfs_path(&snap, 4, 4, (0, 0), (3, 0)).unwrap();
        assert_eq!(path.len(), 4);
        assert_eq!(path[0], 0);
        assert_eq!(path[3], 3);
    }

    #[test]
    fn bfs_routes_around_obstacles() {
        // A vertical wall with a gap at the bottom.
        let mut snap = vec![0u32; 16];
        snap[1] = 9; // (1,0)
        snap[5] = 9; // (1,1)
        snap[9] = 9; // (1,2)
        let path = bfs_path(&snap, 4, 4, (0, 0), (2, 0)).unwrap();
        assert!(path.len() > 3, "must detour: {path:?}");
        assert!(!path.contains(&1));
    }

    #[test]
    fn bfs_none_when_walled_off() {
        let mut snap = vec![0u32; 16];
        for y in 0..4 {
            snap[y * 4 + 1] = 9;
        }
        assert_eq!(bfs_path(&snap, 4, 4, (0, 0), (3, 3)), None);
    }

    #[test]
    fn small_run_verifies_disjoint_paths() {
        let w = Labyrinth { width: 12, height: 12, routes: 10 };
        let out = run_workload(&w, &RunOptions::new(4, 6));
        assert!(out.total_commits() > 0);
    }
}
