//! # gstm-stamp — the STAMP benchmark suite, ported to the GSTM stack
//!
//! Rust reproductions of the seven STAMP applications the paper evaluates
//! (bayes excluded — it seg-faults in the paper's own runs, §VII):
//!
//! | app | transactional shape | contention |
//! |-----|---------------------|------------|
//! | [`Genome`] | set dedup + map publish/link, 3 barrier phases | medium |
//! | [`Intruder`] | shared capture queue + reassembly map | high, queue-bound |
//! | [`Kmeans`] | per-point accumulator updates into few cells | high |
//! | [`Labyrinth`] | long claim transactions over grid paths | bursty |
//! | [`Ssca2`] | one tiny write per edge, scattered | ~zero |
//! | [`Vacation`] | multi-table reservation DB, random clients | medium |
//! | [`Yada`] | cavity refinement with variable read/write sets | cascading |
//!
//! Inputs are seeded synthetic generators with [`InputSize`] presets
//! (training = medium, testing = small, as in the paper's artifact). Every
//! benchmark implements [`gstm_guide::Workload`] and carries a post-run
//! correctness check, so the suite doubles as an STM stress test.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod genome;
mod intruder;
mod kmeans;
mod labyrinth;
mod registry;
mod size;
mod ssca2;
mod vacation;
mod yada;

pub use genome::Genome;
pub use intruder::Intruder;
pub use kmeans::Kmeans;
pub use labyrinth::Labyrinth;
pub use registry::{all_benchmarks, benchmark, BENCHMARK_NAMES};
pub use size::InputSize;
pub use ssca2::Ssca2;
pub use vacation::Vacation;
pub use yada::Yada;
