//! Input-size presets.
//!
//! STAMP ships small/medium/large data sets per benchmark; the paper trains
//! models on **medium** and (per the artifact's default workflow) tests on
//! **small**. Our generators are seeded and synthetic, sized so a full
//! experiment sweep (7 benchmarks × 2 thread counts × 20 seeds × 2 policies)
//! completes in CI time on the simulated machine.

use std::fmt;

/// Workload size preset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum InputSize {
    /// Test size (the artifact's default for guided/default runs).
    #[default]
    Small,
    /// Training size (the artifact's default for model generation).
    Medium,
    /// Stress size (used by benches, not by the default experiment flow).
    Large,
}

impl InputSize {
    /// Scales a `(small, medium, large)` triple.
    pub fn pick(self, small: usize, medium: usize, large: usize) -> usize {
        match self {
            InputSize::Small => small,
            InputSize::Medium => medium,
            InputSize::Large => large,
        }
    }

    /// All presets, smallest first.
    pub fn all() -> [InputSize; 3] {
        [InputSize::Small, InputSize::Medium, InputSize::Large]
    }
}

impl fmt::Display for InputSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InputSize::Small => "small",
            InputSize::Medium => "medium",
            InputSize::Large => "large",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for InputSize {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "small" => Ok(InputSize::Small),
            "medium" => Ok(InputSize::Medium),
            "large" => Ok(InputSize::Large),
            other => Err(format!("unknown input size {other:?} (small|medium|large)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_size() {
        assert_eq!(InputSize::Small.pick(1, 2, 3), 1);
        assert_eq!(InputSize::Medium.pick(1, 2, 3), 2);
        assert_eq!(InputSize::Large.pick(1, 2, 3), 3);
    }

    #[test]
    fn parse_round_trip() {
        for s in InputSize::all() {
            assert_eq!(s.to_string().parse::<InputSize>().unwrap(), s);
        }
        assert!("huge".parse::<InputSize>().is_err());
    }
}
