//! kmeans — iterative K-means clustering (STAMP's highest-variance app:
//! the paper's intro cites an 8-second execution-time swing).
//!
//! Points are generated from seeded Gaussian-ish clusters. Each iteration,
//! every thread assigns its partition of points to the nearest centroid and
//! transactionally folds the point into that cluster's accumulator — the
//! accumulators are the contended state, exactly like STAMP's
//! `TMUpdateCluster`. Thread 0 recomputes centroids between iterations
//! inside a barrier pair.
//!
//! Transaction sites: `a` = accumulator update, `b` = centroid recompute.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gstm_core::rng::SmallRng;

use gstm_collections::TArray;
use gstm_core::TxId;
use gstm_guide::{WorkerEnv, Workload, WorkloadRun};

use crate::size::InputSize;

/// Dimensionality of the synthetic points.
const DIMS: usize = 4;

/// Per-cluster accumulator: running sum and count of assigned points.
#[derive(Clone, Debug, Default, PartialEq)]
struct ClusterAcc {
    count: u64,
    sum: [f64; DIMS],
}

/// The kmeans benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Kmeans {
    /// Number of points.
    pub points: usize,
    /// Number of clusters (= contended accumulator cells).
    pub clusters: usize,
    /// Fixed iteration count.
    pub iterations: usize,
}

impl Kmeans {
    /// Size presets: STAMP's kmeans is high-contention with few clusters.
    pub fn with_size(size: InputSize) -> Self {
        Kmeans {
            points: size.pick(256, 1024, 4096),
            clusters: size.pick(6, 8, 10),
            iterations: size.pick(3, 4, 5),
        }
    }
}

struct KmeansRun {
    params: Kmeans,
    data: Vec<[f64; DIMS]>,
    centers: TArray<[f64; DIMS]>,
    acc: TArray<ClusterAcc>,
    assigned: Arc<Vec<AtomicU64>>,
}

fn generate_points(n: usize, clusters: usize, seed: u64) -> Vec<[f64; DIMS]> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6b6d_6561_6e73);
    (0..n)
        .map(|i| {
            let c = i % clusters;
            let mut p = [0.0; DIMS];
            for (d, slot) in p.iter_mut().enumerate() {
                let center = (c * (d + 3)) as f64;
                // Sum of uniforms ≈ Gaussian noise around the cluster center.
                let noise: f64 = (0..4).map(|_| rng.gen_range(-0.5..0.5)).sum();
                *slot = center + noise;
            }
            p
        })
        .collect()
}

impl Workload for Kmeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn instantiate(&self, threads: usize, seed: u64) -> Box<dyn WorkloadRun> {
        let data = generate_points(self.points, self.clusters, seed);
        let centers = TArray::new(self.clusters, |c| data[c % data.len()]);
        let acc = TArray::new(self.clusters, |_| ClusterAcc::default());
        Box::new(KmeansRun {
            params: *self,
            data,
            centers,
            acc,
            assigned: Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect()),
        })
    }
}

fn nearest(point: &[f64; DIMS], centers: &[[f64; DIMS]]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, center) in centers.iter().enumerate() {
        let d: f64 = point.iter().zip(center).map(|(a, b)| (a - b) * (a - b)).sum();
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

impl WorkloadRun for KmeansRun {
    fn worker(&self, env: WorkerEnv) -> Box<dyn FnOnce() + Send> {
        let params = self.params;
        let centers = self.centers.clone();
        let acc = self.acc.clone();
        let me = env.thread.index();
        let chunk = self.data.len().div_ceil(env.threads);
        let mine: Vec<[f64; DIMS]> =
            self.data.iter().skip(me * chunk).take(chunk).copied().collect();
        let assigned = Arc::clone(&self.assigned);
        Box::new(move || {
            for _iter in 0..params.iterations {
                // Phase 1: assign points; centroids are stable within the
                // phase (barrier-separated), so snapshot them unlogged like
                // STAMP reads the center array outside transactions.
                let snapshot = centers.snapshot_unlogged();
                for p in &mine {
                    let c = nearest(p, &snapshot);
                    env.stm.run(env.thread, TxId::new(0), |tx| {
                        tx.work(DIMS as u64 * 2); // distance arithmetic
                        acc.update(tx, c, |mut a| {
                            a.count += 1;
                            for (s, x) in a.sum.iter_mut().zip(p) {
                                *s += x;
                            }
                            a
                        })
                    });
                    assigned[me].fetch_add(1, Ordering::Relaxed);
                }
                env.barrier.wait(env.thread);
                // Phase 2: thread 0 folds accumulators into new centroids.
                if me == 0 {
                    env.stm.run(env.thread, TxId::new(1), |tx| {
                        for c in 0..params.clusters {
                            let a = acc.read(tx, c)?;
                            if a.count > 0 {
                                let mut center = [0.0; DIMS];
                                for (slot, s) in center.iter_mut().zip(&a.sum) {
                                    *slot = s / a.count as f64;
                                }
                                centers.write(tx, c, center)?;
                            }
                            acc.write(tx, c, ClusterAcc::default())?;
                        }
                        Ok(())
                    });
                }
                env.barrier.wait(env.thread);
            }
        })
    }

    fn verify(&self) -> Result<(), String> {
        let total: u64 = self.assigned.iter().map(|a| a.load(Ordering::Relaxed)).sum();
        let expected = (self.data.len() * self.params.iterations) as u64;
        if total != expected {
            return Err(format!("assigned {total} points, expected {expected}"));
        }
        for (i, c) in self.centers.snapshot_unlogged().into_iter().enumerate() {
            if c.iter().any(|x| !x.is_finite()) {
                return Err(format!("centroid {i} is not finite: {c:?}"));
            }
        }
        // All accumulators must have been reset by the final recompute.
        if self.acc.snapshot_unlogged().iter().any(|a| a.count != 0) {
            return Err("accumulators not reset after final iteration".into());
        }
        Ok(())
    }

    fn stats(&self) -> Vec<(String, f64)> {
        vec![("clusters".into(), self.params.clusters as f64)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_guide::{run_workload, RunOptions};

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(generate_points(16, 4, 7), generate_points(16, 4, 7));
        assert_ne!(generate_points(16, 4, 7), generate_points(16, 4, 8));
    }

    #[test]
    fn nearest_picks_closest() {
        let centers = [[0.0; DIMS], [10.0; DIMS]];
        assert_eq!(nearest(&[1.0; DIMS], &centers), 0);
        assert_eq!(nearest(&[9.0; DIMS], &centers), 1);
    }

    #[test]
    fn small_run_verifies() {
        let k = Kmeans { points: 64, clusters: 4, iterations: 2 };
        let out = run_workload(&k, &RunOptions::new(4, 3));
        assert_eq!(out.total_commits() as usize, 64 * 2 + 2, "point txs + recompute txs");
    }

    #[test]
    fn contention_shows_up() {
        let k = Kmeans::with_size(InputSize::Small);
        let out = run_workload(&k, &RunOptions::new(4, 1));
        assert!(out.total_aborts() > 0, "kmeans accumulators must be contended");
    }

    #[test]
    fn presets_grow() {
        let s = Kmeans::with_size(InputSize::Small);
        let l = Kmeans::with_size(InputSize::Large);
        assert!(l.points > s.points);
    }
}
