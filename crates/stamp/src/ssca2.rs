//! ssca2 — scalable synthetic compact applications, kernel 1 (graph
//! construction).
//!
//! Threads partition a seeded edge list and insert edges into a shared
//! adjacency structure, one tiny transaction per edge. Writes scatter over
//! thousands of node cells, so conflicts are nearly nonexistent — this is
//! the benchmark whose model the paper's analyzer *rejects* (guidance
//! metric 72%/57%, "innately nearly zero aborts", Figure 8), and guiding it
//! anyway only adds overhead.
//!
//! Transaction site: `a` = edge insert.

use gstm_core::rng::SmallRng;

use gstm_collections::TArray;
use gstm_core::TxId;
use gstm_guide::{WorkerEnv, Workload, WorkloadRun};

use crate::size::InputSize;

/// The ssca2 benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Ssca2 {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
}

impl Ssca2 {
    /// Size presets.
    pub fn with_size(size: InputSize) -> Self {
        Ssca2 { nodes: size.pick(256, 1024, 4096), edges: size.pick(512, 2048, 8192) }
    }
}

struct Ssca2Run {
    params: Ssca2,
    edge_list: Vec<(u32, u32)>,
    adjacency: TArray<Vec<u32>>,
}

impl Workload for Ssca2 {
    fn name(&self) -> &'static str {
        "ssca2"
    }

    fn instantiate(&self, _threads: usize, seed: u64) -> Box<dyn WorkloadRun> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7373_6361);
        let edge_list: Vec<(u32, u32)> = (0..self.edges)
            .map(|_| (rng.gen_range(0..self.nodes as u32), rng.gen_range(0..self.nodes as u32)))
            .collect();
        Box::new(Ssca2Run {
            params: *self,
            edge_list,
            adjacency: TArray::new(self.nodes, |_| Vec::new()),
        })
    }
}

impl WorkloadRun for Ssca2Run {
    fn worker(&self, env: WorkerEnv) -> Box<dyn FnOnce() + Send> {
        let me = env.thread.index();
        let chunk = self.edge_list.len().div_ceil(env.threads);
        let mine: Vec<(u32, u32)> =
            self.edge_list.iter().skip(me * chunk).take(chunk).copied().collect();
        let adjacency = self.adjacency.clone();
        Box::new(move || {
            for (u, v) in mine {
                env.stm.run(env.thread, TxId::new(0), |tx| {
                    tx.work(1);
                    adjacency.update(tx, u as usize, |mut list| {
                        list.push(v);
                        list
                    })
                });
            }
        })
    }

    fn verify(&self) -> Result<(), String> {
        let total: usize = self.adjacency.snapshot_unlogged().iter().map(Vec::len).sum();
        if total != self.params.edges {
            return Err(format!("adjacency holds {total} edges, expected {}", self.params.edges));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_guide::{run_workload, RunOptions};

    #[test]
    fn all_edges_inserted() {
        let w = Ssca2 { nodes: 64, edges: 128 };
        let out = run_workload(&w, &RunOptions::new(4, 2));
        assert_eq!(out.total_commits(), 128);
    }

    #[test]
    fn abort_rate_is_tiny() {
        let w = Ssca2::with_size(InputSize::Small);
        let out = run_workload(&w, &RunOptions::new(8, 7));
        assert!(
            out.abort_ratio() < 0.05,
            "ssca2 must be nearly conflict-free, got ratio {}",
            out.abort_ratio()
        );
    }
}
