//! Benchmark registry: the seven STAMP applications by name.

use gstm_guide::Workload;

use crate::size::InputSize;
use crate::{Genome, Intruder, Kmeans, Labyrinth, Ssca2, Vacation, Yada};

/// Names of the STAMP applications this suite reproduces, in the paper's
/// table order. (`bayes` is excluded: it seg-faulted in the paper's own
/// experiments, §VII.)
pub const BENCHMARK_NAMES: [&str; 7] =
    ["genome", "intruder", "kmeans", "labyrinth", "ssca2", "vacation", "yada"];

/// Instantiates a benchmark by name at the given input size.
///
/// Returns `None` for unknown names; see [`BENCHMARK_NAMES`].
pub fn benchmark(name: &str, size: InputSize) -> Option<Box<dyn Workload>> {
    let w: Box<dyn Workload> = match name {
        "genome" => Box::new(Genome::with_size(size)),
        "intruder" => Box::new(Intruder::with_size(size)),
        "kmeans" => Box::new(Kmeans::with_size(size)),
        "labyrinth" => Box::new(Labyrinth::with_size(size)),
        "ssca2" => Box::new(Ssca2::with_size(size)),
        "vacation" => Box::new(Vacation::with_size(size)),
        "yada" => Box::new(Yada::with_size(size)),
        _ => return None,
    };
    Some(w)
}

/// The full suite at one input size, in table order.
pub fn all_benchmarks(size: InputSize) -> Vec<Box<dyn Workload>> {
    BENCHMARK_NAMES
        .iter()
        .map(|name| benchmark(name, size).expect("registry covers its own names"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_names() {
        for name in BENCHMARK_NAMES {
            let w = benchmark(name, InputSize::Small).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(w.name(), name);
        }
        assert!(benchmark("bayes", InputSize::Small).is_none());
    }

    #[test]
    fn all_benchmarks_in_order() {
        let names: Vec<&str> = all_benchmarks(InputSize::Small).iter().map(|w| w.name()).collect();
        assert_eq!(names, BENCHMARK_NAMES);
    }
}
