//! intruder — network intrusion detection: fragment capture, flow
//! reassembly, and signature matching.
//!
//! Follows STAMP's pipeline: threads repeatedly (1) dequeue a packet
//! fragment from the shared capture queue, (2) insert it into the shared
//! reassembly map, extracting the flow when its last fragment lands, and
//! (3) scan completed flows locally, recording attack flows in a shared
//! set. The capture queue is the hot spot, as in the original.
//!
//! Transaction sites: `a` = dequeue, `b` = reassemble, `c` = record attack.

use gstm_core::rng::{SliceRandom, SmallRng};

use gstm_collections::{THashMap, TQueue, TSet};
use gstm_core::TxId;
use gstm_guide::{WorkerEnv, Workload, WorkloadRun};

use crate::size::InputSize;

/// One packet fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Fragment {
    flow: u32,
    index: u8,
    total: u8,
    payload: Vec<u8>,
}

/// The attack byte pattern the detector scans for.
const SIGNATURE: &[u8] = b"ATTACK";

/// The intruder benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Intruder {
    /// Number of flows.
    pub flows: usize,
    /// Maximum fragments per flow (each flow draws 1..=max, so flow sizes —
    /// and hence per-thread work — vary, as in real traffic).
    pub frags_per_flow: usize,
    /// Fraction of flows carrying the attack signature, in percent.
    pub attack_pct: u32,
}

impl Intruder {
    /// Size presets.
    pub fn with_size(size: InputSize) -> Self {
        Intruder {
            flows: size.pick(48, 288, 768),
            frags_per_flow: size.pick(3, 4, 6),
            attack_pct: 10,
        }
    }
}

struct IntruderRun {
    params: Intruder,
    queue: TQueue<Fragment>,
    assembly: THashMap<u32, Vec<Option<Vec<u8>>>>,
    attacks: TSet<u32>,
    planted: Vec<u32>,
}

impl Workload for Intruder {
    fn name(&self) -> &'static str {
        "intruder"
    }

    fn instantiate(&self, _threads: usize, seed: u64) -> Box<dyn WorkloadRun> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x696e_7472);
        let mut fragments = Vec::new();
        let mut planted = Vec::new();
        for flow in 0..self.flows as u32 {
            let attack = rng.gen_range(0u32..100) < self.attack_pct;
            if attack {
                planted.push(flow);
            }
            // Variable-length flows: real traffic mixes short and long
            // connections, so reassembly and decode work differ per flow.
            let n_frags = rng.gen_range(1..=self.frags_per_flow.max(1));
            let mut payload: Vec<u8> =
                (0..n_frags * 8).map(|_| rng.gen_range(b'a'..=b'z')).collect();
            if attack && payload.len() > SIGNATURE.len() {
                let at = rng.gen_range(0..payload.len() - SIGNATURE.len());
                payload[at..at + SIGNATURE.len()].copy_from_slice(SIGNATURE);
            } else if attack {
                payload = SIGNATURE.to_vec();
            }
            for (i, chunk) in payload.chunks(8).enumerate() {
                fragments.push(Fragment {
                    flow,
                    index: i as u8,
                    total: payload.len().div_ceil(8) as u8,
                    payload: chunk.to_vec(),
                });
            }
        }
        fragments.shuffle(&mut rng);
        Box::new(IntruderRun {
            params: *self,
            queue: TQueue::seeded(fragments),
            assembly: THashMap::new(64),
            attacks: TSet::new(16),
            planted,
        })
    }
}

impl WorkloadRun for IntruderRun {
    fn worker(&self, env: WorkerEnv) -> Box<dyn FnOnce() + Send> {
        let queue = self.queue.clone();
        let assembly = self.assembly.clone();
        let attacks = self.attacks.clone();
        Box::new(move || loop {
            // Site a: capture.
            let frag = env.stm.run(env.thread, TxId::new(0), |tx| {
                tx.work(2);
                queue.dequeue(tx)
            });
            let Some(frag) = frag else { break };

            // Site b: reassembly; returns the full payload when complete.
            let total = frag.total as usize;
            let complete = env.stm.run(env.thread, TxId::new(1), |tx| {
                tx.work(3);
                let mut slots = assembly.get(tx, &frag.flow)?.unwrap_or_else(|| vec![None; total]);
                slots[frag.index as usize] = Some(frag.payload.clone());
                if slots.iter().all(Option::is_some) {
                    assembly.remove(tx, &frag.flow)?;
                    let payload: Vec<u8> =
                        slots.into_iter().flat_map(|s| s.expect("all present")).collect();
                    Ok(Some(payload))
                } else {
                    assembly.insert(tx, frag.flow, slots)?;
                    Ok(None)
                }
            });

            // Detector runs outside any transaction, but its (variable)
            // decode cost still occupies the thread: charge it through a
            // compute-only transactionless work step.
            if let Some(payload) = complete {
                env.stm.gate().pass(env.thread, payload.len() as u64);
                let is_attack = payload.windows(SIGNATURE.len()).any(|w| w == SIGNATURE);
                if is_attack {
                    // Site c: record the detection.
                    env.stm.run(env.thread, TxId::new(2), |tx| {
                        tx.work(1);
                        attacks.insert(tx, frag.flow)
                    });
                }
            }
        })
    }

    fn verify(&self) -> Result<(), String> {
        if self.queue.len_unlogged() != 0 {
            return Err("capture queue not drained".into());
        }
        if self.assembly.len_unlogged() != 0 {
            return Err("incomplete flows left in the reassembly map".into());
        }
        let mut detected = self.attacks.snapshot_unlogged();
        detected.sort_unstable();
        let mut expected = self.planted.clone();
        expected.sort_unstable();
        if detected != expected {
            return Err(format!("detected {} attacks, planted {}", detected.len(), expected.len()));
        }
        let _ = self.params;
        Ok(())
    }

    fn stats(&self) -> Vec<(String, f64)> {
        vec![("attacks".into(), self.planted.len() as f64)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_guide::{run_workload, RunOptions};

    #[test]
    fn all_flows_reassemble_and_attacks_detected() {
        let w = Intruder { flows: 24, frags_per_flow: 3, attack_pct: 25 };
        let out = run_workload(&w, &RunOptions::new(4, 9));
        // At least one dequeue per fragment (flows are 1..=3 fragments).
        assert!(out.total_commits() as usize >= 24);
    }

    #[test]
    fn queue_contention_generates_aborts() {
        let w = Intruder::with_size(InputSize::Small);
        let out = run_workload(&w, &RunOptions::new(8, 4));
        assert!(out.total_aborts() > 0, "shared capture queue must be contended");
    }

    #[test]
    fn zero_attack_runs_clean() {
        let w = Intruder { flows: 10, frags_per_flow: 2, attack_pct: 0 };
        run_workload(&w, &RunOptions::new(2, 3));
    }
}
