//! vacation — a client/server travel reservation system.
//!
//! An in-memory database of three resource tables (flights, rooms, cars)
//! and a customer table. Client threads issue a pseudo-random stream of
//! operations, as in STAMP: **make reservation** (query several resources,
//! pick the cheapest available, reserve it), **delete customer** (release
//! every reservation), and **update tables** (add capacity / change
//! prices). The paper singles vacation out for its randomized client
//! behaviour being hard to model at 16 threads (§VII).
//!
//! Transaction sites: `a` = make, `b` = delete customer, `c` = update.

use gstm_core::rng::SmallRng;

use gstm_collections::{TArray, THashMap};
use gstm_core::{Abort, TxId, Txn};
use gstm_guide::{WorkerEnv, Workload, WorkloadRun};

use crate::size::InputSize;

/// Resource kinds, one table per kind.
const KINDS: usize = 3;

/// One row of a resource table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Resource {
    total: u32,
    reserved: u32,
    price: u32,
}

/// One customer reservation: (kind, row index).
type Reservation = (u8, u32);

/// The vacation benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Vacation {
    /// Rows per resource table.
    pub rows: usize,
    /// Customers.
    pub customers: usize,
    /// Operations per thread.
    pub ops_per_thread: usize,
    /// Rows examined per reservation query.
    pub query_span: usize,
}

impl Vacation {
    /// Size presets.
    pub fn with_size(size: InputSize) -> Self {
        Vacation {
            rows: size.pick(16, 48, 192),
            customers: size.pick(32, 96, 384),
            ops_per_thread: size.pick(40, 120, 400),
            query_span: 4,
        }
    }
}

struct VacationRun {
    params: Vacation,
    tables: Vec<TArray<Resource>>,
    customers: THashMap<u32, Vec<Reservation>>,
}

impl Workload for Vacation {
    fn name(&self) -> &'static str {
        "vacation"
    }

    fn instantiate(&self, _threads: usize, seed: u64) -> Box<dyn WorkloadRun> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7661_6361);
        let tables = (0..KINDS)
            .map(|_| {
                TArray::new(self.rows, |_| Resource {
                    total: rng.gen_range(2..8),
                    reserved: 0,
                    price: rng.gen_range(100..1000),
                })
            })
            .collect();
        Box::new(VacationRun { params: *self, tables, customers: THashMap::new(64) })
    }
}

impl VacationRun {
    /// Reserve the cheapest available row among `span` candidates of one
    /// table for `customer`; no-op when none is available.
    fn make_reservation(
        &self,
        tx: &mut Txn<'_>,
        rng_vals: &[u32],
        kind: usize,
        customer: u32,
    ) -> Result<bool, Abort> {
        let table = &self.tables[kind];
        let mut best: Option<(u32, usize)> = None;
        for &r in rng_vals {
            let row = r as usize % self.params.rows;
            let res = table.read(tx, row)?;
            tx.work(2);
            if res.reserved < res.total {
                let better = best.map(|(p, _)| res.price < p).unwrap_or(true);
                if better {
                    best = Some((res.price, row));
                }
            }
        }
        let Some((_, row)) = best else { return Ok(false) };
        table.update(tx, row, |mut r| {
            r.reserved += 1;
            r
        })?;
        self.customers.upsert(tx, customer, Vec::new, |list| {
            list.push((kind as u8, row as u32));
        })?;
        Ok(true)
    }

    /// Delete a customer, releasing every reservation they hold.
    fn delete_customer(&self, tx: &mut Txn<'_>, customer: u32) -> Result<bool, Abort> {
        let Some(list) = self.customers.remove(tx, &customer)? else {
            return Ok(false);
        };
        for (kind, row) in list {
            self.tables[kind as usize].update(tx, row as usize, |mut r| {
                r.reserved = r.reserved.saturating_sub(1);
                r
            })?;
            tx.work(1);
        }
        Ok(true)
    }

    /// Update table rows: grow capacity and reprice.
    fn update_tables(&self, tx: &mut Txn<'_>, rng_vals: &[u32], kind: usize) -> Result<(), Abort> {
        for &r in rng_vals {
            let row = r as usize % self.params.rows;
            self.tables[kind].update(tx, row, |mut res| {
                res.total += 1;
                res.price = 100 + (res.price + 77) % 900;
                res
            })?;
            tx.work(1);
        }
        Ok(())
    }
}

impl WorkloadRun for VacationRun {
    fn worker(&self, env: WorkerEnv) -> Box<dyn FnOnce() + Send> {
        let params = self.params;
        // Clone the shared handles for the move into the closure; `self`'s
        // helper methods are reconstructed over the clones.
        let run =
            VacationRun { params, tables: self.tables.clone(), customers: self.customers.clone() };
        let me = env.thread.index();
        Box::new(move || {
            let mut rng = SmallRng::seed_from_u64(0x636c69 ^ (me as u64) << 32);
            for _ in 0..params.ops_per_thread {
                let dice = rng.gen_range(0..100);
                let kind = rng.gen_range(0..KINDS);
                let customer = rng.gen_range(0..params.customers as u32);
                let vals: Vec<u32> = (0..params.query_span).map(|_| rng.gen()).collect();
                if dice < 70 {
                    env.stm.run(env.thread, TxId::new(0), |tx| {
                        run.make_reservation(tx, &vals, kind, customer)
                    });
                } else if dice < 85 {
                    env.stm.run(env.thread, TxId::new(1), |tx| run.delete_customer(tx, customer));
                } else {
                    env.stm.run(env.thread, TxId::new(2), |tx| run.update_tables(tx, &vals, kind));
                }
            }
        })
    }

    fn verify(&self) -> Result<(), String> {
        // Full consistency: per-row reserved counts must equal the number of
        // live customer reservations pointing at the row, and never exceed
        // capacity.
        let mut expected = vec![vec![0u32; self.params.rows]; KINDS];
        for (_, list) in self.customers.snapshot_unlogged() {
            for (kind, row) in list {
                expected[kind as usize][row as usize] += 1;
            }
        }
        for (kind, table) in self.tables.iter().enumerate() {
            for (row, res) in table.snapshot_unlogged().into_iter().enumerate() {
                if res.reserved != expected[kind][row] {
                    return Err(format!(
                        "table {kind} row {row}: reserved {} but {} live reservations",
                        res.reserved, expected[kind][row]
                    ));
                }
                if res.reserved > res.total {
                    return Err(format!(
                        "table {kind} row {row}: overbooked {}/{}",
                        res.reserved, res.total
                    ));
                }
            }
        }
        Ok(())
    }

    fn stats(&self) -> Vec<(String, f64)> {
        vec![("customers_live".into(), self.customers.len_unlogged() as f64)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_guide::{run_workload, RunOptions};

    #[test]
    fn reservations_stay_consistent_under_contention() {
        let w = Vacation { rows: 8, customers: 12, ops_per_thread: 60, query_span: 3 };
        let out = run_workload(&w, &RunOptions::new(4, 11));
        assert_eq!(out.total_commits(), 4 * 60);
        assert!(out.total_aborts() > 0, "hot rows must conflict");
    }

    #[test]
    fn presets_scale() {
        let s = Vacation::with_size(InputSize::Small);
        let m = Vacation::with_size(InputSize::Medium);
        assert!(m.rows > s.rows && m.ops_per_thread > s.ops_per_thread);
    }

    #[test]
    fn single_thread_never_overbooks() {
        let w = Vacation { rows: 2, customers: 4, ops_per_thread: 100, query_span: 4 };
        run_workload(&w, &RunOptions::new(1, 3));
    }
}
