//! Every STAMP port must pass its own post-run verification under *every*
//! admission policy and contention manager — guidance must never break
//! correctness, only reshape timing.

use std::sync::Arc;

use gstm_guide::{run_workload, train, CmChoice, PolicyChoice, RunOptions};
use gstm_stamp::{benchmark, InputSize};

fn opts(policy: PolicyChoice, cm: CmChoice, seed: u64) -> RunOptions {
    let mut o = RunOptions::new(4, seed).with_policy(policy);
    o.cm = cm;
    o
}

#[test]
fn all_benchmarks_verify_under_contention_managers() {
    for name in gstm_stamp::BENCHMARK_NAMES {
        let w = benchmark(name, InputSize::Small).expect("known");
        for cm in [CmChoice::Polite, CmChoice::Karma, CmChoice::Greedy] {
            // run_workload panics on verification failure.
            let out = run_workload(w.as_ref(), &opts(PolicyChoice::Default, cm, 13));
            assert!(out.total_commits() > 0, "{name} under {cm:?}");
        }
    }
}

#[test]
fn all_benchmarks_verify_under_baseline_policies() {
    for name in gstm_stamp::BENCHMARK_NAMES {
        let w = benchmark(name, InputSize::Small).expect("known");
        for policy in [PolicyChoice::BoundedAborts { limit: 2 }, PolicyChoice::Deterministic] {
            let out = run_workload(w.as_ref(), &opts(policy.clone(), CmChoice::Aggressive, 17));
            assert!(out.total_commits() > 0, "{name} under {policy:?}");
        }
    }
}

#[test]
fn guided_runs_preserve_verification_on_every_benchmark() {
    for name in gstm_stamp::BENCHMARK_NAMES {
        let w = benchmark(name, InputSize::Small).expect("known");
        let trained = train(w.as_ref(), &RunOptions::new(4, 0), &[1, 2], 4.0);
        let out = run_workload(
            w.as_ref(),
            &opts(
                PolicyChoice::Guided { model: Arc::clone(&trained.model), k: 8 },
                CmChoice::Aggressive,
                19,
            ),
        );
        assert!(out.total_commits() > 0, "{name} guided");
    }
}
