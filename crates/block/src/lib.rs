//! Ordered optimistic block execution (Block-STM style).
//!
//! Given a **block** of `n` transactions with a fixed serial order
//! `0, 1, …, n-1`, the executor runs them speculatively in parallel over a
//! per-batch multi-version map and guarantees the outcome — every
//! transaction's output and the block's final write set — is **byte
//! identical to executing the same transactions sequentially in block
//! order**, at any worker-thread count. The serial order is fixed up
//! front, so the commit order is not a race outcome: this is the ordered
//! second half of the multi-version story (DESIGN.md §6h), and the reason
//! block mode collapses cross-seed execution variance.
//!
//! ## How it works
//!
//! * Every transaction's writes go into a [`MvMap`](mvmap::MvMap): a
//!   striped multi-version map keyed by `(key, writer index)`. A read by
//!   transaction `i` resolves to the newest write by a transaction `j < i`
//!   (or the caller's base state when no such write exists) and records
//!   the observed `(writer, incarnation)` version in `i`'s read set.
//! * An aborted transaction's writes become **estimates** (the
//!   PENDING/ESTIMATE publish protocol): a later reader that hits an
//!   estimate knows a conflicting earlier write is coming and suspends on
//!   the writer instead of speculating through it.
//! * A cooperative [scheduler](executor) drives execute/validate tasks:
//!   transactions are validated in order, and a failed validation aborts
//!   and re-executes **only** the invalidated transaction (plus, via
//!   cascading revalidation, anything that read from it) — each cascade is
//!   one *wave*, and the per-block [`BlockStats`] count waves,
//!   re-executions, validation failures and dependency stalls.
//!
//! The executor is deliberately engine-agnostic: it knows nothing about
//! TL2, lock tables or WALs. `gstm-serve` layers `ServeMode::Block` on
//! top, committing each block's results through the real engine in block
//! order (one commit sequence number per transaction) so the WAL stays
//! gap-free.

#![warn(missing_docs)]

pub mod executor;
pub mod mvmap;
pub mod pool;

pub use executor::{execute_block, execute_block_on, BlockOutcome, Blocked, TxnCtx};
pub use pool::BlockPool;

/// Knobs of one block execution, validated loudly at construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockConfig {
    /// Maximum transactions per block (callers chop longer sequences).
    pub block_size: usize,
    /// Stripes in the multi-version map — the `(txn, stripe)` granularity
    /// at which dependency stalls are tracked.
    pub parts: usize,
}

impl BlockConfig {
    /// Hard cap on `parts`: beyond this, per-stripe mutexes cost more than
    /// they save on any plausible block size.
    pub const MAX_PARTS: usize = 4096;

    /// Hard cap on `block_size`: a block is a latency batch, not a log.
    pub const MAX_BLOCK_SIZE: usize = 1 << 20;

    /// Builds a validated config.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message when either knob is zero or exceeds
    /// its cap — the loud-at-the-boundary alternative to a panic deep
    /// inside stripe sizing.
    pub fn new(block_size: usize, parts: usize) -> Result<Self, String> {
        if block_size == 0 || block_size > Self::MAX_BLOCK_SIZE {
            return Err(format!(
                "block_size must be in 1..={}, got {block_size}",
                Self::MAX_BLOCK_SIZE
            ));
        }
        if parts == 0 || parts > Self::MAX_PARTS {
            return Err(format!("parts must be in 1..={}, got {parts}", Self::MAX_PARTS));
        }
        Ok(BlockConfig { block_size, parts })
    }
}

/// Counters of one (or, merged, many) block executions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Transaction executions, including the first run of each.
    pub executions: u64,
    /// Executions beyond each transaction's first (aborted or suspended
    /// incarnations re-run).
    pub re_executions: u64,
    /// Validation passes performed.
    pub validations: u64,
    /// Validations that failed and aborted their transaction.
    pub validation_fails: u64,
    /// Reads that hit an estimate and suspended on the writer.
    pub dependency_stalls: u64,
    /// Revalidation cascades (1 + the number of times an abort or a
    /// re-execution forced later transactions back into validation).
    pub waves: u64,
}

impl BlockStats {
    /// Accumulates another block's counters into this one.
    pub fn merge(&mut self, other: &BlockStats) {
        self.executions += other.executions;
        self.re_executions += other.re_executions;
        self.validations += other.validations;
        self.validation_fails += other.validation_fails;
        self.dependency_stalls += other.dependency_stalls;
        self.waves += other.waves;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_rejects_degenerate_knobs_loudly() {
        assert!(BlockConfig::new(64, 8).is_ok());
        let err = BlockConfig::new(0, 8).unwrap_err();
        assert!(err.contains("block_size"), "message names the knob: {err}");
        let err = BlockConfig::new(64, 0).unwrap_err();
        assert!(err.contains("parts"), "message names the knob: {err}");
        assert!(BlockConfig::new(BlockConfig::MAX_BLOCK_SIZE + 1, 8).is_err());
        assert!(BlockConfig::new(64, BlockConfig::MAX_PARTS + 1).is_err());
    }

    #[test]
    fn stats_merge_is_fieldwise_sum() {
        let mut a = BlockStats {
            executions: 10,
            re_executions: 2,
            validations: 9,
            validation_fails: 1,
            dependency_stalls: 3,
            waves: 2,
        };
        a.merge(&BlockStats {
            executions: 5,
            re_executions: 1,
            validations: 4,
            validation_fails: 0,
            dependency_stalls: 1,
            waves: 1,
        });
        assert_eq!(a.executions, 15);
        assert_eq!(a.re_executions, 3);
        assert_eq!(a.validations, 13);
        assert_eq!(a.validation_fails, 1);
        assert_eq!(a.dependency_stalls, 4);
        assert_eq!(a.waves, 3);
    }
}
