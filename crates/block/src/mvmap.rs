//! The per-block multi-version map.
//!
//! One entry per `(key, writer index)`: transaction `i`'s write of `key`
//! is visible only to transactions ordered after `i`, and a read by `i`
//! resolves to the newest write by any `j < i` — the block-order analogue
//! of TL2's "newest version `<= ts`" snapshot rule, with the transaction
//! index playing the timestamp. Aborted writers leave **estimates**
//! behind (the PENDING/ESTIMATE publish protocol): a reader that resolves
//! to an estimate learns it would read a value that is about to change
//! and suspends on the writer instead of speculating through it.
//!
//! The map is striped into `parts` mutex-protected shards by key hash —
//! the `(txn, stripe)` granularity the executor tracks dependency stalls
//! at. Striping only spreads lock contention; resolution is exact
//! per key, so the stripe count never changes an outcome.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// What a transaction's slot for one key currently holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Version<V> {
    /// The writer aborted (or is re-executing): the value is coming but
    /// unknown. Readers must suspend on the writer.
    Estimate {
        /// Incarnation whose write was invalidated.
        incarnation: u32,
    },
    /// A committed speculative value from the given incarnation.
    Value {
        /// The written value.
        value: V,
        /// Writer incarnation that produced it (read-set versions compare
        /// this, so a re-executed writer invalidates old readers even
        /// when it happens to write the same bytes).
        incarnation: u32,
    },
}

/// What a read observed, recorded into the reader's read set and
/// re-checked at validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadVersion {
    /// No earlier-ordered transaction wrote the key: the caller's base
    /// state supplied the value.
    Base,
    /// The value came from `writer`'s speculative write.
    Txn {
        /// Block index of the writing transaction.
        writer: usize,
        /// Its incarnation at read time.
        incarnation: u32,
    },
}

/// Outcome of resolving a read for transaction `reader`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Resolution<V> {
    /// Newest earlier-ordered write (and the version to record).
    Speculative(V, ReadVersion),
    /// No earlier-ordered write: read the base state.
    FromBase,
    /// The newest earlier-ordered write is an estimate by this writer.
    Blocked(usize),
}

struct Stripe<K, V> {
    entries: Mutex<HashMap<K, BTreeMap<usize, Version<V>>>>,
}

/// The striped multi-version map. `K` must hash and order; `V` is cloned
/// out on every read (block values are small — serve stores a 16-byte
/// entry).
pub struct MvMap<K, V> {
    stripes: Vec<Stripe<K, V>>,
}

impl<K: Hash + Eq + Ord + Clone, V: Clone> MvMap<K, V> {
    /// An empty map with `parts` stripes.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero (callers validate via
    /// [`crate::BlockConfig::new`]).
    pub fn new(parts: usize) -> Self {
        assert!(parts > 0, "multi-version map needs at least one stripe");
        MvMap {
            stripes: (0..parts).map(|_| Stripe { entries: Mutex::new(HashMap::new()) }).collect(),
        }
    }

    /// The stripe a key hashes to. `DefaultHasher::new()` is keyed with
    /// zeros, so the mapping is stable across processes (outcomes never
    /// depend on it, but perf reproducibility is nice to have).
    pub fn stripe_of(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.stripes.len() as u64) as usize
    }

    fn lock(&self, key: &K) -> std::sync::MutexGuard<'_, HashMap<K, BTreeMap<usize, Version<V>>>> {
        self.stripes[self.stripe_of(key)].entries.lock().expect("mvmap stripe poisoned")
    }

    /// Resolves a read of `key` by transaction `reader`: the newest write
    /// by a transaction ordered strictly before it.
    pub fn resolve(&self, key: &K, reader: usize) -> Resolution<V> {
        let entries = self.lock(key);
        let Some(versions) = entries.get(key) else { return Resolution::FromBase };
        match versions.range(..reader).next_back() {
            None => Resolution::FromBase,
            Some((&writer, Version::Estimate { .. })) => Resolution::Blocked(writer),
            Some((&writer, Version::Value { value, incarnation })) => Resolution::Speculative(
                value.clone(),
                ReadVersion::Txn { writer, incarnation: *incarnation },
            ),
        }
    }

    /// Re-checks a recorded read: does `key` still resolve to `observed`
    /// for this reader? An estimate in the way fails conservatively.
    pub fn still_valid(&self, key: &K, reader: usize, observed: ReadVersion) -> bool {
        let entries = self.lock(key);
        let current = entries
            .get(key)
            .and_then(|versions| versions.range(..reader).next_back())
            .map(|(&writer, v)| (writer, v.clone()));
        match (current, observed) {
            (None, ReadVersion::Base) => true,
            (
                Some((w, Version::Value { incarnation, .. })),
                ReadVersion::Txn { writer, incarnation: seen },
            ) => w == writer && incarnation == seen,
            _ => false,
        }
    }

    /// Publishes transaction `writer`'s write set for its current
    /// incarnation, replacing whatever the previous incarnation left
    /// (values or estimates). Keys written by the previous incarnation
    /// but absent from `writes` are removed. Returns whether any key is
    /// **new** relative to `prev_keys` — the signal that later readers of
    /// previously-untouched paths must be revalidated.
    pub fn publish(
        &self,
        writer: usize,
        incarnation: u32,
        writes: &[(K, V)],
        prev_keys: &[K],
    ) -> bool {
        let mut wrote_new = false;
        for (key, value) in writes {
            if !prev_keys.contains(key) {
                wrote_new = true;
            }
            let mut entries = self.lock(key);
            entries
                .entry(key.clone())
                .or_default()
                .insert(writer, Version::Value { value: value.clone(), incarnation });
        }
        for key in prev_keys {
            if writes.iter().any(|(k, _)| k == key) {
                continue;
            }
            let mut entries = self.lock(key);
            if let Some(versions) = entries.get_mut(key) {
                versions.remove(&writer);
                if versions.is_empty() {
                    entries.remove(key);
                }
            }
        }
        wrote_new
    }

    /// Converts `writer`'s published writes into estimates — the abort
    /// path. Later readers resolving these keys suspend until the next
    /// incarnation republishes.
    pub fn mark_estimates(&self, writer: usize, incarnation: u32, keys: &[K]) {
        for key in keys {
            let mut entries = self.lock(key);
            if let Some(versions) = entries.get_mut(key) {
                if let Some(slot) = versions.get_mut(&writer) {
                    *slot = Version::Estimate { incarnation };
                }
            }
        }
    }

    /// Drains the map into the block's final write set: for every key, the
    /// highest-ordered writer's value, sorted by key. Call only after the
    /// scheduler has quiesced.
    ///
    /// # Panics
    ///
    /// Panics if any estimate survives — the scheduler's termination
    /// condition guarantees every transaction's last incarnation
    /// republished real values.
    pub fn into_final_writes(self) -> Vec<(K, V)> {
        let mut out: Vec<(K, V)> = Vec::new();
        for stripe in self.stripes {
            let entries = stripe.entries.into_inner().expect("mvmap stripe poisoned");
            for (key, versions) in entries {
                let (_, last) =
                    versions.into_iter().next_back().expect("non-empty by construction");
                match last {
                    Version::Value { value, .. } => out.push((key, value)),
                    Version::Estimate { .. } => {
                        panic!("estimate survived block completion: scheduler bug")
                    }
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_resolve_to_newest_earlier_writer_only() {
        let map: MvMap<u64, i64> = MvMap::new(4);
        map.publish(2, 0, &[(7, 20)], &[]);
        map.publish(5, 0, &[(7, 50)], &[]);
        // Reader 1 precedes both writers: base state.
        assert_eq!(map.resolve(&7, 1), Resolution::FromBase);
        // Reader 4 sees writer 2, not writer 5.
        assert_eq!(
            map.resolve(&7, 4),
            Resolution::Speculative(20, ReadVersion::Txn { writer: 2, incarnation: 0 })
        );
        // Reader 9 sees the newest earlier writer, 5.
        assert_eq!(
            map.resolve(&7, 9),
            Resolution::Speculative(50, ReadVersion::Txn { writer: 5, incarnation: 0 })
        );
        // A writer never reads its own slot: writer 5 resolves to writer 2.
        assert_eq!(
            map.resolve(&7, 5),
            Resolution::Speculative(20, ReadVersion::Txn { writer: 2, incarnation: 0 })
        );
    }

    #[test]
    fn estimates_block_later_readers() {
        let map: MvMap<u64, i64> = MvMap::new(2);
        map.publish(3, 0, &[(1, 30)], &[]);
        map.mark_estimates(3, 0, &[1]);
        assert_eq!(map.resolve(&1, 6), Resolution::Blocked(3));
        // Earlier readers are unaffected.
        assert_eq!(map.resolve(&1, 2), Resolution::FromBase);
        // Republication (next incarnation) unblocks.
        map.publish(3, 1, &[(1, 31)], &[1]);
        assert_eq!(
            map.resolve(&1, 6),
            Resolution::Speculative(31, ReadVersion::Txn { writer: 3, incarnation: 1 })
        );
    }

    #[test]
    fn validation_compares_writer_and_incarnation() {
        let map: MvMap<u64, i64> = MvMap::new(2);
        assert!(map.still_valid(&9, 4, ReadVersion::Base));
        map.publish(2, 0, &[(9, 1)], &[]);
        assert!(!map.still_valid(&9, 4, ReadVersion::Base), "new write invalidates base read");
        let seen = ReadVersion::Txn { writer: 2, incarnation: 0 };
        assert!(map.still_valid(&9, 4, seen));
        // Same key, same value bytes, new incarnation: still invalid.
        map.publish(2, 1, &[(9, 1)], &[9]);
        assert!(!map.still_valid(&9, 4, seen), "incarnation bump invalidates readers");
        map.mark_estimates(2, 1, &[9]);
        assert!(
            !map.still_valid(&9, 4, ReadVersion::Txn { writer: 2, incarnation: 1 }),
            "estimates fail validation conservatively"
        );
    }

    #[test]
    fn republication_diffs_write_sets() {
        let map: MvMap<u64, i64> = MvMap::new(2);
        assert!(map.publish(1, 0, &[(4, 40), (5, 50)], &[]), "first publish is all-new");
        // Re-publish dropping key 5 and keeping 4: key 5 vanishes for readers.
        assert!(!map.publish(1, 1, &[(4, 41)], &[4, 5]), "no new key");
        assert_eq!(map.resolve(&5, 3), Resolution::FromBase, "dropped key no longer resolves");
        assert!(map.publish(1, 2, &[(4, 42), (6, 60)], &[4]), "key 6 is a new path");
    }

    #[test]
    fn final_writes_take_the_highest_writer_per_key() {
        let map: MvMap<u64, i64> = MvMap::new(3);
        map.publish(0, 0, &[(2, 1), (8, 2)], &[]);
        map.publish(4, 0, &[(2, 9)], &[]);
        assert_eq!(map.into_final_writes(), vec![(2, 9), (8, 2)]);
    }

    #[test]
    #[should_panic(expected = "estimate survived")]
    fn surviving_estimates_are_a_loud_bug() {
        let map: MvMap<u64, i64> = MvMap::new(1);
        map.publish(0, 0, &[(1, 1)], &[]);
        map.mark_estimates(0, 0, &[1]);
        let _ = map.into_final_writes();
    }
}
