//! A persistent worker pool for running many blocks without re-spawning
//! OS threads.
//!
//! [`crate::execute_block`] spawns scoped workers per call, which is fine
//! for a one-off block but dominates wall-clock when a serve run executes
//! hundreds of small blocks (thread spawn costs tens of microseconds;
//! block bodies are often cheaper than that). A [`BlockPool`] spawns its
//! workers once; each [`BlockPool::run`] broadcasts one job closure to a
//! subset of them and blocks until every participant finishes — exactly
//! the join barrier the scoped version had, minus the spawns.
//!
//! The pool is deliberately dumb: it knows nothing about blocks. The job
//! *is* the executor's worker loop, closed over a per-block scheduler
//! (see [`crate::executor::execute_block_on`]).

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One job broadcast to the pool: every participating worker calls the
/// same closure once, concurrently.
pub type Job = Arc<dyn Fn() + Send + Sync>;

struct PoolState {
    /// Bumped by every [`BlockPool::run`]; workers track the last
    /// generation they saw so one notify can't run a job twice.
    generation: u64,
    job: Option<Job>,
    /// Workers the current generation still admits.
    admitted: usize,
    /// Workers currently inside the current job.
    running: usize,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    /// Workers park here between jobs.
    work: Condvar,
    /// The submitter parks here until `running` drains to zero.
    done: Condvar,
}

/// A fixed set of persistent worker threads executing one broadcast job
/// at a time. Dropping the pool shuts the workers down and joins them.
pub struct BlockPool {
    inner: Arc<PoolInner>,
    handles: Vec<JoinHandle<()>>,
}

impl BlockPool {
    /// Spawns a pool of `threads` persistent workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a pool needs at least one worker");
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                generation: 0,
                job: None,
                admitted: 0,
                running: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker(&inner))
            })
            .collect();
        BlockPool { inner, handles }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs `job` on `min(workers, threads())` pool workers concurrently
    /// and returns once all of them have finished. Calls are serialized by
    /// construction: the previous run's barrier completed before this one
    /// can start.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or a pool worker panicked.
    pub fn run(&self, workers: usize, job: Job) {
        assert!(workers > 0, "a job needs at least one worker");
        let n = workers.min(self.handles.len());
        let mut state = self.inner.state.lock().expect("pool poisoned");
        debug_assert_eq!(state.running, 0, "BlockPool::run is not reentrant");
        state.generation += 1;
        state.job = Some(job);
        state.admitted = n;
        state.running = n;
        self.inner.work.notify_all();
        while state.running > 0 {
            state = self.inner.done.wait(state).expect("pool poisoned");
        }
        state.job = None;
    }
}

impl Drop for BlockPool {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock().expect("pool poisoned");
            state.shutdown = true;
        }
        self.inner.work.notify_all();
        for h in self.handles.drain(..) {
            h.join().expect("pool worker panicked");
        }
    }
}

fn worker(inner: &PoolInner) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut state = inner.state.lock().expect("pool poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if state.generation > seen {
                    // New generation: join it if it still admits workers,
                    // otherwise skip it entirely (a job for fewer workers
                    // than the pool holds).
                    seen = state.generation;
                    if state.admitted > 0 {
                        state.admitted -= 1;
                        break Arc::clone(state.job.as_ref().expect("admitted job present"));
                    }
                }
                state = inner.work.wait(state).expect("pool poisoned");
            }
        };
        job();
        // Drop our clone before signalling completion: once `run` returns,
        // the submitter must hold the only references to whatever the job
        // closed over (the executor unwraps an Arc on that promise).
        drop(job);
        let mut state = inner.state.lock().expect("pool poisoned");
        state.running -= 1;
        if state.running == 0 {
            inner.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_admitted_worker_runs_the_job_exactly_once() {
        let pool = BlockPool::new(4);
        for round in 1..=10usize {
            let calls = Arc::new(AtomicUsize::new(0));
            let c = Arc::clone(&calls);
            pool.run(
                round.min(4),
                Arc::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }),
            );
            assert_eq!(calls.load(Ordering::SeqCst), round.min(4), "round {round}");
        }
    }

    #[test]
    fn oversubscribed_request_clamps_to_pool_size() {
        let pool = BlockPool::new(2);
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        pool.run(
            64,
            Arc::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn runs_are_barriers() {
        // If run() returned before all workers finished, the second job
        // could observe a partial counter from the first.
        let pool = BlockPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.run(
                4,
                Arc::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        assert_eq!(counter.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn drop_joins_idle_workers() {
        let pool = BlockPool::new(3);
        pool.run(3, Arc::new(|| {}));
        drop(pool); // must not hang
    }
}
