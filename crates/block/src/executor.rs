//! The cooperative block scheduler and executor.
//!
//! Workers pull tasks from two ordered queues — **execute** and
//! **validate** — always preferring the lowest transaction index across
//! both (the Block-STM discipline: progress on the earliest unsettled
//! transaction unblocks the most downstream work). A transaction's
//! lifecycle:
//!
//! ```text
//! Ready ──execute──▶ Executing ──publish──▶ Executed ──validation ok──▶ (settled)
//!   ▲                    │                      │
//!   │                    │ read hit an          │ validation failed:
//!   │                    ▼ estimate             ▼ writes → estimates
//!   └─resume── Blocked(on writer)         Ready (incarnation + 1)
//! ```
//!
//! Whenever a transaction aborts, or republishes along a new write path,
//! every later already-executed transaction is pushed back into the
//! validation queue (a *wave*). The block completes when both queues are
//! empty, no worker holds a task, and no transaction is suspended — at
//! which point every transaction's final incarnation has been validated
//! against the final multi-version state, which is exactly the state
//! sequential block-order execution would have produced. The schedule
//! (thread count, interleaving) can change *how many* waves and
//! re-executions it takes, never the outcome.

use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

use crate::mvmap::{MvMap, ReadVersion, Resolution};
use crate::pool::BlockPool;
use crate::{BlockConfig, BlockStats};

/// Returned by [`TxnCtx::read`] when the read resolved to an estimate:
/// the transaction must suspend until `on` republishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Blocked {
    /// Block index of the writer being waited on (always `< reader`).
    pub on: usize,
}

/// The read context handed to a transaction body: resolves reads against
/// the multi-version map (falling back to the caller's base state) and
/// records the observed versions for later validation.
pub struct TxnCtx<'a, K, V> {
    map: &'a MvMap<K, V>,
    base: &'a (dyn Fn(&K) -> Option<V> + Sync),
    reader: usize,
    reads: Vec<(K, ReadVersion)>,
}

impl<K: Hash + Eq + Ord + Clone, V: Clone> TxnCtx<'_, K, V> {
    /// Reads `key` as of this transaction's position in the block order.
    ///
    /// # Errors
    ///
    /// Returns [`Blocked`] when the newest earlier-ordered write of `key`
    /// is an estimate; propagate it out of the transaction body with `?`.
    pub fn read(&mut self, key: &K) -> Result<Option<V>, Blocked> {
        match self.map.resolve(key, self.reader) {
            Resolution::Speculative(v, observed) => {
                self.reads.push((key.clone(), observed));
                Ok(Some(v))
            }
            Resolution::FromBase => {
                self.reads.push((key.clone(), ReadVersion::Base));
                Ok((self.base)(key))
            }
            Resolution::Blocked(writer) => Err(Blocked { on: writer }),
        }
    }

    /// This transaction's index in the block order.
    pub fn index(&self) -> usize {
        self.reader
    }
}

/// The settled result of one block execution.
#[derive(Clone, Debug)]
pub struct BlockOutcome<K, V, O> {
    /// Per-transaction outputs, in block order — byte-identical to what
    /// sequential execution of the same order would have returned.
    pub outputs: Vec<O>,
    /// Per-transaction final write sets, in block order (the commit phase
    /// applies these one transaction at a time, in order).
    pub txn_writes: Vec<Vec<(K, V)>>,
    /// The block's net effect: for every written key, the highest-ordered
    /// writer's value, sorted by key.
    pub final_writes: Vec<(K, V)>,
    /// Scheduler counters for this block.
    pub stats: BlockStats,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Ready { incarnation: u32 },
    Executing { incarnation: u32 },
    Executed { incarnation: u32 },
    Blocked { incarnation: u32 },
}

enum Task {
    Execute { txn: usize, incarnation: u32 },
    Validate { txn: usize, incarnation: u32 },
}

struct TxnRecord<K, V, O> {
    /// Incarnation of the last *published* execution.
    incarnation: u32,
    reads: Vec<(K, ReadVersion)>,
    writes: Vec<(K, V)>,
    output: Option<O>,
}

struct SchedulerInner {
    status: Vec<Status>,
    exec_queue: BTreeSet<usize>,
    valid_queue: BTreeSet<usize>,
    /// writer index → transactions suspended until it republishes.
    deps: HashMap<usize, Vec<usize>>,
    /// Tasks currently held by workers outside the lock.
    active: usize,
    stats: BlockStats,
}

impl SchedulerInner {
    fn done(&self) -> bool {
        self.exec_queue.is_empty()
            && self.valid_queue.is_empty()
            && self.deps.is_empty()
            && self.active == 0
    }

    /// Lowest-index task across both queues; validation entries whose
    /// transaction is not currently `Executed` are stale (the transaction
    /// aborted or resumed since they were enqueued) and are dropped — a
    /// fresh validation is always re-enqueued when it finishes again.
    fn pick(&mut self) -> Option<Task> {
        let valid = loop {
            match self.valid_queue.first().copied() {
                Some(i) => match self.status[i] {
                    Status::Executed { incarnation } => break Some((i, incarnation)),
                    _ => {
                        self.valid_queue.remove(&i);
                    }
                },
                None => break None,
            }
        };
        let exec = self.exec_queue.first().copied();
        match (exec, valid) {
            (Some(e), Some((v, _))) if e <= v => self.claim_execute(e),
            (Some(_), Some((v, incarnation))) => {
                self.valid_queue.remove(&v);
                Some(Task::Validate { txn: v, incarnation })
            }
            (Some(e), None) => self.claim_execute(e),
            (None, Some((v, incarnation))) => {
                self.valid_queue.remove(&v);
                Some(Task::Validate { txn: v, incarnation })
            }
            (None, None) => None,
        }
    }

    fn claim_execute(&mut self, txn: usize) -> Option<Task> {
        self.exec_queue.remove(&txn);
        let Status::Ready { incarnation } = self.status[txn] else {
            unreachable!("exec queue holds only Ready transactions")
        };
        self.status[txn] = Status::Executing { incarnation };
        Some(Task::Execute { txn, incarnation })
    }

    /// Pushes every already-executed transaction after `txn` back into the
    /// validation queue. Returns whether anything was actually enqueued
    /// (the wave counter only counts cascades that created work).
    fn revalidate_after(&mut self, txn: usize) -> bool {
        let mut any = false;
        for k in (txn + 1)..self.status.len() {
            if matches!(self.status[k], Status::Executed { .. }) {
                any |= self.valid_queue.insert(k);
            }
        }
        any
    }
}

struct Scheduler {
    inner: Mutex<SchedulerInner>,
    wake: Condvar,
}

/// The per-block shared state a set of workers cooperates over: the
/// multi-version map, the transaction records, and the scheduler.
struct BlockCore<K, V, O> {
    map: MvMap<K, V>,
    records: Vec<Mutex<TxnRecord<K, V, O>>>,
    sched: Scheduler,
}

impl<K: Hash + Eq + Ord + Clone, V: Clone, O> BlockCore<K, V, O> {
    fn new(cfg: &BlockConfig, txns: usize) -> Self {
        BlockCore {
            map: MvMap::new(cfg.parts),
            records: (0..txns)
                .map(|_| {
                    Mutex::new(TxnRecord {
                        incarnation: 0,
                        reads: Vec::new(),
                        writes: Vec::new(),
                        output: None,
                    })
                })
                .collect(),
            sched: Scheduler {
                inner: Mutex::new(SchedulerInner {
                    status: vec![Status::Ready { incarnation: 0 }; txns],
                    exec_queue: (0..txns).collect(),
                    valid_queue: BTreeSet::new(),
                    deps: HashMap::new(),
                    active: 0,
                    stats: BlockStats { waves: 1, ..BlockStats::default() },
                }),
                wake: Condvar::new(),
            },
        }
    }

    /// Tears the settled core down into the block's outcome.
    fn collect(self) -> BlockOutcome<K, V, O> {
        let inner = self.sched.inner.into_inner().expect("scheduler poisoned");
        debug_assert!(inner.status.iter().all(|s| matches!(s, Status::Executed { .. })));
        let stats = inner.stats;
        let mut outputs = Vec::with_capacity(self.records.len());
        let mut txn_writes = Vec::with_capacity(self.records.len());
        for record in self.records {
            let r = record.into_inner().expect("record poisoned");
            outputs.push(r.output.expect("settled transaction has an output"));
            txn_writes.push(r.writes);
        }
        let final_writes = self.map.into_final_writes();
        BlockOutcome { outputs, txn_writes, final_writes, stats }
    }
}

fn empty_outcome<K, V, O>() -> BlockOutcome<K, V, O> {
    BlockOutcome {
        outputs: Vec::new(),
        txn_writes: Vec::new(),
        final_writes: Vec::new(),
        stats: BlockStats::default(),
    }
}

/// Executes a block of `txns` transactions over `threads` workers.
///
/// `base` supplies the pre-block committed state; `run` is the
/// transaction body — called with the transaction's block index and a
/// [`TxnCtx`], it returns the transaction's write set and output, or
/// propagates [`Blocked`] from [`TxnCtx::read`]. `run` may be called
/// multiple times per transaction (re-executions) and must be a pure
/// function of its reads.
///
/// # Panics
///
/// Panics if `txns` exceeds `cfg.block_size`, if `threads` is zero, or if
/// a worker panics.
pub fn execute_block<K, V, O, B, F>(
    cfg: &BlockConfig,
    txns: usize,
    threads: usize,
    base: B,
    run: F,
) -> BlockOutcome<K, V, O>
where
    K: Hash + Eq + Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    O: Send,
    B: Fn(&K) -> Option<V> + Sync,
    F: Fn(usize, &mut TxnCtx<'_, K, V>) -> Result<(Vec<(K, V)>, O), Blocked> + Sync,
{
    assert!(txns <= cfg.block_size, "{txns} transactions exceed block_size {}", cfg.block_size);
    assert!(threads > 0, "need at least one block worker");
    if txns == 0 {
        return empty_outcome();
    }
    let core: BlockCore<K, V, O> = BlockCore::new(cfg, txns);

    let workers = threads.min(txns);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| worker_loop(&core.sched, &core.map, &core.records, &base, &run))
            })
            .collect();
        for h in handles {
            h.join().expect("block worker panicked");
        }
    });

    core.collect()
}

/// Executes a block on a persistent [`BlockPool`] instead of spawning
/// scoped workers — same semantics and outcome as [`execute_block`], but
/// amortizing thread spawns across the many blocks of a batch run (spawn
/// latency dwarfs a small block's entire execution).
///
/// Because pool workers outlive the call, `base` and `run` must own what
/// they capture (`'static`): share the pre-block state behind an
/// `Arc<RwLock<..>>` and the block's transactions behind an `Arc<[..]>`.
///
/// # Panics
///
/// Panics if `txns` exceeds `cfg.block_size`, or if a worker panics.
pub fn execute_block_on<K, V, O, B, F>(
    pool: &BlockPool,
    cfg: &BlockConfig,
    txns: usize,
    base: B,
    run: F,
) -> BlockOutcome<K, V, O>
where
    K: Hash + Eq + Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    O: Send + 'static,
    B: Fn(&K) -> Option<V> + Send + Sync + 'static,
    F: Fn(usize, &mut TxnCtx<'_, K, V>) -> Result<(Vec<(K, V)>, O), Blocked>
        + Send
        + Sync
        + 'static,
{
    assert!(txns <= cfg.block_size, "{txns} transactions exceed block_size {}", cfg.block_size);
    if txns == 0 {
        return empty_outcome();
    }
    let core: Arc<BlockCore<K, V, O>> = Arc::new(BlockCore::new(cfg, txns));
    let job_core = Arc::clone(&core);
    pool.run(
        txns,
        Arc::new(move || {
            worker_loop(&job_core.sched, &job_core.map, &job_core.records, &base, &run)
        }),
    );
    Arc::try_unwrap(core).unwrap_or_else(|_| unreachable!("pool.run joined every worker")).collect()
}

fn worker_loop<K, V, O, B, F>(
    sched: &Scheduler,
    map: &MvMap<K, V>,
    records: &[Mutex<TxnRecord<K, V, O>>],
    base: &B,
    run: &F,
) where
    K: Hash + Eq + Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    O: Send,
    B: Fn(&K) -> Option<V> + Sync,
    F: Fn(usize, &mut TxnCtx<'_, K, V>) -> Result<(Vec<(K, V)>, O), Blocked> + Sync,
{
    loop {
        let task = {
            let mut inner = sched.inner.lock().expect("scheduler poisoned");
            loop {
                if inner.done() {
                    // Everyone else may be parked on the condvar with no
                    // task left to hand out; wake them so they observe done.
                    sched.wake.notify_all();
                    return;
                }
                if let Some(task) = inner.pick() {
                    inner.active += 1;
                    break task;
                }
                inner = sched.wake.wait(inner).expect("scheduler poisoned");
            }
        };
        match task {
            Task::Execute { txn, incarnation } => {
                let mut ctx = TxnCtx { map, base, reader: txn, reads: Vec::new() };
                let result = run(txn, &mut ctx);
                let mut inner = sched.inner.lock().expect("scheduler poisoned");
                inner.active -= 1;
                match result {
                    Ok((writes, output)) => {
                        // Publish outside the scheduler lock would be
                        // nicer, but publication must be atomic with the
                        // Executed transition or a concurrent validator
                        // could observe the new status over the old
                        // versions. Blocks are small; the hold is short.
                        let mut record = records[txn].lock().expect("record poisoned");
                        let prev_keys: Vec<K> =
                            record.writes.iter().map(|(k, _)| k.clone()).collect();
                        let wrote_new = map.publish(txn, incarnation, &writes, &prev_keys);
                        record.incarnation = incarnation;
                        record.reads = ctx.reads;
                        record.writes = writes;
                        record.output = Some(output);
                        drop(record);
                        inner.status[txn] = Status::Executed { incarnation };
                        inner.stats.executions += 1;
                        if incarnation > 0 {
                            inner.stats.re_executions += 1;
                        }
                        // Resume transactions suspended on us.
                        if let Some(waiters) = inner.deps.remove(&txn) {
                            for w in waiters {
                                let Status::Blocked { incarnation } = inner.status[w] else {
                                    unreachable!("deps hold only Blocked transactions")
                                };
                                inner.status[w] = Status::Ready { incarnation };
                                inner.exec_queue.insert(w);
                            }
                        }
                        inner.valid_queue.insert(txn);
                        // A new write path (or any republication) can
                        // invalidate later reads that already validated.
                        if (wrote_new || incarnation > 0) && inner.revalidate_after(txn) {
                            inner.stats.waves += 1;
                        }
                    }
                    Err(Blocked { on }) => {
                        inner.stats.dependency_stalls += 1;
                        if matches!(inner.status[on], Status::Executed { .. }) {
                            // The writer republished while we were
                            // resolving: retry immediately.
                            inner.status[txn] = Status::Ready { incarnation };
                            inner.exec_queue.insert(txn);
                        } else {
                            inner.status[txn] = Status::Blocked { incarnation };
                            inner.deps.entry(on).or_default().push(txn);
                        }
                    }
                }
                sched.wake.notify_all();
            }
            Task::Validate { txn, incarnation } => {
                let ok = {
                    let record = records[txn].lock().expect("record poisoned");
                    // A stale task for a republished incarnation validates
                    // nothing; the fresh publication enqueued its own.
                    record.incarnation == incarnation
                        && record.reads.iter().all(|(k, seen)| map.still_valid(k, txn, *seen))
                };
                let mut inner = sched.inner.lock().expect("scheduler poisoned");
                inner.active -= 1;
                inner.stats.validations += 1;
                if !ok && inner.status[txn] == (Status::Executed { incarnation }) {
                    // Abort: our writes become estimates, we re-execute,
                    // and every later settled transaction revalidates.
                    inner.stats.validation_fails += 1;
                    inner.stats.waves += 1;
                    let keys: Vec<K> = {
                        let record = records[txn].lock().expect("record poisoned");
                        record.writes.iter().map(|(k, _)| k.clone()).collect()
                    };
                    map.mark_estimates(txn, incarnation, &keys);
                    inner.status[txn] = Status::Ready { incarnation: incarnation + 1 };
                    inner.exec_queue.insert(txn);
                    inner.revalidate_after(txn);
                }
                sched.wake.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn cfg() -> BlockConfig {
        BlockConfig::new(512, 8).expect("valid config")
    }

    /// A tiny counter workload: txn i reads key (i % keys), adds i+1, and
    /// outputs what it read — heavy same-key conflicts by construction.
    fn run_counters(
        txns: usize,
        keys: u64,
        threads: usize,
    ) -> (Vec<i64>, Vec<(u64, i64)>, BlockStats) {
        let out = execute_block(
            &cfg(),
            txns,
            threads,
            |_k: &u64| Some(0i64),
            |i, ctx| {
                let key = i as u64 % keys;
                let v = ctx.read(&key)?.unwrap_or(0);
                Ok((vec![(key, v + i as i64 + 1)], v))
            },
        );
        (out.outputs, out.final_writes, out.stats)
    }

    fn sequential_counters(txns: usize, keys: u64) -> (Vec<i64>, Vec<(u64, i64)>) {
        let mut state = std::collections::BTreeMap::new();
        let mut outputs = Vec::new();
        for i in 0..txns {
            let key = i as u64 % keys;
            let v = *state.get(&key).unwrap_or(&0);
            outputs.push(v);
            state.insert(key, v + i as i64 + 1);
        }
        (outputs, state.into_iter().collect())
    }

    #[test]
    fn empty_block_is_a_noop() {
        let out = execute_block(&cfg(), 0, 4, |_: &u64| None::<i64>, |_, _| Ok((vec![], 0u8)));
        assert!(out.outputs.is_empty() && out.final_writes.is_empty());
        assert_eq!(out.stats, BlockStats::default());
    }

    #[test]
    fn single_thread_matches_sequential_exactly() {
        let (outputs, finals, stats) = run_counters(40, 4, 1);
        let (want_out, want_fin) = sequential_counters(40, 4);
        assert_eq!(outputs, want_out);
        assert_eq!(finals, want_fin);
        assert_eq!(stats.executions, 40 + stats.re_executions);
        assert!(stats.waves >= 1);
    }

    #[test]
    fn output_is_schedule_invariant_across_thread_counts() {
        let (want_out, want_fin) = sequential_counters(96, 3);
        for threads in [1, 2, 4, 8] {
            let (outputs, finals, _) = run_counters(96, 3, threads);
            assert_eq!(outputs, want_out, "outputs diverged at {threads} threads");
            assert_eq!(finals, want_fin, "final writes diverged at {threads} threads");
        }
    }

    #[test]
    fn disjoint_transactions_settle_without_conflicts() {
        let out = execute_block(
            &cfg(),
            32,
            4,
            |_: &u64| Some(100i64),
            |i, ctx| {
                let key = i as u64; // every txn owns its key
                let v = ctx.read(&key)?.unwrap();
                Ok((vec![(key, v + 1)], v))
            },
        );
        assert!(out.outputs.iter().all(|&v| v == 100));
        assert_eq!(out.stats.re_executions, 0, "no conflicts, no re-executions");
        assert_eq!(out.stats.validation_fails, 0);
        assert_eq!(out.stats.waves, 1, "one validation wave suffices");
        assert_eq!(out.final_writes.len(), 32);
    }

    #[test]
    fn read_only_transactions_observe_earlier_writes() {
        // txn 0 writes key 0; txns 1..8 only read it. Readers must see
        // txn 0's write (sequential semantics), not the base value.
        let out = execute_block(
            &cfg(),
            8,
            4,
            |_: &u64| Some(7i64),
            |i, ctx| {
                if i == 0 {
                    Ok((vec![(0u64, 42i64)], -1))
                } else {
                    Ok((vec![], ctx.read(&0)?.unwrap()))
                }
            },
        );
        assert_eq!(out.outputs[0], -1);
        assert!(out.outputs[1..].iter().all(|&v| v == 42), "readers see txn 0's write");
        assert_eq!(out.final_writes, vec![(0, 42)]);
        assert_eq!(out.txn_writes[0], vec![(0, 42)]);
        assert!(out.txn_writes[1..].iter().all(|w| w.is_empty()));
    }

    #[test]
    fn hot_key_chain_counts_reexecutions_and_stalls() {
        // Every txn reads-modifies-writes the same key: worst case. Under
        // >1 thread, later txns must be invalidated or stalled at least
        // once; the outcome still matches sequential execution.
        let (outputs, finals, stats) = run_counters(64, 1, 4);
        let (want_out, want_fin) = sequential_counters(64, 1);
        assert_eq!(outputs, want_out);
        assert_eq!(finals, want_fin);
        assert_eq!(stats.executions, 64 + stats.re_executions);
        assert!(stats.validations >= 64, "every txn validates at least once");
    }

    /// The pooled path must be outcome-equivalent to the scoped path: same
    /// pool reused across many contended blocks, each matching sequential
    /// execution.
    #[test]
    fn pooled_blocks_match_sequential_across_reuse() {
        let pool = BlockPool::new(4);
        for round in 0..8u64 {
            let txns = 48;
            let keys = 1 + round % 3;
            let out = execute_block_on(
                &pool,
                &cfg(),
                txns,
                move |_k: &u64| Some(0i64),
                move |i, ctx| {
                    let key = i as u64 % keys;
                    let v = ctx.read(&key)?.unwrap_or(0);
                    Ok((vec![(key, v + i as i64 + 1)], v))
                },
            );
            let (want_out, want_fin) = sequential_counters(txns, keys);
            assert_eq!(out.outputs, want_out, "round {round}");
            assert_eq!(out.final_writes, want_fin, "round {round}");
            assert_eq!(out.stats.executions, txns as u64 + out.stats.re_executions);
        }
    }

    #[test]
    fn pooled_empty_block_is_a_noop() {
        let pool = BlockPool::new(2);
        let out: BlockOutcome<u64, i64, u8> =
            execute_block_on(&pool, &cfg(), 0, |_: &u64| None, |_, _| Ok((vec![], 0)));
        assert!(out.outputs.is_empty());
        assert_eq!(out.stats, BlockStats::default());
    }

    #[test]
    fn base_state_fallback_distinguishes_missing_keys() {
        let out = execute_block(
            &cfg(),
            2,
            2,
            |k: &u64| (*k < 5).then_some(1i64),
            |i, ctx| {
                let present = ctx.read(&(i as u64))?;
                let missing = ctx.read(&99)?;
                Ok((vec![], (present, missing)))
            },
        );
        assert!(out.outputs.iter().all(|&(p, m)| p == Some(1) && m.is_none()));
    }

    #[test]
    fn bodies_may_rerun_but_settle_once() {
        // Count how often txn 1's body runs: re-executions are allowed,
        // but its output must be recorded exactly once and reflect the
        // final read.
        let runs = AtomicU64::new(0);
        let out = execute_block(
            &cfg(),
            2,
            2,
            |_: &u64| Some(0i64),
            |i, ctx| {
                if i == 1 {
                    runs.fetch_add(1, Ordering::Relaxed);
                }
                let v = ctx.read(&0)?.unwrap();
                Ok((vec![(0u64, v + 1)], v))
            },
        );
        assert_eq!(out.outputs, vec![0, 1]);
        assert!(runs.load(Ordering::Relaxed) >= 1);
        assert_eq!(out.final_writes, vec![(0, 2)]);
    }
}
