//! # gstm-synquake — a reconstruction of SynQuake on the GSTM stack
//!
//! SynQuake (Lupei et al., PPoPP '10) is a 2-D re-implementation of the
//! Quake 3 multiplayer game server over the LibTM software transactional
//! memory; the paper uses it as its real-world case study (§VIII). Neither
//! SynQuake nor LibTM is publicly distributable (the paper's artifact
//! appendix says so explicitly), so this crate rebuilds the system from the
//! paper's description:
//!
//! * a 1024×1024 map with a cell-granular spatial index and
//!   object-granularity transactions ([`World`]);
//! * 1000 players attracted by quest hotspots ([`Quest`]) — training on
//!   `4worst_case` + `4moving`, testing on `4quadrants` +
//!   `4center_spread6`;
//! * a frame-barriered server loop whose per-frame processing times are the
//!   series Figures 11–12 analyze ([`SynQuake`]);
//! * LibTM's fully-optimistic detection with abort-readers resolution
//!   (`StmConfig::libtm`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod game;
mod quest;
mod world;

pub use game::{stat, SynQuake};
pub use quest::{Quest, MAP_SIZE};
pub use world::{cell_of, Player, World, CELLS_PER_SIDE, CELL_SIZE};
