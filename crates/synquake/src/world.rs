//! The game world: players and the spatial grid.
//!
//! SynQuake's key design point (§VIII) is **object-granularity** conflict
//! detection: every player is its own transactional object and the spatial
//! index is cell-granular, "eliminating false sharing and reducing
//! contention time". We mirror that: one [`TVar`] per player, one grid-cell
//! list per region.

use gstm_collections::TArray;
use gstm_core::{Abort, TVar, Txn};

use crate::quest::MAP_SIZE;

/// Side length of one spatial grid cell, in map units.
pub const CELL_SIZE: i32 = 64;

/// Cells per map side.
pub const CELLS_PER_SIDE: i32 = MAP_SIZE / CELL_SIZE;

/// One player's state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Player {
    /// Map position.
    pub x: i32,
    /// Map position.
    pub y: i32,
    /// Hit points; respawns at full health when it reaches zero.
    pub health: i32,
    /// Frags scored.
    pub score: u32,
}

impl Player {
    /// Full health at (re)spawn.
    pub const FULL_HEALTH: i32 = 100;

    /// Spawns a player at a position.
    pub fn at(x: i32, y: i32) -> Self {
        Player { x, y, health: Self::FULL_HEALTH, score: 0 }
    }

    /// The grid cell this player occupies.
    pub fn cell(&self) -> usize {
        cell_of(self.x, self.y)
    }
}

/// Maps a position to its grid-cell index.
pub fn cell_of(x: i32, y: i32) -> usize {
    let cx = (x.clamp(0, MAP_SIZE - 1)) / CELL_SIZE;
    let cy = (y.clamp(0, MAP_SIZE - 1)) / CELL_SIZE;
    (cy * CELLS_PER_SIDE + cx) as usize
}

/// The shared world state.
#[derive(Clone, Debug)]
pub struct World {
    players: Vec<TVar<Player>>,
    cells: TArray<Vec<u16>>,
    /// Health-pack stock per grid cell.
    items: TArray<u32>,
}

impl World {
    /// Creates a world with players at the given spawn positions, and the
    /// spatial grid consistent with them. No items are stocked; see
    /// [`World::with_items`].
    pub fn new(spawns: &[(i32, i32)]) -> Self {
        World::with_items(spawns, 0)
    }

    /// Creates a world stocking every grid cell with `items_per_cell`
    /// health packs.
    pub fn with_items(spawns: &[(i32, i32)], items_per_cell: u32) -> Self {
        assert!(spawns.len() < u16::MAX as usize, "player ids are u16");
        let players: Vec<TVar<Player>> =
            spawns.iter().map(|&(x, y)| TVar::new(Player::at(x, y))).collect();
        let mut lists: Vec<Vec<u16>> = vec![Vec::new(); (CELLS_PER_SIDE * CELLS_PER_SIDE) as usize];
        for (id, &(x, y)) in spawns.iter().enumerate() {
            lists[cell_of(x, y)].push(id as u16);
        }
        let n_cells = lists.len();
        let cells = TArray::new(n_cells, |i| lists[i].clone());
        World { players, cells, items: TArray::new(n_cells, |_| items_per_cell) }
    }

    /// Number of players.
    pub fn player_count(&self) -> usize {
        self.players.len()
    }

    /// Transactionally reads a player.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn read_player(&self, tx: &mut Txn<'_>, id: u16) -> Result<Player, Abort> {
        tx.read(&self.players[id as usize])
    }

    /// Transactionally moves a player to a new position, keeping the grid
    /// index consistent (removing from the old cell, adding to the new).
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn move_player(&self, tx: &mut Txn<'_>, id: u16, x: i32, y: i32) -> Result<(), Abort> {
        let var = &self.players[id as usize];
        let mut p = tx.read(var)?;
        let old_cell = p.cell();
        p.x = x.clamp(0, MAP_SIZE - 1);
        p.y = y.clamp(0, MAP_SIZE - 1);
        let new_cell = p.cell();
        tx.write(var, p)?;
        if old_cell != new_cell {
            self.cells.update(tx, old_cell, |mut l| {
                l.retain(|&e| e != id);
                l
            })?;
            self.cells.update(tx, new_cell, |mut l| {
                l.push(id);
                l
            })?;
        }
        Ok(())
    }

    /// Transactionally applies damage; returns `Some(true)` if the victim
    /// died (and respawned in place at full health, crediting the attacker
    /// is the caller's job).
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn damage(&self, tx: &mut Txn<'_>, victim: u16, amount: i32) -> Result<bool, Abort> {
        let var = &self.players[victim as usize];
        let mut p = tx.read(var)?;
        p.health -= amount;
        let died = p.health <= 0;
        if died {
            p.health = Player::FULL_HEALTH;
        }
        tx.write(var, p)?;
        Ok(died)
    }

    /// Transactionally credits a frag to `attacker`.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn credit(&self, tx: &mut Txn<'_>, attacker: u16) -> Result<(), Abort> {
        let var = &self.players[attacker as usize];
        let mut p = tx.read(var)?;
        p.score += 1;
        tx.write(var, p)
    }

    /// Transactionally lists the other players in `id`'s cell.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn cohabitants(&self, tx: &mut Txn<'_>, id: u16) -> Result<Vec<u16>, Abort> {
        let p = self.read_player(tx, id)?;
        let mut list = self.cells.read(tx, p.cell())?;
        list.retain(|&e| e != id);
        Ok(list)
    }

    /// Full-world consistency check (teardown only): every player appears
    /// in exactly the cell its position maps to.
    ///
    /// # Errors
    ///
    /// Returns a description of the inconsistency.
    pub fn check_consistency(&self) -> Result<(), String> {
        let lists = self.cells.snapshot_unlogged();
        let mut seen = vec![0u32; self.players.len()];
        for (cell, list) in lists.iter().enumerate() {
            for &id in list {
                let p = *self.players[id as usize].load_unlogged();
                if p.cell() != cell {
                    return Err(format!(
                        "player {id} at ({}, {}) indexed in cell {cell}, belongs in {}",
                        p.x,
                        p.y,
                        p.cell()
                    ));
                }
                seen[id as usize] += 1;
            }
        }
        for (id, &count) in seen.iter().enumerate() {
            if count != 1 {
                return Err(format!("player {id} appears in {count} cells"));
            }
        }
        Ok(())
    }

    /// Total score across players (teardown only).
    pub fn total_score_unlogged(&self) -> u64 {
        self.players.iter().map(|p| p.load_unlogged().score as u64).sum()
    }

    /// Transactionally picks up a health pack from `id`'s cell, healing the
    /// player (capped at full health). Returns whether a pack was consumed.
    ///
    /// # Errors
    ///
    /// Propagates STM conflicts.
    pub fn try_pickup(&self, tx: &mut Txn<'_>, id: u16) -> Result<bool, Abort> {
        let var = &self.players[id as usize];
        let mut p = tx.read(var)?;
        let cell = p.cell();
        let stock = self.items.read(tx, cell)?;
        if stock == 0 {
            return Ok(false);
        }
        self.items.write(tx, cell, stock - 1)?;
        p.health = (p.health + 25).min(Player::FULL_HEALTH);
        tx.write(var, p)?;
        Ok(true)
    }

    /// Remaining health packs across the map (teardown only).
    pub fn items_remaining_unlogged(&self) -> u64 {
        self.items.snapshot_unlogged().iter().map(|&c| c as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_core::{Stm, StmConfig, ThreadId, TxId};

    fn with_tx<R>(_world: &World, f: impl FnMut(&mut Txn<'_>) -> Result<R, Abort>) -> R {
        let stm = Stm::new(StmConfig::new(1));
        stm.run(ThreadId::new(0), TxId::new(0), f)
    }

    #[test]
    fn cell_mapping() {
        assert_eq!(cell_of(0, 0), 0);
        assert_eq!(cell_of(CELL_SIZE, 0), 1);
        assert_eq!(cell_of(0, CELL_SIZE), CELLS_PER_SIDE as usize);
        assert_eq!(cell_of(MAP_SIZE + 50, 0), (CELLS_PER_SIDE - 1) as usize);
    }

    #[test]
    fn world_starts_consistent() {
        let w = World::new(&[(0, 0), (100, 100), (1000, 1000)]);
        assert_eq!(w.player_count(), 3);
        w.check_consistency().unwrap();
    }

    #[test]
    fn move_updates_grid() {
        let w = World::new(&[(0, 0)]);
        with_tx(&w, |tx| w.move_player(tx, 0, 500, 500));
        w.check_consistency().unwrap();
        let p = with_tx(&w, |tx| w.read_player(tx, 0));
        assert_eq!((p.x, p.y), (500, 500));
    }

    #[test]
    fn move_clamps_to_map() {
        let w = World::new(&[(10, 10)]);
        with_tx(&w, |tx| w.move_player(tx, 0, -50, 99999));
        let p = with_tx(&w, |tx| w.read_player(tx, 0));
        assert_eq!((p.x, p.y), (0, MAP_SIZE - 1));
        w.check_consistency().unwrap();
    }

    #[test]
    fn damage_and_respawn() {
        let w = World::new(&[(0, 0), (1, 1)]);
        let died = with_tx(&w, |tx| w.damage(tx, 1, Player::FULL_HEALTH));
        assert!(died);
        let p = with_tx(&w, |tx| w.read_player(tx, 1));
        assert_eq!(p.health, Player::FULL_HEALTH);
        with_tx(&w, |tx| w.credit(tx, 0));
        assert_eq!(w.total_score_unlogged(), 1);
    }

    #[test]
    fn pickup_consumes_stock_and_heals() {
        let w = World::with_items(&[(5, 5)], 2);
        with_tx(&w, |tx| w.damage(tx, 0, 60).map(|_| ()));
        let took = with_tx(&w, |tx| w.try_pickup(tx, 0));
        assert!(took);
        let p = with_tx(&w, |tx| w.read_player(tx, 0));
        assert_eq!(p.health, Player::FULL_HEALTH - 60 + 25);
        // Drain the cell.
        assert!(with_tx(&w, |tx| w.try_pickup(tx, 0)));
        assert!(!with_tx(&w, |tx| w.try_pickup(tx, 0)), "stock exhausted");
    }

    #[test]
    fn pickup_never_overheals() {
        let w = World::with_items(&[(5, 5)], 1);
        assert!(with_tx(&w, |tx| w.try_pickup(tx, 0)));
        let p = with_tx(&w, |tx| w.read_player(tx, 0));
        assert_eq!(p.health, Player::FULL_HEALTH);
    }

    #[test]
    fn items_remaining_counts_map_wide() {
        let w = World::with_items(&[(0, 0), (600, 600)], 3);
        let total = w.items_remaining_unlogged();
        assert_eq!(total, 3 * (CELLS_PER_SIDE as u64) * (CELLS_PER_SIDE as u64));
    }

    #[test]
    fn cohabitants_excludes_self() {
        let w = World::new(&[(5, 5), (6, 6), (700, 700)]);
        let others = with_tx(&w, |tx| w.cohabitants(tx, 0));
        assert_eq!(others, vec![1]);
    }
}
