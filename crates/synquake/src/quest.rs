//! Quests: the hotspot patterns that drive player movement.
//!
//! A *quest* in SynQuake is "a specific area in the map that attracts
//! players, thus simulating a high interest area in the game play and the
//! associated player movement patterns" (§VIII). The paper trains on
//! `4worst_case` and `4moving` and tests on `4quadrants` and
//! `4center_spread6`; all four place four hotspots on the 1024×1024 map.

use std::fmt;
use std::str::FromStr;

/// Map side length (the paper's 1024×1024 map).
pub const MAP_SIZE: i32 = 1024;

/// The four quest patterns from the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Quest {
    /// All four hotspots collapse near the map center — maximal player
    /// convergence, the worst case for contention (training quest).
    WorstCase4,
    /// Four hotspots orbit the map over time (training quest).
    Moving4,
    /// One hotspot at each quadrant center (test quest).
    Quadrants4,
    /// A center hotspot with players spread at six radii (test quest).
    CenterSpread6,
}

impl Quest {
    /// The quests used for model training in the paper.
    pub fn training() -> [Quest; 2] {
        [Quest::WorstCase4, Quest::Moving4]
    }

    /// The quests used for testing in the paper.
    pub fn testing() -> [Quest; 2] {
        [Quest::Quadrants4, Quest::CenterSpread6]
    }

    /// Position of hotspot `k` (of 4) at `frame`.
    pub fn hotspot(self, k: usize, frame: u64) -> (i32, i32) {
        let c = MAP_SIZE / 2;
        let k = (k % 4) as i32;
        match self {
            Quest::WorstCase4 => {
                // Tight cluster around the center: 4 points 32px apart.
                let dx = (k % 2) * 32 - 16;
                let dy = (k / 2) * 32 - 16;
                (c + dx, c + dy)
            }
            Quest::Moving4 => {
                // Hotspots march along the diagonals, wrapping.
                let t = (frame as i32 * 8) % MAP_SIZE;
                match k {
                    0 => (t, t),
                    1 => (MAP_SIZE - 1 - t, t),
                    2 => (t, MAP_SIZE - 1 - t),
                    _ => (MAP_SIZE - 1 - t, MAP_SIZE - 1 - t),
                }
            }
            Quest::Quadrants4 => {
                let q = MAP_SIZE / 4;
                ((1 + 2 * (k % 2)) * q, (1 + 2 * (k / 2)) * q)
            }
            Quest::CenterSpread6 => {
                // One central attractor; the "spread 6" offsets targets on
                // six rings so players distribute around the center.
                let ring = (k + 1) * MAP_SIZE / 16;
                let (sx, sy) = match k {
                    0 => (1, 0),
                    1 => (0, 1),
                    2 => (-1, 0),
                    _ => (0, -1),
                };
                (c + sx * ring, c + sy * ring)
            }
        }
    }

    /// All quests.
    pub fn all() -> [Quest; 4] {
        [Quest::WorstCase4, Quest::Moving4, Quest::Quadrants4, Quest::CenterSpread6]
    }
}

impl fmt::Display for Quest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Quest::WorstCase4 => "4worst_case",
            Quest::Moving4 => "4moving",
            Quest::Quadrants4 => "4quadrants",
            Quest::CenterSpread6 => "4center_spread6",
        };
        f.write_str(s)
    }
}

impl FromStr for Quest {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "4worst_case" => Ok(Quest::WorstCase4),
            "4moving" => Ok(Quest::Moving4),
            "4quadrants" => Ok(Quest::Quadrants4),
            "4center_spread6" => Ok(Quest::CenterSpread6),
            other => Err(format!("unknown quest {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotspots_are_in_bounds() {
        for quest in Quest::all() {
            for k in 0..4 {
                for frame in [0, 7, 100, 9999] {
                    let (x, y) = quest.hotspot(k, frame);
                    assert!((0..MAP_SIZE).contains(&x), "{quest} k={k} f={frame}: x={x}");
                    assert!((0..MAP_SIZE).contains(&y), "{quest} k={k} f={frame}: y={y}");
                }
            }
        }
    }

    #[test]
    fn worst_case_hotspots_converge() {
        let c = MAP_SIZE / 2;
        for k in 0..4 {
            let (x, y) = Quest::WorstCase4.hotspot(k, 5);
            assert!((x - c).abs() <= 32 && (y - c).abs() <= 32);
        }
    }

    #[test]
    fn quadrants_are_distinct_and_spread() {
        let spots: std::collections::HashSet<(i32, i32)> =
            (0..4).map(|k| Quest::Quadrants4.hotspot(k, 0)).collect();
        assert_eq!(spots.len(), 4);
    }

    #[test]
    fn moving_quest_moves() {
        assert_ne!(Quest::Moving4.hotspot(0, 0), Quest::Moving4.hotspot(0, 10));
    }

    #[test]
    fn parse_round_trip() {
        for q in Quest::all() {
            assert_eq!(q.to_string().parse::<Quest>().unwrap(), q);
        }
        assert!("8corners".parse::<Quest>().is_err());
    }
}
