//! The SynQuake server loop as a [`Workload`].
//!
//! Each frame, every worker thread processes its share of the 1000 players
//! — a movement transaction toward the player's quest hotspot, and on
//! alternating frames an attack transaction against a cohabitant of its
//! grid cell — then meets the others at the frame barrier ("multiple client
//! frames are handled by threads and executed within barriers", §VIII).
//! The recorded per-frame processing times are the series whose variance
//! Figures 11–12 report.
//!
//! Transaction sites: `a` = move, `b` = attack, `c` = item pickup.

use std::sync::Arc;

use gstm_core::rng::SmallRng;
use gstm_core::sync::Mutex;

use gstm_core::{StmConfig, TxId};
use gstm_guide::{WorkerEnv, Workload, WorkloadRun};
use gstm_stats::{mean, sample_stddev};

use crate::quest::{Quest, MAP_SIZE};
use crate::world::World;

/// Movement speed in map units per frame.
const SPEED: i32 = 24;

/// Damage per successful attack.
const DAMAGE: i32 = 34;

/// Health packs stocked per grid cell at match start.
const ITEMS_PER_CELL: u32 = 4;

/// The SynQuake benchmark.
#[derive(Clone, Copy, Debug)]
pub struct SynQuake {
    /// Player count (the paper runs 1000).
    pub players: usize,
    /// Frames to simulate (the paper trains on 1000 and tests on 10000;
    /// we scale down ~100× — see DESIGN.md §2).
    pub frames: u64,
    /// The active quest.
    pub quest: Quest,
}

impl SynQuake {
    /// The paper's configuration at a CI-friendly frame count.
    pub fn new(quest: Quest, frames: u64) -> Self {
        SynQuake { players: 1000, frames, quest }
    }

    /// A reduced configuration for unit tests.
    pub fn tiny(quest: Quest) -> Self {
        SynQuake { players: 64, frames: 6, quest }
    }
}

struct SynQuakeRun {
    params: SynQuake,
    world: World,
    frame_times: Arc<Mutex<Vec<u64>>>,
}

/// Deterministic per-(player, frame) jitter in `-8..=8`.
fn jitter(id: u16, frame: u64, axis: u64) -> i32 {
    let h = (id as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(frame.wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add(axis * 0x2545_F491_4F6C_DD1D);
    ((h >> 32) % 17) as i32 - 8
}

impl Workload for SynQuake {
    fn name(&self) -> &'static str {
        "synquake"
    }

    fn stm_config(&self, threads: usize) -> StmConfig {
        // LibTM in the paper's configuration: fully-optimistic detection
        // with abort-readers resolution.
        StmConfig::libtm(threads)
    }

    fn instantiate(&self, _threads: usize, seed: u64) -> Box<dyn WorkloadRun> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7379_6e71);
        // Players spawn scattered around their quest's hotspot, so the
        // frame-time series is quasi-stationary from the first frame — the
        // paper's 10000-frame runs measure steady-state gameplay, not the
        // initial convergence transient our shorter runs would otherwise be
        // dominated by.
        let spread = 160i32;
        let spawns: Vec<(i32, i32)> = (0..self.players)
            .map(|id| {
                let (hx, hy) = self.quest.hotspot(id % 4, 0);
                (
                    (hx + rng.gen_range(-spread..=spread)).clamp(0, MAP_SIZE - 1),
                    (hy + rng.gen_range(-spread..=spread)).clamp(0, MAP_SIZE - 1),
                )
            })
            .collect();
        Box::new(SynQuakeRun {
            params: *self,
            world: World::with_items(&spawns, ITEMS_PER_CELL),
            frame_times: Arc::new(Mutex::new(Vec::with_capacity(self.frames as usize))),
        })
    }
}

impl WorkloadRun for SynQuakeRun {
    fn worker(&self, env: WorkerEnv) -> Box<dyn FnOnce() + Send> {
        let params = self.params;
        let world = self.world.clone();
        let frame_times = Arc::clone(&self.frame_times);
        let me = env.thread.index();
        let per = params.players.div_ceil(env.threads);
        let my_players: Vec<u16> = (0..params.players as u16).skip(me * per).take(per).collect();
        Box::new(move || {
            let gate = Arc::clone(env.stm.gate());
            let mut frame_start = gate.thread_time(env.thread);
            for frame in 0..params.frames {
                for &id in &my_players {
                    // Site a: movement toward the quest hotspot.
                    let (tx_target_x, tx_target_y) = params.quest.hotspot(id as usize % 4, frame);
                    env.stm.run(env.thread, TxId::new(0), |tx| {
                        let p = world.read_player(tx, id)?;
                        let step = |from: i32, to: i32| from + (to - from).clamp(-SPEED, SPEED);
                        let nx = step(p.x, tx_target_x) + jitter(id, frame, 0);
                        let ny = step(p.y, tx_target_y) + jitter(id, frame, 1);
                        tx.work(3); // interest-area computation
                        world.move_player(tx, id, nx, ny)
                    });
                    // Site c: wounded players grab a health pack.
                    if frame % 3 == 2 {
                        env.stm.run(env.thread, TxId::new(2), |tx| {
                            let p = world.read_player(tx, id)?;
                            if p.health < 60 {
                                world.try_pickup(tx, id)?;
                            }
                            Ok(())
                        });
                    }
                    // Site b: attack a cohabitant on alternating frames.
                    if (frame + id as u64).is_multiple_of(2) {
                        env.stm.run(env.thread, TxId::new(1), |tx| {
                            let others = world.cohabitants(tx, id)?;
                            if let Some(&victim) =
                                others.get((id as usize + frame as usize) % others.len().max(1))
                            {
                                tx.work(4); // line-of-sight check
                                if world.damage(tx, victim, DAMAGE)? {
                                    world.credit(tx, id)?;
                                }
                            }
                            Ok(())
                        });
                    }
                }
                env.barrier.wait(env.thread);
                // Clocks are aligned at barrier release, so any thread sees
                // the frame's global processing time; thread 0 records it.
                if me == 0 {
                    let now = gate.thread_time(env.thread);
                    frame_times.lock().push(now - frame_start);
                    frame_start = now;
                } else {
                    frame_start = gate.thread_time(env.thread);
                }
            }
        })
    }

    fn verify(&self) -> Result<(), String> {
        self.world.check_consistency()?;
        let recorded = self.frame_times.lock().len() as u64;
        if recorded != self.params.frames {
            return Err(format!("recorded {recorded} frames, expected {}", self.params.frames));
        }
        Ok(())
    }

    fn stats(&self) -> Vec<(String, f64)> {
        let times: Vec<f64> = self.frame_times.lock().iter().map(|&t| t as f64).collect();
        vec![
            ("frame_mean".into(), mean(&times)),
            ("frame_stddev".into(), sample_stddev(&times)),
            ("frame_max".into(), times.iter().copied().fold(0.0, f64::max)),
            ("frags".into(), self.world.total_score_unlogged() as f64),
            ("items_left".into(), self.world.items_remaining_unlogged() as f64),
        ]
    }
}

/// Extracts a named stat from a harness outcome.
pub fn stat(outcome: &gstm_guide::RunOutcome, key: &str) -> Option<f64> {
    outcome.workload_stats.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_guide::{run_workload, RunOptions};

    #[test]
    fn tiny_match_runs_and_stays_consistent() {
        let w = SynQuake::tiny(Quest::WorstCase4);
        let out = run_workload(&w, &RunOptions::new(4, 3));
        assert!(out.total_commits() > 0);
        assert!(stat(&out, "frame_mean").is_some());
    }

    #[test]
    fn frame_times_are_recorded_per_frame() {
        let w = SynQuake { players: 32, frames: 5, quest: Quest::Quadrants4 };
        let out = run_workload(&w, &RunOptions::new(2, 1));
        let mean = stat(&out, "frame_mean").unwrap();
        assert!(mean > 0.0);
    }

    #[test]
    fn hotspot_quests_generate_real_contention() {
        // Every quest concentrates players enough that object-granularity
        // transactions conflict at a measurable rate (the property the
        // paper's LibTM evaluation depends on). The exact ordering between
        // quests is scale-sensitive, so we assert the floor, not a ranking.
        for quest in [Quest::WorstCase4, Quest::CenterSpread6] {
            let w = SynQuake { players: 160, frames: 10, quest };
            let ratio = run_workload(&w, &RunOptions::new(4, 5)).abort_ratio();
            assert!(ratio > 0.01, "{quest}: abort ratio {ratio} too low");
        }
    }

    #[test]
    fn jitter_is_bounded_and_varies() {
        let vals: Vec<i32> = (0..100).map(|f| jitter(3, f, 0)).collect();
        assert!(vals.iter().all(|v| (-8..=8).contains(v)));
        assert!(vals.iter().collect::<std::collections::HashSet<_>>().len() > 3);
    }
}
