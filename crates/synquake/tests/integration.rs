//! SynQuake integration: training-to-testing transfer and mode checks.

use std::sync::Arc;

use gstm_guide::{run_workload, PolicyChoice, RunOptions};
use gstm_model::{parse_states, Grouping, GuidedModel, TsaBuilder};
use gstm_synquake::{stat, Quest, SynQuake};

#[test]
fn model_trained_on_training_quests_guides_test_quests() {
    let threads = 4;
    let mut builder = TsaBuilder::new();
    for quest in Quest::training() {
        let w = SynQuake { players: 80, frames: 5, quest };
        for seed in 1..=3 {
            let out = run_workload(&w, &RunOptions::new(threads, seed).capturing());
            builder.add_run(&parse_states(&out.events.expect("captured"), Grouping::Arrival));
        }
    }
    let model = Arc::new(GuidedModel::compile(builder.build(), 4.0));

    for quest in Quest::testing() {
        let w = SynQuake { players: 80, frames: 5, quest };
        let out = run_workload(
            &w,
            &RunOptions::new(threads, 77)
                .with_policy(PolicyChoice::Guided { model: Arc::clone(&model), k: 16 }),
        );
        assert!(out.total_commits() > 0, "{quest}: guided run must make progress");
        assert!(stat(&out, "frame_mean").unwrap() > 0.0);
    }
}

#[test]
fn abort_readers_mode_is_actually_used() {
    // SynQuake requests the LibTM configuration; doomed-by-committer aborts
    // only exist with visible readers, so seeing them proves the mode is
    // wired through the harness.
    let w = SynQuake { players: 200, frames: 12, quest: Quest::WorstCase4 };
    let doomed = (1..=5).any(|seed| {
        let out = run_workload(&w, &RunOptions::new(8, seed).capturing());
        let events = out.events.expect("captured");
        events.iter().any(|e| match e {
            gstm_core::TxEvent::Abort { abort, .. } => {
                matches!(abort.reason, gstm_core::AbortReason::DoomedByCommitter { .. })
            }
            _ => false,
        })
    });
    assert!(doomed, "abort-readers resolution must doom at least one reader");
}

#[test]
fn frame_count_scales_run_length() {
    let short = SynQuake { players: 40, frames: 3, quest: Quest::Quadrants4 };
    let long = SynQuake { players: 40, frames: 9, quest: Quest::Quadrants4 };
    let a = run_workload(&short, &RunOptions::new(2, 1)).makespan;
    let b = run_workload(&long, &RunOptions::new(2, 1)).makespan;
    assert!(b > a * 2, "3x frames must be at least 2x longer: {a} vs {b}");
}

#[test]
fn scores_only_move_via_frags() {
    let w = SynQuake { players: 60, frames: 6, quest: Quest::WorstCase4 };
    let out = run_workload(&w, &RunOptions::new(4, 2));
    let frags = stat(&out, "frags").unwrap();
    assert!(frags >= 0.0);
}
