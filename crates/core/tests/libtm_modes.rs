//! Integration tests of the LibTM-style resolutions (§VIII): visible
//! readers, committer-side dooming, and wait-for-readers.

use std::sync::Arc;

use gstm_core::cm::Aggressive;
use gstm_core::{
    AbortReason, AdmitAll, CountingSink, MemorySink, MulticastSink, NullGate, Resolution, Stm,
    StmConfig, StmError, TVar, ThreadId, TxEvent, TxId,
};

fn abort_readers_stm(sink: Arc<MemorySink>) -> Stm {
    Stm::with_parts(
        StmConfig::builder(4).resolution(Resolution::AbortReaders).build(),
        Arc::new(NullGate),
        sink,
        Arc::new(AdmitAll),
        Arc::new(Aggressive),
    )
}

#[test]
fn committer_dooms_active_reader() {
    let sink = Arc::new(MemorySink::new());
    let stm = abort_readers_stm(Arc::clone(&sink));
    let shared = TVar::new(0i64);

    // Thread 0 reads `shared` (registering as a visible reader), then,
    // mid-transaction, thread 1 commits a write to it: thread 0 must be
    // doomed and retried.
    let mut interfered = false;
    stm.run(ThreadId::new(0), TxId::new(0), |tx| {
        let v = tx.read(&shared)?;
        if !interfered {
            interfered = true;
            stm.run(ThreadId::new(1), TxId::new(1), |tx2| {
                let w = tx2.read(&shared)?;
                tx2.write(&shared, w + 5)
            });
        }
        // Next op observes the doom flag.
        tx.write(&shared, v + 1)
    });
    assert_eq!(*shared.load_unlogged(), 6, "retry must see the committed 5");
    let events = sink.take();
    let doomed = events.iter().any(|e| {
        matches!(
            e,
            TxEvent::Abort { abort, .. }
                if matches!(abort.reason, AbortReason::DoomedByCommitter { .. })
        )
    });
    assert!(doomed, "an explicit doomed-by-committer abort must be recorded: {events:?}");
}

#[test]
fn doom_names_the_committer() {
    let sink = Arc::new(MemorySink::new());
    let stm = abort_readers_stm(Arc::clone(&sink));
    let shared = TVar::new(0i64);
    let mut interfered = false;
    stm.run(ThreadId::new(2), TxId::new(0), |tx| {
        let v = tx.read(&shared)?;
        if !interfered {
            interfered = true;
            stm.run(ThreadId::new(3), TxId::new(7), |tx2| tx2.write(&shared, 1));
        }
        tx.write(&shared, v + 1)
    });
    let events = sink.take();
    let by = events.iter().find_map(|e| match e {
        TxEvent::Abort { abort, .. } => match abort.reason {
            AbortReason::DoomedByCommitter { by } => by,
            _ => None,
        },
        _ => None,
    });
    let by = by.expect("doom with attribution");
    assert_eq!(by.thread, ThreadId::new(3));
    assert_eq!(by.tx, TxId::new(7));
}

#[test]
fn wait_for_readers_times_out_rather_than_deadlocks() {
    let stm = Stm::with_parts(
        StmConfig::builder(2).resolution(Resolution::WaitForReaders).build(),
        Arc::new(NullGate),
        Arc::new(gstm_core::NullSink),
        Arc::new(AdmitAll),
        Arc::new(Aggressive),
    );
    let shared = TVar::new(0i64);
    // Thread 0 holds a read registration open while thread 1 tries to
    // commit a write to the same stripe: the committer must give up with
    // ReaderWaitTimeout instead of hanging.
    let r = stm.try_run_once(ThreadId::new(0), TxId::new(0), |tx| {
        let _ = tx.read(&shared)?;
        let inner = stm.try_run_once(ThreadId::new(1), TxId::new(1), |tx2| tx2.write(&shared, 9));
        match inner {
            Err(StmError::Aborted(a)) => {
                assert_eq!(a.reason, AbortReason::ReaderWaitTimeout, "{a:?}");
            }
            other => panic!("expected reader-wait timeout, got {other:?}"),
        }
        Ok(())
    });
    assert!(r.is_ok());
    assert_eq!(*shared.load_unlogged(), 0);
}

#[test]
fn wait_for_readers_proceeds_once_reader_finishes() {
    let stm = Stm::with_parts(
        StmConfig::builder(2).resolution(Resolution::WaitForReaders).build(),
        Arc::new(NullGate),
        Arc::new(gstm_core::NullSink),
        Arc::new(AdmitAll),
        Arc::new(Aggressive),
    );
    let shared = TVar::new(0i64);
    // Reader completes first; then the writer commits cleanly.
    stm.run(ThreadId::new(0), TxId::new(0), |tx| tx.read(&shared).map(|_| ()));
    stm.run(ThreadId::new(1), TxId::new(1), |tx| tx.write(&shared, 3));
    assert_eq!(*shared.load_unlogged(), 3);
}

#[test]
fn self_abort_mode_has_no_visible_reader_cost() {
    // Sanity: the default mode should not register readers at all — the
    // counting sink should show zero doomed aborts under heavy read traffic.
    let counting = Arc::new(CountingSink::new(2));
    let stm = Stm::with_parts(
        StmConfig::new(2),
        Arc::new(NullGate),
        Arc::new(MulticastSink::new().with(Arc::clone(&counting) as Arc<dyn gstm_core::EventSink>)),
        Arc::new(AdmitAll),
        Arc::new(Aggressive),
    );
    let v = TVar::new(1i64);
    for _ in 0..50 {
        stm.run(ThreadId::new(0), TxId::new(0), |tx| tx.read(&v).map(|_| ()));
    }
    assert_eq!(counting.commits(ThreadId::new(0)), 50);
    assert_eq!(counting.aborts(ThreadId::new(0)), 0);
}
