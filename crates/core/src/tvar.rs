//! Transactional variables.

use crate::sync::Mutex;
use std::any::Any;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::ids::VarId;

/// Erased payload stored in a [`VarCell`]: an immutable snapshot.
pub(crate) type ErasedValue = Arc<dyn Any + Send + Sync>;

static NEXT_VAR_ID: AtomicU64 = AtomicU64::new(1);

/// Process-global counter handing out write stamps for the `check` feature.
/// Stamp 0 is reserved for initial/unlogged values, so the counter starts
/// at 1. Stamps only need to be unique, not dense or ordered, so a plain
/// relaxed fetch-add suffices.
#[cfg(feature = "check")]
static NEXT_WRITE_STAMP: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The allocation domain installed on this thread, if any.
    static INSTALLED_DOMAIN: std::cell::RefCell<Option<Arc<AtomicU64>>> =
        const { std::cell::RefCell::new(None) };
}

/// A scoped [`VarId`] allocation namespace.
///
/// By default every [`TVar::new`] draws its id from one process-wide
/// counter, so the ids a run sees depend on everything allocated before it
/// — harmless for correctness (ids only need to be unique within the
/// variables that can meet inside one [`crate::Stm`]), but fatal for
/// reproducibility: the id is hashed into the striped lock table, so two
/// executions of the *same* workload/seed collide on different stripes if
/// their allocation history differs.
///
/// Installing a fresh domain on every thread that allocates for one run
/// makes that run's ids a pure function of the run itself (`1..=N` in
/// allocation order), independent of process history and of other runs
/// executing concurrently. The experiment pipeline relies on this to cache
/// run outcomes and to fan runs out across OS threads without perturbing
/// schedules.
///
/// ```
/// use gstm_core::{TVar, VarIdDomain};
/// let ids = || {
///     let domain = VarIdDomain::new();
///     let _guard = domain.install();
///     (TVar::new(0u8).id().raw(), TVar::new(0u8).id().raw())
/// };
/// assert_eq!(ids(), (1, 2));
/// assert_eq!(ids(), (1, 2)); // a fresh domain replays the same sequence
/// ```
#[derive(Clone, Debug, Default)]
pub struct VarIdDomain {
    counter: Arc<AtomicU64>,
}

impl VarIdDomain {
    /// Creates a domain whose ids start at 1.
    pub fn new() -> Self {
        VarIdDomain { counter: Arc::new(AtomicU64::new(1)) }
    }

    /// Installs this domain on the current thread until the returned guard
    /// drops; [`TVar::new`] on this thread then allocates from the domain.
    /// Nested installs stack (the previous domain is restored on drop).
    #[must_use]
    pub fn install(&self) -> VarIdDomainGuard {
        let previous = INSTALLED_DOMAIN.with(|d| d.borrow_mut().replace(Arc::clone(&self.counter)));
        VarIdDomainGuard { previous }
    }
}

/// Restores the previously installed domain (or none) on drop.
#[derive(Debug)]
pub struct VarIdDomainGuard {
    previous: Option<Arc<AtomicU64>>,
}

impl Drop for VarIdDomainGuard {
    fn drop(&mut self) {
        INSTALLED_DOMAIN.with(|d| *d.borrow_mut() = self.previous.take());
    }
}

/// Allocates the next id from the installed domain, falling back to the
/// process-wide counter.
fn next_var_id() -> VarId {
    let raw =
        INSTALLED_DOMAIN.with(|d| d.borrow().as_ref().map(|c| c.fetch_add(1, Ordering::Relaxed)));
    VarId::from_raw(raw.unwrap_or_else(|| NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed)))
}

/// Outcome of one [`VarCell::push_version`] publication, reported back to
/// the engine's MVCC stat counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct PushOutcome {
    /// Versions the watermark GC evicted during this publication.
    pub evicted: u32,
    /// Ring length after publication and GC.
    pub len: u32,
    /// Whether the ring exceeds its soft capacity (watermark lag: a
    /// registered reader still needs the older versions).
    pub over_capacity: bool,
}

/// Type-erased storage cell shared by all clones of a [`TVar`].
///
/// The cell holds the current value as an `Arc` snapshot behind a very short
/// mutex. Readers clone the `Arc` (cheap) and validate against the stripe
/// version afterwards, so a racing commit can never produce a torn value —
/// at worst a consistent-but-stale snapshot that TL2 validation then rejects.
///
/// Under `ReadMode::Snapshot` the cell additionally keeps a bounded
/// **version ring**: the trailing `(wv, value)` history of committed writes,
/// ordered by write version, GC'd against the engine's min-active-reader
/// watermark (DESIGN.md §3.1d). Snapshot readers consult only the ring,
/// never `data`, so the legacy read path and the ring never contend on one
/// lock. The ring is seeded with `(0, initial value)` at creation, so a
/// reader at any timestamp always resolves *some* version — without the
/// seed, a reader beginning before a cell's first-ever committed write
/// would find an empty ring and have nowhere to get the at-snapshot value
/// once `data` is overwritten.
pub(crate) struct VarCell {
    id: VarId,
    data: Mutex<ErasedValue>,
    /// Committed `(wv, value)` history, ascending by `wv`, newest last.
    /// Seeded with `(0, initial value)`; real commits push at `wv >= 1`.
    /// Writers to one cell serialize on its stripe lock and claim strictly
    /// increasing `wv`s, so pushes arrive in order.
    history: Mutex<Vec<(u64, ErasedValue)>>,
    /// Write stamp of the value currently in `data`: a globally unique id
    /// assigned per transactional write-back, or 0 for initial/unlogged
    /// values. The oracle uses stamps to identify *which* committed write a
    /// read observed without comparing erased payloads. Read and written
    /// only under the `data` mutex so (value, stamp) pairs are consistent.
    #[cfg(feature = "check")]
    stamp: AtomicU64,
}

impl VarCell {
    pub(crate) fn new(id: VarId, value: ErasedValue) -> Self {
        VarCell {
            id,
            history: Mutex::new(vec![(0, Arc::clone(&value))]),
            data: Mutex::new(value),
            #[cfg(feature = "check")]
            stamp: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn id(&self) -> VarId {
        self.id
    }

    #[inline]
    pub(crate) fn load(&self) -> ErasedValue {
        Arc::clone(&self.data.lock())
    }

    /// Installs `value` as the current data snapshot. Transactional
    /// write-back only: in snapshot mode the caller has already pushed the
    /// version into the ring, so the ring is left untouched here.
    #[inline]
    pub(crate) fn store(&self, value: ErasedValue) {
        let mut data = self.data.lock();
        #[cfg(feature = "check")]
        self.stamp.store(0, Ordering::Relaxed);
        *data = value;
    }

    /// Non-transactional overwrite (setup/recovery, no transactions in
    /// flight): installs `value` and **re-seeds** the version ring to the
    /// single entry `(0, value)`, discarding stale history — so snapshot
    /// readers starting after setup resolve the value actually installed,
    /// not the construction-time initial.
    pub(crate) fn store_unlogged(&self, value: ErasedValue) {
        let mut data = self.data.lock();
        #[cfg(feature = "check")]
        self.stamp.store(0, Ordering::Relaxed);
        let mut h = self.history.lock();
        h.clear();
        h.push((0, Arc::clone(&value)));
        *data = value;
    }

    /// Loads the current (value, write stamp) pair consistently.
    #[cfg(feature = "check")]
    #[inline]
    pub(crate) fn load_stamped(&self) -> (ErasedValue, u64) {
        let data = self.data.lock();
        (Arc::clone(&data), self.stamp.load(Ordering::Relaxed))
    }

    /// Installs `value` with a fresh globally unique write stamp; returns
    /// the stamp. Used by transactional write-back under `check`.
    #[cfg(feature = "check")]
    #[inline]
    pub(crate) fn store_stamped(&self, value: ErasedValue) -> u64 {
        let mut data = self.data.lock();
        let stamp = NEXT_WRITE_STAMP.fetch_add(1, Ordering::Relaxed);
        self.stamp.store(stamp, Ordering::Relaxed);
        *data = value;
        stamp
    }

    /// Publishes a committed version into the ring and GCs versions no
    /// active snapshot reader can need.
    ///
    /// The eviction rule is the zero-abort invariant's load-bearing half: a
    /// version `v` may be dropped only if a *newer retained* version `v'`
    /// has `wv' <= watermark` — then every reader (all of whom hold
    /// `ts >= watermark`, guaranteed by the registry protocol) resolves to
    /// `v'` or newer, never to `v`. `capacity` is a **soft** bound: when a
    /// lagging reader pins more than `capacity` versions the ring grows
    /// past it and the caller counts a gc-lag event instead of evicting.
    ///
    /// Called only by committers holding this cell's stripe lock, so the
    /// ring mutex is uncontended on the write side.
    pub(crate) fn push_version(
        &self,
        wv: u64,
        value: ErasedValue,
        watermark: u64,
        capacity: u32,
    ) -> PushOutcome {
        let mut h = self.history.lock();
        debug_assert!(
            h.last().is_none_or(|&(last, _)| last < wv),
            "version ring requires strictly increasing wvs"
        );
        h.push((wv, value));
        let keep_from = h.partition_point(|&(w, _)| w <= watermark).saturating_sub(1);
        let evicted = keep_from as u32;
        if keep_from > 0 {
            h.drain(..keep_from);
        }
        let len = h.len() as u32;
        PushOutcome { evicted, len, over_capacity: len > capacity }
    }

    /// Snapshot read: the newest committed version with `wv <= ts`.
    ///
    /// Because the ring is seeded with `(0, initial value)` and GC never
    /// evicts the newest version `<= watermark`, this is `Some` for every
    /// `ts >= watermark` — which the registry protocol guarantees for all
    /// active readers. `None` only for timestamps below the watermark,
    /// which no well-formed reader can hold (the engine treats it as an
    /// invariant violation).
    pub(crate) fn read_at(&self, ts: u64) -> Option<(u64, ErasedValue)> {
        let h = self.history.lock();
        let cut = h.partition_point(|&(w, _)| w <= ts);
        if cut == 0 {
            None
        } else {
            let (wv, ref value) = h[cut - 1];
            Some((wv, Arc::clone(value)))
        }
    }
}

impl fmt::Debug for VarCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VarCell").field("id", &self.id).finish_non_exhaustive()
    }
}

/// A shared variable accessible only through transactions.
///
/// `TVar<T>` is the unit of conflict detection: its [`VarId`] hashes into the
/// striped lock table, just as TL2 hashes a memory word's address. Values are
/// stored as immutable `Arc<T>` snapshots; a transactional write installs a
/// new snapshot at commit (write-back).
///
/// Clones of a `TVar` alias the same underlying cell:
///
/// ```
/// use gstm_core::TVar;
/// let a = TVar::new(1i64);
/// let b = a.clone();
/// assert_eq!(a.id(), b.id());
/// ```
///
/// Use [`crate::Txn::read`] / [`crate::Txn::write`] inside a transaction;
/// [`TVar::load_unlogged`] reads outside any transaction (e.g. for final
/// result extraction after worker threads join).
pub struct TVar<T> {
    cell: Arc<VarCell>,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Send + Sync + 'static> TVar<T> {
    /// Creates a new transactional variable holding `value`.
    pub fn new(value: T) -> Self {
        let id = next_var_id();
        TVar { cell: Arc::new(VarCell::new(id, Arc::new(value))), _marker: PhantomData }
    }

    /// Creates a transactional variable whose id carries placement tag
    /// `place` ([`VarId::with_place`]).
    ///
    /// On a sharded [lock table](crate::lock_table::LockTable) the tag
    /// confines the variable to partition `place % parts`, so variables
    /// with different tags can never false-share a stripe. On the default
    /// single-partition table the tag is inert (it changes which stripe the
    /// id hashes to, nothing more).
    pub fn new_placed(place: u8, value: T) -> Self {
        let id = next_var_id().with_place(place);
        TVar { cell: Arc::new(VarCell::new(id, Arc::new(value))), _marker: PhantomData }
    }

    /// This variable's globally unique id.
    #[inline]
    pub fn id(&self) -> VarId {
        self.cell.id
    }

    /// Reads the current snapshot **outside** of any transaction.
    ///
    /// No consistency with other variables is guaranteed; use this only when
    /// no transactions are in flight (setup/teardown) or when a single
    /// isolated value is acceptable.
    pub fn load_unlogged(&self) -> Arc<T> {
        downcast(self.cell.load())
    }

    /// Overwrites the value **outside** of any transaction, without bumping
    /// the stripe version. Only safe while no transactions run (setup).
    pub fn store_unlogged(&self, value: T) {
        self.cell.store_unlogged(Arc::new(value));
    }

    #[inline]
    pub(crate) fn cell(&self) -> &Arc<VarCell> {
        &self.cell
    }
}

/// Downcasts an erased snapshot to its concrete type.
///
/// # Panics
///
/// Panics if the cell holds a different type, which is impossible through the
/// public API (a `TVar<T>` only ever stores `T`).
#[inline]
pub(crate) fn downcast<T: Send + Sync + 'static>(v: ErasedValue) -> Arc<T> {
    match v.downcast::<T>() {
        Ok(t) => t,
        Err(_) => unreachable!("TVar type confusion: cell held an unexpected type"),
    }
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar { cell: Arc::clone(&self.cell), _marker: PhantomData }
    }
}

impl<T: Send + Sync + 'static> Default for TVar<T>
where
    T: Default,
{
    fn default() -> Self {
        TVar::new(T::default())
    }
}

impl<T: fmt::Debug + Send + Sync + 'static> fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TVar")
            .field("id", &self.id())
            .field("value", &*self.load_unlogged())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = TVar::new(0u32);
        let b = TVar::new(0u32);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn placed_vars_carry_their_tag_and_stay_unique() {
        let a = TVar::new_placed(3, 0u32);
        let b = TVar::new_placed(3, 0u32);
        assert_eq!(a.id().place(), Some(3));
        assert_ne!(a.id(), b.id());
        assert_eq!(TVar::new(0u32).id().place(), None);
        assert_eq!(*a.load_unlogged(), 0);
    }

    #[test]
    fn clone_aliases_cell() {
        let a = TVar::new(5i32);
        let b = a.clone();
        a.store_unlogged(9);
        assert_eq!(*b.load_unlogged(), 9);
    }

    #[test]
    fn load_store_unlogged() {
        let v = TVar::new(String::from("x"));
        assert_eq!(v.load_unlogged().as_str(), "x");
        v.store_unlogged(String::from("y"));
        assert_eq!(v.load_unlogged().as_str(), "y");
    }

    #[test]
    fn default_requires_default_inner() {
        let v: TVar<Vec<u8>> = TVar::default();
        assert!(v.load_unlogged().is_empty());
    }

    #[test]
    fn debug_shows_value() {
        let v = TVar::new(42u8);
        let s = format!("{v:?}");
        assert!(s.contains("42"), "{s}");
    }

    #[test]
    fn domain_ids_are_deterministic_and_scoped() {
        let ids = || {
            let domain = VarIdDomain::new();
            let _guard = domain.install();
            [TVar::new(0u8).id(), TVar::new(0u8).id(), TVar::new(0u8).id()]
        };
        assert_eq!(ids(), ids(), "fresh domains must replay the same id sequence");
        // The guard dropped: allocation returns to the global counter.
        let a = TVar::new(0u8).id();
        let b = TVar::new(0u8).id();
        assert_eq!(b.raw(), a.raw() + 1);
        assert!(a.raw() > 3, "global counter must not be the domain counter");
    }

    #[test]
    fn domain_installs_nest() {
        let outer = VarIdDomain::new();
        let _o = outer.install();
        let first = TVar::new(0u8).id();
        {
            let inner = VarIdDomain::new();
            let _i = inner.install();
            assert_eq!(TVar::new(0u8).id().raw(), 1, "inner domain starts fresh");
        }
        assert_eq!(TVar::new(0u8).id().raw(), first.raw() + 1, "outer domain restored");
    }

    #[test]
    fn tvar_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TVar<u64>>();
        assert_send_sync::<TVar<Vec<String>>>();
    }

    fn val(n: i64) -> ErasedValue {
        Arc::new(n)
    }

    fn read_i64(cell: &VarCell, ts: u64) -> Option<(u64, i64)> {
        cell.read_at(ts).map(|(wv, v)| (wv, *downcast::<i64>(v)))
    }

    #[test]
    fn ring_read_at_picks_newest_at_or_below_ts() {
        let cell = VarCell::new(VarId::from_raw(1), val(0));
        for wv in [2u64, 5, 9] {
            cell.push_version(wv, val(wv as i64 * 10), 0, 8);
        }
        assert_eq!(read_i64(&cell, 1), Some((0, 0)), "nothing committed at ts=1: seeded initial");
        assert_eq!(read_i64(&cell, 2), Some((2, 20)));
        assert_eq!(read_i64(&cell, 4), Some((2, 20)));
        assert_eq!(read_i64(&cell, 5), Some((5, 50)));
        assert_eq!(read_i64(&cell, 100), Some((9, 90)));
    }

    #[test]
    fn ring_gc_keeps_newest_version_at_or_below_watermark() {
        let cell = VarCell::new(VarId::from_raw(1), val(0));
        cell.push_version(2, val(20), 0, 8);
        cell.push_version(5, val(50), 0, 8);
        // Watermark 6: version 5 covers every reader with ts >= 6, so the
        // seed and version 2 are evictable; 5 itself must survive.
        let out = cell.push_version(9, val(90), 6, 8);
        assert_eq!(out, PushOutcome { evicted: 2, len: 2, over_capacity: false });
        assert_eq!(read_i64(&cell, 6), Some((5, 50)), "watermark-pinned version retained");
        assert_eq!(read_i64(&cell, 9), Some((9, 90)));
    }

    #[test]
    fn ring_gc_with_lagging_watermark_evicts_nothing() {
        let cell = VarCell::new(VarId::from_raw(1), val(0));
        let cap = 2u32;
        let mut out = PushOutcome::default();
        for wv in 1..=5u64 {
            out = cell.push_version(wv, val(wv as i64), 0, cap);
        }
        // Watermark 0 (a reader from before any commit is still active):
        // every version — the seed included — is pinned, the soft capacity
        // is exceeded.
        assert_eq!(out, PushOutcome { evicted: 0, len: 6, over_capacity: true });
        assert_eq!(read_i64(&cell, 0), Some((0, 0)), "pinned seed still served");
        for wv in 1..=5u64 {
            assert_eq!(read_i64(&cell, wv), Some((wv, wv as i64)), "lagging reader still served");
        }
    }

    #[test]
    fn ring_gc_at_current_watermark_retains_single_version() {
        let cell = VarCell::new(VarId::from_raw(1), val(0));
        for wv in 1..=10u64 {
            // Watermark trails by one commit: the previous version (the
            // seed, for wv=1) stays pinned — a reader at ts == watermark
            // needs it — so the steady state is exactly two entries.
            let out = cell.push_version(wv, val(wv as i64), wv.saturating_sub(1), 4);
            assert_eq!(out.len, 2, "wv={wv}");
            assert!(!out.over_capacity);
        }
        // Watermark caught up to the newest commit: history collapses to
        // the single newest version — the legacy latest-value shape.
        let out = cell.push_version(11, val(11), 11, 4);
        assert_eq!(out.len, 1);
        assert_eq!(read_i64(&cell, 11), Some((11, 11)));
        assert_eq!(read_i64(&cell, 10), None, "older versions GC'd once unreachable");
    }

    /// The block executor's hazard case: a lagging re-execution holds a
    /// snapshot timestamp from before the watermark advanced. Reads at or
    /// above the watermark must resolve the pinned version; reads strictly
    /// below the oldest retained version must come back `None` — a loud
    /// registry-protocol violation, never a silently wrong newer value.
    #[test]
    fn lagging_reader_behind_the_watermark_is_refused_not_lied_to() {
        let cell = VarCell::new(VarId::from_raw(1), val(0));
        cell.push_version(3, val(30), 0, 8);
        cell.push_version(7, val(70), 0, 8);
        // Watermark jumps to 9: versions 0 and 3 are evictable (7 covers
        // every legitimate reader), and the ring now starts at wv=7.
        let out = cell.push_version(12, val(120), 9, 8);
        assert_eq!(out.evicted, 2);
        // At/above the watermark: the pinned version answers.
        assert_eq!(read_i64(&cell, 9), Some((7, 70)));
        assert_eq!(read_i64(&cell, 11), Some((7, 70)));
        assert_eq!(read_i64(&cell, 12), Some((12, 120)));
        // Behind the watermark — below the oldest retained wv: refused.
        // A reader that somehow held ts=6 would otherwise observe wv=3's
        // value, which GC just dropped; `None` turns the protocol bug
        // into an immediate failure instead of a wrong answer.
        assert_eq!(read_i64(&cell, 6), None);
        assert_eq!(read_i64(&cell, 0), None);
    }

    /// GC is monotone under a ratcheting watermark: each advance evicts
    /// exactly the versions strictly older than the newest one at or
    /// below it, and eviction counts across pushes account for every
    /// version that ever entered the ring.
    #[test]
    fn ring_gc_eviction_counts_account_for_all_versions() {
        let cell = VarCell::new(VarId::from_raw(1), val(0));
        let mut entered = 1u32; // the seed
        let mut evicted = 0u32;
        let mut last = PushOutcome::default();
        for (wv, watermark) in [(2u64, 0u64), (4, 0), (6, 3), (8, 6), (10, 10)] {
            last = cell.push_version(wv, val(wv as i64), watermark, 8);
            entered += 1;
            evicted += last.evicted;
        }
        assert_eq!(entered - evicted, last.len, "no version lost or double-counted");
        assert_eq!(last.len, 1, "watermark caught up: only the newest survives");
        assert_eq!(read_i64(&cell, 10), Some((10, 10)));
    }

    #[test]
    fn ring_seeded_with_initial_value() {
        let cell = VarCell::new(VarId::from_raw(1), val(7));
        // A never-written cell resolves its initial value at every
        // timestamp — there is no unseeded state a reader could fall
        // through to the (possibly newer) data slot from.
        assert_eq!(read_i64(&cell, 0), Some((0, 7)));
        assert_eq!(read_i64(&cell, u64::MAX), Some((0, 7)));
    }

    #[test]
    fn store_unlogged_reseeds_the_ring() {
        let cell = VarCell::new(VarId::from_raw(1), val(1));
        cell.push_version(3, val(30), 0, 8);
        // Setup-time overwrite: history restarts at the new value, so a
        // snapshot reader cannot resolve pre-setup versions.
        cell.store_unlogged(val(50));
        assert_eq!(read_i64(&cell, u64::MAX), Some((0, 50)));
        assert_eq!(read_i64(&cell, 0), Some((0, 50)));
        assert_eq!(*downcast::<i64>(cell.load()), 50);
    }
}
