//! Crash-point plumbing for kill-and-recover fault injection.
//!
//! A [`KillSwitch`] models a process crash as seen by a durability layer:
//! once tripped, the "disk" below the write-ahead log freezes — every later
//! append, snapshot or truncation silently does nothing, exactly as if the
//! process had died at that instant and recovery later read whatever bytes
//! had reached stable storage.
//!
//! The switch is split in two so the *scheduler* and the *durability layer*
//! stay decoupled:
//!
//! * something schedule-shaped (in practice `gstm-sim`'s `ChaosGate`, under
//!   its seeded RNG) **requests** a crash at a named [`KillPoint`];
//! * the durability layer (the `gstm-wal` crate) **observes** each point as
//!   it passes through it, and trips the switch the first time it reaches
//!   the requested point.
//!
//! That ordering makes the crash land at a structurally meaningful place
//! (mid-batch, mid-snapshot, post-truncate) while the *when* stays a pure
//! function of the chaos seed — crash schedules replay byte-identically on
//! the deterministic simulator.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A structural crash point inside the write-ahead-log protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillPoint {
    /// Halfway through appending a group-commit batch: the log gains a torn
    /// tail (a partial frame), the classic torn-write crash.
    MidBatch,
    /// While writing a snapshot, before it is atomically installed: the old
    /// snapshot must survive and the log must stay untouched.
    MidSnapshot,
    /// Immediately after a snapshot installed and the log was truncated:
    /// recovery must come entirely from the new snapshot plus the short
    /// tail.
    PostTruncate,
}

impl KillPoint {
    /// Stable label for reports and cache keys.
    pub fn label(&self) -> &'static str {
        match self {
            KillPoint::MidBatch => "mid-batch",
            KillPoint::MidSnapshot => "mid-snapshot",
            KillPoint::PostTruncate => "post-truncate",
        }
    }

    fn code(self) -> u64 {
        match self {
            KillPoint::MidBatch => 1,
            KillPoint::MidSnapshot => 2,
            KillPoint::PostTruncate => 3,
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        match code {
            1 => Some(KillPoint::MidBatch),
            2 => Some(KillPoint::MidSnapshot),
            3 => Some(KillPoint::PostTruncate),
            _ => None,
        }
    }
}

/// The shared crash trigger (see the module docs). Cheap to clone via
/// `Arc`; all methods are lock-free.
#[derive(Debug, Default)]
pub struct KillSwitch {
    /// Requested crash point (`KillPoint::code`, 0 = none). First request
    /// wins so a chaos schedule can only crash a run once.
    requested: AtomicU64,
    /// Set once the requested point was reached: the disk is dead.
    tripped: AtomicBool,
}

impl KillSwitch {
    /// A switch with no crash requested.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a crash at the next occurrence of `point`. Later requests
    /// are ignored (the first one wins). Returns whether this request won.
    pub fn request(&self, point: KillPoint) -> bool {
        self.requested.compare_exchange(0, point.code(), Ordering::SeqCst, Ordering::SeqCst).is_ok()
    }

    /// The currently requested crash point, if any.
    pub fn requested(&self) -> Option<KillPoint> {
        KillPoint::from_code(self.requested.load(Ordering::SeqCst))
    }

    /// Called by the durability layer as execution passes `point`: trips
    /// the switch (and returns `true`, exactly once) if `point` is the
    /// requested crash point and the switch has not tripped yet.
    pub fn observe(&self, point: KillPoint) -> bool {
        if self.requested.load(Ordering::SeqCst) != point.code() {
            return false;
        }
        !self.tripped.swap(true, Ordering::SeqCst)
    }

    /// Whether the crash has happened — the disk below is frozen.
    pub fn is_dead(&self) -> bool {
        self.tripped.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_request_wins_and_trips_once() {
        let k = KillSwitch::new();
        assert_eq!(k.requested(), None);
        assert!(!k.observe(KillPoint::MidBatch), "nothing requested: no trip");
        assert!(k.request(KillPoint::MidSnapshot));
        assert!(!k.request(KillPoint::MidBatch), "second request ignored");
        assert_eq!(k.requested(), Some(KillPoint::MidSnapshot));
        assert!(!k.observe(KillPoint::MidBatch), "wrong point: no trip");
        assert!(!k.is_dead());
        assert!(k.observe(KillPoint::MidSnapshot), "requested point trips");
        assert!(k.is_dead());
        assert!(!k.observe(KillPoint::MidSnapshot), "trips exactly once");
        assert!(k.is_dead());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(KillPoint::MidBatch.label(), "mid-batch");
        assert_eq!(KillPoint::MidSnapshot.label(), "mid-snapshot");
        assert_eq!(KillPoint::PostTruncate.label(), "post-truncate");
    }
}
