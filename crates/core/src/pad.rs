//! Cache-line padding for contended atomics.
//!
//! The commit spine's shared words — the global version clock and every
//! lock-table stripe — are written by all committers. When two such words
//! share a 64-byte cache line, every write by one thread invalidates the
//! line in every other core's cache even though the *other* word was
//! untouched (false sharing). [`CachePadded`] aligns its contents to a
//! 64-byte boundary so each padded value owns its line outright.
//!
//! 64 bytes is the L1 line size on every x86-64 and most AArch64 parts;
//! over-aligning on machines with smaller lines costs only a little memory,
//! never correctness.

use std::ops::{Deref, DerefMut};

/// Aligns `T` to a 64-byte cache line so neighbouring values in a struct
/// or `Vec` never share a line with it.
///
/// Behaves like a transparent wrapper: `Deref`/`DerefMut` expose the inner
/// value, so `CachePadded<AtomicU64>` is used exactly like an `AtomicU64`.
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use gstm_core::CachePadded;
///
/// let word = CachePadded::new(AtomicU64::new(0));
/// word.store(7, Ordering::Relaxed);
/// assert_eq!(word.load(Ordering::Relaxed), 7);
/// assert_eq!(std::mem::align_of_val(&word), 64);
/// ```
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` on its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn padded_values_never_share_a_line() {
        let pair = [CachePadded::new(AtomicU64::new(1)), CachePadded::new(AtomicU64::new(2))];
        let a = &pair[0] as *const _ as usize;
        let b = &pair[1] as *const _ as usize;
        assert_eq!(a % 64, 0, "first word is not line-aligned");
        assert_eq!(b % 64, 0, "second word is not line-aligned");
        assert!(b - a >= 64, "words {a:#x} and {b:#x} share a cache line");
    }

    #[test]
    fn deref_is_transparent() {
        let word = CachePadded::new(AtomicU64::new(0));
        word.fetch_add(5, Ordering::Relaxed);
        assert_eq!(word.load(Ordering::Relaxed), 5);
        assert_eq!(CachePadded::new(9u64).into_inner(), 9);
    }
}
