//! Striped versioned write-locks — TL2's `lock table` — plus the two
//! extensions this reproduction needs:
//!
//! * a **last-writer stamp** per stripe, recording which `(thread, tx)`
//!   commit last bumped the stripe's version. This is what lets an aborting
//!   reader *attribute* its conflict to a specific commit, which in turn
//!   feeds the thread-transactional-state tuples of the paper's model;
//! * optional **visible reader registries** per stripe, used by the
//!   LibTM-style `AbortReaders` / `WaitForReaders` conflict resolutions that
//!   SynQuake runs with (paper §VIII).
//!
//! [`VarId`]s hash into stripes exactly like TL2 hashes memory addresses into
//! its versioned-lock array; distinct variables may share a stripe, giving
//! the same (rare) false conflicts a word-based STM has.
//!
//! Since the commit-spine work (DESIGN.md §3.1c) the table is the second
//! de-contended hot spot:
//!
//! * each stripe's lock word and stamp live together on their own 64-byte
//!   [`CachePadded`] line, so committers hammering neighbouring stripes no
//!   longer false-share;
//! * the table can be built with several **partitions**
//!   ([`LockTable::new_sharded`]): variables whose [`VarId`] carries a
//!   placement tag hash only within partition `tag % parts`, which gives
//!   `gstm-serve` a private lock table per store shard;
//! * the visible-reader registries are **lazily allocated** per stripe —
//!   a table serving `AbortReaders`/`WaitForReaders` traffic only pays for
//!   the registries of stripes that actually see visible readers
//!   ([`LockTable::reader_registry_footprint`] reports the saving).

use crate::sync::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::ids::{CommitSeq, Participant, ThreadId, TxId, VarId};
use crate::pad::CachePadded;

/// Number of low bits used for the owner + lock flag in a lock word.
const VERSION_SHIFT: u32 = 17;
const LOCKED_BIT: u64 = 1;
const OWNER_SHIFT: u32 = 1;
const OWNER_MASK: u64 = 0xFFFF << OWNER_SHIFT;

/// Largest version a lock word can carry: the high `64 - VERSION_SHIFT`
/// (47) bits. Versions come from the global clock, so at one commit per
/// nanosecond the space lasts ~52 months; the encode paths assert rather
/// than silently wrap (a wrapped version would *unlock* a stripe into the
/// past and corrupt every future validation).
pub const MAX_VERSION: u64 = u64::MAX >> VERSION_SHIFT;

/// Decoded snapshot of one stripe's lock word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockWord {
    /// Stripe version (monotone, set from committers' `wv`).
    pub version: u64,
    /// Whether the stripe is currently write-locked.
    pub locked: bool,
    /// Owner thread if locked.
    pub owner: Option<ThreadId>,
}

impl LockWord {
    #[inline]
    fn decode(raw: u64) -> Self {
        let locked = raw & LOCKED_BIT != 0;
        LockWord {
            version: raw >> VERSION_SHIFT,
            locked,
            owner: locked.then(|| ThreadId::new(((raw & OWNER_MASK) >> OWNER_SHIFT) as u16)),
        }
    }

    fn encode_unlocked(version: u64) -> u64 {
        // A version past 2^47 would shift its high bits away and publish a
        // *smaller* version — silent wraparound that corrupts validation.
        // Fail loudly instead, in release builds too: a long-running serve
        // process must crash, not serve stale reads.
        assert!(version <= MAX_VERSION, "lock-word version overflow: {version} > {MAX_VERSION}");
        version << VERSION_SHIFT
    }

    fn encode_locked(version: u64, owner: ThreadId) -> u64 {
        assert!(version <= MAX_VERSION, "lock-word version overflow: {version} > {MAX_VERSION}");
        (version << VERSION_SHIFT) | ((owner.raw() as u64) << OWNER_SHIFT) | LOCKED_BIT
    }
}

/// One stripe's visible-reader registry: `(thread raw id, nesting count)`
/// entries behind a short lock.
type ReaderRegistry = Mutex<Vec<(u16, u32)>>;

/// One stripe's contended state — lock word and last-writer stamp —
/// padded to a cache line so neighbouring stripes never false-share.
#[derive(Debug, Default)]
struct Stripe {
    word: AtomicU64,
    stamp: AtomicU64,
}

/// Lazily-populated visible-reader registries.
///
/// One `OnceLock<Box<…>>` slot per stripe (16 bytes) instead of an eager
/// `Mutex<Vec<…>>` (40 bytes, plus its eventual heap): a registry is only
/// boxed the first time a reader actually registers on that stripe, which
/// for Zipf-skewed workloads is a small fraction of the table.
#[derive(Debug)]
struct ReaderTable {
    slots: Vec<OnceLock<Box<ReaderRegistry>>>,
    allocated: AtomicUsize,
}

/// Memory-footprint report for the visible-reader registries
/// (`experiments bench-scale` publishes these in `BENCH_scale.json`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryFootprint {
    /// Stripes in the table.
    pub stripes: usize,
    /// Registries actually allocated (stripes that saw ≥ 1 registration).
    pub allocated: usize,
    /// Bytes the lazy scheme holds now: one slot per stripe plus the
    /// allocated registries (heap `Vec` storage excluded in both schemes).
    pub lazy_bytes: usize,
    /// Bytes the old eager scheme would hold: one inline registry per
    /// stripe, allocated up front.
    pub eager_bytes: usize,
}

/// Index of a stripe within the table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StripeIndex(pub u32);

/// The striped lock table.
#[derive(Debug)]
pub struct LockTable {
    stripes: Vec<CachePadded<Stripe>>,
    /// Visible-reader registries; entries are `(thread raw id, nesting count)`.
    readers: Option<ReaderTable>,
    /// Intra-partition stripe mask (`(1 << log2_stripes) - 1`).
    mask: u64,
    /// Number of partitions (1 = the classic single global table).
    parts: u32,
    log2_stripes: u32,
    /// Unlock attempts rejected because the caller did not own the stripe.
    /// Always zero in a correct engine; the opacity oracle and the chaos
    /// harness assert on it.
    violations: AtomicU64,
}

impl LockTable {
    /// Creates a table with `1 << log2_stripes` stripes. `visible_readers`
    /// enables the per-stripe reader registries (needed only for the LibTM
    /// resolutions).
    ///
    /// # Panics
    ///
    /// Panics if `log2_stripes` is 0 or greater than 24.
    pub fn new(log2_stripes: u32, visible_readers: bool) -> Self {
        LockTable::new_sharded(log2_stripes, visible_readers, 1)
    }

    /// Creates a table with `parts` partitions of `1 << log2_stripes`
    /// stripes each.
    ///
    /// Placement-tagged variables ([`VarId::place`]) hash only within
    /// partition `tag % parts`; untagged variables are spread over all
    /// partitions by hash. With `parts == 1` the stripe mapping is
    /// bit-identical to the classic table, which is what keeps the sim-mode
    /// determinism goldens stable at the default configuration.
    ///
    /// # Panics
    ///
    /// Panics if `log2_stripes` is outside 1..=24 or `parts` outside 1..=64.
    pub fn new_sharded(log2_stripes: u32, visible_readers: bool, parts: u32) -> Self {
        assert!((1..=24).contains(&log2_stripes), "log2_stripes must be in 1..=24");
        assert!((1..=64).contains(&parts), "parts must be in 1..=64");
        let n = (parts as usize) << log2_stripes;
        LockTable {
            stripes: (0..n).map(|_| CachePadded::new(Stripe::default())).collect(),
            readers: visible_readers.then(|| ReaderTable {
                slots: (0..n).map(|_| OnceLock::new()).collect(),
                allocated: AtomicUsize::new(0),
            }),
            mask: ((1usize << log2_stripes) - 1) as u64,
            parts,
            log2_stripes,
            violations: AtomicU64::new(0),
        }
    }

    /// Number of stripes (across all partitions).
    pub fn len(&self) -> usize {
        self.stripes.len()
    }

    /// A lock table is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of partitions.
    pub fn parts(&self) -> u32 {
        self.parts
    }

    /// Maps a variable to its stripe (Fibonacci hashing of the id; the
    /// placement tag, if any, selects the partition).
    #[inline]
    pub fn stripe_of(&self, var: VarId) -> StripeIndex {
        let h = var.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let intra = ((h >> 24) & self.mask) as u32;
        if self.parts == 1 {
            return StripeIndex(intra);
        }
        let part = match var.place() {
            Some(p) => u32::from(p) % self.parts,
            None => ((h >> 32) as u32) % self.parts,
        };
        StripeIndex((part << self.log2_stripes) | intra)
    }

    /// Loads and decodes a stripe's lock word.
    #[inline]
    pub fn load(&self, s: StripeIndex) -> LockWord {
        // Acquire: pairs with the Release stores in `unlock_*` so a reader
        // that observes version `wv` also sees the data written under it.
        LockWord::decode(self.stripes[s.0 as usize].word.load(Ordering::Acquire))
    }

    /// Loads a stripe's raw lock word without decoding — the uncontended
    /// read fast path. Two equal raw words are the same `LockWord`, so the
    /// TL2 pre/post read sandwich can compare raws and decode only when
    /// they differ (or the stripe is locked). Same Acquire ordering as
    /// [`LockTable::load`].
    #[inline]
    pub fn load_raw(&self, s: StripeIndex) -> u64 {
        self.stripes[s.0 as usize].word.load(Ordering::Acquire)
    }

    /// Decodes a raw word obtained from [`LockTable::load_raw`].
    #[inline]
    pub fn decode_raw(raw: u64) -> LockWord {
        LockWord::decode(raw)
    }

    /// Whether a raw word is locked (no decode).
    #[inline]
    pub fn raw_locked(raw: u64) -> bool {
        raw & LOCKED_BIT != 0
    }

    /// Version field of a raw word (no decode).
    #[inline]
    pub fn raw_version(raw: u64) -> u64 {
        raw >> VERSION_SHIFT
    }

    /// Attempts to write-lock a stripe for `owner`. Returns the pre-lock
    /// version on success; `Err(observed)` if the stripe was already locked
    /// (by anyone, including `owner` — callers dedup stripes first).
    pub fn try_lock(&self, s: StripeIndex, owner: ThreadId) -> Result<u64, LockWord> {
        let w = &self.stripes[s.0 as usize].word;
        // Acquire on both the probe and the CAS: acquiring the lock is a
        // lock-acquire in the classical sense — everything the previous
        // unlocker released must be visible before we write under the lock.
        // Nothing is published by locking itself, so Release is not needed
        // on success.
        let cur = w.load(Ordering::Acquire);
        if cur & LOCKED_BIT != 0 {
            return Err(LockWord::decode(cur));
        }
        let version = cur >> VERSION_SHIFT;
        match w.compare_exchange(
            cur,
            LockWord::encode_locked(version, owner),
            Ordering::Acquire,
            Ordering::Acquire,
        ) {
            Ok(_) => Ok(version),
            Err(observed) => Err(LockWord::decode(observed)),
        }
    }

    /// Checks the owner before an unlock, leaving the word untouched (and
    /// counting a discipline violation) on mismatch. Release builds used to
    /// skip this check entirely and silently clobber lock words held by
    /// other threads; a refused unlock is recoverable, a corrupted lock
    /// word is not.
    #[inline]
    fn owner_check(&self, s: StripeIndex, owner: ThreadId) -> bool {
        let ok = self.load(s).owner == Some(owner);
        if !ok {
            self.violations.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Releases a stripe, publishing `new_version` (a committer's `wv`).
    ///
    /// Returns `false` — refusing the unlock and leaving the lock word
    /// untouched — if the stripe was not locked by `owner`; the incident is
    /// counted in [`LockTable::discipline_violations`]. Debug builds also
    /// assert.
    #[must_use = "a refused unlock means the lock word was not released"]
    pub fn unlock_publish(&self, s: StripeIndex, owner: ThreadId, new_version: u64) -> bool {
        if !self.owner_check(s, owner) {
            return false;
        }
        // Release: publishes the redo-log writes performed under the lock —
        // any Acquire load that sees `new_version` sees those writes too.
        self.stripes[s.0 as usize]
            .word
            .store(LockWord::encode_unlocked(new_version), Ordering::Release);
        true
    }

    /// Releases a stripe restoring its pre-lock version (abort path).
    ///
    /// Returns `false` — refusing the unlock and leaving the lock word
    /// untouched — if the stripe was not locked by `owner`; the incident is
    /// counted in [`LockTable::discipline_violations`]. Debug builds also
    /// assert.
    #[must_use = "a refused unlock means the lock word was not released"]
    pub fn unlock_restore(&self, s: StripeIndex, owner: ThreadId, old_version: u64) -> bool {
        if !self.owner_check(s, owner) {
            return false;
        }
        // Release: no data was published (abort restores the old version),
        // but the unlock must still order after any tentative stores so the
        // next locker never observes them.
        self.stripes[s.0 as usize]
            .word
            .store(LockWord::encode_unlocked(old_version), Ordering::Release);
        true
    }

    /// Number of unlock attempts refused because the caller was not the
    /// stripe's owner. Always zero in a correct engine.
    pub fn discipline_violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }

    /// Records that `who`'s commit `seq` last wrote this stripe.
    pub fn stamp(&self, s: StripeIndex, who: Participant, seq: CommitSeq) {
        let enc = (seq.raw() << 32) | ((who.thread.raw() as u64) << 16) | who.tx.raw() as u64;
        // Release: a stamp written before `unlock_publish` must be visible
        // to any aborting reader that attributes its conflict to `seq`.
        self.stripes[s.0 as usize].stamp.store(enc, Ordering::Release);
    }

    /// Last committer of this stripe, if any commit has written it.
    ///
    /// The sequence component is truncated to 32 bits; `None` is returned
    /// before the first commit.
    pub fn last_writer(&self, s: StripeIndex) -> Option<(Participant, CommitSeq)> {
        // Acquire: pairs with the Release in `stamp` — attribution is
        // best-effort (a racing commit may overwrite), but never torn.
        let raw = self.stripes[s.0 as usize].stamp.load(Ordering::Acquire);
        if raw == 0 {
            return None;
        }
        let seq = CommitSeq::new(raw >> 32);
        let thread = ThreadId::new(((raw >> 16) & 0xFFFF) as u16);
        let tx = TxId::new((raw & 0xFFFF) as u16);
        Some((Participant::new(thread, tx), seq))
    }

    /// Registers `thread` as a visible reader of the stripe (no-op when the
    /// table was built without reader registries). Reentrant: nested reads
    /// bump a per-thread count. Allocates the stripe's registry on first
    /// use.
    pub fn register_reader(&self, s: StripeIndex, thread: ThreadId) {
        if let Some(rt) = &self.readers {
            let reg = rt.slots[s.0 as usize].get_or_init(|| {
                rt.allocated.fetch_add(1, Ordering::Relaxed);
                Box::new(Mutex::new(Vec::new()))
            });
            let mut list = reg.lock();
            if let Some(entry) = list.iter_mut().find(|(t, _)| *t == thread.raw()) {
                entry.1 += 1;
            } else {
                list.push((thread.raw(), 1));
            }
        }
    }

    /// Removes one registration of `thread` from the stripe.
    pub fn unregister_reader(&self, s: StripeIndex, thread: ThreadId) {
        if let Some(rt) = &self.readers {
            // A stripe nobody ever registered on has no registry to clean.
            let Some(reg) = rt.slots[s.0 as usize].get() else { return };
            let mut list = reg.lock();
            if let Some(pos) = list.iter().position(|(t, _)| *t == thread.raw()) {
                list[pos].1 -= 1;
                if list[pos].1 == 0 {
                    list.swap_remove(pos);
                }
            }
        }
    }

    /// Visible readers of a stripe, excluding `me`. Empty when registries are
    /// disabled.
    pub fn readers_excluding(&self, s: StripeIndex, me: ThreadId) -> Vec<ThreadId> {
        match &self.readers {
            Some(rt) => match rt.slots[s.0 as usize].get() {
                Some(reg) => reg
                    .lock()
                    .iter()
                    .filter(|(t, _)| *t != me.raw())
                    .map(|(t, _)| ThreadId::new(*t))
                    .collect(),
                None => Vec::new(),
            },
            None => Vec::new(),
        }
    }

    /// Whether reader registries are enabled.
    pub fn tracks_readers(&self) -> bool {
        self.readers.is_some()
    }

    /// Current reader-registry memory footprint, with the eager scheme's
    /// cost for comparison. All-zero when registries are disabled (neither
    /// scheme allocates anything then).
    pub fn reader_registry_footprint(&self) -> RegistryFootprint {
        use std::mem::size_of;
        match &self.readers {
            Some(rt) => {
                let stripes = rt.slots.len();
                let allocated = rt.allocated.load(Ordering::Relaxed);
                RegistryFootprint {
                    stripes,
                    allocated,
                    lazy_bytes: stripes * size_of::<OnceLock<Box<ReaderRegistry>>>()
                        + allocated * size_of::<ReaderRegistry>(),
                    eager_bytes: stripes * size_of::<ReaderRegistry>(),
                }
            }
            None => RegistryFootprint::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(t: u16, x: u16) -> Participant {
        Participant::new(ThreadId::new(t), TxId::new(x))
    }

    #[test]
    fn fresh_stripes_are_unlocked_version_zero() {
        let lt = LockTable::new(4, false);
        let w = lt.load(StripeIndex(3));
        assert_eq!(w, LockWord { version: 0, locked: false, owner: None });
    }

    #[test]
    fn lock_publish_cycle() {
        let lt = LockTable::new(4, false);
        let s = StripeIndex(1);
        let owner = ThreadId::new(5);
        let old = lt.try_lock(s, owner).expect("lock");
        assert_eq!(old, 0);
        let w = lt.load(s);
        assert!(w.locked);
        assert_eq!(w.owner, Some(owner));
        assert_eq!(w.version, 0, "version visible while locked");
        assert!(lt.unlock_publish(s, owner, 42));
        let w = lt.load(s);
        assert!(!w.locked);
        assert_eq!(w.version, 42);
    }

    #[test]
    fn lock_restore_keeps_version() {
        let lt = LockTable::new(4, false);
        let s = StripeIndex(0);
        let owner = ThreadId::new(1);
        lt.try_lock(s, owner).unwrap();
        assert!(lt.unlock_publish(s, owner, 7));
        let old = lt.try_lock(s, owner).unwrap();
        assert_eq!(old, 7);
        assert!(lt.unlock_restore(s, owner, old));
        assert_eq!(lt.load(s).version, 7);
    }

    #[test]
    fn unlock_by_non_owner_is_refused_and_counted() {
        let lt = LockTable::new(4, false);
        let s = StripeIndex(1);
        let owner = ThreadId::new(1);
        lt.try_lock(s, owner).unwrap();
        assert_eq!(lt.discipline_violations(), 0);

        // Another thread trying to publish must be refused with the word
        // untouched — the stripe stays locked by the real owner.
        assert!(!lt.unlock_publish(s, ThreadId::new(2), 99));
        assert_eq!(lt.discipline_violations(), 1);
        let w = lt.load(s);
        assert!(w.locked);
        assert_eq!(w.owner, Some(owner));
        assert_eq!(w.version, 0);

        // Same for the restore path.
        assert!(!lt.unlock_restore(s, ThreadId::new(3), 0));
        assert_eq!(lt.discipline_violations(), 2);
        assert_eq!(lt.load(s).owner, Some(owner));

        // The owner's unlock still succeeds afterwards.
        assert!(lt.unlock_publish(s, owner, 5));
        assert_eq!(lt.load(s), LockWord { version: 5, locked: false, owner: None });
        assert_eq!(lt.discipline_violations(), 2, "legitimate unlock adds no violation");
    }

    #[test]
    fn unlock_of_unlocked_stripe_is_refused() {
        let lt = LockTable::new(4, false);
        let s = StripeIndex(2);
        assert!(!lt.unlock_restore(s, ThreadId::new(0), 0), "stripe was never locked");
        assert_eq!(lt.discipline_violations(), 1);
        assert_eq!(lt.load(s).version, 0);
    }

    #[test]
    fn double_lock_fails_and_reports_owner() {
        let lt = LockTable::new(4, false);
        let s = StripeIndex(2);
        lt.try_lock(s, ThreadId::new(1)).unwrap();
        let err = lt.try_lock(s, ThreadId::new(2)).unwrap_err();
        assert!(err.locked);
        assert_eq!(err.owner, Some(ThreadId::new(1)));
    }

    #[test]
    fn stamps_round_trip() {
        let lt = LockTable::new(4, false);
        let s = StripeIndex(3);
        assert_eq!(lt.last_writer(s), None);
        lt.stamp(s, p(6, 0), CommitSeq::new(99));
        let (who, seq) = lt.last_writer(s).unwrap();
        assert_eq!(who, p(6, 0));
        assert_eq!(seq, CommitSeq::new(99));
    }

    #[test]
    fn stripe_mapping_is_stable_and_in_range() {
        let lt = LockTable::new(6, false);
        for i in 0..1000u64 {
            let v = VarId::from_raw(i);
            let s1 = lt.stripe_of(v);
            let s2 = lt.stripe_of(v);
            assert_eq!(s1, s2);
            assert!((s1.0 as usize) < lt.len());
        }
    }

    /// The single-partition mapping is the determinism contract: it must
    /// stay bit-identical to the classic table's Fibonacci hash, or every
    /// sim-mode golden digest moves.
    #[test]
    fn single_part_mapping_matches_legacy_hash() {
        let lt = LockTable::new(6, false);
        assert_eq!(lt.parts(), 1);
        for i in 0..1000u64 {
            let v = VarId::from_raw(i * 2_654_435_761 + 1);
            let legacy = ((v.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 24) & 63) as u32;
            assert_eq!(lt.stripe_of(v), StripeIndex(legacy));
        }
    }

    #[test]
    fn padded_stripes_own_their_cache_lines() {
        let lt = LockTable::new(2, false);
        let a = &lt.stripes[0] as *const _ as usize;
        let b = &lt.stripes[1] as *const _ as usize;
        assert_eq!(a % 64, 0, "stripe 0 not line-aligned");
        assert!(b - a >= 64, "stripes {a:#x}/{b:#x} share a cache line");
    }

    #[test]
    fn sharded_table_confines_tagged_vars_to_their_partition() {
        let parts = 4u32;
        let log2 = 6u32;
        let lt = LockTable::new_sharded(log2, false, parts);
        assert_eq!(lt.len(), (parts as usize) << log2);
        for base in 0..500u64 {
            for tag in 0..8u8 {
                let v = VarId::from_raw(base + 1).with_place(tag);
                let s = lt.stripe_of(v);
                assert_eq!(
                    s.0 >> log2,
                    u32::from(tag) % parts,
                    "tag {tag} must land in partition {}",
                    u32::from(tag) % parts
                );
            }
            // Untagged vars stay in range (spread by hash).
            let s = lt.stripe_of(VarId::from_raw(base + 1));
            assert!((s.0 as usize) < lt.len());
        }
    }

    #[test]
    fn sharded_table_isolates_different_tags() {
        // Two vars with different placement tags may never share a stripe,
        // whatever their ids hash to — that is the whole point of the
        // per-shard spine.
        let lt = LockTable::new_sharded(4, false, 4);
        for a in 0..200u64 {
            for b in 0..8u64 {
                let va = VarId::from_raw(a + 1).with_place(0);
                let vb = VarId::from_raw(b + 1).with_place(1);
                assert_ne!(lt.stripe_of(va), lt.stripe_of(vb));
            }
        }
    }

    #[test]
    fn reader_registry_counts_nesting() {
        let lt = LockTable::new(4, true);
        let s = StripeIndex(1);
        let t = ThreadId::new(3);
        lt.register_reader(s, t);
        lt.register_reader(s, t);
        lt.unregister_reader(s, t);
        assert_eq!(lt.readers_excluding(s, ThreadId::new(0)), vec![t]);
        lt.unregister_reader(s, t);
        assert!(lt.readers_excluding(s, ThreadId::new(0)).is_empty());
    }

    #[test]
    fn readers_excluding_filters_self() {
        let lt = LockTable::new(4, true);
        let s = StripeIndex(0);
        lt.register_reader(s, ThreadId::new(1));
        lt.register_reader(s, ThreadId::new(2));
        let rs = lt.readers_excluding(s, ThreadId::new(1));
        assert_eq!(rs, vec![ThreadId::new(2)]);
    }

    #[test]
    fn registry_disabled_is_noop() {
        let lt = LockTable::new(4, false);
        assert!(!lt.tracks_readers());
        lt.register_reader(StripeIndex(0), ThreadId::new(1));
        assert!(lt.readers_excluding(StripeIndex(0), ThreadId::new(9)).is_empty());
        assert_eq!(lt.reader_registry_footprint(), RegistryFootprint::default());
    }

    #[test]
    fn reader_registries_allocate_lazily() {
        let lt = LockTable::new(8, true);
        assert_eq!(lt.reader_registry_footprint().allocated, 0, "nothing allocated up front");
        // Probing an untouched stripe must not allocate its registry.
        assert!(lt.readers_excluding(StripeIndex(5), ThreadId::new(0)).is_empty());
        lt.unregister_reader(StripeIndex(5), ThreadId::new(0));
        assert_eq!(lt.reader_registry_footprint().allocated, 0);

        lt.register_reader(StripeIndex(5), ThreadId::new(0));
        lt.register_reader(StripeIndex(5), ThreadId::new(1));
        lt.register_reader(StripeIndex(9), ThreadId::new(0));
        let fp = lt.reader_registry_footprint();
        assert_eq!(fp.allocated, 2, "one registry per touched stripe");
        assert_eq!(fp.stripes, 256);
        assert!(
            fp.lazy_bytes < fp.eager_bytes,
            "lazy ({}) must undercut eager ({}) at this fill rate",
            fp.lazy_bytes,
            fp.eager_bytes
        );
    }

    #[test]
    #[should_panic]
    fn zero_stripes_rejected() {
        let _ = LockTable::new(0, false);
    }

    #[test]
    fn raw_fast_path_matches_decoded_load() {
        let lt = LockTable::new(4, false);
        let s = StripeIndex(2);
        let raw = lt.load_raw(s);
        assert!(!LockTable::raw_locked(raw));
        assert_eq!(LockTable::raw_version(raw), 0);
        assert_eq!(LockTable::decode_raw(raw), lt.load(s));

        let owner = ThreadId::new(3);
        lt.try_lock(s, owner).unwrap();
        let raw = lt.load_raw(s);
        assert!(LockTable::raw_locked(raw));
        assert_eq!(LockTable::decode_raw(raw), lt.load(s));
        assert!(lt.unlock_publish(s, owner, 55));
        let raw = lt.load_raw(s);
        assert!(!LockTable::raw_locked(raw));
        assert_eq!(LockTable::raw_version(raw), 55);
        assert_eq!(LockTable::decode_raw(raw), lt.load(s));
    }

    #[test]
    fn version_survives_lock_round_trip_at_large_values() {
        let lt = LockTable::new(2, false);
        let s = StripeIndex(0);
        let owner = ThreadId::new(0xFFFF);
        lt.try_lock(s, owner).unwrap();
        assert!(lt.unlock_publish(s, owner, (1 << 46) + 12345));
        let w = lt.load(s);
        assert_eq!(w.version, (1 << 46) + 12345);
        assert!(!w.locked);
    }

    #[test]
    fn version_at_exactly_max_is_accepted() {
        let lt = LockTable::new(2, false);
        let s = StripeIndex(1);
        let owner = ThreadId::new(7);
        lt.try_lock(s, owner).unwrap();
        assert!(lt.unlock_publish(s, owner, MAX_VERSION));
        assert_eq!(lt.load(s).version, MAX_VERSION);
    }

    /// A version past 2^47 used to wrap silently into the owner/lock bits;
    /// now the encode path aborts loudly (in release builds too) instead of
    /// letting a long-running serve process corrupt its lock words.
    #[test]
    #[should_panic(expected = "lock-word version overflow")]
    fn version_overflow_fails_loudly() {
        let lt = LockTable::new(2, false);
        let s = StripeIndex(0);
        let owner = ThreadId::new(0);
        lt.try_lock(s, owner).unwrap();
        let _ = lt.unlock_publish(s, owner, MAX_VERSION + 1);
    }
}
