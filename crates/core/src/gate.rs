//! The [`Gate`] abstraction: where the STM meets the machine.
//!
//! Every externally observable step a transactional thread takes — beginning
//! a transaction, each shared read or write, commit-time locking, abort
//! penalties, guidance hold-polls, and application compute declared via
//! [`crate::Txn::work`] — passes through a [`Gate`] with a cost in abstract
//! *ticks*.
//!
//! This is the seam that lets the **same TL2 engine** run in two worlds:
//!
//! * [`RealGate`] — native threads and wall-clock time, used for regular
//!   library usage, examples and stress tests;
//! * `SimGate` (in the `gstm-sim` crate) — a deterministic discrete-event
//!   scheduler modelling the paper's 8- and 16-core machines, where `pass`
//!   blocks the OS thread until the virtual-time scheduler grants the step.
//!
//! The paper ran on real 8/16-core x86 boxes; our build host has a single
//! core, so the simulator substitutes for the hardware (see DESIGN.md §2).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::ids::ThreadId;
use crate::placement::{pin_current_thread, Placement};

/// Abstract cost unit charged through a [`Gate`].
pub type Ticks = u64;

/// Cost model for STM-internal steps, in [`Ticks`].
///
/// Costs only matter in simulation (they advance virtual thread clocks and
/// therefore determine overlap, conflicts and measured execution time); the
/// [`RealGate`] ignores them. Defaults are loosely calibrated to TL2's
/// relative overheads: reads/writes are cheap, per-entry commit work and the
/// abort penalty (log unwinding) dominate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Starting a transaction (reading the global version clock).
    pub begin: Ticks,
    /// One transactional read (lock-word sample + value copy + re-sample).
    pub read: Ticks,
    /// One transactional write (redo-log append).
    pub write: Ticks,
    /// Per write-set entry work at commit (lock acquire + write-back).
    pub commit_entry: Ticks,
    /// Per read-set entry validation work at commit.
    pub validate_entry: Ticks,
    /// Fixed cost of an abort (log teardown).
    pub abort: Ticks,
    /// One admission-policy hold poll (guided execution's retry spin — a
    /// hash-map lookup in §VI's implementation, so it is cheap).
    pub poll: Ticks,
    /// Publishing one written value into its cell's version ring at commit
    /// (MVCC snapshot mode only; charged per write-set entry in addition to
    /// `commit_entry`). Never charged under `ReadMode::Latest`, so the
    /// legacy schedules — and the determinism goldens — are untouched.
    pub version_publish: Ticks,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            begin: 2,
            read: 1,
            write: 1,
            commit_entry: 3,
            validate_entry: 1,
            abort: 10,
            poll: 1,
            version_publish: 1,
        }
    }
}

/// The machine boundary crossed by every transactional step.
///
/// Implementations must be cheap and reentrant: the engine calls
/// [`Gate::pass`] extremely frequently. `pass` may block (the simulator's
/// does); it must eventually return.
pub trait Gate: Send + Sync {
    /// Charges `cost` ticks to `thread` and (in simulation) waits for the
    /// scheduler to grant the step.
    fn pass(&self, thread: ThreadId, cost: Ticks);

    /// Charges `cost` ticks `count` times as one batched crossing.
    ///
    /// Semantically identical to calling [`Gate::pass`] `count` times —
    /// the total charged time, and in simulation the exact per-sub-step
    /// scheduling decisions, must not differ ("batching may never change
    /// the virtual-time total charged between two schedule-visible
    /// events"). Implementations may override it to cross the machine
    /// boundary once instead of `count` times; the engine uses it only
    /// for operation groups with no externally observable effects between
    /// sub-steps (e.g. the commit write-back loop, which runs entirely
    /// under the write-set locks).
    fn pass_batch(&self, thread: ThreadId, cost: Ticks, count: u64) {
        for _ in 0..count {
            self.pass(thread, cost);
        }
    }

    /// Current time: virtual ticks in simulation, monotonic nanoseconds in
    /// real mode.
    fn now(&self) -> u64;

    /// Total time charged to `thread` so far: virtual ticks in simulation,
    /// or an implementation-defined approximation in real mode.
    fn thread_time(&self, thread: ThreadId) -> u64;
}

/// Native-execution gate: wall-clock time, optional yield injection.
///
/// On machines with fewer cores than worker threads (like this repo's CI
/// host) transactions rarely overlap, so conflicts become rare. Setting
/// `yield_every` to a small `n` makes the gate call
/// [`std::thread::yield_now`] every `n` passes, forcing interleaving and
/// restoring contention — useful for tests that need aborts to happen on any
/// machine.
///
/// ```
/// use gstm_core::{RealGate, Gate, ThreadId};
/// let gate = RealGate::new(0);
/// gate.pass(ThreadId::new(0), 5);
/// assert!(gate.thread_time(ThreadId::new(0)) >= 5);
/// ```
#[derive(Debug)]
pub struct RealGate {
    epoch: Instant,
    yield_every: u32,
    counters: Vec<AtomicU64>,
    charged: Vec<AtomicU64>,
    /// Optional core-affinity plan (DESIGN.md §3.1c). Applied lazily: the
    /// first `pass` a worker thread makes is, by construction, made *on*
    /// that thread, so that is where the pin attempt happens.
    placement: Option<Placement>,
    placed: Vec<AtomicU64>,
    placements_attempted: AtomicU64,
}

/// Maximum thread count a [`RealGate`] tracks per-thread state for.
const MAX_TRACKED_THREADS: usize = 256;

impl RealGate {
    /// Creates a real gate. `yield_every == 0` disables yield injection.
    pub fn new(yield_every: u32) -> Self {
        RealGate::with_placement(yield_every, Placement::noop())
    }

    /// Creates a real gate that applies `placement`: the first time each
    /// worker thread passes the gate, the gate attempts (best-effort, see
    /// [`crate::placement::pin_current_thread`]) to pin it to its planned
    /// CPU. A [`Placement::noop`] — the single-core case — adds no
    /// per-pass work beyond one predictable branch.
    pub fn with_placement(yield_every: u32, placement: Placement) -> Self {
        RealGate {
            epoch: Instant::now(),
            yield_every,
            counters: (0..MAX_TRACKED_THREADS).map(|_| AtomicU64::new(0)).collect(),
            charged: (0..MAX_TRACKED_THREADS).map(|_| AtomicU64::new(0)).collect(),
            placement: (!placement.is_noop()).then_some(placement),
            placed: (0..MAX_TRACKED_THREADS).map(|_| AtomicU64::new(0)).collect(),
            placements_attempted: AtomicU64::new(0),
        }
    }

    /// The placement plan this gate applies, if any.
    pub fn placement(&self) -> Option<&Placement> {
        self.placement.as_ref()
    }

    /// Worker threads whose pin was attempted so far.
    pub fn placements_attempted(&self) -> u64 {
        self.placements_attempted.load(Ordering::Relaxed)
    }

    #[inline]
    fn maybe_place(&self, thread: ThreadId, i: usize) {
        let Some(placement) = &self.placement else { return };
        if self.placed[i].swap(1, Ordering::Relaxed) == 0 {
            if let Some(cpu) = placement.cpu_of(thread) {
                self.placements_attempted.fetch_add(1, Ordering::Relaxed);
                let _ = pin_current_thread(cpu);
            }
        }
    }
}

impl Default for RealGate {
    fn default() -> Self {
        RealGate::new(0)
    }
}

impl Gate for RealGate {
    fn pass(&self, thread: ThreadId, cost: Ticks) {
        let i = thread.index() % MAX_TRACKED_THREADS;
        self.maybe_place(thread, i);
        self.charged[i].fetch_add(cost, Ordering::Relaxed);
        if self.yield_every > 0 {
            let n = self.counters[i].fetch_add(1, Ordering::Relaxed);
            if n.is_multiple_of(self.yield_every as u64) {
                std::thread::yield_now();
            }
        }
    }

    fn pass_batch(&self, thread: ThreadId, cost: Ticks, count: u64) {
        if self.yield_every > 0 {
            // Yield cadence counts individual passes; keep it exact.
            for _ in 0..count {
                self.pass(thread, cost);
            }
        } else {
            let i = thread.index() % MAX_TRACKED_THREADS;
            self.maybe_place(thread, i);
            self.charged[i].fetch_add(cost * count, Ordering::Relaxed);
        }
    }

    fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn thread_time(&self, thread: ThreadId) -> u64 {
        self.charged[thread.index() % MAX_TRACKED_THREADS].load(Ordering::Relaxed)
    }
}

/// Gate that does nothing and reports zero time; for unit tests of engine
/// logic where timing is irrelevant.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullGate;

impl Gate for NullGate {
    fn pass(&self, _thread: ThreadId, _cost: Ticks) {}

    fn pass_batch(&self, _thread: ThreadId, _cost: Ticks, _count: u64) {}

    fn now(&self) -> u64 {
        0
    }

    fn thread_time(&self, _thread: ThreadId) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_gate_accumulates_charges() {
        let g = RealGate::new(0);
        let t = ThreadId::new(1);
        g.pass(t, 3);
        g.pass(t, 4);
        assert_eq!(g.thread_time(t), 7);
        assert_eq!(g.thread_time(ThreadId::new(2)), 0);
    }

    #[test]
    fn real_gate_now_is_monotone() {
        let g = RealGate::default();
        let a = g.now();
        let b = g.now();
        assert!(b >= a);
    }

    #[test]
    fn null_gate_is_inert() {
        let g = NullGate;
        g.pass(ThreadId::new(0), 100);
        assert_eq!(g.now(), 0);
        assert_eq!(g.thread_time(ThreadId::new(0)), 0);
    }

    #[test]
    fn yield_injection_does_not_panic() {
        let g = RealGate::new(1);
        for _ in 0..10 {
            g.pass(ThreadId::new(0), 1);
        }
    }

    #[test]
    fn pass_batch_charges_like_repeated_pass() {
        let g = RealGate::new(0);
        let t = ThreadId::new(0);
        g.pass_batch(t, 3, 5);
        assert_eq!(g.thread_time(t), 15);
        let g = RealGate::new(2);
        g.pass_batch(t, 3, 5);
        assert_eq!(g.thread_time(t), 15, "yield path charges identically");
        NullGate.pass_batch(t, 3, 5);
        assert_eq!(NullGate.thread_time(t), 0);
    }

    #[test]
    fn placement_attempted_once_per_thread() {
        use crate::placement::{Placement, TouchMap};
        let mut m = TouchMap::new(2, 2);
        m.record(ThreadId::new(0), 0, 5);
        m.record(ThreadId::new(1), 1, 5);
        let g = RealGate::with_placement(0, Placement::plan(&m, 2));
        assert!(g.placement().is_some());
        for _ in 0..10 {
            g.pass(ThreadId::new(0), 1);
            g.pass(ThreadId::new(1), 1);
        }
        assert_eq!(g.placements_attempted(), 2, "one pin attempt per worker thread");
        assert_eq!(g.thread_time(ThreadId::new(0)), 10, "charging unaffected");
    }

    #[test]
    fn noop_placement_never_attempts() {
        let g = RealGate::new(0);
        assert!(g.placement().is_none());
        g.pass(ThreadId::new(0), 1);
        g.pass_batch(ThreadId::new(1), 1, 3);
        assert_eq!(g.placements_attempted(), 0);
    }

    #[test]
    fn default_cost_model_is_nonzero() {
        let c = CostModel::default();
        assert!(c.begin > 0 && c.read > 0 && c.write > 0);
        assert!(c.abort > c.read, "aborts should dominate single reads");
    }
}
