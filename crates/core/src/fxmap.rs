//! A tiny open-addressing `u64 -> u32` hash map for the transaction hot
//! path.
//!
//! `std::collections::HashMap` guards against adversarial keys with SipHash
//! and per-instance seeding; neither matters for a transaction's private
//! write index, whose keys are sequential [`crate::ids::VarId`]s and whose
//! lifetime is one attempt. This map trades that robustness for speed: an
//! FxHash-style multiplicative mix, linear probing over a power-of-two slot
//! array, no deletion (transactions only ever add to their write set), and
//! `clear()`-based reuse so a retry never reallocates.
//!
//! One reserved key: [`EMPTY_KEY`] (`u64::MAX`) marks free slots. Var ids
//! come from a monotonically increasing counter and can never reach it.

/// Reserved key marking an empty slot. Callers must never insert it.
const EMPTY_KEY: u64 = u64::MAX;

/// The 64-bit FxHash multiplier (golden-ratio based, same constant the
/// stripe hash in [`crate::lock_table`] uses).
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Open-addressing `u64 -> u32` map with linear probing and no deletion.
#[derive(Clone, Debug, Default)]
pub struct FxMap {
    /// `(key, value)` slots; `EMPTY_KEY` marks a free slot. Length is a
    /// power of two (or zero before first insert).
    slots: Vec<(u64, u32)>,
    /// Occupied slot count.
    len: usize,
}

impl FxMap {
    /// An empty map (no allocation until the first insert).
    pub fn new() -> Self {
        FxMap::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        if self.len > 0 {
            self.slots.fill((EMPTY_KEY, 0));
            self.len = 0;
        }
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // Multiplicative mix, then take the high-entropy top bits (the
        // stripe hash in lock_table does the same).
        let h = key.wrapping_mul(SEED);
        (h >> 32) as usize & (self.slots.len() - 1)
    }

    /// Looks up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u32> {
        debug_assert_ne!(key, EMPTY_KEY);
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.slot_of(key);
        loop {
            let (k, v) = self.slots[i];
            if k == key {
                return Some(v);
            }
            if k == EMPTY_KEY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts or overwrites `key`, returning the previous value if any.
    #[inline]
    pub fn insert(&mut self, key: u64, value: u32) -> Option<u32> {
        debug_assert_ne!(key, EMPTY_KEY);
        // Grow at 3/4 occupancy so probe chains stay short.
        if self.slots.is_empty() || (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = self.slot_of(key);
        loop {
            let (k, _) = self.slots[i];
            if k == key {
                let old = self.slots[i].1;
                self.slots[i].1 = value;
                return Some(old);
            }
            if k == EMPTY_KEY {
                self.slots[i] = (key, value);
                self.len += 1;
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![(EMPTY_KEY, 0); new_cap]);
        self.len = 0;
        for (k, v) in old {
            if k != EMPTY_KEY {
                self.insert(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_overwrite() {
        let mut m = FxMap::new();
        assert_eq!(m.get(3), None);
        assert_eq!(m.insert(3, 10), None);
        assert_eq!(m.insert(4, 20), None);
        assert_eq!(m.get(3), Some(10));
        assert_eq!(m.get(4), Some(20));
        assert_eq!(m.insert(3, 11), Some(10));
        assert_eq!(m.get(3), Some(11));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn survives_growth_with_sequential_keys() {
        // Var ids are sequential; make sure probing stays correct across
        // several growth steps.
        let mut m = FxMap::new();
        for k in 0..10_000u64 {
            assert_eq!(m.insert(k, (k * 3) as u32), None);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m.get(k), Some((k * 3) as u32));
        }
        assert_eq!(m.get(10_000), None);
    }

    #[test]
    fn clear_keeps_capacity_and_empties() {
        let mut m = FxMap::new();
        for k in 0..100 {
            m.insert(k, 1);
        }
        let cap = m.slots.len();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.slots.len(), cap);
        assert_eq!(m.get(5), None);
        m.insert(5, 9);
        assert_eq!(m.get(5), Some(9));
    }

    #[test]
    fn colliding_keys_probe_linearly() {
        // Keys crafted to share low hash bits after masking still resolve.
        let mut m = FxMap::new();
        for k in [1u64, 17, 33, 49, 65, 81] {
            m.insert(k, k as u32);
        }
        for k in [1u64, 17, 33, 49, 65, 81] {
            assert_eq!(m.get(k), Some(k as u32));
        }
    }
}
