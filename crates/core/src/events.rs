//! Transaction event stream — the reproduction of the paper's instrumented
//! `TX_start` / `TX_abort` / `TX_commit` hooks.
//!
//! The profiling phase records the full event sequence (the paper's
//! *transaction sequence*, `Tseq`); the model-generation phase in
//! `gstm-model` parses it into thread-transactional-state tuples; guided
//! execution subscribes online via the same trait.

use crate::sync::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::Abort;
#[cfg(test)]
use crate::ids::TxId;
use crate::ids::{CommitSeq, Participant, ThreadId, VarId};

/// One entry of the transaction sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxEvent {
    /// A transaction attempt started (after admission).
    Begin {
        /// Who is executing.
        who: Participant,
        /// Zero-based attempt number within this invocation (aborts so far).
        attempt: u32,
        /// Gate timestamp.
        at: u64,
    },
    /// An attempt aborted.
    Abort {
        /// Who aborted.
        who: Participant,
        /// Zero-based attempt number that failed.
        attempt: u32,
        /// The failed attempt's abort record (reason + attributed culprit).
        abort: Abort,
        /// Gate timestamp.
        at: u64,
    },
    /// An invocation committed.
    Commit {
        /// Who committed.
        who: Participant,
        /// Global commit sequence number.
        seq: CommitSeq,
        /// Aborts this invocation suffered before committing.
        aborts: u32,
        /// Read-set size at commit.
        reads: u32,
        /// Write-set size at commit.
        writes: u32,
        /// Gate timestamp.
        at: u64,
    },
    /// The admission policy held the transaction back (guided execution's
    /// hold loop); recorded once per invocation that was held at least once.
    Held {
        /// Who was held.
        who: Participant,
        /// Number of hold polls spent before proceeding.
        polls: u32,
        /// Gate timestamp when the hold ended.
        at: u64,
    },
    /// Oracle instrumentation: a transactional read observed a value.
    ///
    /// Emitted only when the `check` feature is compiled in **and**
    /// [`crate::StmConfig::check_events`] is set; never emitted for
    /// read-own-writes (those observe the transaction's private redo log,
    /// not shared state).
    ReadCheck {
        /// Who read.
        who: Participant,
        /// The variable read.
        var: VarId,
        /// The lock-table stripe the variable hashes to.
        stripe: u32,
        /// Stripe version observed by the post-read validation.
        version: u64,
        /// Write stamp of the observed value (0 = initial/unlogged value).
        stamp: u64,
        /// The transaction's read version `rv` at this read.
        rv: u64,
        /// Gate timestamp.
        at: u64,
    },
    /// Oracle instrumentation: one redo-log entry was written back to its
    /// cell during commit (step 5 of the TL2 protocol).
    WriteBackCheck {
        /// Who committed.
        who: Participant,
        /// The variable written.
        var: VarId,
        /// The lock-table stripe the variable hashes to.
        stripe: u32,
        /// Fresh write stamp now identifying the installed value.
        stamp: u64,
        /// Whether the stripe's lock word was held by this thread at the
        /// moment of write-back (must always be true — checked by the
        /// oracle's lock-discipline pass).
        held: bool,
        /// Gate timestamp.
        at: u64,
    },
    /// Oracle instrumentation: commit-protocol versions for one successful
    /// commit. Read-only commits report `wv == rv` (no clock tick).
    CommitCheck {
        /// Who committed.
        who: Participant,
        /// Global commit sequence number (matches the `Commit` event).
        seq: CommitSeq,
        /// Read version sampled at begin.
        rv: u64,
        /// Write version assigned by the global clock.
        wv: u64,
        /// Write-set size (0 for read-only commits).
        writes: u32,
        /// Gate timestamp.
        at: u64,
    },
    /// Oracle instrumentation: a snapshot-mode read resolved against a
    /// version ring (`ReadMode::Snapshot` read-only transactions only).
    /// Emitted under the same gating as [`TxEvent::ReadCheck`].
    SnapshotReadCheck {
        /// Who read.
        who: Participant,
        /// The variable read.
        var: VarId,
        /// Write version of the observed ring entry (0 = ring empty, the
        /// read fell back to the cell's initial value).
        wv: u64,
        /// The transaction's snapshot timestamp.
        ts: u64,
        /// Gate timestamp.
        at: u64,
    },
    /// Oracle instrumentation: one stripe unlock, publishing a new version
    /// or restoring the old one.
    UnlockCheck {
        /// Who unlocked.
        who: Participant,
        /// The stripe unlocked.
        stripe: u32,
        /// Whether the lock table agreed this thread owned the stripe.
        owner_ok: bool,
        /// `true` for version-publishing unlocks (successful commit),
        /// `false` for restoring unlocks (abort paths).
        publish: bool,
        /// Gate timestamp.
        at: u64,
    },
}

impl TxEvent {
    /// The participant this event belongs to.
    pub fn who(&self) -> Participant {
        match self {
            TxEvent::Begin { who, .. }
            | TxEvent::Abort { who, .. }
            | TxEvent::Commit { who, .. }
            | TxEvent::Held { who, .. }
            | TxEvent::ReadCheck { who, .. }
            | TxEvent::WriteBackCheck { who, .. }
            | TxEvent::CommitCheck { who, .. }
            | TxEvent::SnapshotReadCheck { who, .. }
            | TxEvent::UnlockCheck { who, .. } => *who,
        }
    }
}

impl fmt::Display for TxEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxEvent::Begin { who, attempt, .. } => write!(f, "B {who} try{attempt}"),
            TxEvent::Abort { who, attempt, abort, .. } => {
                write!(f, "A {who} try{attempt} ({})", abort.reason.label())
            }
            TxEvent::Commit { who, seq, aborts, .. } => {
                write!(f, "C {who} {seq} after {aborts} aborts")
            }
            TxEvent::Held { who, polls, .. } => write!(f, "H {who} {polls} polls"),
            TxEvent::ReadCheck { who, var, version, stamp, rv, .. } => {
                write!(f, "R {who} {var} v{version} s{stamp} rv{rv}")
            }
            TxEvent::WriteBackCheck { who, var, stamp, held, .. } => {
                write!(f, "W {who} {var} s{stamp}{}", if *held { "" } else { " UNHELD" })
            }
            TxEvent::CommitCheck { who, seq, rv, wv, writes, .. } => {
                write!(f, "V {who} {seq} rv{rv} wv{wv} {writes}w")
            }
            TxEvent::SnapshotReadCheck { who, var, wv, ts, .. } => {
                write!(f, "S {who} {var} wv{wv} ts{ts}")
            }
            TxEvent::UnlockCheck { who, stripe, owner_ok, publish, .. } => {
                write!(
                    f,
                    "U {who} stripe{stripe} {}{}",
                    if *publish { "publish" } else { "restore" },
                    if *owner_ok { "" } else { " NONOWNER" },
                )
            }
        }
    }
}

/// Receiver of the transaction event stream.
///
/// Implementations must be thread-safe and fast: they run inline on the
/// transactional fast path. The default no-op sink makes the instrumented
/// engine equivalent to the paper's "default STM" build.
pub trait EventSink: Send + Sync {
    /// Records one event. Order of delivery equals arrival order at the
    /// sink's internal synchronization point.
    fn record(&self, event: &TxEvent);
}

/// Discards all events.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&self, _event: &TxEvent) {}
}

/// Buffers the full transaction sequence in memory (profiling mode).
///
/// ```
/// use gstm_core::events::{MemorySink, EventSink, TxEvent};
/// use gstm_core::{ThreadId, TxId, Participant};
/// let sink = MemorySink::new();
/// sink.record(&TxEvent::Begin {
///     who: Participant::new(ThreadId::new(0), TxId::new(0)),
///     attempt: 0,
///     at: 0,
/// });
/// assert_eq!(sink.take().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TxEvent>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains and returns all recorded events in arrival order.
    pub fn take(&self) -> Vec<TxEvent> {
        std::mem::take(&mut self.events.lock())
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl EventSink for MemorySink {
    fn record(&self, event: &TxEvent) {
        self.events.lock().push(event.clone());
    }
}

/// Per-thread commit/abort counters plus the **abort-count histogram** that
/// the paper's tail-distribution figures (Figs. 5, 7, 8) are drawn from:
/// for every committed invocation, how many aborts it suffered first.
#[derive(Debug)]
pub struct CountingSink {
    commits: Vec<AtomicU64>,
    aborts: Vec<AtomicU64>,
    holds: Vec<AtomicU64>,
    hold_polls: Vec<AtomicU64>,
    histograms: Vec<Mutex<BTreeMap<u32, u64>>>,
}

impl CountingSink {
    /// Creates counters for `max_threads` threads.
    pub fn new(max_threads: usize) -> Self {
        CountingSink {
            commits: (0..max_threads).map(|_| AtomicU64::new(0)).collect(),
            aborts: (0..max_threads).map(|_| AtomicU64::new(0)).collect(),
            holds: (0..max_threads).map(|_| AtomicU64::new(0)).collect(),
            hold_polls: (0..max_threads).map(|_| AtomicU64::new(0)).collect(),
            histograms: (0..max_threads).map(|_| Mutex::new(BTreeMap::new())).collect(),
        }
    }

    /// Commits executed by `thread`.
    pub fn commits(&self, thread: ThreadId) -> u64 {
        self.commits[thread.index()].load(Ordering::Relaxed)
    }

    /// Aborts suffered by `thread`.
    pub fn aborts(&self, thread: ThreadId) -> u64 {
        self.aborts[thread.index()].load(Ordering::Relaxed)
    }

    /// Invocations of `thread` that were held by the admission policy.
    pub fn holds(&self, thread: ThreadId) -> u64 {
        self.holds[thread.index()].load(Ordering::Relaxed)
    }

    /// Total hold polls charged to `thread`.
    pub fn hold_polls(&self, thread: ThreadId) -> u64 {
        self.hold_polls[thread.index()].load(Ordering::Relaxed)
    }

    /// The abort-count histogram of `thread`: `aborts-before-commit → freq`.
    pub fn abort_histogram(&self, thread: ThreadId) -> BTreeMap<u32, u64> {
        self.histograms[thread.index()].lock().clone()
    }

    /// Abort ratio across all threads: `aborts / (aborts + commits)`.
    pub fn abort_ratio(&self) -> f64 {
        let a: u64 = self.aborts.iter().map(|x| x.load(Ordering::Relaxed)).sum();
        let c: u64 = self.commits.iter().map(|x| x.load(Ordering::Relaxed)).sum();
        if a + c == 0 {
            0.0
        } else {
            a as f64 / (a + c) as f64
        }
    }
}

impl EventSink for CountingSink {
    fn record(&self, event: &TxEvent) {
        match event {
            TxEvent::Begin { .. } => {}
            TxEvent::Abort { who, .. } => {
                if let Some(c) = self.aborts.get(who.thread.index()) {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            }
            TxEvent::Commit { who, aborts, .. } => {
                if let Some(c) = self.commits.get(who.thread.index()) {
                    c.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(h) = self.histograms.get(who.thread.index()) {
                    *h.lock().entry(*aborts).or_insert(0) += 1;
                }
            }
            TxEvent::Held { who, polls, .. } => {
                if let Some(c) = self.holds.get(who.thread.index()) {
                    c.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(c) = self.hold_polls.get(who.thread.index()) {
                    c.fetch_add(*polls as u64, Ordering::Relaxed);
                }
            }
            // Oracle instrumentation events carry no per-thread tallies.
            _ => {}
        }
    }
}

/// Fans one event stream out to several sinks, in order.
#[derive(Default)]
pub struct MulticastSink {
    sinks: Vec<Arc<dyn EventSink>>,
}

impl MulticastSink {
    /// Creates an empty multicast sink (equivalent to [`NullSink`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a downstream sink; returns `self` for chaining.
    pub fn with(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl fmt::Debug for MulticastSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MulticastSink({} sinks)", self.sinks.len())
    }
}

impl EventSink for MulticastSink {
    fn record(&self, event: &TxEvent) {
        for s in &self.sinks {
            s.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::AbortReason;

    fn who(t: u16, x: u16) -> Participant {
        Participant::new(ThreadId::new(t), TxId::new(x))
    }

    fn commit(t: u16, seq: u64, aborts: u32) -> TxEvent {
        TxEvent::Commit {
            who: who(t, 0),
            seq: CommitSeq::new(seq),
            aborts,
            reads: 1,
            writes: 1,
            at: 0,
        }
    }

    #[test]
    fn memory_sink_preserves_order() {
        let s = MemorySink::new();
        s.record(&commit(0, 1, 0));
        s.record(&commit(1, 2, 3));
        let evs = s.take();
        assert_eq!(evs.len(), 2);
        assert!(matches!(evs[1], TxEvent::Commit { aborts: 3, .. }));
        assert!(s.is_empty());
    }

    #[test]
    fn counting_sink_histogram() {
        let s = CountingSink::new(2);
        s.record(&commit(0, 1, 0));
        s.record(&commit(0, 2, 0));
        s.record(&commit(0, 3, 2));
        let h = s.abort_histogram(ThreadId::new(0));
        assert_eq!(h.get(&0), Some(&2));
        assert_eq!(h.get(&2), Some(&1));
        assert_eq!(s.commits(ThreadId::new(0)), 3);
        assert_eq!(s.commits(ThreadId::new(1)), 0);
    }

    #[test]
    fn counting_sink_abort_ratio() {
        let s = CountingSink::new(1);
        s.record(&TxEvent::Abort {
            who: who(0, 0),
            attempt: 0,
            abort: Abort::new(AbortReason::UserRetry),
            at: 0,
        });
        s.record(&commit(0, 1, 1));
        assert!((s.abort_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn multicast_fans_out() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(CountingSink::new(1));
        let m = MulticastSink::new()
            .with(a.clone() as Arc<dyn EventSink>)
            .with(b.clone() as Arc<dyn EventSink>);
        m.record(&commit(0, 1, 0));
        assert_eq!(a.len(), 1);
        assert_eq!(b.commits(ThreadId::new(0)), 1);
    }

    #[test]
    fn held_events_counted() {
        let s = CountingSink::new(1);
        s.record(&TxEvent::Held { who: who(0, 0), polls: 7, at: 0 });
        s.record(&TxEvent::Held { who: who(0, 0), polls: 3, at: 0 });
        assert_eq!(s.holds(ThreadId::new(0)), 2);
        assert_eq!(s.hold_polls(ThreadId::new(0)), 10);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(commit(6, 4, 1).to_string(), "C a6 #4 after 1 aborts");
    }
}
