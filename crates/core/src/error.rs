//! Abort reasons and user-facing control flow for transactions.

use std::error::Error;
use std::fmt;

use crate::ids::{CommitSeq, Participant, VarId};

/// Why a transaction attempt aborted.
///
/// TL2 aborts are *self-aborts*: a transaction discovers at read time or at
/// commit-time validation that the world moved underneath it. The LibTM-style
/// `AbortReaders` resolution additionally dooms readers from the committing
/// side. Each variant records enough context for the conflict-attribution
/// machinery (`culprit`, when known, is the commit that invalidated us).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// A read observed a stripe whose version exceeds the transaction's read
    /// version `rv`, or whose version changed between the pre- and post-read
    /// of the lock word.
    ReadVersion {
        /// Variable whose stripe failed validation.
        var: VarId,
    },
    /// A read or a commit-time validation found the stripe write-locked by
    /// another thread.
    Locked {
        /// Variable whose stripe was locked.
        var: VarId,
    },
    /// Commit-time acquisition of the write set failed because a stripe was
    /// already locked.
    WriteLockBusy {
        /// Variable whose stripe could not be acquired.
        var: VarId,
    },
    /// Commit-time validation of the read set failed (stripe version moved
    /// past `rv` after the read).
    ValidateFailed {
        /// Variable whose stripe failed validation.
        var: VarId,
    },
    /// This thread was doomed by a committer running the LibTM-style
    /// `AbortReaders` conflict resolution.
    DoomedByCommitter {
        /// The committing participant that doomed us, if recorded.
        by: Option<Participant>,
    },
    /// A `WaitForReaders` committer exhausted its patience and aborted
    /// itself to avoid a reader/committer deadlock.
    ReaderWaitTimeout,
    /// The user's transaction body requested an explicit retry.
    UserRetry,
}

impl AbortReason {
    /// Short machine-friendly label used in event dumps.
    pub fn label(&self) -> &'static str {
        match self {
            AbortReason::ReadVersion { .. } => "read-version",
            AbortReason::Locked { .. } => "locked",
            AbortReason::WriteLockBusy { .. } => "write-lock-busy",
            AbortReason::ValidateFailed { .. } => "validate-failed",
            AbortReason::DoomedByCommitter { .. } => "doomed",
            AbortReason::ReaderWaitTimeout => "reader-wait-timeout",
            AbortReason::UserRetry => "user-retry",
        }
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::ReadVersion { var } => write!(f, "stale read of {var}"),
            AbortReason::Locked { var } => write!(f, "{var} locked during read"),
            AbortReason::WriteLockBusy { var } => write!(f, "{var} busy at commit lock"),
            AbortReason::ValidateFailed { var } => write!(f, "{var} failed commit validation"),
            AbortReason::DoomedByCommitter { by: Some(p) } => write!(f, "doomed by {p}"),
            AbortReason::DoomedByCommitter { by: None } => write!(f, "doomed by a committer"),
            AbortReason::ReaderWaitTimeout => write!(f, "gave up waiting for readers"),
            AbortReason::UserRetry => write!(f, "user retry"),
        }
    }
}

/// Internal signal that unwinds a transaction body back to the retry loop.
///
/// Returned (inside `Err`) by [`crate::Txn::read`] / [`crate::Txn::write`]
/// and friends; the `?` operator propagates it out of the transaction
/// closure, after which [`crate::Stm::run`] rolls back and retries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Abort {
    /// Why the attempt must be abandoned.
    pub reason: AbortReason,
    /// Commit that invalidated us, when attributable (from the stripe's
    /// last-writer stamp).
    pub culprit: Option<(Participant, CommitSeq)>,
}

impl Abort {
    /// Creates an abort with no attributed culprit.
    pub fn new(reason: AbortReason) -> Self {
        Abort { reason, culprit: None }
    }

    /// Creates an abort attributed to a specific commit.
    pub fn caused_by(reason: AbortReason, culprit: Participant, seq: CommitSeq) -> Self {
        Abort { reason, culprit: Some((culprit, seq)) }
    }
}

impl fmt::Display for Abort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.culprit {
            Some((p, seq)) => write!(f, "abort: {} (culprit {p} at {seq})", self.reason),
            None => write!(f, "abort: {}", self.reason),
        }
    }
}

impl Error for Abort {}

/// Errors surfaced to callers of the non-retrying entry points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StmError {
    /// A single attempt aborted (only from [`crate::Stm::try_run_once`]).
    Aborted(Abort),
    /// The configured attempt budget was exhausted.
    RetryBudgetExhausted {
        /// Number of attempts made before giving up.
        attempts: u32,
    },
}

impl fmt::Display for StmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StmError::Aborted(a) => write!(f, "transaction aborted: {a}"),
            StmError::RetryBudgetExhausted { attempts } => {
                write!(f, "transaction gave up after {attempts} attempts")
            }
        }
    }
}

impl Error for StmError {}

impl From<Abort> for StmError {
    fn from(a: Abort) -> Self {
        StmError::Aborted(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ThreadId, TxId};

    #[test]
    fn abort_display_includes_culprit() {
        let p = Participant::new(ThreadId::new(7), TxId::new(1));
        let a = Abort::caused_by(
            AbortReason::ReadVersion { var: VarId::from_raw(3) },
            p,
            CommitSeq::new(12),
        );
        let s = a.to_string();
        assert!(s.contains("b7"), "{s}");
        assert!(s.contains("#12"), "{s}");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AbortReason::UserRetry.label(), "user-retry");
        assert_eq!(
            AbortReason::WriteLockBusy { var: VarId::from_raw(0) }.label(),
            "write-lock-busy"
        );
    }

    #[test]
    fn stm_error_from_abort() {
        let e: StmError = Abort::new(AbortReason::UserRetry).into();
        assert!(matches!(e, StmError::Aborted(_)));
        assert!(e.to_string().contains("user retry"));
    }
}
