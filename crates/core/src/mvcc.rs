//! Snapshot-read machinery for `ReadMode::Snapshot` (DESIGN.md §3.1d).
//!
//! A snapshot transaction picks a timestamp `ts` at begin and reads the
//! newest committed version `<= ts` from each cell's version ring — no
//! lock-word sandwich, no read-set, no validation, **no aborts**. Two
//! registries make that safe against concurrent committers and the
//! watermark GC:
//!
//! * `readers[t]` — thread `t`'s active snapshot timestamp, or a sentinel;
//! * `commit_lb[t]` — a lower bound on the write version thread `t`'s
//!   in-flight commit will claim, or a sentinel.
//!
//! # The race this design closes
//!
//! A committer samples the clock, then ticks it to claim `wv`. Between
//! those two steps a reader could pick `ts >= wv` from the already-ticked
//! clock while the committer's write-back has not yet published its
//! versions — the reader would miss a version its snapshot must include.
//! So committers publish a **commit lower bound** (a pre-tick clock
//! sample) first, and readers clamp `ts` to the minimum active bound:
//! every commit the clamp lets through has already published its bound,
//! and `wv > lb >= ts` holds for the rest.
//!
//! Symmetrically, the GC watermark must never exceed any present or future
//! reader's `ts`. Both protocols use the same trick: **park a `PENDING`
//! sentinel before sampling the clock**, with `SeqCst` fences ordering the
//! park, the sample, and the scans. A scanner that misses a parked slot
//! has, provably, scanned *after* the parker's fence — so the clock value
//! the scanner uses is `<=` the value the parked protocol will sample, and
//! the bound it computes stays conservative. A scanner that *sees*
//! `PENDING` treats it as "unknown, assume worst": readers started before
//! any such commit could tick (so it cannot constrain them and is
//! ignored), while the GC returns watermark 0 (evicts nothing this round).
//!
//! All registry slots use `SeqCst` stores/loads plus explicit
//! `fence(SeqCst)` calls; the version clock itself keeps its cheaper
//! orderings — the fences here pair with each other, not with the clock.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::clock::VersionClock;
use crate::ids::ThreadId;
use crate::pad::CachePadded;

/// Slot sentinel: no active snapshot reader / no in-flight commit.
const INACTIVE: u64 = u64::MAX;
/// Slot sentinel: the owner is between parking and publishing its clock
/// sample; scanners must assume the worst (see module docs).
const PENDING: u64 = u64::MAX - 1;

/// Counters for the snapshot read path, all maintained relaxed (they are
/// observability, not synchronization). Snapshot via [`SnapshotRegistry::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MvccStats {
    /// Snapshot-mode read-only transactions begun.
    pub snapshot_txns: u64,
    /// Reads served from a committed ring version (`wv >= 1`).
    pub snapshot_reads: u64,
    /// Reads that resolved the seeded initial version (`wv == 0`: the cell
    /// had not been transactionally written as of the snapshot).
    pub fallback_initial: u64,
    /// Read-set validations the snapshot path made unnecessary (one per
    /// read a legacy read-only commit would have re-validated).
    pub spared_validations: u64,
    /// Versions published into rings by snapshot-mode commits.
    pub versions_published: u64,
    /// Versions reclaimed by the watermark GC.
    pub versions_evicted: u64,
    /// Publications that left a ring above its soft capacity because a
    /// lagging reader pinned old versions (zero-abort preserved; the ring
    /// grows instead).
    pub gc_lag_events: u64,
    /// Largest ring length observed at any publication.
    pub ring_len_max: u64,
}

/// Reader/committer registries + counters backing snapshot mode.
///
/// Allocated once per [`crate::Stm`] when `read_mode == Snapshot`; engines
/// in legacy mode carry `None` and skip every crossing below.
#[derive(Debug)]
pub(crate) struct SnapshotRegistry {
    /// Per-thread active snapshot timestamp (or sentinel).
    readers: Vec<CachePadded<AtomicU64>>,
    /// Per-thread in-flight commit lower bound (or sentinel).
    commit_lb: Vec<CachePadded<AtomicU64>>,
    /// Soft per-ring version bound from `StmConfig::version_ring_capacity`.
    ring_capacity: u32,
    snapshot_txns: CachePadded<AtomicU64>,
    snapshot_reads: CachePadded<AtomicU64>,
    fallback_initial: CachePadded<AtomicU64>,
    spared_validations: CachePadded<AtomicU64>,
    versions_published: CachePadded<AtomicU64>,
    versions_evicted: CachePadded<AtomicU64>,
    gc_lag_events: CachePadded<AtomicU64>,
    ring_len_max: CachePadded<AtomicU64>,
}

impl SnapshotRegistry {
    pub(crate) fn new(max_threads: u32, ring_capacity: u32) -> Self {
        let slot = || CachePadded::new(AtomicU64::new(INACTIVE));
        SnapshotRegistry {
            readers: (0..max_threads).map(|_| slot()).collect(),
            commit_lb: (0..max_threads).map(|_| slot()).collect(),
            ring_capacity,
            snapshot_txns: CachePadded::new(AtomicU64::new(0)),
            snapshot_reads: CachePadded::new(AtomicU64::new(0)),
            fallback_initial: CachePadded::new(AtomicU64::new(0)),
            spared_validations: CachePadded::new(AtomicU64::new(0)),
            versions_published: CachePadded::new(AtomicU64::new(0)),
            versions_evicted: CachePadded::new(AtomicU64::new(0)),
            gc_lag_events: CachePadded::new(AtomicU64::new(0)),
            ring_len_max: CachePadded::new(AtomicU64::new(0)),
        }
    }

    pub(crate) fn ring_capacity(&self) -> u32 {
        self.ring_capacity
    }

    #[inline]
    fn reader_slot(&self, thread: ThreadId) -> &AtomicU64 {
        &self.readers[thread.index() % self.readers.len()]
    }

    #[inline]
    fn commit_slot(&self, thread: ThreadId) -> &AtomicU64 {
        &self.commit_lb[thread.index() % self.commit_lb.len()]
    }

    /// Begins a snapshot transaction on `thread`; returns its timestamp.
    ///
    /// Parks `PENDING` first so a concurrent GC that misses the park has
    /// provably computed its watermark from a clock value `<=` our sample
    /// (the fences order park → sample against the GC's sample → scan),
    /// keeping `ts >= watermark` for every reader the GC did not see.
    pub(crate) fn begin(&self, thread: ThreadId, clock: &VersionClock) -> u64 {
        let slot = self.reader_slot(thread);
        slot.store(PENDING, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        let sample = clock.sample();
        fence(Ordering::SeqCst);
        // Clamp to in-flight commits' lower bounds. A commit slot still
        // PENDING here parked *after* our fence-pair, so its clock sample
        // (and a fortiori its wv) is >= our sample and cannot constrain us.
        let mut ts = sample;
        for slot in &self.commit_lb {
            let lb = slot.load(Ordering::SeqCst);
            if lb != INACTIVE && lb != PENDING {
                ts = ts.min(lb);
            }
        }
        slot.store(ts, Ordering::SeqCst);
        self.snapshot_txns.fetch_add(1, Ordering::Relaxed);
        ts
    }

    /// Ends `thread`'s snapshot transaction, unpinning its timestamp.
    pub(crate) fn end(&self, thread: ThreadId) {
        self.reader_slot(thread).store(INACTIVE, Ordering::SeqCst);
    }

    /// [`Self::begin`] wrapped in an RAII guard: the registration is
    /// released on drop, **including unwind** — a panic in the transaction
    /// body (e.g. the documented `Txn::write`-in-read-only panic) must not
    /// pin the GC watermark at this reader's timestamp forever.
    pub(crate) fn begin_guarded<'a>(
        &'a self,
        thread: ThreadId,
        clock: &VersionClock,
    ) -> ReaderGuard<'a> {
        let ts = self.begin(thread, clock);
        ReaderGuard { reg: self, thread, ts }
    }

    /// Publishes `thread`'s commit lower bound: parks `PENDING`, samples
    /// the clock, publishes the sample. Must run **before** the commit
    /// ticks the clock to claim its `wv`; the published bound then
    /// satisfies `lb < wv`, so any reader clamped to `lb` cannot need the
    /// commit's not-yet-written versions.
    pub(crate) fn publish_commit_lb(&self, thread: ThreadId, clock: &VersionClock) {
        let slot = self.commit_slot(thread);
        slot.store(PENDING, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        let lb = clock.sample();
        slot.store(lb, Ordering::SeqCst);
        fence(Ordering::SeqCst);
    }

    /// Clears `thread`'s commit lower bound — call once the commit's
    /// versions are published (or the commit aborted post-tick).
    pub(crate) fn clear_commit_lb(&self, thread: ThreadId) {
        self.commit_slot(thread).store(INACTIVE, Ordering::SeqCst);
    }

    /// [`Self::publish_commit_lb`] wrapped in an RAII guard: the bound is
    /// cleared on drop, **including unwind** — a panic between publication
    /// and version-ring write-back must not leave a stale bound clamping
    /// every future snapshot reader to an old timestamp.
    pub(crate) fn publish_commit_lb_guarded<'a>(
        &'a self,
        thread: ThreadId,
        clock: &VersionClock,
    ) -> CommitLbGuard<'a> {
        self.publish_commit_lb(thread, clock);
        CommitLbGuard { reg: self, thread }
    }

    /// Computes the GC watermark: a version bound `W` such that every
    /// present *and future* snapshot reader holds `ts >= W`, so a ring may
    /// drop any version shadowed by a newer retained version with
    /// `wv <= W`.
    ///
    /// Samples the clock first (future readers sample later, hence see
    /// `>=` this), then scans both registries. Any `PENDING` slot means a
    /// protocol is mid-flight with an unknown bound: return 0 and evict
    /// nothing this round rather than guess.
    pub(crate) fn watermark(&self, clock: &VersionClock) -> u64 {
        let mut w = clock.sample();
        fence(Ordering::SeqCst);
        for slot in self.readers.iter().chain(self.commit_lb.iter()) {
            match slot.load(Ordering::SeqCst) {
                INACTIVE => {}
                PENDING => return 0,
                v => w = w.min(v),
            }
        }
        w
    }

    pub(crate) fn note_read(&self, from_ring: bool) {
        if from_ring {
            self.snapshot_reads.fetch_add(1, Ordering::Relaxed);
        } else {
            self.fallback_initial.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_spared_validations(&self, n: u64) {
        self.spared_validations.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn note_publication(&self, evicted: u64, ring_len: u64, over_capacity: bool) {
        self.versions_published.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.versions_evicted.fetch_add(evicted, Ordering::Relaxed);
        }
        if over_capacity {
            self.gc_lag_events.fetch_add(1, Ordering::Relaxed);
        }
        self.ring_len_max.fetch_max(ring_len, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> MvccStats {
        MvccStats {
            snapshot_txns: self.snapshot_txns.load(Ordering::Relaxed),
            snapshot_reads: self.snapshot_reads.load(Ordering::Relaxed),
            fallback_initial: self.fallback_initial.load(Ordering::Relaxed),
            spared_validations: self.spared_validations.load(Ordering::Relaxed),
            versions_published: self.versions_published.load(Ordering::Relaxed),
            versions_evicted: self.versions_evicted.load(Ordering::Relaxed),
            gc_lag_events: self.gc_lag_events.load(Ordering::Relaxed),
            ring_len_max: self.ring_len_max.load(Ordering::Relaxed),
        }
    }
}

/// Active snapshot-reader registration; unregisters on drop (unwind-safe).
/// Obtained from [`SnapshotRegistry::begin_guarded`].
#[derive(Debug)]
pub(crate) struct ReaderGuard<'a> {
    reg: &'a SnapshotRegistry,
    thread: ThreadId,
    ts: u64,
}

impl ReaderGuard<'_> {
    /// The registered snapshot timestamp.
    pub(crate) fn ts(&self) -> u64 {
        self.ts
    }
}

impl Drop for ReaderGuard<'_> {
    fn drop(&mut self) {
        self.reg.end(self.thread);
    }
}

/// In-flight commit lower bound; cleared on drop (unwind-safe). Obtained
/// from [`SnapshotRegistry::publish_commit_lb_guarded`].
#[derive(Debug)]
pub(crate) struct CommitLbGuard<'a> {
    reg: &'a SnapshotRegistry,
    thread: ThreadId,
}

impl Drop for CommitLbGuard<'_> {
    fn drop(&mut self) {
        self.reg.clear_commit_lb(self.thread);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClockStrategy;

    fn clock_at(v: u64) -> VersionClock {
        let clock = VersionClock::with_strategy(ClockStrategy::FetchAdd);
        while clock.sample() < v {
            clock.tick();
        }
        clock
    }

    #[test]
    fn begin_returns_clock_sample_when_no_commits_in_flight() {
        let reg = SnapshotRegistry::new(4, 8);
        let clock = clock_at(7);
        let ts = reg.begin(ThreadId::new(0), &clock);
        assert_eq!(ts, 7);
        assert_eq!(reg.stats().snapshot_txns, 1);
        reg.end(ThreadId::new(0));
    }

    #[test]
    fn begin_clamps_to_active_commit_lower_bound() {
        let reg = SnapshotRegistry::new(4, 8);
        let clock = clock_at(3);
        reg.publish_commit_lb(ThreadId::new(1), &clock);
        clock.tick(); // the committer claimed wv=4
        let ts = reg.begin(ThreadId::new(0), &clock);
        assert_eq!(ts, 3, "reader must not include the unpublished wv=4 commit");
        reg.clear_commit_lb(ThreadId::new(1));
        reg.end(ThreadId::new(0));
        let ts = reg.begin(ThreadId::new(0), &clock);
        assert_eq!(ts, 4, "bound cleared: reader sees the ticked clock");
    }

    #[test]
    fn watermark_is_min_of_clock_and_active_readers() {
        let reg = SnapshotRegistry::new(4, 8);
        let clock = clock_at(10);
        assert_eq!(reg.watermark(&clock), 10, "no readers: watermark is the clock");
        let t0 = ThreadId::new(0);
        let ts = reg.begin(t0, &clock);
        assert_eq!(reg.watermark(&clock), ts);
        reg.end(t0);
        assert_eq!(reg.watermark(&clock), 10);
    }

    #[test]
    fn watermark_sees_commit_bounds_and_pending_slots() {
        let reg = SnapshotRegistry::new(4, 8);
        let clock = clock_at(5);
        reg.publish_commit_lb(ThreadId::new(2), &clock);
        assert_eq!(reg.watermark(&clock), 5, "published bound == clock here");
        // Simulate a parked-but-unpublished protocol slot.
        reg.commit_lb[1].store(PENDING, Ordering::SeqCst);
        assert_eq!(reg.watermark(&clock), 0, "PENDING forces a no-evict round");
        reg.commit_lb[1].store(INACTIVE, Ordering::SeqCst);
        reg.clear_commit_lb(ThreadId::new(2));
        assert_eq!(reg.watermark(&clock), 5);
    }

    #[test]
    fn stats_accumulate() {
        let reg = SnapshotRegistry::new(2, 4);
        reg.note_read(true);
        reg.note_read(true);
        reg.note_read(false);
        reg.note_spared_validations(3);
        reg.note_publication(0, 1, false);
        reg.note_publication(2, 5, true);
        let s = reg.stats();
        assert_eq!(s.snapshot_reads, 2);
        assert_eq!(s.fallback_initial, 1);
        assert_eq!(s.spared_validations, 3);
        assert_eq!(s.versions_published, 2);
        assert_eq!(s.versions_evicted, 2);
        assert_eq!(s.gc_lag_events, 1);
        assert_eq!(s.ring_len_max, 5);
    }

    #[test]
    fn guards_release_their_slots_on_unwind() {
        let reg = SnapshotRegistry::new(4, 8);
        let clock = clock_at(6);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _reader = reg.begin_guarded(ThreadId::new(0), &clock);
            let _lb = reg.publish_commit_lb_guarded(ThreadId::new(1), &clock);
            clock.tick();
            assert_eq!(reg.watermark(&clock), 6, "live guards pin the watermark");
            panic!("transaction body blew up");
        }));
        assert!(panicked.is_err());
        // Neither the reader timestamp nor the commit bound survives the
        // unwind: the watermark tracks the clock again and a fresh reader
        // is unclamped.
        assert_eq!(reg.watermark(&clock), 7);
        assert_eq!(reg.begin(ThreadId::new(2), &clock), 7);
        reg.end(ThreadId::new(2));
    }

    #[test]
    fn sentinels_are_distinct_and_above_any_plausible_version() {
        assert_ne!(INACTIVE, PENDING);
        // The lock word caps versions at 47 bits (lock_table.rs), so no
        // real timestamp can collide with either sentinel.
        const { assert!(PENDING > (1 << 47)) }
    }
}
