//! The TL2 engine: [`Stm`] and the per-attempt [`Txn`] context.
//!
//! The commit protocol follows Dice, Shalev & Shavit's TL2 (§II-A of the
//! paper): sample the global version clock at begin (`rv`); log reads and
//! buffer writes; at commit, lock the write set's stripes, increment the
//! clock (`wv`), validate the read set against `rv`, write back, and release
//! the locks publishing `wv`. Reads are validated inline (pre/post lock-word
//! sample), so doomed zombies cannot observe inconsistent snapshots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::clock::VersionClock;
use crate::cm::{Aggressive, ContentionManager};
use crate::config::{Detection, ReadMode, Resolution, StmConfig, TxnKind};
use crate::error::{Abort, AbortReason, StmError};
use crate::events::{EventSink, NullSink, TxEvent};
use crate::fxmap::FxMap;
use crate::gate::{Gate, NullGate, Ticks};
use crate::ids::{CommitSeq, Participant, ThreadId, TxId, VarId};
use crate::lock_table::{LockTable, StripeIndex};
use crate::mvcc::{MvccStats, SnapshotRegistry};
use crate::policy::{AdmissionPolicy, AdmitAll};
use crate::readset::{ReadSet, StripeFilter};
use crate::tvar::{downcast, ErasedValue, TVar, VarCell};

/// Flag bit of the per-thread doom word; the full encoding is
/// `DOOM_FLAG | seq<<24 | thread<<8 | tx`.
const DOOM_FLAG: u64 = 1 << 62;

/// Doom word stored by [`DoomHandle::doom`]: a synthetic committer with
/// thread `0xFFFF` and tx `0xFF` (both deliberately out of range for any
/// real participant — `max_threads <= u16::MAX` keeps thread ids below
/// 0xFFFF) and sequence 0. Victims abort with
/// [`AbortReason::DoomedByCommitter`] naming this sentinel, which also
/// exercises the contention managers' unknown-conflictor paths.
const CHAOS_DOOM: u64 = DOOM_FLAG | (0xFFFF << 8) | 0xFF;

/// Clonable fault-injection lever over an [`Stm`]'s doom slots, obtained
/// from [`Stm::doom_handle`]. `gstm-sim`'s `ChaosGate` uses it to force
/// aborts at seeded random points without reaching into engine internals.
#[derive(Clone, Debug)]
pub struct DoomHandle {
    slots: Arc<Vec<AtomicU64>>,
}

impl DoomHandle {
    /// Number of doom slots (= `max_threads` of the owning [`Stm`]).
    pub fn threads(&self) -> usize {
        self.slots.len()
    }

    /// Dooms `thread`'s in-flight attempt: its next transactional operation
    /// aborts with [`AbortReason::DoomedByCommitter`] naming the synthetic
    /// chaos participant (see [`CHAOS_DOOM`]'s doc). Out-of-range threads
    /// are ignored; a doom landing between attempts is cleared by the next
    /// begin — a lost injection, not an error.
    pub fn doom(&self, thread: ThreadId) {
        if let Some(slot) = self.slots.get(thread.index()) {
            slot.store(CHAOS_DOOM, Ordering::SeqCst);
        }
    }
}

/// Summary of a successful commit, returned by [`Txn`]-internal commit.
#[derive(Clone, Copy, Debug)]
pub struct CommitInfo {
    /// Global commit sequence number.
    pub seq: CommitSeq,
    /// Write version published to the written stripes.
    pub wv: u64,
    /// Read-set size.
    pub reads: u32,
    /// Write-set size.
    pub writes: u32,
}

/// A software transactional memory instance.
///
/// One `Stm` owns the global version clock, the striped lock table, the
/// event sink, the admission policy (where guided execution plugs in) and
/// the contention manager. Worker threads are identified by dense
/// [`ThreadId`]s below `config.max_threads`.
///
/// ```
/// use std::sync::Arc;
/// use gstm_core::{Stm, StmConfig, TVar, ThreadId, TxId};
///
/// let stm = Stm::new(StmConfig::new(2));
/// let counter = TVar::new(0i64);
/// let n = stm.run(ThreadId::new(0), TxId::new(0), |tx| {
///     let v = tx.read(&counter)?;
///     tx.write(&counter, v + 1)?;
///     Ok(v + 1)
/// });
/// assert_eq!(n, 1);
/// ```
pub struct Stm {
    config: StmConfig,
    clock: VersionClock,
    locks: LockTable,
    gate: Arc<dyn Gate>,
    sink: Arc<dyn EventSink>,
    policy: Arc<dyn AdmissionPolicy>,
    cm: Arc<dyn ContentionManager>,
    commit_seq: AtomicU64,
    /// Snapshot-read registries, allocated only under
    /// [`ReadMode::Snapshot`]; `None` keeps the legacy engine (and the
    /// determinism goldens) entirely untouched.
    mvcc: Option<SnapshotRegistry>,
    /// Per-thread sequence number of the thread's most recent commit
    /// (0 = none yet). A thread reading its own slot right after its own
    /// `run` returns sees exactly that invocation's commit — the seam a
    /// durability layer uses to tag its log records with the global
    /// serialization order.
    last_seq: Vec<AtomicU64>,
    doomed: Arc<Vec<AtomicU64>>,
    /// Test-only fault hook (`check` builds): when set, commit performs its
    /// write-back *before* acquiring the write-set locks — a deliberate
    /// lock-discipline violation the opacity oracle must catch. Never set
    /// it outside negative tests.
    #[cfg(feature = "check")]
    broken_early_write_back: std::sync::atomic::AtomicBool,
}

impl std::fmt::Debug for Stm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stm")
            .field("config", &self.config)
            .field("commits", &self.commit_seq.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Stm {
    /// Creates an STM with the default gate (no-op), sink (discard), policy
    /// (admit all) and contention manager (aggressive) — the paper's
    /// "default STM".
    pub fn new(config: StmConfig) -> Self {
        Stm::with_parts(
            config,
            Arc::new(NullGate),
            Arc::new(NullSink),
            Arc::new(AdmitAll),
            Arc::new(Aggressive),
        )
    }

    /// Creates an STM on an explicit gate (machine), with the default sink,
    /// policy and contention manager.
    pub fn new_on(config: StmConfig, gate: Arc<dyn Gate>) -> Self {
        Stm::with_parts(config, gate, Arc::new(NullSink), Arc::new(AdmitAll), Arc::new(Aggressive))
    }

    /// Creates an STM wired to explicit machine, instrumentation and policy
    /// components.
    pub fn with_parts(
        config: StmConfig,
        gate: Arc<dyn Gate>,
        sink: Arc<dyn EventSink>,
        policy: Arc<dyn AdmissionPolicy>,
        cm: Arc<dyn ContentionManager>,
    ) -> Self {
        Stm {
            locks: LockTable::new_sharded(
                config.log2_stripes,
                config.resolution.needs_visible_readers(),
                config.table_shards,
            ),
            clock: VersionClock::with_strategy(config.clock),
            gate,
            sink,
            policy,
            cm,
            commit_seq: AtomicU64::new(0),
            mvcc: (config.read_mode == ReadMode::Snapshot).then(|| {
                SnapshotRegistry::new(config.max_threads as u32, config.version_ring_capacity)
            }),
            last_seq: (0..config.max_threads).map(|_| AtomicU64::new(0)).collect(),
            doomed: Arc::new((0..config.max_threads).map(|_| AtomicU64::new(0)).collect()),
            #[cfg(feature = "check")]
            broken_early_write_back: std::sync::atomic::AtomicBool::new(false),
            config,
        }
    }

    /// This instance's configuration.
    pub fn config(&self) -> &StmConfig {
        &self.config
    }

    /// The gate this instance charges time through.
    pub fn gate(&self) -> &Arc<dyn Gate> {
        &self.gate
    }

    /// Number of commits so far.
    pub fn commit_count(&self) -> u64 {
        self.commit_seq.load(Ordering::SeqCst)
    }

    /// Version-clock stat counters (CAS wins, skip-aheads, read-only
    /// commits spared a tick).
    ///
    /// Read by `experiments bench-scale`; deliberately *not* folded into
    /// the default telemetry snapshot, whose text the determinism goldens
    /// digest byte-for-byte.
    pub fn clock_stats(&self) -> crate::clock::ClockStats {
        self.clock.stats()
    }

    /// Snapshot-read stat counters (ring hits, fallbacks, publications,
    /// GC evictions/lag, spared validations). All-zero under
    /// [`ReadMode::Latest`], where no snapshot machinery exists.
    ///
    /// Like [`Stm::clock_stats`], read by the bench harness and
    /// deliberately not part of the default telemetry snapshot.
    pub fn mvcc_stats(&self) -> MvccStats {
        self.mvcc.as_ref().map(SnapshotRegistry::stats).unwrap_or_default()
    }

    /// Memory-footprint report for the lock table's visible-reader
    /// registries (all-zero when the resolution needs none).
    pub fn reader_registry_footprint(&self) -> crate::lock_table::RegistryFootprint {
        self.locks.reader_registry_footprint()
    }

    /// Global sequence number of `thread`'s most recent commit (0 if the
    /// thread has not committed yet). Read by the committing thread itself
    /// immediately after [`Stm::run`] returns, this is exactly that
    /// invocation's position in the global commit order — the hook
    /// `gstm-wal` uses to tag write-ahead-log records so replay can
    /// reconstruct the serialization order.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn last_commit_seq(&self, thread: ThreadId) -> u64 {
        self.last_seq[thread.index()].load(Ordering::SeqCst)
    }

    /// A clonable handle for dooming transactions from outside the engine —
    /// the fault-injection lever used by `gstm-sim`'s `ChaosGate`. A doomed
    /// thread's current attempt aborts at its next transactional operation
    /// with [`AbortReason::DoomedByCommitter`] naming a synthetic
    /// out-of-range participant, exactly as a forced abort from a racing
    /// committer would.
    pub fn doom_handle(&self) -> DoomHandle {
        DoomHandle { slots: Arc::clone(&self.doomed) }
    }

    /// Unlock attempts the lock table refused because the caller did not
    /// own the stripe. Always zero in a correct engine; the chaos harness
    /// and the opacity oracle assert on it.
    pub fn lock_discipline_violations(&self) -> u64 {
        self.locks.discipline_violations()
    }

    /// Arms (or disarms) the deliberate early-write-back fault: commit will
    /// write its redo log back *before* taking the write-set locks,
    /// violating lock discipline and opacity. Exists solely so negative
    /// tests can prove the oracle catches a broken engine.
    #[cfg(feature = "check")]
    pub fn set_broken_early_write_back(&self, on: bool) {
        self.broken_early_write_back.store(on, Ordering::SeqCst);
    }

    /// Runs `body` as a transaction, retrying until it commits.
    ///
    /// `thread` must be `< config.max_threads`; `tx` is the static id of
    /// this atomic block (the paper's `TM_BEGIN(ID)` argument). The body
    /// receives a [`Txn`] and must propagate [`Abort`] errors from
    /// [`Txn::read`]/[`Txn::write`] with `?`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn run<R>(
        &self,
        thread: ThreadId,
        tx: TxId,
        mut body: impl FnMut(&mut Txn<'_>) -> Result<R, Abort>,
    ) -> R {
        match self.run_attempts(thread, tx, &mut body, u32::MAX, TxnKind::Update) {
            Ok(r) => r,
            Err(_) => unreachable!("unbounded retry cannot exhaust its budget"),
        }
    }

    /// Runs `body` as a **read-only** transaction, retrying until it
    /// commits. Calling [`Txn::write`] inside the body panics.
    ///
    /// Under [`ReadMode::Latest`] this is the legacy read-only fast path:
    /// reads are still validated inline and may abort on conflict, but the
    /// commit never ticks the clock. Under [`ReadMode::Snapshot`] the
    /// transaction picks a snapshot timestamp at begin and serves every
    /// read from the version rings — zero validation, zero
    /// contention-induced aborts.
    ///
    /// ```
    /// use gstm_core::{ReadMode, Stm, StmConfig, TVar, ThreadId, TxId};
    /// let stm = Stm::new(StmConfig::builder(1).read_mode(ReadMode::Snapshot).build());
    /// let v = TVar::new(3i64);
    /// let got = stm.run_read_only(ThreadId::new(0), TxId::new(0), |tx| tx.read(&v));
    /// assert_eq!(got, 3);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range or the body writes.
    pub fn run_read_only<R>(
        &self,
        thread: ThreadId,
        tx: TxId,
        mut body: impl FnMut(&mut Txn<'_>) -> Result<R, Abort>,
    ) -> R {
        match self.run_attempts(thread, tx, &mut body, u32::MAX, TxnKind::ReadOnly) {
            Ok(r) => r,
            Err(_) => unreachable!("unbounded retry cannot exhaust its budget"),
        }
    }

    /// Bounded-retry variant of [`Stm::run_read_only`].
    ///
    /// # Errors
    ///
    /// Returns an error if the attempt budget is exhausted before a commit
    /// (only possible under [`ReadMode::Latest`], where read-only
    /// transactions still validate).
    pub fn try_run_read_only<R>(
        &self,
        thread: ThreadId,
        tx: TxId,
        mut body: impl FnMut(&mut Txn<'_>) -> Result<R, Abort>,
        max_attempts: u32,
    ) -> Result<R, StmError> {
        self.run_attempts(thread, tx, &mut body, max_attempts, TxnKind::ReadOnly)
    }

    /// Runs `body`, giving up with [`StmError::RetryBudgetExhausted`] after
    /// `max_attempts` aborted attempts.
    ///
    /// # Errors
    ///
    /// Returns an error if the attempt budget is exhausted before a commit.
    pub fn try_run<R>(
        &self,
        thread: ThreadId,
        tx: TxId,
        mut body: impl FnMut(&mut Txn<'_>) -> Result<R, Abort>,
        max_attempts: u32,
    ) -> Result<R, StmError> {
        self.run_attempts(thread, tx, &mut body, max_attempts, TxnKind::Update)
    }

    /// Runs a single attempt without retrying.
    ///
    /// # Errors
    ///
    /// Returns [`StmError::Aborted`] if the attempt conflicts.
    pub fn try_run_once<R>(
        &self,
        thread: ThreadId,
        tx: TxId,
        mut body: impl FnMut(&mut Txn<'_>) -> Result<R, Abort>,
    ) -> Result<R, StmError> {
        self.run_attempts(thread, tx, &mut body, 1, TxnKind::Update).map_err(|e| match e {
            StmError::RetryBudgetExhausted { .. } => e,
            aborted => aborted,
        })
    }

    fn run_attempts<R>(
        &self,
        thread: ThreadId,
        tx: TxId,
        body: &mut dyn FnMut(&mut Txn<'_>) -> Result<R, Abort>,
        max_attempts: u32,
        kind: TxnKind,
    ) -> Result<R, StmError> {
        assert!(
            thread.index() < self.config.max_threads,
            "thread {thread} out of range (max_threads = {})",
            self.config.max_threads
        );
        let who = Participant::new(thread, tx);
        let costs = self.config.costs;
        let mut attempt: u32 = 0;
        let mut last_abort: Option<Abort> = None;
        // One scratch per invocation: every retry (guided holds included)
        // reuses the same read/write/lock buffers instead of allocating.
        let mut scratch = TxnScratch::default();
        while attempt < max_attempts {
            // Admission: guided execution's hold loop lives in the policy.
            let polls = self.policy.admit(who, &mut || {
                self.gate.pass(thread, costs.poll);
                std::thread::yield_now();
            });
            if polls > 0 {
                self.sink.record(&TxEvent::Held { who, polls, at: self.gate.now() });
            }

            self.doomed[thread.index()].store(0, Ordering::SeqCst);
            self.cm.on_begin(thread, self.gate.now());
            self.gate.pass(thread, costs.begin);
            // Snapshot mode: a read-only transaction registers with the
            // reader registry and takes its clamped timestamp as rv, so
            // the GC watermark can never outrun it. The guard unregisters
            // on drop — unwind included, so a panicking body (e.g. the
            // documented write-in-read-only panic) cannot pin the
            // watermark forever. Everything else runs the legacy TL2
            // begin (one clock sample).
            let reader_guard = match (kind, self.mvcc.as_ref()) {
                (TxnKind::ReadOnly, Some(reg)) => Some(reg.begin_guarded(thread, &self.clock)),
                _ => None,
            };
            let snapshot = reader_guard.as_ref().map(|g| g.ts());
            let rv = snapshot.unwrap_or_else(|| self.clock.sample());
            self.sink.record(&TxEvent::Begin { who, attempt, at: self.gate.now() });

            scratch.reset();
            let mut txn = Txn {
                stm: self,
                who,
                rv,
                attempt,
                kind,
                snapshot,
                snapshot_reads: 0,
                scratch: &mut scratch,
            };
            let outcome = match body(&mut txn) {
                Ok(result) => txn.commit().map(|info| (result, info)),
                Err(abort) => {
                    txn.rollback();
                    Err(abort)
                }
            };
            drop(reader_guard);
            match outcome {
                Ok((result, info)) => {
                    self.cm.on_commit(thread);
                    self.last_seq[thread.index()].store(info.seq.raw(), Ordering::SeqCst);
                    self.sink.record(&TxEvent::Commit {
                        who,
                        seq: info.seq,
                        aborts: attempt,
                        reads: info.reads,
                        writes: info.writes,
                        at: self.gate.now(),
                    });
                    return Ok(result);
                }
                Err(abort) => {
                    self.sink.record(&TxEvent::Abort {
                        who,
                        attempt,
                        abort: abort.clone(),
                        at: self.gate.now(),
                    });
                    let backoff = self.cm.on_abort(thread, &abort, attempt);
                    self.gate.pass(thread, costs.abort + backoff);
                    if backoff > 0 {
                        std::thread::yield_now();
                    }
                    last_abort = Some(abort);
                    attempt += 1;
                }
            }
        }
        match (max_attempts, last_abort) {
            (1, Some(a)) => Err(StmError::Aborted(a)),
            _ => Err(StmError::RetryBudgetExhausted { attempts: max_attempts }),
        }
    }

    /// Marks `victim` doomed on behalf of committing `by` (AbortReaders).
    fn doom(&self, victim: ThreadId, by: Participant, seq: CommitSeq) {
        let enc = DOOM_FLAG
            | ((seq.raw() & 0xFFFF_FFFF) << 24)
            | ((by.thread.raw() as u64) << 8)
            | (by.tx.raw() as u64 & 0xFF);
        self.doomed[victim.index()].store(enc, Ordering::SeqCst);
    }

    #[inline]
    fn check_doomed(&self, thread: ThreadId) -> Result<(), Abort> {
        // Fast path: a plain load (no RMW) when nobody doomed us — this
        // runs on every transactional operation. Only consume the flag
        // with the (expensive) swap once it is actually set; the slot has
        // a single consumer, so the re-check after the swap cannot race.
        let slot = &self.doomed[thread.index()];
        if slot.load(Ordering::SeqCst) & DOOM_FLAG == 0 {
            return Ok(());
        }
        let raw = slot.swap(0, Ordering::SeqCst);
        if raw & DOOM_FLAG == 0 {
            return Ok(());
        }
        let by = Participant::new(
            ThreadId::new(((raw >> 8) & 0xFFFF) as u16),
            TxId::new((raw & 0xFF) as u16),
        );
        let seq = CommitSeq::new((raw >> 24) & 0xFFFF_FFFF);
        Err(Abort::caused_by(AbortReason::DoomedByCommitter { by: Some(by) }, by, seq))
    }

    fn culprit_of(&self, stripe: StripeIndex) -> Option<(Participant, CommitSeq)> {
        self.locks.last_writer(stripe)
    }
}

struct WriteEntry {
    cell: Arc<VarCell>,
    stripe: StripeIndex,
    value: ErasedValue,
}

/// Per-invocation transaction buffers, allocated once in
/// [`Stm::run_attempts`] and reused across every retry of the same
/// invocation (including guided retries, where a held transaction may
/// re-attempt many times). `reset` empties the sets but keeps their
/// allocations, so an abort-retry cycle costs no allocator traffic.
///
/// Invariants the commit path relies on:
///
/// * `writes` and `write_index` agree: `write_index[var] = i` iff
///   `writes[i]` is that var's redo-log slot;
/// * `commit_stripes`/`validate_stripes`/`acquired`/`held` are commit-local
///   scratch — dead outside [`Txn::commit`], rebuilt from scratch inside;
/// * `eager_filter` over-approximates the stripes in `eager_locks`
///   (filter hit → exact scan, filter miss → definitely not held).
#[derive(Default)]
struct TxnScratch {
    /// Distinct stripes read (insertion-ordered; sorted copies are taken
    /// at validation to reproduce the historical `BTreeMap` order).
    reads: ReadSet,
    /// Redo log, in first-write order.
    writes: Vec<WriteEntry>,
    /// var raw id → index into `writes` (read-own-writes lookup).
    write_index: FxMap,
    /// Encounter-time locks held: (stripe, pre-lock version).
    eager_locks: Vec<(StripeIndex, u64)>,
    /// Membership filter over `eager_locks` stripes.
    eager_filter: StripeFilter,
    /// Stripes where we registered as a visible reader.
    registered: Vec<StripeIndex>,
    /// Commit scratch: write-set stripes (sorted + deduped once).
    commit_stripes: Vec<StripeIndex>,
    /// Commit scratch: read-set stripes sorted for validation.
    validate_stripes: Vec<u32>,
    /// Commit scratch: locks taken at commit time (stripe, pre-version).
    acquired: Vec<(StripeIndex, u64)>,
    /// Commit scratch: all locks held (eager + acquired).
    held: Vec<(StripeIndex, u64)>,
}

impl TxnScratch {
    /// Empties every per-attempt set, keeping allocations for the retry.
    fn reset(&mut self) {
        self.reads.clear();
        self.writes.clear();
        self.write_index.clear();
        self.eager_locks.clear();
        self.eager_filter.clear();
        self.registered.clear();
        self.commit_stripes.clear();
        self.validate_stripes.clear();
        self.acquired.clear();
        self.held.clear();
    }
}

/// One transaction attempt: the context handed to the transaction body.
///
/// Obtained from [`Stm::run`] and friends; provides transactional
/// [`read`](Txn::read)/[`write`](Txn::write) plus [`work`](Txn::work) for
/// declaring application compute to the machine model.
pub struct Txn<'stm> {
    stm: &'stm Stm,
    // (fields below; Debug is implemented manually to avoid dumping the log)
    who: Participant,
    rv: u64,
    attempt: u32,
    /// Declared intent: [`TxnKind::ReadOnly`] bodies may not write.
    kind: TxnKind,
    /// Snapshot timestamp — `Some` exactly for read-only transactions on a
    /// [`ReadMode::Snapshot`] engine; equals `rv` then.
    snapshot: Option<u64>,
    /// Reads served by the snapshot path (which bypasses the read set).
    snapshot_reads: u32,
    /// Read/write/lock sets, owned by the invocation and reused across
    /// attempts.
    scratch: &'stm mut TxnScratch,
}

impl std::fmt::Debug for Txn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Txn")
            .field("who", &self.who)
            .field("rv", &self.rv)
            .field("attempt", &self.attempt)
            .field("reads", &self.scratch.reads.len())
            .field("writes", &self.scratch.writes.len())
            .finish()
    }
}

impl<'stm> Txn<'stm> {
    /// The executing thread.
    pub fn thread(&self) -> ThreadId {
        self.who.thread
    }

    /// The static transaction-site id.
    pub fn tx_id(&self) -> TxId {
        self.who.tx
    }

    /// Zero-based attempt number (= aborts suffered so far this invocation).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The read-version (`rv`) snapshot this attempt runs against.
    pub fn read_version(&self) -> u64 {
        self.rv
    }

    /// This attempt's declared intent.
    pub fn kind(&self) -> TxnKind {
        self.kind
    }

    /// The MVCC snapshot timestamp, if this is a snapshot-mode read-only
    /// transaction (`None` on [`ReadMode::Latest`] engines and for update
    /// transactions).
    pub fn snapshot_ts(&self) -> Option<u64> {
        self.snapshot
    }

    /// Charges `ticks` of application compute to the machine model.
    ///
    /// In simulation this advances the thread's virtual clock (making the
    /// transaction longer and hence more conflict-prone, as real compute
    /// would); in native mode it is (nearly) free.
    pub fn work(&mut self, ticks: Ticks) {
        self.stm.gate.pass(self.who.thread, ticks);
    }

    /// Transactionally reads `var`, returning a clone of the value.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the variable's stripe is locked or its version
    /// postdates this transaction's snapshot; the caller must propagate the
    /// error out of the transaction body with `?`.
    pub fn read<T: Clone + Send + Sync + 'static>(&mut self, var: &TVar<T>) -> Result<T, Abort> {
        self.read_arc(var).map(|a| (*a).clone())
    }

    /// Like [`Txn::read`] but returns the shared snapshot without cloning
    /// the payload — preferred for large values.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Txn::read`].
    pub fn read_arc<T: Send + Sync + 'static>(&mut self, var: &TVar<T>) -> Result<Arc<T>, Abort> {
        let stm = self.stm;
        // Snapshot path: resolve against the version ring at `ts`. No
        // lock-word sandwich, no read-set entry, no contention-manager or
        // doom crossing — nothing here can abort. Every ring is seeded
        // with `(0, initial value)` and GC keeps the newest version <= the
        // watermark, so a registered reader (ts >= watermark by the
        // registry protocol) always resolves; falling back to the cell's
        // current data here would race a commit with wv > ts into the
        // snapshot.
        if let Some(ts) = self.snapshot {
            stm.gate.pass(self.who.thread, stm.config.costs.read);
            let (wv, value) = var
                .cell()
                .read_at(ts)
                .expect("snapshot read found no version <= ts: watermark outran a reader");
            if let Some(reg) = stm.mvcc.as_ref() {
                reg.note_read(wv != 0);
            }
            self.snapshot_reads = self.snapshot_reads.saturating_add(1);
            #[cfg(feature = "check")]
            if stm.config.check_events {
                stm.sink.record(&TxEvent::SnapshotReadCheck {
                    who: self.who,
                    var: var.id(),
                    wv,
                    ts,
                    at: stm.gate.now(),
                });
            }
            return Ok(downcast(value));
        }
        stm.gate.pass(self.who.thread, stm.config.costs.read);
        stm.cm.on_access(self.who.thread);
        stm.check_doomed(self.who.thread)?;

        // Read-own-writes: serve from the redo log.
        if !self.scratch.write_index.is_empty() {
            if let Some(i) = self.scratch.write_index.get(var.id().raw()) {
                return Ok(downcast(Arc::clone(&self.scratch.writes[i as usize].value)));
            }
        }

        // TL2 pre/post lock-word sandwich, on raw words: the uncontended
        // fast path (unlocked stripe, unchanged word) never decodes.
        let stripe = stm.locks.stripe_of(var.id());
        let pre_raw = stm.locks.load_raw(stripe);
        let own = if LockTable::raw_locked(pre_raw) {
            // Slow path: locked — only acceptable if we are the owner
            // (an encounter-time lock of our own).
            if LockTable::decode_raw(pre_raw).owner != Some(self.who.thread) {
                return Err(self.abort_at(AbortReason::Locked { var: var.id() }, stripe));
            }
            true
        } else {
            false
        };
        let pre_version = LockTable::raw_version(pre_raw);
        if pre_version > self.rv {
            return Err(self.abort_at(AbortReason::ReadVersion { var: var.id() }, stripe));
        }
        #[cfg(not(feature = "check"))]
        let value = var.cell().load();
        #[cfg(feature = "check")]
        let (value, stamp) = if stm.config.check_events {
            var.cell().load_stamped()
        } else {
            (var.cell().load(), 0)
        };
        let post_raw = stm.locks.load_raw(stripe);
        if post_raw != pre_raw {
            // Word changed under us — decode and apply the exact TL2
            // post-conditions (same version, not locked by another).
            let post = LockTable::decode_raw(post_raw);
            if post.version != pre_version || (post.locked && post.owner != Some(self.who.thread)) {
                return Err(self.abort_at(AbortReason::ReadVersion { var: var.id() }, stripe));
            }
        }
        if self.scratch.reads.insert(stripe.0) && stm.locks.tracks_readers() && !own {
            stm.locks.register_reader(stripe, self.who.thread);
            self.scratch.registered.push(stripe);
        }
        // The sandwich succeeded: record what this read observed for the
        // oracle. Reads served from the redo log (read-own-writes, above)
        // are deliberately not recorded — they never touch shared state.
        #[cfg(feature = "check")]
        if stm.config.check_events {
            stm.sink.record(&TxEvent::ReadCheck {
                who: self.who,
                var: var.id(),
                stripe: stripe.0,
                version: pre_version,
                stamp,
                rv: self.rv,
                at: stm.gate.now(),
            });
        }
        Ok(downcast(value))
    }

    /// Transactionally writes `value` to `var` (buffered until commit).
    ///
    /// # Errors
    ///
    /// In encounter-time mode, returns [`Abort`] if the stripe lock cannot
    /// be acquired or the stripe postdates the snapshot. In commit-time mode
    /// the write itself cannot fail (conflicts surface at commit).
    pub fn write<T: Send + Sync + 'static>(
        &mut self,
        var: &TVar<T>,
        value: T,
    ) -> Result<(), Abort> {
        assert!(
            self.kind == TxnKind::Update,
            "Txn::write inside a read-only transaction (declared via run_read_only)"
        );
        let stm = self.stm;
        stm.gate.pass(self.who.thread, stm.config.costs.write);
        stm.cm.on_access(self.who.thread);
        stm.check_doomed(self.who.thread)?;

        let stripe = stm.locks.stripe_of(var.id());
        if stm.config.detection == Detection::EncounterTime && !self.holds_eager_lock(stripe) {
            match stm.locks.try_lock(stripe, self.who.thread) {
                Ok(old_version) => {
                    if old_version > self.rv {
                        self.unlock_restore(stripe, old_version);
                        return Err(
                            self.abort_at(AbortReason::ReadVersion { var: var.id() }, stripe)
                        );
                    }
                    self.scratch.eager_locks.push((stripe, old_version));
                    self.scratch.eager_filter.insert(stripe.0);
                }
                Err(_) => {
                    return Err(self.abort_at(AbortReason::WriteLockBusy { var: var.id() }, stripe));
                }
            }
        }

        let erased: ErasedValue = Arc::new(value);
        match self.scratch.write_index.get(var.id().raw()) {
            Some(i) => self.scratch.writes[i as usize].value = erased,
            None => {
                self.scratch.write_index.insert(var.id().raw(), self.scratch.writes.len() as u32);
                self.scratch.writes.push(WriteEntry {
                    cell: Arc::clone(var.cell()),
                    stripe,
                    value: erased,
                });
            }
        }
        Ok(())
    }

    /// Whether this attempt already holds the encounter-time lock on
    /// `stripe`. The filter answers the common miss in O(1); a hit falls
    /// back to the exact (short) scan.
    #[inline]
    fn holds_eager_lock(&self, stripe: StripeIndex) -> bool {
        !self.scratch.eager_locks.is_empty()
            && self.scratch.eager_filter.may_contain(stripe.0)
            && self.scratch.eager_locks.iter().any(|(s, _)| *s == stripe)
    }

    /// Reads, transforms and writes back in one step.
    ///
    /// # Errors
    ///
    /// Propagates any [`Abort`] from the underlying read or write.
    pub fn modify<T: Clone + Send + Sync + 'static>(
        &mut self,
        var: &TVar<T>,
        f: impl FnOnce(T) -> T,
    ) -> Result<(), Abort> {
        let v = self.read(var)?;
        self.write(var, f(v))
    }

    fn abort_at(&self, reason: AbortReason, stripe: StripeIndex) -> Abort {
        match self.stm.culprit_of(stripe) {
            Some((p, seq)) => Abort::caused_by(reason, p, seq),
            None => Abort::new(reason),
        }
    }

    /// Commit protocol (TL2 §II-A). Consumes the attempt.
    ///
    /// Hot-path invariants (see DESIGN.md "Hot-path performance"):
    /// every buffer used here lives in the invocation's [`TxnScratch`] and
    /// is rebuilt — never carried over — per attempt; the write-back loop
    /// is the only Gate crossing that may be batched, because it runs
    /// entirely under the write-set locks and is therefore invisible to
    /// every other thread until `unlock_publish`.
    fn commit(mut self) -> Result<CommitInfo, Abort> {
        let stm = self.stm;
        let costs = stm.config.costs;
        let thread = self.who.thread;
        let n_reads = self.scratch.reads.len() as u32 + self.snapshot_reads;
        let n_writes = self.scratch.writes.len() as u32;

        // A committer may have doomed us while we were between operations;
        // honor it before publishing anything (AbortReaders resolution).
        if let Err(abort) = stm.check_doomed(thread) {
            self.rollback();
            return Err(abort);
        }

        // Read-only fast path: every read was validated inline against rv,
        // so a read-only transaction is already serializable. TL2 commits it
        // without touching the clock (the GV4 read-mostly fast path; the
        // clock only counts the spared tick, and only under SkipAhead).
        if self.scratch.writes.is_empty() {
            stm.clock.note_read_only_commit();
            // Snapshot commits additionally count the validations the
            // legacy read-only path would have performed on these reads.
            if self.snapshot.is_some() {
                if let Some(reg) = stm.mvcc.as_ref() {
                    reg.note_spared_validations(self.snapshot_reads as u64);
                }
            }
            self.release(None);
            let seq = CommitSeq::new(stm.commit_seq.fetch_add(1, Ordering::SeqCst) + 1);
            self.record_commit_check(seq, self.rv, 0);
            return Ok(CommitInfo { seq, wv: self.rv, reads: n_reads, writes: 0 });
        }

        // Deliberate fault (negative tests only): install the redo log
        // before a single write-set lock is taken, so the oracle's
        // lock-discipline (unheld write-back) and dirty-read checks have a
        // real engine bug to catch.
        #[cfg(feature = "check")]
        let wrote_early = if stm.broken_early_write_back.load(Ordering::SeqCst) {
            // The fault path never publishes versions (`None`): it models a
            // broken legacy write-back, not a broken ring.
            self.write_back(None);
            true
        } else {
            false
        };
        #[cfg(not(feature = "check"))]
        let wrote_early = false;

        // 1. Lock the write set (stripes deduped, sorted for determinism;
        //    encounter-time locks are already held). The stripe list and
        //    the acquired/held buffers are invocation scratch — sort +
        //    dedup happens once here, and retries reuse the allocations.
        self.scratch.commit_stripes.clear();
        let scratch = &mut *self.scratch;
        scratch.commit_stripes.extend(scratch.writes.iter().map(|w| w.stripe));
        scratch.commit_stripes.sort_unstable();
        scratch.commit_stripes.dedup();
        self.scratch.acquired.clear();
        let eager_is_empty = self.scratch.eager_locks.is_empty();
        for i in 0..self.scratch.commit_stripes.len() {
            let s = self.scratch.commit_stripes[i];
            if !eager_is_empty && self.holds_eager_lock(s) {
                continue;
            }
            stm.gate.pass(thread, costs.commit_entry);
            match stm.locks.try_lock(s, thread) {
                Ok(old) => self.scratch.acquired.push((s, old)),
                Err(_) => {
                    for &(a, old) in &self.scratch.acquired {
                        self.unlock_restore(a, old);
                    }
                    let var =
                        self.scratch.writes.iter().find(|w| w.stripe == s).map(|w| w.cell.id());
                    let reason =
                        AbortReason::WriteLockBusy { var: var.unwrap_or(VarId::from_raw(0)) };
                    let abort = self.abort_at(reason, s);
                    self.release(None);
                    return Err(abort);
                }
            }
        }
        let scratch = &mut *self.scratch;
        scratch.held.clear();
        scratch.held.append(&mut scratch.eager_locks);
        scratch.held.extend_from_slice(&scratch.acquired);
        scratch.eager_filter.clear();

        // 2. Obtain the write version. Under the skip-ahead strategy a CAS
        //    win yields wv == rv + 1, which step 3 rewards by skipping
        //    validation; a loss claims a unique wv in one wait-free RMW.
        //
        //    Snapshot mode: publish a commit lower bound *before* ticking,
        //    so a reader beginning between the tick and our version-ring
        //    publication clamps its timestamp below our wv instead of
        //    expecting versions we have not written yet (mvcc.rs docs).
        //    The guard clears the bound on every post-tick exit below —
        //    validate failure, reader-wait timeout, success — and on
        //    unwind, so a panicking commit cannot clamp future readers.
        let lb_guard =
            stm.mvcc.as_ref().map(|reg| reg.publish_commit_lb_guarded(thread, &stm.clock));
        let wv = stm.clock.tick_for(self.rv);

        // 3. Validate the read set (skippable when nobody committed since
        //    our snapshot — the TL2 rv + 1 == wv optimization). Sorting
        //    the scratch copy ascending reproduces the exact iteration
        //    order the old BTreeMap read set had, so the Gate sees the
        //    same charge sequence.
        if wv != self.rv + 1 {
            let scratch = &mut *self.scratch;
            scratch.validate_stripes.clear();
            scratch.reads.collect_into(&mut scratch.validate_stripes);
            scratch.validate_stripes.sort_unstable();
            for i in 0..self.scratch.validate_stripes.len() {
                let s = StripeIndex(self.scratch.validate_stripes[i]);
                stm.gate.pass(thread, costs.validate_entry);
                // Raw fast path: an unlocked word only needs the version
                // compare; decode the owner only when the stripe is locked.
                let raw = stm.locks.load_raw(s);
                let bad = if !LockTable::raw_locked(raw) {
                    LockTable::raw_version(raw) > self.rv
                } else {
                    let w = LockTable::decode_raw(raw);
                    w.owner != Some(thread) || w.version > self.rv
                };
                if bad {
                    let abort =
                        self.abort_at(AbortReason::ValidateFailed { var: VarId::from_raw(0) }, s);
                    for &(h, old) in &self.scratch.held {
                        self.unlock_restore(h, old);
                    }
                    drop(lb_guard);
                    self.release(None);
                    return Err(abort);
                }
            }
        }

        // 4. Resolve against visible readers (LibTM modes).
        let seq = CommitSeq::new(stm.commit_seq.fetch_add(1, Ordering::SeqCst) + 1);
        match stm.config.resolution {
            Resolution::SelfAbort => {}
            Resolution::AbortReaders => {
                for &(s, _) in &self.scratch.held {
                    for victim in stm.locks.readers_excluding(s, thread) {
                        stm.doom(victim, self.who, seq);
                    }
                }
            }
            Resolution::WaitForReaders => {
                let mut polls = 0u32;
                loop {
                    let busy = self
                        .scratch
                        .held
                        .iter()
                        .any(|&(s, _)| !stm.locks.readers_excluding(s, thread).is_empty());
                    if !busy {
                        break;
                    }
                    if polls >= stm.config.reader_wait_limit {
                        for &(h, old) in &self.scratch.held {
                            self.unlock_restore(h, old);
                        }
                        drop(lb_guard);
                        self.release(None);
                        return Err(Abort::new(AbortReason::ReaderWaitTimeout));
                    }
                    polls += 1;
                    stm.gate.pass(thread, costs.poll);
                    std::thread::yield_now();
                }
            }
        }

        // 5. Write back the redo log (unless the armed fault already did,
        //    early and unprotected). In snapshot mode this also publishes
        //    each written value into its cell's version ring under `wv`.
        if !wrote_early {
            self.write_back(stm.mvcc.as_ref().map(|_| wv));
        }

        // 6. Release, publishing wv and stamping ourselves as last writer.
        for &(s, _) in &self.scratch.held {
            stm.locks.stamp(s, self.who, seq);
            self.unlock_publish(s, wv);
        }
        // The versions are in the rings: readers no longer need the bound.
        drop(lb_guard);
        self.release(None);
        self.record_commit_check(seq, wv, n_writes);
        Ok(CommitInfo { seq, wv, reads: n_reads, writes: n_writes })
    }

    /// Step 5 of the commit protocol: installs the redo log into the cells.
    /// One batched Gate crossing covers the whole operation group — in a
    /// correct engine every written stripe is locked by us, so the stores
    /// are invisible to other threads until step 6 publishes, and batching
    /// the charges is schedule-invisible while charging the identical
    /// virtual-time total.
    ///
    /// `publish: Some(wv)` (snapshot mode) additionally pushes each written
    /// value into its cell's version ring at `wv`, GC'ing against one
    /// watermark computed for the whole batch, and charges the extra
    /// per-entry `version_publish` cost. `None` — every legacy commit —
    /// adds zero gate crossings, keeping the determinism goldens intact.
    fn write_back(&self, publish: Option<u64>) {
        let stm = self.stm;
        stm.gate.pass_batch(
            self.who.thread,
            stm.config.costs.commit_entry,
            self.scratch.writes.len() as u64,
        );
        if let (Some(wv), Some(reg)) = (publish, stm.mvcc.as_ref()) {
            stm.gate.pass_batch(
                self.who.thread,
                stm.config.costs.version_publish,
                self.scratch.writes.len() as u64,
            );
            let watermark = reg.watermark(&stm.clock);
            for w in &self.scratch.writes {
                let out =
                    w.cell.push_version(wv, Arc::clone(&w.value), watermark, reg.ring_capacity());
                reg.note_publication(out.evicted as u64, out.len as u64, out.over_capacity);
            }
        }
        #[cfg(feature = "check")]
        if stm.config.check_events {
            for w in &self.scratch.writes {
                let held = stm.locks.load(w.stripe).owner == Some(self.who.thread);
                let stamp = w.cell.store_stamped(Arc::clone(&w.value));
                stm.sink.record(&TxEvent::WriteBackCheck {
                    who: self.who,
                    var: w.cell.id(),
                    stripe: w.stripe.0,
                    stamp,
                    held,
                    at: stm.gate.now(),
                });
            }
            return;
        }
        for w in &self.scratch.writes {
            w.cell.store(Arc::clone(&w.value));
        }
    }

    /// Releases `stripe` restoring `old` (abort/unwind paths), recording
    /// the unlock for the oracle. The engine only ever releases stripes it
    /// owns, so the lock table's refusal path must be unreachable from here.
    fn unlock_restore(&self, stripe: StripeIndex, old: u64) {
        let ok = self.stm.locks.unlock_restore(stripe, self.who.thread, old);
        debug_assert!(ok, "engine released a stripe it did not own");
        self.record_unlock(stripe, ok, false);
    }

    /// Releases `stripe` publishing `wv` (commit step 6), recording the
    /// unlock for the oracle.
    fn unlock_publish(&self, stripe: StripeIndex, wv: u64) {
        let ok = self.stm.locks.unlock_publish(stripe, self.who.thread, wv);
        debug_assert!(ok, "engine released a stripe it did not own");
        self.record_unlock(stripe, ok, true);
    }

    #[cfg_attr(not(feature = "check"), allow(unused_variables))]
    fn record_unlock(&self, stripe: StripeIndex, owner_ok: bool, publish: bool) {
        #[cfg(feature = "check")]
        if self.stm.config.check_events {
            self.stm.sink.record(&TxEvent::UnlockCheck {
                who: self.who,
                stripe: stripe.0,
                owner_ok,
                publish,
                at: self.stm.gate.now(),
            });
        }
    }

    #[cfg_attr(not(feature = "check"), allow(unused_variables))]
    fn record_commit_check(&self, seq: CommitSeq, wv: u64, writes: u32) {
        #[cfg(feature = "check")]
        if self.stm.config.check_events {
            self.stm.sink.record(&TxEvent::CommitCheck {
                who: self.who,
                seq,
                rv: self.rv,
                wv,
                writes,
                at: self.stm.gate.now(),
            });
        }
    }

    /// Abort path: release encounter-time locks and reader registrations.
    fn rollback(mut self) {
        for i in 0..self.scratch.eager_locks.len() {
            let (s, old) = self.scratch.eager_locks[i];
            self.unlock_restore(s, old);
        }
        self.scratch.eager_locks.clear();
        self.scratch.eager_filter.clear();
        self.release(None);
    }

    fn release(&mut self, _unused: Option<()>) {
        let thread = self.who.thread;
        for s in self.scratch.registered.drain(..) {
            self.stm.locks.unregister_reader(s, thread);
        }
    }
}

/// Convenience: an [`Abort`] signalling a user-requested retry, for use as
/// `return Err(gstm_core::retry())` inside a transaction body.
pub fn retry() -> Abort {
    Abort::new(AbortReason::UserRetry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StmConfig;

    fn t(i: u16) -> ThreadId {
        ThreadId::new(i)
    }

    fn x(i: u16) -> TxId {
        TxId::new(i)
    }

    #[test]
    fn single_thread_counter() {
        let stm = Stm::new(StmConfig::new(1));
        let v = TVar::new(0i64);
        for _ in 0..100 {
            stm.run(t(0), x(0), |tx| {
                let cur = tx.read(&v)?;
                tx.write(&v, cur + 1)
            });
        }
        assert_eq!(*v.load_unlogged(), 100);
        assert_eq!(stm.commit_count(), 100);
    }

    #[test]
    fn read_own_write() {
        let stm = Stm::new(StmConfig::new(1));
        let v = TVar::new(1i32);
        let seen = stm.run(t(0), x(0), |tx| {
            tx.write(&v, 42)?;
            tx.read(&v)
        });
        assert_eq!(seen, 42);
    }

    #[test]
    fn write_skew_prevented_by_validation() {
        // Classic TL2 property: a transaction that read a stale value fails
        // commit validation once another commit bumps the stripe version.
        let stm = Stm::new(StmConfig::new(2));
        let a = TVar::new(0i64);

        let r = stm.try_run_once(t(0), x(0), |tx| {
            let v = tx.read(&a)?;
            // Simulate an interleaved committer from thread 1.
            stm.run(t(1), x(1), |tx2| {
                let w = tx2.read(&a)?;
                tx2.write(&a, w + 10)
            });
            tx.write(&a, v + 1)
        });
        assert!(r.is_err(), "stale writer must abort: {r:?}");
        assert_eq!(*a.load_unlogged(), 10);
    }

    #[test]
    fn retry_loop_eventually_commits() {
        let stm = Stm::new(StmConfig::new(2));
        let a = TVar::new(0i64);
        let mut interfered = false;
        stm.run(t(0), x(0), |tx| {
            let v = tx.read(&a)?;
            if !interfered {
                interfered = true;
                stm.run(t(1), x(1), |tx2| {
                    let w = tx2.read(&a)?;
                    tx2.write(&a, w + 100)
                });
            }
            tx.write(&a, v + 1)
        });
        assert_eq!(*a.load_unlogged(), 101, "retry must observe the interferer's commit");
    }

    #[test]
    fn read_only_tx_commits_without_clock_tick() {
        let stm = Stm::new(StmConfig::new(1));
        let v = TVar::new(7u8);
        let before = stm.clock.sample();
        let got = stm.run(t(0), x(0), |tx| tx.read(&v));
        assert_eq!(got, 7);
        assert_eq!(stm.clock.sample(), before);
        assert_eq!(stm.commit_count(), 1, "commit still sequenced");
    }

    /// ISSUE 7 satellite: under the skip-ahead strategy an empty-write-set
    /// transaction must never touch the clock word, and the spared tick is
    /// counted; writer commits count as CAS wins or skip-aheads.
    #[test]
    fn skip_ahead_read_only_never_ticks_and_is_counted() {
        use crate::config::ClockStrategy;
        let stm = Stm::new(StmConfig::builder(1).clock_strategy(ClockStrategy::SkipAhead).build());
        let v = TVar::new(7u8);

        stm.run(t(0), x(0), |tx| tx.read(&v));
        stm.run(t(0), x(0), |tx| tx.read(&v));
        assert_eq!(stm.clock.sample(), 0, "read-only commits must never tick");
        assert_eq!(stm.clock_stats().read_only_spared, 2);
        assert_eq!(stm.clock_stats().cas_success, 0);

        stm.run(t(0), x(1), |tx| tx.write(&v, 9));
        let stats = stm.clock_stats();
        assert_eq!(stats.read_only_spared, 2, "writer commit is not a spared tick");
        assert_eq!(stats.cas_success + stats.skip_ahead, 1, "writer commit ticked once");
        assert_eq!(*v.load_unlogged(), 9);
    }

    /// The per-shard table is transparent to transaction semantics:
    /// cross-partition writes commit atomically and conflicts still abort.
    #[test]
    fn sharded_table_preserves_conflict_detection() {
        let stm = Stm::new(StmConfig::builder(2).table_shards(4).build());
        let a = TVar::new_placed(0, 0i64);
        let b = TVar::new_placed(1, 0i64);
        // Cross-partition transaction commits atomically.
        stm.run(t(0), x(0), |tx| {
            tx.write(&a, 1)?;
            tx.write(&b, 2)
        });
        assert_eq!((*a.load_unlogged(), *b.load_unlogged()), (1, 2));
        // A stale read in partition 1 still aborts.
        let r = stm.try_run_once(t(0), x(0), |tx| {
            let _ = tx.read(&a)?;
            stm.run(t(1), x(1), |tx2| tx2.write(&b, 5));
            tx.read(&b)
        });
        assert!(r.is_err(), "conflict across partitions must still be caught: {r:?}");
    }

    #[test]
    fn stale_read_aborts_inline() {
        let stm = Stm::new(StmConfig::new(2));
        let a = TVar::new(0i64);
        let b = TVar::new(0i64);
        let r = stm.try_run_once(t(0), x(0), |tx| {
            let _ = tx.read(&a)?;
            stm.run(t(1), x(1), |tx2| tx2.write(&b, 5));
            // b's stripe version now exceeds our rv: the read must abort.
            tx.read(&b)
        });
        assert!(matches!(
            r,
            Err(StmError::Aborted(Abort { reason: AbortReason::ReadVersion { .. }, .. }))
        ));
    }

    #[test]
    fn culprit_attribution_names_the_committer() {
        let stm = Stm::new(StmConfig::new(2));
        let a = TVar::new(0i64);
        let r = stm.try_run_once(t(0), x(0), |tx| {
            let _ = tx.read(&a)?;
            stm.run(t(1), x(5), |tx2| tx2.write(&a, 5));
            tx.write(&a, 1)
        });
        match r {
            Err(StmError::Aborted(abort)) => {
                let (p, _) = abort.culprit.expect("culprit attributed");
                assert_eq!(p.thread, t(1));
                assert_eq!(p.tx, x(5));
            }
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn modify_helper() {
        let stm = Stm::new(StmConfig::new(1));
        let v = TVar::new(3i32);
        stm.run(t(0), x(0), |tx| tx.modify(&v, |n| n * 2));
        assert_eq!(*v.load_unlogged(), 6);
    }

    #[test]
    fn user_retry_respects_budget() {
        let stm = Stm::new(StmConfig::new(1));
        let r: Result<(), _> = stm.try_run(t(0), x(0), |_tx| Err(retry()), 3);
        assert!(matches!(r, Err(StmError::RetryBudgetExhausted { attempts: 3 })));
    }

    #[test]
    fn encounter_time_blocks_second_writer() {
        let cfg = StmConfig::builder(2).detection(Detection::EncounterTime).build();
        let stm = Stm::new(cfg);
        let a = TVar::new(0i64);
        let r = stm.try_run_once(t(0), x(0), |tx| {
            tx.write(&a, 1)?;
            // Thread 1 attempts an eager write to the same stripe: busy.
            let inner = stm.try_run_once(t(1), x(1), |tx2| tx2.write(&a, 2));
            assert!(
                matches!(
                    inner,
                    Err(StmError::Aborted(Abort { reason: AbortReason::WriteLockBusy { .. }, .. }))
                ),
                "{inner:?}"
            );
            Ok(())
        });
        assert!(r.is_ok());
        assert_eq!(*a.load_unlogged(), 1);
    }

    #[test]
    fn two_threads_race_to_correct_total() {
        use std::sync::Arc as StdArc;
        let stm = StdArc::new(Stm::new(StmConfig::new(2)));
        let v = TVar::new(0i64);
        let mut handles = Vec::new();
        for i in 0..2u16 {
            let stm = StdArc::clone(&stm);
            let v = v.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    stm.run(t(i), x(0), |tx| {
                        let cur = tx.read(&v)?;
                        tx.write(&v, cur + 1)
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*v.load_unlogged(), 1000);
    }

    #[test]
    fn commit_info_counts_sets() {
        let stm = Stm::new(StmConfig::new(1));
        let sink = Arc::new(crate::events::MemorySink::new());
        let stm = Stm::with_parts(
            *stm.config(),
            Arc::new(NullGate),
            sink.clone(),
            Arc::new(AdmitAll),
            Arc::new(Aggressive),
        );
        let a = TVar::new(0i64);
        let b = TVar::new(0i64);
        stm.run(t(0), x(0), |tx| {
            let _ = tx.read(&a)?;
            tx.write(&b, 1)
        });
        let evs = sink.take();
        let commit = evs
            .iter()
            .find_map(|e| match e {
                TxEvent::Commit { reads, writes, .. } => Some((*reads, *writes)),
                _ => None,
            })
            .unwrap();
        assert_eq!(commit, (1, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_thread_panics() {
        let stm = Stm::new(StmConfig::new(1));
        let v = TVar::new(0);
        stm.run(t(5), x(0), |tx| tx.read(&v));
    }

    /// Distinctive tick cost assigned to `CostModel::poll` so a counting
    /// gate can isolate WaitForReaders polls from every other crossing.
    const POLL_COST: Ticks = 997;

    /// Counts gate passes charged at exactly [`POLL_COST`].
    #[derive(Debug, Default)]
    struct PollCountingGate {
        polls: AtomicU64,
    }

    impl Gate for PollCountingGate {
        fn pass(&self, _thread: ThreadId, cost: Ticks) {
            if cost == POLL_COST {
                self.polls.fetch_add(1, Ordering::SeqCst);
            }
        }

        fn now(&self) -> u64 {
            0
        }

        fn thread_time(&self, _thread: ThreadId) -> u64 {
            0
        }
    }

    fn wait_limit_stm(limit: u32) -> (Stm, Arc<PollCountingGate>) {
        let gate = Arc::new(PollCountingGate::default());
        let costs = crate::gate::CostModel { poll: POLL_COST, ..crate::gate::CostModel::default() };
        let cfg = StmConfig::builder(2)
            .resolution(Resolution::WaitForReaders)
            .reader_wait_limit(limit)
            .costs(costs)
            .build();
        let stm = Stm::with_parts(
            cfg,
            gate.clone(),
            Arc::new(NullSink),
            Arc::new(AdmitAll),
            Arc::new(Aggressive),
        );
        (stm, gate)
    }

    /// Runs the boundary scenario: thread 0 holds a visible-reader
    /// registration on `a` while thread 1 tries to commit a write to it.
    /// Returns the poll count charged to the timed-out committer.
    fn polls_until_reader_wait_timeout(limit: u32) -> u64 {
        let (stm, gate) = wait_limit_stm(limit);
        let a = TVar::new(0i64);
        let r = stm.try_run_once(t(0), x(0), |tx| {
            let _ = tx.read(&a)?; // registers thread 0 as a visible reader
            let inner = stm.try_run_once(t(1), x(1), |tx2| {
                let v = tx2.read(&a)?;
                tx2.write(&a, v + 1)
            });
            assert!(
                matches!(
                    inner,
                    Err(StmError::Aborted(Abort { reason: AbortReason::ReaderWaitTimeout, .. }))
                ),
                "committer must time out on the parked reader: {inner:?}"
            );
            Ok(())
        });
        assert!(r.is_ok());
        assert_eq!(*a.load_unlogged(), 0, "timed-out committer must not publish");
        // Once the reader drains, the same write commits without waiting.
        stm.run(t(1), x(1), |tx2| {
            let v = tx2.read(&a)?;
            tx2.write(&a, v + 1)
        });
        assert_eq!(*a.load_unlogged(), 1);
        gate.polls.load(Ordering::SeqCst)
    }

    #[test]
    fn reader_wait_limit_zero_aborts_without_a_single_poll() {
        assert_eq!(polls_until_reader_wait_timeout(0), 0);
    }

    #[test]
    fn reader_wait_limit_one_charges_exactly_one_poll() {
        assert_eq!(polls_until_reader_wait_timeout(1), 1);
    }

    #[test]
    fn doom_handle_forces_abort_with_synthetic_culprit() {
        let stm = Stm::new(StmConfig::new(1));
        let h = stm.doom_handle();
        assert_eq!(h.threads(), 1);
        let v = TVar::new(0u32);
        let r = stm.try_run_once(t(0), x(0), |tx| {
            h.doom(tx.thread());
            tx.read(&v)
        });
        match r {
            Err(StmError::Aborted(a)) => {
                assert!(matches!(a.reason, AbortReason::DoomedByCommitter { .. }), "{a:?}");
                let (p, _) = a.culprit.expect("synthetic culprit attributed");
                assert_eq!(p.thread.raw(), 0xFFFF, "chaos sentinel thread");
                assert_eq!(p.tx.raw(), 0xFF, "chaos sentinel tx");
            }
            other => panic!("expected doomed abort, got {other:?}"),
        }
        // Out-of-range threads are ignored; the doom slot was consumed.
        h.doom(t(5));
        assert_eq!(stm.run(t(0), x(0), |tx| tx.read(&v)), 0);
    }

    fn snapshot_stm(threads: usize) -> Stm {
        Stm::new(StmConfig::builder(threads).read_mode(ReadMode::Snapshot).build())
    }

    /// Tentpole invariant: a snapshot read-only transaction never aborts
    /// and never observes writes committed after its begin, even when an
    /// update transaction interferes mid-body — the exact pattern that
    /// aborts the legacy read path.
    #[test]
    fn snapshot_read_only_ignores_interference_without_aborting() {
        let stm = snapshot_stm(2);
        let a = TVar::new(0i64);
        let b = TVar::new(0i64);
        stm.run(t(0), x(0), |tx| {
            tx.write(&a, 1)?;
            tx.write(&b, 10)
        });
        let got = stm.try_run_once(t(0), x(1), |tx| {
            let va = tx.read(&a)?;
            // Interfering committer: bumps both vars after our snapshot.
            stm.run(t(1), x(2), |tx2| {
                tx2.write(&a, 2)?;
                tx2.write(&b, 20)
            });
            let vb = tx.read(&b)?;
            Ok((va, vb))
        });
        // try_run_once with an update-kind txn: legacy path would abort on
        // the stale b read. Route the same body read-only instead:
        assert!(got.is_err(), "legacy update txn aborts on the stale read: {got:?}");
        let (va, vb) = stm.run_read_only(t(0), x(1), |tx| {
            let va = tx.read(&a)?;
            stm.run(t(1), x(2), |tx2| {
                tx2.write(&a, 3)?;
                tx2.write(&b, 30)
            });
            let vb = tx.read(&b)?;
            Ok((va, vb))
        });
        assert_eq!((va, vb), (2, 20), "snapshot must be consistent at begin time");
        let s = stm.mvcc_stats();
        assert_eq!(s.snapshot_txns, 1);
        assert_eq!(s.snapshot_reads, 2, "both reads served from rings");
        assert_eq!(s.spared_validations, 2);
        assert!(s.versions_published >= 4, "each update commit published its writes");
    }

    #[test]
    fn snapshot_read_falls_back_to_initial_value() {
        let stm = snapshot_stm(1);
        let v = TVar::new(41u32);
        let got = stm.run_read_only(t(0), x(0), |tx| tx.read(&v));
        assert_eq!(got, 41);
        let s = stm.mvcc_stats();
        assert_eq!(s.fallback_initial, 1, "never-written cell served from its initial value");
        assert_eq!(s.snapshot_reads, 0);
    }

    /// Regression (REVIEW: empty-ring fallback): a cell whose *first-ever*
    /// write commits after the reader's begin must still resolve to the
    /// initial value — the old `load()` fallback returned the just-written
    /// future value once the ring's only version had `wv > ts`.
    #[test]
    fn snapshot_never_sees_first_write_committed_after_begin() {
        let stm = snapshot_stm(2);
        let v = TVar::new(7i64); // never written before the reader begins
        let got = stm.run_read_only(t(0), x(0), |tx| {
            stm.run(t(1), x(1), |tx2| tx2.write(&v, 99));
            tx.read(&v)
        });
        assert_eq!(got, 7, "a first write committed after begin must stay invisible");
        assert_eq!(*v.load_unlogged(), 99, "the interfering write itself committed");
        assert_eq!(stm.mvcc_stats().fallback_initial, 1);
    }

    /// A panicking read-only body (the documented write-in-read-only
    /// panic) must unregister its snapshot timestamp, or the GC watermark
    /// stays pinned forever and every ring grows without bound.
    #[test]
    fn panicked_snapshot_reader_does_not_pin_the_watermark() {
        let stm = snapshot_stm(2);
        let v = TVar::new(0i64);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stm.run_read_only(t(0), x(0), |tx| tx.write(&v, 1));
        }));
        assert!(panicked.is_err());
        // With the reader slot released, steady-state commits GC down to
        // the trailing-window shape instead of accreting every version.
        for i in 1..=10i64 {
            stm.run(t(1), x(1), |tx| tx.write(&v, i));
        }
        let s = stm.mvcc_stats();
        assert!(
            s.ring_len_max <= 3,
            "leaked reader registration pinned {} versions",
            s.ring_len_max
        );
        assert_eq!(stm.run_read_only(t(0), x(0), |tx| tx.read(&v)), 10);
    }

    #[test]
    fn snapshot_read_only_never_ticks_clock() {
        let stm = snapshot_stm(1);
        let v = TVar::new(0i64);
        stm.run(t(0), x(0), |tx| tx.write(&v, 5));
        let before = stm.clock.sample();
        for _ in 0..10 {
            assert_eq!(stm.run_read_only(t(0), x(1), |tx| tx.read(&v)), 5);
        }
        assert_eq!(stm.clock.sample(), before);
        assert_eq!(stm.mvcc_stats().snapshot_txns, 10);
    }

    #[test]
    #[should_panic(expected = "read-only transaction")]
    fn write_in_read_only_txn_panics_in_snapshot_mode() {
        let stm = snapshot_stm(1);
        let v = TVar::new(0i64);
        stm.run_read_only(t(0), x(0), |tx| tx.write(&v, 1));
    }

    #[test]
    #[should_panic(expected = "read-only transaction")]
    fn write_in_read_only_txn_panics_in_latest_mode() {
        let stm = Stm::new(StmConfig::new(1));
        let v = TVar::new(0i64);
        stm.run_read_only(t(0), x(0), |tx| tx.write(&v, 1));
    }

    /// Under the default `ReadMode::Latest` the new entry point is the
    /// legacy validated read-only transaction: no snapshot machinery
    /// exists, reads validate inline, and `mvcc_stats` stays zero.
    #[test]
    fn latest_mode_read_only_is_legacy_and_unregistered() {
        let stm = Stm::new(StmConfig::new(2));
        let v = TVar::new(7i64);
        assert_eq!(stm.run_read_only(t(0), x(0), |tx| tx.read(&v)), 7);
        assert_eq!(stm.mvcc_stats(), MvccStats::default());
        // And it can still abort on interference, like any legacy txn.
        let a = TVar::new(0i64);
        let b = TVar::new(0i64);
        let r = stm.try_run_read_only(
            t(0),
            x(0),
            |tx| {
                let _ = tx.read(&a)?;
                stm.run(t(1), x(1), |tx2| tx2.write(&b, 5));
                tx.read(&b)
            },
            1,
        );
        assert!(r.is_err(), "latest-mode read-only still validates: {r:?}");
    }

    #[test]
    fn snapshot_mode_update_txns_behave_like_legacy() {
        let stm = snapshot_stm(2);
        let v = TVar::new(0i64);
        for i in 0..2u16 {
            for _ in 0..50 {
                stm.run(t(i), x(0), |tx| tx.modify(&v, |n| n + 1));
            }
        }
        assert_eq!(*v.load_unlogged(), 100);
        let s = stm.mvcc_stats();
        assert_eq!(s.versions_published, 100);
        assert_eq!(s.snapshot_txns, 0, "no read-only traffic ran");
    }

    /// GC boundary: with active snapshot readers pinning old timestamps the
    /// rings may exceed their soft capacity (gc-lag), and once readers
    /// drain the next publication collapses history back down.
    #[test]
    fn ring_gc_lag_is_counted_and_recovers() {
        let stm = Stm::new(
            StmConfig::builder(2).read_mode(ReadMode::Snapshot).version_ring_capacity(2).build(),
        );
        let v = TVar::new(0i64);
        stm.run(t(0), x(0), |tx| tx.write(&v, 1));
        stm.run_read_only(t(1), x(1), |tx| {
            // This reader's timestamp pins every version committed below:
            for i in 2..=6i64 {
                stm.run(t(0), x(0), |tx2| tx2.write(&v, i));
            }
            tx.read(&v)
        });
        let s = stm.mvcc_stats();
        assert!(s.gc_lag_events > 0, "capacity-2 ring must overflow under the pinned reader");
        assert!(s.ring_len_max > 2);
        // Reader gone: the next publication GCs everything stale.
        stm.run(t(0), x(0), |tx2| tx2.write(&v, 7));
        assert_eq!(stm.run_read_only(t(1), x(1), |tx| tx.read(&v)), 7);
        let s2 = stm.mvcc_stats();
        assert!(s2.versions_evicted >= 5, "drained reader unpins history: {s2:?}");
    }

    #[cfg(feature = "check")]
    fn check_stm(check_events: bool) -> (Stm, Arc<crate::events::MemorySink>) {
        let sink = Arc::new(crate::events::MemorySink::new());
        let stm = Stm::with_parts(
            StmConfig::builder(1).check_events(check_events).build(),
            Arc::new(NullGate),
            sink.clone(),
            Arc::new(AdmitAll),
            Arc::new(Aggressive),
        );
        (stm, sink)
    }

    #[cfg(feature = "check")]
    #[test]
    fn check_events_capture_the_full_commit_shape() {
        let (stm, sink) = check_stm(true);
        let a = TVar::new(0i64);
        stm.run(t(0), x(0), |tx| {
            let v = tx.read(&a)?;
            tx.write(&a, v + 1)
        });
        let (mut reads, mut wbs, mut commits, mut unlocks) = (0, 0, 0, 0);
        for e in sink.take() {
            match e {
                TxEvent::ReadCheck { stamp, .. } => {
                    assert_eq!(stamp, 0, "initial value carries stamp 0");
                    reads += 1;
                }
                TxEvent::WriteBackCheck { held, stamp, .. } => {
                    assert!(held, "write-back must run under the stripe lock");
                    assert!(stamp > 0, "transactional write-back stamps the cell");
                    wbs += 1;
                }
                TxEvent::CommitCheck { writes, rv, wv, .. } => {
                    assert_eq!(writes, 1);
                    assert!(wv > rv, "writer commit must tick the clock");
                    commits += 1;
                }
                TxEvent::UnlockCheck { owner_ok, publish, .. } => {
                    assert!(owner_ok && publish);
                    unlocks += 1;
                }
                _ => {}
            }
        }
        assert_eq!((reads, wbs, commits, unlocks), (1, 1, 1, 1));
    }

    #[cfg(feature = "check")]
    #[test]
    fn check_events_stay_silent_unless_enabled() {
        let (stm, sink) = check_stm(false);
        let a = TVar::new(0i64);
        stm.run(t(0), x(0), |tx| tx.modify(&a, |v| v + 1));
        for e in sink.take() {
            assert!(
                !matches!(
                    e,
                    TxEvent::ReadCheck { .. }
                        | TxEvent::WriteBackCheck { .. }
                        | TxEvent::CommitCheck { .. }
                        | TxEvent::UnlockCheck { .. }
                ),
                "check events must be off by default: {e}"
            );
        }
    }

    #[cfg(feature = "check")]
    #[test]
    fn broken_early_write_back_reports_unheld_write_backs() {
        let (stm, sink) = check_stm(true);
        stm.set_broken_early_write_back(true);
        let a = TVar::new(0i64);
        stm.run(t(0), x(0), |tx| tx.modify(&a, |v| v + 1));
        let evs = sink.take();
        let unheld =
            evs.iter().filter(|e| matches!(e, TxEvent::WriteBackCheck { held: false, .. })).count();
        assert_eq!(unheld, 1, "early write-back must be observed outside the lock");
        assert_eq!(*a.load_unlogged(), 1, "single-threaded result is still right");
        assert_eq!(stm.lock_discipline_violations(), 0, "unlocks themselves stay by-owner");
    }
}
