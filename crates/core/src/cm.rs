//! Contention managers — the related-work baselines of the paper's §IX.
//!
//! The paper contrasts guided execution with classic contention managers
//! (Polite, Karma, Greedy): CMs withhold threads to raise *throughput* and
//! "clearly compromise one thread over another which only leads to higher
//! variance", whereas guidance withholds threads to stay on common execution
//! paths and lower *variance*. We implement all three so the ablation bench
//! (`ablate-cm`) can test that claim quantitatively.
//!
//! Our CMs are adapted to a lazy (commit-time) STM: conflicts manifest as
//! self-aborts, so the manager's lever is the **backoff** charged before the
//! retry, informed by per-thread priority state (karma / start timestamps).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::Abort;
use crate::gate::Ticks;
use crate::ids::ThreadId;

/// Decides how long an aborted transaction backs off before retrying.
pub trait ContentionManager: Send + Sync {
    /// Name for reports.
    fn name(&self) -> &'static str;

    /// An invocation (re)starts; `now` is gate time.
    fn on_begin(&self, _thread: ThreadId, _now: u64) {}

    /// A transactional read or write executed (priority accumulation).
    fn on_access(&self, _thread: ThreadId) {}

    /// The invocation committed; transient priority resets here.
    fn on_commit(&self, _thread: ThreadId) {}

    /// The attempt aborted; returns the backoff to charge before retry.
    fn on_abort(&self, thread: ThreadId, abort: &Abort, attempt: u32) -> Ticks;
}

/// Retry immediately (TL2's default behaviour). Named after the classic
/// "Aggressive/Suicide" manager that always restarts the victim.
#[derive(Debug, Default, Clone, Copy)]
pub struct Aggressive;

impl ContentionManager for Aggressive {
    fn name(&self) -> &'static str {
        "aggressive"
    }

    fn on_abort(&self, _thread: ThreadId, _abort: &Abort, _attempt: u32) -> Ticks {
        0
    }
}

/// Polite: exponential backoff in the number of consecutive aborts
/// (Herlihy et al., PODC '03).
#[derive(Debug, Clone, Copy)]
pub struct Polite {
    /// Backoff after the first abort.
    pub base: Ticks,
    /// Exponent cap: backoff saturates at `base << cap`. The pair is not
    /// required to satisfy `base << cap <= u64::MAX` — shifts that would
    /// overflow 64 bits saturate to `Ticks::MAX` instead of panicking
    /// (debug) or wrapping to a tiny backoff (release).
    pub cap: u32,
}

impl Default for Polite {
    fn default() -> Self {
        Polite { base: 4, cap: 8 }
    }
}

impl ContentionManager for Polite {
    fn name(&self) -> &'static str {
        "polite"
    }

    fn on_abort(&self, _thread: ThreadId, _abort: &Abort, attempt: u32) -> Ticks {
        if self.base == 0 {
            return 0;
        }
        let shift = attempt.min(self.cap);
        // `checked_shl` rejects shift >= 64 (the debug-panic case); the
        // leading-zeros guard additionally saturates when high bits of a
        // large `base` would be shifted out silently.
        match self.base.checked_shl(shift) {
            Some(v) if shift <= self.base.leading_zeros() => v,
            _ => Ticks::MAX,
        }
    }
}

/// Karma: priority equals accumulated transactional work; low-karma threads
/// defer to high-karma conflictors (Scherer & Scott, PODC '05).
#[derive(Debug)]
pub struct Karma {
    karma: Vec<AtomicU64>,
    base: Ticks,
}

impl Karma {
    /// Creates a Karma manager for up to `max_threads` threads with the given
    /// per-loss backoff unit.
    pub fn new(max_threads: usize, base: Ticks) -> Self {
        Karma { karma: (0..max_threads).map(|_| AtomicU64::new(0)).collect(), base }
    }

    /// Current karma of a thread (for tests/reports).
    pub fn karma_of(&self, thread: ThreadId) -> u64 {
        self.karma[thread.index()].load(Ordering::Relaxed)
    }
}

impl ContentionManager for Karma {
    fn name(&self) -> &'static str {
        "karma"
    }

    fn on_access(&self, thread: ThreadId) {
        self.karma[thread.index()].fetch_add(1, Ordering::Relaxed);
    }

    fn on_commit(&self, thread: ThreadId) {
        self.karma[thread.index()].store(0, Ordering::Relaxed);
    }

    fn on_abort(&self, thread: ThreadId, abort: &Abort, attempt: u32) -> Ticks {
        let mine = self.karma[thread.index()].load(Ordering::Relaxed);
        // An out-of-range culprit thread (e.g. a synthetic participant
        // injected by fault schedules) is an *unknown* conflictor: treat it
        // as karma 0 rather than wrapping onto another thread's slot and
        // mis-attributing priority.
        let theirs = abort
            .culprit
            .and_then(|(p, _)| self.karma.get(p.thread.index()))
            .map(|k| k.load(Ordering::Relaxed))
            .unwrap_or(0);
        if mine >= theirs {
            // We out-rank the conflictor: retry immediately (karma is kept,
            // so we out-rank them even harder next time).
            0
        } else {
            self.base * (attempt as u64 + 1)
        }
    }
}

/// Greedy: the transaction with the earliest start time wins
/// (Guerraoui, Herlihy, Pochon, PODC '05).
#[derive(Debug)]
pub struct Greedy {
    start: Vec<AtomicU64>,
    base: Ticks,
}

impl Greedy {
    /// Creates a Greedy manager for up to `max_threads` threads.
    pub fn new(max_threads: usize, base: Ticks) -> Self {
        Greedy { start: (0..max_threads).map(|_| AtomicU64::new(u64::MAX)).collect(), base }
    }
}

impl ContentionManager for Greedy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn on_begin(&self, thread: ThreadId, now: u64) {
        // Keep the first attempt's timestamp across retries: in Greedy the
        // priority of a transaction is its *original* start time.
        let slot = &self.start[thread.index()];
        let cur = slot.load(Ordering::Relaxed);
        if cur == u64::MAX {
            slot.store(now.max(1), Ordering::Relaxed);
        }
    }

    fn on_commit(&self, thread: ThreadId) {
        self.start[thread.index()].store(u64::MAX, Ordering::Relaxed);
    }

    fn on_abort(&self, thread: ThreadId, abort: &Abort, attempt: u32) -> Ticks {
        let mine = self.start[thread.index()].load(Ordering::Relaxed);
        // As in `Karma`: never index with a wrapped out-of-range culprit.
        // An unknown conflictor gets `u64::MAX` (never started), so the
        // victim wins and retries immediately.
        let theirs = abort
            .culprit
            .and_then(|(p, _)| self.start.get(p.thread.index()))
            .map(|s| s.load(Ordering::Relaxed))
            .unwrap_or(u64::MAX);
        if mine <= theirs {
            0
        } else {
            self.base * (attempt as u64 + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::AbortReason;
    use crate::ids::{CommitSeq, Participant, TxId};

    fn abort_by(thread: u16) -> Abort {
        Abort::caused_by(
            AbortReason::UserRetry,
            Participant::new(ThreadId::new(thread), TxId::new(0)),
            CommitSeq::new(1),
        )
    }

    #[test]
    fn aggressive_never_backs_off() {
        assert_eq!(Aggressive.on_abort(ThreadId::new(0), &abort_by(1), 5), 0);
    }

    #[test]
    fn polite_backoff_is_exponential_and_capped() {
        let p = Polite { base: 2, cap: 3 };
        assert_eq!(p.on_abort(ThreadId::new(0), &abort_by(1), 0), 2);
        assert_eq!(p.on_abort(ThreadId::new(0), &abort_by(1), 1), 4);
        assert_eq!(p.on_abort(ThreadId::new(0), &abort_by(1), 3), 16);
        assert_eq!(p.on_abort(ThreadId::new(0), &abort_by(1), 10), 16, "capped");
    }

    #[test]
    fn karma_high_priority_retries_immediately() {
        let k = Karma::new(2, 10);
        for _ in 0..5 {
            k.on_access(ThreadId::new(0));
        }
        k.on_access(ThreadId::new(1));
        // Thread 0 (karma 5) aborted by thread 1 (karma 1): no backoff.
        assert_eq!(k.on_abort(ThreadId::new(0), &abort_by(1), 0), 0);
        // Thread 1 (karma 1) aborted by thread 0 (karma 5): backs off.
        assert!(k.on_abort(ThreadId::new(1), &abort_by(0), 0) > 0);
        k.on_commit(ThreadId::new(0));
        assert_eq!(k.karma_of(ThreadId::new(0)), 0);
    }

    #[test]
    fn greedy_oldest_wins() {
        let g = Greedy::new(2, 10);
        g.on_begin(ThreadId::new(0), 100);
        g.on_begin(ThreadId::new(1), 200);
        assert_eq!(g.on_abort(ThreadId::new(0), &abort_by(1), 0), 0, "older retries free");
        assert!(g.on_abort(ThreadId::new(1), &abort_by(0), 0) > 0, "younger backs off");
    }

    #[test]
    fn greedy_keeps_original_timestamp_across_retries() {
        let g = Greedy::new(2, 10);
        g.on_begin(ThreadId::new(0), 100);
        g.on_begin(ThreadId::new(0), 500); // retry: timestamp must not advance
        g.on_begin(ThreadId::new(1), 200);
        assert_eq!(g.on_abort(ThreadId::new(0), &abort_by(1), 1), 0);
        g.on_commit(ThreadId::new(0));
        g.on_begin(ThreadId::new(0), 900); // fresh invocation: new timestamp
        assert!(g.on_abort(ThreadId::new(0), &abort_by(1), 0) > 0);
    }

    #[test]
    fn abort_without_culprit_is_handled() {
        let k = Karma::new(1, 10);
        let a = Abort::new(AbortReason::UserRetry);
        assert_eq!(k.on_abort(ThreadId::new(0), &a, 0), 0);
    }

    #[test]
    fn polite_saturates_instead_of_overflowing() {
        // shift >= 64 used to panic in debug / wrap in release.
        let p = Polite { base: 4, cap: 80 };
        assert_eq!(p.on_abort(ThreadId::new(0), &abort_by(1), 70), Ticks::MAX);
        // Large base: shifting out high bits must saturate, not truncate.
        let big = Polite { base: 1 << 60, cap: 8 };
        assert_eq!(big.on_abort(ThreadId::new(0), &abort_by(1), 8), Ticks::MAX);
        assert_eq!(big.on_abort(ThreadId::new(0), &abort_by(1), 3), 1 << 63);
        // Zero base stays zero whatever the attempt count.
        let zero = Polite { base: 0, cap: 80 };
        assert_eq!(zero.on_abort(ThreadId::new(0), &abort_by(1), 70), 0);
    }

    #[test]
    fn karma_out_of_range_culprit_is_unknown() {
        // Regression: a culprit thread >= max_threads used to wrap modulo
        // the table size onto thread 0's karma. Here thread 0 has karma 5,
        // so the wrapped lookup would force a backoff; the correct
        // treatment (unknown conflictor, karma 0) retries immediately.
        let k = Karma::new(2, 10);
        for _ in 0..5 {
            k.on_access(ThreadId::new(0));
        }
        k.on_access(ThreadId::new(1));
        assert_eq!(
            k.on_abort(ThreadId::new(1), &abort_by(2), 0),
            0,
            "out-of-range culprit must not alias thread 0's karma"
        );
    }

    #[test]
    fn greedy_out_of_range_culprit_is_unknown() {
        // Same aliasing bug as Karma: culprit thread 2 would wrap onto
        // thread 0 (the oldest), forcing the victim to back off.
        let g = Greedy::new(2, 10);
        g.on_begin(ThreadId::new(0), 100);
        g.on_begin(ThreadId::new(1), 200);
        assert_eq!(
            g.on_abort(ThreadId::new(1), &abort_by(2), 0),
            0,
            "unknown conflictor never out-ranks the victim"
        );
    }
}
