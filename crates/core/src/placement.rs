//! Core-affinity placement: co-locating worker threads with the lock-table
//! partitions they predominantly touch.
//!
//! PAPERS.md's thread-and-data-mapping survey observes that once the
//! version clock stops bouncing between cores (the skip-ahead clock,
//! DESIGN.md §3.1c), the next lever is keeping each thread's working set —
//! its store shard and that shard's lock-table partition — resident in one
//! core's cache. This module computes such an assignment from *touch
//! counts* (how often each thread hit each shard/partition) and exposes it
//! through [`crate::RealGate`].
//!
//! The pipeline is deliberately split:
//!
//! 1. a [`TouchMap`] aggregates touches — from `gstm-serve`'s generated
//!    schedules, or from [`crate::SiteStatsSink`] snapshots via
//!    [`TouchMap::record`];
//! 2. [`Placement::plan`] turns it into a deterministic thread → CPU
//!    assignment (greedy: each thread homes on its most-touched slot,
//!    slots are spread over cores busiest-first round-robin);
//! 3. [`pin_current_thread`] applies it — **best-effort**: pure-std Rust
//!    has no affinity syscall and this workspace builds offline with no
//!    libc crate, so the current implementation records the intent and
//!    returns `false`. On the single-core CI host (and under `SimGate`,
//!    which never consults a placement) the whole policy is a no-op by
//!    construction: [`Placement::plan`] returns [`Placement::noop`]
//!    whenever fewer than two cores are available.

use crate::ids::ThreadId;

/// Dense `threads × slots` matrix of touch counts.
///
/// A *slot* is whatever placement unit the caller works in — a store
/// shard, a lock-table partition, or a stripe bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TouchMap {
    threads: usize,
    slots: usize,
    counts: Vec<u64>,
}

impl TouchMap {
    /// Creates an all-zero map for `threads` threads and `slots` slots.
    pub fn new(threads: usize, slots: usize) -> Self {
        TouchMap { threads, slots, counts: vec![0; threads * slots] }
    }

    /// Number of threads tracked.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of slots tracked.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Adds `n` touches of `slot` by `thread`. Out-of-range pairs are
    /// ignored (schedules may reference more threads than the map tracks).
    pub fn record(&mut self, thread: ThreadId, slot: usize, n: u64) {
        if thread.index() < self.threads && slot < self.slots {
            self.counts[thread.index() * self.slots + slot] += n;
        }
    }

    /// Touches of `slot` by `thread`.
    pub fn get(&self, thread: ThreadId, slot: usize) -> u64 {
        self.counts.get(thread.index() * self.slots + slot).copied().unwrap_or(0)
    }

    /// The slot `thread` touches most (ties break to the lowest slot);
    /// `None` if the thread touched nothing.
    pub fn home_slot(&self, thread: ThreadId) -> Option<usize> {
        if thread.index() >= self.threads {
            return None;
        }
        let row = &self.counts[thread.index() * self.slots..(thread.index() + 1) * self.slots];
        let (best, &count) = row.iter().enumerate().max_by_key(|&(i, &c)| (c, usize::MAX - i))?;
        (count > 0).then_some(best)
    }

    /// Total touches of `slot` across all threads.
    pub fn slot_load(&self, slot: usize) -> u64 {
        (0..self.threads).map(|t| self.counts[t * self.slots + slot]).sum()
    }
}

/// A deterministic thread → CPU assignment produced by [`Placement::plan`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    cpu_of: Vec<usize>,
    cores: usize,
}

impl Placement {
    /// The empty placement: applies to nothing, pins nothing.
    pub fn noop() -> Self {
        Placement { cpu_of: Vec::new(), cores: 0 }
    }

    /// Whether this placement assigns any thread at all.
    pub fn is_noop(&self) -> bool {
        self.cpu_of.is_empty()
    }

    /// The CPU `thread` should run on, if the plan assigned one.
    pub fn cpu_of(&self, thread: ThreadId) -> Option<usize> {
        self.cpu_of.get(thread.index()).copied()
    }

    /// Cores the plan spread threads over.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Greedy placement: every thread homes on its most-touched slot, and
    /// slots are assigned to cores busiest-first round-robin, so threads
    /// sharing a hot shard land on the same core's cache while distinct
    /// hot shards spread across cores.
    ///
    /// Returns [`Placement::noop`] when `cores < 2` (nothing to spread
    /// over — the single-core CI case) or the map recorded no touches.
    pub fn plan(touches: &TouchMap, cores: usize) -> Self {
        if cores < 2 || touches.threads() == 0 || touches.slots() == 0 {
            return Placement::noop();
        }
        let mut order: Vec<usize> = (0..touches.slots()).collect();
        // Busiest slots first; ties by slot index for determinism.
        order.sort_by_key(|&s| (u64::MAX - touches.slot_load(s), s));
        let mut core_of_slot = vec![0usize; touches.slots()];
        for (rank, &slot) in order.iter().enumerate() {
            core_of_slot[slot] = rank % cores;
        }
        let mut cpu_of = Vec::with_capacity(touches.threads());
        let mut any = false;
        for t in 0..touches.threads() {
            let home = touches.home_slot(ThreadId::new(t as u16));
            any |= home.is_some();
            // Threads that touched nothing spread round-robin by index.
            cpu_of.push(core_of_slot[home.unwrap_or(t % touches.slots())]);
        }
        if !any {
            return Placement::noop();
        }
        Placement { cpu_of, cores }
    }
}

/// Cores available to this process (1 when detection fails — which also
/// makes every [`Placement::plan`] a no-op).
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Best-effort: pin the calling thread to `cpu`.
///
/// Pure-std Rust exposes no CPU-affinity call and this workspace builds
/// offline without a libc binding, so the current implementation cannot
/// actually pin — it returns `false` and the caller proceeds unpinned.
/// This is the documented seam where `sched_setaffinity` (Linux) /
/// `SetThreadAffinityMask` (Windows) would go; everything upstream — the
/// touch accounting, the plan, the gate hook — is real and tested, and the
/// policy degrades to a no-op exactly as ISSUE 7 requires on the
/// single-core CI host.
pub fn pin_current_thread(_cpu: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u16) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn touch_map_records_and_homes() {
        let mut m = TouchMap::new(2, 3);
        m.record(t(0), 1, 5);
        m.record(t(0), 2, 3);
        m.record(t(1), 2, 9);
        assert_eq!(m.get(t(0), 1), 5);
        assert_eq!(m.home_slot(t(0)), Some(1));
        assert_eq!(m.home_slot(t(1)), Some(2));
        assert_eq!(m.slot_load(2), 12);
        // Out-of-range records are ignored, untouched threads have no home.
        m.record(t(7), 0, 1);
        let empty = TouchMap::new(1, 2);
        assert_eq!(empty.home_slot(t(0)), None);
    }

    #[test]
    fn plan_groups_cotouching_threads_and_spreads_hot_slots() {
        // Threads 0,1 hammer shard 0; threads 2,3 hammer shard 1.
        let mut m = TouchMap::new(4, 2);
        m.record(t(0), 0, 100);
        m.record(t(1), 0, 90);
        m.record(t(2), 1, 80);
        m.record(t(3), 1, 70);
        let p = Placement::plan(&m, 2);
        assert!(!p.is_noop());
        assert_eq!(p.cpu_of(t(0)), p.cpu_of(t(1)), "co-touching threads share a core");
        assert_eq!(p.cpu_of(t(2)), p.cpu_of(t(3)));
        assert_ne!(p.cpu_of(t(0)), p.cpu_of(t(2)), "distinct hot shards spread out");
    }

    #[test]
    fn plan_is_deterministic() {
        let mut m = TouchMap::new(3, 4);
        for (th, sl, n) in [(0, 3, 7), (1, 3, 7), (2, 0, 2)] {
            m.record(t(th), sl, n);
        }
        assert_eq!(Placement::plan(&m, 4), Placement::plan(&m, 4));
    }

    #[test]
    fn single_core_and_empty_maps_plan_to_noop() {
        let mut m = TouchMap::new(4, 2);
        m.record(t(0), 0, 10);
        assert!(Placement::plan(&m, 1).is_noop(), "one core: nothing to place");
        assert!(Placement::plan(&TouchMap::new(4, 2), 8).is_noop(), "no touches: no plan");
        assert_eq!(Placement::noop().cpu_of(t(0)), None);
    }

    #[test]
    fn pinning_is_a_documented_noop_without_an_affinity_binding() {
        assert!(!pin_current_thread(0), "pure-std build cannot pin; must report so");
        assert!(available_cores() >= 1);
    }
}
