//! # gstm-core — a TL2 software transactional memory with guidance hooks
//!
//! This crate is the substrate of a reproduction of *"Quantifying and
//! Reducing Execution Variance in STM via Model Driven Commit Optimization"*
//! (Mururu, Gavrilovska & Pande, CGO 2019). It implements:
//!
//! * **TL2** (Transactional Locking II): a write-back STM with lazy conflict
//!   detection, commit-time locking and a global version clock — the STM the
//!   paper instruments for STAMP (§II-A);
//! * **LibTM-style modes**: fully-optimistic detection with *abort-readers*
//!   or *wait-for-readers* resolution over visible reader registries — the
//!   STM SynQuake runs on (§VIII);
//! * **instrumentation** producing the paper's transaction sequence
//!   (begin/abort/commit events with conflict attribution), consumed by
//!   `gstm-model` to build the Thread State Automaton;
//! * an **admission-policy hook** at transaction begin, where `gstm-guide`
//!   installs the model-driven hold logic of guided execution (§V);
//! * classic **contention managers** (Polite, Karma, Greedy) as baselines
//!   (§IX);
//! * the [`Gate`] seam that lets the same engine run on native threads or on
//!   `gstm-sim`'s deterministic virtual-core machine.
//!
//! ## Quickstart
//!
//! ```
//! use gstm_core::{Stm, StmConfig, TVar, ThreadId, TxId};
//!
//! let stm = Stm::new(StmConfig::new(4));
//! let balance = TVar::new(100i64);
//! let withdrawn = stm.run(ThreadId::new(0), TxId::new(0), |tx| {
//!     let b = tx.read(&balance)?;
//!     let take = b.min(30);
//!     tx.write(&balance, b - take)?;
//!     Ok(take)
//! });
//! assert_eq!(withdrawn, 30);
//! assert_eq!(*balance.load_unlogged(), 70);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clock;
pub mod cm;
pub mod config;
pub mod error;
pub mod events;
pub mod fxmap;
pub mod gate;
pub mod ids;
pub mod kill;
pub mod lock_table;
pub mod mvcc;
pub mod pad;
pub mod placement;
pub mod policy;
pub mod readset;
pub mod rng;
pub mod site_stats;
pub mod stm;
pub mod sync;
pub mod tvar;

pub use clock::{ClockStats, VersionClock};
pub use config::{
    ClockStrategy, Detection, ReadMode, Resolution, StmConfig, StmConfigBuilder, TxnKind,
};
pub use error::{Abort, AbortReason, StmError};
pub use events::{CountingSink, EventSink, MemorySink, MulticastSink, NullSink, TxEvent};
pub use gate::{CostModel, Gate, NullGate, RealGate, Ticks};
pub use ids::{CommitSeq, Participant, ThreadId, TxId, VarId};
pub use kill::{KillPoint, KillSwitch};
pub use lock_table::RegistryFootprint;
pub use mvcc::MvccStats;
pub use pad::CachePadded;
pub use placement::{available_cores, Placement, TouchMap};
pub use policy::{AdmissionPolicy, AdmitAll};
pub use site_stats::{SiteStats, SiteStatsSink};
pub use stm::{retry, CommitInfo, DoomHandle, Stm, Txn};
pub use tvar::{TVar, VarIdDomain, VarIdDomainGuard};
