//! Small-set–optimized stripe collections for the transaction hot path.
//!
//! A TL2 transaction tracks three per-attempt stripe sets: the read set,
//! the encounter-time locks and the visible-reader registrations. Their
//! common access pattern is "have I seen this stripe already?", and most
//! transactions touch a handful of stripes — `BTreeMap`/`iter().any(..)`
//! pay tree or linear-rescan costs for what is almost always a miss.
//!
//! [`StripeFilter`] is a 64-bit Bloom-style membership filter: a clear bit
//! proves absence (the common case, answered in O(1) with no memory
//! traffic beyond one word); a set bit falls back to the caller's exact
//! check. [`ReadSet`] combines the filter with inline storage for the
//! first [`INLINE`] stripes (no allocation for small transactions), a
//! spill vector, and an [`FxMap`] exact index once the set outgrows linear
//! scanning.
//!
//! Determinism: a `ReadSet` preserves insertion order and never reorders
//! entries; commit-time validation sorts a scratch copy ascending, which
//! reproduces the `BTreeMap` key order byte for byte.

use crate::fxmap::FxMap;

/// Inline capacity of a [`ReadSet`] — covers typical STAMP transactions
/// without touching the heap.
pub const INLINE: usize = 16;

/// Set size at which a [`ReadSet`] switches membership checks from linear
/// scans to its exact [`FxMap`] index. Below this the [`StripeFilter`]
/// answers most misses in O(1) and the occasional linear scan over ≤64
/// cache-hot `u32`s beats paying an index build + hash probes; building
/// the index only pays off for genuinely large read sets.
const INDEX_THRESHOLD: usize = 64;

/// 64-bit Bloom-style stripe membership filter (one hash, one bit).
///
/// `may_contain` returning `false` proves the stripe was never inserted;
/// `true` means "possibly present" and the caller must do an exact check.
#[derive(Clone, Copy, Debug, Default)]
pub struct StripeFilter(u64);

impl StripeFilter {
    /// An empty filter.
    pub fn new() -> Self {
        StripeFilter(0)
    }

    /// Removes all entries.
    #[inline]
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    #[inline]
    fn bit(stripe: u32) -> u64 {
        // Multiplicative mix so adjacent stripe indices spread over all 64
        // bits (stripes of related vars are often consecutive).
        1u64 << (u64::from(stripe).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58)
    }

    /// Marks a stripe as present.
    #[inline]
    pub fn insert(&mut self, stripe: u32) {
        self.0 |= Self::bit(stripe);
    }

    /// `false` proves absence; `true` requires an exact check.
    #[inline]
    pub fn may_contain(&self, stripe: u32) -> bool {
        self.0 & Self::bit(stripe) != 0
    }
}

/// The transaction read set: insertion-ordered unique stripe indices.
///
/// Replaces the old `BTreeMap<u32, u64>` (the version value was never
/// read back — inline read validation re-checks the lock word instead).
#[derive(Clone, Debug, Default)]
pub struct ReadSet {
    filter: StripeFilter,
    /// First [`INLINE`] stripes, in insertion order.
    inline: [u32; INLINE],
    /// Stripes beyond the inline capacity, in insertion order.
    spill: Vec<u32>,
    /// Total entry count (inline + spill).
    len: usize,
    /// Exact index, populated once `len` reaches [`INDEX_THRESHOLD`].
    index: FxMap,
}

impl ReadSet {
    /// An empty read set (no allocation).
    pub fn new() -> Self {
        ReadSet::default()
    }

    /// Number of distinct stripes read.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no stripe has been read.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the set, keeping allocations for reuse across attempts.
    pub fn clear(&mut self) {
        self.filter.clear();
        self.spill.clear();
        self.index.clear();
        self.len = 0;
    }

    /// Exact membership test.
    #[inline]
    pub fn contains(&self, stripe: u32) -> bool {
        if !self.filter.may_contain(stripe) {
            return false;
        }
        if !self.index.is_empty() {
            return self.index.get(u64::from(stripe)).is_some();
        }
        self.inline[..self.len.min(INLINE)].contains(&stripe) || self.spill.contains(&stripe)
    }

    /// Inserts a stripe; returns `true` if it was not present before (the
    /// "first read of this stripe" predicate reader registration needs).
    #[inline]
    pub fn insert(&mut self, stripe: u32) -> bool {
        if self.contains(stripe) {
            return false;
        }
        if self.len < INLINE {
            self.inline[self.len] = stripe;
        } else {
            self.spill.push(stripe);
        }
        self.len += 1;
        self.filter.insert(stripe);
        if !self.index.is_empty() {
            self.index.insert(u64::from(stripe), 1);
        } else if self.len == INDEX_THRESHOLD {
            for i in 0..INLINE {
                self.index.insert(u64::from(self.inline[i]), 1);
            }
            for &s in &self.spill {
                self.index.insert(u64::from(s), 1);
            }
        }
        true
    }

    /// Appends every stripe to `out` in insertion order.
    pub fn collect_into(&self, out: &mut Vec<u32>) {
        out.extend_from_slice(&self.inline[..self.len.min(INLINE)]);
        out.extend_from_slice(&self.spill);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_never_false_negative() {
        let mut f = StripeFilter::new();
        for s in (0..2000).step_by(7) {
            f.insert(s);
        }
        for s in (0..2000).step_by(7) {
            assert!(f.may_contain(s));
        }
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut rs = ReadSet::new();
        assert!(rs.insert(5));
        assert!(!rs.insert(5), "second insert of the same stripe is a no-op");
        assert!(rs.insert(9));
        assert_eq!(rs.len(), 2);
        assert!(rs.contains(5) && rs.contains(9) && !rs.contains(6));
    }

    #[test]
    fn preserves_insertion_order_across_spill_and_index() {
        let mut rs = ReadSet::new();
        let stripes: Vec<u32> = (0..100).map(|i| i * 3 + 1).collect();
        for &s in &stripes {
            assert!(rs.insert(s));
        }
        for &s in &stripes {
            assert!(rs.contains(s), "stripe {s} lost after index build");
            assert!(!rs.insert(s));
        }
        let mut collected = Vec::new();
        rs.collect_into(&mut collected);
        assert_eq!(collected, stripes);
        // Sorted ascending == the old BTreeMap key order.
        let mut sorted = collected.clone();
        sorted.sort_unstable();
        let mut expect = stripes.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn clear_resets_but_keeps_working() {
        let mut rs = ReadSet::new();
        for s in 0..50 {
            rs.insert(s);
        }
        rs.clear();
        assert!(rs.is_empty());
        assert!(!rs.contains(3));
        assert!(rs.insert(3));
        let mut out = Vec::new();
        rs.collect_into(&mut out);
        assert_eq!(out, vec![3]);
    }
}
