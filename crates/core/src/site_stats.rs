//! Per-site statistics: commits, aborts and retry depth broken down by
//! `(thread, transaction-site)` — the granularity the paper's model works
//! at. Useful for understanding *which* atomic block causes the variance a
//! benchmark shows.

use std::collections::BTreeMap;

use crate::sync::Mutex;

use crate::events::{EventSink, TxEvent};
use crate::ids::Participant;

/// Aggregate for one `(thread, site)` pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// Committed invocations.
    pub commits: u64,
    /// Aborted attempts.
    pub aborts: u64,
    /// Invocations held by the admission policy.
    pub holds: u64,
    /// Maximum aborts a single invocation needed before committing.
    pub worst_retry: u32,
}

impl SiteStats {
    /// Abort ratio for this site.
    pub fn abort_ratio(&self) -> f64 {
        if self.commits + self.aborts == 0 {
            0.0
        } else {
            self.aborts as f64 / (self.commits + self.aborts) as f64
        }
    }
}

/// An [`EventSink`] aggregating per-participant statistics.
///
/// ```
/// use std::sync::Arc;
/// use gstm_core::{SiteStatsSink, Stm, StmConfig, TVar, ThreadId, TxId, EventSink};
///
/// let sink = Arc::new(SiteStatsSink::new());
/// let stm = Stm::with_parts(
///     StmConfig::new(1),
///     Arc::new(gstm_core::NullGate),
///     sink.clone(),
///     Arc::new(gstm_core::AdmitAll),
///     Arc::new(gstm_core::cm::Aggressive),
/// );
/// let v = TVar::new(0i64);
/// stm.run(ThreadId::new(0), TxId::new(3), |tx| tx.write(&v, 1));
/// let table = sink.snapshot();
/// assert_eq!(table.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct SiteStatsSink {
    table: Mutex<BTreeMap<Participant, SiteStats>>,
}

impl SiteStatsSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the per-participant table, sorted by participant.
    pub fn snapshot(&self) -> BTreeMap<Participant, SiteStats> {
        self.table.lock().clone()
    }

    /// Folds the table into a placement [`TouchMap`]: every commit or
    /// abort a `(thread, site)` pair recorded counts as one touch of slot
    /// `site_to_slot(site)` by that thread. This is the
    /// `site_stats → placement` bridge (DESIGN.md §3.1c): workloads whose
    /// sites map onto store shards — `gstm-serve` numbers its request
    /// sites statically — can derive a core-affinity plan from observed
    /// traffic instead of a static schedule.
    pub fn touch_map(
        &self,
        threads: usize,
        slots: usize,
        site_to_slot: impl Fn(crate::ids::TxId) -> usize,
    ) -> crate::placement::TouchMap {
        let mut map = crate::placement::TouchMap::new(threads, slots);
        for (p, s) in self.snapshot() {
            map.record(p.thread, site_to_slot(p.tx), s.commits + s.aborts);
        }
        map
    }

    /// Renders a compact text report, worst abort-ratio first.
    pub fn report(&self) -> String {
        let mut rows: Vec<(Participant, SiteStats)> = self.snapshot().into_iter().collect();
        rows.sort_by(|a, b| {
            b.1.abort_ratio().partial_cmp(&a.1.abort_ratio()).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut out = String::from("site      commits  aborts  holds  worst  abort%\n");
        for (p, s) in rows {
            out.push_str(&format!(
                "{:<9} {:<8} {:<7} {:<6} {:<6} {:.1}\n",
                p.to_string(),
                s.commits,
                s.aborts,
                s.holds,
                s.worst_retry,
                s.abort_ratio() * 100.0,
            ));
        }
        out
    }
}

impl EventSink for SiteStatsSink {
    fn record(&self, event: &TxEvent) {
        let mut table = self.table.lock();
        match event {
            TxEvent::Begin { .. } => {}
            TxEvent::Abort { who, .. } => {
                table.entry(*who).or_default().aborts += 1;
            }
            TxEvent::Commit { who, aborts, .. } => {
                let e = table.entry(*who).or_default();
                e.commits += 1;
                e.worst_retry = e.worst_retry.max(*aborts);
            }
            TxEvent::Held { who, .. } => {
                table.entry(*who).or_default().holds += 1;
            }
            // Oracle instrumentation events carry no per-site tallies.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{Abort, AbortReason};
    use crate::ids::{CommitSeq, ThreadId, TxId, VarId};

    fn p(t: u16, x: u16) -> Participant {
        Participant::new(ThreadId::new(t), TxId::new(x))
    }

    #[test]
    fn aggregates_by_participant() {
        let s = SiteStatsSink::new();
        s.record(&TxEvent::Abort {
            who: p(0, 1),
            attempt: 0,
            abort: Abort::new(AbortReason::ReadVersion { var: VarId::from_raw(1) }),
            at: 0,
        });
        s.record(&TxEvent::Commit {
            who: p(0, 1),
            seq: CommitSeq::new(1),
            aborts: 1,
            reads: 1,
            writes: 1,
            at: 0,
        });
        s.record(&TxEvent::Commit {
            who: p(1, 1),
            seq: CommitSeq::new(2),
            aborts: 0,
            reads: 1,
            writes: 1,
            at: 0,
        });
        s.record(&TxEvent::Held { who: p(0, 1), polls: 3, at: 0 });
        let table = s.snapshot();
        let a = table[&p(0, 1)];
        assert_eq!(a.commits, 1);
        assert_eq!(a.aborts, 1);
        assert_eq!(a.holds, 1);
        assert_eq!(a.worst_retry, 1);
        assert!((a.abort_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(table[&p(1, 1)].abort_ratio(), 0.0);
    }

    #[test]
    fn touch_map_counts_commits_and_aborts_per_slot() {
        let s = SiteStatsSink::new();
        for seq in 0..3 {
            s.record(&TxEvent::Commit {
                who: p(0, 4),
                seq: CommitSeq::new(seq),
                aborts: 0,
                reads: 0,
                writes: 0,
                at: 0,
            });
        }
        s.record(&TxEvent::Abort {
            who: p(1, 5),
            attempt: 0,
            abort: Abort::new(AbortReason::UserRetry),
            at: 0,
        });
        // Sites 4 and 5 map to shards 0 and 1.
        let m = s.touch_map(2, 2, |tx| tx.index() - 4);
        assert_eq!(m.get(ThreadId::new(0), 0), 3, "commits count as touches");
        assert_eq!(m.get(ThreadId::new(1), 1), 1, "aborts count as touches");
        assert_eq!(m.home_slot(ThreadId::new(0)), Some(0));
    }

    #[test]
    fn report_sorts_by_abort_ratio() {
        let s = SiteStatsSink::new();
        for seq in 0..4 {
            s.record(&TxEvent::Commit {
                who: p(0, 0),
                seq: CommitSeq::new(seq),
                aborts: 0,
                reads: 0,
                writes: 0,
                at: 0,
            });
        }
        s.record(&TxEvent::Abort {
            who: p(1, 1),
            attempt: 0,
            abort: Abort::new(AbortReason::UserRetry),
            at: 0,
        });
        s.record(&TxEvent::Commit {
            who: p(1, 1),
            seq: CommitSeq::new(5),
            aborts: 1,
            reads: 0,
            writes: 0,
            at: 0,
        });
        let report = s.report();
        let hot_line = report.lines().nth(1).expect("one data row");
        assert!(hot_line.starts_with("b1"), "worst ratio first: {report}");
    }

    #[test]
    fn empty_sink_reports_header_only() {
        let s = SiteStatsSink::new();
        assert_eq!(s.report().lines().count(), 1);
        assert!(s.snapshot().is_empty());
    }
}
