//! Admission policies: the hook guided execution plugs into.
//!
//! The paper's guided STM intervenes at exactly one point: **transaction
//! begin** (`TM_BEGIN(ID)`). If the `(thread, transaction)` pair is not part
//! of any high-probability destination state of the automaton's current
//! state, the thread is *held* — it polls, re-reading the (possibly changed)
//! current state, up to `k` times, and is then released unconditionally to
//! guarantee progress (§V).
//!
//! [`AdmissionPolicy`] abstracts that decision. The engine hands the policy a
//! `poll` callback that charges gate time and yields; the policy calls it as
//! many times as it wants to wait. `gstm-guide` provides the model-driven
//! implementation; [`AdmitAll`] is the default (the paper's "default STM").

use crate::ids::Participant;

/// Decides whether a transaction invocation may begin now.
pub trait AdmissionPolicy: Send + Sync {
    /// Called once per invocation (not per retry attempt) before the first
    /// attempt begins. May call `poll()` repeatedly to wait; each call
    /// charges hold time to the thread and yields to other threads.
    ///
    /// Returns the number of polls spent (0 = admitted immediately); the
    /// engine emits a [`crate::events::TxEvent::Held`] event when non-zero.
    fn admit(&self, who: Participant, poll: &mut dyn FnMut()) -> u32;

    /// Human-readable policy name for reports.
    fn name(&self) -> &'static str {
        "unnamed"
    }
}

/// Admits every transaction immediately — the unguided baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct AdmitAll;

impl AdmissionPolicy for AdmitAll {
    fn admit(&self, _who: Participant, _poll: &mut dyn FnMut()) -> u32 {
        0
    }

    fn name(&self) -> &'static str {
        "admit-all"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ThreadId, TxId};

    #[test]
    fn admit_all_never_polls() {
        let mut polls = 0u32;
        let got =
            AdmitAll.admit(Participant::new(ThreadId::new(0), TxId::new(0)), &mut || polls += 1);
        assert_eq!(got, 0);
        assert_eq!(polls, 0);
        assert_eq!(AdmitAll.name(), "admit-all");
    }
}
